#include "http/parser.h"

#include <algorithm>

#include "util/log.h"
#include "util/rate_limit.h"
#include "util/strings.h"

namespace dm::http {
namespace {

using dm::util::DecodeError;
using dm::util::DecodeErrorCode;
using dm::util::DecodeLayer;
using dm::util::parse_long;
using dm::util::trim;

/// A chunk claiming more than this is a corrupt size field, not a body.
constexpr std::size_t kMaxChunkBytes = 64 * 1024 * 1024;

/// Cursor over a reassembled stream with timestamp lookups.
struct Cursor {
  const dm::net::DirectionStream& stream;
  std::size_t pos = 0;

  bool at_end() const noexcept { return pos >= stream.data.size(); }
  std::size_t remaining() const noexcept { return stream.data.size() - pos; }
  std::string_view rest() const noexcept {
    return std::string_view(stream.data).substr(pos);
  }
  std::uint64_t timestamp() const noexcept { return stream.timestamp_at(pos); }

  /// Reads up to CRLF (or LF); nullopt when no full line is available.
  std::optional<std::string_view> read_line() {
    const auto view = rest();
    const auto nl = view.find('\n');
    if (nl == std::string_view::npos) return std::nullopt;
    std::string_view line = view.substr(0, nl);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    pos += nl + 1;
    return line;
  }

  std::optional<std::string> read_bytes(std::size_t n) {
    if (remaining() < n) return std::nullopt;
    std::string out(stream.data, pos, n);
    pos += n;
    return out;
  }
};

void quarantine(std::vector<DecodeError>& errors, dm::util::FaultStats* faults,
                DecodeErrorCode code, std::size_t offset, std::string reason) {
  DecodeError error{code, DecodeLayer::kHttp, offset, std::move(reason)};
  if (faults) faults->record(error);
  static dm::util::EveryN gate(256);
  dm::util::log_every_n(gate, dm::util::LogLevel::kWarn,
                        "http: quarantined: ", error.to_string());
  errors.push_back(std::move(error));
}

bool parse_header_block(Cursor& cursor, Headers& headers) {
  while (true) {
    const auto line = cursor.read_line();
    if (!line) return false;  // incomplete block
    if (line->empty()) return true;
    const auto colon = line->find(':');
    if (colon == std::string_view::npos) continue;  // tolerate garbage lines
    headers.add(std::string(trim(line->substr(0, colon))),
                std::string(trim(line->substr(colon + 1))));
  }
}

/// Reads a chunked body.  The error distinguishes a stream that merely ends
/// mid-body (truncated — stop parsing) from a corrupt size field (malformed
/// — quarantine and resync past it).
dm::util::Expected<std::string> read_chunked_body(Cursor& cursor) {
  const auto fail = [&](DecodeErrorCode code, std::string reason) {
    return DecodeError{code, DecodeLayer::kHttp, cursor.pos, std::move(reason)};
  };
  std::string body;
  while (true) {
    const auto size_line = cursor.read_line();
    if (!size_line) {
      return fail(DecodeErrorCode::kHttpTruncatedMessage,
                  "stream ends before chunk size");
    }
    // Chunk extensions after ';' are ignored.
    const auto semi = size_line->find(';');
    const auto hex = trim(semi == std::string_view::npos ? *size_line
                                                         : size_line->substr(0, semi));
    if (hex.empty() || hex.size() > 16) {
      return fail(DecodeErrorCode::kHttpBadChunk, "bad chunk-size field");
    }
    std::size_t chunk_size = 0;
    for (char c : hex) {
      int v;
      if (c >= '0' && c <= '9') v = c - '0';
      else if (c >= 'a' && c <= 'f') v = c - 'a' + 10;
      else if (c >= 'A' && c <= 'F') v = c - 'A' + 10;
      else return fail(DecodeErrorCode::kHttpBadChunk, "non-hex chunk size");
      chunk_size = chunk_size * 16 + static_cast<std::size_t>(v);
    }
    if (chunk_size > kMaxChunkBytes) {
      return fail(DecodeErrorCode::kHttpBadChunk, "chunk size over cap");
    }
    if (chunk_size == 0) {
      // Trailer section: read lines until the empty terminator.
      while (true) {
        const auto t = cursor.read_line();
        if (!t) {
          return fail(DecodeErrorCode::kHttpTruncatedMessage,
                      "stream ends inside chunk trailer");
        }
        if (t->empty()) return body;
      }
    }
    auto chunk = cursor.read_bytes(chunk_size);
    if (!chunk) {
      return fail(DecodeErrorCode::kHttpTruncatedMessage,
                  "stream ends inside chunk");
    }
    body += *chunk;
    const auto crlf = cursor.read_line();
    if (!crlf) {
      return fail(DecodeErrorCode::kHttpTruncatedMessage,
                  "stream ends after chunk data");
    }
  }
}

bool is_known_method(std::string_view m) {
  static constexpr std::string_view kMethods[] = {
      "GET", "POST", "HEAD", "PUT", "DELETE", "OPTIONS", "PATCH", "TRACE", "CONNECT"};
  return std::find(std::begin(kMethods), std::end(kMethods), m) != std::end(kMethods);
}

bool is_request_line(std::string_view line) {
  const auto parts = dm::util::split_trimmed(line, ' ');
  return parts.size() >= 3 && is_known_method(parts[0]);
}

bool is_status_line(std::string_view line) {
  if (!dm::util::istarts_with(line, "HTTP/")) return false;
  const auto parts = dm::util::split_trimmed(line, ' ');
  if (parts.size() < 2) return false;
  const long code = parse_long(parts[1], -1);
  return code >= 100 && code <= 599;
}

/// Skips forward to the next line satisfying `looks_like_start`; the cursor
/// is left AT that line.  False when the stream holds no further start.
template <typename Pred>
bool resync(Cursor& cursor, Pred&& looks_like_start) {
  while (!cursor.at_end()) {
    const std::size_t at = cursor.pos;
    const auto line = cursor.read_line();
    if (!line) return false;  // trailing partial line: nothing left to find
    if (looks_like_start(*line)) {
      cursor.pos = at;
      return true;
    }
  }
  return false;
}

}  // namespace

RequestParseResult parse_requests_ex(const dm::net::DirectionStream& stream,
                                     dm::util::FaultStats* faults) {
  RequestParseResult out;
  Cursor cursor{stream};
  while (!cursor.at_end()) {
    const std::size_t start = cursor.pos;
    const std::uint64_t ts = cursor.timestamp();
    const auto line = cursor.read_line();
    if (!line) break;  // trailing partial line: wait-for-more, not a fault
    if (line->empty()) continue;  // stray CRLF between pipelined requests

    const auto parts = dm::util::split_trimmed(*line, ' ');
    if (parts.size() < 3 || !is_known_method(parts[0])) {
      // Garbage where a request line should be: quarantine the region up to
      // the next plausible request start and keep parsing there.
      quarantine(out.errors, faults, DecodeErrorCode::kHttpBadRequestLine,
                 start, "garbage request line");
      if (!resync(cursor, is_request_line)) break;
      continue;
    }
    HttpRequest req;
    req.method = std::string(parts[0]);
    req.uri = std::string(parts[1]);
    req.version = std::string(parts[2]);
    req.ts_micros = ts;
    if (!parse_header_block(cursor, req.headers)) {
      quarantine(out.errors, faults, DecodeErrorCode::kHttpTruncatedMessage,
                 start, "stream ends inside request headers");
      break;
    }

    if (const auto te = req.headers.get("Transfer-Encoding");
        te && dm::util::ifind(*te, "chunked") != std::string_view::npos) {
      auto body = read_chunked_body(cursor);
      if (!body) {
        out.errors.push_back(body.error());
        if (faults) faults->record(body.error());
        if (body.error().code == DecodeErrorCode::kHttpBadChunk &&
            resync(cursor, is_request_line)) {
          continue;  // corrupt framing: skip this message, keep the rest
        }
        break;  // truncated: nothing more to salvage
      }
      req.body = std::move(*body);
    } else if (const auto cl = req.headers.get("Content-Length")) {
      const long n = parse_long(*cl, -1);
      if (n < 0) {
        quarantine(out.errors, faults, DecodeErrorCode::kHttpBadContentLength,
                   start, "unparseable Content-Length");
        if (!resync(cursor, is_request_line)) break;
        continue;
      }
      auto body = cursor.read_bytes(static_cast<std::size_t>(n));
      if (!body) {
        quarantine(out.errors, faults, DecodeErrorCode::kHttpTruncatedMessage,
                   start, "stream ends inside request body");
        break;
      }
      req.body = std::move(*body);
    }
    out.requests.push_back(std::move(req));
  }
  return out;
}

ResponseParseResult parse_responses_ex(const dm::net::DirectionStream& stream,
                                       bool connection_closed,
                                       dm::util::FaultStats* faults) {
  ResponseParseResult out;
  Cursor cursor{stream};
  while (!cursor.at_end()) {
    const std::size_t start = cursor.pos;
    const std::uint64_t ts = cursor.timestamp();
    const auto line = cursor.read_line();
    if (!line) break;
    if (line->empty()) continue;

    if (!is_status_line(*line)) {
      quarantine(out.errors, faults, DecodeErrorCode::kHttpBadStatusLine,
                 start, "garbage status line");
      if (!resync(cursor, is_status_line)) break;
      continue;
    }
    const auto parts = dm::util::split_trimmed(*line, ' ');
    HttpResponse res;
    res.version = std::string(parts[0]);
    res.status_code = static_cast<int>(parse_long(parts[1], -1));
    if (parts.size() >= 3) {
      // Reason phrase may contain spaces: rejoin everything after the code.
      const auto code_pos = line->find(parts[1]);
      res.reason = std::string(trim(line->substr(code_pos + parts[1].size())));
    }
    res.ts_micros = ts;
    if (!parse_header_block(cursor, res.headers)) {
      quarantine(out.errors, faults, DecodeErrorCode::kHttpTruncatedMessage,
                 start, "stream ends inside response headers");
      break;
    }

    // 1xx/204/304 have no body.
    const bool bodyless = res.status_code < 200 || res.status_code == 204 ||
                          res.status_code == 304;
    if (!bodyless) {
      if (const auto te = res.headers.get("Transfer-Encoding");
          te && dm::util::ifind(*te, "chunked") != std::string_view::npos) {
        auto body = read_chunked_body(cursor);
        if (!body) {
          out.errors.push_back(body.error());
          if (faults) faults->record(body.error());
          if (body.error().code == DecodeErrorCode::kHttpBadChunk &&
              resync(cursor, is_status_line)) {
            continue;
          }
          break;
        }
        res.body = std::move(*body);
      } else if (const auto cl = res.headers.get("Content-Length")) {
        const long n = parse_long(*cl, -1);
        if (n < 0) {
          quarantine(out.errors, faults,
                     DecodeErrorCode::kHttpBadContentLength, start,
                     "unparseable Content-Length");
          if (!resync(cursor, is_status_line)) break;
          continue;
        }
        auto body = cursor.read_bytes(static_cast<std::size_t>(n));
        if (!body) {
          quarantine(out.errors, faults,
                     DecodeErrorCode::kHttpTruncatedMessage, start,
                     "stream ends inside response body");
          break;
        }
        res.body = std::move(*body);
      } else if (connection_closed) {
        // Close-delimited body: everything to end of stream.
        res.body = std::string(cursor.rest());
        cursor.pos = stream.data.size();
      } else {
        // No length framing and the connection is still open: the body is
        // not yet complete, so stop without emitting this response.
        break;
      }
    }
    out.responses.push_back(std::move(res));
  }
  return out;
}

std::vector<HttpRequest> parse_requests(const dm::net::DirectionStream& stream) {
  return parse_requests_ex(stream).requests;
}

std::vector<HttpResponse> parse_responses(const dm::net::DirectionStream& stream,
                                          bool connection_closed) {
  return parse_responses_ex(stream, connection_closed).responses;
}

std::vector<HttpTransaction> transactions_from_flow(
    const dm::net::TcpFlow& flow, dm::util::FaultStats* faults) {
  auto requests = parse_requests_ex(flow.client_to_server, faults).requests;
  auto responses =
      parse_responses_ex(flow.server_to_client, flow.closed, faults).responses;

  std::vector<HttpTransaction> transactions;
  transactions.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    HttpTransaction txn;
    txn.client_host = flow.client_ip.to_string();
    txn.server_ip = flow.server_ip.to_string();
    txn.server_port = flow.server_port;
    txn.request = std::move(requests[i]);
    const std::string host = txn.request.host();
    txn.server_host = host.empty() ? txn.server_ip : host;
    if (i < responses.size()) txn.response = std::move(responses[i]);
    transactions.push_back(std::move(txn));
  }
  return transactions;
}

}  // namespace dm::http

#include "http/parser.h"

#include <algorithm>

#include "util/log.h"
#include "util/strings.h"

namespace dm::http {
namespace {

using dm::util::parse_long;
using dm::util::trim;

/// Cursor over a reassembled stream with timestamp lookups.
struct Cursor {
  const dm::net::DirectionStream& stream;
  std::size_t pos = 0;

  bool at_end() const noexcept { return pos >= stream.data.size(); }
  std::size_t remaining() const noexcept { return stream.data.size() - pos; }
  std::string_view rest() const noexcept {
    return std::string_view(stream.data).substr(pos);
  }
  std::uint64_t timestamp() const noexcept { return stream.timestamp_at(pos); }

  /// Reads up to CRLF (or LF); nullopt when no full line is available.
  std::optional<std::string_view> read_line() {
    const auto view = rest();
    const auto nl = view.find('\n');
    if (nl == std::string_view::npos) return std::nullopt;
    std::string_view line = view.substr(0, nl);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    pos += nl + 1;
    return line;
  }

  std::optional<std::string> read_bytes(std::size_t n) {
    if (remaining() < n) return std::nullopt;
    std::string out(stream.data, pos, n);
    pos += n;
    return out;
  }
};

bool parse_header_block(Cursor& cursor, Headers& headers) {
  while (true) {
    const auto line = cursor.read_line();
    if (!line) return false;  // incomplete block
    if (line->empty()) return true;
    const auto colon = line->find(':');
    if (colon == std::string_view::npos) continue;  // tolerate garbage lines
    headers.add(std::string(trim(line->substr(0, colon))),
                std::string(trim(line->substr(colon + 1))));
  }
}

/// Reads a chunked body; returns nullopt if the stream ends mid-body.
std::optional<std::string> read_chunked_body(Cursor& cursor) {
  std::string body;
  while (true) {
    const auto size_line = cursor.read_line();
    if (!size_line) return std::nullopt;
    // Chunk extensions after ';' are ignored.
    const auto semi = size_line->find(';');
    const auto hex = trim(semi == std::string_view::npos ? *size_line
                                                         : size_line->substr(0, semi));
    std::size_t chunk_size = 0;
    for (char c : hex) {
      int v;
      if (c >= '0' && c <= '9') v = c - '0';
      else if (c >= 'a' && c <= 'f') v = c - 'a' + 10;
      else if (c >= 'A' && c <= 'F') v = c - 'A' + 10;
      else return std::nullopt;
      chunk_size = chunk_size * 16 + static_cast<std::size_t>(v);
    }
    if (chunk_size == 0) {
      // Trailer section: read lines until the empty terminator.
      while (true) {
        const auto t = cursor.read_line();
        if (!t) return std::nullopt;
        if (t->empty()) return body;
      }
    }
    auto chunk = cursor.read_bytes(chunk_size);
    if (!chunk) return std::nullopt;
    body += *chunk;
    const auto crlf = cursor.read_line();
    if (!crlf) return std::nullopt;
  }
}

bool is_known_method(std::string_view m) {
  static constexpr std::string_view kMethods[] = {
      "GET", "POST", "HEAD", "PUT", "DELETE", "OPTIONS", "PATCH", "TRACE", "CONNECT"};
  return std::find(std::begin(kMethods), std::end(kMethods), m) != std::end(kMethods);
}

}  // namespace

std::vector<HttpRequest> parse_requests(const dm::net::DirectionStream& stream) {
  std::vector<HttpRequest> requests;
  Cursor cursor{stream};
  while (!cursor.at_end()) {
    const std::size_t start = cursor.pos;
    const std::uint64_t ts = cursor.timestamp();
    const auto line = cursor.read_line();
    if (!line) break;
    if (line->empty()) continue;  // stray CRLF between pipelined requests

    const auto parts = dm::util::split_trimmed(*line, ' ');
    if (parts.size() < 3 || !is_known_method(parts[0])) {
      dm::util::log_debug("http: bad request line, stopping parse");
      cursor.pos = start;
      break;
    }
    HttpRequest req;
    req.method = std::string(parts[0]);
    req.uri = std::string(parts[1]);
    req.version = std::string(parts[2]);
    req.ts_micros = ts;
    if (!parse_header_block(cursor, req.headers)) break;

    if (const auto te = req.headers.get("Transfer-Encoding");
        te && dm::util::ifind(*te, "chunked") != std::string_view::npos) {
      auto body = read_chunked_body(cursor);
      if (!body) break;
      req.body = std::move(*body);
    } else if (const auto cl = req.headers.get("Content-Length")) {
      const long n = parse_long(*cl, -1);
      if (n < 0) break;
      auto body = cursor.read_bytes(static_cast<std::size_t>(n));
      if (!body) break;
      req.body = std::move(*body);
    }
    requests.push_back(std::move(req));
  }
  return requests;
}

std::vector<HttpResponse> parse_responses(const dm::net::DirectionStream& stream,
                                          bool connection_closed) {
  std::vector<HttpResponse> responses;
  Cursor cursor{stream};
  while (!cursor.at_end()) {
    const std::size_t start = cursor.pos;
    const std::uint64_t ts = cursor.timestamp();
    const auto line = cursor.read_line();
    if (!line) break;
    if (line->empty()) continue;

    if (!dm::util::istarts_with(*line, "HTTP/")) {
      cursor.pos = start;
      break;
    }
    const auto parts = dm::util::split_trimmed(*line, ' ');
    if (parts.size() < 2) break;
    HttpResponse res;
    res.version = std::string(parts[0]);
    const long code = parse_long(parts[1], -1);
    if (code < 100 || code > 599) break;
    res.status_code = static_cast<int>(code);
    if (parts.size() >= 3) {
      // Reason phrase may contain spaces: rejoin everything after the code.
      const auto code_pos = line->find(parts[1]);
      res.reason = std::string(trim(line->substr(code_pos + parts[1].size())));
    }
    res.ts_micros = ts;
    if (!parse_header_block(cursor, res.headers)) break;

    // 1xx/204/304 have no body.
    const bool bodyless = res.status_code < 200 || res.status_code == 204 ||
                          res.status_code == 304;
    if (!bodyless) {
      if (const auto te = res.headers.get("Transfer-Encoding");
          te && dm::util::ifind(*te, "chunked") != std::string_view::npos) {
        auto body = read_chunked_body(cursor);
        if (!body) break;
        res.body = std::move(*body);
      } else if (const auto cl = res.headers.get("Content-Length")) {
        const long n = parse_long(*cl, -1);
        if (n < 0) break;
        auto body = cursor.read_bytes(static_cast<std::size_t>(n));
        if (!body) break;
        res.body = std::move(*body);
      } else if (connection_closed) {
        // Close-delimited body: everything to end of stream.
        res.body = std::string(cursor.rest());
        cursor.pos = stream.data.size();
      } else {
        // No length framing and the connection is still open: the body is
        // not yet complete, so stop without emitting this response.
        break;
      }
    }
    responses.push_back(std::move(res));
  }
  return responses;
}

std::vector<HttpTransaction> transactions_from_flow(const dm::net::TcpFlow& flow) {
  auto requests = parse_requests(flow.client_to_server);
  auto responses = parse_responses(flow.server_to_client, flow.closed);

  std::vector<HttpTransaction> transactions;
  transactions.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    HttpTransaction txn;
    txn.client_host = flow.client_ip.to_string();
    txn.server_ip = flow.server_ip.to_string();
    txn.server_port = flow.server_port;
    txn.request = std::move(requests[i]);
    const std::string host = txn.request.host();
    txn.server_host = host.empty() ? txn.server_ip : host;
    if (i < responses.size()) txn.response = std::move(responses[i]);
    transactions.push_back(std::move(txn));
  }
  return transactions;
}

}  // namespace dm::http

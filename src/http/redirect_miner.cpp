#include "http/redirect_miner.h"

#include <algorithm>
#include <cctype>

#include "util/strings.h"

namespace dm::http {
namespace {

using dm::util::ifind;
using dm::util::to_lower;

int hex_val(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Pulls an absolute http(s) URL starting at `pos` (which must point at the
/// scheme); stops at quotes, whitespace, angle brackets or backslash.
std::string read_url(std::string_view text, std::size_t pos) {
  std::size_t end = pos;
  while (end < text.size()) {
    const char c = text[end];
    if (c == '"' || c == '\'' || c == ' ' || c == '\t' || c == '\n' ||
        c == '\r' || c == '<' || c == '>' || c == '\\' || c == ')' || c == ';') {
      break;
    }
    ++end;
  }
  return std::string(text.substr(pos, end - pos));
}

/// All absolute URLs appearing in `text`.
std::vector<std::string> find_urls(std::string_view text) {
  std::vector<std::string> urls;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const auto at = ifind(text.substr(pos), "http");
    if (at == std::string_view::npos) break;
    const std::size_t abs = pos + at;
    const auto rest = text.substr(abs);
    if (dm::util::istarts_with(rest, "http://") ||
        dm::util::istarts_with(rest, "https://")) {
      auto url = read_url(text, abs);
      if (url.size() > 10) urls.push_back(std::move(url));
      pos = abs + 7;
    } else {
      pos = abs + 4;
    }
  }
  return urls;
}

/// Extracts the attribute value following `needle` (e.g. `src=`), handling
/// both quoted and bare forms.  Returns empty when not found after `from`.
std::pair<std::string, std::size_t> attr_value_after(std::string_view text,
                                                     std::size_t from,
                                                     std::string_view needle) {
  const auto at = ifind(text.substr(from), needle);
  if (at == std::string_view::npos) return {{}, std::string_view::npos};
  std::size_t pos = from + at + needle.size();
  while (pos < text.size() && (text[pos] == ' ' || text[pos] == '=')) ++pos;
  if (pos >= text.size()) return {{}, std::string_view::npos};
  char quote = 0;
  if (text[pos] == '"' || text[pos] == '\'') quote = text[pos++];
  std::size_t end = pos;
  while (end < text.size()) {
    const char c = text[end];
    if (quote ? c == quote : (c == ' ' || c == '>' || c == '"' || c == '\'')) break;
    ++end;
  }
  return {std::string(text.substr(pos, end - pos)), end};
}

void add_evidence(std::vector<RedirectEvidence>& out, std::string url,
                  RedirectKind kind) {
  std::string host = host_of_url(url);
  if (host.empty()) return;
  // Dedup identical (url, kind) pairs.
  for (const auto& e : out) {
    if (e.target_url == url && e.kind == kind) return;
  }
  out.push_back({std::move(url), std::move(host), kind});
}

void mine_meta_refresh(std::string_view body, std::vector<RedirectEvidence>& out) {
  std::size_t pos = 0;
  while (pos < body.size()) {
    const auto at = ifind(body.substr(pos), "http-equiv");
    if (at == std::string_view::npos) break;
    const std::size_t abs = pos + at;
    // Check it's a refresh meta within a reasonable window.
    const auto window = body.substr(abs, 400);
    if (ifind(window, "refresh") != std::string_view::npos) {
      const auto [content, end] = attr_value_after(body, abs, "content");
      if (!content.empty()) {
        const auto url_at = ifind(content, "url=");
        if (url_at != std::string_view::npos) {
          add_evidence(out, std::string(dm::util::trim(
                                std::string_view(content).substr(url_at + 4))),
                       RedirectKind::kMetaRefresh);
        }
      }
    }
    pos = abs + 10;
  }
}

void mine_iframes(std::string_view body, std::vector<RedirectEvidence>& out) {
  std::size_t pos = 0;
  while (pos < body.size()) {
    const auto at = ifind(body.substr(pos), "<iframe");
    if (at == std::string_view::npos) break;
    const std::size_t abs = pos + at;
    const auto [src, end] = attr_value_after(body, abs, "src");
    if (!src.empty()) add_evidence(out, src, RedirectKind::kIframe);
    pos = abs + 7;
  }
}

void mine_js_locations(std::string_view body, RedirectKind kind,
                       std::vector<RedirectEvidence>& out) {
  static constexpr std::string_view kPatterns[] = {
      "window.location", "document.location", "location.href",
      "top.location",    "location.replace",  "location.assign",
  };
  for (auto pattern : kPatterns) {
    std::size_t pos = 0;
    while (pos < body.size()) {
      const auto at = ifind(body.substr(pos), pattern);
      if (at == std::string_view::npos) break;
      const std::size_t abs = pos + at;
      // Look for an absolute URL within the next 300 chars.
      const auto window = body.substr(abs, 300);
      for (auto& url : find_urls(window)) {
        add_evidence(out, std::move(url), kind);
      }
      pos = abs + pattern.size();
    }
  }
}

}  // namespace

std::string_view redirect_kind_name(RedirectKind kind) noexcept {
  switch (kind) {
    case RedirectKind::kLocationHeader: return "location-header";
    case RedirectKind::kMetaRefresh: return "meta-refresh";
    case RedirectKind::kIframe: return "iframe";
    case RedirectKind::kJavaScript: return "javascript";
    case RedirectKind::kObfuscatedJavaScript: return "obfuscated-js";
  }
  return "?";
}

std::string host_of_url(std::string_view url) {
  std::string_view rest;
  if (dm::util::istarts_with(url, "http://")) {
    rest = url.substr(7);
  } else if (dm::util::istarts_with(url, "https://")) {
    rest = url.substr(8);
  } else {
    return {};
  }
  const auto end = rest.find_first_of("/:?#");
  const auto host = end == std::string_view::npos ? rest : rest.substr(0, end);
  if (host.empty()) return {};
  return to_lower(host);
}

std::string decode_obfuscated_layers(std::string_view text) {
  std::string decoded;

  // Layer 1: \xHH and \uHHHH escapes anywhere in the body.
  std::string unescaped;
  bool saw_escape = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\\' && i + 3 < text.size() && text[i + 1] == 'x') {
      const int hi = hex_val(text[i + 2]);
      const int lo = hex_val(text[i + 3]);
      if (hi >= 0 && lo >= 0) {
        unescaped += static_cast<char>(hi * 16 + lo);
        i += 3;
        saw_escape = true;
        continue;
      }
    }
    if (text[i] == '\\' && i + 5 < text.size() && text[i + 1] == 'u') {
      const int a = hex_val(text[i + 2]);
      const int b = hex_val(text[i + 3]);
      const int c = hex_val(text[i + 4]);
      const int d = hex_val(text[i + 5]);
      if (a >= 0 && b >= 0 && c >= 0 && d >= 0) {
        const int code = ((a * 16 + b) * 16 + c) * 16 + d;
        if (code < 128) unescaped += static_cast<char>(code);
        i += 5;
        saw_escape = true;
        continue;
      }
    }
    unescaped += text[i];
  }
  if (saw_escape) decoded += unescaped;

  // Layer 2: unescape('%68%74...') percent-encoding.
  std::size_t pos = 0;
  while (pos < text.size()) {
    const auto at = ifind(text.substr(pos), "unescape(");
    if (at == std::string_view::npos) break;
    std::size_t start = pos + at + 9;
    if (start < text.size() && (text[start] == '"' || text[start] == '\'')) {
      const char quote = text[start];
      const auto end = text.find(quote, start + 1);
      if (end != std::string_view::npos) {
        decoded += dm::util::url_decode(text.substr(start + 1, end - start - 1));
      }
    }
    pos = start;
  }

  // Layer 3: atob('...') base64.
  pos = 0;
  while (pos < text.size()) {
    const auto at = ifind(text.substr(pos), "atob(");
    if (at == std::string_view::npos) break;
    std::size_t start = pos + at + 5;
    if (start < text.size() && (text[start] == '"' || text[start] == '\'')) {
      const char quote = text[start];
      const auto end = text.find(quote, start + 1);
      if (end != std::string_view::npos) {
        decoded += dm::util::base64_decode(text.substr(start + 1, end - start - 1));
      }
    }
    pos = start;
  }
  return decoded;
}

std::vector<RedirectEvidence> mine_redirects(const HttpTransaction& txn,
                                             const RedirectMinerOptions& options) {
  std::vector<RedirectEvidence> out;
  if (!txn.response) return out;
  const HttpResponse& res = *txn.response;

  if (res.is_redirect()) {
    if (const auto loc = res.location()) {
      add_evidence(out, std::string(*loc), RedirectKind::kLocationHeader);
    }
  }

  if (res.body.empty() || res.body.size() > options.max_body_bytes) return out;
  // Only mine markup/script bodies.
  const auto ct = res.content_type().value_or("");
  const bool minable = ct.empty() ||
                       ifind(ct, "html") != std::string_view::npos ||
                       ifind(ct, "javascript") != std::string_view::npos ||
                       ifind(ct, "ecmascript") != std::string_view::npos;
  if (!minable) return out;

  mine_meta_refresh(res.body, out);
  mine_iframes(res.body, out);
  mine_js_locations(res.body, RedirectKind::kJavaScript, out);

  if (options.deobfuscate) {
    const std::string layer = decode_obfuscated_layers(res.body);
    if (!layer.empty()) {
      mine_js_locations(layer, RedirectKind::kObfuscatedJavaScript, out);
      mine_iframes(layer, out);
      // A decoded layer consisting of a bare URL is itself evidence.
      const auto urls = find_urls(layer);
      // Only treat bare URLs as redirects when the visible body had none —
      // benign pages embed absolute links everywhere.
      if (out.empty()) {
        for (const auto& url : urls) {
          add_evidence(out, url, RedirectKind::kObfuscatedJavaScript);
        }
      }
    }
  }
  return out;
}

}  // namespace dm::http

// HTTP/1.x message model: requests, responses, and the paired transaction
// unit that the WCG builder consumes.  Header lookup is case-insensitive
// per RFC 7230.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dm::http {

struct Header {
  std::string name;
  std::string value;
};

/// Common header-list behavior shared by requests and responses.
class Headers {
 public:
  void add(std::string name, std::string value);

  /// First header with the given name (case-insensitive); nullopt if absent.
  std::optional<std::string_view> get(std::string_view name) const noexcept;

  bool has(std::string_view name) const noexcept { return get(name).has_value(); }
  std::size_t size() const noexcept { return headers_.size(); }
  const std::vector<Header>& all() const noexcept { return headers_; }

 private:
  std::vector<Header> headers_;
};

struct HttpRequest {
  std::string method;   // "GET", "POST", ...
  std::string uri;      // request-target as sent (origin form)
  std::string version;  // "HTTP/1.1"
  Headers headers;
  std::string body;
  std::uint64_t ts_micros = 0;  // arrival time of the request line

  /// Host header value (lower-cased), or empty.
  std::string host() const;
  std::optional<std::string_view> referrer() const noexcept;
  std::optional<std::string_view> user_agent() const noexcept;
};

struct HttpResponse {
  int status_code = 0;
  std::string reason;
  std::string version;
  Headers headers;
  std::string body;
  std::uint64_t ts_micros = 0;

  std::optional<std::string_view> content_type() const noexcept;
  std::optional<std::string_view> location() const noexcept;
  bool is_redirect() const noexcept {
    return status_code >= 300 && status_code < 400;
  }
};

/// One request/response pair between a client and a server, the atomic unit
/// of a web conversation (paper §III: "HTTP request-response transactions").
struct HttpTransaction {
  std::string client_host;  // IP literal of the victim-side endpoint
  std::string server_host;  // Host header if present, else server IP literal
  std::string server_ip;
  std::uint16_t server_port = 0;
  HttpRequest request;
  /// Response may be absent if the capture ended mid-transaction.
  std::optional<HttpResponse> response;
};

}  // namespace dm::http

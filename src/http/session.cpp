#include "http/session.h"

#include <array>

#include "util/strings.h"

namespace dm::http {
namespace {

constexpr std::array<std::string_view, 8> kSessionKeys = {
    "phpsessid", "jsessionid", "asp.net_sessionid", "sid",
    "sessionid", "session_id", "session", "sess",
};

bool is_session_key(std::string_view key) {
  for (auto k : kSessionKeys) {
    if (dm::util::iequals(key, k)) return true;
  }
  return false;
}

std::optional<std::string> from_pairs(std::string_view text, char pair_sep) {
  for (auto pair : dm::util::split_trimmed(text, pair_sep)) {
    const auto eq = pair.find('=');
    if (eq == std::string_view::npos) continue;
    const auto key = dm::util::trim(pair.substr(0, eq));
    const auto value = dm::util::trim(pair.substr(eq + 1));
    if (is_session_key(key) && !value.empty()) return std::string(value);
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::string> session_id_from_cookie(std::string_view cookie_value) {
  return from_pairs(cookie_value, ';');
}

std::optional<std::string> session_id_from_uri(std::string_view uri) {
  const auto q = uri.find('?');
  if (q == std::string_view::npos) return std::nullopt;
  auto query = uri.substr(q + 1);
  const auto frag = query.find('#');
  if (frag != std::string_view::npos) query = query.substr(0, frag);
  return from_pairs(query, '&');
}

std::optional<std::string> extract_session_id(const HttpTransaction& txn) {
  if (const auto cookie = txn.request.headers.get("Cookie")) {
    if (auto sid = session_id_from_cookie(*cookie)) return sid;
  }
  if (txn.response) {
    if (const auto set_cookie = txn.response->headers.get("Set-Cookie")) {
      if (auto sid = session_id_from_cookie(*set_cookie)) return sid;
    }
  }
  return session_id_from_uri(txn.request.uri);
}

}  // namespace dm::http

// Redirect evidence mining (paper §III-D "Notes on Heuristics").
//
// Pre-download redirections are inferred primarily from Referer and Location
// headers, but exploit kits bury redirects in HTML and obfuscated
// JavaScript.  This miner recovers them from:
//   * Location headers on 30x responses,
//   * <meta http-equiv=refresh> tags,
//   * <iframe src=...> injections (the classic EK landing-page hop),
//   * JavaScript location assignments (window.location, location.href, ...),
//   * the same assignments hidden behind \xHH / \uHHHH string escapes,
//     unescape('%68%74%74%70...') percent-encoding, and atob('...') base64 —
//     the common packer idioms the paper "reverse engineers".
#pragma once

#include <string>
#include <vector>

#include "http/message.h"

namespace dm::http {

enum class RedirectKind {
  kLocationHeader,
  kMetaRefresh,
  kIframe,
  kJavaScript,           // plain location assignment
  kObfuscatedJavaScript, // recovered only after de-obfuscation
};

std::string_view redirect_kind_name(RedirectKind kind) noexcept;

struct RedirectEvidence {
  std::string target_url;   // absolute URL as recovered
  std::string target_host;  // lower-cased host component
  RedirectKind kind;
};

struct RedirectMinerOptions {
  /// When false, only Location headers and visible HTML/JS are mined —
  /// the de-obfuscation pass is skipped (design-choice ablation).
  bool deobfuscate = true;
  /// Bodies larger than this are not mined (video/binary payloads).
  std::size_t max_body_bytes = 1 << 20;
};

/// Mines all redirect evidence from one transaction's response.
std::vector<RedirectEvidence> mine_redirects(const HttpTransaction& txn,
                                             const RedirectMinerOptions& options = {});

/// Decodes the obfuscation layers found in `text`: \xHH and \uHHHH string
/// escapes, unescape('%..') percent-encoding, atob('..') base64.  Returns
/// the concatenation of every decoded fragment (empty if none).
std::string decode_obfuscated_layers(std::string_view text);

/// Extracts the host from an absolute http(s) URL; empty when not absolute.
std::string host_of_url(std::string_view url);

}  // namespace dm::http

#include "http/message.h"

#include "util/strings.h"

namespace dm::http {

void Headers::add(std::string name, std::string value) {
  headers_.push_back({std::move(name), std::move(value)});
}

std::optional<std::string_view> Headers::get(std::string_view name) const noexcept {
  for (const auto& h : headers_) {
    if (dm::util::iequals(h.name, name)) return std::string_view(h.value);
  }
  return std::nullopt;
}

std::string HttpRequest::host() const {
  const auto h = headers.get("Host");
  if (!h) return {};
  // Strip an explicit port.
  const auto colon = h->find(':');
  return dm::util::to_lower(colon == std::string_view::npos ? *h
                                                            : h->substr(0, colon));
}

std::optional<std::string_view> HttpRequest::referrer() const noexcept {
  return headers.get("Referer");
}

std::optional<std::string_view> HttpRequest::user_agent() const noexcept {
  return headers.get("User-Agent");
}

std::optional<std::string_view> HttpResponse::content_type() const noexcept {
  return headers.get("Content-Type");
}

std::optional<std::string_view> HttpResponse::location() const noexcept {
  return headers.get("Location");
}

}  // namespace dm::http

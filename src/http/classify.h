// Payload-type classification from Content-Type headers and URI extensions.
// Mirrors the paper's node-level "payload summary" annotation (§III-C):
// known exploit types (*.jar, *.exe, *.pdf, *.xap, *.swf), commonly exchanged
// content (images, HTML, JavaScript, archives, text), plus the 45-extension
// ransomware/crypto-locker list the paper compiled from industry reports.
#pragma once

#include <optional>
#include <string_view>

namespace dm::http {

enum class PayloadType {
  kNone,        // no body / unknown
  kHtml,
  kJavaScript,
  kCss,
  kImage,
  kJson,
  kText,
  kPdf,         // exploit-prone
  kExe,         // executable (exe, dll, msi, dmg, bin)
  kJar,
  kSwf,         // Flash
  kSilverlight, // xap
  kCrypt,       // ransomware file extensions
  kArchive,     // zip, rar, gz, 7z
  kOffice,      // doc(x), xls(x), ppt(x)
  kVideo,
  kOther,
};

/// Human-readable name ("exe", "swf", ...).
std::string_view payload_type_name(PayloadType type) noexcept;

/// Known exploit payload types per the paper: jar, exe, pdf, xap, swf,
/// plus crypto-locker extensions.
bool is_exploit_type(PayloadType type) noexcept;

/// Downloadable artifact types that trigger the on-the-wire infection clue
/// (risky downloads): exploit types plus archives (compressed payload
/// delivery was a false-negative source the paper discusses in §VI-B).
bool is_download_type(PayloadType type) noexcept;

/// Classifies by Content-Type value (may be empty) with the URI extension
/// as tie-breaker — extension wins when the content type is generic
/// (application/octet-stream), matching how analysts label traffic.
PayloadType classify_payload(std::string_view content_type,
                             std::string_view uri) noexcept;

/// Classification from a bare file extension (no dot), lower-case.
PayloadType classify_extension(std::string_view extension) noexcept;

/// True if `extension` (no dot) is one of the 45 ransomware extensions.
bool is_ransomware_extension(std::string_view extension) noexcept;

}  // namespace dm::http

#include "http/transaction_stream.h"

#include <algorithm>

#include "http/parser.h"
#include "net/packet.h"
#include "net/tcp_reassembly.h"
#include "obs/pipeline.h"
#include "obs/timer.h"

namespace dm::http {

std::vector<HttpTransaction> transactions_from_pcap(
    const dm::net::PcapFile& capture, dm::util::FaultStats* faults) {
  auto& obs = dm::obs::pipeline_metrics();
  const dm::obs::StageTimer timer;

  // Frame parse + TCP reassembly, timed per capture (a per-packet span would
  // cost two clock reads per packet — more than the work it measures).
  auto reassembly_span = timer.span(obs.stage_tcp_reassembly_ns);
  dm::net::TcpReassembler reassembler{dm::net::ReassemblyOptions{}, faults};
  for (const auto& pkt : capture.packets) {
    if (const auto parsed = dm::net::parse_ethernet_ipv4_tcp(pkt.data)) {
      reassembler.ingest(*parsed, pkt.ts_micros);
    } else if (faults) {
      faults->record(dm::util::DecodeErrorCode::kFrameUndecodable);
    }
  }
  reassembly_span.stop();
  obs.net_packets.add(capture.packets.size());

  std::vector<HttpTransaction> all;
  for (const dm::net::TcpFlow* flow : reassembler.flows()) {
    auto parse_span = timer.span(obs.stage_http_parse_ns);
    auto txns = transactions_from_flow(*flow, faults);
    parse_span.stop();
    all.insert(all.end(), std::make_move_iterator(txns.begin()),
               std::make_move_iterator(txns.end()));
  }
  obs.http_transactions.add(all.size());
  std::stable_sort(all.begin(), all.end(),
                   [](const HttpTransaction& a, const HttpTransaction& b) {
                     return a.request.ts_micros < b.request.ts_micros;
                   });
  return all;
}

std::vector<HttpTransaction> transactions_from_pcap_file(const std::string& path) {
  auto span = dm::obs::StageTimer{}.span(
      dm::obs::pipeline_metrics().stage_pcap_decode_ns);
  auto capture = dm::net::read_pcap_file(path);
  span.stop();
  return transactions_from_pcap(capture);
}

std::vector<HttpTransaction> transactions_from_pcap_file(
    const std::string& path, dm::util::FaultStats* faults) {
  auto span = dm::obs::StageTimer{}.span(
      dm::obs::pipeline_metrics().stage_pcap_decode_ns);
  const auto decoded = dm::net::decode_pcap_file(path, {}, faults);
  span.stop();
  return transactions_from_pcap(decoded.file, faults);
}

}  // namespace dm::http

#include "http/transaction_stream.h"

#include <algorithm>

#include "http/parser.h"
#include "net/packet.h"
#include "net/tcp_reassembly.h"

namespace dm::http {

std::vector<HttpTransaction> transactions_from_pcap(const dm::net::PcapFile& capture) {
  dm::net::TcpReassembler reassembler;
  for (const auto& pkt : capture.packets) {
    if (const auto parsed = dm::net::parse_ethernet_ipv4_tcp(pkt.data)) {
      reassembler.ingest(*parsed, pkt.ts_micros);
    }
  }

  std::vector<HttpTransaction> all;
  for (const dm::net::TcpFlow* flow : reassembler.flows()) {
    auto txns = transactions_from_flow(*flow);
    all.insert(all.end(), std::make_move_iterator(txns.begin()),
               std::make_move_iterator(txns.end()));
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const HttpTransaction& a, const HttpTransaction& b) {
                     return a.request.ts_micros < b.request.ts_micros;
                   });
  return all;
}

std::vector<HttpTransaction> transactions_from_pcap_file(const std::string& path) {
  return transactions_from_pcap(dm::net::read_pcap_file(path));
}

}  // namespace dm::http

#include "http/transaction_stream.h"

#include <algorithm>

#include "http/parser.h"
#include "net/packet.h"
#include "net/tcp_reassembly.h"

namespace dm::http {

std::vector<HttpTransaction> transactions_from_pcap(
    const dm::net::PcapFile& capture, dm::util::FaultStats* faults) {
  dm::net::TcpReassembler reassembler{dm::net::ReassemblyOptions{}, faults};
  for (const auto& pkt : capture.packets) {
    if (const auto parsed = dm::net::parse_ethernet_ipv4_tcp(pkt.data)) {
      reassembler.ingest(*parsed, pkt.ts_micros);
    } else if (faults) {
      faults->record(dm::util::DecodeErrorCode::kFrameUndecodable);
    }
  }

  std::vector<HttpTransaction> all;
  for (const dm::net::TcpFlow* flow : reassembler.flows()) {
    auto txns = transactions_from_flow(*flow, faults);
    all.insert(all.end(), std::make_move_iterator(txns.begin()),
               std::make_move_iterator(txns.end()));
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const HttpTransaction& a, const HttpTransaction& b) {
                     return a.request.ts_micros < b.request.ts_micros;
                   });
  return all;
}

std::vector<HttpTransaction> transactions_from_pcap_file(const std::string& path) {
  return transactions_from_pcap(dm::net::read_pcap_file(path));
}

std::vector<HttpTransaction> transactions_from_pcap_file(
    const std::string& path, dm::util::FaultStats* faults) {
  const auto decoded = dm::net::decode_pcap_file(path, {}, faults);
  return transactions_from_pcap(decoded.file, faults);
}

}  // namespace dm::http

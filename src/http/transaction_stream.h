// End-to-end extraction: pcap bytes -> TCP reassembly -> HTTP parsing ->
// time-ordered transaction stream.  This is the entry point of the paper's
// Stage 1 pipeline ("Given a stream of HTTP transactions...").
#pragma once

#include <vector>

#include "http/message.h"
#include "net/pcap.h"

namespace dm::http {

/// Reconstructs every HTTP transaction in a capture, ordered by request
/// timestamp.  Non-TCP/non-HTTP traffic is skipped silently.
std::vector<HttpTransaction> transactions_from_pcap(const dm::net::PcapFile& capture);

/// Convenience file-path overload.
std::vector<HttpTransaction> transactions_from_pcap_file(const std::string& path);

}  // namespace dm::http

// End-to-end extraction: pcap bytes -> TCP reassembly -> HTTP parsing ->
// time-ordered transaction stream.  This is the entry point of the paper's
// Stage 1 pipeline ("Given a stream of HTTP transactions...").
//
// The whole path is fault-tolerant: undecodable frames, reassembly-cap
// drops and malformed HTTP messages are quarantined into the (optional)
// util::FaultStats while every salvageable transaction still comes out.
#pragma once

#include <vector>

#include "http/message.h"
#include "net/pcap.h"
#include "util/fault_stats.h"

namespace dm::http {

/// Reconstructs every HTTP transaction in a capture, ordered by request
/// timestamp.  Frames that do not decode as Ethernet/IPv4/TCP are skipped;
/// when `faults` is given each skip is counted (frame/undecodable-frame —
/// benign in mixed traffic, a corruption signal in TCP-only captures), as
/// are TCP- and HTTP-layer quarantine events.
std::vector<HttpTransaction> transactions_from_pcap(
    const dm::net::PcapFile& capture, dm::util::FaultStats* faults = nullptr);

/// Convenience file-path overload (throws on I/O error).  With `faults`,
/// capture-file decode faults are quarantined and counted instead of
/// thrown; without, a fatally-malformed capture header still throws
/// (legacy read_pcap_file semantics).
std::vector<HttpTransaction> transactions_from_pcap_file(
    const std::string& path);
std::vector<HttpTransaction> transactions_from_pcap_file(
    const std::string& path, dm::util::FaultStats* faults);

}  // namespace dm::http

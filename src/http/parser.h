// HTTP/1.x stream parser: turns the two reassembled byte streams of a TCP
// flow into a sequence of paired HttpTransactions.  Supports
// Content-Length-delimited and chunked bodies, plus close-delimited
// responses (body runs to end of stream on a closed flow).
//
// Pairing follows HTTP/1.1 pipelining rules: the k-th response on a
// connection answers the k-th request.
//
// Parsing is best-effort: malformed framing (garbage request line, bad
// Content-Length, broken chunk header) quarantines the bad region — a
// util::DecodeError naming the fault and its byte offset — and the parser
// RESYNCS to the next plausible message start instead of abandoning the
// rest of the stream.  Exploit kits ship deliberately broken messages
// exactly so that naive parsers give up before the payload; the resync
// keeps later transactions (and their infection evidence) visible.
// A stream that merely ends mid-message is "truncated", not malformed:
// already-parsed messages are returned and the cut is reported once.
#pragma once

#include <vector>

#include "http/message.h"
#include "net/tcp_reassembly.h"
#include "util/expected.h"
#include "util/fault_stats.h"

namespace dm::http {

/// Requests salvaged from a client->server stream plus the quarantined
/// faults (in stream order).
struct RequestParseResult {
  std::vector<HttpRequest> requests;
  std::vector<dm::util::DecodeError> errors;
};

/// Responses salvaged from a server->client stream plus quarantined faults.
struct ResponseParseResult {
  std::vector<HttpResponse> responses;
  std::vector<dm::util::DecodeError> errors;
};

/// Best-effort request parse with resync and fault accounting.
RequestParseResult parse_requests_ex(const dm::net::DirectionStream& stream,
                                     dm::util::FaultStats* faults = nullptr);

/// Best-effort response parse; `connection_closed` allows a final
/// close-delimited body to be accepted.
ResponseParseResult parse_responses_ex(const dm::net::DirectionStream& stream,
                                       bool connection_closed,
                                       dm::util::FaultStats* faults = nullptr);

/// Convenience wrappers returning just the messages.
std::vector<HttpRequest> parse_requests(const dm::net::DirectionStream& stream);
std::vector<HttpResponse> parse_responses(const dm::net::DirectionStream& stream,
                                          bool connection_closed);

/// Full flow -> paired transactions, with endpoint metadata filled in.
/// Quarantined parse faults are counted into `faults` when given.
std::vector<HttpTransaction> transactions_from_flow(
    const dm::net::TcpFlow& flow, dm::util::FaultStats* faults = nullptr);

}  // namespace dm::http

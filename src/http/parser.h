// HTTP/1.x stream parser: turns the two reassembled byte streams of a TCP
// flow into a sequence of paired HttpTransactions.  Supports
// Content-Length-delimited and chunked bodies, plus close-delimited
// responses (body runs to end of stream on a closed flow).
//
// Pairing follows HTTP/1.1 pipelining rules: the k-th response on a
// connection answers the k-th request.
#pragma once

#include <vector>

#include "http/message.h"
#include "net/tcp_reassembly.h"

namespace dm::http {

/// Parses all requests from a client->server stream.  Malformed data stops
/// parsing at the malformed point (already-parsed messages are returned).
std::vector<HttpRequest> parse_requests(const dm::net::DirectionStream& stream);

/// Parses all responses from a server->client stream.  `connection_closed`
/// allows a final close-delimited body to be accepted.
std::vector<HttpResponse> parse_responses(const dm::net::DirectionStream& stream,
                                          bool connection_closed);

/// Full flow -> paired transactions, with endpoint metadata filled in.
std::vector<HttpTransaction> transactions_from_flow(const dm::net::TcpFlow& flow);

}  // namespace dm::http

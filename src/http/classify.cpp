#include "http/classify.h"

#include <algorithm>
#include <array>

#include "util/strings.h"

namespace dm::http {
namespace {

using dm::util::iequals;
using dm::util::ifind;

// The paper matched conversations against "45 distinct file extensions that
// we compiled from industry reports on ransomware" [10].  This list follows
// the widely circulated sysadmin compilation the paper cites.
constexpr std::array<std::string_view, 45> kRansomwareExtensions = {
    "crypt",    "crypto",  "locky",    "zepto",   "odin",    "cerber",
    "cerber2",  "cerber3", "crysis",   "cryp1",   "crypz",   "cryptowall",
    "ecc",      "ezz",     "exx",      "zzz",     "xyz",     "aaa",
    "abc",      "ccc",     "vvv",      "xxx",     "ttt",     "micro",
    "encrypted","locked",  "crinf",    "r5a",     "xrtn",    "xtbl",
    "rdm",      "rrk",     "encryptedrsa", "crjoker", "enciphered",
    "lechiffre","keybtc@inbox_com", "0x0", "bleep", "1999",
    "vault",    "ha3",     "toxcrypt", "magic",   "surprise",
};

bool ext_is(std::string_view ext, std::string_view candidate) noexcept {
  return iequals(ext, candidate);
}

}  // namespace

std::string_view payload_type_name(PayloadType type) noexcept {
  switch (type) {
    case PayloadType::kNone: return "none";
    case PayloadType::kHtml: return "html";
    case PayloadType::kJavaScript: return "js";
    case PayloadType::kCss: return "css";
    case PayloadType::kImage: return "image";
    case PayloadType::kJson: return "json";
    case PayloadType::kText: return "text";
    case PayloadType::kPdf: return "pdf";
    case PayloadType::kExe: return "exe";
    case PayloadType::kJar: return "jar";
    case PayloadType::kSwf: return "swf";
    case PayloadType::kSilverlight: return "xap";
    case PayloadType::kCrypt: return "crypt";
    case PayloadType::kArchive: return "archive";
    case PayloadType::kOffice: return "office";
    case PayloadType::kVideo: return "video";
    case PayloadType::kOther: return "other";
  }
  return "?";
}

bool is_exploit_type(PayloadType type) noexcept {
  switch (type) {
    case PayloadType::kPdf:
    case PayloadType::kExe:
    case PayloadType::kJar:
    case PayloadType::kSwf:
    case PayloadType::kSilverlight:
    case PayloadType::kCrypt:
      return true;
    default:
      return false;
  }
}

bool is_download_type(PayloadType type) noexcept {
  return is_exploit_type(type) || type == PayloadType::kArchive ||
         type == PayloadType::kOffice;
}

bool is_ransomware_extension(std::string_view extension) noexcept {
  return std::any_of(kRansomwareExtensions.begin(), kRansomwareExtensions.end(),
                     [&](std::string_view e) { return iequals(e, extension); });
}

PayloadType classify_extension(std::string_view ext) noexcept {
  if (ext.empty()) return PayloadType::kNone;
  if (is_ransomware_extension(ext)) return PayloadType::kCrypt;
  if (ext_is(ext, "html") || ext_is(ext, "htm") || ext_is(ext, "php") ||
      ext_is(ext, "asp") || ext_is(ext, "aspx") || ext_is(ext, "jsp")) {
    return PayloadType::kHtml;
  }
  if (ext_is(ext, "js")) return PayloadType::kJavaScript;
  if (ext_is(ext, "css")) return PayloadType::kCss;
  if (ext_is(ext, "png") || ext_is(ext, "jpg") || ext_is(ext, "jpeg") ||
      ext_is(ext, "gif") || ext_is(ext, "ico") || ext_is(ext, "svg") ||
      ext_is(ext, "webp") || ext_is(ext, "bmp")) {
    return PayloadType::kImage;
  }
  if (ext_is(ext, "json")) return PayloadType::kJson;
  if (ext_is(ext, "txt") || ext_is(ext, "xml") || ext_is(ext, "csv")) {
    return PayloadType::kText;
  }
  if (ext_is(ext, "pdf")) return PayloadType::kPdf;
  if (ext_is(ext, "exe") || ext_is(ext, "dll") || ext_is(ext, "msi") ||
      ext_is(ext, "dmg") || ext_is(ext, "bin") || ext_is(ext, "scr") ||
      ext_is(ext, "com")) {
    return PayloadType::kExe;
  }
  if (ext_is(ext, "jar") || ext_is(ext, "class")) return PayloadType::kJar;
  if (ext_is(ext, "swf")) return PayloadType::kSwf;
  if (ext_is(ext, "xap")) return PayloadType::kSilverlight;
  if (ext_is(ext, "zip") || ext_is(ext, "rar") || ext_is(ext, "gz") ||
      ext_is(ext, "tgz") || ext_is(ext, "7z") || ext_is(ext, "bz2") ||
      ext_is(ext, "cab")) {
    return PayloadType::kArchive;
  }
  if (ext_is(ext, "doc") || ext_is(ext, "docx") || ext_is(ext, "xls") ||
      ext_is(ext, "xlsx") || ext_is(ext, "ppt") || ext_is(ext, "pptx") ||
      ext_is(ext, "rtf")) {
    return PayloadType::kOffice;
  }
  if (ext_is(ext, "mp4") || ext_is(ext, "webm") || ext_is(ext, "flv") ||
      ext_is(ext, "avi") || ext_is(ext, "ts") || ext_is(ext, "m3u8")) {
    return PayloadType::kVideo;
  }
  return PayloadType::kOther;
}

PayloadType classify_payload(std::string_view content_type,
                             std::string_view uri) noexcept {
  const std::string ext = dm::util::uri_extension(uri);
  const PayloadType from_ext = classify_extension(ext);

  if (content_type.empty()) return from_ext;

  // Generic container types defer to the extension.
  if (ifind(content_type, "octet-stream") != std::string_view::npos ||
      ifind(content_type, "application/download") != std::string_view::npos) {
    return from_ext != PayloadType::kNone && from_ext != PayloadType::kOther
               ? from_ext
               : PayloadType::kExe;
  }
  if (ifind(content_type, "text/html") != std::string_view::npos) return PayloadType::kHtml;
  if (ifind(content_type, "javascript") != std::string_view::npos ||
      ifind(content_type, "ecmascript") != std::string_view::npos) {
    return PayloadType::kJavaScript;
  }
  if (ifind(content_type, "text/css") != std::string_view::npos) return PayloadType::kCss;
  if (ifind(content_type, "image/") != std::string_view::npos) return PayloadType::kImage;
  if (ifind(content_type, "application/json") != std::string_view::npos) {
    return PayloadType::kJson;
  }
  if (ifind(content_type, "application/pdf") != std::string_view::npos) {
    return PayloadType::kPdf;
  }
  if (ifind(content_type, "java-archive") != std::string_view::npos) {
    return PayloadType::kJar;
  }
  if (ifind(content_type, "shockwave-flash") != std::string_view::npos ||
      ifind(content_type, "x-flash") != std::string_view::npos) {
    return PayloadType::kSwf;
  }
  if (ifind(content_type, "silverlight") != std::string_view::npos ||
      ifind(content_type, "x-silverlight") != std::string_view::npos) {
    return PayloadType::kSilverlight;
  }
  if (ifind(content_type, "msdownload") != std::string_view::npos ||
      ifind(content_type, "x-msdos-program") != std::string_view::npos ||
      ifind(content_type, "x-executable") != std::string_view::npos) {
    return PayloadType::kExe;
  }
  if (ifind(content_type, "zip") != std::string_view::npos ||
      ifind(content_type, "x-rar") != std::string_view::npos ||
      ifind(content_type, "x-gzip") != std::string_view::npos ||
      ifind(content_type, "x-7z") != std::string_view::npos) {
    return PayloadType::kArchive;
  }
  if (ifind(content_type, "msword") != std::string_view::npos ||
      ifind(content_type, "officedocument") != std::string_view::npos ||
      ifind(content_type, "ms-excel") != std::string_view::npos ||
      ifind(content_type, "ms-powerpoint") != std::string_view::npos) {
    return PayloadType::kOffice;
  }
  if (ifind(content_type, "video/") != std::string_view::npos ||
      ifind(content_type, "mpegurl") != std::string_view::npos) {
    return PayloadType::kVideo;
  }
  if (ifind(content_type, "text/plain") != std::string_view::npos) {
    // Crypto-locker payloads often travel as text/plain with a telltale
    // extension; prefer the extension signal.
    return from_ext == PayloadType::kCrypt ? PayloadType::kCrypt : PayloadType::kText;
  }
  return from_ext != PayloadType::kNone ? from_ext : PayloadType::kOther;
}

}  // namespace dm::http

// Session identification, per the paper's on-the-wire detection (§V-B):
// "the session ID [18] of the download and the redirection chains ... are
// used to guide the grouping of HTTP transactions".  We extract session ids
// from cookies and URI query parameters, following the W3C session-id note
// the paper cites.
#pragma once

#include <optional>
#include <string>

#include "http/message.h"

namespace dm::http {

/// Extracts a session identifier from a transaction, checking (in order):
///  1. Cookie header pairs with well-known session key names
///     (PHPSESSID, JSESSIONID, ASP.NET_SessionId, sid, sessionid, ...)
///  2. Set-Cookie on the response (a session being established)
///  3. URI query parameters with the same key names
/// Returns nullopt when none found.
std::optional<std::string> extract_session_id(const HttpTransaction& txn);

/// Session-id extraction from a raw Cookie header value.
std::optional<std::string> session_id_from_cookie(std::string_view cookie_value);

/// Session-id extraction from a URI's query string.
std::optional<std::string> session_id_from_uri(std::string_view uri);

}  // namespace dm::http

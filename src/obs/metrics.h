// Process-wide metrics: named counters, gauges and log-bucketed latency
// histograms behind one MetricsRegistry, plus plain-value snapshots.
//
// Design rules (the instrument panel must never slow the instrumented):
//   * Hot-path writes are wait-free: a Counter::add / Histogram::record is a
//     single relaxed fetch-add into a per-thread shard (threads are spread
//     over kShards cache-line-isolated slots, so concurrent writers do not
//     share lines).  No locks, no allocation, no branches on the fast path.
//   * Histograms are fixed-size and log-bucketed (4 sub-buckets per power of
//     two, full uint64 range) — recording never allocates, and a snapshot
//     merges the shards into one plain-value HistogramSnapshot from which
//     p50/p95/p99 are interpolated.
//   * Registration (name -> metric lookup) takes a mutex and is meant for
//     cold paths: resolve metric references once, keep them, then hit the
//     wait-free handles from the hot loop (see obs/pipeline.h).
//   * External counters that already exist as atomics elsewhere (e.g.
//     runtime::Stats) join the registry as *callback sources*: snapshot()
//     polls them, multiple registrations under one name sum — so one
//     dm::obs::snapshot() covers the whole process.
//
// The process-global registry is obs::registry(); tests and benches can
// construct private MetricsRegistry instances for isolation.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/cacheline.h"

namespace dm::obs {

/// Global kill switch checked by Span (and honored by the instrumentation
/// sites): when false, stage timing skips its clock reads and records
/// nothing, so "metrics compiled in but idle" costs a predicted-not-taken
/// branch.  Counters stay live (a sharded fetch-add is cheaper than the
/// branch protecting it would be worth).
bool enabled() noexcept;
void set_enabled(bool on) noexcept;

namespace detail {

/// Writer shards per metric.  Threads are assigned round-robin, so up to
/// kShards concurrent writers never touch the same cache line.
inline constexpr std::size_t kShards = 8;

/// Stable per-thread shard index in [0, kShards).
std::size_t thread_shard() noexcept;

struct alignas(kCacheLineSize) PaddedAtomic {
  std::atomic<std::uint64_t> v{0};
};

}  // namespace detail

/// Monotone event count.  add() is a single relaxed fetch-add into the
/// calling thread's shard; value() merges the shards.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    shards_[detail::thread_shard()].v.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }
  void reset() noexcept {
    for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<detail::PaddedAtomic, detail::kShards> shards_{};
};

/// Last-value instrument for levels (queue depth, live sessions).  set() is
/// a relaxed store, add() a relaxed fetch-add — additive deltas make one
/// gauge correct even when N shards each own part of the level.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

// --- log-bucketed histogram ------------------------------------------------

/// Bucket layout: values 0..3 get exact buckets; beyond that each power of
/// two splits into 4 sub-buckets (HDR-style, ~12% relative error), covering
/// the full uint64 range in a fixed 252-slot array.
inline constexpr std::size_t kHistogramBuckets = 252;

constexpr std::size_t histogram_bucket(std::uint64_t v) noexcept {
  if (v < 4) return static_cast<std::size_t>(v);
  const unsigned octave = std::bit_width(v) - 1;  // >= 2
  return (static_cast<std::size_t>(octave) - 1) * 4 +
         static_cast<std::size_t>((v >> (octave - 2)) & 3);
}

/// Smallest / largest value mapping to bucket `idx` (inclusive bounds).
std::uint64_t histogram_bucket_lo(std::size_t idx) noexcept;
std::uint64_t histogram_bucket_hi(std::size_t idx) noexcept;

/// Plain-value merged view of one histogram; quantiles interpolate inside
/// the winning bucket, so they are exact for v < 4 and within one
/// sub-bucket (~12%) elsewhere.
struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  double mean() const noexcept {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// q in [0, 1]; 0 observations -> 0.
  std::uint64_t quantile(double q) const noexcept;
  std::uint64_t p50() const noexcept { return quantile(0.50); }
  std::uint64_t p95() const noexcept { return quantile(0.95); }
  std::uint64_t p99() const noexcept { return quantile(0.99); }
  /// Upper bound of the highest non-empty bucket (approximate max).
  std::uint64_t max_bound() const noexcept;
};

/// Fixed-size concurrent histogram.  record() is two relaxed fetch-adds
/// (bucket + sum) into the calling thread's shard; snapshot() merges.
class Histogram {
 public:
  void record(std::uint64_t v) noexcept {
    Shard& s = shards_[detail::thread_shard()];
    s.buckets[histogram_bucket(v)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
  }

  HistogramSnapshot snapshot() const;

  void reset() noexcept {
    for (auto& shard : shards_) {
      for (auto& bucket : shard.buckets) {
        bucket.store(0, std::memory_order_relaxed);
      }
      shard.sum.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(kCacheLineSize) Shard {
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
    std::atomic<std::uint64_t> sum{0};
  };
  std::array<Shard, detail::kShards> shards_{};
};

// --- registry --------------------------------------------------------------

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  std::int64_t value = 0;
};

/// One consistent-enough view of every registered metric (counters are read
/// relaxed; exact totals are guaranteed once writers have quiesced, e.g.
/// after ShardedOnlineEngine::finish()).
struct RegistrySnapshot {
  std::vector<CounterSnapshot> counters;  // name-sorted; callback sources merged in
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Value of the named counter, 0 when absent.
  std::uint64_t counter_value(std::string_view name) const noexcept;
  std::int64_t gauge_value(std::string_view name) const noexcept;
  /// Named histogram or nullptr.
  const HistogramSnapshot* histogram(std::string_view name) const noexcept;
};

class MetricsRegistry;

/// RAII registration of a callback counter source; unregisters on
/// destruction.  The registry must outlive the handle.
class CallbackHandle {
 public:
  CallbackHandle() = default;
  CallbackHandle(CallbackHandle&& other) noexcept;
  CallbackHandle& operator=(CallbackHandle&& other) noexcept;
  CallbackHandle(const CallbackHandle&) = delete;
  CallbackHandle& operator=(const CallbackHandle&) = delete;
  ~CallbackHandle();

  void release();  // unregister now (idempotent)

 private:
  friend class MetricsRegistry;
  CallbackHandle(MetricsRegistry* registry, std::uint64_t id)
      : registry_(registry), id_(id) {}
  MetricsRegistry* registry_ = nullptr;
  std::uint64_t id_ = 0;
};

/// Named metric directory.  Lookup/creation is mutex-guarded (cold path);
/// the returned references are stable for the registry's lifetime and are
/// the wait-free hot-path handles.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Registers an external counter source polled at snapshot time; multiple
  /// registrations under one name (e.g. one per engine) sum.
  CallbackHandle register_callback(std::string_view name,
                                   std::function<std::uint64_t()> fn);

  RegistrySnapshot snapshot() const;

  /// Zeroes every owned metric (callback sources are external and keep
  /// their own state).  Test/bench plumbing; not safe concurrently with
  /// hot-path writers you care about.
  void reset();

 private:
  friend class CallbackHandle;
  void unregister_callback(std::uint64_t id);

  struct CallbackSource {
    std::string name;
    std::function<std::uint64_t()> fn;
  };

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::uint64_t, CallbackSource> callbacks_;
  std::uint64_t next_callback_id_ = 1;
};

/// The process-wide registry every default-constructed instrumentation site
/// reports into.
MetricsRegistry& registry();

/// snapshot() of the process-wide registry — the one call that covers
/// runtime throughput/shed counters, decode-fault counters and every stage
/// latency histogram.
RegistrySnapshot snapshot();

}  // namespace dm::obs

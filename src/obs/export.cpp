#include "obs/export.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace dm::obs {
namespace {

/// Nanosecond quantity scaled to a readable unit ("1.42ms", "87.3us").
std::string human_ns(double ns) {
  char buf[48];
  if (ns >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.3gs", ns / 1e9);
  } else if (ns >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.3gms", ns / 1e6);
  } else if (ns >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.3gus", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3gns", ns);
  }
  return buf;
}

/// True for histograms whose unit is nanoseconds (naming convention).
bool is_ns(const std::string& name) {
  return name.size() >= 3 && name.compare(name.size() - 3, 3, "_ns") == 0;
}

std::string sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '.' || c == '-' || c == '/') c = '_';
  }
  return out;
}

void json_escape(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

std::string to_table(const RegistrySnapshot& snap) {
  std::ostringstream out;
  char line[256];
  if (!snap.counters.empty() || !snap.gauges.empty()) {
    out << "--- counters ---\n";
    for (const auto& c : snap.counters) {
      std::snprintf(line, sizeof(line), "%-36s %20" PRIu64 "\n", c.name.c_str(),
                    c.value);
      out << line;
    }
    for (const auto& g : snap.gauges) {
      std::snprintf(line, sizeof(line), "%-36s %20" PRId64 " (gauge)\n",
                    g.name.c_str(), g.value);
      out << line;
    }
  }
  if (!snap.histograms.empty()) {
    out << "--- latency histograms ---\n";
    std::snprintf(line, sizeof(line), "%-36s %10s %9s %9s %9s %9s %9s\n",
                  "name", "count", "mean", "p50", "p95", "p99", "max");
    out << line;
    for (const auto& h : snap.histograms) {
      if (is_ns(h.name)) {
        std::snprintf(line, sizeof(line),
                      "%-36s %10" PRIu64 " %9s %9s %9s %9s %9s\n",
                      h.name.c_str(), h.count, human_ns(h.mean()).c_str(),
                      human_ns(static_cast<double>(h.p50())).c_str(),
                      human_ns(static_cast<double>(h.p95())).c_str(),
                      human_ns(static_cast<double>(h.p99())).c_str(),
                      human_ns(static_cast<double>(h.max_bound())).c_str());
      } else {
        std::snprintf(line, sizeof(line),
                      "%-36s %10" PRIu64 " %9.3g %9" PRIu64 " %9" PRIu64
                      " %9" PRIu64 " %9" PRIu64 "\n",
                      h.name.c_str(), h.count, h.mean(), h.p50(), h.p95(),
                      h.p99(), h.max_bound());
      }
      out << line;
    }
  }
  return out.str();
}

std::string to_prometheus(const RegistrySnapshot& snap) {
  std::ostringstream out;
  for (const auto& c : snap.counters) {
    const std::string name = sanitize(c.name);
    out << "# TYPE " << name << " counter\n";
    out << name << " " << c.value << "\n";
  }
  for (const auto& g : snap.gauges) {
    const std::string name = sanitize(g.name);
    out << "# TYPE " << name << " gauge\n";
    out << name << " " << g.value << "\n";
  }
  for (const auto& h : snap.histograms) {
    const std::string name = sanitize(h.name);
    out << "# TYPE " << name << " histogram\n";
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      if (h.buckets[i] == 0) continue;
      cum += h.buckets[i];
      out << name << "_bucket{le=\"" << histogram_bucket_hi(i) << "\"} " << cum
          << "\n";
    }
    out << name << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    out << name << "_sum " << h.sum << "\n";
    out << name << "_count " << h.count << "\n";
  }
  return out.str();
}

std::string to_json(const RegistrySnapshot& snap) {
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& c : snap.counters) {
    if (!first) out << ",";
    first = false;
    json_escape(out, c.name);
    out << ":" << c.value;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& g : snap.gauges) {
    if (!first) out << ",";
    first = false;
    json_escape(out, g.name);
    out << ":" << g.value;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& h : snap.histograms) {
    if (!first) out << ",";
    first = false;
    json_escape(out, h.name);
    out << ":{\"count\":" << h.count << ",\"sum\":" << h.sum
        << ",\"mean\":" << h.mean() << ",\"p50\":" << h.p50()
        << ",\"p95\":" << h.p95() << ",\"p99\":" << h.p99()
        << ",\"max\":" << h.max_bound() << "}";
  }
  out << "}}";
  return out.str();
}

}  // namespace dm::obs

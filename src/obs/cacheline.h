// Cache-line geometry for the observability shards and the runtime's hot
// counters.  Two counters that share a line ping-pong it between cores on
// every write (false sharing); everything in dm::obs that is written from
// multiple threads is therefore spaced kCacheLineSize apart.
#pragma once

#include <cstddef>
#include <new>

namespace dm::obs {

#if defined(__cpp_lib_hardware_interference_size)
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winterference-size"
#endif
inline constexpr std::size_t kCacheLineSize =
    std::hardware_destructive_interference_size;
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
#else
inline constexpr std::size_t kCacheLineSize = 64;
#endif

}  // namespace dm::obs

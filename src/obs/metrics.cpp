#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

namespace dm::obs {

namespace {
std::atomic<bool> g_enabled{true};
}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

namespace detail {

std::size_t thread_shard() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

}  // namespace detail

std::uint64_t histogram_bucket_lo(std::size_t idx) noexcept {
  if (idx < 4) return idx;
  const std::size_t octave = idx / 4 + 1;
  const std::size_t sub = idx % 4;
  return (std::uint64_t{1} << octave) +
         (static_cast<std::uint64_t>(sub) << (octave - 2));
}

std::uint64_t histogram_bucket_hi(std::size_t idx) noexcept {
  if (idx < 4) return idx;
  const std::size_t octave = idx / 4 + 1;
  const std::uint64_t width = std::uint64_t{1} << (octave - 2);
  return histogram_bucket_lo(idx) + width - 1;
}

std::uint64_t HistogramSnapshot::quantile(double q) const noexcept {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th observation (1-based, nearest-rank definition).
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count))));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    if (buckets[i] == 0) continue;
    if (cum + buckets[i] >= rank) {
      // Linear interpolation inside the winning bucket.
      const std::uint64_t lo = histogram_bucket_lo(i);
      const std::uint64_t hi = histogram_bucket_hi(i);
      const double within = static_cast<double>(rank - cum - 1) /
                            static_cast<double>(buckets[i]);
      return lo + static_cast<std::uint64_t>(
                      std::llround(static_cast<double>(hi - lo) * within));
    }
    cum += buckets[i];
  }
  return histogram_bucket_hi(kHistogramBuckets - 1);
}

std::uint64_t HistogramSnapshot::max_bound() const noexcept {
  for (std::size_t i = kHistogramBuckets; i-- > 0;) {
    if (buckets[i] != 0) return histogram_bucket_hi(i);
  }
  return 0;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  for (const auto& shard : shards_) {
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      const std::uint64_t n = shard.buckets[i].load(std::memory_order_relaxed);
      snap.buckets[i] += n;
      snap.count += n;
    }
    snap.sum += shard.sum.load(std::memory_order_relaxed);
  }
  return snap;
}

// --- snapshot lookups ------------------------------------------------------

std::uint64_t RegistrySnapshot::counter_value(
    std::string_view name) const noexcept {
  for (const auto& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

std::int64_t RegistrySnapshot::gauge_value(std::string_view name) const noexcept {
  for (const auto& g : gauges) {
    if (g.name == name) return g.value;
  }
  return 0;
}

const HistogramSnapshot* RegistrySnapshot::histogram(
    std::string_view name) const noexcept {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

// --- CallbackHandle --------------------------------------------------------

CallbackHandle::CallbackHandle(CallbackHandle&& other) noexcept
    : registry_(other.registry_), id_(other.id_) {
  other.registry_ = nullptr;
  other.id_ = 0;
}

CallbackHandle& CallbackHandle::operator=(CallbackHandle&& other) noexcept {
  if (this != &other) {
    release();
    registry_ = other.registry_;
    id_ = other.id_;
    other.registry_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

CallbackHandle::~CallbackHandle() { release(); }

void CallbackHandle::release() {
  if (registry_ != nullptr) {
    registry_->unregister_callback(id_);
    registry_ = nullptr;
    id_ = 0;
  }
}

// --- MetricsRegistry -------------------------------------------------------

Counter& MetricsRegistry::counter(std::string_view name) {
  std::scoped_lock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::scoped_lock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::scoped_lock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

CallbackHandle MetricsRegistry::register_callback(
    std::string_view name, std::function<std::uint64_t()> fn) {
  std::scoped_lock lock(mutex_);
  const std::uint64_t id = next_callback_id_++;
  callbacks_.emplace(id, CallbackSource{std::string(name), std::move(fn)});
  return CallbackHandle(this, id);
}

void MetricsRegistry::unregister_callback(std::uint64_t id) {
  std::scoped_lock lock(mutex_);
  callbacks_.erase(id);
}

RegistrySnapshot MetricsRegistry::snapshot() const {
  RegistrySnapshot snap;
  std::scoped_lock lock(mutex_);
  // Owned counters plus callback sources, summed per name (std::map keeps
  // everything name-sorted for the exporters).
  std::map<std::string, std::uint64_t> counter_values;
  for (const auto& [name, counter] : counters_) {
    counter_values[name] += counter->value();
  }
  for (const auto& [id, source] : callbacks_) {
    counter_values[source.name] += source.fn();
  }
  snap.counters.reserve(counter_values.size());
  for (auto& [name, value] : counter_values) {
    snap.counters.push_back(CounterSnapshot{name, value});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back(GaugeSnapshot{name, gauge->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h = histogram->snapshot();
    h.name = name;
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::scoped_lock lock(mutex_);
  // Metric references handed out earlier must stay valid: zero the stored
  // objects in place instead of erasing them.
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->set(0);
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

MetricsRegistry& registry() {
  static MetricsRegistry* instance = new MetricsRegistry();  // never destroyed
  return *instance;
}

RegistrySnapshot snapshot() { return registry().snapshot(); }

}  // namespace dm::obs

#include "obs/pipeline.h"

#include <string>

namespace dm::obs {

PipelineMetrics PipelineMetrics::of(MetricsRegistry& reg) {
  return PipelineMetrics{
      reg.counter("dm.net.packets"),
      reg.counter("dm.http.transactions"),
      reg.histogram("dm.stage.pcap_decode_ns"),
      reg.histogram("dm.stage.tcp_reassembly_ns"),
      reg.histogram("dm.stage.http_parse_ns"),
      reg.counter("dm.detect.observed"),
      reg.counter("dm.detect.clues"),
      reg.counter("dm.detect.verdicts"),
      reg.counter("dm.detect.alerts"),
      reg.gauge("dm.detect.active_sessions"),
      reg.histogram("dm.stage.observe_ns"),
      reg.histogram("dm.stage.wcg_build_ns"),
      reg.histogram("dm.stage.feature_extract_ns"),
      reg.histogram("dm.stage.erf_infer_ns"),
      reg.histogram("dm.stage.verdict_ns"),
      reg.histogram("dm.detect.clue_to_verdict_ns"),
      reg.histogram("dm.runtime.dispatch_ns"),
      reg.histogram("dm.runtime.queue_wait_ns"),
      reg.histogram("dm.runtime.worker_batch_ns"),
      reg.histogram("dm.ingest.reconstruct_ns"),
  };
}

PipelineMetrics& pipeline_metrics() {
  static PipelineMetrics* instance =
      new PipelineMetrics(PipelineMetrics::of(registry()));  // never destroyed
  return *instance;
}

ModelMetrics ModelMetrics::of(MetricsRegistry& reg) {
  return ModelMetrics{
      reg.gauge("dm.model.version"),
      reg.gauge("dm.model.reservoir_infections"),
      reg.gauge("dm.model.reservoir_benign"),
      reg.counter("dm.model.reservoir_offered"),
      reg.counter("dm.model.reservoir_admitted"),
      reg.counter("dm.model.retrains"),
      reg.counter("dm.model.swaps"),
      reg.counter("dm.model.candidates_rejected"),
      reg.counter("dm.model.shadow_scored"),
      reg.counter("dm.model.shadow_agree"),
      reg.counter("dm.model.shadow_disagree_infection"),
      reg.counter("dm.model.shadow_disagree_benign"),
      reg.counter("dm.model.fence_evaluations"),
      reg.counter("dm.model.fence_rejects"),
      reg.counter("dm.model.rollbacks"),
      reg.histogram("dm.model.shadow_score_ns"),
      reg.histogram("dm.model.retrain_ns"),
      reg.histogram("dm.model.swap_publish_ns"),
  };
}

ModelMetrics& model_metrics() {
  static ModelMetrics* instance =
      new ModelMetrics(ModelMetrics::of(registry()));  // never destroyed
  return *instance;
}

StoreMetrics StoreMetrics::of(MetricsRegistry& reg) {
  return StoreMetrics{
      reg.counter("dm.store.saves"),
      reg.counter("dm.store.save_failures"),
      reg.counter("dm.store.save_bytes"),
      reg.counter("dm.store.recoveries"),
      reg.counter("dm.store.artifacts_quarantined"),
      reg.counter("dm.store.manifests_quarantined"),
      reg.counter("dm.store.uncommitted_discarded"),
      reg.counter("dm.store.temps_removed"),
      reg.counter("dm.store.pruned"),
      reg.gauge("dm.store.latest_version"),
      reg.histogram("dm.store.persist_ns"),
      reg.histogram("dm.store.recover_ns"),
  };
}

StoreMetrics& store_metrics() {
  static StoreMetrics* instance =
      new StoreMetrics(StoreMetrics::of(registry()));  // never destroyed
  return *instance;
}

OracleMetrics OracleMetrics::of(MetricsRegistry& reg) {
  return OracleMetrics{
      reg.counter("dm.oracle.audits"),
      reg.counter("dm.oracle.audited"),
      reg.counter("dm.oracle.confirmed"),
      reg.counter("dm.oracle.overturned"),
      reg.counter("dm.oracle.unavailable"),
      reg.counter("dm.oracle.demotions"),
      reg.histogram("dm.oracle.audit_ns"),
  };
}

OracleMetrics& oracle_metrics() {
  static OracleMetrics* instance =
      new OracleMetrics(OracleMetrics::of(registry()));  // never destroyed
  return *instance;
}

void record_fault_counts(const dm::util::FaultStatsSnapshot& faults,
                         MetricsRegistry& reg) {
  for (std::size_t i = 0; i < dm::util::kDecodeErrorCodeCount; ++i) {
    if (faults.counts[i] == 0) continue;
    const auto code = static_cast<dm::util::DecodeErrorCode>(i);
    reg.counter(std::string("dm.fault.") +
                std::string(dm::util::decode_error_name(code)))
        .add(faults.counts[i]);
  }
}

}  // namespace dm::obs

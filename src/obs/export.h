// Snapshot exporters: one RegistrySnapshot rendered three ways —
//   to_table      human-readable fixed-width panel (operators, examples)
//   to_prometheus Prometheus text exposition format 0.0.4 (scrapers)
//   to_json       one-line JSON object (JSONL perf trajectories, BENCH_*.json)
// All three render the *same* snapshot, so the numbers can never disagree
// between the console and the machine record.
#pragma once

#include <string>

#include "obs/metrics.h"

namespace dm::obs {

/// Counters/gauges as `name value` lines, histograms as a
/// `name count mean p50 p95 p99 max` table (latencies scaled to readable
/// units).
std::string to_table(const RegistrySnapshot& snap);

/// Prometheus text format: counters as `# TYPE c counter`, gauges as gauge,
/// histograms as cumulative `_bucket{le="..."}` series (only non-empty
/// buckets are emitted) plus `_sum` / `_count`.  Metric names are sanitized
/// (`.`, `-`, `/` -> `_`).
std::string to_prometheus(const RegistrySnapshot& snap);

/// One-line JSON object:
/// {"counters":{...},"gauges":{...},"histograms":{"x":{"count":..,"sum":..,
/// "mean":..,"p50":..,"p95":..,"p99":..,"max":..}}}
std::string to_json(const RegistrySnapshot& snap);

}  // namespace dm::obs

#include "obs/timer.h"

#include <chrono>

namespace dm::obs {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace dm::obs

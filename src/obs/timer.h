// Stage timing: Span (RAII elapsed-time recorder) and StageTimer (a clock
// bound to spans).  The clock is an injectable plain function pointer —
// production uses the steady clock, tests install a deterministic counter
// and assert exact latencies with no wall-clock sleeps.
//
// When obs::set_enabled(false), a Span is born inactive: no clock read, no
// record — the "compiled in but idle" mode bench_runtime --metrics uses as
// the overhead baseline.
#pragma once

#include <cstdint>

#include "obs/metrics.h"

namespace dm::obs {

/// Monotonic nanosecond clock signature.  A plain function pointer keeps a
/// span's clock read un-virtualized; deterministic test clocks read a
/// global atomic.
using ClockFn = std::uint64_t (*)();

/// std::chrono::steady_clock in nanoseconds (the default ClockFn).
std::uint64_t steady_now_ns();

/// Records elapsed clock ns into a Histogram when stopped (or destroyed).
class Span {
 public:
  Span() = default;  // inactive
  Span(Histogram* histogram, ClockFn clock) : histogram_(histogram), clock_(clock) {
    if (histogram_ != nullptr && enabled()) {
      start_ = clock_();
    } else {
      histogram_ = nullptr;
    }
  }
  Span(Span&& other) noexcept
      : histogram_(other.histogram_), clock_(other.clock_), start_(other.start_) {
    other.histogram_ = nullptr;
  }
  Span& operator=(Span&& other) noexcept {
    if (this != &other) {
      stop();
      histogram_ = other.histogram_;
      clock_ = other.clock_;
      start_ = other.start_;
      other.histogram_ = nullptr;
    }
    return *this;
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { stop(); }

  /// Records once and deactivates; returns elapsed ns (0 if inactive).
  std::uint64_t stop() {
    if (histogram_ == nullptr) return 0;
    const std::uint64_t now = clock_();
    const std::uint64_t elapsed = now >= start_ ? now - start_ : 0;
    histogram_->record(elapsed);
    histogram_ = nullptr;
    return elapsed;
  }

  /// Deactivates without recording (e.g. the stage aborted).
  void cancel() noexcept { histogram_ = nullptr; }

 private:
  Histogram* histogram_ = nullptr;
  ClockFn clock_ = nullptr;
  std::uint64_t start_ = 0;
};

/// A clock bound to span construction; one per instrumented component.
/// Null clock -> steady_now_ns.
class StageTimer {
 public:
  explicit StageTimer(ClockFn clock = nullptr)
      : clock_(clock != nullptr ? clock : &steady_now_ns) {}

  std::uint64_t now() const { return clock_(); }
  Span span(Histogram& histogram) const { return Span(&histogram, clock_); }

 private:
  ClockFn clock_;
};

}  // namespace dm::obs

// The instrument panel's wiring diagram: every metric the DynaMiner
// pipelines emit, resolved once into wait-free handles.
//
// Naming scheme (`dm.<area>.<metric>[_<unit>]`, see DESIGN.md §8):
//   dm.net.*      packet/frame counts (Stage-1 reconstruction)
//   dm.http.*     reconstructed transaction counts
//   dm.stage.*_ns per-stage latency histograms, pcap decode through verdict
//   dm.detect.*   on-the-wire engine events and the headline
//                 dm.detect.clue_to_verdict_ns latency
//   dm.runtime.*  sharded-engine throughput/shed counters (callback-sourced
//                 from runtime::Stats) and dispatcher/queue/worker timing
//   dm.ingest.*   parallel-ingest reconstruction timing
//   dm.fault.*    decode-fault counters folded from util::FaultStats
//   dm.train.*    Stage-1 training: per-tree build / per-WCG extract /
//                 per-CV-fold latency + throughput counters (handles live
//                 in ml::TrainerMetrics, see ml/parallel_trainer.h)
//   dm.model.*    model lifecycle: reservoir levels, retrains, shadow-
//                 scoring agreement and hot-swap publications (written by
//                 src/serve; panel defined in ModelMetrics below)
//
// Hot paths construct a PipelineMetrics once (a bundle of references into a
// registry) and touch only the wait-free handles afterwards.
#pragma once

#include "obs/metrics.h"
#include "util/fault_stats.h"

namespace dm::obs {

struct PipelineMetrics {
  // Stage-1 reconstruction counters.
  Counter& net_packets;           // pcap records offered to frame parsing
  Counter& http_transactions;     // transactions reconstructed from captures
  // Stage-1 latency (per capture / per flow).
  Histogram& stage_pcap_decode_ns;     // capture bytes -> PcapFile records
  Histogram& stage_tcp_reassembly_ns;  // frame parse + reassembly, per capture
  Histogram& stage_http_parse_ns;      // flow bytes -> transactions, per flow
  // Stage-2 detection counters.
  Counter& detect_observed;   // transactions fed to OnlineDetector::observe
  Counter& detect_clues;      // infection clues fired
  Counter& detect_verdicts;   // completed ERF verdicts (scored, not failed)
  Counter& detect_alerts;     // alerts issued
  Gauge& detect_active_sessions;  // live sessions (additive across shards)
  // Stage-2 latency (per transaction / per query).
  Histogram& stage_observe_ns;          // whole observe() call
  Histogram& stage_wcg_build_ns;        // potential-infection WCG construction
  Histogram& stage_feature_extract_ns;  // 37-feature extraction
  Histogram& stage_erf_infer_ns;        // ERF predict_proba
  Histogram& stage_verdict_ns;          // classify_session end to end
  /// The headline product metric: clue fired -> first completed ERF verdict,
  /// recorded once per clue-bearing WCG.
  Histogram& detect_clue_to_verdict_ns;
  // Sharded-runtime timing.
  Histogram& runtime_dispatch_ns;      // dispatcher: batch handoff (incl. backpressure)
  Histogram& runtime_queue_wait_ns;    // batch enqueue -> worker pop
  Histogram& runtime_worker_batch_ns;  // worker: one batch through the detector
  Histogram& ingest_reconstruct_ns;    // parallel ingest: one capture file

  /// Resolves (creating on first use) every handle in `reg`.  Cold path —
  /// call once per component, keep the result.
  static PipelineMetrics of(MetricsRegistry& reg);
};

/// Handles into the process-wide registry.
PipelineMetrics& pipeline_metrics();

/// The dm.model.* panel: the continual-learning serving layer's instrument
/// cluster (src/serve writes it; the obs layer owns the naming so one
/// snapshot covers the model lifecycle next to the pipeline stages).
///
/// Agreement accounting is exact by construction:
///   shadow_scored == shadow_agree + shadow_disagree_infection
///                                 + shadow_disagree_benign
/// (serve_shadow_test holds that as a conservation fence.)
struct ModelMetrics {
  Gauge& version;                // dm.model.version — currently-published model
  Gauge& reservoir_infections;   // dm.model.reservoir_infections — held samples
  Gauge& reservoir_benign;       // dm.model.reservoir_benign
  Counter& reservoir_offered;    // dm.model.reservoir_offered — verdict-tap events
  Counter& reservoir_admitted;   // dm.model.reservoir_admitted — kept by sampling
  Counter& retrains;             // dm.model.retrains — candidate forests trained
  Counter& swaps;                // dm.model.swaps — publications (hot swaps)
  Counter& candidates_rejected;  // dm.model.candidates_rejected — failed the gate
  Counter& shadow_scored;        // dm.model.shadow_scored — side-by-side queries
  Counter& shadow_agree;         // dm.model.shadow_agree — same hard decision
  /// Candidate alerts where the incumbent does not (per-class disagreement).
  Counter& shadow_disagree_infection;  // dm.model.shadow_disagree_infection
  /// Incumbent alerts where the candidate does not.
  Counter& shadow_disagree_benign;     // dm.model.shadow_disagree_benign
  Histogram& shadow_score_ns;    // dm.model.shadow_score_ns — added latency/query
  Histogram& retrain_ns;         // dm.model.retrain_ns — snapshot->candidate wall
  Histogram& swap_publish_ns;    // dm.model.swap_publish_ns — publish() duration
  static ModelMetrics of(MetricsRegistry& reg);
};

/// dm.model.* handles into the process-wide registry.
ModelMetrics& model_metrics();

/// Folds one completed run's decode-fault counts into `reg`'s
/// `dm.fault.<layer/name>` counters (additive — call once per finished
/// FaultStats, not per snapshot).
void record_fault_counts(const dm::util::FaultStatsSnapshot& faults,
                         MetricsRegistry& reg = registry());

}  // namespace dm::obs

// The instrument panel's wiring diagram: every metric the DynaMiner
// pipelines emit, resolved once into wait-free handles.
//
// Naming scheme (`dm.<area>.<metric>[_<unit>]`, see DESIGN.md §8):
//   dm.net.*      packet/frame counts (Stage-1 reconstruction)
//   dm.http.*     reconstructed transaction counts
//   dm.stage.*_ns per-stage latency histograms, pcap decode through verdict
//   dm.detect.*   on-the-wire engine events and the headline
//                 dm.detect.clue_to_verdict_ns latency
//   dm.runtime.*  sharded-engine throughput/shed counters (callback-sourced
//                 from runtime::Stats) and dispatcher/queue/worker timing
//   dm.ingest.*   parallel-ingest reconstruction timing
//   dm.fault.*    decode-fault counters folded from util::FaultStats
//   dm.train.*    Stage-1 training: per-tree build / per-WCG extract /
//                 per-CV-fold latency + throughput counters (handles live
//                 in ml::TrainerMetrics, see ml/parallel_trainer.h)
//
// Hot paths construct a PipelineMetrics once (a bundle of references into a
// registry) and touch only the wait-free handles afterwards.
#pragma once

#include "obs/metrics.h"
#include "util/fault_stats.h"

namespace dm::obs {

struct PipelineMetrics {
  // Stage-1 reconstruction counters.
  Counter& net_packets;           // pcap records offered to frame parsing
  Counter& http_transactions;     // transactions reconstructed from captures
  // Stage-1 latency (per capture / per flow).
  Histogram& stage_pcap_decode_ns;     // capture bytes -> PcapFile records
  Histogram& stage_tcp_reassembly_ns;  // frame parse + reassembly, per capture
  Histogram& stage_http_parse_ns;      // flow bytes -> transactions, per flow
  // Stage-2 detection counters.
  Counter& detect_observed;   // transactions fed to OnlineDetector::observe
  Counter& detect_clues;      // infection clues fired
  Counter& detect_verdicts;   // completed ERF verdicts (scored, not failed)
  Counter& detect_alerts;     // alerts issued
  Gauge& detect_active_sessions;  // live sessions (additive across shards)
  // Stage-2 latency (per transaction / per query).
  Histogram& stage_observe_ns;          // whole observe() call
  Histogram& stage_wcg_build_ns;        // potential-infection WCG construction
  Histogram& stage_feature_extract_ns;  // 37-feature extraction
  Histogram& stage_erf_infer_ns;        // ERF predict_proba
  Histogram& stage_verdict_ns;          // classify_session end to end
  /// The headline product metric: clue fired -> first completed ERF verdict,
  /// recorded once per clue-bearing WCG.
  Histogram& detect_clue_to_verdict_ns;
  // Sharded-runtime timing.
  Histogram& runtime_dispatch_ns;      // dispatcher: batch handoff (incl. backpressure)
  Histogram& runtime_queue_wait_ns;    // batch enqueue -> worker pop
  Histogram& runtime_worker_batch_ns;  // worker: one batch through the detector
  Histogram& ingest_reconstruct_ns;    // parallel ingest: one capture file

  /// Resolves (creating on first use) every handle in `reg`.  Cold path —
  /// call once per component, keep the result.
  static PipelineMetrics of(MetricsRegistry& reg);
};

/// Handles into the process-wide registry.
PipelineMetrics& pipeline_metrics();

/// Folds one completed run's decode-fault counts into `reg`'s
/// `dm.fault.<layer/name>` counters (additive — call once per finished
/// FaultStats, not per snapshot).
void record_fault_counts(const dm::util::FaultStatsSnapshot& faults,
                         MetricsRegistry& reg = registry());

}  // namespace dm::obs

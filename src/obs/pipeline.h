// The instrument panel's wiring diagram: every metric the DynaMiner
// pipelines emit, resolved once into wait-free handles.
//
// Naming scheme (`dm.<area>.<metric>[_<unit>]`, see DESIGN.md §8):
//   dm.net.*      packet/frame counts (Stage-1 reconstruction)
//   dm.http.*     reconstructed transaction counts
//   dm.stage.*_ns per-stage latency histograms, pcap decode through verdict
//   dm.detect.*   on-the-wire engine events and the headline
//                 dm.detect.clue_to_verdict_ns latency
//   dm.runtime.*  sharded-engine throughput/shed counters (callback-sourced
//                 from runtime::Stats) and dispatcher/queue/worker timing
//   dm.ingest.*   parallel-ingest reconstruction timing
//   dm.fault.*    decode-fault counters folded from util::FaultStats
//   dm.train.*    Stage-1 training: per-tree build / per-WCG extract /
//                 per-CV-fold latency + throughput counters (handles live
//                 in ml::TrainerMetrics, see ml/parallel_trainer.h)
//   dm.model.*    model lifecycle: reservoir levels, retrains, shadow-
//                 scoring agreement and hot-swap publications (written by
//                 src/serve; panel defined in ModelMetrics below)
//   dm.store.*    crash-safe model persistence: saves, recoveries, exact
//                 quarantine accounting (serve::ModelStore; StoreMetrics)
//   dm.oracle.*   delayed-oracle label correction: audits, overturns,
//                 demotions (serve layer + src/baseline; OracleMetrics)
//
// Hot paths construct a PipelineMetrics once (a bundle of references into a
// registry) and touch only the wait-free handles afterwards.
#pragma once

#include "obs/metrics.h"
#include "util/fault_stats.h"

namespace dm::obs {

struct PipelineMetrics {
  // Stage-1 reconstruction counters.
  Counter& net_packets;           // pcap records offered to frame parsing
  Counter& http_transactions;     // transactions reconstructed from captures
  // Stage-1 latency (per capture / per flow).
  Histogram& stage_pcap_decode_ns;     // capture bytes -> PcapFile records
  Histogram& stage_tcp_reassembly_ns;  // frame parse + reassembly, per capture
  Histogram& stage_http_parse_ns;      // flow bytes -> transactions, per flow
  // Stage-2 detection counters.
  Counter& detect_observed;   // transactions fed to OnlineDetector::observe
  Counter& detect_clues;      // infection clues fired
  Counter& detect_verdicts;   // completed ERF verdicts (scored, not failed)
  Counter& detect_alerts;     // alerts issued
  Gauge& detect_active_sessions;  // live sessions (additive across shards)
  // Stage-2 latency (per transaction / per query).
  Histogram& stage_observe_ns;          // whole observe() call
  Histogram& stage_wcg_build_ns;        // potential-infection WCG construction
  Histogram& stage_feature_extract_ns;  // 37-feature extraction
  Histogram& stage_erf_infer_ns;        // ERF predict_proba
  Histogram& stage_verdict_ns;          // classify_session end to end
  /// The headline product metric: clue fired -> first completed ERF verdict,
  /// recorded once per clue-bearing WCG.
  Histogram& detect_clue_to_verdict_ns;
  // Sharded-runtime timing.
  Histogram& runtime_dispatch_ns;      // dispatcher: batch handoff (incl. backpressure)
  Histogram& runtime_queue_wait_ns;    // batch enqueue -> worker pop
  Histogram& runtime_worker_batch_ns;  // worker: one batch through the detector
  Histogram& ingest_reconstruct_ns;    // parallel ingest: one capture file

  /// Resolves (creating on first use) every handle in `reg`.  Cold path —
  /// call once per component, keep the result.
  static PipelineMetrics of(MetricsRegistry& reg);
};

/// Handles into the process-wide registry.
PipelineMetrics& pipeline_metrics();

/// The dm.model.* panel: the continual-learning serving layer's instrument
/// cluster (src/serve writes it; the obs layer owns the naming so one
/// snapshot covers the model lifecycle next to the pipeline stages).
///
/// Agreement accounting is exact by construction:
///   shadow_scored == shadow_agree + shadow_disagree_infection
///                                 + shadow_disagree_benign
/// (serve_shadow_test holds that as a conservation fence.)
struct ModelMetrics {
  Gauge& version;                // dm.model.version — currently-published model
  Gauge& reservoir_infections;   // dm.model.reservoir_infections — held samples
  Gauge& reservoir_benign;       // dm.model.reservoir_benign
  Counter& reservoir_offered;    // dm.model.reservoir_offered — verdict-tap events
  Counter& reservoir_admitted;   // dm.model.reservoir_admitted — kept by sampling
  Counter& retrains;             // dm.model.retrains — candidate forests trained
  Counter& swaps;                // dm.model.swaps — publications (hot swaps)
  Counter& candidates_rejected;  // dm.model.candidates_rejected — failed the gate
  Counter& shadow_scored;        // dm.model.shadow_scored — side-by-side queries
  Counter& shadow_agree;         // dm.model.shadow_agree — same hard decision
  /// Candidate alerts where the incumbent does not (per-class disagreement).
  Counter& shadow_disagree_infection;  // dm.model.shadow_disagree_infection
  /// Incumbent alerts where the candidate does not.
  Counter& shadow_disagree_benign;     // dm.model.shadow_disagree_benign
  /// Fence-set gate (held-out split of the reservoir, scored before shadow
  /// scoring starts): fence_evaluations == fence passes + fence_rejects.
  Counter& fence_evaluations;    // dm.model.fence_evaluations — gated candidates
  Counter& fence_rejects;        // dm.model.fence_rejects — F1 below incumbent−ε
  Counter& rollbacks;            // dm.model.rollbacks — demotions to a parent
  Histogram& shadow_score_ns;    // dm.model.shadow_score_ns — added latency/query
  Histogram& retrain_ns;         // dm.model.retrain_ns — snapshot->candidate wall
  Histogram& swap_publish_ns;    // dm.model.swap_publish_ns — publish() duration
  static ModelMetrics of(MetricsRegistry& reg);
};

/// dm.model.* handles into the process-wide registry.
ModelMetrics& model_metrics();

/// The dm.store.* panel: crash-safe model persistence (serve::ModelStore).
/// Quarantine accounting is exact: every artifact/manifest the recovery
/// scan rejects is renamed aside and counted, never silently deleted —
/// serve_model_store_test holds the counts as a fence.
struct StoreMetrics {
  Counter& saves;                  // dm.store.saves — committed persists
  Counter& save_failures;          // dm.store.save_failures — I/O errors / crashes
  Counter& save_bytes;             // dm.store.save_bytes — artifact payload bytes
  Counter& recoveries;             // dm.store.recoveries — successful startups
  Counter& artifacts_quarantined;  // dm.store.artifacts_quarantined — torn/corrupt
  Counter& manifests_quarantined;  // dm.store.manifests_quarantined
  Counter& uncommitted_discarded;  // dm.store.uncommitted_discarded — renamed but
                                   //   never manifest-committed (crash window)
  Counter& temps_removed;          // dm.store.temps_removed — stale .tmp files
  Counter& pruned;                 // dm.store.pruned — artifacts beyond max_history
  Gauge& latest_version;           // dm.store.latest_version — manifest head
  Histogram& persist_ns;           // dm.store.persist_ns — one durable commit
  Histogram& recover_ns;           // dm.store.recover_ns — startup scan + load
  static StoreMetrics of(MetricsRegistry& reg);
};

/// dm.store.* handles into the process-wide registry.
StoreMetrics& store_metrics();

/// The dm.oracle.* panel: delayed-oracle label correction (serve layer
/// re-labeling reservoir entries through the src/baseline VT simulator).
/// Conservation: audited == confirmed + overturned; unavailable entries
/// (outage / verdict not yet published) stay eligible for the next audit.
struct OracleMetrics {
  Counter& audits;       // dm.oracle.audits — audit sweeps run
  Counter& audited;      // dm.oracle.audited — entries the oracle labeled
  Counter& confirmed;    // dm.oracle.confirmed — incumbent verdict upheld
  Counter& overturned;   // dm.oracle.overturned — reservoir label corrected
  Counter& unavailable;  // dm.oracle.unavailable — no verdict yet (outage/delay)
  Counter& demotions;    // dm.oracle.demotions — overturn threshold tripped
  Histogram& audit_ns;   // dm.oracle.audit_ns — one sweep's wall time
  static OracleMetrics of(MetricsRegistry& reg);
};

/// dm.oracle.* handles into the process-wide registry.
OracleMetrics& oracle_metrics();

/// Folds one completed run's decode-fault counts into `reg`'s
/// `dm.fault.<layer/name>` counters (additive — call once per finished
/// FaultStats, not per snapshot).
void record_fault_counts(const dm::util::FaultStatsSnapshot& faults,
                         MetricsRegistry& reg = registry());

}  // namespace dm::obs

// Labeled feature-matrix container for the binary WCG classification task
// (label 1 = infection, 0 = benign), plus split utilities used by training
// and the evaluation harness.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "util/rng.h"

namespace dm::ml {

inline constexpr int kBenign = 0;
inline constexpr int kInfection = 1;

/// Row-major dense dataset.  All rows have the same width as
/// `feature_names`.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<std::string> feature_names);

  /// Appends a labeled row; throws std::invalid_argument on width mismatch.
  void add_row(std::vector<double> features, int label);

  std::size_t size() const noexcept { return labels_.size(); }
  std::size_t num_features() const noexcept { return feature_names_.size(); }
  bool empty() const noexcept { return labels_.empty(); }

  std::span<const double> row(std::size_t i) const;
  int label(std::size_t i) const { return labels_.at(i); }
  double value(std::size_t i, std::size_t f) const;

  const std::vector<std::string>& feature_names() const noexcept {
    return feature_names_;
  }
  const std::vector<int>& labels() const noexcept { return labels_; }

  std::size_t count_label(int label) const noexcept;

  /// New dataset containing the rows at `indices` (in order).
  Dataset subset(std::span<const std::size_t> indices) const;

  /// New dataset keeping only the feature columns at `feature_indices`;
  /// used by the Table III feature-group ablation.
  Dataset select_features(std::span<const std::size_t> feature_indices) const;

  /// Appends every row of `other` (feature names must match).
  void append(const Dataset& other);

 private:
  std::vector<std::string> feature_names_;
  std::vector<double> values_;  // row-major
  std::vector<int> labels_;
};

/// Stratified k-fold index partition: every fold preserves the overall
/// class ratio to within one sample per class.
std::vector<std::vector<std::size_t>> stratified_folds(const Dataset& data,
                                                       std::size_t k,
                                                       dm::util::Rng& rng);

/// Stratified train/test split; `test_fraction` in (0, 1).
struct TrainTestSplit {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};
TrainTestSplit stratified_split(const Dataset& data, double test_fraction,
                                dm::util::Rng& rng);

}  // namespace dm::ml

#include "ml/dataset.h"

#include <algorithm>
#include <stdexcept>

namespace dm::ml {

Dataset::Dataset(std::vector<std::string> feature_names)
    : feature_names_(std::move(feature_names)) {}

void Dataset::add_row(std::vector<double> features, int label) {
  if (features.size() != feature_names_.size()) {
    throw std::invalid_argument("Dataset::add_row: feature width mismatch");
  }
  values_.insert(values_.end(), features.begin(), features.end());
  labels_.push_back(label);
}

std::span<const double> Dataset::row(std::size_t i) const {
  if (i >= labels_.size()) throw std::out_of_range("Dataset::row");
  return {values_.data() + i * num_features(), num_features()};
}

double Dataset::value(std::size_t i, std::size_t f) const {
  if (i >= labels_.size() || f >= num_features()) {
    throw std::out_of_range("Dataset::value");
  }
  return values_[i * num_features() + f];
}

std::size_t Dataset::count_label(int label) const noexcept {
  return static_cast<std::size_t>(
      std::count(labels_.begin(), labels_.end(), label));
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out(feature_names_);
  for (std::size_t i : indices) {
    const auto r = row(i);
    out.add_row(std::vector<double>(r.begin(), r.end()), labels_.at(i));
  }
  return out;
}

Dataset Dataset::select_features(std::span<const std::size_t> feature_indices) const {
  std::vector<std::string> names;
  names.reserve(feature_indices.size());
  for (std::size_t f : feature_indices) names.push_back(feature_names_.at(f));
  Dataset out(std::move(names));
  for (std::size_t i = 0; i < size(); ++i) {
    std::vector<double> r;
    r.reserve(feature_indices.size());
    for (std::size_t f : feature_indices) r.push_back(value(i, f));
    out.add_row(std::move(r), labels_[i]);
  }
  return out;
}

void Dataset::append(const Dataset& other) {
  if (other.feature_names_ != feature_names_) {
    throw std::invalid_argument("Dataset::append: feature names mismatch");
  }
  values_.insert(values_.end(), other.values_.begin(), other.values_.end());
  labels_.insert(labels_.end(), other.labels_.begin(), other.labels_.end());
}

std::vector<std::vector<std::size_t>> stratified_folds(const Dataset& data,
                                                       std::size_t k,
                                                       dm::util::Rng& rng) {
  if (k < 2) throw std::invalid_argument("stratified_folds: k must be >= 2");
  std::vector<std::size_t> positives;
  std::vector<std::size_t> negatives;
  for (std::size_t i = 0; i < data.size(); ++i) {
    (data.label(i) == kInfection ? positives : negatives).push_back(i);
  }
  rng.shuffle(positives);
  rng.shuffle(negatives);
  std::vector<std::vector<std::size_t>> folds(k);
  for (std::size_t i = 0; i < positives.size(); ++i) {
    folds[i % k].push_back(positives[i]);
  }
  for (std::size_t i = 0; i < negatives.size(); ++i) {
    folds[i % k].push_back(negatives[i]);
  }
  return folds;
}

TrainTestSplit stratified_split(const Dataset& data, double test_fraction,
                                dm::util::Rng& rng) {
  if (!(test_fraction > 0.0 && test_fraction < 1.0)) {
    throw std::invalid_argument("stratified_split: bad test_fraction");
  }
  TrainTestSplit split;
  std::vector<std::size_t> positives;
  std::vector<std::size_t> negatives;
  for (std::size_t i = 0; i < data.size(); ++i) {
    (data.label(i) == kInfection ? positives : negatives).push_back(i);
  }
  rng.shuffle(positives);
  rng.shuffle(negatives);
  auto take = [&](std::vector<std::size_t>& pool) {
    const auto n_test = static_cast<std::size_t>(
        static_cast<double>(pool.size()) * test_fraction);
    for (std::size_t i = 0; i < pool.size(); ++i) {
      (i < n_test ? split.test : split.train).push_back(pool[i]);
    }
  };
  take(positives);
  take(negatives);
  return split;
}

}  // namespace dm::ml

#include "ml/serialization.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace dm::ml {
namespace {

constexpr std::string_view kMagic = "dynaminer-forest";
constexpr std::string_view kVersionV1 = "v1";  // pre-options legacy, read-only
constexpr std::string_view kVersion = "v2";

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("forest serialization: " + what);
}

std::string next_token(std::istream& in, const char* context) {
  std::string token;
  if (!(in >> token)) fail(std::string("unexpected end of input reading ") + context);
  return token;
}

void expect_token(std::istream& in, std::string_view expected) {
  const std::string token = next_token(in, std::string(expected).c_str());
  if (token != expected) {
    fail("expected '" + std::string(expected) + "', got '" + token + "'");
  }
}

long read_long(std::istream& in, const char* context) {
  const std::string token = next_token(in, context);
  try {
    std::size_t consumed = 0;
    const long value = std::stol(token, &consumed);
    if (consumed != token.size()) fail(std::string("bad integer for ") + context);
    return value;
  } catch (const std::exception&) {
    fail(std::string("bad integer for ") + context);
  }
}

/// Round-trip-exact double formatting (hex-float).
std::string format_double(double value) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", value);
  return buf;
}

double read_double(std::istream& in, const char* context) {
  const std::string token = next_token(in, context);
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size()) {
    fail(std::string("bad double for ") + context);
  }
  return value;
}

std::uint64_t read_u64(std::istream& in, const char* context) {
  const std::string token = next_token(in, context);
  try {
    std::size_t consumed = 0;
    const unsigned long long value = std::stoull(token, &consumed);
    if (consumed != token.size()) fail(std::string("bad integer for ") + context);
    return static_cast<std::uint64_t>(value);
  } catch (const std::exception&) {
    fail(std::string("bad integer for ") + context);
  }
}

}  // namespace

// ---- DecisionTree ----------------------------------------------------------

void DecisionTree::serialize(std::ostream& out) const {
  out << "tree " << nodes_.size() << ' ' << depth_ << '\n';
  for (const Node& node : nodes_) {
    out << "node " << node.left << ' ' << node.right << ' ' << node.feature
        << ' ' << format_double(node.threshold) << ' '
        << format_double(node.positive_probability) << '\n';
  }
}

DecisionTree DecisionTree::deserialize(std::istream& in) {
  expect_token(in, "tree");
  const long count = read_long(in, "node count");
  const long depth = read_long(in, "depth");
  if (count < 0 || depth < 0) fail("negative tree geometry");
  // An adversarial header must not drive a multi-gigabyte reserve; real
  // trees are bounded by max_depth and the training-set size.
  if (count > 10'000'000) fail("implausible node count");

  DecisionTree tree;
  tree.depth_ = static_cast<std::size_t>(depth);
  tree.nodes_.reserve(static_cast<std::size_t>(count));
  for (long i = 0; i < count; ++i) {
    expect_token(in, "node");
    Node node;
    node.left = static_cast<std::int32_t>(read_long(in, "left"));
    node.right = static_cast<std::int32_t>(read_long(in, "right"));
    node.feature = static_cast<std::uint32_t>(read_long(in, "feature"));
    node.threshold = read_double(in, "threshold");
    node.positive_probability = read_double(in, "probability");
    // Structural validation: children must point inside the node table.
    if (node.left >= count || node.right >= count) fail("child out of range");
    if ((node.left < 0) != (node.right < 0)) fail("half-leaf node");
    tree.nodes_.push_back(node);
  }
  return tree;
}

// ---- RandomForest ----------------------------------------------------------

void RandomForest::serialize(std::ostream& out) const {
  out << kMagic << ' ' << kVersion << '\n';
  out << "trees " << trees_.size() << " combination "
      << (options_.combination == Combination::kProbabilityAveraging ? "avg"
                                                                     : "vote")
      << '\n';
  // v2: every remaining ForestOptions field, so nothing about the training
  // configuration is silently dropped on the way to the Stage-2 deployment.
  out << "options features-per-split " << options_.features_per_split
      << " bootstrap-fraction " << format_double(options_.bootstrap_fraction)
      << " seed " << options_.seed << '\n';
  out << "tree-options max-depth " << options_.tree.max_depth
      << " min-samples-split " << options_.tree.min_samples_split
      << " min-samples-leaf " << options_.tree.min_samples_leaf << '\n';
  // Serving provenance, only when stamped: version 0 writes nothing, so
  // every pre-serve artifact (and every fresh training run) stays
  // byte-identical to the original v2 layout.
  if (model_version_ != 0) {
    out << "model-version " << model_version_ << '\n';
  }
  for (const DecisionTree& tree : trees_) tree.serialize(out);
}

RandomForest RandomForest::deserialize(std::istream& in) {
  expect_token(in, kMagic);
  const std::string version = next_token(in, "version");
  if (version != kVersion && version != kVersionV1) {
    fail("expected '" + std::string(kVersion) + "', got '" + version + "'");
  }
  expect_token(in, "trees");
  const long count = read_long(in, "tree count");
  if (count < 0 || count > 100000) fail("implausible tree count");
  expect_token(in, "combination");
  const std::string combination = next_token(in, "combination");

  RandomForest forest;
  if (combination == "avg") {
    forest.options_.combination = Combination::kProbabilityAveraging;
  } else if (combination == "vote") {
    forest.options_.combination = Combination::kMajorityVote;
  } else {
    fail("unknown combination '" + combination + "'");
  }
  forest.options_.num_trees = static_cast<std::size_t>(count);
  if (version == kVersion) {
    expect_token(in, "options");
    expect_token(in, "features-per-split");
    forest.options_.features_per_split =
        static_cast<std::size_t>(read_u64(in, "features-per-split"));
    expect_token(in, "bootstrap-fraction");
    forest.options_.bootstrap_fraction = read_double(in, "bootstrap-fraction");
    expect_token(in, "seed");
    forest.options_.seed = read_u64(in, "seed");
    expect_token(in, "tree-options");
    expect_token(in, "max-depth");
    forest.options_.tree.max_depth =
        static_cast<std::size_t>(read_u64(in, "max-depth"));
    expect_token(in, "min-samples-split");
    forest.options_.tree.min_samples_split =
        static_cast<std::size_t>(read_u64(in, "min-samples-split"));
    expect_token(in, "min-samples-leaf");
    forest.options_.tree.min_samples_leaf =
        static_cast<std::size_t>(read_u64(in, "min-samples-leaf"));
    // Optional trailer: serving-layer model version (absent in artifacts
    // written before the serving layer existed, and in unstamped forests).
    const std::streampos before_trailer = in.tellg();
    std::string token;
    if (in >> token && token == "model-version") {
      forest.model_version_ = read_u64(in, "model-version");
    } else {
      in.clear();
      in.seekg(before_trailer);
    }
  }
  forest.trees_.reserve(static_cast<std::size_t>(count));
  for (long i = 0; i < count; ++i) {
    forest.trees_.push_back(DecisionTree::deserialize(in));
  }
  return forest;
}

// ---- free functions ---------------------------------------------------------

void save_forest(const RandomForest& forest, std::ostream& out) {
  forest.serialize(out);
  if (!out) fail("write failure");
}

RandomForest load_forest(std::istream& in) { return RandomForest::deserialize(in); }

void save_forest_file(const RandomForest& forest, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) fail("cannot open for write: " + path);
  save_forest(forest, out);
}

RandomForest load_forest_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot open for read: " + path);
  return load_forest(in);
}

// The throwing deserializer is the single source of truth for format
// validation; the structured-error API catches at the boundary so callers
// that read untrusted artifacts (the model store's recovery scan, operator
// tooling) get quarantine-and-count semantics instead of stack unwinding
// through their own state.
LoadResult<RandomForest> try_load_forest(std::istream& in) {
  try {
    return RandomForest::deserialize(in);
  } catch (const std::exception& e) {
    return LoadError{e.what()};
  }
}

LoadResult<RandomForest> try_load_forest(std::string_view text) {
  std::istringstream in{std::string(text)};
  return try_load_forest(in);
}

LoadResult<RandomForest> try_load_forest_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return LoadError{"cannot open for read: " + path};
  return try_load_forest(in);
}

}  // namespace dm::ml

// Binary-classification evaluation metrics: confusion counts, the
// TPR/FPR/F-score triple the paper reports (Tables III & V), and ROC curves
// with trapezoidal AUC (Figure 10, "ROC Area" column).
#pragma once

#include <span>
#include <vector>

namespace dm::ml {

struct Confusion {
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
  std::size_t true_negatives = 0;
  std::size_t false_negatives = 0;

  std::size_t total() const noexcept {
    return true_positives + false_positives + true_negatives + false_negatives;
  }
  double tpr() const noexcept;        // recall / sensitivity
  double fpr() const noexcept;        // fall-out
  double precision() const noexcept;
  double accuracy() const noexcept;
  double f_score() const noexcept;    // F1
};

/// Builds a confusion matrix from parallel label/prediction arrays.
Confusion confusion_from(std::span<const int> labels,
                         std::span<const int> predictions);

/// One operating point of a ROC curve.
struct RocPoint {
  double threshold = 0.0;
  double fpr = 0.0;
  double tpr = 0.0;
};

/// Full ROC curve from scores: one point per distinct score, plus the (0,0)
/// and (1,1) anchors, ordered by increasing FPR.
std::vector<RocPoint> roc_curve(std::span<const int> labels,
                                std::span<const double> scores);

/// Area under the ROC curve (trapezoid rule).  0.5 when one class is absent.
double roc_auc(std::span<const int> labels, std::span<const double> scores);

}  // namespace dm::ml

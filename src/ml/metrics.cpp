#include "ml/metrics.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "ml/dataset.h"

namespace dm::ml {

double Confusion::tpr() const noexcept {
  const auto pos = true_positives + false_negatives;
  return pos == 0 ? 0.0 : static_cast<double>(true_positives) / static_cast<double>(pos);
}

double Confusion::fpr() const noexcept {
  const auto neg = false_positives + true_negatives;
  return neg == 0 ? 0.0 : static_cast<double>(false_positives) / static_cast<double>(neg);
}

double Confusion::precision() const noexcept {
  const auto flagged = true_positives + false_positives;
  return flagged == 0 ? 0.0
                      : static_cast<double>(true_positives) / static_cast<double>(flagged);
}

double Confusion::accuracy() const noexcept {
  const auto n = total();
  return n == 0 ? 0.0
                : static_cast<double>(true_positives + true_negatives) /
                      static_cast<double>(n);
}

double Confusion::f_score() const noexcept {
  const double p = precision();
  const double r = tpr();
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

Confusion confusion_from(std::span<const int> labels,
                         std::span<const int> predictions) {
  if (labels.size() != predictions.size()) {
    throw std::invalid_argument("confusion_from: size mismatch");
  }
  Confusion c;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const bool actual = labels[i] == kInfection;
    const bool predicted = predictions[i] == kInfection;
    if (actual && predicted) ++c.true_positives;
    else if (actual && !predicted) ++c.false_negatives;
    else if (!actual && predicted) ++c.false_positives;
    else ++c.true_negatives;
  }
  return c;
}

std::vector<RocPoint> roc_curve(std::span<const int> labels,
                                std::span<const double> scores) {
  if (labels.size() != scores.size()) {
    throw std::invalid_argument("roc_curve: size mismatch");
  }
  std::size_t total_pos = 0;
  std::size_t total_neg = 0;
  std::vector<std::pair<double, int>> ranked;
  ranked.reserve(labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    ranked.emplace_back(scores[i], labels[i]);
    (labels[i] == kInfection ? total_pos : total_neg) += 1;
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  std::vector<RocPoint> curve;
  curve.push_back({std::numeric_limits<double>::infinity(), 0.0, 0.0});
  std::size_t tp = 0;
  std::size_t fp = 0;
  std::size_t i = 0;
  while (i < ranked.size()) {
    // Consume all samples tied at this score before emitting a point.
    const double score = ranked[i].first;
    while (i < ranked.size() && ranked[i].first == score) {
      (ranked[i].second == kInfection ? tp : fp) += 1;
      ++i;
    }
    curve.push_back({
        score,
        total_neg == 0 ? 0.0 : static_cast<double>(fp) / static_cast<double>(total_neg),
        total_pos == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(total_pos),
    });
  }
  return curve;
}

double roc_auc(std::span<const int> labels, std::span<const double> scores) {
  const auto curve = roc_curve(labels, scores);
  bool has_pos = false;
  bool has_neg = false;
  for (int label : labels) {
    (label == kInfection ? has_pos : has_neg) = true;
  }
  if (!has_pos || !has_neg) return 0.5;
  double auc = 0.0;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    const double dx = curve[i].fpr - curve[i - 1].fpr;
    auc += dx * (curve[i].tpr + curve[i - 1].tpr) / 2.0;
  }
  return auc;
}

}  // namespace dm::ml

// Parallel deterministic Stage-1 training.
//
// The ERF's trees are independent given their RNG streams: tree i draws its
// bootstrap and split randomness from the counter-based stream
// tree_stream_seed(options.seed, i) (util::stream_seed), never from a
// shared sequential generator.  Training is therefore a pure function of
// (data, options) — the trees can be built in any order on any number of
// threads and the assembled forest is bit-identical to the sequential
// RandomForest::train, the same determinism contract the inference side
// established for the flat ERF and the sharded runtime.  The differential
// suite (ml_parallel_trainer_test, `ctest -L train`) and the
// bench_training --json A/B both assert byte-identical serialization at
// 1, 2, and 8 threads.
//
// Work is fanned over the existing runtime::WorkerPool (one task per tree,
// round-robin); results land in pre-sized slots so no ordering or merging
// step can perturb the ensemble.  Instrumentation reports into dm.train.*
// (see TrainerMetrics below).
#pragma once

#include <cstddef>

#include "ml/random_forest.h"
#include "obs/metrics.h"
#include "obs/timer.h"

namespace dm::ml {

/// Knobs shared by every Stage-1 training entry point (forest training,
/// WCG feature extraction in core::dataset_from_wcgs, cross-validation).
struct TrainerOptions {
  /// Worker threads for tree building / feature extraction.
  /// 1 = inline on the caller (no pool); 0 = hardware_concurrency.
  /// The trained model is identical for every value.
  std::size_t threads = 1;
  /// Observability: registry receiving the dm.train.* counters and
  /// histograms (null -> the process-wide obs::registry()), and the clock
  /// stamping the spans (null -> steady clock).  Tests inject both.
  dm::obs::MetricsRegistry* metrics = nullptr;
  dm::obs::ClockFn clock = nullptr;
};

/// The dm.train.* instrument panel, resolved once (cold path) into
/// wait-free handles — same pattern as obs::PipelineMetrics.
struct TrainerMetrics {
  dm::obs::Counter& trees_built;        // dm.train.trees_built
  dm::obs::Counter& forests_trained;    // dm.train.forests_trained
  dm::obs::Counter& wcgs_extracted;     // dm.train.wcgs_extracted (core::dataset_from_wcgs)
  dm::obs::Histogram& tree_build_ns;    // dm.train.tree_build_ns   per-tree build time
  dm::obs::Histogram& forest_train_ns;  // dm.train.forest_train_ns whole-forest wall clock
  dm::obs::Histogram& extract_ns;       // dm.train.extract_ns      per-WCG feature extraction
  dm::obs::Histogram& fold_ns;          // dm.train.fold_ns         per-CV-fold train+score
  static TrainerMetrics of(dm::obs::MetricsRegistry& reg);
};

/// Resolves trainer.metrics (falling back to the process-wide registry).
TrainerMetrics trainer_metrics(const TrainerOptions& trainer);

/// Trains the forest across trainer.threads workers.  Bit-identical to
/// RandomForest::train(data, options) at every thread count; throws
/// std::invalid_argument on an empty dataset like the sequential path.
RandomForest train_forest_parallel(const Dataset& data,
                                   const ForestOptions& options,
                                   const TrainerOptions& trainer = {});

/// Resolved worker count for a TrainerOptions::threads value (0 -> the
/// hardware concurrency, never 0).
std::size_t resolve_trainer_threads(std::size_t threads) noexcept;

}  // namespace dm::ml

// Stratified k-fold cross-validation for the ERF, producing the aggregate
// TPR/FPR/F-score/ROC-area quadruple the paper reports in Table III, plus
// the pooled (label, score) pairs that draw Figure 10's ROC curve.
#pragma once

#include "ml/metrics.h"
#include "ml/parallel_trainer.h"
#include "ml/random_forest.h"

namespace dm::ml {

struct CrossValidationResult {
  Confusion confusion;            // pooled over all folds
  double roc_area = 0.0;          // AUC on pooled scores
  std::vector<int> labels;        // pooled test labels (fold order)
  std::vector<double> scores;     // pooled ensemble scores
  std::vector<Confusion> fold_confusions;

  double tpr() const noexcept { return confusion.tpr(); }
  double fpr() const noexcept { return confusion.fpr(); }
  double f_score() const noexcept { return confusion.f_score(); }
  double accuracy() const noexcept { return confusion.accuracy(); }
};

/// Runs stratified k-fold CV: trains a forest on k-1 folds, scores the held
/// out fold, pools results.  `decision_threshold` converts scores to hard
/// predictions for the confusion matrix.  `trainer` controls the per-fold
/// forest training (threads, dm.train.* metrics incl. the per-fold
/// dm.train.fold_ns latency); the result is identical for every thread
/// count.
CrossValidationResult cross_validate(const Dataset& data, std::size_t k,
                                     const ForestOptions& options,
                                     std::uint64_t seed,
                                     double decision_threshold = 0.5,
                                     const TrainerOptions& trainer = {});

}  // namespace dm::ml

// CART decision tree for binary classification with Gini impurity and
// optional per-split feature subsampling (the randomness source for the
// Ensemble Random Forest).  The paper observes that a single decision tree
// overfits the internally-variable WCG data (§V-A); we keep the tree public
// both as the RF building block and as an ablation baseline.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <span>
#include <vector>

#include "ml/dataset.h"
#include "util/rng.h"

namespace dm::ml {

struct TreeOptions {
  std::size_t max_depth = 24;
  std::size_t min_samples_split = 2;
  std::size_t min_samples_leaf = 1;
  /// Number of candidate features examined per split; 0 = all features.
  std::size_t features_per_split = 0;
};

/// A trained CART tree.  Nodes are stored in a flat vector; leaves carry the
/// positive-class probability observed in training.
class DecisionTree {
 public:
  /// Trains on the rows of `data` selected by `indices` (duplicates allowed —
  /// that is how the forest passes bootstrap samples).  `rng` drives feature
  /// subsampling; it is unused when features_per_split == 0.
  static DecisionTree train(const Dataset& data,
                            std::span<const std::size_t> indices,
                            const TreeOptions& options, dm::util::Rng& rng);

  /// Convenience: train on all rows.
  static DecisionTree train(const Dataset& data, const TreeOptions& options,
                            dm::util::Rng& rng);

  /// P(label == infection) for a feature vector.
  double predict_proba(std::span<const double> features) const;
  double predict_proba(std::initializer_list<double> features) const {
    return predict_proba(std::span<const double>(features.begin(), features.size()));
  }

  /// Hard decision at threshold 0.5.
  int predict(std::span<const double> features) const;
  int predict(std::initializer_list<double> features) const {
    return predict(std::span<const double>(features.begin(), features.size()));
  }

  struct Node {
    // Internal nodes: feature/threshold and child links; leaves: left == -1.
    std::int32_t left = -1;
    std::int32_t right = -1;
    std::uint32_t feature = 0;
    double threshold = 0.0;
    double positive_probability = 0.0;
  };

  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t depth() const noexcept { return depth_; }

  /// Read-only view of the node storage (root at index 0); lets
  /// ml/flat_forest.h compile the tree into its contiguous SoA arena.
  const std::vector<Node>& nodes() const noexcept { return nodes_; }

  /// Persistence (format documented in ml/serialization.h).
  void serialize(std::ostream& out) const;
  static DecisionTree deserialize(std::istream& in);

 private:
  struct SplitCandidate {
    std::size_t feature = 0;
    double threshold = 0.0;
    double impurity_decrease = 0.0;
  };

  std::int32_t build(const Dataset& data, std::vector<std::size_t>& indices,
                     std::size_t begin, std::size_t end, std::size_t depth,
                     const TreeOptions& options, dm::util::Rng& rng);

  static std::optional<SplitCandidate> best_split(
      const Dataset& data, std::span<const std::size_t> indices,
      std::span<const std::size_t> features, std::size_t min_leaf);

  std::vector<Node> nodes_;
  std::size_t depth_ = 0;
};

}  // namespace dm::ml

#include "ml/flat_forest.h"

#include <algorithm>

namespace dm::ml {

FlatForest FlatForest::compile(const RandomForest& forest) {
  FlatForest flat;
  flat.combination_ = forest.options().combination;

  std::size_t total_nodes = 0;
  for (const auto& tree : forest.trees()) {
    // An empty (untrained) tree predicts 0.0; represent it as one leaf so
    // the traversal needs no special case.
    total_nodes += std::max<std::size_t>(1, tree.nodes().size());
  }
  flat.feature_.reserve(total_nodes);
  flat.threshold_.reserve(total_nodes);
  flat.left_.reserve(total_nodes);
  flat.prob_.reserve(total_nodes);
  flat.roots_.reserve(forest.num_trees());

  std::vector<std::int32_t> order;  // source node indices in BFS order
  for (const auto& tree : forest.trees()) {
    const auto& nodes = tree.nodes();
    const auto base = static_cast<std::uint32_t>(flat.feature_.size());
    flat.roots_.push_back(base);

    if (nodes.empty()) {
      flat.feature_.push_back(-1);
      flat.threshold_.push_back(0.0);
      flat.left_.push_back(0);
      flat.prob_.push_back(0.0);
      continue;
    }

    // Breadth-first slot assignment: the node at order[k] lands in arena
    // slot base + k, and a node's children are appended together, making
    // them adjacent (right child slot == left child slot + 1).
    order.clear();
    order.push_back(0);
    for (std::size_t k = 0; k < order.size(); ++k) {
      const auto& node = nodes[static_cast<std::size_t>(order[k])];
      if (node.left < 0) {
        flat.feature_.push_back(-1);
        flat.threshold_.push_back(0.0);
        flat.left_.push_back(0);
        flat.prob_.push_back(node.positive_probability);
      } else {
        const auto left_slot = base + static_cast<std::uint32_t>(order.size());
        flat.feature_.push_back(static_cast<std::int32_t>(node.feature));
        flat.threshold_.push_back(node.threshold);
        flat.left_.push_back(left_slot);
        flat.prob_.push_back(0.0);
        order.push_back(node.left);
        order.push_back(node.right);
      }
    }
  }
  return flat;
}

double FlatForest::tree_proba(std::uint32_t root,
                              std::span<const double> features) const {
  std::uint32_t at = root;
  std::int32_t f = feature_[at];
  while (f >= 0) {
    // Same comparison as DecisionTree::predict_proba: x <= t goes left,
    // everything else — including NaN — goes right (= left + 1).
    at = left_[at] +
         static_cast<std::uint32_t>(
             !(features[static_cast<std::size_t>(f)] <= threshold_[at]));
    f = feature_[at];
  }
  return prob_[at];
}

double FlatForest::predict_proba(std::span<const double> features) const {
  if (roots_.empty()) return 0.0;
  double sum = 0.0;
  if (combination_ == Combination::kProbabilityAveraging) {
    for (const auto root : roots_) sum += tree_proba(root, features);
  } else {
    for (const auto root : roots_) {
      sum += tree_proba(root, features) >= 0.5 ? 1.0 : 0.0;
    }
  }
  return sum / static_cast<double>(roots_.size());
}

int FlatForest::predict(std::span<const double> features, double threshold) const {
  return predict_proba(features) >= threshold ? kInfection : kBenign;
}

}  // namespace dm::ml

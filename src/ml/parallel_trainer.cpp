#include "ml/parallel_trainer.h"

#include <stdexcept>
#include <thread>

#include "runtime/worker_pool.h"

namespace dm::ml {

TrainerMetrics TrainerMetrics::of(dm::obs::MetricsRegistry& reg) {
  return TrainerMetrics{
      .trees_built = reg.counter("dm.train.trees_built"),
      .forests_trained = reg.counter("dm.train.forests_trained"),
      .wcgs_extracted = reg.counter("dm.train.wcgs_extracted"),
      .tree_build_ns = reg.histogram("dm.train.tree_build_ns"),
      .forest_train_ns = reg.histogram("dm.train.forest_train_ns"),
      .extract_ns = reg.histogram("dm.train.extract_ns"),
      .fold_ns = reg.histogram("dm.train.fold_ns"),
  };
}

TrainerMetrics trainer_metrics(const TrainerOptions& trainer) {
  return TrainerMetrics::of(trainer.metrics != nullptr ? *trainer.metrics
                                                       : dm::obs::registry());
}

std::size_t resolve_trainer_threads(std::size_t threads) noexcept {
  if (threads != 0) return threads;
  return std::max(1u, std::thread::hardware_concurrency());
}

RandomForest train_forest_parallel(const Dataset& data,
                                   const ForestOptions& options,
                                   const TrainerOptions& trainer) {
  if (data.empty()) {
    throw std::invalid_argument("train_forest_parallel: empty dataset");
  }
  TrainerMetrics obs = trainer_metrics(trainer);
  const dm::obs::StageTimer timer(trainer.clock);
  auto forest_span = timer.span(obs.forest_train_ns);

  TreeOptions tree_options = options.tree;
  tree_options.features_per_split =
      options.features_per_split > 0
          ? options.features_per_split
          : default_features_per_split(data.num_features());

  // Slot t is written only by tree t's task, so assembly is a plain move —
  // execution order cannot leak into the ensemble.
  std::vector<DecisionTree> trees(options.num_trees);
  const auto build_tree = [&](std::size_t t) {
    auto span = timer.span(obs.tree_build_ns);
    dm::util::Rng tree_rng(tree_stream_seed(options.seed, t));
    const auto bootstrap = bootstrap_sample(data.size(), options, tree_rng);
    trees[t] = DecisionTree::train(data, bootstrap, tree_options, tree_rng);
    span.stop();
    obs.trees_built.add(1);
  };

  const std::size_t threads = resolve_trainer_threads(trainer.threads);
  if (threads <= 1 || options.num_trees <= 1) {
    for (std::size_t t = 0; t < options.num_trees; ++t) build_tree(t);
  } else {
    dm::runtime::WorkerPool pool(
        {.workers = std::min(threads, options.num_trees),
         .queue_capacity = std::max<std::size_t>(1, options.num_trees)});
    for (std::size_t t = 0; t < options.num_trees; ++t) {
      pool.submit(t, [&build_tree, t] { build_tree(t); });
    }
    pool.drain();  // latch barrier: all slots written and visible
  }

  forest_span.stop();
  obs.forests_trained.add(1);
  return RandomForest::assemble(std::move(trees), options);
}

}  // namespace dm::ml

// Gain-ratio feature ranking with k-fold averaging, reproducing the paper's
// Table IV methodology: "we use the gain ratio metric with 10-fold cross
// validation ... known for reducing bias towards multi-valued features".
//
// For a continuous feature we pick the binary threshold maximizing
// information gain on each fold's training portion, then report
// gain ratio = IG / split-information at that threshold.
#pragma once

#include <string>
#include <vector>

#include "ml/dataset.h"

namespace dm::ml {

/// Gain ratio of a single feature over the full set of rows.
/// Returns 0 when the feature cannot split the data.
double gain_ratio(const Dataset& data, std::size_t feature);

struct FeatureRank {
  std::string name;
  std::size_t feature_index = 0;
  double gain_ratio_mean = 0.0;
  double gain_ratio_stdev = 0.0;
  double rank_mean = 0.0;   // 1-based average rank across folds
  double rank_stdev = 0.0;
};

/// Ranks every feature by gain ratio averaged over `k` stratified folds
/// (computed on each fold's training portion).  Result is sorted by mean
/// rank ascending — the paper's Table IV ordering.
std::vector<FeatureRank> rank_features(const Dataset& data, std::size_t k,
                                       dm::util::Rng& rng);

}  // namespace dm::ml

// Flattened, cache-friendly inference form of the Ensemble Random Forest.
//
// RandomForest/DecisionTree remain the training and serialization
// representation: per-tree vectors of 32-byte nodes with explicit
// left/right links, walked by pointer-chasing.  For the on-the-wire hot
// path — thousands of predict_proba calls per session — FlatForest
// compiles the trained ensemble once into a single contiguous
// structure-of-arrays arena shared by all trees:
//
//        slot:      0      1      2      3      4     ...
//   feature_ :  [  f0  |  f1  |  -1  |  -1  |  f4  | ... ]  int32, -1 = leaf
//   threshold_: [  t0  |  t1  |  --  |  --  |  t4  | ... ]  double
//   left_     : [   1  |   3  |  --  |  --  |   7  | ... ]  uint32 arena slot
//   prob_     : [  --  |  --  |  p2  |  p3  |  --  | ... ]  leaf probability
//
// Each tree is laid out breadth-first, so the two children of any internal
// node occupy adjacent slots: right == left + 1, and the branch direction
// becomes an arithmetic index increment instead of a second pointer load.
// The first few levels of every tree — the slots nearly every query
// touches — sit in a handful of consecutive cache lines.
//
// Equivalence contract: predict_proba() is bit-identical to
// RandomForest::predict_proba() for every input, including NaN features
// (both send NaN to the right child) — enforced by ml_flat_forest_test.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/random_forest.h"

namespace dm::ml {

class FlatForest {
 public:
  FlatForest() = default;

  /// Compiles a trained forest into the flat arena.  The source forest is
  /// not referenced afterwards.
  static FlatForest compile(const RandomForest& forest);

  /// Ensemble positive-class score; bit-identical to the source forest's
  /// RandomForest::predict_proba (same per-tree leaves, same summation
  /// order, same combination rule).
  double predict_proba(std::span<const double> features) const;
  double predict_proba(std::initializer_list<double> features) const {
    return predict_proba(std::span<const double>(features.begin(), features.size()));
  }

  /// Hard decision at `threshold` on the ensemble score.
  int predict(std::span<const double> features, double threshold = 0.5) const;

  std::size_t num_trees() const noexcept { return roots_.size(); }
  std::size_t node_count() const noexcept { return feature_.size(); }

 private:
  double tree_proba(std::uint32_t root, std::span<const double> features) const;

  // Parallel SoA arrays, indexed by arena slot.
  std::vector<std::int32_t> feature_;    // split feature; -1 marks a leaf
  std::vector<double> threshold_;        // split threshold (internal nodes)
  std::vector<std::uint32_t> left_;      // left-child slot; right = left + 1
  std::vector<double> prob_;             // positive probability (leaves)
  std::vector<std::uint32_t> roots_;     // root slot of each tree, in order
  Combination combination_ = Combination::kProbabilityAveraging;
};

}  // namespace dm::ml

#include "ml/cross_validation.h"

namespace dm::ml {

CrossValidationResult cross_validate(const Dataset& data, std::size_t k,
                                     const ForestOptions& options,
                                     std::uint64_t seed,
                                     double decision_threshold,
                                     const TrainerOptions& trainer) {
  dm::util::Rng rng(seed);
  const auto folds = stratified_folds(data, k, rng);
  TrainerMetrics obs = trainer_metrics(trainer);
  const dm::obs::StageTimer timer(trainer.clock);

  CrossValidationResult result;
  for (std::size_t fold = 0; fold < k; ++fold) {
    auto fold_span = timer.span(obs.fold_ns);
    std::vector<std::size_t> train_rows;
    for (std::size_t other = 0; other < k; ++other) {
      if (other == fold) continue;
      train_rows.insert(train_rows.end(), folds[other].begin(), folds[other].end());
    }
    ForestOptions fold_options = options;
    fold_options.seed = seed ^ (0x9e3779b97f4a7c15ULL * (fold + 1));
    const Dataset train = data.subset(train_rows);
    const RandomForest forest = train_forest_parallel(train, fold_options, trainer);

    std::vector<int> fold_labels;
    std::vector<int> fold_predictions;
    for (std::size_t row : folds[fold]) {
      const double score = forest.predict_proba(data.row(row));
      result.labels.push_back(data.label(row));
      result.scores.push_back(score);
      fold_labels.push_back(data.label(row));
      fold_predictions.push_back(score >= decision_threshold ? kInfection : kBenign);
    }
    result.fold_confusions.push_back(confusion_from(fold_labels, fold_predictions));
  }

  std::vector<int> pooled_predictions;
  pooled_predictions.reserve(result.scores.size());
  for (double s : result.scores) {
    pooled_predictions.push_back(s >= decision_threshold ? kInfection : kBenign);
  }
  result.confusion = confusion_from(result.labels, pooled_predictions);
  result.roc_area = roc_auc(result.labels, result.scores);
  return result;
}

}  // namespace dm::ml

#include "ml/feature_ranking.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/stats.h"

namespace dm::ml {
namespace {

double entropy_of(std::size_t positives, std::size_t total) {
  if (total == 0) return 0.0;
  const double p = static_cast<double>(positives) / static_cast<double>(total);
  double h = 0.0;
  if (p > 0.0) h -= p * std::log2(p);
  if (p < 1.0) h -= (1.0 - p) * std::log2(1.0 - p);
  return h;
}

double split_information(std::size_t left, std::size_t right) {
  const std::size_t total = left + right;
  if (total == 0 || left == 0 || right == 0) return 0.0;
  const double pl = static_cast<double>(left) / static_cast<double>(total);
  const double pr = static_cast<double>(right) / static_cast<double>(total);
  return -(pl * std::log2(pl) + pr * std::log2(pr));
}

double gain_ratio_rows(const Dataset& data, std::size_t feature,
                       std::span<const std::size_t> rows) {
  const std::size_t count = rows.size();
  if (count < 2) return 0.0;

  std::vector<std::pair<double, int>> column;
  column.reserve(count);
  std::size_t total_pos = 0;
  for (std::size_t row : rows) {
    column.emplace_back(data.value(row, feature), data.label(row));
    total_pos += static_cast<std::size_t>(data.label(row) == kInfection);
  }
  std::sort(column.begin(), column.end());
  const double parent = entropy_of(total_pos, count);
  if (parent == 0.0) return 0.0;

  double best_gain = 0.0;
  std::size_t best_left = 0;
  std::size_t left_pos = 0;
  for (std::size_t i = 0; i + 1 < count; ++i) {
    left_pos += static_cast<std::size_t>(column[i].second == kInfection);
    if (column[i].first == column[i + 1].first) continue;
    const std::size_t left_n = i + 1;
    const std::size_t right_n = count - left_n;
    const std::size_t right_pos = total_pos - left_pos;
    const double child =
        (static_cast<double>(left_n) * entropy_of(left_pos, left_n) +
         static_cast<double>(right_n) * entropy_of(right_pos, right_n)) /
        static_cast<double>(count);
    const double gain = parent - child;
    if (gain > best_gain) {
      best_gain = gain;
      best_left = left_n;
    }
  }
  if (best_gain <= 0.0) return 0.0;
  const double si = split_information(best_left, count - best_left);
  return si <= 0.0 ? 0.0 : best_gain / si;
}

}  // namespace

double gain_ratio(const Dataset& data, std::size_t feature) {
  std::vector<std::size_t> rows(data.size());
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  return gain_ratio_rows(data, feature, rows);
}

std::vector<FeatureRank> rank_features(const Dataset& data, std::size_t k,
                                       dm::util::Rng& rng) {
  const std::size_t nf = data.num_features();
  const auto folds = stratified_folds(data, k, rng);

  // per-feature gain ratios and ranks across folds
  std::vector<std::vector<double>> gains(nf);
  std::vector<std::vector<double>> ranks(nf);

  for (std::size_t fold = 0; fold < k; ++fold) {
    // Training rows for this fold = everything except fold's indices.
    std::vector<std::size_t> rows;
    for (std::size_t other = 0; other < k; ++other) {
      if (other == fold) continue;
      rows.insert(rows.end(), folds[other].begin(), folds[other].end());
    }
    std::vector<std::pair<double, std::size_t>> scored;  // (-gain, feature)
    scored.reserve(nf);
    for (std::size_t f = 0; f < nf; ++f) {
      const double g = gain_ratio_rows(data, f, rows);
      gains[f].push_back(g);
      scored.emplace_back(-g, f);
    }
    std::sort(scored.begin(), scored.end());
    for (std::size_t position = 0; position < scored.size(); ++position) {
      ranks[scored[position].second].push_back(static_cast<double>(position + 1));
    }
  }

  std::vector<FeatureRank> out;
  out.reserve(nf);
  for (std::size_t f = 0; f < nf; ++f) {
    FeatureRank fr;
    fr.name = data.feature_names()[f];
    fr.feature_index = f;
    fr.gain_ratio_mean = dm::util::mean(gains[f]);
    fr.gain_ratio_stdev = dm::util::stddev(gains[f]);
    fr.rank_mean = dm::util::mean(ranks[f]);
    fr.rank_stdev = dm::util::stddev(ranks[f]);
    out.push_back(std::move(fr));
  }
  std::sort(out.begin(), out.end(), [](const FeatureRank& a, const FeatureRank& b) {
    return a.rank_mean < b.rank_mean;
  });
  return out;
}

}  // namespace dm::ml

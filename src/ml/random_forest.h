// Ensemble Random Forest (ERF), the paper's classifier (§V-A).
//
// The paper's configuration: Nt = 20 trees, Nf = log2(num_features) + 1
// candidate features per split, and — crucially — ensemble combination by
// AVERAGING per-tree probabilistic predictions instead of majority voting,
// which the paper argues reduces variance on internally-variable WCG data.
// Majority voting is retained as an option for the design ablation bench.
#pragma once

#include <cmath>
#include <span>
#include <vector>

#include "ml/decision_tree.h"

namespace dm::ml {

enum class Combination {
  kProbabilityAveraging,  // the paper's ERF
  kMajorityVote,          // ablation baseline
};

struct ForestOptions {
  std::size_t num_trees = 20;  // paper's Nt
  /// Candidate features per split; 0 -> log2(num_features) + 1 (paper's Nf).
  std::size_t features_per_split = 0;
  TreeOptions tree;
  Combination combination = Combination::kProbabilityAveraging;
  /// Bootstrap sample size as a fraction of the training set.
  double bootstrap_fraction = 1.0;
  std::uint64_t seed = 42;
};

/// Returns the paper's default Nf for a feature count.
std::size_t default_features_per_split(std::size_t num_features) noexcept;

class RandomForest {
 public:
  /// Trains Nt trees on bootstrap samples of `data`.
  static RandomForest train(const Dataset& data, const ForestOptions& options);

  /// Ensemble positive-class score in [0, 1]: mean per-tree probability
  /// under kProbabilityAveraging, or the fraction of positive votes under
  /// kMajorityVote.
  double predict_proba(std::span<const double> features) const;
  double predict_proba(std::initializer_list<double> features) const {
    return predict_proba(std::span<const double>(features.begin(), features.size()));
  }

  /// Hard decision at `threshold` on the ensemble score.
  int predict(std::span<const double> features, double threshold = 0.5) const;
  int predict(std::initializer_list<double> features, double threshold = 0.5) const {
    return predict(std::span<const double>(features.begin(), features.size()),
                   threshold);
  }

  std::size_t num_trees() const noexcept { return trees_.size(); }
  const std::vector<DecisionTree>& trees() const noexcept { return trees_; }
  const ForestOptions& options() const noexcept { return options_; }

  /// Persistence (format documented in ml/serialization.h).
  void serialize(std::ostream& out) const;
  static RandomForest deserialize(std::istream& in);

 private:
  std::vector<DecisionTree> trees_;
  ForestOptions options_;
};

}  // namespace dm::ml

// Ensemble Random Forest (ERF), the paper's classifier (§V-A).
//
// The paper's configuration: Nt = 20 trees, Nf = log2(num_features) + 1
// candidate features per split, and — crucially — ensemble combination by
// AVERAGING per-tree probabilistic predictions instead of majority voting,
// which the paper argues reduces variance on internally-variable WCG data.
// Majority voting is retained as an option for the design ablation bench.
#pragma once

#include <cmath>
#include <span>
#include <vector>

#include "ml/decision_tree.h"

namespace dm::ml {

enum class Combination {
  kProbabilityAveraging,  // the paper's ERF
  kMajorityVote,          // ablation baseline
};

/// The one documented default training seed.  Every option path that ends
/// in a trained ERF — ForestOptions{}, core::paper_forest_options(),
/// core::train_dynaminer()'s default argument — resolves to this constant,
/// so "the model trained with defaults" means exactly one forest.
inline constexpr std::uint64_t kDefaultTrainingSeed = 42;

struct ForestOptions {
  std::size_t num_trees = 20;  // paper's Nt
  /// Candidate features per split; 0 -> log2(num_features) + 1 (paper's Nf).
  std::size_t features_per_split = 0;
  TreeOptions tree;
  Combination combination = Combination::kProbabilityAveraging;
  /// Bootstrap sample size as a fraction of the training set.
  double bootstrap_fraction = 1.0;
  std::uint64_t seed = kDefaultTrainingSeed;
};

/// Returns the paper's default Nf for a feature count.
std::size_t default_features_per_split(std::size_t num_features) noexcept;

/// Seed of tree `tree`'s private RNG stream: util::stream_seed(seed, tree).
/// Tree identity alone determines the stream — not training order, not
/// thread — which is what makes parallel and sequential training produce
/// bit-identical forests (see ml/parallel_trainer.h).
std::uint64_t tree_stream_seed(std::uint64_t seed, std::size_t tree) noexcept;

/// The bootstrap sample (row indices, duplicates expected) tree `tree`
/// trains on; consumes the leading draws of that tree's RNG stream.  Shared
/// by the sequential and parallel trainers so both paths sample identically.
std::vector<std::size_t> bootstrap_sample(std::size_t dataset_size,
                                          const ForestOptions& options,
                                          dm::util::Rng& tree_rng);

class RandomForest {
 public:
  /// Trains Nt trees on bootstrap samples of `data`.  Tree i draws its
  /// bootstrap and split randomness from the counter-based stream
  /// tree_stream_seed(options.seed, i), so the result is a pure function of
  /// (data, options) — ml::train_forest_parallel produces the same forest
  /// from any thread count.
  static RandomForest train(const Dataset& data, const ForestOptions& options);

  /// Assembly seam for the parallel trainer: wraps already-trained trees
  /// (tree i trained exactly as train() would have) into a forest carrying
  /// `options`.
  static RandomForest assemble(std::vector<DecisionTree> trees,
                               const ForestOptions& options);

  /// Ensemble positive-class score in [0, 1]: mean per-tree probability
  /// under kProbabilityAveraging, or the fraction of positive votes under
  /// kMajorityVote.
  double predict_proba(std::span<const double> features) const;
  double predict_proba(std::initializer_list<double> features) const {
    return predict_proba(std::span<const double>(features.begin(), features.size()));
  }

  /// Hard decision at `threshold` on the ensemble score.
  int predict(std::span<const double> features, double threshold = 0.5) const;
  int predict(std::initializer_list<double> features, double threshold = 0.5) const {
    return predict(std::span<const double>(features.begin(), features.size()),
                   threshold);
  }

  std::size_t num_trees() const noexcept { return trees_.size(); }
  const std::vector<DecisionTree>& trees() const noexcept { return trees_; }
  const ForestOptions& options() const noexcept { return options_; }

  /// Serving-layer provenance: which published model version this forest
  /// was (or will be) deployed as.  0 — the training default — means
  /// "unversioned"; the serving layer stamps a candidate at publication
  /// time.  Deliberately NOT part of ForestOptions: it says nothing about
  /// how the forest was trained, so the byte-identity fences (parallel
  /// trainer, no-op retrain) compare forests before stamping.  Serialized
  /// as an optional v2 trailer (see ml/serialization.h) — a zero version
  /// writes nothing, keeping pre-serve artifacts byte-stable.
  std::uint64_t model_version() const noexcept { return model_version_; }
  void set_model_version(std::uint64_t version) noexcept {
    model_version_ = version;
  }

  /// Persistence (format documented in ml/serialization.h).
  void serialize(std::ostream& out) const;
  static RandomForest deserialize(std::istream& in);

 private:
  std::vector<DecisionTree> trees_;
  ForestOptions options_;
  std::uint64_t model_version_ = 0;
};

}  // namespace dm::ml

#include "ml/random_forest.h"

#include <stdexcept>

namespace dm::ml {

std::size_t default_features_per_split(std::size_t num_features) noexcept {
  if (num_features == 0) return 0;
  return static_cast<std::size_t>(std::log2(static_cast<double>(num_features))) + 1;
}

std::uint64_t tree_stream_seed(std::uint64_t seed, std::size_t tree) noexcept {
  return dm::util::stream_seed(seed, static_cast<std::uint64_t>(tree));
}

std::vector<std::size_t> bootstrap_sample(std::size_t dataset_size,
                                          const ForestOptions& options,
                                          dm::util::Rng& tree_rng) {
  const auto sample_size = static_cast<std::size_t>(
      static_cast<double>(dataset_size) * options.bootstrap_fraction);
  std::vector<std::size_t> bootstrap(std::max<std::size_t>(1, sample_size));
  for (auto& idx : bootstrap) {
    idx = static_cast<std::size_t>(
        tree_rng.uniform_int(0, static_cast<std::int64_t>(dataset_size) - 1));
  }
  return bootstrap;
}

RandomForest RandomForest::train(const Dataset& data, const ForestOptions& options) {
  if (data.empty()) throw std::invalid_argument("RandomForest::train: empty dataset");
  RandomForest forest;
  forest.options_ = options;

  TreeOptions tree_options = options.tree;
  tree_options.features_per_split =
      options.features_per_split > 0
          ? options.features_per_split
          : default_features_per_split(data.num_features());

  forest.trees_.reserve(options.num_trees);
  for (std::size_t t = 0; t < options.num_trees; ++t) {
    dm::util::Rng tree_rng(tree_stream_seed(options.seed, t));
    const auto bootstrap = bootstrap_sample(data.size(), options, tree_rng);
    forest.trees_.push_back(
        DecisionTree::train(data, bootstrap, tree_options, tree_rng));
  }
  return forest;
}

RandomForest RandomForest::assemble(std::vector<DecisionTree> trees,
                                    const ForestOptions& options) {
  RandomForest forest;
  forest.options_ = options;
  forest.trees_ = std::move(trees);
  return forest;
}

double RandomForest::predict_proba(std::span<const double> features) const {
  if (trees_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& tree : trees_) {
    if (options_.combination == Combination::kProbabilityAveraging) {
      sum += tree.predict_proba(features);
    } else {
      sum += tree.predict(features) == kInfection ? 1.0 : 0.0;
    }
  }
  return sum / static_cast<double>(trees_.size());
}

int RandomForest::predict(std::span<const double> features, double threshold) const {
  return predict_proba(features) >= threshold ? kInfection : kBenign;
}

}  // namespace dm::ml

#include "ml/decision_tree.h"

#include <algorithm>
#include <numeric>

namespace dm::ml {
namespace {

double gini(std::size_t positives, std::size_t total) {
  if (total == 0) return 0.0;
  const double p = static_cast<double>(positives) / static_cast<double>(total);
  return 2.0 * p * (1.0 - p);
}

}  // namespace

DecisionTree DecisionTree::train(const Dataset& data,
                                 std::span<const std::size_t> indices,
                                 const TreeOptions& options, dm::util::Rng& rng) {
  DecisionTree tree;
  std::vector<std::size_t> work(indices.begin(), indices.end());
  if (!work.empty()) {
    tree.build(data, work, 0, work.size(), 0, options, rng);
  }
  return tree;
}

DecisionTree DecisionTree::train(const Dataset& data, const TreeOptions& options,
                                 dm::util::Rng& rng) {
  std::vector<std::size_t> all(data.size());
  std::iota(all.begin(), all.end(), std::size_t{0});
  return train(data, all, options, rng);
}

std::int32_t DecisionTree::build(const Dataset& data,
                                 std::vector<std::size_t>& indices,
                                 std::size_t begin, std::size_t end,
                                 std::size_t depth, const TreeOptions& options,
                                 dm::util::Rng& rng) {
  depth_ = std::max(depth_, depth);
  const std::size_t count = end - begin;
  std::size_t positives = 0;
  for (std::size_t i = begin; i < end; ++i) {
    positives += static_cast<std::size_t>(data.label(indices[i]) == kInfection);
  }

  const auto make_leaf = [&]() -> std::int32_t {
    Node leaf;
    leaf.positive_probability =
        count == 0 ? 0.0 : static_cast<double>(positives) / static_cast<double>(count);
    nodes_.push_back(leaf);
    return static_cast<std::int32_t>(nodes_.size() - 1);
  };

  const bool pure = positives == 0 || positives == count;
  if (pure || depth >= options.max_depth || count < options.min_samples_split) {
    return make_leaf();
  }

  // Choose the candidate feature set for this split.  When subsampling,
  // follow the standard random-forest convention: if none of the sampled
  // features admits a valid split, keep examining further features rather
  // than giving up (otherwise a draw of constant features would truncate
  // the tree).
  std::vector<std::size_t> features(data.num_features());
  std::iota(features.begin(), features.end(), std::size_t{0});
  const std::size_t sample_count =
      (options.features_per_split > 0 &&
       options.features_per_split < features.size())
          ? options.features_per_split
          : features.size();
  if (sample_count < features.size()) rng.shuffle(features);

  const auto rows =
      std::span<const std::size_t>(indices).subspan(begin, count);
  auto split = best_split(
      data, rows,
      std::span<const std::size_t>(features.data(), sample_count),
      options.min_samples_leaf);
  for (std::size_t extra = sample_count; !split && extra < features.size();
       ++extra) {
    split = best_split(data, rows,
                       std::span<const std::size_t>(&features[extra], 1),
                       options.min_samples_leaf);
  }
  if (!split) return make_leaf();

  // Partition [begin, end) in place around the chosen threshold.
  auto mid_it = std::partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::size_t row) {
        return data.value(row, split->feature) <= split->threshold;
      });
  const auto mid = static_cast<std::size_t>(mid_it - indices.begin());
  if (mid == begin || mid == end) return make_leaf();  // degenerate split

  // Reserve this node's slot before recursing so children line up after it.
  nodes_.emplace_back();
  const auto self = static_cast<std::int32_t>(nodes_.size() - 1);
  const std::int32_t left = build(data, indices, begin, mid, depth + 1, options, rng);
  const std::int32_t right = build(data, indices, mid, end, depth + 1, options, rng);
  Node& node = nodes_[static_cast<std::size_t>(self)];
  node.left = left;
  node.right = right;
  node.feature = static_cast<std::uint32_t>(split->feature);
  node.threshold = split->threshold;
  node.positive_probability =
      static_cast<double>(positives) / static_cast<double>(count);
  return self;
}

std::optional<DecisionTree::SplitCandidate> DecisionTree::best_split(
    const Dataset& data, std::span<const std::size_t> indices,
    std::span<const std::size_t> features, std::size_t min_leaf) {
  const std::size_t count = indices.size();
  std::size_t total_pos = 0;
  for (std::size_t row : indices) {
    total_pos += static_cast<std::size_t>(data.label(row) == kInfection);
  }
  const double parent_impurity = gini(total_pos, count);

  std::optional<SplitCandidate> best;
  std::vector<std::pair<double, int>> column;  // (value, label)
  column.reserve(count);

  for (std::size_t f : features) {
    column.clear();
    for (std::size_t row : indices) {
      column.emplace_back(data.value(row, f), data.label(row));
    }
    std::sort(column.begin(), column.end());

    std::size_t left_pos = 0;
    for (std::size_t i = 0; i + 1 < count; ++i) {
      left_pos += static_cast<std::size_t>(column[i].second == kInfection);
      // Only split between distinct values.
      if (column[i].first == column[i + 1].first) continue;
      const std::size_t left_n = i + 1;
      const std::size_t right_n = count - left_n;
      if (left_n < min_leaf || right_n < min_leaf) continue;
      const std::size_t right_pos = total_pos - left_pos;
      const double weighted =
          (static_cast<double>(left_n) * gini(left_pos, left_n) +
           static_cast<double>(right_n) * gini(right_pos, right_n)) /
          static_cast<double>(count);
      const double decrease = parent_impurity - weighted;
      if (!best || decrease > best->impurity_decrease) {
        best = SplitCandidate{
            .feature = f,
            .threshold = (column[i].first + column[i + 1].first) / 2.0,
            .impurity_decrease = decrease,
        };
      }
    }
  }
  // Zero-decrease splits are kept: Gini is concave so decrease >= 0 always,
  // and refusing exact ties would make XOR-like interactions unlearnable
  // (the gain only appears one level deeper).
  return best;
}

double DecisionTree::predict_proba(std::span<const double> features) const {
  if (nodes_.empty()) return 0.0;
  std::int32_t at = 0;
  while (true) {
    const Node& node = nodes_[static_cast<std::size_t>(at)];
    if (node.left < 0) return node.positive_probability;
    at = features[node.feature] <= node.threshold ? node.left : node.right;
  }
}

int DecisionTree::predict(std::span<const double> features) const {
  return predict_proba(features) >= 0.5 ? kInfection : kBenign;
}

}  // namespace dm::ml

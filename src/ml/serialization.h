// Model persistence: the paper's deployment splits training (Stage 1,
// offline) from detection (Stage 2, on the wire), which implies a trained
// classifier artifact that moves between the two.  This module serializes
// decision trees and forests to a small, versioned, line-oriented text
// format that is stable across platforms (doubles are round-tripped via
// hex-float formatting).
//
// Format sketch (v2 — current writer):
//   dynaminer-forest v2
//   trees <N> combination <avg|vote>
//   options features-per-split <Nf> bootstrap-fraction <hexfloat> seed <u64>
//   tree-options max-depth <D> min-samples-split <S> min-samples-leaf <L>
//   model-version <u64>          (optional — serving-layer provenance)
//   tree <node-count> <depth>
//   node <left> <right> <feature> <threshold-hexfloat> <prob-hexfloat>
//   ...
// v1 (no `options` / `tree-options` lines) is still readable; its dropped
// ForestOptions fields load as the ForestOptions defaults.  v2 round-trips
// every ForestOptions field, so a reloaded forest can be retrained or
// compared under exactly the configuration that produced it.  The optional
// `model-version` trailer carries the serving layer's published-version
// stamp (serve::RetrainDriver); it is omitted when 0, so unstamped forests
// — including every artifact written before the serving layer existed —
// serialize byte-identically to the original v2 layout and load with
// model_version() == 0.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "ml/random_forest.h"
#include "util/expected.h"

namespace dm::ml {

/// Writes the forest (all trees + the options needed to score) to `out`.
/// Throws std::runtime_error on stream failure.
void save_forest(const RandomForest& forest, std::ostream& out);

/// Reads a forest previously written by save_forest.
/// Throws std::runtime_error on malformed input or version mismatch.
RandomForest load_forest(std::istream& in);

/// File-path conveniences.
void save_forest_file(const RandomForest& forest, const std::string& path);
RandomForest load_forest_file(const std::string& path);

/// Structured load failure: what was wrong with the artifact.  Model files
/// cross a trust boundary (the serve::ModelStore reads whatever survived a
/// crash), so short reads, bad magic, and garbage bytes are expected inputs
/// — they quarantine-and-count, they must not throw.
struct LoadError {
  std::string reason;

  std::string to_string() const { return "forest load: " + reason; }
};

template <typename T>
using LoadResult = dm::util::BasicExpected<T, LoadError>;

/// Non-throwing variants of load_forest: every malformed input — truncated
/// stream, bad magic, implausible counts, non-numeric tokens, structural
/// violations — comes back as a LoadError instead of an exception.
LoadResult<RandomForest> try_load_forest(std::istream& in);
LoadResult<RandomForest> try_load_forest(std::string_view text);
LoadResult<RandomForest> try_load_forest_file(const std::string& path);

}  // namespace dm::ml

// Model persistence: the paper's deployment splits training (Stage 1,
// offline) from detection (Stage 2, on the wire), which implies a trained
// classifier artifact that moves between the two.  This module serializes
// decision trees and forests to a small, versioned, line-oriented text
// format that is stable across platforms (doubles are round-tripped via
// hex-float formatting).
//
// Format sketch:
//   dynaminer-forest v1
//   trees <N> combination <avg|vote> threshold-features <Nf>
//   tree <node-count> <depth>
//   node <left> <right> <feature> <threshold-hexfloat> <prob-hexfloat>
//   ...
#pragma once

#include <iosfwd>
#include <string>

#include "ml/random_forest.h"

namespace dm::ml {

/// Writes the forest (all trees + the options needed to score) to `out`.
/// Throws std::runtime_error on stream failure.
void save_forest(const RandomForest& forest, std::ostream& out);

/// Reads a forest previously written by save_forest.
/// Throws std::runtime_error on malformed input or version mismatch.
RandomForest load_forest(std::istream& in);

/// File-path conveniences.
void save_forest_file(const RandomForest& forest, const std::string& path);
RandomForest load_forest_file(const std::string& path);

}  // namespace dm::ml

#include "synth/content.h"

#include <array>

namespace dm::synth {
namespace {

using dm::http::PayloadType;

std::string hex_escape(std::string_view text) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(text.size() * 4);
  for (unsigned char c : text) {
    out += "\\x";
    out += kHex[c >> 4];
    out += kHex[c & 0xf];
  }
  return out;
}

std::string percent_escape(std::string_view text) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(text.size() * 3);
  for (unsigned char c : text) {
    out += '%';
    out += kHex[c >> 4];
    out += kHex[c & 0xf];
  }
  return out;
}

std::string base64_encode(std::string_view data) {
  static constexpr char kAlphabet[] =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t i = 0;
  while (i + 2 < data.size()) {
    const unsigned v = (static_cast<unsigned char>(data[i]) << 16) |
                       (static_cast<unsigned char>(data[i + 1]) << 8) |
                       static_cast<unsigned char>(data[i + 2]);
    out += kAlphabet[(v >> 18) & 63];
    out += kAlphabet[(v >> 12) & 63];
    out += kAlphabet[(v >> 6) & 63];
    out += kAlphabet[v & 63];
    i += 3;
  }
  if (i + 1 == data.size()) {
    const unsigned v = static_cast<unsigned char>(data[i]) << 16;
    out += kAlphabet[(v >> 18) & 63];
    out += kAlphabet[(v >> 12) & 63];
    out += "==";
  } else if (i + 2 == data.size()) {
    const unsigned v = (static_cast<unsigned char>(data[i]) << 16) |
                       (static_cast<unsigned char>(data[i + 1]) << 8);
    out += kAlphabet[(v >> 18) & 63];
    out += kAlphabet[(v >> 12) & 63];
    out += kAlphabet[(v >> 6) & 63];
    out += '=';
  }
  return out;
}

std::string filler(std::size_t size, dm::util::Rng& rng) {
  std::string out;
  out.reserve(size);
  while (out.size() < size) {
    out += static_cast<char>(rng.uniform_int(32, 126));
  }
  return out;
}

}  // namespace

std::string html_page(const std::string& title, int link_count,
                      dm::util::Rng& rng) {
  std::string body = "<!DOCTYPE html><html><head><title>" + title +
                     "</title></head><body><h1>" + title + "</h1>";
  for (int i = 0; i < link_count; ++i) {
    body += "<p><a href=\"/page" + std::to_string(rng.uniform_int(1, 99)) +
            ".html\">item " + std::to_string(i) + "</a></p>";
  }
  body += "<div class=\"footer\">generated page</div></body></html>";
  return body;
}

std::string redirect_content_type(RedirectTechnique technique) {
  switch (technique) {
    case RedirectTechnique::kPlainJavaScript:
    case RedirectTechnique::kHexEscapedJs:
    case RedirectTechnique::kUnescapeJs:
    case RedirectTechnique::kBase64Js:
      return "application/javascript";
    default:
      return "text/html";
  }
}

std::string redirect_body(RedirectTechnique technique,
                          const std::string& target_url, dm::util::Rng& rng) {
  const std::string assignment = "window.location=\"" + target_url + "\";";
  switch (technique) {
    case RedirectTechnique::kLocationHeader:
      return "<html><body>Moved <a href=\"" + target_url +
             "\">here</a></body></html>";
    case RedirectTechnique::kMetaRefresh:
      return "<html><head><meta http-equiv=\"refresh\" content=\"0;url=" +
             target_url + "\"></head><body>loading...</body></html>";
    case RedirectTechnique::kIframe:
      return "<html><body><div style=\"position:absolute;left:-" +
             std::to_string(rng.uniform_int(1000, 9999)) +
             "px\"><iframe src=\"" + target_url +
             "\" width=\"1\" height=\"1\"></iframe></div></body></html>";
    case RedirectTechnique::kPlainJavaScript:
      return "var t=" + std::to_string(rng.uniform_int(1, 50)) + ";" + assignment;
    case RedirectTechnique::kHexEscapedJs:
      return "var p=\"" + hex_escape(assignment) + "\";eval(p);";
    case RedirectTechnique::kUnescapeJs:
      return "document.write(unescape('" + percent_escape(assignment) + "'));";
    case RedirectTechnique::kBase64Js:
      return "eval(atob('" + base64_encode(assignment) + "'));";
  }
  return assignment;
}

std::string content_type_for(PayloadType type) {
  switch (type) {
    case PayloadType::kHtml: return "text/html";
    case PayloadType::kJavaScript: return "application/javascript";
    case PayloadType::kCss: return "text/css";
    case PayloadType::kImage: return "image/png";
    case PayloadType::kJson: return "application/json";
    case PayloadType::kText: return "text/plain";
    case PayloadType::kPdf: return "application/pdf";
    case PayloadType::kExe: return "application/octet-stream";
    case PayloadType::kJar: return "application/java-archive";
    case PayloadType::kSwf: return "application/x-shockwave-flash";
    case PayloadType::kSilverlight: return "application/x-silverlight-app";
    case PayloadType::kCrypt: return "application/octet-stream";
    case PayloadType::kArchive: return "application/zip";
    case PayloadType::kOffice: return "application/msword";
    case PayloadType::kVideo: return "video/mp4";
    default: return "application/octet-stream";
  }
}

std::string extension_for(PayloadType type, dm::util::Rng& rng) {
  switch (type) {
    case PayloadType::kHtml: return "html";
    case PayloadType::kJavaScript: return "js";
    case PayloadType::kCss: return "css";
    case PayloadType::kImage: return "png";
    case PayloadType::kJson: return "json";
    case PayloadType::kText: return "txt";
    case PayloadType::kPdf: return "pdf";
    case PayloadType::kExe: return "exe";
    case PayloadType::kJar: return "jar";
    case PayloadType::kSwf: return "swf";
    case PayloadType::kSilverlight: return "xap";
    case PayloadType::kCrypt: {
      static constexpr std::array<std::string_view, 6> kExts = {
          "crypt", "locky", "cerber", "zepto", "xtbl", "vault"};
      return std::string(kExts[static_cast<std::size_t>(
          rng.uniform_int(0, kExts.size() - 1))]);
    }
    case PayloadType::kArchive: return "zip";
    case PayloadType::kOffice: return "doc";
    case PayloadType::kVideo: return "mp4";
    default: return "bin";
  }
}

std::string payload_blob(PayloadType type, std::size_t size,
                         const std::string& unique_tag, bool malicious,
                         dm::util::Rng& rng) {
  std::string blob;
  switch (type) {
    case PayloadType::kExe: blob = "MZ"; break;
    case PayloadType::kPdf: blob = "%PDF-1.5\n"; break;
    case PayloadType::kJar:
    case PayloadType::kArchive: blob = "PK\x03\x04"; break;
    case PayloadType::kSwf: blob = "CWS"; break;
    case PayloadType::kImage: blob = "\x89PNG\r\n"; break;
    default: break;
  }
  blob += "[tag:" + unique_tag + "]";
  if (malicious) blob += "[x-ground-truth:malicious]";
  if (blob.size() < size) blob += filler(size - blob.size(), rng);
  return blob;
}

}  // namespace dm::synth

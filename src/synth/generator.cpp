#include "synth/generator.h"

#include <algorithm>
#include <set>

#include "ml/dataset.h"
#include "synth/content.h"
#include "util/hash.h"

namespace dm::synth {
namespace {

using dm::http::HttpTransaction;
using dm::http::PayloadType;

constexpr std::string_view kWindowsUa =
    "Mozilla/5.0 (Windows NT 6.1; Trident/7.0; rv:11.0) like Gecko";

/// Mutable state threaded through one episode's construction.
struct EpisodeBuilder {
  EpisodeBuilder(dm::util::Rng& rng_in, HostNameGen& names_in,
                 const GeneratorOptions& options_in,
                 std::uint64_t& payload_counter_in)
      : rng(rng_in),
        names(names_in),
        options(options_in),
        payload_counter(payload_counter_in) {}

  dm::util::Rng& rng;
  HostNameGen& names;
  const GeneratorOptions& options;
  std::uint64_t& payload_counter;

  Episode episode;
  std::string client_ip;
  std::uint64_t clock = 0;  // microseconds
  std::uint16_t next_client_port = 40200;
  std::string session_cookie;  // set once a Set-Cookie is issued
  std::string user_agent = std::string(kWindowsUa);

  void advance(double seconds) {
    clock += static_cast<std::uint64_t>(std::max(0.0, seconds) * 1e6);
  }

  struct TxnSpec {
    std::string host;
    std::string uri = "/";
    std::string method = "GET";
    std::string referrer;       // absolute URL or empty
    int status = 200;
    std::string content_type = "text/html";
    std::string body;
    std::string location;       // Location header for 30x
    bool x_flash = false;       // add X-Flash-Version request header
    bool dnt = false;
    bool set_session_cookie = false;
    std::string request_body;   // for POST
  };

  HttpTransaction& emit(const TxnSpec& spec) {
    HttpTransaction txn;
    txn.client_host = client_ip;
    txn.server_host = spec.host;
    txn.server_ip = HostNameGen::ip_for(spec.host).to_string();
    txn.server_port = 80;

    auto& req = txn.request;
    req.method = spec.method;
    req.uri = spec.uri;
    req.version = "HTTP/1.1";
    req.ts_micros = clock;
    req.headers.add("Host", spec.host);
    req.headers.add("User-Agent", user_agent);
    req.headers.add("Accept", "*/*");
    if (!spec.referrer.empty()) req.headers.add("Referer", spec.referrer);
    if (!session_cookie.empty()) {
      req.headers.add("Cookie", "PHPSESSID=" + session_cookie);
    }
    if (spec.x_flash) req.headers.add("X-Flash-Version", "18.0.0.232");
    if (spec.dnt) req.headers.add("DNT", "1");
    if (!spec.request_body.empty()) {
      req.headers.add("Content-Type", "application/x-www-form-urlencoded");
      req.headers.add("Content-Length", std::to_string(spec.request_body.size()));
      req.body = spec.request_body;
    }

    dm::http::HttpResponse res;
    res.version = "HTTP/1.1";
    res.status_code = spec.status;
    res.reason = spec.status == 200   ? "OK"
                 : spec.status == 302 ? "Found"
                 : spec.status == 301 ? "Moved Permanently"
                 : spec.status == 404 ? "Not Found"
                 : spec.status == 403 ? "Forbidden"
                 : spec.status == 500 ? "Internal Server Error"
                                      : "Status";
    const double latency_s =
        0.02 + rng.exponential(20.0) +
        static_cast<double>(spec.body.size()) / 2.0e6;  // ~2MB/s link
    res.ts_micros = clock + static_cast<std::uint64_t>(latency_s * 1e6);
    res.headers.add("Server", "nginx");
    if (!spec.content_type.empty()) {
      res.headers.add("Content-Type", spec.content_type);
    }
    res.headers.add("Content-Length", std::to_string(spec.body.size()));
    if (!spec.location.empty()) res.headers.add("Location", spec.location);
    if (spec.set_session_cookie && session_cookie.empty()) {
      // Servers reuse an existing session rather than rotating it on every
      // page load.
      session_cookie = "s" + std::to_string(rng.next_u64() % 100000000);
      res.headers.add("Set-Cookie", "PHPSESSID=" + session_cookie + "; path=/");
    }
    res.body = spec.body;
    txn.response = std::move(res);

    clock = txn.response->ts_micros;  // next event happens after this reply
    episode.transactions.push_back(std::move(txn));
    return episode.transactions.back();
  }

  /// Emits a payload download and records it for the AV-baseline oracle.
  void download(const std::string& host, PayloadType type, bool malicious,
                const std::string& referrer) {
    const std::string ext = extension_for(type, rng);
    const std::string uri =
        "/files/" + std::to_string(rng.next_u64() % 100000) + "." + ext;
    const auto size = static_cast<std::size_t>(std::min<double>(
        static_cast<double>(options.max_payload_bytes),
        500.0 + rng.lognormal(8.6, 1.0)));  // median ~5.4 KB, heavy tail
    const std::string tag = "p" + std::to_string(payload_counter++);
    std::string body = payload_blob(type, size, tag, malicious, rng);

    TxnSpec spec;
    spec.host = host;
    spec.uri = uri;
    spec.referrer = referrer;
    spec.content_type = content_type_for(type);
    spec.body = std::move(body);
    spec.x_flash = malicious && type == PayloadType::kSwf && rng.chance(0.4);
    const auto& txn = emit(spec);

    PayloadRecord record;
    record.digest = dm::util::digest_hex(txn.response->body);
    record.type = type;
    record.malicious = malicious;
    record.host = host;
    record.uri = uri;
    record.ts_micros = txn.response->ts_micros;
    record.size = txn.response->body.size();
    episode.meta.payloads.push_back(std::move(record));
  }

  /// Emits asset chatter (js/css/images) for a page on `host`.
  void assets(const std::string& host, const std::string& page_url, int count,
              double burst_gap_s) {
    for (int i = 0; i < count; ++i) {
      advance(burst_gap_s * rng.uniform(0.5, 1.5));
      const std::size_t kind = rng.weighted_index({3, 1, 3});
      TxnSpec spec;
      spec.host = rng.chance(0.88) ? host : names.cdn_for(host);
      if (rng.chance(0.85)) spec.referrer = page_url;
      if (kind == 0) {
        spec.uri = "/js/lib" + std::to_string(rng.uniform_int(1, 40)) + ".js";
        spec.content_type = "application/javascript";
        spec.body = "function f" + std::to_string(rng.uniform_int(1, 999)) +
                    "(){return " + std::to_string(rng.uniform_int(0, 9)) + ";}";
      } else if (kind == 1) {
        spec.uri = "/css/site.css";
        spec.content_type = "text/css";
        spec.body = "body{margin:0;padding:0}";
      } else {
        spec.uri = "/img/a" + std::to_string(rng.uniform_int(1, 200)) + ".png";
        spec.content_type = "image/png";
        spec.body = payload_blob(PayloadType::kImage,
                                 static_cast<std::size_t>(rng.uniform(400, 9000)),
                                 "img" + std::to_string(payload_counter++), false,
                                 rng);
      }
      emit(spec);
    }
  }

  std::uint32_t unique_hosts() const {
    std::set<std::string> hosts;
    for (const auto& txn : episode.transactions) hosts.insert(txn.server_host);
    return static_cast<std::uint32_t>(hosts.size());
  }
};

std::string url_of(const std::string& host, const std::string& uri) {
  return "http://" + host + uri;
}

RedirectTechnique sample_redirect_technique(dm::util::Rng& rng) {
  // Location headers dominate; the rest split among HTML/JS carriers,
  // including the three obfuscated encodings.
  switch (rng.weighted_index({55, 12, 8, 5, 7, 7, 6})) {
    case 0: return RedirectTechnique::kLocationHeader;
    case 1: return RedirectTechnique::kIframe;
    case 2: return RedirectTechnique::kMetaRefresh;
    case 3: return RedirectTechnique::kPlainJavaScript;
    case 4: return RedirectTechnique::kHexEscapedJs;
    case 5: return RedirectTechnique::kUnescapeJs;
    default: return RedirectTechnique::kBase64Js;
  }
}

}  // namespace

std::string_view enticement_name(Enticement e) noexcept {
  switch (e) {
    case Enticement::kGoogle: return "Google";
    case Enticement::kBing: return "Bing";
    case Enticement::kCompromisedSite: return "CompromisedSite";
    case Enticement::kEmptyReferrer: return "EmptyReferrer";
    case Enticement::kRedactedReferrer: return "RedactedReferrer";
    case Enticement::kSocial: return "Social";
  }
  return "?";
}

std::string_view benign_scenario_name(BenignScenario s) noexcept {
  switch (s) {
    case BenignScenario::kWebSearch: return "WebSearch";
    case BenignScenario::kSocialNetworking: return "SocialNetworking";
    case BenignScenario::kWebMail: return "WebMail";
    case BenignScenario::kVideoStreaming: return "VideoStreaming";
    case BenignScenario::kRandomBrowsing: return "RandomBrowsing";
  }
  return "?";
}

Enticement sample_enticement(dm::util::Rng& rng) {
  // Figure 1 percentages.
  switch (rng.weighted_index({37.0, 25.0, 12.84, 17.76, 7.51, 0.9})) {
    case 0: return Enticement::kGoogle;
    case 1: return Enticement::kBing;
    case 2: return Enticement::kCompromisedSite;
    case 3: return Enticement::kEmptyReferrer;
    case 4: return Enticement::kRedactedReferrer;
    default: return Enticement::kSocial;
  }
}

TraceGenerator::TraceGenerator(std::uint64_t seed, GeneratorOptions options)
    : rng_(seed), names_(dm::util::Rng(seed ^ 0xabcdef1234)), options_(options) {}

Episode TraceGenerator::infection(const FamilyProfile& family) {
  EpisodeBuilder b(rng_, names_, options_, payload_counter_);
  b.clock = options_.base_ts_micros +
            static_cast<std::uint64_t>(rng_.uniform(0, 3.0e13));
  b.client_ip = "10.0." + std::to_string(rng_.uniform_int(0, 20)) + "." +
                std::to_string(rng_.uniform_int(2, 250));

  auto& meta = b.episode.meta;
  meta.label = dm::ml::kInfection;
  meta.family = family.name;
  meta.enticement = sample_enticement(rng_);

  // A minority of infections pace themselves (EK sleep timers, congested
  // victims), so timing alone cannot separate the classes.
  const double slow_factor = rng_.chance(0.08) ? rng_.uniform(2.0, 5.0) : 1.0;

  // ---- Enticement / origin ------------------------------------------------
  std::string entry_referrer;
  switch (meta.enticement) {
    case Enticement::kGoogle:
      entry_referrer = "http://www.google.com/search?q=free+" +
                       std::to_string(rng_.uniform_int(100, 999));
      break;
    case Enticement::kBing:
      entry_referrer = "http://www.bing.com/search?q=watch+online";
      break;
    case Enticement::kSocial:
      entry_referrer = rng_.chance(0.6) ? "http://www.facebook.com/"
                                        : "http://twitter.com/";
      break;
    case Enticement::kRedactedReferrer:
      entry_referrer = "-";  // redacted: present but carries no origin
      break;
    case Enticement::kCompromisedSite:
    case Enticement::kEmptyReferrer:
      entry_referrer.clear();
      break;
  }

  // ---- Entry page ----------------------------------------------------------
  // Compromised enticement (and a slice of the rest) route through a
  // compromised CMS site; 56/94 of the paper's compromised entries matched
  // WordPress installs.
  std::string current_host;
  std::string current_url;
  const bool via_compromised =
      meta.enticement == Enticement::kCompromisedSite || rng_.chance(0.10);
  if (via_compromised) {
    current_host = names_.compromised_site();
    const bool wordpress = rng_.chance(0.6);
    meta.compromised_wordpress = wordpress;
    const std::string uri = wordpress
                                ? "/wp-content/themes/twentysixteen/index.php?id=" +
                                      std::to_string(rng_.uniform_int(1, 9999))
                                : "/news/article" +
                                      std::to_string(rng_.uniform_int(1, 500)) +
                                      ".html";
    EpisodeBuilder::TxnSpec spec;
    spec.host = current_host;
    spec.uri = uri;
    spec.referrer = entry_referrer;
    spec.body = html_page("Latest updates", 4, rng_);
    // The compromise: an injected hidden redirect into the EK chain is
    // emitted below as this page's "redirect hop 0".
    b.emit(spec);
    current_url = url_of(current_host, uri);
    b.assets(current_host, current_url, static_cast<int>(rng_.uniform_int(1, 3)),
             0.15);
  }

  // ---- Redirect chain ------------------------------------------------------
  std::uint32_t chain_len = static_cast<std::uint32_t>(rng_.skewed_int(
      family.redirects_min, family.redirects_max,
      std::max(1.0, family.redirects_avg)));
  // Only ~1.4% of the paper's infections (11/770) had no redirects at all.
  if (chain_len == 0 && !rng_.chance(0.05)) chain_len = 1;
  meta.redirect_chain_len = chain_len;

  std::vector<std::string> chain_hosts;
  for (std::uint32_t i = 0; i < chain_len; ++i) {
    chain_hosts.push_back(names_.ek_domain());
  }
  // The landing page lives on its own host, after the chain: every chain
  // hop therefore contributes one host-to-host redirect edge.
  const std::string landing_host = names_.ek_domain();

  // Walk the chain: hop i serves a redirect carrier pointing at hop i+1.
  for (std::uint32_t i = 0; i < chain_len; ++i) {
    const std::string& hop = chain_hosts[i];
    const std::string next =
        (i + 1 < chain_len)
            ? url_of(chain_hosts[i + 1],
                     "/gate" + std::to_string(rng_.uniform_int(1, 99)) + ".php")
            : url_of(landing_host, "/landing.php?sid=" +
                                       std::to_string(rng_.uniform_int(1, 1e6)));
    const auto technique = sample_redirect_technique(rng_);
    // Automatic hops are fast — the paper notes infections have short
    // delays between consecutive redirects.
    b.advance(slow_factor * rng_.uniform(0.05, 0.4));
    EpisodeBuilder::TxnSpec spec;
    spec.host = hop;
    spec.uri = rng_.chance(0.5)
                   ? "/in.cgi?" + std::to_string(rng_.uniform_int(1, 9999))
                   : "/" + std::to_string(rng_.next_u64() % 100) + ".php";
    spec.referrer = current_url.empty() ? entry_referrer : current_url;
    if (technique == RedirectTechnique::kLocationHeader) {
      spec.status = rng_.chance(0.8) ? 302 : 301;
      spec.location = next;
      spec.body = redirect_body(technique, next, rng_);
    } else {
      spec.status = 200;
      spec.content_type = redirect_content_type(technique);
      spec.body = redirect_body(technique, next, rng_);
    }
    b.emit(spec);
    current_host = hop;
    current_url = url_of(hop, spec.uri);
  }

  // ---- Landing page ---------------------------------------------------------
  // The final chain hop already redirected INTO the landing host, but the
  // actual landing request happens now (fingerprinting page, sets the EK
  // session cookie).
  if (chain_len == 0 || landing_host != current_host || true) {
    b.advance(rng_.uniform(0.05, 0.3));
    EpisodeBuilder::TxnSpec spec;
    spec.host = landing_host;
    spec.uri = "/landing.php?sid=" + std::to_string(rng_.uniform_int(1, 1000000));
    spec.referrer = current_url.empty() ? entry_referrer : current_url;
    spec.set_session_cookie = true;
    spec.body = html_page("Loading", 1, rng_) +
                redirect_body(RedirectTechnique::kHexEscapedJs,
                              url_of(landing_host, "/exploit.js"), rng_);
    b.emit(spec);
    current_url = url_of(landing_host, spec.uri);
  }

  // Fingerprinting scripts from the landing host.
  const int fingerprint_scripts = static_cast<int>(rng_.uniform_int(1, 3));
  for (int i = 0; i < fingerprint_scripts; ++i) {
    b.advance(rng_.uniform(0.05, 0.25));
    EpisodeBuilder::TxnSpec spec;
    spec.host = landing_host;
    spec.uri = "/check" + std::to_string(i) + ".js";
    spec.referrer = current_url;
    spec.content_type = "application/javascript";
    spec.x_flash = rng_.chance(0.1);
    spec.body = "var plugins=navigator.plugins.length;";
    b.emit(spec);
  }

  // ---- Exploit payload downloads -------------------------------------------
  const std::string exploit_host =
      rng_.chance(0.5) ? landing_host : names_.ek_domain();
  const int downloads = std::max<int>(
      1, static_cast<int>(rng_.skewed_int(1, 6,
                                          family.exploit_downloads_avg)));
  std::vector<double> weights(family.payload_weights.begin(),
                              family.payload_weights.end());
  for (int i = 0; i < downloads; ++i) {
    b.advance(slow_factor * rng_.uniform(0.1, 0.8));
    const auto which = rng_.weighted_index(weights);
    static constexpr PayloadType kTypes[] = {
        PayloadType::kPdf, PayloadType::kExe, PayloadType::kJar,
        PayloadType::kSwf, PayloadType::kCrypt};
    b.download(exploit_host, kTypes[which], /*malicious=*/true, current_url);
  }

  // ---- JS chatter and 40x noise ---------------------------------------------
  const int js_fetches = static_cast<int>(
      rng_.skewed_int(2, 16, family.js_avg));
  b.assets(landing_host, current_url, js_fetches, 0.2);
  // EK status polling: the landing page re-queries its server while the
  // exploit runs, inflating GET/20x counts the way Fig 4 shows.
  const int polls = static_cast<int>(rng_.uniform_int(2, 6));
  for (int i = 0; i < polls; ++i) {
    b.advance(rng_.uniform(0.3, 1.5));
    EpisodeBuilder::TxnSpec poll;
    poll.host = landing_host;
    poll.uri = "/status?t=" + std::to_string(rng_.uniform_int(1, 1000000));
    poll.referrer = current_url;
    poll.content_type = "text/plain";
    poll.body = "wait";
    b.emit(poll);
  }
  const int failures = static_cast<int>(rng_.uniform_int(0, 2));
  for (int i = 0; i < failures; ++i) {
    b.advance(rng_.uniform(0.1, 0.5));
    EpisodeBuilder::TxnSpec spec;
    spec.host = rng_.chance(0.5) ? exploit_host : landing_host;
    spec.uri = "/missing" + std::to_string(rng_.uniform_int(1, 99));
    spec.status = rng_.chance(0.8) ? 404 : 403;
    spec.referrer = current_url;
    spec.body = "not found";
    b.emit(spec);
  }

  // ---- Post-download call-backs ----------------------------------------------
  meta.has_callback = rng_.chance(family.callback_prob);
  if (meta.has_callback) {
    const int cc_hosts = static_cast<int>(rng_.uniform_int(1, 3));
    for (int i = 0; i < cc_hosts; ++i) {
      const std::string cc = names_.fresh_ip_literal();
      b.advance(slow_factor * rng_.uniform(0.5, 4.0));
      const int posts = rng_.chance(0.3) ? 2 : 1;
      for (int p = 0; p < posts; ++p) {
        EpisodeBuilder::TxnSpec spec;
        spec.host = cc;
        spec.uri = "/gate.php";
        spec.method = "POST";
        spec.request_body =
            "id=" + std::to_string(rng_.next_u64() % 1000000) + "&cmd=knock";
        spec.status = rng_.chance(0.8) ? 200 : 404;
        spec.content_type = "text/plain";
        spec.body = spec.status == 200 ? "ok" : "not found";
        b.emit(spec);
        b.advance(slow_factor * rng_.uniform(0.2, 1.5));
      }
    }
  }

  // ---- Pad host count toward the family's Table I distribution ---------------
  const auto host_target = static_cast<std::uint32_t>(rng_.skewed_int(
      family.hosts_min, family.hosts_max, family.hosts_avg));
  while (b.unique_hosts() + 1 < host_target) {  // +1: victim node
    const std::string filler_host =
        rng_.chance(0.6) ? names_.ek_domain() : names_.benign_site();
    b.advance(rng_.uniform(0.05, 0.5));
    EpisodeBuilder::TxnSpec spec;
    spec.host = filler_host;
    spec.uri = "/t" + std::to_string(rng_.uniform_int(1, 9999)) + ".gif";
    spec.content_type = "image/gif";
    spec.referrer = current_url;
    spec.body = "GIF89a";
    b.emit(spec);
  }

  meta.host_count = b.unique_hosts() + 1;
  return std::move(b.episode);
}

Episode TraceGenerator::benign() {
  switch (rng_.weighted_index({35, 10, 20, 15, 20})) {
    case 0: return benign(BenignScenario::kWebSearch);
    case 1: return benign(BenignScenario::kSocialNetworking);
    case 2: return benign(BenignScenario::kWebMail);
    case 3: return benign(BenignScenario::kVideoStreaming);
    default: return benign(BenignScenario::kRandomBrowsing);
  }
}

Episode TraceGenerator::benign(BenignScenario scenario) {
  const BenignProfile& profile = benign_profile();
  EpisodeBuilder b(rng_, names_, options_, payload_counter_);
  b.clock = options_.base_ts_micros +
            static_cast<std::uint64_t>(rng_.uniform(0, 3.0e13));
  b.client_ip = "10.0." + std::to_string(rng_.uniform_int(0, 20)) + "." +
                std::to_string(rng_.uniform_int(2, 250));

  auto& meta = b.episode.meta;
  meta.label = dm::ml::kBenign;
  meta.family = "Benign";
  meta.scenario = scenario;

  const bool dnt = rng_.chance(0.25);

  // A minority of benign sessions are machine-paced (prefetching browsers,
  // background tabs), so raw timing alone cannot separate the classes —
  // matching the paper's observation that the combination of features, not
  // any single one, drives accuracy.
  const double pace = rng_.chance(0.10) ? 0.4 : 1.0;
  auto think = [&](double lo, double hi) { b.advance(pace * rng_.uniform(lo, hi)); };

  // The capture may begin mid-browsing: the first request then carries a
  // referrer naming a host outside the trace, so a known origin (f1) is not
  // an infection-only signal.  Flash-enabled browsers also advertise
  // X-Flash-Version (f2) on ordinary sites.
  const std::string external_origin =
      rng_.chance(0.5) ? "http://" + names_.benign_site() + "/" : std::string();
  bool origin_pending = !external_origin.empty();
  const bool flash_browser = rng_.chance(0.35);
  // Ad-iframe embedding budget per episode: enough to keep benign topology
  // from being a trivially clean star, few enough that redirect-evidence
  // triangles stay an infection hallmark.
  int ad_iframes_left = rng_.chance(0.35) ? static_cast<int>(rng_.uniform_int(1, 2)) : 0;

  // Which (rare) benign artifacts does this episode download?
  const bool dl_pdf = rng_.chance(profile.pdf_prob);
  const bool dl_exe = rng_.chance(profile.exe_prob);
  const bool dl_jar = rng_.chance(profile.jar_prob);

  auto browse_site = [&](const std::string& site, const std::string& referrer) {
    EpisodeBuilder::TxnSpec spec;
    spec.host = site;
    if (rng_.chance(0.4)) {
      spec.uri = "/";
    } else if (rng_.chance(0.5)) {
      spec.uri = "/articles/" + std::to_string(rng_.uniform_int(1, 400));
    } else {
      // Long tracking-parameter URLs are everyday benign traffic.
      spec.uri = "/p/" + std::to_string(rng_.uniform_int(1, 400)) +
                 "?utm_source=news&utm_campaign=c" +
                 std::to_string(rng_.next_u64() % 100000000) + "&ref=feed";
    }
    spec.referrer = referrer;
    if (spec.referrer.empty() && origin_pending) {
      spec.referrer = external_origin;
      origin_pending = false;
    }
    spec.dnt = dnt;
    spec.x_flash = flash_browser && rng_.chance(0.5);
    spec.body = html_page(site, static_cast<int>(rng_.uniform_int(3, 10)), rng_);
    if (ad_iframes_left > 0 && rng_.chance(0.5)) {
      --ad_iframes_left;
      // Ordinary ad embedding: a visible iframe to an ad network, which the
      // redirect miner legitimately reports as redirect evidence.
      spec.body += "<iframe src=\"http://" + names_.ad_host() +
                   "/banner?slot=" + std::to_string(rng_.uniform_int(1, 99)) +
                   "\" width=\"728\" height=\"90\"></iframe>";
    }
    spec.set_session_cookie = b.session_cookie.empty() && rng_.chance(0.5);
    b.emit(spec);
    const std::string page_url = url_of(site, spec.uri);
    b.assets(site, page_url, static_cast<int>(rng_.uniform_int(2, 5)), 0.35);
    // Analytics beacons: ordinary pages POST telemetry, so POST counts are
    // not an infection give-away by themselves.
    const int beacons = rng_.chance(0.7) ? (rng_.chance(0.3) ? 2 : 1) : 0;
    for (int bi = 0; bi < beacons; ++bi) {
      EpisodeBuilder::TxnSpec beacon;
      beacon.host = rng_.chance(0.8) ? site : names_.ad_host();
      beacon.uri = "/collect";
      beacon.method = "POST";
      beacon.request_body = "ev=pageview&u=" + spec.uri;
      beacon.status = rng_.chance(0.8) ? 200 : 204;
      beacon.content_type = "text/plain";
      beacon.body = beacon.status == 200 ? "1" : "";
      // Beacon libraries frequently omit the Referer header.
      if (rng_.chance(0.5)) beacon.referrer = page_url;
      beacon.dnt = dnt;
      b.emit(beacon);
    }
    // Stale links / missing assets: benign browsing sees 40x too.
    if (rng_.chance(0.4)) {
      EpisodeBuilder::TxnSpec missing;
      missing.host = site;
      missing.uri = "/img/old" + std::to_string(rng_.uniform_int(1, 99)) + ".png";
      missing.status = 404;
      missing.referrer = page_url;
      missing.body = "not found";
      b.emit(missing);
    }
    return page_url;
  };

  // Occasional benign ad redirect (benign traces show at most ~2 redirects,
  // average 0 — so at most one opportunity per episode, rarely taken).
  bool ad_redirect_done = false;
  auto maybe_ad_redirect = [&](const std::string& from_url) {
    if (ad_redirect_done || !rng_.chance(0.15)) return;
    ad_redirect_done = true;
    const std::string ad = names_.ad_host();
    const std::string target = names_.benign_site();
    b.advance(rng_.uniform(0.5, 2.0));
    EpisodeBuilder::TxnSpec spec;
    spec.host = ad;
    spec.uri = "/click?id=" + std::to_string(rng_.uniform_int(1, 99999));
    spec.referrer = from_url;
    spec.status = 302;
    spec.location = url_of(target, "/promo");
    spec.body = "";
    spec.dnt = dnt;
    b.emit(spec);
    b.advance(rng_.uniform(0.1, 0.6));
    browse_site(target, url_of(ad, spec.uri));
  };

  switch (scenario) {
    case BenignScenario::kWebSearch: {
      const std::string engine =
          rng_.chance(0.6) ? "www.google.com" : "www.bing.com";
      const int queries = static_cast<int>(rng_.uniform_int(1, 2));
      std::string last_serp;
      for (int q = 0; q < queries; ++q) {
        EpisodeBuilder::TxnSpec spec;
        spec.host = engine;
        spec.uri = "/search?q=query" + std::to_string(rng_.uniform_int(1, 999));
        if (origin_pending) {
          spec.referrer = external_origin;
          origin_pending = false;
        }
        spec.dnt = dnt;
        spec.body = html_page("results", 10, rng_);
        b.emit(spec);
        last_serp = url_of(engine, spec.uri);
        // User reads results, then clicks one or two.
        const int clicks = rng_.chance(0.3) ? 2 : 1;
        for (int c = 0; c < clicks; ++c) {
          think(5.0, 25.0);
          const auto page = browse_site(names_.benign_site(), last_serp);
          maybe_ad_redirect(page);
        }
        think(2.0, 10.0);
      }
      break;
    }
    case BenignScenario::kSocialNetworking: {
      const std::string social =
          rng_.chance(0.6) ? "www.facebook.com" : "twitter.com";
      EpisodeBuilder::TxnSpec spec;
      spec.host = social;
      spec.uri = "/feed";
      if (origin_pending) {
        spec.referrer = external_origin;
        origin_pending = false;
      }
      spec.dnt = dnt;
      spec.body = html_page("feed", 12, rng_);
      spec.set_session_cookie = true;
      b.emit(spec);
      const std::string feed_url = url_of(social, spec.uri);
      b.assets(social, feed_url, static_cast<int>(rng_.uniform_int(3, 8)), 0.1);
      // Click links shared by friends.
      const int shared = rng_.chance(0.3) ? 2 : 1;
      for (int i = 0; i < shared; ++i) {
        think(5.0, 30.0);
        browse_site(names_.benign_site(), feed_url);
      }
      break;
    }
    case BenignScenario::kWebMail: {
      const std::string mail =
          rng_.chance(0.5) ? "mail.inboxly.com" : "webmail.yonder.net";
      EpisodeBuilder::TxnSpec spec;
      spec.host = mail;
      spec.uri = "/inbox";
      if (origin_pending) {
        spec.referrer = external_origin;
        origin_pending = false;
      }
      spec.dnt = dnt;
      spec.set_session_cookie = true;
      spec.body = html_page("inbox", 8, rng_);
      b.emit(spec);
      const std::string inbox_url = url_of(mail, spec.uri);
      b.assets(mail, inbox_url, static_cast<int>(rng_.uniform_int(2, 5)), 0.1);
      // Download attachments of various formats (§II-A).
      think(4.0, 20.0);
      if (dl_pdf || rng_.chance(0.4)) {
        b.download(mail, PayloadType::kPdf, false, inbox_url);
      }
      if (rng_.chance(0.3)) {
        b.download(mail, PayloadType::kOffice, false, inbox_url);
      }
      // Click a link embedded in an email.
      if (rng_.chance(0.6)) {
        think(5.0, 25.0);
        browse_site(names_.benign_site(), inbox_url);
      }
      break;
    }
    case BenignScenario::kVideoStreaming: {
      const std::string video = "www.youtube.com";
      EpisodeBuilder::TxnSpec spec;
      spec.host = video;
      spec.uri = "/watch?v=v" + std::to_string(rng_.uniform_int(10000, 99999));
      if (origin_pending) {
        spec.referrer = external_origin;
        origin_pending = false;
      }
      spec.dnt = dnt;
      spec.body = html_page("player", 6, rng_);
      b.emit(spec);
      const std::string watch_url = url_of(video, spec.uri);
      b.assets(video, watch_url, static_cast<int>(rng_.uniform_int(3, 6)), 0.1);
      // Media segments from a CDN host, spread over the viewing time.
      const std::string cdn = "r" + std::to_string(rng_.uniform_int(1, 8)) +
                              ".vidcache-edge.net";
      const int segments = static_cast<int>(rng_.uniform_int(4, 14));
      for (int s = 0; s < segments; ++s) {
        think(4.0, 12.0);
        EpisodeBuilder::TxnSpec seg;
        seg.host = cdn;
        seg.uri = "/seg/" + std::to_string(s) + ".ts";
        seg.referrer = watch_url;
        seg.content_type = "video/mp2t";
        seg.body = payload_blob(PayloadType::kVideo,
                                static_cast<std::size_t>(rng_.uniform(8000, 40000)),
                                "seg" + std::to_string(payload_counter_++), false,
                                rng_);
        b.emit(seg);
      }
      // Clicking an advertisement link (§II-A).
      maybe_ad_redirect(watch_url);
      break;
    }
    case BenignScenario::kRandomBrowsing: {
      const int sites = rng_.chance(0.3) ? 2 : 1;
      std::string last;
      for (int i = 0; i < sites; ++i) {
        last = browse_site(names_.benign_site(), last);
        maybe_ad_redirect(last);
        think(5.0, 40.0);
      }
      break;
    }
  }

  // Heavy multi-tab sessions: the benign ground truth "keeps multiple tabs
  // open" (§II-A) and reaches 34 hosts — these sessions look infection-sized
  // on scale, header and temporal counts, but keep a benign topology.
  if (rng_.chance(0.22)) {
    const int extra_sites = static_cast<int>(rng_.uniform_int(4, 12));
    // Tab-restore / prefetch bursts: the pages load back-to-back, so these
    // sessions overlap infections on timing as well as on size.
    const double burst = rng_.chance(0.5) ? 0.1 : 1.0;
    std::string previous;
    for (int i = 0; i < extra_sites; ++i) {
      previous = browse_site(names_.benign_site(), previous);
      b.advance(burst * pace * rng_.uniform(1.0, 8.0));
    }
  }

  // Rare benign downloads from unofficial sources — the paper's main
  // false-positive profile (§VI-B).
  if (dl_exe) {
    b.advance(rng_.uniform(3.0, 15.0));
    b.download(rng_.chance(0.5) ? names_.benign_site() : "dl.fileplanetmirror.net",
               PayloadType::kExe, false, "");
  }
  if (dl_jar) {
    b.advance(rng_.uniform(3.0, 15.0));
    b.download(names_.benign_site(), PayloadType::kJar, false, "");
  }
  if (dl_pdf && scenario != BenignScenario::kWebMail) {
    b.advance(rng_.uniform(3.0, 15.0));
    b.download(names_.benign_site(), PayloadType::kPdf, false, "");
  }

  meta.host_count = b.unique_hosts() + 1;
  return std::move(b.episode);
}

Episode TraceGenerator::free_streaming_session(std::size_t interruptions,
                                               std::size_t background_transactions) {
  EpisodeBuilder b(rng_, names_, options_, payload_counter_);
  b.clock = options_.base_ts_micros +
            static_cast<std::uint64_t>(rng_.uniform(0, 3.0e13));
  b.client_ip = "10.0.5.77";

  auto& meta = b.episode.meta;
  meta.label = dm::ml::kInfection;  // contains infectious flows
  meta.family = "Streaming";
  meta.scenario = BenignScenario::kVideoStreaming;

  const std::string stream_host = "atdhe-live.net";
  EpisodeBuilder::TxnSpec page;
  page.host = stream_host;
  page.uri = "/watch/final";
  page.body = html_page("live stream", 10, rng_);
  page.set_session_cookie = true;
  b.emit(page);
  const std::string page_url = url_of(stream_host, page.uri);
  b.assets(stream_host, page_url, 5, 0.1);

  const std::string cdn = "edge3.streamrelay-cdn.net";
  const std::size_t per_phase =
      std::max<std::size_t>(4, background_transactions /
                                   std::max<std::size_t>(1, interruptions + 1));

  auto stream_segments = [&](std::size_t n) {
    for (std::size_t s = 0; s < n; ++s) {
      b.advance(rng_.uniform(1.0, 4.0));
      EpisodeBuilder::TxnSpec seg;
      seg.host = cdn;
      seg.uri = "/live/seg" + std::to_string(b.episode.transactions.size()) + ".ts";
      seg.referrer = page_url;
      seg.content_type = "video/mp2t";
      seg.body = payload_blob(PayloadType::kVideo,
                              static_cast<std::size_t>(rng_.uniform(6000, 20000)),
                              "st" + std::to_string(payload_counter_++), false,
                              rng_);
      b.emit(seg);
    }
  };

  stream_segments(per_phase);

  for (std::size_t i = 0; i < interruptions; ++i) {
    // Service interruption: page reload + "out-of-date player" pop-up that
    // redirect-chains into a malware download (the §VI-C script).
    b.advance(rng_.uniform(1.0, 3.0));
    b.emit(page);

    // Pre-plan the pop-up's redirect chain so each hop genuinely points at
    // the next one, ending at the host that serves the "player fix".
    std::string prev_url = page_url;
    const int chain = 3 + static_cast<int>(rng_.uniform_int(0, 1));  // 3-4 hops
    std::vector<std::string> hop_hosts;
    for (int h = 0; h <= chain; ++h) hop_hosts.push_back(names_.ek_domain());
    for (int h = 0; h < chain; ++h) {
      b.advance(rng_.uniform(0.05, 0.3));
      EpisodeBuilder::TxnSpec hop;
      hop.host = hop_hosts[static_cast<std::size_t>(h)];
      hop.uri = "/player-update?step=" + std::to_string(h);
      hop.referrer = prev_url;
      const auto technique = sample_redirect_technique(rng_);
      const std::string next = url_of(
          hop_hosts[static_cast<std::size_t>(h) + 1],
          h + 1 < chain ? "/player-update?step=" + std::to_string(h + 1)
                        : "/get-player");
      if (technique == RedirectTechnique::kLocationHeader) {
        hop.status = 302;
        hop.location = next;
      } else {
        hop.content_type = redirect_content_type(technique);
      }
      hop.body = redirect_body(technique, next, rng_);
      b.emit(hop);
      prev_url = url_of(hop.host, hop.uri);
    }
    // The fake-player page fingerprints the victim before serving the
    // payload, like a real EK landing page.
    b.advance(rng_.uniform(0.1, 0.3));
    const std::string& fix_host = hop_hosts.back();
    const int checks = static_cast<int>(rng_.uniform_int(1, 3));
    for (int c = 0; c < checks; ++c) {
      EpisodeBuilder::TxnSpec check;
      check.host = fix_host;
      check.uri = "/player-check" + std::to_string(c) + ".js";
      check.referrer = prev_url;
      check.content_type = "application/javascript";
      check.x_flash = rng_.chance(0.5);
      check.body = "var v=navigator.plugins.length;";
      b.emit(check);
      b.advance(rng_.uniform(0.05, 0.2));
    }
    // The "player fix" download: flash exe / jar / pdf.
    b.advance(rng_.uniform(0.2, 0.6));
    static constexpr PayloadType kPopupPayloads[] = {
        PayloadType::kExe, PayloadType::kExe, PayloadType::kJar,
        PayloadType::kPdf};
    b.download(fix_host, kPopupPayloads[i % 4], /*malicious=*/true, prev_url);

    // The installed "player" phones home — post-download dynamics to a
    // never-before-seen IP, like the paper's §II-D observation.
    if (rng_.chance(0.85)) {
      const std::string cc = names_.fresh_ip_literal();
      const int knocks = static_cast<int>(rng_.uniform_int(1, 2));
      for (int k = 0; k < knocks; ++k) {
        b.advance(rng_.uniform(0.8, 3.0));
        EpisodeBuilder::TxnSpec knock;
        knock.host = cc;
        knock.uri = "/gate.php";
        knock.method = "POST";
        knock.request_body = "id=" + std::to_string(rng_.next_u64() % 1000000);
        knock.status = rng_.chance(0.8) ? 200 : 404;
        knock.content_type = "text/plain";
        knock.body = knock.status == 200 ? "ok" : "nf";
        b.emit(knock);
      }
    }

    stream_segments(per_phase);
  }

  meta.host_count = b.unique_hosts() + 1;
  return std::move(b.episode);
}

}  // namespace dm::synth

// Response-body builders for generated traffic: plain HTML, redirect
// carriers (meta refresh, iframe, plain and obfuscated JavaScript — the
// encodings §III-D says exploit kits hide redirects behind), and payload
// blobs of a given type and size.
#pragma once

#include <string>

#include "http/classify.h"
#include "util/rng.h"

namespace dm::synth {

/// How a redirect hop is expressed on the wire.
enum class RedirectTechnique {
  kLocationHeader,   // 302 + Location
  kMetaRefresh,      // <meta http-equiv=refresh>
  kIframe,           // <iframe src=...>
  kPlainJavaScript,  // window.location = "..."
  kHexEscapedJs,     // "\x77\x69..." escaped assignment
  kUnescapeJs,       // document.write(unescape('%77%69...'))
  kBase64Js,         // eval(atob('...'))
};

/// A simple benign HTML page with links/assets (no redirects).
std::string html_page(const std::string& title, int link_count,
                      dm::util::Rng& rng);

/// HTML that redirects to `target_url` via the given technique.  For
/// kLocationHeader the body is a stub (the header carries the redirect).
std::string redirect_body(RedirectTechnique technique,
                          const std::string& target_url, dm::util::Rng& rng);

/// Content-Type header value appropriate for a redirect body.
std::string redirect_content_type(RedirectTechnique technique);

/// A payload blob of roughly `size` bytes with magic-looking leading bytes
/// per type.  `unique_tag` makes each payload's digest distinct;
/// `malicious` embeds a marker only the ground-truth oracle reads (content
/// is never inspected by DynaMiner — the system is payload-agnostic).
std::string payload_blob(dm::http::PayloadType type, std::size_t size,
                         const std::string& unique_tag, bool malicious,
                         dm::util::Rng& rng);

/// Content-Type value for a payload type.
std::string content_type_for(dm::http::PayloadType type);

/// URI filename extension for a payload type ("exe", "swf", ...).  For
/// kCrypt a random ransomware extension is chosen.
std::string extension_for(dm::http::PayloadType type, dm::util::Rng& rng);

}  // namespace dm::synth

// Exploit-kit family profiles calibrated to the paper's Table I ground
// truth: per-family trace counts, host-count and redirect-chain
// distributions, and exploit-payload type mixes.  The generator samples
// episodes from these profiles so that the synthetic dataset reproduces the
// table's statistical shape.
#pragma once

#include <array>
#include <string>
#include <vector>

namespace dm::synth {

struct FamilyProfile {
  std::string name;
  std::size_t trace_count = 0;  // Table I "No. of PCAPs"

  // Hosts involved in one episode.
  int hosts_min = 2;
  int hosts_max = 2;
  double hosts_avg = 2.0;

  // Redirect-chain length before the landing page.
  int redirects_min = 0;
  int redirects_max = 0;
  double redirects_avg = 0.0;

  // Exploit payload mix (relative weights from Table I's unique payload
  // counts): pdf, exe, jar, swf, crypt.
  std::array<double, 5> payload_weights{};

  // Mean exploit downloads per episode (clamped family total / traces).
  double exploit_downloads_avg = 1.0;

  // Mean count of JavaScript fetches per episode (chatter).
  double js_avg = 3.0;

  /// Probability that the episode exhibits post-download C&C call-back
  /// (paper: 708/770 overall ≈ 0.92).
  double callback_prob = 0.92;
};

/// Order of entries in FamilyProfile::payload_weights.
enum class ExploitPayload { kPdf = 0, kExe = 1, kJar = 2, kSwf = 3, kCrypt = 4 };

/// The 9 named exploit-kit families plus "OtherKits" (Table I rows).
const std::vector<FamilyProfile>& exploit_kit_families();

/// Profile lookup by name; throws std::out_of_range when unknown.
const FamilyProfile& family_by_name(const std::string& name);

/// The benign row of Table I expressed in the same vocabulary.
struct BenignProfile {
  std::size_t trace_count = 980;
  int hosts_min = 2;
  int hosts_max = 34;
  double hosts_avg = 3.0;
  int redirects_max = 2;
  // Per-trace probabilities of downloading each benign artifact, from the
  // benign row's payload counts (60 pdf, 30 exe, 3 jar over 980 traces).
  double pdf_prob = 60.0 / 980.0;
  double exe_prob = 30.0 / 980.0;
  double jar_prob = 3.0 / 980.0;
};

const BenignProfile& benign_profile();

}  // namespace dm::synth

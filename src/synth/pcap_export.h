// Renders a generated episode to genuine pcap bytes: each (client, server)
// conversation becomes a scripted TCP connection (handshake, HTTP/1.1
// keep-alive request/response exchange, teardown) built frame-by-frame with
// correct checksums.  Reading the file back through net/ + http/ reproduces
// the episode's transactions — the round-trip the unit tests and the
// Table I bench verify.
#pragma once

#include "net/pcap.h"
#include "synth/generator.h"

namespace dm::synth {

/// Wire-format rendering of one HTTP request / response.
std::string render_request(const dm::http::HttpRequest& request);
std::string render_response(const dm::http::HttpResponse& response);

/// Full episode -> pcap capture (packets time-ordered).
dm::net::PcapFile episode_to_pcap(const Episode& episode);

}  // namespace dm::synth

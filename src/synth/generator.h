// Synthetic episode generator — the stand-in for the paper's ground-truth
// PCAPs (see DESIGN.md "Substitutions").  Produces time-ordered HTTP
// transaction streams whose statistics are calibrated to Table I:
//
//  * Infection episodes follow the pre-download / download / post-download
//    script: enticement (Fig 1 distribution), a redirect chain through
//    TDS/compromised hosts expressed via 30x, meta-refresh, iframe, plain
//    and obfuscated JavaScript, exploit payload downloads typed by the
//    family mix, then C&C call-backs to never-seen IP-literal hosts.
//  * Benign episodes follow §II-A's collection scenarios: web search,
//    social networking, webmail with attachments, video streaming, and
//    random browsing — human-paced, with at most a couple of ad redirects.
//
// Episodes can be consumed directly as transaction streams (fast path) or
// exported to genuine pcap bytes (synth/pcap_export.h) and re-ingested
// through the full TCP/HTTP reconstruction stack.
#pragma once

#include <string>
#include <vector>

#include "http/classify.h"
#include "http/message.h"
#include "synth/families.h"
#include "synth/names.h"

namespace dm::synth {

/// Enticement categories of Figure 1.
enum class Enticement {
  kGoogle,
  kBing,
  kCompromisedSite,
  kEmptyReferrer,
  kRedactedReferrer,
  kSocial,
};

std::string_view enticement_name(Enticement e) noexcept;

/// Benign collection scenarios of §II-A.
enum class BenignScenario {
  kWebSearch,
  kSocialNetworking,
  kWebMail,
  kVideoStreaming,
  kRandomBrowsing,
};

std::string_view benign_scenario_name(BenignScenario s) noexcept;

/// One downloaded artifact, for the simulated-VirusTotal ground truth.
struct PayloadRecord {
  std::string digest;      // content digest (util::digest_hex of the body)
  dm::http::PayloadType type = dm::http::PayloadType::kNone;
  bool malicious = false;
  std::string host;        // serving host
  std::string uri;
  std::uint64_t ts_micros = 0;
  std::size_t size = 0;
};

struct EpisodeMeta {
  int label = 0;  // ml::kInfection or ml::kBenign
  std::string family;        // family name or "Benign"
  Enticement enticement = Enticement::kEmptyReferrer;
  BenignScenario scenario = BenignScenario::kWebSearch;  // benign only
  std::uint32_t redirect_chain_len = 0;
  std::uint32_t host_count = 0;
  bool has_callback = false;
  bool compromised_wordpress = false;  // URI matches a WordPress install
  std::vector<PayloadRecord> payloads;
};

struct Episode {
  std::vector<dm::http::HttpTransaction> transactions;  // time ordered
  EpisodeMeta meta;
};

struct GeneratorOptions {
  /// Base capture time (microseconds since epoch).  Episodes start at a
  /// random offset after this.
  std::uint64_t base_ts_micros = 1451606400ULL * 1000000;  // 2016-01-01
  /// Cap on payload body size, to keep pcap round-trips fast.
  std::size_t max_payload_bytes = 64 * 1024;
};

class TraceGenerator {
 public:
  explicit TraceGenerator(std::uint64_t seed, GeneratorOptions options = {});

  /// One infection episode for the given exploit-kit family.
  Episode infection(const FamilyProfile& family);

  /// One benign episode; scenario sampled per §II-A when not forced.
  Episode benign();
  Episode benign(BenignScenario scenario);

  /// Case-study 1 scenario (§VI-C): a free-live-streaming session with
  /// periodic "player update" pop-ups that redirect into malware downloads.
  /// `interruptions` controls how many malicious pop-up flows occur.
  Episode free_streaming_session(std::size_t interruptions,
                                 std::size_t background_transactions);

  dm::util::Rng& rng() noexcept { return rng_; }

 private:
  dm::util::Rng rng_;
  HostNameGen names_;
  GeneratorOptions options_;
  std::uint64_t payload_counter_ = 0;
};

/// Samples an enticement per Figure 1's distribution (Google 37%, Bing 25%,
/// empty 17.76%, compromised 12.84%, redacted 7.51%, social 0.9%).
Enticement sample_enticement(dm::util::Rng& rng);

}  // namespace dm::synth

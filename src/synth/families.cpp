#include "synth/families.h"

#include <algorithm>
#include <stdexcept>

namespace dm::synth {
namespace {

FamilyProfile make(std::string name, std::size_t traces, int hmin, int hmax,
                   double havg, int rmin, int rmax, double ravg,
                   std::array<double, 5> weights, double js_total) {
  FamilyProfile p;
  p.name = std::move(name);
  p.trace_count = traces;
  p.hosts_min = hmin;
  p.hosts_max = hmax;
  p.hosts_avg = havg;
  p.redirects_min = rmin;
  p.redirects_max = rmax;
  p.redirects_avg = ravg;
  p.payload_weights = weights;
  double payload_total = 0.0;
  for (double w : weights) payload_total += w;
  p.exploit_downloads_avg =
      std::clamp(payload_total / static_cast<double>(traces), 1.0, 6.0);
  p.js_avg = std::clamp(js_total / static_cast<double>(traces), 2.0, 12.0);
  return p;
}

}  // namespace

const std::vector<FamilyProfile>& exploit_kit_families() {
  // Columns: name, #pcaps, hosts{min,max,avg}, redirects{min,max,avg},
  // payload weights {pdf, exe, jar, swf, crypt}, js count (Table I).
  static const std::vector<FamilyProfile> kFamilies = {
      make("Angler",      253, 2, 74, 6,  0, 18, 1, {0, 80, 133, 0, 64},   1163),
      make("RIG",          62, 2, 17, 4,  0, 3,  1, {0, 35, 74, 13, 0},     240),
      make("Nuclear",     132, 2, 213, 8, 0, 18, 1, {8, 730, 146, 13, 11},  935),
      make("Magnitude",    43, 2, 231, 20, 0, 12, 2, {0, 862, 22, 0, 2},    330),
      make("SweetOrange",  33, 2, 90, 8,  0, 6,  1, {0, 310, 22, 0, 0},     227),
      make("FlashPack",    29, 2, 15, 5,  0, 8,  2, {0, 556, 35, 0, 0},     159),
      make("Neutrino",     40, 2, 30, 6,  0, 14, 2, {0, 45, 31, 5, 6},      217),
      make("Goon",         19, 2, 90, 9,  0, 30, 2, {0, 78, 15, 10, 0},      71),
      make("Fiesta",       89, 2, 182, 7, 0, 3,  1, {21, 226, 72, 63, 0},   414),
      make("OtherKits",    70, 2, 68, 4,  0, 5,  1, {1, 420, 13, 4, 0},     271),
  };
  return kFamilies;
}

const FamilyProfile& family_by_name(const std::string& name) {
  for (const auto& family : exploit_kit_families()) {
    if (family.name == name) return family;
  }
  throw std::out_of_range("unknown exploit-kit family: " + name);
}

const BenignProfile& benign_profile() {
  static const BenignProfile kBenign{};
  return kBenign;
}

}  // namespace dm::synth

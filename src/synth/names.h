// Deterministic host-name and IP synthesis for generated traffic.
//
// Infection hosts follow exploit-kit naming habits (algorithmically
// generated labels, throwaway TLDs); benign hosts look like ordinary sites
// and CDNs.  IPs derive from a hash of the hostname so the same host always
// resolves identically within a generator run.
#pragma once

#include <string>

#include "net/packet.h"
#include "util/rng.h"

namespace dm::synth {

class HostNameGen {
 public:
  explicit HostNameGen(dm::util::Rng rng) : rng_(rng) {}

  /// EK-style domain: random consonant-vowel token + shady TLD
  /// ("qazotrel.top").
  std::string ek_domain();

  /// Compromised-CMS site: plausible small-business name + common TLD;
  /// URIs on it will carry WordPress-style paths.
  std::string compromised_site();

  /// Ordinary benign site ("riverbendcafe.com").
  std::string benign_site();

  /// CDN host for a site ("cdn3.riverbendcafe.com" or a shared CDN).
  std::string cdn_for(const std::string& site);

  /// Ad-network host.
  std::string ad_host();

  /// Bare IP-literal host (C&C callbacks use these — the paper observed
  /// post-download requests go to never-seen-before IP addresses).
  std::string fresh_ip_literal();

  /// Deterministic IPv4 for a hostname (stable across runs).
  static dm::net::Ipv4Address ip_for(const std::string& host);

  dm::util::Rng& rng() noexcept { return rng_; }

 private:
  std::string random_token(std::size_t min_len, std::size_t max_len);
  dm::util::Rng rng_;
};

}  // namespace dm::synth

#include "synth/dataset.h"

#include <algorithm>
#include <cmath>

namespace dm::synth {

GroundTruth generate_ground_truth(std::uint64_t seed, double scale) {
  GroundTruth gt;
  TraceGenerator gen(seed);

  for (const auto& family : exploit_kit_families()) {
    const auto count = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::llround(static_cast<double>(family.trace_count) * scale)));
    for (std::size_t i = 0; i < count; ++i) {
      gt.infections.push_back(gen.infection(family));
    }
  }

  const auto benign_count = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(
             static_cast<double>(benign_profile().trace_count) * scale)));
  for (std::size_t i = 0; i < benign_count; ++i) {
    gt.benign.push_back(gen.benign());
  }
  return gt;
}

GroundTruth generate_validation_set(std::uint64_t seed,
                                    std::size_t infection_count,
                                    std::size_t benign_count) {
  GroundTruth set;
  TraceGenerator gen(seed);

  const auto& families = exploit_kit_families();
  std::vector<double> weights;
  weights.reserve(families.size());
  for (const auto& family : families) {
    weights.push_back(static_cast<double>(family.trace_count));
  }
  for (std::size_t i = 0; i < infection_count; ++i) {
    const auto which = gen.rng().weighted_index(weights);
    set.infections.push_back(gen.infection(families[which]));
  }
  for (std::size_t i = 0; i < benign_count; ++i) {
    set.benign.push_back(gen.benign());
  }
  return set;
}

}  // namespace dm::synth

#include "synth/names.h"

#include <array>

#include "util/hash.h"

namespace dm::synth {
namespace {

constexpr std::array<std::string_view, 8> kShadyTlds = {
    "top", "xyz", "club", "info", "biz", "pw", "ru", "cc"};
constexpr std::array<std::string_view, 5> kCommonTlds = {
    "com", "net", "org", "io", "co"};
constexpr std::array<std::string_view, 12> kBenignWords = {
    "river", "maple", "summit", "harbor", "cedar",  "willow",
    "canyon", "meadow", "aurora", "copper", "lantern", "juniper"};
constexpr std::array<std::string_view, 12> kBenignSuffixes = {
    "cafe", "books", "travel", "fitness", "garden", "photo",
    "media", "design", "labs",  "market", "sports", "news"};
constexpr std::array<std::string_view, 6> kAdNetworks = {
    "adserve-metrics.com", "clickpath-net.com",  "bannerrotator.net",
    "trafficpulse.biz",    "popundernet.info",   "syndicated-ads.net"};

}  // namespace

std::string HostNameGen::random_token(std::size_t min_len, std::size_t max_len) {
  static constexpr std::string_view kConsonants = "bcdfghjklmnpqrstvwz";
  static constexpr std::string_view kVowels = "aeiou";
  const auto len = static_cast<std::size_t>(
      rng_.uniform_int(static_cast<std::int64_t>(min_len),
                       static_cast<std::int64_t>(max_len)));
  std::string token;
  for (std::size_t i = 0; i < len; ++i) {
    const auto& pool = (i % 2 == 0) ? kConsonants : kVowels;
    token += pool[static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
  }
  return token;
}

std::string HostNameGen::ek_domain() {
  std::string domain = random_token(6, 12);
  if (rng_.chance(0.3)) domain += std::to_string(rng_.uniform_int(10, 999));
  domain += '.';
  domain += kShadyTlds[rng_.weighted_index({4, 3, 2, 2, 1, 1, 2, 1})];
  return domain;
}

std::string HostNameGen::compromised_site() {
  std::string domain(kBenignWords[static_cast<std::size_t>(
      rng_.uniform_int(0, kBenignWords.size() - 1))]);
  domain += kBenignSuffixes[static_cast<std::size_t>(
      rng_.uniform_int(0, kBenignSuffixes.size() - 1))];
  domain += random_token(2, 4);
  domain += '.';
  domain += kCommonTlds[static_cast<std::size_t>(
      rng_.uniform_int(0, kCommonTlds.size() - 1))];
  return domain;
}

std::string HostNameGen::benign_site() {
  std::string domain(kBenignWords[static_cast<std::size_t>(
      rng_.uniform_int(0, kBenignWords.size() - 1))]);
  domain += kBenignSuffixes[static_cast<std::size_t>(
      rng_.uniform_int(0, kBenignSuffixes.size() - 1))];
  domain += '.';
  domain += kCommonTlds[static_cast<std::size_t>(
      rng_.uniform_int(0, kCommonTlds.size() - 1))];
  return domain;
}

std::string HostNameGen::cdn_for(const std::string& site) {
  // Deterministic per site: real pages pull assets from one or two stable
  // CDN hosts, not a fresh host per request (keeps benign WCG host counts
  // at Table I's benign scale).
  const std::uint64_t h = dm::util::fnv1a(site);
  if (h % 2 == 0) return "static1." + site;
  return "cdn" + std::to_string(h % 4 + 1) + ".edgecachenet.net";
}

std::string HostNameGen::ad_host() {
  return std::string(kAdNetworks[static_cast<std::size_t>(
      rng_.uniform_int(0, kAdNetworks.size() - 1))]);
}

std::string HostNameGen::fresh_ip_literal() {
  // Routable-looking, avoids private ranges.
  const auto a = rng_.uniform_int(11, 223);
  const auto b = rng_.uniform_int(0, 255);
  const auto c = rng_.uniform_int(0, 255);
  const auto d = rng_.uniform_int(1, 254);
  return std::to_string(a) + "." + std::to_string(b) + "." + std::to_string(c) +
         "." + std::to_string(d);
}

dm::net::Ipv4Address HostNameGen::ip_for(const std::string& host) {
  // IP-literal hosts resolve to themselves.
  if (const auto literal = dm::net::Ipv4Address::parse(host)) return *literal;
  const std::uint64_t h = dm::util::fnv1a(host);
  // Spread over public-looking space, avoid 0/127/private first octets.
  const auto a = static_cast<std::uint8_t>(11 + h % 200);
  const auto b = static_cast<std::uint8_t>((h >> 8) & 0xff);
  const auto c = static_cast<std::uint8_t>((h >> 16) & 0xff);
  const auto d = static_cast<std::uint8_t>(1 + ((h >> 24) & 0xff) % 253);
  return dm::net::Ipv4Address::from_octets(a, b, c, d);
}

}  // namespace dm::synth

// Ground-truth dataset assembly: the Table I corpus (980 benign + 770
// infection episodes across 10 family rows) and the disjoint validation set
// of Table V (7489 infections + 1500 benign).  A scale factor lets tests
// and quick runs shrink everything proportionally.
#pragma once

#include <cstddef>

#include "synth/generator.h"

namespace dm::synth {

struct GroundTruth {
  std::vector<Episode> infections;
  std::vector<Episode> benign;
};

/// Generates the Table I ground truth at `scale` (1.0 = paper-sized:
/// 980 benign, 770 infections).  Every family contributes at least one
/// episode regardless of scale.
GroundTruth generate_ground_truth(std::uint64_t seed, double scale = 1.0);

/// Generates the Table V validation set: infections sampled across families
/// proportionally to Table I, benign collected "the same way" as the
/// benign ground truth.
GroundTruth generate_validation_set(std::uint64_t seed,
                                    std::size_t infection_count,
                                    std::size_t benign_count);

}  // namespace dm::synth

#include "synth/pcap_export.h"

#include <algorithm>
#include <map>

#include "net/packet_builder.h"

namespace dm::synth {
namespace {

void render_headers(std::string& out, const dm::http::Headers& headers,
                    std::size_t body_size, bool force_content_length) {
  bool saw_content_length = false;
  for (const auto& h : headers.all()) {
    if (h.name == "Content-Length") {
      // Always serialize a length that matches the actual body.
      out += "Content-Length: " + std::to_string(body_size) + "\r\n";
      saw_content_length = true;
      continue;
    }
    out += h.name + ": " + h.value + "\r\n";
  }
  if (!saw_content_length && (force_content_length || body_size > 0)) {
    out += "Content-Length: " + std::to_string(body_size) + "\r\n";
  }
  out += "\r\n";
}

}  // namespace

std::string render_request(const dm::http::HttpRequest& request) {
  std::string out = request.method + " " + request.uri + " " +
                    (request.version.empty() ? "HTTP/1.1" : request.version) +
                    "\r\n";
  render_headers(out, request.headers, request.body.size(),
                 /*force_content_length=*/false);
  out += request.body;
  return out;
}

std::string render_response(const dm::http::HttpResponse& response) {
  std::string out = (response.version.empty() ? "HTTP/1.1" : response.version) +
                    " " + std::to_string(response.status_code) + " " +
                    (response.reason.empty() ? "OK" : response.reason) + "\r\n";
  // Responses always carry Content-Length so the parser never needs
  // close-delimited bodies on keep-alive connections.
  render_headers(out, response.headers, response.body.size(),
                 /*force_content_length=*/true);
  out += response.body;
  return out;
}

dm::net::PcapFile episode_to_pcap(const Episode& episode) {
  using dm::net::TcpConversationBuilder;

  // One TCP connection per (client, server-host) pair, keep-alive.
  struct Conversation {
    TcpConversationBuilder builder;
    std::uint64_t last_ts = 0;
  };
  std::map<std::string, Conversation> conversations;
  std::uint16_t next_port = 40200;

  for (const auto& txn : episode.transactions) {
    const std::string key = txn.client_host + "|" + txn.server_host;
    auto it = conversations.find(key);
    if (it == conversations.end()) {
      const auto client_ip =
          dm::net::Ipv4Address::parse(txn.client_host).value_or(
              dm::net::Ipv4Address::from_octets(10, 0, 0, 2));
      const auto server_ip =
          dm::net::Ipv4Address::parse(txn.server_ip).value_or(
              HostNameGen::ip_for(txn.server_host));
      Conversation conv{
          TcpConversationBuilder(client_ip, next_port++, server_ip,
                                 txn.server_port ? txn.server_port : 80),
          0};
      // Handshake completes just before the first request.
      const std::uint64_t hs =
          txn.request.ts_micros > 1500 ? txn.request.ts_micros - 1500 : 0;
      conv.builder.handshake(hs);
      it = conversations.emplace(key, std::move(conv)).first;
    }
    Conversation& conv = it->second;
    conv.builder.client_send(txn.request.ts_micros, render_request(txn.request));
    conv.last_ts = txn.request.ts_micros;
    if (txn.response) {
      conv.builder.server_send(txn.response->ts_micros,
                               render_response(*txn.response));
      conv.last_ts = std::max(conv.last_ts, txn.response->ts_micros);
    }
  }

  dm::net::PcapFile capture;
  for (auto& [key, conv] : conversations) {
    conv.builder.teardown(conv.last_ts + 1000);
    for (auto& pkt : conv.builder.take_packets()) {
      capture.packets.push_back(std::move(pkt));
    }
  }
  std::stable_sort(capture.packets.begin(), capture.packets.end(),
                   [](const dm::net::PcapPacket& a, const dm::net::PcapPacket& b) {
                     return a.ts_micros < b.ts_micros;
                   });
  return capture;
}

}  // namespace dm::synth

// Simulated multi-engine AV aggregator ("VirusTotal"), the comparison
// baseline of Table V and both case studies.
//
// The paper compares DynaMiner against VirusTotal's *coverage and lag*, not
// against engine internals, so the simulation models exactly those two
// things (see DESIGN.md "Substitutions"):
//
//  * Campaign visibility — exploit kits morph payloads per victim, so a
//    payload's hash is only ever known to AV engines if its campaign was
//    noticed.  Campaign visibility is sampled per serving host.
//  * Signature lag — an engine that will eventually detect a payload does
//    so only `lag` days after the payload first appeared; lags are
//    engine/payload specific (prior work the paper cites measured VT
//    lagging malware by 9.25 days on average; the forensic case study's
//    "detected 11 days earlier" rests on this mechanism).
//  * Occasional scan timeouts (Table V's footnote: 110 scans timed out).
//
// All randomness is hash-derived from (engine, digest), so repeated scans of
// the same payload are consistent, as with the real service.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

#include "synth/generator.h"

namespace dm::baseline {

struct VtOptions {
  int num_engines = 56;  // the paper's scans returned 56 engines
  /// Probability that a malicious campaign is visible to the AV ecosystem
  /// at all (calibrates Table V's 84.3% infection coverage).
  double campaign_visibility = 0.87;
  /// Probability that a single engine eventually writes a signature for a
  /// visible payload.
  double engine_coverage = 0.85;
  /// Mean signature lag in days (per engine-payload, exponential).
  double lag_mean_days = 9.25;
  /// Probability that a benign payload is "grey" (packed installer /
  /// torrent content) and collects a few detections.
  double benign_grey_prob = 0.3;
  /// Per-scan timeout probability (Table V footnote).
  double timeout_prob = 0.012;
  /// Detections needed to call a payload malicious ("conservative
  /// ensemble", §II).
  int detection_threshold = 3;
  std::uint64_t seed = 0x5eed;
};

struct ScanResult {
  int detections = 0;
  int total_engines = 0;
  bool timed_out = false;
  bool known = false;  // digest had been registered before the scan
};

class VirusTotalSim {
 public:
  explicit VirusTotalSim(VtOptions options = {});

  /// Registers a payload observation (the generator calls this for every
  /// downloaded artifact).  `first_seen_day` is days since epoch;
  /// `campaign_key` groups payloads of one campaign (serving host).
  void register_payload(const std::string& digest, bool malicious,
                        double first_seen_day, const std::string& campaign_key);

  /// Scans a digest as of `query_day`.  Unknown digests return 0 detections.
  ScanResult scan(const std::string& digest, double query_day) const;

  bool flags_malicious(const ScanResult& result) const noexcept {
    return !result.timed_out && result.detections >= options_.detection_threshold;
  }

  /// Convenience: registers every payload of an episode.
  void register_episode(const dm::synth::Episode& episode, double first_seen_day);

  /// Scans every payload of an episode; the episode is flagged if any
  /// payload is flagged.  Returns {flagged, any_timeout}.
  struct EpisodeVerdict {
    bool flagged = false;
    bool timed_out = false;
  };
  EpisodeVerdict scan_episode(const dm::synth::Episode& episode,
                              double query_day) const;

  const VtOptions& options() const noexcept { return options_; }

 private:
  struct PayloadEntry {
    bool malicious = false;
    double first_seen_day = 0.0;
    bool campaign_visible = false;
    bool grey = false;
  };

  VtOptions options_;
  std::unordered_map<std::string, PayloadEntry> payloads_;
  std::unordered_map<std::string, bool> campaign_visible_;
};

}  // namespace dm::baseline

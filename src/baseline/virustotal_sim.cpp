#include "baseline/virustotal_sim.h"

#include <algorithm>
#include <cmath>

#include "util/hash.h"

namespace dm::baseline {
namespace {

/// Deterministic uniform in [0,1) derived from a composite key, so that a
/// given (engine, payload) pair always rolls the same values.
double hash_uniform(std::uint64_t seed, std::string_view key, std::uint64_t salt) {
  std::uint64_t h = dm::util::fnv1a_append(seed ^ salt, key);
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

VirusTotalSim::VirusTotalSim(VtOptions options) : options_(options) {}

void VirusTotalSim::register_payload(const std::string& digest, bool malicious,
                                     double first_seen_day,
                                     const std::string& campaign_key) {
  auto [it, inserted] = payloads_.try_emplace(digest);
  if (!inserted) {
    // Re-observation: keep the earliest first-seen date.
    it->second.first_seen_day = std::min(it->second.first_seen_day, first_seen_day);
    return;
  }
  PayloadEntry& entry = it->second;
  entry.malicious = malicious;
  entry.first_seen_day = first_seen_day;

  auto [cit, cinserted] = campaign_visible_.try_emplace(campaign_key, false);
  if (cinserted) {
    cit->second = hash_uniform(options_.seed, campaign_key, 0xca11) <
                  options_.campaign_visibility;
  }
  entry.campaign_visible = cit->second;
  entry.grey = !malicious &&
               hash_uniform(options_.seed, digest, 0x97e1) < options_.benign_grey_prob;
}

ScanResult VirusTotalSim::scan(const std::string& digest, double query_day) const {
  ScanResult result;
  result.total_engines = options_.num_engines;
  result.timed_out =
      hash_uniform(options_.seed, digest,
                   0x71e0 ^ static_cast<std::uint64_t>(query_day)) <
      options_.timeout_prob;

  const auto it = payloads_.find(digest);
  if (it == payloads_.end()) return result;
  result.known = true;
  const PayloadEntry& entry = it->second;

  if (entry.malicious) {
    if (!entry.campaign_visible) return result;
    for (int engine = 0; engine < options_.num_engines; ++engine) {
      const auto salt = static_cast<std::uint64_t>(engine);
      if (hash_uniform(options_.seed, digest, 0xc0de ^ salt) >=
          options_.engine_coverage) {
        continue;  // this engine never writes a signature for this payload
      }
      // Exponential signature lag, engine/payload specific.
      const double u = hash_uniform(options_.seed, digest, 0x1a9 ^ (salt << 8));
      const double lag_days =
          -options_.lag_mean_days * std::log(1.0 - std::min(u, 1.0 - 1e-12));
      if (query_day >= entry.first_seen_day + lag_days) ++result.detections;
    }
  } else if (entry.grey) {
    // Grey content: a handful of heuristic engines flag it immediately
    // (bounded by how many engines this aggregator actually runs).
    result.detections = std::min(
        options_.num_engines,
        3 + static_cast<int>(hash_uniform(options_.seed, digest, 0x96) * 5.0));
  } else {
    // Clean content: rare single-engine false positives, below threshold.
    if (hash_uniform(options_.seed, digest, 0xfa15e) < 0.01) {
      result.detections = 1;
    }
  }
  return result;
}

void VirusTotalSim::register_episode(const dm::synth::Episode& episode,
                                     double first_seen_day) {
  for (const auto& payload : episode.meta.payloads) {
    register_payload(payload.digest, payload.malicious, first_seen_day,
                     payload.host);
  }
}

VirusTotalSim::EpisodeVerdict VirusTotalSim::scan_episode(
    const dm::synth::Episode& episode, double query_day) const {
  EpisodeVerdict verdict;
  for (const auto& payload : episode.meta.payloads) {
    const ScanResult result = scan(payload.digest, query_day);
    if (result.timed_out) verdict.timed_out = true;
    if (flags_malicious(result)) verdict.flagged = true;
  }
  return verdict;
}

}  // namespace dm::baseline

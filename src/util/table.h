// ASCII table printer used by the benchmark binaries to render the paper's
// tables (Table I, III, IV, V, VI) in a readable fixed-width layout.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace dm::util {

/// Accumulates rows of string cells and prints them column-aligned with a
/// header separator, e.g.
///
///   Family       PCAPs  Hosts(avg)
///   -----------  -----  ----------
///   Angler       253    6.1
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Numeric convenience; formats with the given precision.
  static std::string num(double v, int precision = 2);
  static std::string pct(double fraction, int precision = 1);

  void print(std::ostream& out) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dm::util

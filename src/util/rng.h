// Deterministic pseudo-random number generation for experiments.
//
// Every experiment in this repository takes an explicit seed so that tables
// and figures are reproducible run-to-run.  The generator is xoshiro256++,
// a small, fast, high-quality PRNG; it is NOT cryptographic and is not meant
// to be.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

namespace dm::util {

/// xoshiro256++ PRNG with convenience sampling helpers.
///
/// Satisfies the UniformRandomBitGenerator concept so it can also be used
/// with <random> distributions, though the built-in helpers below cover all
/// uses in this repository.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from a single seed value using
  /// splitmix64, as recommended by the xoshiro authors.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  /// Next raw 64-bit value.
  std::uint64_t next_u64() noexcept;
  result_type operator()() noexcept { return next_u64(); }

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

  /// Standard normal via Box-Muller (no cached spare; simple and stateless).
  double normal(double mean = 0.0, double stddev = 1.0) noexcept;

  /// Log-normal: exp(normal(mu, sigma)). Used for payload sizes and delays,
  /// which are heavy-tailed in real traffic.
  double lognormal(double mu, double sigma) noexcept;

  /// Exponential with given rate lambda (> 0). Used for inter-arrival times.
  double exponential(double lambda) noexcept;

  /// Geometric-like integer in [lo, hi]: lo + floor of a truncated
  /// exponential; concentrates near lo, occasionally reaches hi.  Used to
  /// model "min 2, max 231, avg ~6" style host-count distributions from the
  /// paper's Table I.
  std::int64_t skewed_int(std::int64_t lo, std::int64_t hi, double mean) noexcept;

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// All weights must be >= 0 and at least one > 0; otherwise returns 0.
  std::size_t weighted_index(std::span<const double> weights) noexcept;
  std::size_t weighted_index(std::initializer_list<double> weights) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Returns a child generator seeded from this one; use to give each
  /// sub-task an independent stream without coupling their consumption.
  ///
  /// NOTE: fork() chains — child i's seed depends on how many forks came
  /// before it, so forked sub-tasks can only reproduce when created in one
  /// fixed order on one thread.  Work that is fanned out concurrently should
  /// derive its streams with stream_seed() below instead.
  Rng fork() noexcept;

 private:
  std::uint64_t s_[4];
};

/// Counter-based stream derivation: the seed for sub-task `stream` of a job
/// seeded with `seed`, computed as seed ^ mix(stream) where mix is the
/// splitmix64 finalizer.  Unlike Rng::fork(), the result depends only on
/// (seed, stream) — not on how many streams were derived before it or on
/// which thread derives it — so N workers can each build Rng(stream_seed(s,
/// i)) in any order and the ensemble is bit-identical to a sequential loop.
/// This is the determinism contract the parallel ERF trainer rests on.
std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t stream) noexcept;

}  // namespace dm::util

// Minimal CSV writer/reader used to persist feature matrices and benchmark
// series.  Quoting follows RFC 4180: fields containing comma, quote or
// newline are quoted, quotes doubled.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace dm::util {

/// Streams rows to an ostream, handling quoting.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void write_row(const std::vector<std::string>& fields);

  /// Convenience: formats doubles with enough precision to round-trip.
  void write_row_numeric(const std::vector<double>& values);

  static std::string escape(std::string_view field);

 private:
  std::ostream& out_;
};

/// Parses CSV text into rows of fields (RFC 4180 quoting).
std::vector<std::vector<std::string>> parse_csv(std::string_view text);

}  // namespace dm::util

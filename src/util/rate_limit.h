// Rate-limited logging for quarantine sites.  A flood of malformed packets
// must never turn the logger (a mutex + stderr write per line) into the
// pipeline bottleneck, so every quarantine site gates its warning through
// one of these:
//
//   * EveryN   — fires on the 1st hit and every n-th after; lock-free, safe
//     to share across threads (shard workers log through a static gate).
//   * TokenBucket — classic rate/burst limiter over a caller-supplied clock
//     (trace time, never wall clock — library code stays deterministic).
//     Not thread-safe; give each thread its own bucket.
//
// log_every_n() combines an EveryN gate with the leveled logger and appends
// the suppressed-line count so operators can see the true fault volume.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/log.h"

namespace dm::util {

/// Fires on hit 1, n+1, 2n+1, ...  hits() and suppressed() expose the true
/// event volume for reports.
class EveryN {
 public:
  explicit EveryN(std::uint64_t n) noexcept : n_(n == 0 ? 1 : n) {}

  /// Counts one event; true when this event should be logged.
  bool should_fire() noexcept {
    return hits_.fetch_add(1, std::memory_order_relaxed) % n_ == 0;
  }

  std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t suppressed() const noexcept {
    const std::uint64_t h = hits();
    return h - (h + n_ - 1) / n_;  // events minus fired lines
  }

 private:
  const std::uint64_t n_;
  std::atomic<std::uint64_t> hits_{0};
};

/// Deterministic token bucket: `rate_per_s` tokens accrue per second of the
/// caller's clock, capped at `burst`.  try_acquire(now) spends one token.
/// Timestamps must be non-decreasing per bucket; not thread-safe.
class TokenBucket {
 public:
  TokenBucket(double rate_per_s, double burst) noexcept
      : rate_per_s_(rate_per_s > 0 ? rate_per_s : 1.0),
        burst_(burst >= 1 ? burst : 1.0),
        tokens_(burst_) {}

  bool try_acquire(std::uint64_t now_micros) noexcept {
    if (now_micros > last_micros_) {
      const double elapsed_s =
          static_cast<double>(now_micros - last_micros_) / 1e6;
      tokens_ = tokens_ + elapsed_s * rate_per_s_;
      if (tokens_ > burst_) tokens_ = burst_;
      last_micros_ = now_micros;
    }
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

 private:
  const double rate_per_s_;
  const double burst_;
  double tokens_;
  std::uint64_t last_micros_ = 0;
};

/// Logs every n-th event through `gate`, tagging the line with the event
/// ordinal so suppressed volume is visible ("... [event 4097, 1/128 logged]").
template <typename... Args>
void log_every_n(EveryN& gate, LogLevel level, Args&&... args) {
  const std::uint64_t ordinal = gate.hits() + 1;
  if (!gate.should_fire()) return;
  if (ordinal == 1) {
    detail::log_fmt(level, std::forward<Args>(args)...);
  } else {
    detail::log_fmt(level, std::forward<Args>(args)..., " [event ", ordinal,
                    "]");
  }
}

}  // namespace dm::util

#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace dm::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
  // Avoid the all-zero state, which xoshiro cannot escape.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() noexcept {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  if (lo >= hi) return lo;
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  // Debiased modulo via rejection sampling.
  const std::uint64_t limit = max() - max() % range;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * next_double();
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::normal(double mean, double stddev) noexcept {
  // Box-Muller; u1 in (0,1] to avoid log(0).
  const double u1 = 1.0 - next_double();
  const double u2 = next_double();
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * std::numbers::pi * u2);
  return mean + stddev * z;
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double lambda) noexcept {
  const double u = 1.0 - next_double();
  return -std::log(u) / lambda;
}

std::int64_t Rng::skewed_int(std::int64_t lo, std::int64_t hi, double mean) noexcept {
  if (hi <= lo) return lo;
  const double target = std::max(1e-9, mean - static_cast<double>(lo));
  const double x = exponential(1.0 / target);
  const auto v = lo + static_cast<std::int64_t>(x);
  return std::clamp(v, lo, hi);
}

std::size_t Rng::weighted_index(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += std::max(0.0, w);
  if (total <= 0.0 || weights.empty()) return 0;
  double r = uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= std::max(0.0, weights[i]);
    if (r < 0.0) return i;
  }
  return weights.size() - 1;
}

std::size_t Rng::weighted_index(std::initializer_list<double> weights) noexcept {
  return weighted_index(std::span<const double>(weights.begin(), weights.size()));
}

Rng Rng::fork() noexcept { return Rng(next_u64()); }

std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t stream) noexcept {
  // splitmix64 finalizer over the stream index; +1 keeps stream 0 from
  // mapping to mix(0)'s fixed point at the golden-ratio increment alone.
  std::uint64_t z = stream + 1;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return seed ^ z;
}

}  // namespace dm::util

#include "util/log.h"

#include <atomic>
#include <iostream>
#include <mutex>
#include <string>

namespace dm::util {
namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

constexpr std::string_view level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void log_line(LogLevel level, std::string_view message) {
  if (level < log_level()) return;
  // Format outside the lock, then emit the line as ONE write under it.
  // Concurrent loggers (the sharded runtime's dispatcher + workers) must
  // never interleave fragments of two lines; a single buffered insert under
  // the mutex guarantees that even if std::cerr's rdbuf was replaced (the
  // unit tests capture output that way).
  std::string line;
  line.reserve(4 + level_name(level).size() + message.size());
  line.push_back('[');
  line.append(level_name(level));
  line.append("] ");
  line.append(message);
  line.push_back('\n');
  const std::scoped_lock lock(g_mutex);
  std::cerr.write(line.data(), static_cast<std::streamsize>(line.size()));
  std::cerr.flush();
}

}  // namespace dm::util

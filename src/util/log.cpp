#include "util/log.h"

#include <atomic>
#include <iostream>
#include <mutex>

namespace dm::util {
namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

constexpr std::string_view level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void log_line(LogLevel level, std::string_view message) {
  if (level < log_level()) return;
  const std::scoped_lock lock(g_mutex);
  std::cerr << '[' << level_name(level) << "] " << message << '\n';
}

}  // namespace dm::util

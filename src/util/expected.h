// Structured decode errors for the fault-tolerant decode pipeline.
//
// The on-the-wire deployment (§V-B) parses adversarial traffic by
// definition: exploit kits ship deliberately broken headers and truncated
// bodies.  A malformed record/segment/message must therefore be *quarantined*
// — described by a DecodeError, counted in util::FaultStats — while the
// stream continues.  Exceptions remain reserved for file-level I/O and
// construction errors; the hot decode path reports through these types.
//
// DecodeError pinpoints a fault as (code, layer, byte offset, reason);
// Expected<T> is the value-or-DecodeError return type for decode steps that
// cannot produce a partial result.
#pragma once

#include <cassert>
#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace dm::util {

/// Pipeline layer a fault was detected in.
enum class DecodeLayer {
  kPcap,     // capture-file record iteration
  kFrame,    // Ethernet/IPv4/TCP header parsing
  kTcp,      // stream reassembly
  kHttp,     // HTTP/1.x message parsing
  kRuntime,  // detection engine / dispatch
};

std::string_view decode_layer_name(DecodeLayer layer) noexcept;

/// Every distinct fault class the pipeline can quarantine.  Keep in sync
/// with decode_error_name(); kCount_ is a sentinel for FaultStats arrays.
enum class DecodeErrorCode {
  // pcap layer
  kPcapTruncatedHeader,
  kPcapBadMagic,
  kPcapTruncatedRecord,
  kPcapOversizedRecord,
  // frame layer
  kFrameUndecodable,
  // tcp layer
  kTcpPendingOverflow,
  kTcpStreamOverflow,
  // http layer
  kHttpBadRequestLine,
  kHttpBadStatusLine,
  kHttpBadContentLength,
  kHttpBadChunk,
  kHttpTruncatedMessage,
  // runtime layer
  kDetectorFailure,
  kOverloadShed,
  kObserveAfterFinish,
  kCount_,
};

inline constexpr std::size_t kDecodeErrorCodeCount =
    static_cast<std::size_t>(DecodeErrorCode::kCount_);

std::string_view decode_error_name(DecodeErrorCode code) noexcept;

/// One quarantined fault: what went wrong, where in the pipeline, at which
/// byte offset of the layer's input, and a short human-readable reason.
struct DecodeError {
  DecodeErrorCode code = DecodeErrorCode::kCount_;
  DecodeLayer layer = DecodeLayer::kPcap;
  std::size_t offset = 0;
  std::string reason;

  /// "pcap/truncated-record @1534: record needs 96 bytes, 12 left"
  std::string to_string() const;
};

/// Minimal value-or-error.  BasicExpected is the generic form: any error
/// payload E works (the ml layer uses it with its own LoadError for model
/// deserialization).  The decode pipeline's Expected<T> alias below fixes
/// E = DecodeError and is what every decoder returns when a fault means no
/// usable value (e.g. an unusable capture header).  Steps that can salvage
/// a prefix return the partial value plus a DecodeError list instead.
template <typename T, typename E>
class BasicExpected {
 public:
  BasicExpected(T value) : v_(std::in_place_index<0>, std::move(value)) {}
  BasicExpected(E error) : v_(std::in_place_index<1>, std::move(error)) {}

  bool has_value() const noexcept { return v_.index() == 0; }
  explicit operator bool() const noexcept { return has_value(); }

  T& value() noexcept {
    assert(has_value());
    return std::get<0>(v_);
  }
  const T& value() const noexcept {
    assert(has_value());
    return std::get<0>(v_);
  }
  T& operator*() noexcept { return value(); }
  const T& operator*() const noexcept { return value(); }
  T* operator->() noexcept { return &value(); }
  const T* operator->() const noexcept { return &value(); }

  const E& error() const noexcept {
    assert(!has_value());
    return std::get<1>(v_);
  }

  T value_or(T fallback) const {
    return has_value() ? std::get<0>(v_) : std::move(fallback);
  }

 private:
  std::variant<T, E> v_;
};

template <typename T>
using Expected = BasicExpected<T, DecodeError>;

}  // namespace dm::util

// Tiny leveled logger.  Library code logs sparingly (warnings about malformed
// input); examples and benchmarks use Info for progress.  Output goes to
// stderr so benchmark tables on stdout stay clean.
#pragma once

#include <sstream>
#include <string_view>

namespace dm::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level (default kWarn).
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emits a single line "[LEVEL] message" to stderr if `level` passes the
/// global threshold.
void log_line(LogLevel level, std::string_view message);

namespace detail {
template <typename... Args>
void log_fmt(LogLevel level, Args&&... args) {
  if (level < log_level()) return;
  std::ostringstream oss;
  (oss << ... << args);
  log_line(level, oss.str());
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  detail::log_fmt(LogLevel::kDebug, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(Args&&... args) {
  detail::log_fmt(LogLevel::kInfo, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(Args&&... args) {
  detail::log_fmt(LogLevel::kWarn, std::forward<Args>(args)...);
}
template <typename... Args>
void log_error(Args&&... args) {
  detail::log_fmt(LogLevel::kError, std::forward<Args>(args)...);
}

}  // namespace dm::util

#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dm::util {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) noexcept { return std::sqrt(variance(xs)); }

double min_of(std::span<const double> xs) noexcept {
  return xs.empty() ? 0.0 : *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) noexcept {
  return xs.empty() ? 0.0 : *std::max_element(xs.begin(), xs.end());
}

double percentile(std::vector<double> xs, double p) noexcept {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

double median(std::vector<double> xs) noexcept { return percentile(std::move(xs), 50.0); }

void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_);
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0 || !(lo < hi)) throw std::invalid_argument("Histogram: bad range/bins");
}

void Histogram::add(double x) noexcept {
  const double t = (x - lo_) / (hi_ - lo_);
  auto i = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  i = std::clamp<std::ptrdiff_t>(i, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(i)];
  ++total_;
}

double Histogram::bin_low(std::size_t i) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bin_high(std::size_t i) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(i + 1) / static_cast<double>(counts_.size());
}

double Histogram::fraction(std::size_t i) const {
  return total_ == 0 ? 0.0
                     : static_cast<double>(counts_.at(i)) / static_cast<double>(total_);
}

}  // namespace dm::util

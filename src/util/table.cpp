#include "util/table.h"

#include <algorithm>
#include <cstdio>

namespace dm::util {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TextTable::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : header_[c];
      out << cell;
      if (c + 1 < header_.size()) {
        out << std::string(widths[c] - cell.size() + 2, ' ');
      }
    }
    out << '\n';
  };
  print_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << std::string(widths[c], '-');
    if (c + 1 < header_.size()) out << "  ";
  }
  out << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace dm::util

// String utilities used by the HTTP parser, redirect miner and report
// printers.  All functions are allocation-conscious: views in, owned strings
// out only where ownership is needed.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace dm::util {

/// ASCII lower-case copy (HTTP header names / hostnames are case-insensitive).
std::string to_lower(std::string_view s);

/// Trim ASCII whitespace from both ends.
std::string_view trim(std::string_view s) noexcept;

/// Split on a single character; keeps empty fields.
std::vector<std::string_view> split(std::string_view s, char sep);

/// Split on a character, dropping empty fields and trimming each piece.
std::vector<std::string_view> split_trimmed(std::string_view s, char sep);

/// True if `s` starts with / ends with the given prefix/suffix,
/// case-insensitively (ASCII).
bool istarts_with(std::string_view s, std::string_view prefix) noexcept;
bool iends_with(std::string_view s, std::string_view suffix) noexcept;
bool iequals(std::string_view a, std::string_view b) noexcept;

/// Case-insensitive substring search; npos when absent.
std::size_t ifind(std::string_view haystack, std::string_view needle) noexcept;

/// Joins pieces with a separator.
std::string join(const std::vector<std::string>& pieces, std::string_view sep);

/// Parses a non-negative decimal integer; returns fallback on any error.
long parse_long(std::string_view s, long fallback = -1) noexcept;

/// Percent-decodes a URI component (invalid escapes pass through verbatim).
std::string url_decode(std::string_view s);

/// Extracts the registrable-ish domain: last two labels of a hostname
/// ("a.b.example.com" -> "example.com").  This repository does not ship a
/// public-suffix list; two labels is the approximation the paper's
/// cross-domain redirect counting needs.
std::string_view registrable_domain(std::string_view host) noexcept;

/// Extracts the top-level domain ("example.com" -> "com"); empty for IPs.
std::string_view top_level_domain(std::string_view host) noexcept;

/// True if the host string looks like a dotted-quad IPv4 literal.
bool looks_like_ipv4(std::string_view host) noexcept;

/// Lower-cased file extension of a URI path, without the dot ("a/b/x.EXE?q"
/// -> "exe"); empty when none.
std::string uri_extension(std::string_view uri);

/// Strips query and fragment from a URI, returning just the path part.
std::string_view uri_path(std::string_view uri) noexcept;

/// Decodes standard base64; returns empty on malformed input.
std::string base64_decode(std::string_view s);

}  // namespace dm::util

// Small descriptive-statistics helpers shared by the analytics, the synthetic
// trace generator calibration, and the benchmark report printers.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dm::util {

/// Mean of a sample; 0 for an empty sample.
double mean(std::span<const double> xs) noexcept;

/// Population variance; 0 for samples of size < 2.
double variance(std::span<const double> xs) noexcept;

/// Population standard deviation.
double stddev(std::span<const double> xs) noexcept;

/// Sample minimum / maximum; 0 for empty samples.
double min_of(std::span<const double> xs) noexcept;
double max_of(std::span<const double> xs) noexcept;

/// Linear-interpolated percentile, p in [0, 100]. 0 for empty samples.
double percentile(std::vector<double> xs, double p) noexcept;

/// Median (50th percentile).
double median(std::vector<double> xs) noexcept;

/// Incremental mean/variance accumulator (Welford). Useful when streaming
/// per-WCG measurements through the benchmark harness.
class Accumulator {
 public:
  void add(double x) noexcept;
  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Fixed-width histogram over [lo, hi) with `bins` buckets; values outside
/// the range are clamped into the first/last bucket.  Used by the figure
/// benchmarks to print distribution shapes (Figures 7-9).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  std::size_t total() const noexcept { return total_; }
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const noexcept { return counts_.size(); }
  double bin_low(std::size_t i) const noexcept;
  double bin_high(std::size_t i) const noexcept;
  /// Fraction of samples in bucket i; 0 when empty.
  double fraction(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace dm::util

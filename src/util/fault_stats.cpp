#include "util/fault_stats.h"

namespace dm::util {
namespace {

DecodeLayer layer_of(DecodeErrorCode code) noexcept {
  switch (code) {
    case DecodeErrorCode::kPcapTruncatedHeader:
    case DecodeErrorCode::kPcapBadMagic:
    case DecodeErrorCode::kPcapTruncatedRecord:
    case DecodeErrorCode::kPcapOversizedRecord:
      return DecodeLayer::kPcap;
    case DecodeErrorCode::kFrameUndecodable:
      return DecodeLayer::kFrame;
    case DecodeErrorCode::kTcpPendingOverflow:
    case DecodeErrorCode::kTcpStreamOverflow:
      return DecodeLayer::kTcp;
    case DecodeErrorCode::kHttpBadRequestLine:
    case DecodeErrorCode::kHttpBadStatusLine:
    case DecodeErrorCode::kHttpBadContentLength:
    case DecodeErrorCode::kHttpBadChunk:
    case DecodeErrorCode::kHttpTruncatedMessage:
      return DecodeLayer::kHttp;
    case DecodeErrorCode::kDetectorFailure:
    case DecodeErrorCode::kOverloadShed:
    case DecodeErrorCode::kObserveAfterFinish:
    case DecodeErrorCode::kCount_:
      return DecodeLayer::kRuntime;
  }
  return DecodeLayer::kRuntime;
}

}  // namespace

std::uint64_t FaultStatsSnapshot::total() const noexcept {
  std::uint64_t sum = 0;
  for (const auto c : counts) sum += c;
  return sum;
}

FaultStatsSnapshot& FaultStatsSnapshot::operator+=(
    const FaultStatsSnapshot& other) noexcept {
  for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  return *this;
}

std::string FaultStatsSnapshot::summary() const {
  std::string out;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const auto code = static_cast<DecodeErrorCode>(i);
    if (!out.empty()) out.push_back(' ');
    out.append(decode_layer_name(layer_of(code)));
    out.push_back('/');
    out.append(decode_error_name(code));
    out.push_back('=');
    out.append(std::to_string(counts[i]));
  }
  return out.empty() ? "none" : out;
}

std::uint64_t FaultStats::total() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& c : counts_) sum += c.load(std::memory_order_relaxed);
  return sum;
}

FaultStatsSnapshot FaultStats::snapshot() const {
  FaultStatsSnapshot snap;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    snap.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return snap;
}

void FaultStats::reset() noexcept {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
}

}  // namespace dm::util

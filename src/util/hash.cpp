#include "util/hash.h"

namespace dm::util {
namespace {
constexpr std::uint64_t kOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kPrime = 0x100000001b3ULL;
}  // namespace

std::uint64_t fnv1a(std::string_view data) noexcept {
  return fnv1a_append(kOffset, data);
}

std::uint64_t fnv1a_append(std::uint64_t h, std::string_view data) noexcept {
  for (unsigned char c : data) {
    h ^= c;
    h *= kPrime;
  }
  return h;
}

std::string digest_hex(std::string_view data) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(40);
  for (std::uint64_t salt = 1; salt <= 5; ++salt) {
    std::uint64_t h = fnv1a_append(kOffset ^ (salt * 0x9e3779b97f4a7c15ULL), data);
    // 32 bits -> 8 hex chars per pass; 5 passes -> 40 chars (160 bits).
    const auto word = static_cast<std::uint32_t>(h ^ (h >> 32));
    for (int shift = 28; shift >= 0; shift -= 4) {
      out += kHex[(word >> shift) & 0xf];
    }
  }
  return out;
}

}  // namespace dm::util

#include "util/hash.h"

namespace dm::util {
namespace {
constexpr std::uint64_t kOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kPrime = 0x100000001b3ULL;
}  // namespace

std::uint64_t fnv1a(std::string_view data) noexcept {
  return fnv1a_append(kOffset, data);
}

std::uint64_t fnv1a_append(std::uint64_t h, std::string_view data) noexcept {
  for (unsigned char c : data) {
    h ^= c;
    h *= kPrime;
  }
  return h;
}

namespace {

// Table-driven CRC-32 (reflected, polynomial 0xEDB88320).  The table is
// built once on first use; generation is branch-free and deterministic.
const std::array<std::uint32_t, 256>& crc32_table() noexcept {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t crc32_init() noexcept { return 0xFFFFFFFFu; }

std::uint32_t crc32_update(std::uint32_t crc, std::string_view data) noexcept {
  const auto& table = crc32_table();
  for (unsigned char c : data) {
    crc = table[(crc ^ c) & 0xFFu] ^ (crc >> 8);
  }
  return crc;
}

std::uint32_t crc32_final(std::uint32_t crc) noexcept { return crc ^ 0xFFFFFFFFu; }

std::uint32_t crc32(std::string_view data) noexcept {
  return crc32_final(crc32_update(crc32_init(), data));
}

std::string digest_hex(std::string_view data) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(40);
  for (std::uint64_t salt = 1; salt <= 5; ++salt) {
    std::uint64_t h = fnv1a_append(kOffset ^ (salt * 0x9e3779b97f4a7c15ULL), data);
    // 32 bits -> 8 hex chars per pass; 5 passes -> 40 chars (160 bits).
    const auto word = static_cast<std::uint32_t>(h ^ (h >> 32));
    for (int shift = 28; shift >= 0; shift -= 4) {
      out += kHex[(word >> shift) & 0xf];
    }
  }
  return out;
}

}  // namespace dm::util

// Hashing utilities: FNV-1a for hash-map style keys and a 160-bit digest used
// as a stand-in for payload content hashes when talking to the simulated
// VirusTotal baseline.  Neither is cryptographic; the baseline only needs
// collision-free-in-practice identifiers for synthetic payloads.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace dm::util {

/// 64-bit FNV-1a.
std::uint64_t fnv1a(std::string_view data) noexcept;

/// Mixes an existing hash with more data (for composite keys).
std::uint64_t fnv1a_append(std::uint64_t h, std::string_view data) noexcept;

/// A 160-bit digest rendered as 40 hex chars.  Built from five independently
/// salted FNV-1a passes; stable across platforms and runs.
std::string digest_hex(std::string_view data);

}  // namespace dm::util

// Hashing utilities: FNV-1a for hash-map style keys, a 160-bit digest used
// as a stand-in for payload content hashes when talking to the simulated
// VirusTotal baseline, and CRC32 for on-disk artifact integrity footers.
// None is cryptographic; the baseline only needs collision-free-in-practice
// identifiers for synthetic payloads, and the model store only needs to
// detect torn writes and bit rot, not adversarial tampering.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace dm::util {

/// 64-bit FNV-1a.
std::uint64_t fnv1a(std::string_view data) noexcept;

/// Mixes an existing hash with more data (for composite keys).
std::uint64_t fnv1a_append(std::uint64_t h, std::string_view data) noexcept;

/// A 160-bit digest rendered as 40 hex chars.  Built from five independently
/// salted FNV-1a passes; stable across platforms and runs.
std::string digest_hex(std::string_view data);

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the integrity
/// footer of the serve::ModelStore artifact format.  Detects every single-bit
/// flip and every truncation of the guarded payload.
std::uint32_t crc32(std::string_view data) noexcept;

/// Incremental variant: feed chunks through `crc` (start from crc32_init(),
/// finish with crc32_final()).
std::uint32_t crc32_init() noexcept;
std::uint32_t crc32_update(std::uint32_t crc, std::string_view data) noexcept;
std::uint32_t crc32_final(std::uint32_t crc) noexcept;

}  // namespace dm::util

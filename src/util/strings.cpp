#include "util/strings.h"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace dm::util {
namespace {

char ascii_lower(char c) noexcept {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

bool is_space(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' || c == '\v';
}

int hex_val(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), ascii_lower);
  return out;
}

std::string_view trim(std::string_view s) noexcept {
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_trimmed(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  for (auto piece : split(s, sep)) {
    piece = trim(piece);
    if (!piece.empty()) out.push_back(piece);
  }
  return out;
}

bool istarts_with(std::string_view s, std::string_view prefix) noexcept {
  if (s.size() < prefix.size()) return false;
  return iequals(s.substr(0, prefix.size()), prefix);
}

bool iends_with(std::string_view s, std::string_view suffix) noexcept {
  if (s.size() < suffix.size()) return false;
  return iequals(s.substr(s.size() - suffix.size()), suffix);
}

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (ascii_lower(a[i]) != ascii_lower(b[i])) return false;
  }
  return true;
}

std::size_t ifind(std::string_view haystack, std::string_view needle) noexcept {
  if (needle.empty()) return 0;
  if (haystack.size() < needle.size()) return std::string_view::npos;
  for (std::size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    if (iequals(haystack.substr(i, needle.size()), needle)) return i;
  }
  return std::string_view::npos;
}

std::string join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i) out += sep;
    out += pieces[i];
  }
  return out;
}

long parse_long(std::string_view s, long fallback) noexcept {
  s = trim(s);
  long value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return fallback;
  return value;
}

std::string url_decode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      const int hi = hex_val(s[i + 1]);
      const int lo = hex_val(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out += static_cast<char>(hi * 16 + lo);
        i += 2;
        continue;
      }
    }
    out += s[i] == '+' ? ' ' : s[i];
  }
  return out;
}

std::string_view registrable_domain(std::string_view host) noexcept {
  if (looks_like_ipv4(host)) return host;
  const auto last = host.rfind('.');
  if (last == std::string_view::npos || last == 0) return host;
  const auto second = host.rfind('.', last - 1);
  if (second == std::string_view::npos) return host;
  return host.substr(second + 1);
}

std::string_view top_level_domain(std::string_view host) noexcept {
  if (looks_like_ipv4(host)) return {};
  const auto last = host.rfind('.');
  if (last == std::string_view::npos || last + 1 >= host.size()) return {};
  return host.substr(last + 1);
}

bool looks_like_ipv4(std::string_view host) noexcept {
  int dots = 0;
  int digits_in_octet = 0;
  for (char c : host) {
    if (c == '.') {
      if (digits_in_octet == 0) return false;
      ++dots;
      digits_in_octet = 0;
    } else if (c >= '0' && c <= '9') {
      if (++digits_in_octet > 3) return false;
    } else {
      return false;
    }
  }
  return dots == 3 && digits_in_octet > 0;
}

std::string uri_extension(std::string_view uri) {
  const auto path = uri_path(uri);
  const auto slash = path.rfind('/');
  const auto file = slash == std::string_view::npos ? path : path.substr(slash + 1);
  const auto dot = file.rfind('.');
  if (dot == std::string_view::npos || dot + 1 >= file.size()) return {};
  return to_lower(file.substr(dot + 1));
}

std::string_view uri_path(std::string_view uri) noexcept {
  const auto q = uri.find_first_of("?#");
  return q == std::string_view::npos ? uri : uri.substr(0, q);
}

std::string base64_decode(std::string_view s) {
  auto value_of = [](char c) -> int {
    if (c >= 'A' && c <= 'Z') return c - 'A';
    if (c >= 'a' && c <= 'z') return c - 'a' + 26;
    if (c >= '0' && c <= '9') return c - '0' + 52;
    if (c == '+') return 62;
    if (c == '/') return 63;
    return -1;
  };
  std::string out;
  int buffer = 0;
  int bits = 0;
  for (char c : s) {
    if (c == '=' || c == '\n' || c == '\r') continue;
    const int v = value_of(c);
    if (v < 0) return {};
    buffer = (buffer << 6) | v;
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out += static_cast<char>((buffer >> bits) & 0xff);
    }
  }
  return out;
}

}  // namespace dm::util

// Quarantine accounting for the fault-tolerant decode pipeline: one atomic
// counter per DecodeErrorCode.  A single FaultStats can be shared by every
// stage of one ingest run (pcap decode, frame parse, TCP reassembly, HTTP
// parse, runtime) and by concurrent workers — record() is lock-free.
// Reports read a plain-value FaultStatsSnapshot.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "util/expected.h"

namespace dm::util {

/// Plain-value copy of the counters at one instant; summable across runs.
struct FaultStatsSnapshot {
  std::array<std::uint64_t, kDecodeErrorCodeCount> counts{};

  std::uint64_t count(DecodeErrorCode code) const noexcept {
    return counts[static_cast<std::size_t>(code)];
  }
  std::uint64_t total() const noexcept;
  FaultStatsSnapshot& operator+=(const FaultStatsSnapshot& other) noexcept;

  /// "pcap/truncated-record=3 http/bad-chunk=1", or "none".
  std::string summary() const;
};

/// Thread-safe live counters.
class FaultStats {
 public:
  void record(DecodeErrorCode code) noexcept {
    counts_[static_cast<std::size_t>(code)].fetch_add(
        1, std::memory_order_relaxed);
  }
  void record(const DecodeError& error) noexcept { record(error.code); }

  std::uint64_t count(DecodeErrorCode code) const noexcept {
    return counts_[static_cast<std::size_t>(code)].load(
        std::memory_order_relaxed);
  }
  std::uint64_t total() const noexcept;

  FaultStatsSnapshot snapshot() const;
  void reset() noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kDecodeErrorCodeCount> counts_{};
};

}  // namespace dm::util

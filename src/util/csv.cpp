#include "util/csv.h"

#include <charconv>
#include <cstdio>

namespace dm::util {

std::string CsvWriter::escape(std::string_view field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row_numeric(const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  char buf[64];
  for (double v : values) {
    const int n = std::snprintf(buf, sizeof buf, "%.10g", v);
    fields.emplace_back(buf, static_cast<std::size_t>(n));
  }
  write_row(fields);
}

std::vector<std::vector<std::string>> parse_csv(std::string_view text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool row_has_content = false;

  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
  };
  auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
    row_has_content = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        row_has_content = true;
        break;
      case ',':
        end_field();
        row_has_content = true;
        break;
      case '\r':
        break;
      case '\n':
        end_row();
        break;
      default:
        field += c;
        row_has_content = true;
        break;
    }
  }
  if (row_has_content || !field.empty() || !row.empty()) end_row();
  return rows;
}

}  // namespace dm::util

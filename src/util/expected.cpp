#include "util/expected.h"

namespace dm::util {

std::string_view decode_layer_name(DecodeLayer layer) noexcept {
  switch (layer) {
    case DecodeLayer::kPcap: return "pcap";
    case DecodeLayer::kFrame: return "frame";
    case DecodeLayer::kTcp: return "tcp";
    case DecodeLayer::kHttp: return "http";
    case DecodeLayer::kRuntime: return "runtime";
  }
  return "?";
}

std::string_view decode_error_name(DecodeErrorCode code) noexcept {
  switch (code) {
    case DecodeErrorCode::kPcapTruncatedHeader: return "truncated-header";
    case DecodeErrorCode::kPcapBadMagic: return "bad-magic";
    case DecodeErrorCode::kPcapTruncatedRecord: return "truncated-record";
    case DecodeErrorCode::kPcapOversizedRecord: return "oversized-record";
    case DecodeErrorCode::kFrameUndecodable: return "undecodable-frame";
    case DecodeErrorCode::kTcpPendingOverflow: return "pending-overflow";
    case DecodeErrorCode::kTcpStreamOverflow: return "stream-overflow";
    case DecodeErrorCode::kHttpBadRequestLine: return "bad-request-line";
    case DecodeErrorCode::kHttpBadStatusLine: return "bad-status-line";
    case DecodeErrorCode::kHttpBadContentLength: return "bad-content-length";
    case DecodeErrorCode::kHttpBadChunk: return "bad-chunk";
    case DecodeErrorCode::kHttpTruncatedMessage: return "truncated-message";
    case DecodeErrorCode::kDetectorFailure: return "detector-failure";
    case DecodeErrorCode::kOverloadShed: return "overload-shed";
    case DecodeErrorCode::kObserveAfterFinish: return "observe-after-finish";
    case DecodeErrorCode::kCount_: break;
  }
  return "?";
}

std::string DecodeError::to_string() const {
  std::string out;
  out.append(decode_layer_name(layer));
  out.push_back('/');
  out.append(decode_error_name(code));
  out.append(" @");
  out.append(std::to_string(offset));
  if (!reason.empty()) {
    out.append(": ");
    out.append(reason);
  }
  return out;
}

}  // namespace dm::util

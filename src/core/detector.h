// Offline (forensic) detection: score a fully-built WCG with a trained ERF.
#pragma once

#include "core/features.h"
#include "ml/random_forest.h"

namespace dm::core {

/// Wraps a trained forest with the feature extractor and a decision
/// threshold; the unit the on-the-wire engine queries after each WCG update.
class Detector {
 public:
  Detector(dm::ml::RandomForest forest, FeatureExtractorOptions options = {},
           double threshold = 0.5);

  /// Ensemble infection score in [0, 1].
  double score(const Wcg& wcg) const;

  /// Hard verdict at the configured threshold.
  bool is_infection(const Wcg& wcg) const;

  double threshold() const noexcept { return threshold_; }
  const dm::ml::RandomForest& forest() const noexcept { return forest_; }

 private:
  dm::ml::RandomForest forest_;
  FeatureExtractorOptions options_;
  double threshold_;
};

}  // namespace dm::core

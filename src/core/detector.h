// Offline (forensic) detection: score a fully-built WCG with a trained ERF.
#pragma once

#include "core/features.h"
#include "ml/flat_forest.h"
#include "ml/random_forest.h"

namespace dm::core {

/// Wraps a trained forest with the feature extractor and a decision
/// threshold; the unit the on-the-wire engine queries after each WCG update.
///
/// Inference runs through a FlatForest compiled from the trained ensemble
/// at construction (bit-identical scores, cache-resident layout); the
/// pointer-based RandomForest is kept as the training/serialization
/// representation and stays reachable via forest().
class Detector {
 public:
  Detector(dm::ml::RandomForest forest, FeatureExtractorOptions options = {},
           double threshold = 0.5);

  /// Ensemble infection score in [0, 1].
  double score(const Wcg& wcg) const;

  /// Cache-aware variant for the incremental hot path: graph metrics are
  /// reused from `cache` when the WCG topology is unchanged.  `cache` may
  /// be null.  Output is identical to score(wcg) in all cases.
  double score(const Wcg& wcg, FeatureCache* cache) const;

  /// Reference path: uncached extraction + the pointer-based forest.  Used
  /// by the equivalence tests and the A/B bench; same result as score().
  double score_from_scratch(const Wcg& wcg) const;

  /// Hard verdict at the configured threshold.
  bool is_infection(const Wcg& wcg) const;

  double threshold() const noexcept { return threshold_; }
  const dm::ml::RandomForest& forest() const noexcept { return forest_; }
  const dm::ml::FlatForest& flat_forest() const noexcept { return flat_; }

 private:
  dm::ml::RandomForest forest_;
  dm::ml::FlatForest flat_;
  FeatureExtractorOptions options_;
  double threshold_;
};

}  // namespace dm::core

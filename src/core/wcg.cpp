#include "core/wcg.h"

namespace dm::core {

std::string_view node_type_name(NodeType type) noexcept {
  switch (type) {
    case NodeType::kVictim: return "victim";
    case NodeType::kRemote: return "remote";
    case NodeType::kMalicious: return "malicious";
    case NodeType::kIntermediary: return "intermediary";
    case NodeType::kOrigin: return "origin";
  }
  return "?";
}

std::string_view edge_kind_name(EdgeKind kind) noexcept {
  switch (kind) {
    case EdgeKind::kRequest: return "req";
    case EdgeKind::kResponse: return "res";
    case EdgeKind::kRedirect: return "redirect";
  }
  return "?";
}

dm::graph::NodeId Wcg::add_host(const std::string& host) {
  if (const auto it = host_index_.find(host); it != host_index_.end()) {
    return it->second;
  }
  const auto id = graph_.add_node();
  WcgNode node;
  node.host = host;
  nodes_.push_back(std::move(node));
  host_index_.emplace(host, id);
  ++topology_version_;
  return id;
}

dm::graph::EdgeId Wcg::add_edge(dm::graph::NodeId src, dm::graph::NodeId dst,
                                WcgEdge attributes) {
  const auto id = graph_.add_edge(src, dst);
  edges_.push_back(std::move(attributes));
  ++topology_version_;
  return id;
}

bool Wcg::add_uri(dm::graph::NodeId id, const std::string& uri) {
  if (!nodes_.at(id).uris.insert(uri).second) return false;
  ++total_uris_;
  total_uri_length_ += uri.size();
  return true;
}

dm::graph::NodeId Wcg::find_host(const std::string& host) const noexcept {
  const auto it = host_index_.find(host);
  return it == host_index_.end() ? dm::graph::kInvalidNode : it->second;
}

}  // namespace dm::core

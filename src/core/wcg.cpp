#include "core/wcg.h"

namespace dm::core {

std::string_view node_type_name(NodeType type) noexcept {
  switch (type) {
    case NodeType::kVictim: return "victim";
    case NodeType::kRemote: return "remote";
    case NodeType::kMalicious: return "malicious";
    case NodeType::kIntermediary: return "intermediary";
    case NodeType::kOrigin: return "origin";
  }
  return "?";
}

std::string_view edge_kind_name(EdgeKind kind) noexcept {
  switch (kind) {
    case EdgeKind::kRequest: return "req";
    case EdgeKind::kResponse: return "res";
    case EdgeKind::kRedirect: return "redirect";
  }
  return "?";
}

dm::graph::NodeId Wcg::add_host(const std::string& host) {
  if (const auto it = host_index_.find(host); it != host_index_.end()) {
    return it->second;
  }
  const auto id = graph_.add_node();
  WcgNode node;
  node.host = host;
  nodes_.push_back(std::move(node));
  host_index_.emplace(host, id);
  return id;
}

dm::graph::EdgeId Wcg::add_edge(dm::graph::NodeId src, dm::graph::NodeId dst,
                                WcgEdge attributes) {
  const auto id = graph_.add_edge(src, dst);
  edges_.push_back(std::move(attributes));
  return id;
}

dm::graph::NodeId Wcg::find_host(const std::string& host) const noexcept {
  const auto it = host_index_.find(host);
  return it == host_index_.end() ? dm::graph::kInvalidNode : it->second;
}

std::size_t Wcg::total_unique_uris() const noexcept {
  std::size_t total = 0;
  for (const auto& node : nodes_) total += node.uris.size();
  return total;
}

}  // namespace dm::core

// Stage-1 training glue: WCG collections -> feature Dataset -> the paper's
// ERF configuration (Nt = 20 trees, Nf = log2(37)+1 features per split,
// probability averaging).
//
// Both legs scale across threads via dm::ml::TrainerOptions without
// changing the learned model: feature extraction fans the per-WCG work
// over a runtime::WorkerPool into order-preserving slots, and forest
// training uses counter-based per-tree RNG streams (ml/parallel_trainer.h)
// — the dataset and the forest are bit-identical at every thread count.
#pragma once

#include <span>

#include "core/features.h"
#include "ml/parallel_trainer.h"
#include "ml/random_forest.h"

namespace dm::core {

/// Extracts features from labeled WCG collections into one Dataset
/// (label 1 = infection, 0 = benign).  Row order is infections then benign,
/// each in input order, regardless of trainer.threads.
dm::ml::Dataset dataset_from_wcgs(std::span<const Wcg> infections,
                                  std::span<const Wcg> benign,
                                  const FeatureExtractorOptions& options = {},
                                  const dm::ml::TrainerOptions& trainer = {});

/// The paper's ERF configuration for a given feature count.  The default
/// seed is the single documented training seed, ml::kDefaultTrainingSeed —
/// paper_forest_options(n).seed == ForestOptions{}.seed by construction.
dm::ml::ForestOptions paper_forest_options(
    std::size_t num_features = kNumFeatures,
    std::uint64_t seed = dm::ml::kDefaultTrainingSeed);

/// Trains the ERF on a prepared dataset with the paper's configuration.
dm::ml::RandomForest train_dynaminer(
    const dm::ml::Dataset& data,
    std::uint64_t seed = dm::ml::kDefaultTrainingSeed,
    const dm::ml::TrainerOptions& trainer = {});

}  // namespace dm::core

// Stage-1 training glue: WCG collections -> feature Dataset -> the paper's
// ERF configuration (Nt = 20 trees, Nf = log2(37)+1 features per split,
// probability averaging).
#pragma once

#include <span>

#include "core/features.h"
#include "ml/random_forest.h"

namespace dm::core {

/// Extracts features from labeled WCG collections into one Dataset
/// (label 1 = infection, 0 = benign).
dm::ml::Dataset dataset_from_wcgs(std::span<const Wcg> infections,
                                  std::span<const Wcg> benign,
                                  const FeatureExtractorOptions& options = {});

/// The paper's ERF configuration for a given feature count.
dm::ml::ForestOptions paper_forest_options(std::size_t num_features = kNumFeatures,
                                           std::uint64_t seed = 42);

/// Trains the ERF on a prepared dataset with the paper's configuration.
dm::ml::RandomForest train_dynaminer(const dm::ml::Dataset& data,
                                     std::uint64_t seed = 42);

}  // namespace dm::core

// Trusted-vendor weed-out (paper §V-B): "to reduce noise from benign HTTP
// traffic, we weed out HTTP transactions that originate from known vendors
// ... we exclude traffic that involve downloads from online application
// stores / software repositories."
#pragma once

#include <set>
#include <string>
#include <string_view>

namespace dm::core {

/// Registrable-domain whitelist of trusted software-distribution sources.
class TrustedVendors {
 public:
  /// Builds the default list: major OS/application update services,
  /// application stores, and package repositories.
  static TrustedVendors default_list();

  /// Empty list — used by the ablation bench (weed-out disabled).
  static TrustedVendors none() { return TrustedVendors{}; }

  void add(std::string registrable_domain);

  /// True if `host` equals or is a subdomain of any trusted domain.
  bool is_trusted(std::string_view host) const noexcept;

  std::size_t size() const noexcept { return domains_.size(); }

 private:
  std::set<std::string, std::less<>> domains_;
};

}  // namespace dm::core

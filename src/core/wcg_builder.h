// WCG construction from a time-ordered HTTP transaction stream (§III-B).
//
// The builder:
//  * weeds out transactions to trusted software vendors (§V-B noise rule),
//  * adds the synthetic origin node from the first transaction's referrer
//    ("empty" when the referrer was stripped),
//  * creates request/response edges between the victim and each host,
//  * infers redirect edges from Location headers, Referer chaining under a
//    short-delay rule (automatic redirects are fast; human clicks are slow),
//    and the obfuscated-JS/meta/iframe miner (§III-D),
//  * assigns each edge a conversation stage — pre-download / download /
//    post-download — using the paper's §III-C heuristics, and
//  * fills the graph-level annotations that the 37 features consume.
#pragma once

#include <vector>

#include "core/wcg.h"
#include "core/whitelist.h"
#include "http/message.h"
#include "http/redirect_miner.h"

namespace dm::core {

struct BuilderOptions {
  /// Trusted-vendor weed-out list; use TrustedVendors::none() to disable.
  TrustedVendors trusted = TrustedVendors::default_list();
  /// Optional heuristic: treat a Referer-chain transition faster than the
  /// delay below as an automatic redirect even without explicit evidence.
  /// Off by default — sub-resource fetches (page -> CDN) also follow their
  /// referrer within milliseconds, so the bare timing rule manufactures
  /// redirect structure in benign graphs; explicit evidence (Location,
  /// meta-refresh, iframe, mined JavaScript) is the reliable signal.
  bool referrer_timing_redirects = false;
  double referrer_redirect_max_delay_s = 2.0;
  dm::http::RedirectMinerOptions miner;
};

/// Accumulates transactions (time order expected) and materializes the
/// annotated WCG.  `build()` may be called repeatedly as the conversation
/// grows — the on-the-wire detector does exactly that (§V-B "each update of
/// a WCG then triggers feature extraction").
class WcgBuilder {
 public:
  explicit WcgBuilder(BuilderOptions options = {});

  /// Appends one transaction; returns false if it was weeded out
  /// (trusted vendor) or malformed.
  bool add(dm::http::HttpTransaction transaction);

  std::size_t transaction_count() const noexcept { return transactions_.size(); }
  const std::vector<dm::http::HttpTransaction>& transactions() const noexcept {
    return transactions_;
  }

  /// Builds the full annotated WCG from everything added so far.
  Wcg build() const;

 private:
  BuilderOptions options_;
  std::vector<dm::http::HttpTransaction> transactions_;
};

/// One-shot convenience.
Wcg build_wcg(std::vector<dm::http::HttpTransaction> transactions,
              BuilderOptions options = {});

}  // namespace dm::core

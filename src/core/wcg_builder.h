// WCG construction from a time-ordered HTTP transaction stream (§III-B).
//
// The builder:
//  * weeds out transactions to trusted software vendors (§V-B noise rule),
//  * adds the synthetic origin node from the first transaction's referrer
//    ("empty" when the referrer was stripped),
//  * creates request/response edges between the victim and each host,
//  * infers redirect edges from Location headers, Referer chaining under a
//    short-delay rule (automatic redirects are fast; human clicks are slow),
//    and the obfuscated-JS/meta/iframe miner (§III-D),
//  * assigns each edge a conversation stage — pre-download / download /
//    post-download — using the paper's §III-C heuristics, and
//  * fills the graph-level annotations that the 37 features consume.
//
// Two evaluation modes share one fold engine (see wcg_builder.cpp):
//
//  * build() — the from-scratch reference: materializes a fresh WCG from
//    every transaction added so far.  Pure, repeatable, O(n) per call.
//  * current() — the incremental hot path: maintains a persistent WCG and
//    folds only the transactions added since the previous call.  A small
//    set of retroactive events (a new exploit download re-staging earlier
//    edges, the origin node being invalidated by a new conversation host)
//    trigger a transparent full re-fold, so current() is always
//    bit-identical to build() — the property the on-the-wire engine's
//    incremental-vs-rebuild determinism guarantee rests on.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "core/wcg.h"
#include "core/whitelist.h"
#include "http/message.h"
#include "http/redirect_miner.h"

namespace dm::core {

struct BuilderOptions {
  /// Trusted-vendor weed-out list; use TrustedVendors::none() to disable.
  TrustedVendors trusted = TrustedVendors::default_list();
  /// Optional heuristic: treat a Referer-chain transition faster than the
  /// delay below as an automatic redirect even without explicit evidence.
  /// Off by default — sub-resource fetches (page -> CDN) also follow their
  /// referrer within milliseconds, so the bare timing rule manufactures
  /// redirect structure in benign graphs; explicit evidence (Location,
  /// meta-refresh, iframe, mined JavaScript) is the reliable signal.
  /// Enabling it also disables incremental folding (the rule makes early
  /// edges depend on hosts seen later), so current() degrades to a full
  /// re-fold per call.
  bool referrer_timing_redirects = false;
  double referrer_redirect_max_delay_s = 2.0;
  dm::http::RedirectMinerOptions miner;
};

namespace detail {

/// Everything the per-transaction fold engine needs, beyond the Wcg itself,
/// to extend a WCG by one transaction and keep every annotation consistent.
/// Internal to WcgBuilder; a plain value type so builders stay copyable.
struct WcgBuildState {
  Wcg wcg;
  std::size_t folded = 0;  // transactions folded into `wcg` so far

  // Download timeline (§III-C stage assignment).  Fixed between re-folds:
  // a transaction that would change it forces a full re-fold instead.
  std::uint64_t first_exploit_ts = 0;  // 0 = none
  std::uint64_t last_exploit_ts = 0;
  std::set<std::string> exploit_hosts;

  // Origin / victim bookkeeping.
  std::string origin_name = "empty";
  dm::graph::NodeId origin_id = dm::graph::kInvalidNode;
  dm::graph::NodeId victim_id = dm::graph::kInvalidNode;
  std::set<std::string> conversation_hosts;

  // Redirect bookkeeping.
  std::map<std::string, std::set<std::string>> redirect_adj;
  std::set<std::string> redirect_hosts;
  std::set<std::string> redirect_tlds;
  /// Redirect timestamps; kept sorted unless `redirect_ts_unsorted`, in
  /// which case finalize() re-sorts and re-accumulates.  The running delay
  /// total accumulates left-to-right exactly like the from-scratch loop so
  /// the derived annotation is bit-identical in both modes.
  std::vector<std::uint64_t> redirect_ts;
  double redirect_delay_total_s = 0.0;
  bool redirect_ts_unsorted = false;

  // Conversation timing.
  std::uint64_t first_ts = 0;
  std::uint64_t last_ts = 0;
  std::vector<std::uint64_t> txn_times;  // request timestamps, see above
  double inter_txn_total_s = 0.0;
  bool txn_times_unsorted = false;

  /// Most recent response per host, for the referrer-delay redirect rule.
  std::map<std::string, std::uint64_t> last_response_ts;
};

}  // namespace detail

/// Accumulates transactions (time order expected) and materializes the
/// annotated WCG.  `build()`/`current()` may be called repeatedly as the
/// conversation grows — the on-the-wire detector does exactly that (§V-B
/// "each update of a WCG then triggers feature extraction").
class WcgBuilder {
 public:
  explicit WcgBuilder(BuilderOptions options = {});

  /// Appends one transaction; returns false if it was weeded out
  /// (trusted vendor) or malformed.  Cheap: folding into the incremental
  /// graph is deferred to the next current() call.
  bool add(dm::http::HttpTransaction transaction);

  std::size_t transaction_count() const noexcept { return transactions_.size(); }
  const std::vector<dm::http::HttpTransaction>& transactions() const noexcept {
    return transactions_;
  }

  /// Builds the full annotated WCG from scratch from everything added so
  /// far.  The reference implementation; current() must match it bitwise.
  Wcg build() const;

  /// Incremental view: folds transactions added since the last call into a
  /// persistent WCG and returns it.  Falls back to a full re-fold when a
  /// new transaction retroactively changes earlier structure (new exploit
  /// download, origin invalidation) — callers never observe the difference,
  /// only the amortized O(delta) cost.  The reference lives until the next
  /// add()/current() call.
  const Wcg& current();

  /// Number of full re-folds current() has performed (diagnostics/tests).
  std::uint64_t full_refolds() const noexcept { return full_refolds_; }

 private:
  /// True when the pending suffix [state_.folded, n) cannot be folded
  /// incrementally onto state_ without changing already-built structure.
  bool requires_refold() const;

  BuilderOptions options_;
  std::vector<dm::http::HttpTransaction> transactions_;
  detail::WcgBuildState state_;  // incremental graph for current()
  std::uint64_t full_refolds_ = 0;
};

/// One-shot convenience.
Wcg build_wcg(std::vector<dm::http::HttpTransaction> transactions,
              BuilderOptions options = {});

}  // namespace dm::core

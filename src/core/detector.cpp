#include "core/detector.h"

namespace dm::core {

Detector::Detector(dm::ml::RandomForest forest, FeatureExtractorOptions options,
                   double threshold)
    : forest_(std::move(forest)), options_(options), threshold_(threshold) {}

double Detector::score(const Wcg& wcg) const {
  const auto features = extract_features(wcg, options_);
  return forest_.predict_proba(features);
}

bool Detector::is_infection(const Wcg& wcg) const {
  return score(wcg) >= threshold_;
}

}  // namespace dm::core

#include "core/detector.h"

#include "obs/pipeline.h"
#include "obs/timer.h"

namespace dm::core {

Detector::Detector(dm::ml::RandomForest forest, FeatureExtractorOptions options,
                   double threshold)
    : forest_(std::move(forest)),
      flat_(dm::ml::FlatForest::compile(forest_)),
      options_(options),
      threshold_(threshold) {}

double Detector::score(const Wcg& wcg) const { return score(wcg, nullptr); }

double Detector::score(const Wcg& wcg, FeatureCache* cache) const {
  // Inference is const and shared across shard workers; the histograms are
  // sharded-concurrent, so timing here is thread-safe.  (The cache itself
  // is caller-owned, per-session state.)
  auto& obs = dm::obs::pipeline_metrics();
  const dm::obs::StageTimer timer;
  auto extract_span = timer.span(obs.stage_feature_extract_ns);
  const auto features = extract_features(wcg, options_, cache);
  extract_span.stop();
  auto infer_span = timer.span(obs.stage_erf_infer_ns);
  const double proba = flat_.predict_proba(features);
  infer_span.stop();
  return proba;
}

double Detector::score_from_scratch(const Wcg& wcg) const {
  auto& obs = dm::obs::pipeline_metrics();
  const dm::obs::StageTimer timer;
  auto extract_span = timer.span(obs.stage_feature_extract_ns);
  const auto features = extract_features(wcg, options_);
  extract_span.stop();
  auto infer_span = timer.span(obs.stage_erf_infer_ns);
  const double proba = forest_.predict_proba(features);
  infer_span.stop();
  return proba;
}

bool Detector::is_infection(const Wcg& wcg) const {
  return score(wcg) >= threshold_;
}

}  // namespace dm::core

// Stage 2: on-the-wire detection (§V-B).
//
// The engine sits on a live HTTP transaction stream (network edge or web
// proxy).  For each transaction it:
//   1. weeds out trusted-vendor traffic,
//   2. assigns the transaction to a session — by session ID when one is
//     present, otherwise by the referrer/timestamp clustering heuristic,
//   3. runs infection-clue inference: a redirect chain of length >= l
//      followed by a download of a risky payload type,
//   4. on a clue, "goes back in time": builds the potential-infection WCG
//      from the session's transactions, extracts features, and queries the
//      ERF classifier,
//   5. alerts and terminates the session if infectious; otherwise keeps
//      watching — every further transaction updates the WCG and re-queries
//      the classifier until the session ends or stops growing.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/detector.h"
#include "core/wcg_builder.h"
#include "http/session.h"
#include "obs/pipeline.h"
#include "obs/timer.h"
#include "util/rate_limit.h"

namespace dm::core {

/// How classify_session obtains the potential-infection WCG and its score.
enum class ScoringMode {
  /// Hot path: per-session scoped builder appended as clue-related
  /// transactions arrive (full rescan only when suspicious_hosts grows),
  /// graph metrics cached on topology version, flattened ERF.  Produces
  /// bit-identical scores and alerts to kFromScratch.
  kIncremental,
  /// Reference path: rebuild the scoped WCG from all session transactions,
  /// uncached extraction, pointer-based forest — on every update.  Kept for
  /// equivalence tests and the bench_online_hotpath A/B.
  kFromScratch,
};

/// Classifier seam for the scoring hot path.  The engine's default is the
/// constructor-bound Detector; a serving layer (src/serve) installs an
/// implementation that scores through an RCU-pinned, hot-swappable model
/// instead.  Implementations must be deterministic in the WCG — identical
/// graphs must yield identical scores, the property every alert-identity
/// fence (sharded determinism, incremental-vs-rebuild, no-op swap) rests on.
class WcgScorer {
 public:
  virtual ~WcgScorer() = default;
  /// Infection score in [0, 1] for a potential-infection WCG.  `cache` (may
  /// be null) memoizes graph-metric extraction exactly like
  /// Detector::score(wcg, cache).  Called from the owning detector's thread
  /// only; a sharded engine gives each shard its own scorer instance.
  virtual double score(const Wcg& wcg, FeatureCache* cache) = 0;
};

struct OnlineOptions {
  BuilderOptions builder;
  /// Redirect-chain threshold l for the infection clue (the paper's
  /// forensic case study used 3).
  std::uint32_t redirect_chain_threshold = 3;
  /// Transactions within this many seconds of a session's last activity can
  /// join it via the referrer/timestamp heuristic.
  double session_join_gap_s = 30.0;
  /// Sessions idle longer than this are considered terminated ("the WCG
  /// stops growing").
  double session_idle_timeout_s = 120.0;
  /// Decision threshold on the clue-scoped potential-infection WCG.  Set
  /// below the offline 0.5 because classification here is already gated by
  /// the infection clue (redirect chain + risky download), so the prior of
  /// the WCG under test is far from the corpus prior; the clue gate, not
  /// the threshold, carries the false-positive control (§V-B).
  double decision_threshold = 0.4;
  /// Scoring implementation; both modes yield identical alert sets.
  ScoringMode scoring = ScoringMode::kIncremental;
  FeatureExtractorOptions features;
  /// Fault-injection seam: invoked (when set) right before every classifier
  /// query, inside the engine's failure isolation.  An exception thrown here
  /// — or by feature extraction / the classifier itself — is recorded as a
  /// classifier_failure and the session keeps streaming; it never tears the
  /// engine down.  Tests use it to prove that property deterministically.
  std::function<void(const dm::http::HttpTransaction&)> classifier_fault_hook;
  /// Observability: registry receiving this engine's stage spans and the
  /// clue-to-verdict latency (null -> the process-wide obs::registry()),
  /// and the clock stamping those spans (null -> steady clock).  Tests
  /// inject both for deterministic, isolated latency assertions.
  dm::obs::MetricsRegistry* metrics = nullptr;
  dm::obs::ClockFn clock = nullptr;
  /// When set, classify_session queries this scorer instead of the
  /// constructor-bound detector (both ScoringModes; the scorer decides how
  /// to use the cache).  Exceptions it throws are quarantined exactly like
  /// detector failures.
  std::shared_ptr<WcgScorer> scorer;
  /// Verdict tap: invoked after every *completed* classifier query with the
  /// scored WCG, its score, the hard decision at decision_threshold, and
  /// the trace timestamp of the triggering transaction (for time-window
  /// sampling).  This is where the serving layer streams verdict-labeled
  /// WCGs into its retraining reservoir.  Runs on the scoring thread —
  /// implementations must be cheap on the common path and thread-safe when
  /// the options are shared across shards.  Never invoked for failed
  /// (thrown) queries or skipped (unchanged-WCG) updates.
  std::function<void(const Wcg& wcg, double score, bool alert,
                     std::uint64_t ts_micros)>
      verdict_tap;
};

struct Alert {
  std::uint64_t ts_micros = 0;
  std::string client;
  std::string session_key;
  double score = 0.0;
  std::string trigger_host;  // host serving the clue download
  dm::http::PayloadType trigger_payload = dm::http::PayloadType::kNone;
  std::size_t wcg_order = 0;
  std::size_t wcg_size = 0;
};

/// Counters for reporting (Table VI's per-host breakdown uses these).
struct OnlineStats {
  std::size_t transactions_seen = 0;
  std::size_t transactions_weeded = 0;
  std::size_t clues_fired = 0;
  std::size_t classifier_queries = 0;
  /// Classifier queries that threw instead of scoring; the query is
  /// quarantined (no alert, no state corruption) and the stream continues.
  std::size_t classifier_failures = 0;
  std::size_t alerts = 0;
  std::size_t sessions_opened = 0;
  std::size_t sessions_expired = 0;
  // Incremental-mode diagnostics (zero under ScoringMode::kFromScratch):
  /// Scope refilters forced by suspicious_hosts growing (a host implicated
  /// retroactively re-admits earlier transactions).
  std::size_t scope_rescans = 0;
  /// Classifier queries skipped because the scoped WCG was unchanged since
  /// the last completed evaluation (identical input -> identical verdict).
  std::size_t queries_skipped_unchanged = 0;
};

class OnlineDetector {
 public:
  OnlineDetector(Detector detector, OnlineOptions options = {});

  /// Shares one trained detector read-only (inference is const and
  /// state-free), so N engine instances — e.g. the shards of
  /// runtime::ShardedOnlineEngine — can query a single model copy.
  OnlineDetector(std::shared_ptr<const Detector> detector,
                 OnlineOptions options = {});

  /// Feeds one transaction (stream must be in time order); returns an alert
  /// if this update tipped a session over the decision threshold.
  std::optional<Alert> observe(dm::http::HttpTransaction transaction);

  /// Expires idle sessions relative to `now_micros`; call periodically
  /// (the replayer calls it between transactions).
  void expire_idle(std::uint64_t now_micros);

  const OnlineStats& stats() const noexcept { return stats_; }
  const std::vector<Alert>& alerts() const noexcept { return alerts_; }
  std::size_t active_sessions() const noexcept { return sessions_.size(); }

 private:
  struct Session {
    std::string key;
    std::string client;
    WcgBuilder builder;
    std::set<std::string> hosts;            // hosts seen in this session
    std::optional<std::string> session_id;  // sticky once discovered
    std::uint64_t last_activity = 0;
    std::uint32_t current_redirect_run = 0;  // consecutive redirect hops
    std::uint32_t longest_redirect_run = 0;
    bool clue_fired = false;
    bool alerted = false;
    /// Hosts implicated by the clue: redirect-chain members, mined redirect
    /// targets, the triggering download host, and post-clue call-back
    /// candidates.  The potential-infection WCG (§V-B "goes back in time")
    /// is built from the session transactions touching these hosts, so a
    /// malicious flow is not diluted by co-resident benign traffic.
    std::set<std::string> suspicious_hosts;
    std::set<std::string> hosts_before_clue;
    std::string clue_host;  // host serving the clue download
    dm::http::PayloadType clue_payload = dm::http::PayloadType::kNone;
    /// Clock stamp of the moment the clue fired, and whether the headline
    /// clue-to-verdict latency has been recorded (once per clue-bearing WCG,
    /// at the first *completed* ERF verdict).
    std::uint64_t clue_fired_ns = 0;
    bool clue_latency_recorded = false;

    // --- Incremental-scoring state (ScoringMode::kIncremental only) ------
    /// Delta-maintained scoped builder: exactly the clue-related subsequence
    /// of `builder`'s transactions, appended as they arrive so the first
    /// post-clue verdict needs no O(n) backfill.
    WcgBuilder scoped;
    /// How many of `builder`'s transactions have been filtered into
    /// `scoped`; the suffix beyond it is the pending delta.
    std::size_t scope_consumed = 0;
    /// |suspicious_hosts| when the scope was last filtered.  Growth means a
    /// host was implicated retroactively, so earlier transactions may now
    /// be related: maintain_scope() refilters from the start (the only
    /// full-rescan trigger).
    std::size_t scope_suspicious_seen = 0;
    /// Graph-metrics memo for the scoped WCG; explicitly invalidated on
    /// scope rescans (the rebuilt WCG reuses the same storage address, so
    /// the (pointer, version) key alone cannot see the swap).
    FeatureCache feature_cache;
    /// Scoped transaction count at the last *completed* evaluation, and
    /// whether one completed: lets classify_session skip the query when the
    /// scoped WCG is provably unchanged.  A failed (throwing) query clears
    /// the flag so faults are retried on the next update, preserving the
    /// quarantine semantics of the fault harness.
    std::size_t scope_eval_txns = 0;
    bool scope_eval_valid = false;
  };

  /// Builds the potential-infection WCG for a clue-bearing session.
  Wcg potential_infection_wcg(const Session& session) const;

  /// Incremental mode: folds new transactions into `session.scoped`,
  /// refiltering from scratch when suspicious_hosts grew.  Called on every
  /// observe() so the work is amortized across the stream instead of
  /// landing on the first post-clue verdict.
  void maintain_scope(Session& session);

  Session& find_or_create_session(const dm::http::HttpTransaction& txn,
                                  const std::optional<std::string>& sid);
  std::optional<Alert> classify_session(Session& session,
                                        const dm::http::HttpTransaction& txn,
                                        dm::http::PayloadType trigger);

  /// True when `session` may still be joined at time `ts_micros`: sessions
  /// idle past the timeout are dead even if not yet garbage-collected.
  /// Keeping this a pure function of (transaction, session) makes grouping
  /// independent of when expire_idle happens to run — the property the
  /// sharded runtime's determinism guarantee rests on.
  bool joinable(const Session& session, std::uint64_t ts_micros) const noexcept;

  std::shared_ptr<const Detector> detector_;
  OnlineOptions options_;
  dm::obs::StageTimer timer_;      // options_.clock or the steady clock
  dm::obs::PipelineMetrics obs_;   // handles into options_.metrics or global
  /// Rate limit for quarantined-classifier warnings.  Per instance — a
  /// process-wide (function-local static) gate would let one noisy shard
  /// consume the log budget of every other detector.  Makes the class
  /// non-movable, which is fine: shards construct their detector in place.
  dm::util::EveryN classifier_failure_gate_{128};
  std::map<std::string, Session> sessions_;  // key -> state
  OnlineStats stats_;
  std::vector<Alert> alerts_;
  /// Next session ordinal per client.  Keys are "client#n" with a
  /// per-client counter so they are reproducible for any partition of the
  /// stream by client (a global counter would depend on arrival interleaving
  /// across clients).  Grows with the number of distinct clients seen.
  std::map<std::string, std::uint64_t> next_session_seq_;
};

}  // namespace dm::core

#include "core/wcg_builder.h"

#include <algorithm>

#include "util/strings.h"

namespace dm::core {
namespace {

using detail::WcgBuildState;
using dm::http::HttpTransaction;
using dm::http::PayloadType;
using dm::util::registrable_domain;
using dm::util::top_level_domain;

/// Host component of a (possibly absolute-URL) referrer value, lower-cased.
std::string referrer_host(std::string_view referrer) {
  const std::string host = dm::http::host_of_url(referrer);
  if (!host.empty()) return host;
  // Bare hostname referrers occur in the wild; accept them when they look
  // like a hostname.
  const auto trimmed = dm::util::trim(referrer);
  if (!trimmed.empty() && trimmed.find('/') == std::string_view::npos) {
    return dm::util::to_lower(trimmed);
  }
  return {};
}

bool is_exploit_transaction(const HttpTransaction& txn) {
  if (!txn.response) return false;
  const auto type = dm::http::classify_payload(
      txn.response->content_type().value_or(""), txn.request.uri);
  return dm::http::is_exploit_type(type);
}

/// Stage assignment per §III-C: GET with no prior exploit download and a
/// 30x answer -> pre-download; POST to a non-exploit host answered 200/40x
/// after the first download -> post-download; everything else -> download.
/// The download timeline lives in the build state and is *frozen* between
/// re-folds: a transaction that would change it forces a full re-fold, so
/// incremental stage assignment always sees the same timeline build() would.
Stage stage_of(const HttpTransaction& txn, const WcgBuildState& s) {
  const std::uint64_t ts = txn.request.ts_micros;
  const int code = txn.response ? txn.response->status_code : 0;
  const bool before_first_download =
      s.first_exploit_ts == 0 || ts < s.first_exploit_ts;

  if (txn.request.method == "GET" && before_first_download &&
      code >= 300 && code < 400) {
    return Stage::kPreDownload;
  }
  if (txn.request.method == "POST" &&
      s.exploit_hosts.find(txn.server_host) == s.exploit_hosts.end() &&
      s.first_exploit_ts != 0 && ts > s.last_exploit_ts &&
      (code == 200 || (code >= 400 && code < 500))) {
    return Stage::kPostDownload;
  }
  return Stage::kDownload;
}

/// Longest simple path (in edges) through the redirect-edge host graph.
/// Redirect subgraphs are tiny chains/trees, so a depth-capped DFS is fine.
std::uint32_t longest_chain(const std::map<std::string, std::set<std::string>>& redirect_adj) {
  std::uint32_t best = 0;
  constexpr std::uint32_t kDepthCap = 64;

  struct Dfs {
    const std::map<std::string, std::set<std::string>>& adj;
    std::set<std::string> on_path;
    std::uint32_t best = 0;

    void run(const std::string& host, std::uint32_t depth) {
      best = std::max(best, depth);
      if (depth >= kDepthCap) return;
      const auto it = adj.find(host);
      if (it == adj.end()) return;
      for (const auto& next : it->second) {
        if (on_path.insert(next).second) {
          run(next, depth + 1);
          on_path.erase(next);
        }
      }
    }
  };

  Dfs dfs{redirect_adj, {}, 0};
  for (const auto& [host, targets] : redirect_adj) {
    dfs.on_path = {host};
    dfs.run(host, 0);
    best = std::max(best, dfs.best);
  }
  return best;
}

void add_redirect_edge(WcgBuildState& s, const std::string& from_host,
                       const std::string& to_host, std::uint64_t ts) {
  if (from_host.empty() || to_host.empty() || from_host == to_host) return;
  auto& ann = s.wcg.annotations();
  const auto from_id = s.wcg.add_host(from_host);
  const auto to_id = s.wcg.add_host(to_host);
  WcgEdge edge;
  edge.kind = EdgeKind::kRedirect;
  edge.ts_micros = ts;
  edge.stage = (s.first_exploit_ts == 0 || ts < s.first_exploit_ts)
                   ? Stage::kPreDownload
                   : Stage::kDownload;
  s.wcg.add_edge(from_id, to_id, edge);
  s.redirect_adj[from_host].insert(to_host);

  // Running avg-delay total: as long as timestamps arrive in order, each
  // append performs exactly the next iteration of the from-scratch
  // sort-then-accumulate loop (same operand order, so bit-identical).  An
  // out-of-order timestamp flips the dirty flag; finalize() then re-sorts
  // and replays the whole loop.
  if (!s.redirect_ts.empty()) {
    if (ts < s.redirect_ts.back()) {
      s.redirect_ts_unsorted = true;
    } else if (!s.redirect_ts_unsorted) {
      s.redirect_delay_total_s +=
          static_cast<double>(ts - s.redirect_ts.back()) / 1e6;
    }
  }
  s.redirect_ts.push_back(ts);

  for (const std::string* host : {&from_host, &to_host}) {
    if (s.redirect_hosts.insert(*host).second) {
      const auto tld = top_level_domain(*host);
      if (!tld.empty()) s.redirect_tlds.insert(std::string(tld));
    }
  }
  ++ann.total_redirects;
  if (registrable_domain(from_host) != registrable_domain(to_host)) {
    ++ann.cross_domain_redirects;
  }
}

/// One-time setup for a (re-)fold: download timeline, conversation hosts,
/// origin and victim nodes, entice edge.  Precondition: at least one
/// transaction, `s` freshly default-constructed.
void prologue(WcgBuildState& s, const std::vector<HttpTransaction>& txns) {
  auto& ann = s.wcg.annotations();

  // Download timeline (fixed for this fold; see stage_of).
  for (const auto& txn : txns) {
    if (!is_exploit_transaction(txn)) continue;
    const std::uint64_t ts = txn.response->ts_micros;
    if (s.first_exploit_ts == 0 || ts < s.first_exploit_ts) {
      s.first_exploit_ts = ts;
    }
    s.last_exploit_ts = std::max(s.last_exploit_ts, ts);
    s.exploit_hosts.insert(txn.server_host);
  }

  // ---- Origin node -------------------------------------------------------
  // The enticement source is the referrer of the earliest transaction whose
  // referrer host is outside the conversation (§III-B "origin node").
  for (const auto& txn : txns) s.conversation_hosts.insert(txn.server_host);
  for (const auto& txn : txns) {
    if (const auto ref = txn.request.referrer()) {
      const std::string host = referrer_host(*ref);
      if (!host.empty() &&
          s.conversation_hosts.find(host) == s.conversation_hosts.end()) {
        s.origin_name = host;
        break;
      }
    }
  }
  ann.origin_known = s.origin_name != "empty";
  s.origin_id = s.wcg.add_host(s.origin_name);
  s.wcg.node(s.origin_id).type = NodeType::kOrigin;
  s.wcg.set_origin(s.origin_id);

  // ---- Victim node -------------------------------------------------------
  s.victim_id = s.wcg.add_host(txns.front().client_host);
  s.wcg.node(s.victim_id).type = NodeType::kVictim;
  s.wcg.node(s.victim_id).ip = txns.front().client_host;
  s.wcg.set_victim(s.victim_id);

  // Origin enticed the victim into the conversation.
  if (ann.origin_known) {
    WcgEdge entice;
    entice.kind = EdgeKind::kRedirect;
    entice.stage = Stage::kPreDownload;
    entice.ts_micros = txns.front().request.ts_micros;
    s.wcg.add_edge(s.origin_id, s.victim_id, entice);
  }

  s.first_ts = txns.front().request.ts_micros;
  s.last_ts = s.first_ts;
}

/// Extends the state by one transaction.  The single per-transaction code
/// path shared by build() and current() — equivalence by construction.
void fold(const BuilderOptions& options, WcgBuildState& s,
          const HttpTransaction& txn) {
  Wcg& wcg = s.wcg;
  auto& ann = wcg.annotations();

  const auto server_id = wcg.add_host(txn.server_host);
  if (wcg.node(server_id).ip.empty()) wcg.node(server_id).ip = txn.server_ip;
  wcg.add_uri(server_id, txn.request.uri);

  const Stage stage = stage_of(txn, s);
  const std::uint64_t req_ts = txn.request.ts_micros;
  if (stage == Stage::kPostDownload) ann.has_post_download_stage = true;

  // Running inter-transaction total; same dirty-flag scheme as redirects.
  if (!s.txn_times.empty()) {
    if (req_ts < s.txn_times.back()) {
      s.txn_times_unsorted = true;
    } else if (!s.txn_times_unsorted) {
      s.inter_txn_total_s +=
          static_cast<double>(req_ts - s.txn_times.back()) / 1e6;
    }
  }
  s.txn_times.push_back(req_ts);
  s.first_ts = std::min(s.first_ts, req_ts);
  s.last_ts = std::max(s.last_ts, req_ts);

  // Request edge: victim -> server.
  WcgEdge req;
  req.kind = EdgeKind::kRequest;
  req.stage = stage;
  req.ts_micros = req_ts;
  req.method = txn.request.method;
  req.uri_length = static_cast<std::uint32_t>(txn.request.uri.size());
  req.has_referrer = txn.request.referrer().has_value();
  wcg.add_edge(s.victim_id, server_id, req);

  // Header tallies.
  if (txn.request.method == "GET") ++ann.get_count;
  else if (txn.request.method == "POST") ++ann.post_count;
  else ++ann.other_method_count;
  if (req.has_referrer) ++ann.referrer_count;
  else ++ann.no_referrer_count;
  if (const auto dnt = txn.request.headers.get("DNT");
      dnt && *dnt == "1") {
    ann.do_not_track = true;
  }
  if (const auto xf = txn.request.headers.get("X-Flash-Version")) {
    ann.x_flash_version_set = true;
    ann.x_flash_version = std::string(*xf);
  }

  // Response edge: server -> victim.
  if (txn.response) {
    const auto& res = *txn.response;
    const std::uint64_t res_ts = res.ts_micros ? res.ts_micros : req_ts;
    s.last_ts = std::max(s.last_ts, res_ts);
    WcgEdge resp;
    resp.kind = EdgeKind::kResponse;
    resp.stage = stage;
    resp.ts_micros = res_ts;
    resp.response_code = res.status_code;
    resp.payload_type = dm::http::classify_payload(
        res.content_type().value_or(""), txn.request.uri);
    resp.payload_size = res.body.size();
    wcg.add_edge(server_id, s.victim_id, resp);

    const int cls = res.status_code / 100;
    if (cls >= 1 && cls <= 5) ++ann.response_class_counts[cls - 1];
    if (resp.payload_type != PayloadType::kNone && !res.body.empty()) {
      ++ann.payload_count;
      ann.total_payload_bytes += resp.payload_size;
      ++ann.payload_type_counts[resp.payload_type];
      ++wcg.node(server_id).payloads_served[resp.payload_type];
    }
    s.last_response_ts[txn.server_host] = res_ts;

    // Explicit redirect evidence: Location header / meta / iframe / JS,
    // including the de-obfuscated layers.
    for (const auto& evidence : dm::http::mine_redirects(txn, options.miner)) {
      if (options.trusted.is_trusted(evidence.target_host)) continue;
      add_redirect_edge(s, txn.server_host, evidence.target_host, res_ts);
    }
  }

  // Referer-chain redirect: the referrer names another conversation host
  // and this request followed that host's response almost immediately.
  // Needs the *full* conversation-host set, so enabling it forces current()
  // into refold-per-call mode (see BuilderOptions).
  if (const auto ref = txn.request.referrer();
      ref && options.referrer_timing_redirects) {
    const std::string ref_host = referrer_host(*ref);
    if (!ref_host.empty() && ref_host != txn.server_host &&
        s.conversation_hosts.find(ref_host) != s.conversation_hosts.end()) {
      const auto it = s.last_response_ts.find(ref_host);
      if (it != s.last_response_ts.end() && req_ts >= it->second) {
        const double delay_s =
            static_cast<double>(req_ts - it->second) / 1e6;
        if (delay_s <= options.referrer_redirect_max_delay_s &&
            !wcg.graph().has_edge(wcg.find_host(ref_host), server_id)) {
          add_redirect_edge(s, ref_host, txn.server_host, req_ts);
        }
      }
    }
  }

  ++s.folded;
}

/// Derives every annotation that depends on the whole state.  Idempotent —
/// current() re-runs it after each incremental fold.  Cost is O(nodes +
/// redirect subgraph), independent of the transaction count.
void finalize(WcgBuildState& s) {
  Wcg& wcg = s.wcg;
  auto& ann = wcg.annotations();

  // Node typing: a pure function of (uris, redirect participation, exploit
  // hosts), re-applied from scratch each time so that e.g. an intermediary
  // that later receives a direct request reverts to remote exactly as a
  // from-scratch build would type it.
  for (dm::graph::NodeId id = 0; id < wcg.node_count(); ++id) {
    WcgNode& node = wcg.node(id);
    if (node.type == NodeType::kVictim || node.type == NodeType::kOrigin) continue;
    if (s.exploit_hosts.find(node.host) != s.exploit_hosts.end()) {
      node.type = NodeType::kMalicious;
    } else if (node.uris.empty() &&
               s.redirect_hosts.find(node.host) != s.redirect_hosts.end()) {
      node.type = NodeType::kIntermediary;  // only chains, never queried
    } else {
      node.type = NodeType::kRemote;
    }
  }

  ann.transaction_count = static_cast<std::uint32_t>(s.folded);
  ann.longest_redirect_chain = longest_chain(s.redirect_adj);
  ann.tld_diversity = static_cast<std::uint32_t>(s.redirect_tlds.size());

  if (s.redirect_ts_unsorted) {
    std::sort(s.redirect_ts.begin(), s.redirect_ts.end());
    s.redirect_delay_total_s = 0.0;
    for (std::size_t i = 1; i < s.redirect_ts.size(); ++i) {
      s.redirect_delay_total_s +=
          static_cast<double>(s.redirect_ts[i] - s.redirect_ts[i - 1]) / 1e6;
    }
    s.redirect_ts_unsorted = false;
  }
  ann.avg_redirect_delay_s =
      s.redirect_ts.size() >= 2
          ? s.redirect_delay_total_s /
                static_cast<double>(s.redirect_ts.size() - 1)
          : 0.0;

  ann.duration_s = static_cast<double>(s.last_ts - s.first_ts) / 1e6;

  if (s.txn_times_unsorted) {
    std::sort(s.txn_times.begin(), s.txn_times.end());
    s.inter_txn_total_s = 0.0;
    for (std::size_t i = 1; i < s.txn_times.size(); ++i) {
      s.inter_txn_total_s +=
          static_cast<double>(s.txn_times[i] - s.txn_times[i - 1]) / 1e6;
    }
    s.txn_times_unsorted = false;
  }
  ann.avg_inter_transaction_s =
      s.txn_times.size() >= 2
          ? s.inter_txn_total_s / static_cast<double>(s.txn_times.size() - 1)
          : 0.0;

  ann.has_download_stage = s.first_exploit_ts != 0;
}

}  // namespace

WcgBuilder::WcgBuilder(BuilderOptions options) : options_(std::move(options)) {}

bool WcgBuilder::add(HttpTransaction transaction) {
  if (transaction.server_host.empty()) return false;
  if (options_.trusted.is_trusted(transaction.server_host)) return false;
  transactions_.push_back(std::move(transaction));
  return true;
}

Wcg WcgBuilder::build() const {
  detail::WcgBuildState state;
  if (transactions_.empty()) return std::move(state.wcg);
  prologue(state, transactions_);
  for (const auto& txn : transactions_) fold(options_, state, txn);
  finalize(state);
  return std::move(state.wcg);
}

bool WcgBuilder::requires_refold() const {
  // The referrer-timing rule lets a late transaction create an edge whose
  // existence depends on hosts seen even later; incremental folding cannot
  // honor that, so the option pins current() to refold-per-call.
  if (options_.referrer_timing_redirects) return true;

  for (std::size_t i = state_.folded; i < transactions_.size(); ++i) {
    const auto& txn = transactions_[i];
    // A new exploit download moves the timeline: stages (and node typing)
    // of already-folded transactions may change.
    if (is_exploit_transaction(txn)) return true;
    // The chosen origin's referrer host just joined the conversation, so
    // the origin scan would now pick a different source (or "empty").
    if (state_.origin_name != "empty" &&
        txn.server_host == state_.origin_name) {
      return true;
    }
  }

  if (state_.origin_name == "empty") {
    // No enticement source so far: does any pending transaction carry a
    // referrer that stays outside the *grown* conversation-host set?
    std::set<std::string> pending_hosts;
    for (std::size_t i = state_.folded; i < transactions_.size(); ++i) {
      pending_hosts.insert(transactions_[i].server_host);
    }
    for (std::size_t i = state_.folded; i < transactions_.size(); ++i) {
      if (const auto ref = transactions_[i].request.referrer()) {
        const std::string host = referrer_host(*ref);
        if (!host.empty() &&
            state_.conversation_hosts.find(host) ==
                state_.conversation_hosts.end() &&
            pending_hosts.find(host) == pending_hosts.end()) {
          return true;
        }
      }
    }
  }
  return false;
}

const Wcg& WcgBuilder::current() {
  const std::size_t n = transactions_.size();
  if (state_.folded == n) return state_.wcg;  // finalized by the last call

  if (state_.folded == 0 || requires_refold()) {
    if (state_.folded > 0) ++full_refolds_;
    const std::uint64_t prev_version = state_.wcg.topology_version();
    state_ = detail::WcgBuildState{};
    prologue(state_, transactions_);
    for (const auto& txn : transactions_) fold(options_, state_, txn);
    // The graph object kept its address but was rebuilt; keep the version
    // strictly increasing so (pointer, version) cache keys stay sound.
    state_.wcg.ensure_topology_version_above(prev_version);
  } else {
    for (std::size_t i = state_.folded; i < n; ++i) {
      state_.conversation_hosts.insert(transactions_[i].server_host);
    }
    for (std::size_t i = state_.folded; i < n; ++i) {
      fold(options_, state_, transactions_[i]);
    }
  }
  finalize(state_);
  return state_.wcg;
}

Wcg build_wcg(std::vector<dm::http::HttpTransaction> transactions,
              BuilderOptions options) {
  WcgBuilder builder(std::move(options));
  for (auto& txn : transactions) builder.add(std::move(txn));
  return builder.build();
}

}  // namespace dm::core

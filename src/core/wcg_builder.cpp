#include "core/wcg_builder.h"

#include <algorithm>
#include <set>

#include "util/strings.h"

namespace dm::core {
namespace {

using dm::http::HttpTransaction;
using dm::http::PayloadType;
using dm::util::registrable_domain;
using dm::util::top_level_domain;

/// Host component of a (possibly absolute-URL) referrer value, lower-cased.
std::string referrer_host(std::string_view referrer) {
  const std::string host = dm::http::host_of_url(referrer);
  if (!host.empty()) return host;
  // Bare hostname referrers occur in the wild; accept them when they look
  // like a hostname.
  const auto trimmed = dm::util::trim(referrer);
  if (!trimmed.empty() && trimmed.find('/') == std::string_view::npos) {
    return dm::util::to_lower(trimmed);
  }
  return {};
}

struct DownloadTimeline {
  std::uint64_t first_exploit_ts = 0;  // 0 = none
  std::uint64_t last_exploit_ts = 0;
  std::set<std::string> exploit_hosts;  // hosts that served exploit payloads
};

DownloadTimeline scan_downloads(const std::vector<HttpTransaction>& txns) {
  DownloadTimeline timeline;
  for (const auto& txn : txns) {
    if (!txn.response) continue;
    const auto type = dm::http::classify_payload(
        txn.response->content_type().value_or(""), txn.request.uri);
    if (dm::http::is_exploit_type(type)) {
      const std::uint64_t ts = txn.response->ts_micros;
      if (timeline.first_exploit_ts == 0 || ts < timeline.first_exploit_ts) {
        timeline.first_exploit_ts = ts;
      }
      timeline.last_exploit_ts = std::max(timeline.last_exploit_ts, ts);
      timeline.exploit_hosts.insert(txn.server_host);
    }
  }
  return timeline;
}

/// Stage assignment per §III-C: GET with no prior exploit download and a
/// 30x answer -> pre-download; POST to a non-exploit host answered 200/40x
/// after the first download -> post-download; everything else -> download.
Stage stage_of(const HttpTransaction& txn, const DownloadTimeline& timeline) {
  const std::uint64_t ts = txn.request.ts_micros;
  const int code = txn.response ? txn.response->status_code : 0;
  const bool before_first_download =
      timeline.first_exploit_ts == 0 || ts < timeline.first_exploit_ts;

  if (txn.request.method == "GET" && before_first_download &&
      code >= 300 && code < 400) {
    return Stage::kPreDownload;
  }
  if (txn.request.method == "POST" &&
      timeline.exploit_hosts.find(txn.server_host) == timeline.exploit_hosts.end() &&
      timeline.first_exploit_ts != 0 && ts > timeline.last_exploit_ts &&
      (code == 200 || (code >= 400 && code < 500))) {
    return Stage::kPostDownload;
  }
  return Stage::kDownload;
}

/// Longest simple path (in edges) through the redirect-edge host graph.
/// Redirect subgraphs are tiny chains/trees, so a depth-capped DFS is fine.
std::uint32_t longest_chain(const std::map<std::string, std::set<std::string>>& redirect_adj) {
  std::uint32_t best = 0;
  constexpr std::uint32_t kDepthCap = 64;

  struct Dfs {
    const std::map<std::string, std::set<std::string>>& adj;
    std::set<std::string> on_path;
    std::uint32_t best = 0;

    void run(const std::string& host, std::uint32_t depth) {
      best = std::max(best, depth);
      if (depth >= kDepthCap) return;
      const auto it = adj.find(host);
      if (it == adj.end()) return;
      for (const auto& next : it->second) {
        if (on_path.insert(next).second) {
          run(next, depth + 1);
          on_path.erase(next);
        }
      }
    }
  };

  Dfs dfs{redirect_adj, {}, 0};
  for (const auto& [host, targets] : redirect_adj) {
    dfs.on_path = {host};
    dfs.run(host, 0);
    best = std::max(best, dfs.best);
  }
  return best;
}

}  // namespace

WcgBuilder::WcgBuilder(BuilderOptions options) : options_(std::move(options)) {}

bool WcgBuilder::add(HttpTransaction transaction) {
  if (transaction.server_host.empty()) return false;
  if (options_.trusted.is_trusted(transaction.server_host)) return false;
  transactions_.push_back(std::move(transaction));
  return true;
}

Wcg WcgBuilder::build() const {
  Wcg wcg;
  if (transactions_.empty()) return wcg;

  const DownloadTimeline timeline = scan_downloads(transactions_);
  auto& ann = wcg.annotations();

  // ---- Origin node -------------------------------------------------------
  // The enticement source is the referrer of the earliest transaction whose
  // referrer host is outside the conversation (§III-B "origin node").
  std::set<std::string> conversation_hosts;
  for (const auto& txn : transactions_) conversation_hosts.insert(txn.server_host);

  std::string origin_name = "empty";
  for (const auto& txn : transactions_) {
    if (const auto ref = txn.request.referrer()) {
      const std::string host = referrer_host(*ref);
      if (!host.empty() &&
          conversation_hosts.find(host) == conversation_hosts.end()) {
        origin_name = host;
        break;
      }
    }
  }
  ann.origin_known = origin_name != "empty";
  const auto origin_id = wcg.add_host(origin_name);
  wcg.node(origin_id).type = NodeType::kOrigin;
  wcg.set_origin(origin_id);

  // ---- Victim node -------------------------------------------------------
  const auto victim_id = wcg.add_host(transactions_.front().client_host);
  wcg.node(victim_id).type = NodeType::kVictim;
  wcg.node(victim_id).ip = transactions_.front().client_host;
  wcg.set_victim(victim_id);

  // Origin enticed the victim into the conversation.
  if (ann.origin_known) {
    WcgEdge entice;
    entice.kind = EdgeKind::kRedirect;
    entice.stage = Stage::kPreDownload;
    entice.ts_micros = transactions_.front().request.ts_micros;
    wcg.add_edge(origin_id, victim_id, entice);
  }

  // ---- Transaction edges -------------------------------------------------
  // Redirect bookkeeping: adjacency between hosts, timestamps in order, and
  // hosts involved (for TLD diversity / cross-domain counting).
  std::map<std::string, std::set<std::string>> redirect_adj;
  std::vector<std::uint64_t> redirect_ts;
  std::set<std::string> redirect_hosts;
  std::uint32_t redirect_edges = 0;
  std::uint32_t cross_domain = 0;

  auto add_redirect_edge = [&](const std::string& from_host,
                               const std::string& to_host, std::uint64_t ts) {
    if (from_host.empty() || to_host.empty() || from_host == to_host) return;
    const auto from_id = wcg.add_host(from_host);
    const auto to_id = wcg.add_host(to_host);
    WcgEdge edge;
    edge.kind = EdgeKind::kRedirect;
    edge.ts_micros = ts;
    edge.stage = (timeline.first_exploit_ts == 0 || ts < timeline.first_exploit_ts)
                     ? Stage::kPreDownload
                     : Stage::kDownload;
    wcg.add_edge(from_id, to_id, edge);
    redirect_adj[from_host].insert(to_host);
    redirect_ts.push_back(ts);
    redirect_hosts.insert(from_host);
    redirect_hosts.insert(to_host);
    ++redirect_edges;
    if (registrable_domain(from_host) != registrable_domain(to_host)) {
      ++cross_domain;
    }
  };

  // Track the most recent response per host for the referrer-delay rule.
  std::map<std::string, std::uint64_t> last_response_ts;

  std::uint64_t first_ts = transactions_.front().request.ts_micros;
  std::uint64_t last_ts = first_ts;
  std::vector<std::uint64_t> txn_times;

  for (const auto& txn : transactions_) {
    const auto server_id = wcg.add_host(txn.server_host);
    WcgNode& server = wcg.node(server_id);
    if (server.ip.empty()) server.ip = txn.server_ip;
    server.uris.insert(txn.request.uri);

    const Stage stage = stage_of(txn, timeline);
    const std::uint64_t req_ts = txn.request.ts_micros;
    txn_times.push_back(req_ts);
    first_ts = std::min(first_ts, req_ts);
    last_ts = std::max(last_ts, req_ts);

    // Request edge: victim -> server.
    WcgEdge req;
    req.kind = EdgeKind::kRequest;
    req.stage = stage;
    req.ts_micros = req_ts;
    req.method = txn.request.method;
    req.uri_length = static_cast<std::uint32_t>(txn.request.uri.size());
    req.has_referrer = txn.request.referrer().has_value();
    wcg.add_edge(victim_id, server_id, req);

    // Header tallies.
    if (txn.request.method == "GET") ++ann.get_count;
    else if (txn.request.method == "POST") ++ann.post_count;
    else ++ann.other_method_count;
    if (req.has_referrer) ++ann.referrer_count;
    else ++ann.no_referrer_count;
    if (const auto dnt = txn.request.headers.get("DNT");
        dnt && *dnt == "1") {
      ann.do_not_track = true;
    }
    if (const auto xf = txn.request.headers.get("X-Flash-Version")) {
      ann.x_flash_version_set = true;
      ann.x_flash_version = std::string(*xf);
    }

    // Response edge: server -> victim.
    if (txn.response) {
      const auto& res = *txn.response;
      const std::uint64_t res_ts = res.ts_micros ? res.ts_micros : req_ts;
      last_ts = std::max(last_ts, res_ts);
      WcgEdge resp;
      resp.kind = EdgeKind::kResponse;
      resp.stage = stage;
      resp.ts_micros = res_ts;
      resp.response_code = res.status_code;
      resp.payload_type = dm::http::classify_payload(
          res.content_type().value_or(""), txn.request.uri);
      resp.payload_size = res.body.size();
      wcg.add_edge(server_id, victim_id, resp);

      const int cls = res.status_code / 100;
      if (cls >= 1 && cls <= 5) ++ann.response_class_counts[cls - 1];
      if (resp.payload_type != PayloadType::kNone && !res.body.empty()) {
        ++ann.payload_count;
        ann.total_payload_bytes += resp.payload_size;
        ++ann.payload_type_counts[resp.payload_type];
        ++server.payloads_served[resp.payload_type];
      }
      last_response_ts[txn.server_host] = res_ts;

      // Explicit redirect evidence: Location header / meta / iframe / JS,
      // including the de-obfuscated layers.
      for (const auto& evidence : dm::http::mine_redirects(txn, options_.miner)) {
        if (options_.trusted.is_trusted(evidence.target_host)) continue;
        add_redirect_edge(txn.server_host, evidence.target_host, res_ts);
      }
    }

    // Referer-chain redirect: the referrer names another conversation host
    // and this request followed that host's response almost immediately.
    if (const auto ref = txn.request.referrer();
        ref && options_.referrer_timing_redirects) {
      const std::string ref_host = referrer_host(*ref);
      if (!ref_host.empty() && ref_host != txn.server_host &&
          conversation_hosts.find(ref_host) != conversation_hosts.end()) {
        const auto it = last_response_ts.find(ref_host);
        if (it != last_response_ts.end() && req_ts >= it->second) {
          const double delay_s =
              static_cast<double>(req_ts - it->second) / 1e6;
          if (delay_s <= options_.referrer_redirect_max_delay_s &&
              !wcg.graph().has_edge(wcg.find_host(ref_host), server_id)) {
            add_redirect_edge(ref_host, txn.server_host, req_ts);
          }
        }
      }
    }
  }

  // ---- Node typing -------------------------------------------------------
  for (dm::graph::NodeId id = 0; id < wcg.node_count(); ++id) {
    WcgNode& node = wcg.node(id);
    if (node.type == NodeType::kVictim || node.type == NodeType::kOrigin) continue;
    if (timeline.exploit_hosts.find(node.host) != timeline.exploit_hosts.end()) {
      node.type = NodeType::kMalicious;
    } else if (node.uris.empty() &&
               redirect_hosts.find(node.host) != redirect_hosts.end()) {
      node.type = NodeType::kIntermediary;  // only chains, never queried
    }
  }

  // ---- Graph-level annotations --------------------------------------------
  ann.transaction_count = static_cast<std::uint32_t>(transactions_.size());
  ann.total_redirects = redirect_edges;
  ann.longest_redirect_chain = longest_chain(redirect_adj);
  ann.cross_domain_redirects = cross_domain;

  std::set<std::string> tlds;
  for (const auto& host : redirect_hosts) {
    const auto tld = top_level_domain(host);
    if (!tld.empty()) tlds.insert(std::string(tld));
  }
  ann.tld_diversity = static_cast<std::uint32_t>(tlds.size());

  if (redirect_ts.size() >= 2) {
    std::sort(redirect_ts.begin(), redirect_ts.end());
    double total = 0.0;
    for (std::size_t i = 1; i < redirect_ts.size(); ++i) {
      total += static_cast<double>(redirect_ts[i] - redirect_ts[i - 1]) / 1e6;
    }
    ann.avg_redirect_delay_s = total / static_cast<double>(redirect_ts.size() - 1);
  }

  ann.duration_s = static_cast<double>(last_ts - first_ts) / 1e6;
  if (txn_times.size() >= 2) {
    std::sort(txn_times.begin(), txn_times.end());
    double total = 0.0;
    for (std::size_t i = 1; i < txn_times.size(); ++i) {
      total += static_cast<double>(txn_times[i] - txn_times[i - 1]) / 1e6;
    }
    ann.avg_inter_transaction_s = total / static_cast<double>(txn_times.size() - 1);
  }

  ann.has_download_stage = timeline.first_exploit_ts != 0;
  for (const auto& edge : wcg.edges()) {
    if (edge.stage == Stage::kPostDownload) {
      ann.has_post_download_stage = true;
      break;
    }
  }
  return wcg;
}

Wcg build_wcg(std::vector<dm::http::HttpTransaction> transactions,
              BuilderOptions options) {
  WcgBuilder builder(std::move(options));
  for (auto& txn : transactions) builder.add(std::move(txn));
  return builder.build();
}

}  // namespace dm::core

#include "core/whitelist.h"

#include "util/strings.h"

namespace dm::core {

TrustedVendors TrustedVendors::default_list() {
  TrustedVendors list;
  for (const char* domain : {
           "windowsupdate.com", "update.microsoft.com", "microsoft.com",
           "apple.com", "swcdn.apple.com", "adobe.com", "mozilla.org",
           "google.com", "gvt1.com", "chrome.com", "canonical.com",
           "ubuntu.com", "debian.org", "fedoraproject.org", "centos.org",
           "npmjs.org", "pypi.org", "rubygems.org", "maven.org",
           "github.com", "githubusercontent.com", "sourceforge.net",
           "oracle.com", "java.com", "steampowered.com", "steamcontent.com",
       }) {
    list.add(domain);
  }
  return list;
}

void TrustedVendors::add(std::string registrable_domain) {
  domains_.insert(dm::util::to_lower(registrable_domain));
}

bool TrustedVendors::is_trusted(std::string_view host) const noexcept {
  const std::string lower = dm::util::to_lower(host);
  std::string_view view = lower;
  // Check the host itself and every parent suffix at a label boundary.
  while (true) {
    if (domains_.find(view) != domains_.end()) return true;
    const auto dot = view.find('.');
    if (dot == std::string_view::npos) return false;
    view = view.substr(dot + 1);
  }
}

}  // namespace dm::core

// Web Conversation Graph (WCG) — the paper's central abstraction (§III-A).
//
// A WCG is a directed graph capturing the interaction between a victim host
// and remote hosts.  Nodes are unique hosts (victim, remote/malicious,
// redirect intermediaries, plus a synthetic "origin" node naming the
// enticement source).  Edges are requests, responses, and redirect
// relations, annotated with the attributes of §III-C (timestamp,
// conversation stage, HTTP method, URI length, response code, payload type
// and size).  Graph-level annotations aggregate what the 37 features need.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "graph/digraph.h"
#include "http/classify.h"

namespace dm::core {

enum class NodeType {
  kVictim,        // the client being watched
  kRemote,        // any remote host
  kMalicious,     // at least one exploit payload downloaded from it
  kIntermediary,  // participates only in redirect chaining
  kOrigin,        // synthetic enticement-source node ("bing.com" / "empty")
};

std::string_view node_type_name(NodeType type) noexcept;

/// Conversation stage of an edge (§III-C "Conversation stage"):
/// 0 = pre-download, 1 = payload download, 2 = post-download.
enum class Stage : int { kPreDownload = 0, kDownload = 1, kPostDownload = 2 };

enum class EdgeKind { kRequest, kResponse, kRedirect };

std::string_view edge_kind_name(EdgeKind kind) noexcept;

struct WcgNode {
  std::string host;  // lower-case hostname or IP literal; origin node uses
                     // the referrer name or "empty"
  std::string ip;    // dotted quad when known
  NodeType type = NodeType::kRemote;
  std::set<std::string> uris;  // unique URIs addressed at this host
  /// Payload-type counts for payloads originating from this node.
  std::map<dm::http::PayloadType, std::uint32_t> payloads_served;
};

struct WcgEdge {
  EdgeKind kind = EdgeKind::kRequest;
  Stage stage = Stage::kPreDownload;
  std::uint64_t ts_micros = 0;
  // Request edges:
  std::string method;
  std::uint32_t uri_length = 0;
  bool has_referrer = false;
  // Response edges:
  int response_code = 0;
  dm::http::PayloadType payload_type = dm::http::PayloadType::kNone;
  std::uint64_t payload_size = 0;
};

/// Graph-level annotations (§III-C "Graph-Level").
struct WcgAnnotations {
  bool origin_known = false;         // f1
  bool do_not_track = false;
  bool x_flash_version_set = false;  // f2
  std::string x_flash_version;

  std::uint32_t get_count = 0;       // f26
  std::uint32_t post_count = 0;      // f27
  std::uint32_t other_method_count = 0;  // f28
  std::array<std::uint32_t, 5> response_class_counts{};  // [0]=10x .. [4]=50x

  std::uint32_t referrer_count = 0;     // f34: requests with Referer set
  std::uint32_t no_referrer_count = 0;  // f35

  std::uint32_t total_redirects = 0;        // all redirect edges (sum rule §III-D)
  std::uint32_t longest_redirect_chain = 0; // unique hops
  std::uint32_t cross_domain_redirects = 0;
  std::uint32_t tld_diversity = 0;          // unique TLDs in redirect chains
  double avg_redirect_delay_s = 0.0;        // between successive redirects

  std::uint64_t total_payload_bytes = 0;
  std::uint32_t payload_count = 0;
  std::map<dm::http::PayloadType, std::uint32_t> payload_type_counts;

  double duration_s = 0.0;              // conversation duration
  double avg_inter_transaction_s = 0.0; // f37
  std::uint32_t transaction_count = 0;

  bool has_download_stage = false;
  bool has_post_download_stage = false;
};

/// The annotated conversation graph.  Structure lives in a Digraph; node and
/// edge attributes are parallel side tables indexed by the graph's ids.
class Wcg {
 public:
  /// Adds a node for `host`, or returns the existing one.
  dm::graph::NodeId add_host(const std::string& host);

  /// Adds an annotated edge.
  dm::graph::EdgeId add_edge(dm::graph::NodeId src, dm::graph::NodeId dst,
                             WcgEdge attributes);

  /// Records `uri` against a node, keeping the graph-wide unique-URI count
  /// and total URI length in sync.  This is the only sanctioned way to grow
  /// a node's `uris` set — inserting into WcgNode::uris directly desyncs
  /// total_unique_uris()/total_uri_length().  Returns true if the URI was
  /// new for that node.
  bool add_uri(dm::graph::NodeId id, const std::string& uri);

  /// Looks up a host's node; kInvalidNode when absent.
  dm::graph::NodeId find_host(const std::string& host) const noexcept;

  const dm::graph::Digraph& graph() const noexcept { return graph_; }
  std::size_t node_count() const noexcept { return graph_.node_count(); }
  std::size_t edge_count() const noexcept { return graph_.edge_count(); }

  WcgNode& node(dm::graph::NodeId id) { return nodes_.at(id); }
  const WcgNode& node(dm::graph::NodeId id) const { return nodes_.at(id); }
  WcgEdge& edge(dm::graph::EdgeId id) { return edges_.at(id); }
  const WcgEdge& edge(dm::graph::EdgeId id) const { return edges_.at(id); }
  const std::vector<WcgNode>& nodes() const noexcept { return nodes_; }
  const std::vector<WcgEdge>& edges() const noexcept { return edges_; }

  WcgAnnotations& annotations() noexcept { return annotations_; }
  const WcgAnnotations& annotations() const noexcept { return annotations_; }

  /// The victim node (set by the builder); kInvalidNode if never set.
  dm::graph::NodeId victim() const noexcept { return victim_; }
  void set_victim(dm::graph::NodeId v) noexcept { victim_ = v; }

  /// The synthetic origin node, if one was added.
  dm::graph::NodeId origin() const noexcept { return origin_; }
  void set_origin(dm::graph::NodeId v) noexcept { origin_ = v; }

  /// Total unique URIs across all nodes.  O(1): maintained by add_uri().
  std::size_t total_unique_uris() const noexcept { return total_uris_; }

  /// Sum of the lengths of every unique URI (feature f6's numerator).
  /// O(1): maintained by add_uri().
  std::uint64_t total_uri_length() const noexcept { return total_uri_length_; }

  /// Monotone counter bumped by every *structural* mutation — a new node or
  /// a new edge.  Attribute updates (URIs, payload tallies, node typing) do
  /// not bump it.  The graph features f7–f25 depend only on structure, so
  /// this is the invalidation key for FeatureCache: equal versions on the
  /// same live Wcg object imply bit-identical graph metrics.
  std::uint64_t topology_version() const noexcept { return topology_version_; }

  /// Forces the version strictly above `version`.  Used by WcgBuilder when
  /// a full re-fold replaces the graph in place: the rebuilt graph's
  /// naturally-counted version could coincide with one a cache already
  /// observed on the old structure, so the builder carries the old
  /// generation's version forward to keep the key monotone.
  void ensure_topology_version_above(std::uint64_t version) noexcept {
    if (topology_version_ <= version) topology_version_ = version + 1;
  }

 private:
  dm::graph::Digraph graph_;
  std::vector<WcgNode> nodes_;
  std::vector<WcgEdge> edges_;
  std::map<std::string, dm::graph::NodeId> host_index_;
  WcgAnnotations annotations_;
  dm::graph::NodeId victim_ = dm::graph::kInvalidNode;
  dm::graph::NodeId origin_ = dm::graph::kInvalidNode;
  std::size_t total_uris_ = 0;
  std::uint64_t total_uri_length_ = 0;
  std::uint64_t topology_version_ = 0;
};

}  // namespace dm::core

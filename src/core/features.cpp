#include "core/features.h"

#include <numeric>

namespace dm::core {

const std::array<std::string, kNumFeatures>& feature_names() {
  static const std::array<std::string, kNumFeatures> kNames = {
      // HLFs
      "Origin",                      // f1
      "X-Flash-Version",             // f2
      "WCG-Size",                    // f3
      "Conversation-Length",         // f4
      "Avg-URIs-per-Host",           // f5
      "Average-URI-Length",          // f6
      // GFs
      "Order",                       // f7
      "Size",                        // f8
      "Degree",                      // f9
      "Density",                     // f10
      "Volume",                      // f11
      "Diameter",                    // f12
      "Avg-In-Degree",               // f13
      "Avg-Out-Degree",              // f14
      "Reciprocity",                 // f15
      "Avg-Degree-Centrality",       // f16
      "Avg-Closeness-Centrality",    // f17
      "Avg-Betweenness-Centrality",  // f18
      "Avg-Load-Centrality",         // f19
      "Avg-Node-Centrality",         // f20
      "Avg-Clustering-Coefficient",  // f21
      "Avg-Neighbor-Degree",         // f22
      "Avg-Degree-Connectivity",     // f23
      "Avg-K-Nearest-Neighbors",     // f24
      "Avg-PageRank",                // f25
      // HFs
      "GETs",                        // f26
      "POSTs",                       // f27
      "Other-Methods",               // f28
      "HTTP-10Xs",                   // f29
      "HTTP-20Xs",                   // f30
      "HTTP-30Xs",                   // f31
      "HTTP-40Xs",                   // f32
      "HTTP-50Xs",                   // f33
      "Referrer-Ctrs",               // f34
      "No-Referrer-Ctrs",            // f35
      // TFs
      "Duration",                    // f36
      "Avg-Inter-Transact-Time",     // f37
  };
  return kNames;
}

FeatureGroup feature_group(std::size_t index) noexcept {
  if (index < 6) return FeatureGroup::kHighLevel;
  if (index < 25) return FeatureGroup::kGraph;
  if (index < 35) return FeatureGroup::kHeader;
  return FeatureGroup::kTemporal;
}

std::vector<std::size_t> feature_indices(FeatureGroup group) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < kNumFeatures; ++i) {
    if (feature_group(i) == group) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> feature_indices_excluding(FeatureGroup group) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < kNumFeatures; ++i) {
    if (feature_group(i) != group) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> all_feature_indices() {
  std::vector<std::size_t> out(kNumFeatures);
  std::iota(out.begin(), out.end(), std::size_t{0});
  return out;
}

std::vector<double> extract_features(const Wcg& wcg,
                                     const FeatureExtractorOptions& options) {
  return extract_features(wcg, options, nullptr);
}

std::vector<double> extract_features(const Wcg& wcg,
                                     const FeatureExtractorOptions& options,
                                     FeatureCache* cache) {
  const auto& ann = wcg.annotations();

  // Graph features are a pure function of the structure, so an unchanged
  // topology version on the same live graph guarantees identical metrics.
  dm::graph::GraphMetrics local_metrics;
  const dm::graph::GraphMetrics* metrics_ptr = nullptr;
  if (cache != nullptr) {
    if (cache->wcg == &wcg &&
        cache->topology_version == wcg.topology_version()) {
      ++cache->hits;
    } else {
      cache->metrics = dm::graph::compute_metrics(wcg.graph(), options.metrics);
      cache->wcg = &wcg;
      cache->topology_version = wcg.topology_version();
      ++cache->misses;
    }
    metrics_ptr = &cache->metrics;
  } else {
    local_metrics = dm::graph::compute_metrics(wcg.graph(), options.metrics);
    metrics_ptr = &local_metrics;
  }
  const dm::graph::GraphMetrics& metrics = *metrics_ptr;

  // f4: unique hosts participating in the conversation (exclude the
  // synthetic origin node).
  const double conversation_length = static_cast<double>(
      wcg.node_count() - (wcg.origin() != dm::graph::kInvalidNode ? 1 : 0));

  const std::size_t total_uris = wcg.total_unique_uris();
  const double hosts = std::max<double>(1.0, conversation_length);
  const double avg_uris_per_host = static_cast<double>(total_uris) / hosts;

  // Exact under 2^53: the Wcg maintains the integer total as URIs are
  // added, so this matches the old per-URI double accumulation bitwise.
  const double total_uri_length =
      static_cast<double>(wcg.total_uri_length());
  const double avg_uri_length =
      total_uris == 0 ? 0.0 : total_uri_length / static_cast<double>(total_uris);

  std::vector<double> f;
  f.reserve(kNumFeatures);
  // HLFs
  f.push_back(ann.origin_known ? 1.0 : 0.0);                   // f1
  f.push_back(ann.x_flash_version_set ? 1.0 : 0.0);            // f2
  f.push_back(static_cast<double>(wcg.edge_count()));          // f3 WCG-Size
  f.push_back(conversation_length);                            // f4
  f.push_back(avg_uris_per_host);                              // f5
  f.push_back(avg_uri_length);                                 // f6
  // GFs
  f.push_back(static_cast<double>(metrics.order));             // f7
  f.push_back(static_cast<double>(metrics.size));              // f8
  f.push_back(metrics.avg_degree);                             // f9
  f.push_back(metrics.density);                                // f10
  f.push_back(static_cast<double>(metrics.volume));            // f11
  f.push_back(static_cast<double>(metrics.diameter));          // f12
  f.push_back(metrics.avg_in_degree);                          // f13
  f.push_back(metrics.avg_out_degree);                         // f14
  f.push_back(metrics.reciprocity);                            // f15
  f.push_back(metrics.avg_degree_centrality);                  // f16
  f.push_back(metrics.avg_closeness_centrality);               // f17
  f.push_back(metrics.avg_betweenness_centrality);             // f18
  f.push_back(metrics.avg_load_centrality);                    // f19
  f.push_back(metrics.avg_node_connectivity);                  // f20
  f.push_back(metrics.avg_clustering_coefficient);             // f21
  f.push_back(metrics.avg_neighbor_degree);                    // f22
  f.push_back(metrics.avg_degree_connectivity);                // f23
  f.push_back(metrics.avg_k_nearest_neighbors);                // f24
  f.push_back(metrics.avg_pagerank);                           // f25
  // HFs
  f.push_back(static_cast<double>(ann.get_count));             // f26
  f.push_back(static_cast<double>(ann.post_count));            // f27
  f.push_back(static_cast<double>(ann.other_method_count));    // f28
  f.push_back(static_cast<double>(ann.response_class_counts[0]));  // f29
  f.push_back(static_cast<double>(ann.response_class_counts[1]));  // f30
  f.push_back(static_cast<double>(ann.response_class_counts[2]));  // f31
  f.push_back(static_cast<double>(ann.response_class_counts[3]));  // f32
  f.push_back(static_cast<double>(ann.response_class_counts[4]));  // f33
  f.push_back(static_cast<double>(ann.referrer_count));        // f34
  f.push_back(static_cast<double>(ann.no_referrer_count));     // f35
  // TFs: f36 is "average duration to access a single URI in a WCG session".
  const double per_uri_duration =
      total_uris == 0 ? 0.0 : ann.duration_s / static_cast<double>(total_uris);
  f.push_back(per_uri_duration);                               // f36
  f.push_back(ann.avg_inter_transaction_s);                    // f37
  return f;
}

}  // namespace dm::core

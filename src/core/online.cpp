#include "core/online.h"

#include <algorithm>

#include "http/classify.h"
#include "http/redirect_miner.h"
#include "util/rate_limit.h"
#include "util/strings.h"

namespace dm::core {
namespace {

using dm::http::HttpTransaction;
using dm::http::PayloadType;

/// Host named by the transaction's referrer, if any.
std::string referrer_host_of(const HttpTransaction& txn) {
  if (const auto ref = txn.request.referrer()) {
    return dm::http::host_of_url(*ref);
  }
  return {};
}

/// Whether a transaction belongs to the potential-infection scope: it
/// touches an implicated host as server or referrer.  The single
/// relatedness rule shared by the from-scratch rebuild and the incremental
/// scope maintenance — identical filters are what make the two modes'
/// scoped WCGs (and hence alerts) bit-identical.
bool clue_related(const HttpTransaction& txn,
                  const std::set<std::string>& suspicious_hosts) {
  if (suspicious_hosts.count(txn.server_host) > 0) return true;
  if (const auto ref = txn.request.referrer()) {
    const std::string host = dm::http::host_of_url(*ref);
    return !host.empty() && suspicious_hosts.count(host) > 0;
  }
  return false;
}

}  // namespace

OnlineDetector::OnlineDetector(Detector detector, OnlineOptions options)
    : OnlineDetector(std::make_shared<const Detector>(std::move(detector)),
                     std::move(options)) {}

OnlineDetector::OnlineDetector(std::shared_ptr<const Detector> detector,
                               OnlineOptions options)
    : detector_(std::move(detector)),
      options_(std::move(options)),
      timer_(options_.clock),
      obs_(options_.metrics != nullptr
               ? dm::obs::PipelineMetrics::of(*options_.metrics)
               : dm::obs::pipeline_metrics()) {}

bool OnlineDetector::joinable(const Session& session,
                              std::uint64_t ts_micros) const noexcept {
  if (ts_micros < session.last_activity) return true;  // clock skew: keep
  const double idle_s =
      static_cast<double>(ts_micros - session.last_activity) / 1e6;
  return idle_s <= options_.session_idle_timeout_s;
}

OnlineDetector::Session& OnlineDetector::find_or_create_session(
    const HttpTransaction& txn, const std::optional<std::string>& sid) {
  // 1. Session-ID match (the primary grouping rule, §V-B).  A session idle
  //    past the timeout is terminated — "the WCG stops growing" — so even a
  //    matching id opens a fresh session rather than resurrecting it.
  if (sid) {
    for (auto& [key, session] : sessions_) {
      if (session.client == txn.client_host && session.session_id == sid &&
          joinable(session, txn.request.ts_micros)) {
        return session;
      }
    }
  }
  // 2. Referrer/timestamp heuristic: join the most recent session of this
  //    client that already involves the server or referrer host and whose
  //    last activity is within the join gap.
  const std::string ref_host = referrer_host_of(txn);
  Session* best = nullptr;
  for (auto& [key, session] : sessions_) {
    if (session.client != txn.client_host || session.alerted) continue;
    if (!joinable(session, txn.request.ts_micros)) continue;
    const double gap_s =
        static_cast<double>(txn.request.ts_micros - session.last_activity) / 1e6;
    if (txn.request.ts_micros < session.last_activity ||
        gap_s <= options_.session_join_gap_s) {
      const bool host_link =
          session.hosts.count(txn.server_host) > 0 ||
          (!ref_host.empty() && session.hosts.count(ref_host) > 0);
      if (host_link && (!best || session.last_activity > best->last_activity)) {
        best = &session;
      }
    }
  }
  if (best) return *best;

  // 3. New session.
  Session session;
  session.key =
      txn.client_host + "#" + std::to_string(next_session_seq_[txn.client_host]++);
  session.client = txn.client_host;
  session.builder = WcgBuilder(options_.builder);
  session.scoped = WcgBuilder(options_.builder);
  ++stats_.sessions_opened;
  obs_.detect_active_sessions.add(1);
  auto [it, inserted] = sessions_.emplace(session.key, std::move(session));
  return it->second;
}

std::optional<Alert> OnlineDetector::observe(HttpTransaction txn) {
  ++stats_.transactions_seen;
  obs_.detect_observed.add(1);
  // RAII: records the whole observe() path on every return below.
  auto observe_span = timer_.span(obs_.stage_observe_ns);
  const std::uint64_t now = txn.request.ts_micros;

  if (options_.builder.trusted.is_trusted(txn.server_host)) {
    ++stats_.transactions_weeded;
    return std::nullopt;
  }

  const auto sid = dm::http::extract_session_id(txn);
  Session& session = find_or_create_session(txn, sid);
  if (session.alerted) return std::nullopt;  // terminated by an earlier alert

  if (!session.session_id && sid) session.session_id = sid;
  session.hosts.insert(txn.server_host);
  const std::string ref_host = referrer_host_of(txn);
  if (!ref_host.empty()) session.hosts.insert(ref_host);
  session.last_activity = std::max(session.last_activity, now);

  // --- Redirect-run tracking for clue inference --------------------------
  bool is_redirect_hop = false;
  PayloadType payload = PayloadType::kNone;
  if (txn.response) {
    payload = dm::http::classify_payload(
        txn.response->content_type().value_or(""), txn.request.uri);
    if (txn.response->is_redirect()) {
      is_redirect_hop = true;
    } else {
      const auto mined = dm::http::mine_redirects(txn, options_.builder.miner);
      is_redirect_hop = !mined.empty();
    }
  }

  session.builder.add(txn);
  if (!session.clue_fired) session.hosts_before_clue.insert(txn.server_host);

  std::optional<Alert> alert;
  const bool risky_download =
      dm::http::is_download_type(payload) && txn.response &&
      txn.response->status_code == 200;

  if (is_redirect_hop) {
    ++session.current_redirect_run;
    session.longest_redirect_run =
        std::max(session.longest_redirect_run, session.current_redirect_run);
    // Chain members and their targets are implicated hosts.
    session.suspicious_hosts.insert(txn.server_host);
    if (txn.response) {
      for (const auto& evidence :
           dm::http::mine_redirects(txn, options_.builder.miner)) {
        session.suspicious_hosts.insert(evidence.target_host);
      }
    }
  } else {
    // Clue check happens on the first non-redirect after a chain.
    if (risky_download &&
        session.longest_redirect_run >= options_.redirect_chain_threshold) {
      session.suspicious_hosts.insert(txn.server_host);
      if (!session.clue_fired) {
        session.clue_fired = true;
        session.clue_host = txn.server_host;
        session.clue_payload = payload;
        ++stats_.clues_fired;
        obs_.detect_clues.add(1);
        // Clue-to-verdict starts now; recorded at the first completed score.
        if (dm::obs::enabled()) session.clue_fired_ns = timer_.now();
      }
    }
    session.current_redirect_run = 0;
  }

  if (session.clue_fired) {
    // Post-clue expansion: requests referred from an implicated host join
    // the potential-infection WCG, as do call-back candidates — POSTs to
    // hosts never seen before the clue (§II-D's never-seen C&C endpoints).
    if (!ref_host.empty() && session.suspicious_hosts.count(ref_host)) {
      session.suspicious_hosts.insert(txn.server_host);
    }
    if (txn.request.method == "POST" &&
        session.hosts_before_clue.count(txn.server_host) == 0) {
      session.suspicious_hosts.insert(txn.server_host);
    }
  }

  // Keep the scoped (clue-related) builder in lockstep with the stream so
  // the first post-clue verdict only folds a delta, never the whole
  // session history.
  if (options_.scoring == ScoringMode::kIncremental) maintain_scope(session);

  // --- Classification -----------------------------------------------------
  // Once a clue has fired, every update re-extracts features and queries
  // the classifier (§V-B "each update ... triggers feature extraction and
  // invoking of the ERF classifier").
  if (session.clue_fired) {
    alert = classify_session(session, txn, payload);
  }
  expire_idle(now);
  return alert;
}

Wcg OnlineDetector::potential_infection_wcg(const Session& session) const {
  WcgBuilder scoped(options_.builder);
  for (const auto& txn : session.builder.transactions()) {
    if (clue_related(txn, session.suspicious_hosts)) scoped.add(txn);
  }
  return scoped.build();
}

void OnlineDetector::maintain_scope(Session& session) {
  const auto& txns = session.builder.transactions();
  if (session.scope_suspicious_seen != session.suspicious_hosts.size()) {
    // A host became suspicious retroactively: transactions already rejected
    // may be related now.  Refilter from the start — the only O(n) event,
    // and it happens at most once per new implicated host.
    session.scoped = WcgBuilder(options_.builder);
    session.scope_consumed = 0;
    session.scope_suspicious_seen = session.suspicious_hosts.size();
    // The rebuilt scoped WCG lives at the same address with a restarted
    // topology version, so the (pointer, version) cache key cannot detect
    // the swap on its own.
    session.feature_cache.invalidate();
    session.scope_eval_valid = false;
    ++stats_.scope_rescans;
  }
  for (; session.scope_consumed < txns.size(); ++session.scope_consumed) {
    const auto& txn = txns[session.scope_consumed];
    if (clue_related(txn, session.suspicious_hosts)) session.scoped.add(txn);
  }
}

std::optional<Alert> OnlineDetector::classify_session(Session& session,
                                                      const HttpTransaction& txn,
                                                      PayloadType trigger) {
  const bool incremental = options_.scoring == ScoringMode::kIncremental;
  auto verdict_span = timer_.span(obs_.stage_verdict_ns);

  // Short-circuit: the scoped WCG is a pure function of the scoped
  // transaction list, so if nothing joined the scope since the last
  // completed evaluation the verdict cannot change — and a changed verdict
  // below threshold is the only way this path continues (at or above it
  // the session was terminated).  Skipping is therefore alert-equivalent
  // to re-scoring.  Failed queries clear scope_eval_valid, so a faulting
  // classifier is retried on every update, never silently skipped.
  if (incremental && session.scope_eval_valid &&
      session.scoped.transaction_count() == session.scope_eval_txns) {
    ++stats_.queries_skipped_unchanged;
    verdict_span.cancel();
    return std::nullopt;
  }

  auto wcg_span = timer_.span(obs_.stage_wcg_build_ns);
  Wcg rebuilt;  // from-scratch mode only
  const Wcg* wcg = nullptr;
  if (incremental) {
    wcg = &session.scoped.current();  // folds the pending delta
  } else {
    rebuilt = potential_infection_wcg(session);
    wcg = &rebuilt;
  }
  wcg_span.stop();

  const auto mark_evaluated = [&] {
    session.scope_eval_txns = session.scoped.transaction_count();
    session.scope_eval_valid = true;
  };
  if (wcg->node_count() < 2) {
    if (incremental) mark_evaluated();  // deterministic outcome: no query
    verdict_span.cancel();  // nothing was classified
    return std::nullopt;
  }
  ++stats_.classifier_queries;
  // Failure isolation: a throwing classifier (or injected fault) quarantines
  // this one query — the session stays live and is re-scored on its next
  // update, so a transient failure costs one data point, not the stream.
  double score = 0.0;
  try {
    if (options_.classifier_fault_hook) options_.classifier_fault_hook(txn);
    if (options_.scorer) {
      // Serving seam: the installed scorer replaces the bound detector (it
      // may swap models between queries).  The cache stays valid across
      // swaps — graph-metric extraction is model-independent.
      score = options_.scorer->score(
          *wcg, incremental ? &session.feature_cache : nullptr);
    } else {
      score = incremental ? detector_->score(*wcg, &session.feature_cache)
                          : detector_->score_from_scratch(*wcg);
    }
  } catch (const std::exception& e) {
    ++stats_.classifier_failures;
    session.scope_eval_valid = false;  // retry on the next update
    dm::util::log_every_n(classifier_failure_gate_, dm::util::LogLevel::kWarn,
                          "online: classifier failure quarantined: ", e.what());
    return std::nullopt;
  } catch (...) {
    ++stats_.classifier_failures;
    session.scope_eval_valid = false;  // retry on the next update
    dm::util::log_every_n(classifier_failure_gate_, dm::util::LogLevel::kWarn,
                          "online: classifier failure quarantined");
    return std::nullopt;
  }
  if (incremental) mark_evaluated();
  obs_.detect_verdicts.add(1);
  // Headline metric: clue fired -> first completed ERF verdict, once per
  // clue-bearing WCG ("operates as traffic flows", §V).
  if (!session.clue_latency_recorded && session.clue_fired_ns != 0) {
    session.clue_latency_recorded = true;
    const std::uint64_t now_ns = timer_.now();
    obs_.detect_clue_to_verdict_ns.record(
        now_ns >= session.clue_fired_ns ? now_ns - session.clue_fired_ns : 0);
  }
  // Feed the serving layer's retraining loop: every completed verdict is an
  // observation of (WCG, label-as-classified).
  const bool infection = score >= options_.decision_threshold;
  if (options_.verdict_tap) {
    options_.verdict_tap(*wcg, score, infection, txn.request.ts_micros);
  }
  if (!infection) return std::nullopt;

  Alert alert;
  alert.ts_micros = txn.request.ts_micros;
  alert.client = session.client;
  alert.session_key = session.key;
  alert.score = score;
  // Attribute the alert to the clue download (the paper reports alerts as
  // issued "right after a download of" the offending payload), not to
  // whichever later update crossed the threshold.
  alert.trigger_host = session.clue_host.empty() ? txn.server_host : session.clue_host;
  alert.trigger_payload = session.clue_payload != dm::http::PayloadType::kNone
                              ? session.clue_payload
                              : trigger;
  alert.wcg_order = wcg->node_count();
  alert.wcg_size = wcg->edge_count();
  session.alerted = true;  // paper: the corresponding session is terminated
  ++stats_.alerts;
  obs_.detect_alerts.add(1);
  alerts_.push_back(alert);
  return alert;
}

void OnlineDetector::expire_idle(std::uint64_t now_micros) {
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    const auto& session = it->second;
    const double idle_s =
        now_micros >= session.last_activity
            ? static_cast<double>(now_micros - session.last_activity) / 1e6
            : 0.0;
    if (session.alerted || idle_s > options_.session_idle_timeout_s) {
      ++stats_.sessions_expired;
      obs_.detect_active_sessions.add(-1);
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace dm::core

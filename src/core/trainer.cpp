#include "core/trainer.h"

#include "runtime/worker_pool.h"

namespace dm::core {
namespace {

/// Extracts one collection's feature vectors into `out` (pre-sized,
/// slot i <- wcgs[i]), inline or fanned over `pool`.
void extract_collection(std::span<const Wcg> wcgs,
                        const FeatureExtractorOptions& options,
                        dm::runtime::WorkerPool* pool,
                        const dm::obs::StageTimer& timer,
                        dm::ml::TrainerMetrics& obs,
                        std::vector<std::vector<double>>& out) {
  out.resize(wcgs.size());
  for (std::size_t i = 0; i < wcgs.size(); ++i) {
    // Pool tasks outlive this frame (the caller drains after submitting
    // both collections), so the task captures the span by value and only
    // caller-owned state by reference — nothing local to this function.
    auto task = [wcgs, &options, &timer, &obs, &out, i] {
      auto span = timer.span(obs.extract_ns);
      out[i] = extract_features(wcgs[i], options);
      span.stop();
      obs.wcgs_extracted.add(1);
    };
    if (pool != nullptr) {
      pool->submit(std::move(task));
    } else {
      task();
    }
  }
}

}  // namespace

dm::ml::Dataset dataset_from_wcgs(std::span<const Wcg> infections,
                                  std::span<const Wcg> benign,
                                  const FeatureExtractorOptions& options,
                                  const dm::ml::TrainerOptions& trainer) {
  dm::ml::TrainerMetrics obs = dm::ml::trainer_metrics(trainer);
  const dm::obs::StageTimer timer(trainer.clock);

  // Feature vectors land in per-collection slots; rows are appended from
  // the slots afterwards, so the dataset is identical at any thread count.
  std::vector<std::vector<double>> infection_rows;
  std::vector<std::vector<double>> benign_rows;
  const std::size_t threads = dm::ml::resolve_trainer_threads(trainer.threads);
  if (threads <= 1 || infections.size() + benign.size() <= 1) {
    extract_collection(infections, options, nullptr, timer, obs, infection_rows);
    extract_collection(benign, options, nullptr, timer, obs, benign_rows);
  } else {
    dm::runtime::WorkerPool pool(
        {.workers = threads,
         .queue_capacity =
             std::max<std::size_t>(1, infections.size() + benign.size())});
    extract_collection(infections, options, &pool, timer, obs, infection_rows);
    extract_collection(benign, options, &pool, timer, obs, benign_rows);
    pool.drain();  // latch barrier: every slot written and visible
  }

  const auto& names = feature_names();
  dm::ml::Dataset data(std::vector<std::string>(names.begin(), names.end()));
  for (auto& row : infection_rows) {
    data.add_row(std::move(row), dm::ml::kInfection);
  }
  for (auto& row : benign_rows) {
    data.add_row(std::move(row), dm::ml::kBenign);
  }
  return data;
}

dm::ml::ForestOptions paper_forest_options(std::size_t num_features,
                                           std::uint64_t seed) {
  dm::ml::ForestOptions options;
  options.num_trees = 20;  // paper's best Nt
  options.features_per_split = dm::ml::default_features_per_split(num_features);
  options.combination = dm::ml::Combination::kProbabilityAveraging;
  options.seed = seed;
  return options;
}

dm::ml::RandomForest train_dynaminer(const dm::ml::Dataset& data,
                                     std::uint64_t seed,
                                     const dm::ml::TrainerOptions& trainer) {
  return dm::ml::train_forest_parallel(
      data, paper_forest_options(data.num_features(), seed), trainer);
}

}  // namespace dm::core

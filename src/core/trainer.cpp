#include "core/trainer.h"

namespace dm::core {

dm::ml::Dataset dataset_from_wcgs(std::span<const Wcg> infections,
                                  std::span<const Wcg> benign,
                                  const FeatureExtractorOptions& options) {
  const auto& names = feature_names();
  dm::ml::Dataset data(std::vector<std::string>(names.begin(), names.end()));
  for (const Wcg& wcg : infections) {
    data.add_row(extract_features(wcg, options), dm::ml::kInfection);
  }
  for (const Wcg& wcg : benign) {
    data.add_row(extract_features(wcg, options), dm::ml::kBenign);
  }
  return data;
}

dm::ml::ForestOptions paper_forest_options(std::size_t num_features,
                                           std::uint64_t seed) {
  dm::ml::ForestOptions options;
  options.num_trees = 20;  // paper's best Nt
  options.features_per_split = dm::ml::default_features_per_split(num_features);
  options.combination = dm::ml::Combination::kProbabilityAveraging;
  options.seed = seed;
  return options;
}

dm::ml::RandomForest train_dynaminer(const dm::ml::Dataset& data,
                                     std::uint64_t seed) {
  return dm::ml::RandomForest::train(
      data, paper_forest_options(data.num_features(), seed));
}

}  // namespace dm::core

// The 37 payload-agnostic features of Table II, extracted from an annotated
// WCG.  Order and names follow the paper:
//   f1-f6   High-Level Features (HLFs)
//   f7-f25  Graph Features (GFs)
//   f26-f35 Header Features (HFs)
//   f36-f37 Temporal Features (TFs)
#pragma once

#include <array>
#include <string>
#include <vector>

#include "core/wcg.h"
#include "graph/metrics.h"

namespace dm::core {

inline constexpr std::size_t kNumFeatures = 37;

enum class FeatureGroup { kHighLevel, kGraph, kHeader, kTemporal };

/// Canonical feature names, index i = f_{i+1} of Table II.
const std::array<std::string, kNumFeatures>& feature_names();

/// Group of feature index i (0-based).
FeatureGroup feature_group(std::size_t index) noexcept;

/// 0-based indices of every feature in a group; used by the Table III
/// ablation (GFs alone vs HLFs+HFs+TFs).
std::vector<std::size_t> feature_indices(FeatureGroup group);
std::vector<std::size_t> feature_indices_excluding(FeatureGroup group);
std::vector<std::size_t> all_feature_indices();

struct FeatureExtractorOptions {
  dm::graph::MetricsOptions metrics;
};

/// Memoizes the expensive part of feature extraction — the 19 graph
/// features (f7–f25), which cost a full metrics pass (betweenness, load,
/// closeness, PageRank, ...) but depend only on the graph's *structure*.
/// Keyed by (Wcg identity, topology version): attribute-only updates
/// (payload tallies, header counters, URIs, node retyping) leave the
/// version untouched and hit the cache; a new node or edge misses.
///
/// A cache is only meaningful against one live Wcg evolved in place (the
/// incremental builder's) and one MetricsOptions value; reuse across
/// different graphs is detected via the pointer key and simply misses.
struct FeatureCache {
  const Wcg* wcg = nullptr;
  std::uint64_t topology_version = 0;
  dm::graph::GraphMetrics metrics;
  // Diagnostics for tests/bench.
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;

  void invalidate() noexcept { wcg = nullptr; }
};

/// Extracts the full 37-dimensional feature vector from a WCG.
std::vector<double> extract_features(const Wcg& wcg,
                                     const FeatureExtractorOptions& options = {});

/// Cache-aware variant: identical output, but graph metrics are reused from
/// `cache` when the WCG's topology is unchanged since the previous call.
/// `cache` may be null (plain extraction).
std::vector<double> extract_features(const Wcg& wcg,
                                     const FeatureExtractorOptions& options,
                                     FeatureCache* cache);

}  // namespace dm::core

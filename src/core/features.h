// The 37 payload-agnostic features of Table II, extracted from an annotated
// WCG.  Order and names follow the paper:
//   f1-f6   High-Level Features (HLFs)
//   f7-f25  Graph Features (GFs)
//   f26-f35 Header Features (HFs)
//   f36-f37 Temporal Features (TFs)
#pragma once

#include <array>
#include <string>
#include <vector>

#include "core/wcg.h"
#include "graph/metrics.h"

namespace dm::core {

inline constexpr std::size_t kNumFeatures = 37;

enum class FeatureGroup { kHighLevel, kGraph, kHeader, kTemporal };

/// Canonical feature names, index i = f_{i+1} of Table II.
const std::array<std::string, kNumFeatures>& feature_names();

/// Group of feature index i (0-based).
FeatureGroup feature_group(std::size_t index) noexcept;

/// 0-based indices of every feature in a group; used by the Table III
/// ablation (GFs alone vs HLFs+HFs+TFs).
std::vector<std::size_t> feature_indices(FeatureGroup group);
std::vector<std::size_t> feature_indices_excluding(FeatureGroup group);
std::vector<std::size_t> all_feature_indices();

struct FeatureExtractorOptions {
  dm::graph::MetricsOptions metrics;
};

/// Extracts the full 37-dimensional feature vector from a WCG.
std::vector<double> extract_features(const Wcg& wcg,
                                     const FeatureExtractorOptions& options = {});

}  // namespace dm::core

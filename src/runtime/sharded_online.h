// Session-sharded parallel on-the-wire detection (§V-B at scale).
//
// The sequential core::OnlineDetector processes one transaction at a time
// and pays two O(total live sessions) scans per transaction (session lookup
// and idle expiry).  This engine partitions the stream by a *pure function
// of the transaction* — the client host — onto a fixed set of shards.  Each
// shard owns a disjoint set of sessions and runs a private OnlineDetector,
// so the hot path takes no locks and every per-transaction scan touches only
// the shard's own sessions.
//
// Why the client host is the shard key: §V-B groups transactions into
// sessions by session ID and by the referrer/timestamp heuristic, and BOTH
// rules only ever merge transactions of the same client.  Client-sharding is
// therefore the coarsest partition that can never split a session across
// shards — which is what makes the engine's output *identical* (as a set;
// the merge re-establishes time order) to the sequential engine on the same
// trace, at any shard count.  Hashing by session ID or referrer host would
// be finer but could place two transactions of one §V-B session on
// different shards, breaking that equivalence.
//
// Determinism also requires the per-shard detectors to behave as pure
// functions of their client subsequences; core::OnlineDetector guarantees
// this via per-client session keys and lazy idle-liveness (see online.h).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "core/online.h"
#include "obs/pipeline.h"
#include "runtime/mpmc_queue.h"
#include "runtime/stats.h"

namespace dm::runtime {

/// What the dispatcher does when a shard's queue is full.
enum class OverloadPolicy {
  /// Block until the worker frees a slot — lossless backpressure (default).
  kBlock,
  /// Pop and discard the oldest queued batch to make room for the new one:
  /// fresh traffic wins, stale buffered traffic is shed.  Right for live
  /// deployments where detection value decays with age.
  kShedOldest,
  /// Discard the incoming batch: buffered traffic wins, new arrivals are
  /// shed until the worker catches up.  Right when in-flight sessions must
  /// finish scoring.
  kShedNewest,
};

struct ShardedOptions {
  /// Number of shards (= worker threads); 0 -> hardware_concurrency.
  std::size_t num_shards = 0;
  /// Bounded depth of each shard's queue, in batches.  Full queue engages
  /// the overload policy — backpressure or shedding, never unbounded
  /// buffering under burst.
  std::size_t queue_capacity = 256;
  /// Transactions per dispatch batch.  Batching amortizes queue wakeups; a
  /// batch is flushed early whenever the stream ends or flush() is called,
  /// so it trades latency (bounded by batch_size transactions) for
  /// throughput.
  std::size_t batch_size = 64;
  /// Behaviour at a full shard queue; shed counts land in StatsSnapshot.
  OverloadPolicy overload = OverloadPolicy::kBlock;
  /// Options forwarded to every shard's core::OnlineDetector.
  dm::core::OnlineOptions online;
  /// Fault-injection seam: invoked (when set) by the shard worker for each
  /// transaction before the detector sees it, inside the worker's failure
  /// isolation.  A throw here is recorded exactly like a real detector
  /// failure; tests use it to prove workers survive mid-stream throws.
  std::function<void(const dm::http::HttpTransaction&)> observe_fault_hook;
  /// Serving seam: when set, invoked once per shard at construction; the
  /// result overrides online.scorer for that shard's detector.  This is how
  /// the model-serving layer (src/serve) gives every shard a *private*
  /// epoch-pinned view of the hot-swappable model — per-shard pins make the
  /// steady-state model read one atomic load, shared by nobody, while a
  /// background publish flips all shards to the new forest at their next
  /// query (see serve/model_handle.h).
  std::function<std::shared_ptr<dm::core::WcgScorer>(std::size_t shard)>
      scorer_factory;
};

/// Parallel drop-in for core::OnlineDetector over a time-ordered stream:
/// feed transactions with observe() from one dispatching thread, then
/// finish() and read the merged, time-ordered alert list.
class ShardedOnlineEngine {
 public:
  ShardedOnlineEngine(std::shared_ptr<const dm::core::Detector> detector,
                      ShardedOptions options = {});
  ~ShardedOnlineEngine();  // implies finish()

  ShardedOnlineEngine(const ShardedOnlineEngine&) = delete;
  ShardedOnlineEngine& operator=(const ShardedOnlineEngine&) = delete;

  /// Shard assignment: a pure function of the transaction (FNV-1a of the
  /// client host).  Exposed so tests can assert stability and so external
  /// dispatchers (e.g. NIC RSS-style steering) can pre-partition.
  static std::size_t shard_of(const dm::http::HttpTransaction& txn,
                              std::size_t num_shards) noexcept;

  /// Dispatches one transaction to its shard.  Call from a single thread
  /// (or externally serialized): per-client order must match stream order,
  /// which a single time-ordered dispatcher guarantees.  A full shard queue
  /// engages ShardedOptions::overload (block or shed).  Calling after
  /// finish() is a caller bug: the transaction is dropped, counted in
  /// StatsSnapshot::dropped_after_finish, and asserts in debug builds.
  void observe(dm::http::HttpTransaction txn);

  /// Pushes any partially-filled batches to their shards.
  void flush();

  /// Flushes, closes the queues, joins the workers.  Idempotent.  Alerts
  /// and stats are only meaningful after finish().
  void finish();

  std::size_t num_shards() const noexcept { return shards_.size(); }

  /// All shard alerts merged into one time-ordered stream
  /// (ts, session key) — requires finish().
  std::vector<dm::core::Alert> merged_alerts() const;

  /// Element-wise sum of the shard detectors' OnlineStats — requires
  /// finish().
  dm::core::OnlineStats aggregated_stats() const;

  /// Runtime counters.  Callable any time; the per-shard vectors are only
  /// populated after finish() (the shard detectors belong to the worker
  /// threads until then).
  StatsSnapshot runtime_stats() const;

 private:
  /// A dispatch unit: the transactions plus the clock stamp taken at
  /// enqueue, so the worker can record queue-wait latency
  /// (dm.runtime.queue_wait_ns) without a side table.
  struct Batch {
    std::vector<dm::http::HttpTransaction> txns;
    std::uint64_t enqueue_ns = 0;  // 0 when metrics were idle at dispatch
  };

  struct Shard {
    explicit Shard(std::shared_ptr<const dm::core::Detector> detector,
                   const ShardedOptions& options)
        : queue(options.queue_capacity),
          detector(std::move(detector), options.online) {}
    MpmcRingQueue<Batch> queue;
    dm::core::OnlineDetector detector;  // touched only by `thread` after start
    Batch pending;                      // dispatcher-side partial batch
    std::thread thread;
    /// Transactions whose observe() threw on this shard (fault hook or
    /// detector).  Touched only by `thread`; read after join.
    std::uint64_t detector_failures = 0;
  };

  /// Hands a full batch to its shard under the configured overload policy.
  void dispatch(Shard& shard, Batch&& batch);

  ShardedOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  Stats stats_;
  bool finished_ = false;
  dm::obs::PipelineMetrics obs_;  // handles into online.metrics or global
  /// Callback registrations exposing stats_ through obs snapshots; declared
  /// after stats_/shards_ so they unregister first on destruction.
  std::vector<dm::obs::CallbackHandle> obs_handles_;
};

}  // namespace dm::runtime

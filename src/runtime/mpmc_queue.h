// Bounded multi-producer / multi-consumer ring queue — the backpressure
// primitive of the concurrent streaming runtime.  A fixed-capacity ring
// guarded by one mutex and two condition variables: producers block while
// the ring is full (so a burst on the wire translates into ingest
// backpressure, never unbounded memory growth), consumers block while it is
// empty.  close() wakes everyone; a closed queue rejects new items but
// drains the ones already queued.
//
// A mutex-based ring is deliberately chosen over a lock-free one: the
// runtime moves *batches* of transactions through the queue, so per-item
// synchronization cost is amortized far below the cost of the detector work
// behind it, and the simple implementation is trivially ThreadSanitizer-
// clean (the tier-1 TSan job runs the runtime tests over it).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace dm::runtime {

template <typename T>
class MpmcRingQueue {
 public:
  explicit MpmcRingQueue(std::size_t capacity)
      : ring_(capacity == 0 ? 1 : capacity) {}

  MpmcRingQueue(const MpmcRingQueue&) = delete;
  MpmcRingQueue& operator=(const MpmcRingQueue&) = delete;

  /// Blocks while full; returns false (and drops `value`) if the queue was
  /// closed before space became available.
  bool push(T value) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [&] { return closed_ || count_ < ring_.size(); });
    if (closed_) return false;
    enqueue_locked(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false when full or closed.
  bool try_push(T value) { return offer(value); }

  /// Non-blocking push that leaves `value` intact when the queue is full or
  /// closed — the overload-shedding primitive: the caller can pop a victim
  /// and re-offer the same value without losing it.
  bool offer(T& value) {
    {
      std::scoped_lock lock(mutex_);
      if (closed_ || count_ == ring_.size()) return false;
      enqueue_locked(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty; returns nullopt once the queue is closed AND
  /// drained (the consumer's termination signal).
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || count_ > 0; });
    if (count_ == 0) return std::nullopt;  // closed and drained
    T value = dequeue_locked();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Non-blocking pop; nullopt when currently empty.
  std::optional<T> try_pop() {
    std::optional<T> value;
    {
      std::scoped_lock lock(mutex_);
      if (count_ == 0) return std::nullopt;
      value = dequeue_locked();
    }
    not_full_.notify_one();
    return value;
  }

  /// Rejects further pushes and wakes all waiters; queued items remain
  /// poppable.  Idempotent.
  void close() {
    {
      std::scoped_lock lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::scoped_lock lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::scoped_lock lock(mutex_);
    return count_;
  }

  std::size_t capacity() const { return ring_.size(); }

  /// Deepest the queue has ever been — the observability hook for tuning
  /// capacity vs. burst size (runtime::Stats reports the max over shards).
  std::size_t highwater() const {
    std::scoped_lock lock(mutex_);
    return highwater_;
  }

 private:
  void enqueue_locked(T value) {
    ring_[(head_ + count_) % ring_.size()] = std::move(value);
    ++count_;
    if (count_ > highwater_) highwater_ = count_;
  }

  T dequeue_locked() {
    T value = std::move(ring_[head_]);
    head_ = (head_ + 1) % ring_.size();
    --count_;
    return value;
  }

  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::vector<T> ring_;  // fixed ring storage; T must be default-constructible
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::size_t highwater_ = 0;
  bool closed_ = false;
};

}  // namespace dm::runtime

#include "runtime/worker_pool.h"

#include <algorithm>
#include <latch>
#include <memory>

namespace dm::runtime {

WorkerPool::WorkerPool(Options options) {
  std::size_t n = options.workers;
  if (n == 0) n = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>(options.queue_capacity));
  }
  // Threads start after all queues exist so a fast worker cannot observe a
  // half-built pool.
  for (auto& worker : workers_) {
    worker->thread = std::thread([w = worker.get()] {
      while (auto task = w->queue.pop()) {
        (*task)();
      }
    });
  }
}

WorkerPool::~WorkerPool() { shutdown(); }

bool WorkerPool::submit(std::size_t index, Task task) {
  if (shut_down_) return false;
  return workers_[index % workers_.size()]->queue.push(std::move(task));
}

bool WorkerPool::submit(Task task) {
  return submit(round_robin_.fetch_add(1, std::memory_order_relaxed),
                std::move(task));
}

void WorkerPool::drain() {
  if (shut_down_) return;
  // FIFO queues make a barrier trivial: one countdown task per worker, all
  // earlier tasks on that worker necessarily complete first.
  std::latch barrier(static_cast<std::ptrdiff_t>(workers_.size()));
  for (auto& worker : workers_) {
    worker->queue.push([&barrier] { barrier.count_down(); });
  }
  barrier.wait();
}

void WorkerPool::shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  for (auto& worker : workers_) worker->queue.close();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

std::size_t WorkerPool::queue_highwater() const {
  std::size_t high = 0;
  for (const auto& worker : workers_) {
    high = std::max(high, worker->queue.highwater());
  }
  return high;
}

}  // namespace dm::runtime

// Fixed-size worker pool over bounded per-worker queues.
//
// Unlike a classic shared-queue pool, every worker owns its own
// MpmcRingQueue and executes it FIFO, so tasks submitted to the same worker
// index run in submission order on one thread — the affinity property the
// session-sharded engine needs (all work for a shard is serialized without
// locks).  submit() blocks when the target queue is full, propagating
// backpressure to the producer instead of buffering without bound.
#pragma once

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "runtime/mpmc_queue.h"

namespace dm::runtime {

class WorkerPool {
 public:
  using Task = std::function<void()>;

  struct Options {
    /// 0 -> std::thread::hardware_concurrency() (at least 1).
    std::size_t workers = 0;
    /// Bounded depth of each worker's task queue.
    std::size_t queue_capacity = 256;
  };

  WorkerPool() : WorkerPool(Options{}) {}
  explicit WorkerPool(Options options);
  ~WorkerPool();  // shutdown(): close queues, drain remaining tasks, join

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues onto worker `index % size()`; tasks with the same index run
  /// FIFO on the same thread.  Blocks while that queue is full; returns
  /// false after shutdown().
  bool submit(std::size_t index, Task task);

  /// Round-robin submit for affinity-free work.
  bool submit(Task task);

  /// Blocks until every task submitted before the call has finished.
  /// Safe to call repeatedly; not safe concurrently with submit() from
  /// other threads (a barrier over a moving target is not meaningful).
  void drain();

  /// Closes all queues (pending tasks still run) and joins the threads.
  /// Idempotent; implied by the destructor.
  void shutdown();

  /// Max queue depth seen across workers.
  std::size_t queue_highwater() const;

 private:
  struct Worker {
    explicit Worker(std::size_t capacity) : queue(capacity) {}
    MpmcRingQueue<Task> queue;
    std::thread thread;
  };

  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<std::size_t> round_robin_{0};
  bool shut_down_ = false;
};

}  // namespace dm::runtime

// Observability counters for the concurrent streaming runtime.  The live
// counters are atomics updated from the dispatcher and worker threads; a
// StatsSnapshot is the plain-value copy handed to reports and benchmarks.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/cacheline.h"

namespace dm::runtime {

/// Plain-value view of the runtime counters at one instant.
struct StatsSnapshot {
  std::uint64_t transactions_in = 0;   // dispatched into shard queues
  std::uint64_t transactions_out = 0;  // processed by shard workers
  std::uint64_t batches_dispatched = 0;
  /// Deepest any shard queue has been, in batches — how close the engine
  /// came to exerting backpressure on the ingest stage.
  std::size_t queue_highwater = 0;
  /// Transactions dropped by an overload policy (ShedOldest / ShedNewest)
  /// instead of blocking the dispatcher.  Conservation law after finish():
  /// transactions_in == transactions_out + transactions_shed.
  std::uint64_t transactions_shed = 0;
  std::uint64_t batches_shed = 0;
  /// observe() calls after finish(): the transaction is dropped and counted,
  /// never silently lost (and asserts in debug builds — it is a caller bug).
  std::uint64_t dropped_after_finish = 0;
  /// Transactions whose detector observe() threw; the worker quarantines the
  /// failure and keeps consuming — a poisoned transaction costs itself, not
  /// the shard.
  std::uint64_t detector_failures = 0;
  std::vector<std::uint64_t> per_shard_transactions;
  std::vector<std::uint64_t> per_shard_alerts;
  std::vector<std::uint64_t> per_shard_detector_failures;
};

/// One runtime counter on its own cache line.  The hot pair —
/// transactions_in (dispatcher) and transactions_out / detector_failures
/// (workers) — are written from different threads on every batch; packed
/// back-to-back they false-share one line and every increment ping-pongs it
/// across cores (bench_runtime's padded-vs-packed rows measure the tax).
/// alignas pads each counter to kCacheLineSize
/// (std::hardware_destructive_interference_size where available).
struct alignas(dm::obs::kCacheLineSize) PaddedStatCounter {
  std::atomic<std::uint64_t> value{0};

  void fetch_add(std::uint64_t n,
                 std::memory_order order = std::memory_order_seq_cst) noexcept {
    value.fetch_add(n, order);
  }
  std::uint64_t load(
      std::memory_order order = std::memory_order_seq_cst) const noexcept {
    return value.load(order);
  }
};

/// Shared counter block.  transactions_in / batches_dispatched /
/// *_shed / dropped_after_finish are written by the dispatching thread only;
/// transactions_out and detector_failures are incremented by workers;
/// per-shard counts live with the shards and are folded into the snapshot
/// by the engine.  Each counter is cache-line-isolated (see
/// PaddedStatCounter) so dispatcher and worker increments never contend.
struct Stats {
  PaddedStatCounter transactions_in;
  PaddedStatCounter transactions_out;
  PaddedStatCounter batches_dispatched;
  PaddedStatCounter transactions_shed;
  PaddedStatCounter batches_shed;
  PaddedStatCounter dropped_after_finish;
  PaddedStatCounter detector_failures;
};

}  // namespace dm::runtime

// Observability counters for the concurrent streaming runtime.  The live
// counters are atomics updated from the dispatcher and worker threads; a
// StatsSnapshot is the plain-value copy handed to reports and benchmarks.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace dm::runtime {

/// Plain-value view of the runtime counters at one instant.
struct StatsSnapshot {
  std::uint64_t transactions_in = 0;   // dispatched into shard queues
  std::uint64_t transactions_out = 0;  // processed by shard workers
  std::uint64_t batches_dispatched = 0;
  /// Deepest any shard queue has been, in batches — how close the engine
  /// came to exerting backpressure on the ingest stage.
  std::size_t queue_highwater = 0;
  std::vector<std::uint64_t> per_shard_transactions;
  std::vector<std::uint64_t> per_shard_alerts;
};

/// Shared counter block.  transactions_in / batches_dispatched are written
/// by the dispatching thread only; transactions_out is incremented by every
/// worker; per-shard counts live with the shards and are folded into the
/// snapshot by the engine.
struct Stats {
  std::atomic<std::uint64_t> transactions_in{0};
  std::atomic<std::uint64_t> transactions_out{0};
  std::atomic<std::uint64_t> batches_dispatched{0};
};

}  // namespace dm::runtime

// Observability counters for the concurrent streaming runtime.  The live
// counters are atomics updated from the dispatcher and worker threads; a
// StatsSnapshot is the plain-value copy handed to reports and benchmarks.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace dm::runtime {

/// Plain-value view of the runtime counters at one instant.
struct StatsSnapshot {
  std::uint64_t transactions_in = 0;   // dispatched into shard queues
  std::uint64_t transactions_out = 0;  // processed by shard workers
  std::uint64_t batches_dispatched = 0;
  /// Deepest any shard queue has been, in batches — how close the engine
  /// came to exerting backpressure on the ingest stage.
  std::size_t queue_highwater = 0;
  /// Transactions dropped by an overload policy (ShedOldest / ShedNewest)
  /// instead of blocking the dispatcher.  Conservation law after finish():
  /// transactions_in == transactions_out + transactions_shed.
  std::uint64_t transactions_shed = 0;
  std::uint64_t batches_shed = 0;
  /// observe() calls after finish(): the transaction is dropped and counted,
  /// never silently lost (and asserts in debug builds — it is a caller bug).
  std::uint64_t dropped_after_finish = 0;
  /// Transactions whose detector observe() threw; the worker quarantines the
  /// failure and keeps consuming — a poisoned transaction costs itself, not
  /// the shard.
  std::uint64_t detector_failures = 0;
  std::vector<std::uint64_t> per_shard_transactions;
  std::vector<std::uint64_t> per_shard_alerts;
  std::vector<std::uint64_t> per_shard_detector_failures;
};

/// Shared counter block.  transactions_in / batches_dispatched /
/// *_shed / dropped_after_finish are written by the dispatching thread only;
/// transactions_out and detector_failures are incremented by workers;
/// per-shard counts live with the shards and are folded into the snapshot
/// by the engine.
struct Stats {
  std::atomic<std::uint64_t> transactions_in{0};
  std::atomic<std::uint64_t> transactions_out{0};
  std::atomic<std::uint64_t> batches_dispatched{0};
  std::atomic<std::uint64_t> transactions_shed{0};
  std::atomic<std::uint64_t> batches_shed{0};
  std::atomic<std::uint64_t> dropped_after_finish{0};
  std::atomic<std::uint64_t> detector_failures{0};
};

}  // namespace dm::runtime

#include "runtime/parallel_ingest.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "http/transaction_stream.h"
#include "obs/pipeline.h"
#include "obs/timer.h"
#include "runtime/worker_pool.h"
#include "util/log.h"

namespace dm::runtime {
namespace {

IngestResult run_engine(std::vector<dm::http::HttpTransaction> stream,
                        std::shared_ptr<const dm::core::Detector> detector,
                        const ShardedOptions& options) {
  IngestResult result;
  result.transactions = stream.size();
  ShardedOnlineEngine engine(std::move(detector), options);
  for (auto& txn : stream) {
    engine.observe(std::move(txn));
  }
  engine.finish();
  result.alerts = engine.merged_alerts();
  result.online = engine.aggregated_stats();
  result.runtime = engine.runtime_stats();
  return result;
}

}  // namespace

IngestResult detect_transactions(
    std::vector<dm::http::HttpTransaction> stream,
    std::shared_ptr<const dm::core::Detector> detector,
    const ShardedOptions& options) {
  return run_engine(std::move(stream), std::move(detector), options);
}

IngestResult detect_pcap(const dm::net::PcapFile& capture,
                         std::shared_ptr<const dm::core::Detector> detector,
                         const ShardedOptions& options) {
  dm::util::FaultStats faults;
  IngestResult result = run_engine(
      dm::http::transactions_from_pcap(capture, &faults), std::move(detector),
      options);
  result.faults = faults.snapshot();
  dm::obs::record_fault_counts(result.faults);
  return result;
}

IngestResult detect_pcap_files(
    const std::vector<std::string>& paths,
    std::shared_ptr<const dm::core::Detector> detector,
    const IngestOptions& options) {
  // Stage-1 reconstruction fan-out: one task per capture file.  Each slot is
  // written by exactly one task and read only after drain(), so the vector
  // needs no lock.
  std::vector<std::vector<dm::http::HttpTransaction>> per_file(paths.size());
  std::vector<std::string> errors(paths.size());
  // One FaultStats shared by every reconstruction task — its counters are
  // atomics, so the fan-out needs no extra synchronization.
  dm::util::FaultStats faults;
  {
    WorkerPool pool({options.ingest_workers, /*queue_capacity=*/64});
    for (std::size_t i = 0; i < paths.size(); ++i) {
      pool.submit([&, i] {
        auto span = dm::obs::StageTimer{}.span(
            dm::obs::pipeline_metrics().ingest_reconstruct_ns);
        try {
          per_file[i] = dm::http::transactions_from_pcap_file(paths[i], &faults);
        } catch (const std::exception& e) {
          errors[i] = e.what();
          span.cancel();  // I/O failure, not a reconstruction latency
        }
      });
    }
    pool.drain();
  }
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (!errors[i].empty()) {
      throw std::runtime_error("detect_pcap_files: " + paths[i] + ": " +
                               errors[i]);
    }
  }

  std::size_t total = 0;
  for (const auto& txns : per_file) total += txns.size();
  std::vector<dm::http::HttpTransaction> merged;
  merged.reserve(total);
  for (auto& txns : per_file) {
    merged.insert(merged.end(), std::make_move_iterator(txns.begin()),
                  std::make_move_iterator(txns.end()));
  }
  // Each per-file stream is already request-time ordered; a global stable
  // sort re-establishes one wire ordering across captures.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const dm::http::HttpTransaction& a,
                      const dm::http::HttpTransaction& b) {
                     return a.request.ts_micros < b.request.ts_micros;
                   });
  dm::util::log_info("parallel ingest: ", paths.size(), " captures -> ",
                     merged.size(), " transactions");
  IngestResult result =
      run_engine(std::move(merged), std::move(detector), options.sharded);
  result.faults = faults.snapshot();
  dm::obs::record_fault_counts(result.faults);
  if (result.faults.total() > 0) {
    dm::util::log_warn("parallel ingest: quarantined decode faults: ",
                       result.faults.summary());
  }
  return result;
}

}  // namespace dm::runtime

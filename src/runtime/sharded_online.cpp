#include "runtime/sharded_online.h"

#include <algorithm>
#include <cassert>

#include "obs/timer.h"
#include "util/hash.h"
#include "util/rate_limit.h"

namespace dm::runtime {

ShardedOnlineEngine::ShardedOnlineEngine(
    std::shared_ptr<const dm::core::Detector> detector, ShardedOptions options)
    : options_(options),
      obs_(options.online.metrics != nullptr
               ? dm::obs::PipelineMetrics::of(*options.online.metrics)
               : dm::obs::pipeline_metrics()) {
  std::size_t n = options_.num_shards;
  if (n == 0) n = std::max(1u, std::thread::hardware_concurrency());
  if (options_.batch_size == 0) options_.batch_size = 1;
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (options_.scorer_factory) {
      // Per-shard scorer: each shard worker scores through its own instance
      // (its own model pin), so shards never share scorer state.
      ShardedOptions shard_options = options_;
      shard_options.online.scorer = options_.scorer_factory(i);
      shards_.push_back(std::make_unique<Shard>(detector, shard_options));
    } else {
      shards_.push_back(std::make_unique<Shard>(detector, options_));
    }
    shards_.back()->pending.txns.reserve(options_.batch_size);
  }

  // Fold the runtime counters into the metrics registry as callback
  // sources: one obs::snapshot() then covers throughput, sheds and drops
  // alongside the latency histograms.  Multiple engines sum per name.
  auto& reg = options_.online.metrics != nullptr ? *options_.online.metrics
                                                 : dm::obs::registry();
  const auto expose = [&](const char* name, const PaddedStatCounter& c) {
    obs_handles_.push_back(reg.register_callback(
        name, [&c] { return c.load(std::memory_order_relaxed); }));
  };
  expose("dm.runtime.transactions_in", stats_.transactions_in);
  expose("dm.runtime.transactions_out", stats_.transactions_out);
  expose("dm.runtime.batches_dispatched", stats_.batches_dispatched);
  expose("dm.runtime.transactions_shed", stats_.transactions_shed);
  expose("dm.runtime.batches_shed", stats_.batches_shed);
  expose("dm.runtime.dropped_after_finish", stats_.dropped_after_finish);
  expose("dm.runtime.detector_failures", stats_.detector_failures);
  obs_handles_.push_back(reg.register_callback("dm.runtime.queue_highwater", [this] {
    std::size_t hw = 0;
    for (const auto& shard : shards_) hw = std::max(hw, shard->queue.highwater());
    return static_cast<std::uint64_t>(hw);
  }));

  for (auto& shard : shards_) {
    shard->thread = std::thread([s = shard.get(), this] {
      const dm::obs::StageTimer timer;  // worker-side steady clock
      while (auto batch = s->queue.pop()) {
        if (batch->enqueue_ns != 0) {
          const std::uint64_t now = timer.now();
          obs_.runtime_queue_wait_ns.record(
              now >= batch->enqueue_ns ? now - batch->enqueue_ns : 0);
        }
        auto batch_span = timer.span(obs_.runtime_worker_batch_ns);
        for (auto& txn : batch->txns) {
          // Failure isolation: a transaction whose hook or detector throws
          // is quarantined and counted — it costs itself, never the shard.
          // The worker therefore always drains to queue close and finish()
          // always joins, whatever the detector did mid-stream.
          try {
            if (options_.observe_fault_hook) options_.observe_fault_hook(txn);
            s->detector.observe(std::move(txn));
          } catch (const std::exception& e) {
            ++s->detector_failures;
            stats_.detector_failures.fetch_add(1, std::memory_order_relaxed);
            static dm::util::EveryN gate(128);
            dm::util::log_every_n(gate, dm::util::LogLevel::kWarn,
                                  "sharded: detector failure quarantined: ",
                                  e.what());
          } catch (...) {
            ++s->detector_failures;
            stats_.detector_failures.fetch_add(1, std::memory_order_relaxed);
            static dm::util::EveryN gate(128);
            dm::util::log_every_n(gate, dm::util::LogLevel::kWarn,
                                  "sharded: detector failure quarantined");
          }
        }
        batch_span.stop();
        // Quarantined transactions still count as processed (transactions_out):
        // the conservation law in == out + shed holds with failures as a
        // separate, overlapping tally.
        stats_.transactions_out.fetch_add(batch->txns.size(),
                                          std::memory_order_relaxed);
      }
    });
  }
}

ShardedOnlineEngine::~ShardedOnlineEngine() { finish(); }

std::size_t ShardedOnlineEngine::shard_of(const dm::http::HttpTransaction& txn,
                                          std::size_t num_shards) noexcept {
  if (num_shards <= 1) return 0;
  return dm::util::fnv1a(txn.client_host) % num_shards;
}

void ShardedOnlineEngine::dispatch(Shard& shard, Batch&& batch) {
  // Times the whole handoff, including any backpressure block or shed-retry
  // loop — dispatch_ns p99 is where an undersized queue shows up first.
  auto dispatch_span =
      dm::obs::Span(&obs_.runtime_dispatch_ns, &dm::obs::steady_now_ns);
  if (dm::obs::enabled()) batch.enqueue_ns = dm::obs::steady_now_ns();
  const std::uint64_t txns = batch.txns.size();
  const auto shed = [&](std::uint64_t t) {
    stats_.transactions_shed.fetch_add(t, std::memory_order_relaxed);
    stats_.batches_shed.fetch_add(1, std::memory_order_relaxed);
    static dm::util::EveryN gate(64);
    dm::util::log_every_n(gate, dm::util::LogLevel::kWarn,
                          "sharded: overload shed ", t, " transaction(s)");
  };
  switch (options_.overload) {
    case OverloadPolicy::kBlock:
      // Lossless backpressure; push() only fails once the queue is closed,
      // which cannot race finish() (both run on the dispatcher thread).
      if (shard.queue.push(std::move(batch))) {
        stats_.batches_dispatched.fetch_add(1, std::memory_order_relaxed);
      } else {
        shed(txns);
      }
      return;
    case OverloadPolicy::kShedNewest:
      if (shard.queue.try_push(std::move(batch))) {
        stats_.batches_dispatched.fetch_add(1, std::memory_order_relaxed);
      } else {
        shed(txns);  // buffered traffic wins; the incoming batch is dropped
      }
      return;
    case OverloadPolicy::kShedOldest:
      // Fresh traffic wins: evict the oldest queued batch until the new one
      // fits.  offer() leaves `batch` intact on failure, so no transaction
      // is lost between the failed offer and the retry.
      while (!shard.queue.offer(batch)) {
        if (auto victim = shard.queue.try_pop()) {
          shed(victim->txns.size());
          continue;
        }
        if (shard.queue.closed()) {
          shed(txns);
          return;
        }
        // Full but nothing poppable: the worker grabbed the victim first.
        // Its slot frees imminently; retry the offer.
      }
      stats_.batches_dispatched.fetch_add(1, std::memory_order_relaxed);
      return;
  }
}

void ShardedOnlineEngine::observe(dm::http::HttpTransaction txn) {
  if (finished_) {
    // A post-finish observe is a caller bug (the workers are gone; the
    // transaction can never be scored) — never silently lose it.
    stats_.dropped_after_finish.fetch_add(1, std::memory_order_relaxed);
    assert(!"ShardedOnlineEngine::observe() called after finish()");
    return;
  }
  Shard& shard = *shards_[shard_of(txn, shards_.size())];
  shard.pending.txns.push_back(std::move(txn));
  stats_.transactions_in.fetch_add(1, std::memory_order_relaxed);
  if (shard.pending.txns.size() >= options_.batch_size) {
    Batch batch;
    batch.txns.reserve(options_.batch_size);
    std::swap(batch.txns, shard.pending.txns);
    dispatch(shard, std::move(batch));
  }
}

void ShardedOnlineEngine::flush() {
  if (finished_) return;
  for (auto& shard : shards_) {
    if (shard->pending.txns.empty()) continue;
    Batch batch;
    std::swap(batch.txns, shard->pending.txns);
    dispatch(*shard, std::move(batch));
  }
}

void ShardedOnlineEngine::finish() {
  if (finished_) return;
  flush();
  finished_ = true;
  for (auto& shard : shards_) shard->queue.close();
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
}

std::vector<dm::core::Alert> ShardedOnlineEngine::merged_alerts() const {
  std::vector<dm::core::Alert> merged;
  for (const auto& shard : shards_) {
    const auto& alerts = shard->detector.alerts();
    merged.insert(merged.end(), alerts.begin(), alerts.end());
  }
  // (ts, session key) is a strict total order: a session alerts at most once
  // and keys are unique per run, so the merge is deterministic.
  std::sort(merged.begin(), merged.end(),
            [](const dm::core::Alert& a, const dm::core::Alert& b) {
              if (a.ts_micros != b.ts_micros) return a.ts_micros < b.ts_micros;
              return a.session_key < b.session_key;
            });
  return merged;
}

dm::core::OnlineStats ShardedOnlineEngine::aggregated_stats() const {
  dm::core::OnlineStats total;
  for (const auto& shard : shards_) {
    const auto& s = shard->detector.stats();
    total.transactions_seen += s.transactions_seen;
    total.transactions_weeded += s.transactions_weeded;
    total.clues_fired += s.clues_fired;
    total.classifier_queries += s.classifier_queries;
    total.classifier_failures += s.classifier_failures;
    total.alerts += s.alerts;
    total.sessions_opened += s.sessions_opened;
    total.sessions_expired += s.sessions_expired;
  }
  return total;
}

StatsSnapshot ShardedOnlineEngine::runtime_stats() const {
  StatsSnapshot snap;
  snap.transactions_in = stats_.transactions_in.load(std::memory_order_relaxed);
  snap.transactions_out =
      stats_.transactions_out.load(std::memory_order_relaxed);
  snap.batches_dispatched =
      stats_.batches_dispatched.load(std::memory_order_relaxed);
  snap.transactions_shed =
      stats_.transactions_shed.load(std::memory_order_relaxed);
  snap.batches_shed = stats_.batches_shed.load(std::memory_order_relaxed);
  snap.dropped_after_finish =
      stats_.dropped_after_finish.load(std::memory_order_relaxed);
  snap.detector_failures =
      stats_.detector_failures.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    snap.queue_highwater = std::max(snap.queue_highwater, shard->queue.highwater());
  }
  // The shard detectors belong to the worker threads until finish(); fold
  // their counters in only once the workers have been joined.
  if (finished_) {
    snap.per_shard_transactions.reserve(shards_.size());
    snap.per_shard_alerts.reserve(shards_.size());
    snap.per_shard_detector_failures.reserve(shards_.size());
    for (const auto& shard : shards_) {
      snap.per_shard_transactions.push_back(
          shard->detector.stats().transactions_seen);
      snap.per_shard_alerts.push_back(shard->detector.stats().alerts);
      snap.per_shard_detector_failures.push_back(shard->detector_failures);
    }
  }
  return snap;
}

}  // namespace dm::runtime

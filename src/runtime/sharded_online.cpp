#include "runtime/sharded_online.h"

#include <algorithm>

#include "util/hash.h"

namespace dm::runtime {

ShardedOnlineEngine::ShardedOnlineEngine(
    std::shared_ptr<const dm::core::Detector> detector, ShardedOptions options)
    : options_(options) {
  std::size_t n = options_.num_shards;
  if (n == 0) n = std::max(1u, std::thread::hardware_concurrency());
  if (options_.batch_size == 0) options_.batch_size = 1;
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>(detector, options_));
    shards_.back()->pending.reserve(options_.batch_size);
  }
  for (auto& shard : shards_) {
    shard->thread = std::thread([s = shard.get(), this] {
      while (auto batch = s->queue.pop()) {
        for (auto& txn : *batch) {
          s->detector.observe(std::move(txn));
        }
        stats_.transactions_out.fetch_add(batch->size(),
                                          std::memory_order_relaxed);
      }
    });
  }
}

ShardedOnlineEngine::~ShardedOnlineEngine() { finish(); }

std::size_t ShardedOnlineEngine::shard_of(const dm::http::HttpTransaction& txn,
                                          std::size_t num_shards) noexcept {
  if (num_shards <= 1) return 0;
  return dm::util::fnv1a(txn.client_host) % num_shards;
}

void ShardedOnlineEngine::observe(dm::http::HttpTransaction txn) {
  if (finished_) return;
  Shard& shard = *shards_[shard_of(txn, shards_.size())];
  shard.pending.push_back(std::move(txn));
  stats_.transactions_in.fetch_add(1, std::memory_order_relaxed);
  if (shard.pending.size() >= options_.batch_size) {
    Batch batch;
    batch.reserve(options_.batch_size);
    std::swap(batch, shard.pending);
    shard.queue.push(std::move(batch));
    stats_.batches_dispatched.fetch_add(1, std::memory_order_relaxed);
  }
}

void ShardedOnlineEngine::flush() {
  if (finished_) return;
  for (auto& shard : shards_) {
    if (shard->pending.empty()) continue;
    Batch batch;
    std::swap(batch, shard->pending);
    shard->queue.push(std::move(batch));
    stats_.batches_dispatched.fetch_add(1, std::memory_order_relaxed);
  }
}

void ShardedOnlineEngine::finish() {
  if (finished_) return;
  flush();
  finished_ = true;
  for (auto& shard : shards_) shard->queue.close();
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
}

std::vector<dm::core::Alert> ShardedOnlineEngine::merged_alerts() const {
  std::vector<dm::core::Alert> merged;
  for (const auto& shard : shards_) {
    const auto& alerts = shard->detector.alerts();
    merged.insert(merged.end(), alerts.begin(), alerts.end());
  }
  // (ts, session key) is a strict total order: a session alerts at most once
  // and keys are unique per run, so the merge is deterministic.
  std::sort(merged.begin(), merged.end(),
            [](const dm::core::Alert& a, const dm::core::Alert& b) {
              if (a.ts_micros != b.ts_micros) return a.ts_micros < b.ts_micros;
              return a.session_key < b.session_key;
            });
  return merged;
}

dm::core::OnlineStats ShardedOnlineEngine::aggregated_stats() const {
  dm::core::OnlineStats total;
  for (const auto& shard : shards_) {
    const auto& s = shard->detector.stats();
    total.transactions_seen += s.transactions_seen;
    total.transactions_weeded += s.transactions_weeded;
    total.clues_fired += s.clues_fired;
    total.classifier_queries += s.classifier_queries;
    total.alerts += s.alerts;
    total.sessions_opened += s.sessions_opened;
    total.sessions_expired += s.sessions_expired;
  }
  return total;
}

StatsSnapshot ShardedOnlineEngine::runtime_stats() const {
  StatsSnapshot snap;
  snap.transactions_in = stats_.transactions_in.load(std::memory_order_relaxed);
  snap.transactions_out =
      stats_.transactions_out.load(std::memory_order_relaxed);
  snap.batches_dispatched =
      stats_.batches_dispatched.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    snap.queue_highwater = std::max(snap.queue_highwater, shard->queue.highwater());
  }
  // The shard detectors belong to the worker threads until finish(); fold
  // their counters in only once the workers have been joined.
  if (finished_) {
    snap.per_shard_transactions.reserve(shards_.size());
    snap.per_shard_alerts.reserve(shards_.size());
    for (const auto& shard : shards_) {
      snap.per_shard_transactions.push_back(
          shard->detector.stats().transactions_seen);
      snap.per_shard_alerts.push_back(shard->detector.stats().alerts);
    }
  }
  return snap;
}

}  // namespace dm::runtime

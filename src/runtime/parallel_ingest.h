// Parallel ingest: fans reassembled HTTP transactions into the session-
// sharded engine and merges the shard outputs into one time-ordered alert
// stream.  Three entry points, one per deployment shape:
//
//   * detect_transactions  — an already-reconstructed stream (the in-process
//     replayer of the live case studies),
//   * detect_pcap          — one capture: Stage-1 reconstruction
//     (pcap -> TCP reassembly -> HTTP pairing) then sharded detection,
//   * detect_pcap_files    — many captures: reconstruction runs concurrently
//     on a WorkerPool (one task per file), the streams are merged by request
//     timestamp, and the merged stream is dispatched in time order.
//
// Dispatch is intentionally single-threaded: §V-B semantics require each
// client's transactions to arrive at its shard in stream order, and one
// time-ordered dispatcher is the simplest structure that guarantees it.
// Parallelism lives in the reconstruction fan-out and in the shard workers.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/online.h"
#include "net/pcap.h"
#include "runtime/sharded_online.h"
#include "util/fault_stats.h"

namespace dm::runtime {

struct IngestOptions {
  ShardedOptions sharded;
  /// Workers for the pcap-reconstruction fan-out (detect_pcap_files only);
  /// 0 -> hardware_concurrency.
  std::size_t ingest_workers = 0;
};

/// What came out of one ingest run.
struct IngestResult {
  std::vector<dm::core::Alert> alerts;  // merged, time-ordered
  dm::core::OnlineStats online;         // summed over shards
  StatsSnapshot runtime;
  std::size_t transactions = 0;  // dispatched into the engine
  /// Decode faults quarantined during Stage-1 reconstruction (pcap, frame,
  /// TCP, HTTP layers), summed across capture files.  All-zero for
  /// detect_transactions (no reconstruction) and for clean captures.
  dm::util::FaultStatsSnapshot faults;
};

/// Streams a time-ordered transaction list through a sharded engine.
IngestResult detect_transactions(
    std::vector<dm::http::HttpTransaction> stream,
    std::shared_ptr<const dm::core::Detector> detector,
    const ShardedOptions& options = {});

/// Full Stage-1 + Stage-2 over one capture.
IngestResult detect_pcap(const dm::net::PcapFile& capture,
                         std::shared_ptr<const dm::core::Detector> detector,
                         const ShardedOptions& options = {});

/// Full Stage-1 + Stage-2 over many capture files, reconstructed in
/// parallel.  Throws std::runtime_error on file I/O failure; decode faults
/// inside a readable capture are quarantined into IngestResult::faults and
/// the salvageable transactions still flow through detection.
IngestResult detect_pcap_files(
    const std::vector<std::string>& paths,
    std::shared_ptr<const dm::core::Detector> detector,
    const IngestOptions& options = {});

}  // namespace dm::runtime

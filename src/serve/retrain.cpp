#include "serve/retrain.h"

#include <sstream>
#include <utility>

#include "core/trainer.h"
#include "ml/parallel_trainer.h"
#include "ml/serialization.h"
#include "util/log.h"

namespace dm::serve {

// ---- ServingScorer ---------------------------------------------------------
//
// The per-shard serving seam: an epoch-pinned read of the current model plus
// the shadow side-channel.  One instance per shard (the Pin is not
// thread-safe); the driver outlives every scorer it hands out because the
// engine wiring (examples, tests) constructs the driver first and tears the
// engine down first.

class RetrainDriver::ServingScorer : public dm::core::WcgScorer {
 public:
  explicit ServingScorer(RetrainDriver* driver)
      : driver_(driver), pin_(driver->handle_.pin()) {}

  double score(const dm::core::Wcg& wcg, dm::core::FeatureCache* cache) override {
    const dm::core::Detector& detector = pin_.get();
    const double score = detector.score(wcg, cache);
    // Shadow side-channel: while a candidate is staged, feed it the same
    // query.  The incumbent's decision still drives the alert — the
    // candidate only observes.  The flag is the fast-out; steady state
    // (no candidate) adds one relaxed load to the scoring path.
    if (driver_->shadow_active_.load(std::memory_order_acquire)) {
      driver_->shadow_observe(wcg, cache,
                              score >= driver_->options_.decision_threshold);
    }
    return score;
  }

 private:
  RetrainDriver* driver_;
  ModelHandle::Pin pin_;
};

// ---- RetrainDriver ---------------------------------------------------------

RetrainDriver::RetrainDriver(std::shared_ptr<const dm::core::Detector> initial,
                             ServeOptions options)
    : options_(std::move(options)),
      metrics_(options_.metrics != nullptr
                   ? dm::obs::ModelMetrics::of(*options_.metrics)
                   : dm::obs::model_metrics()),
      timer_(options_.clock),
      handle_(std::move(initial)),
      reservoir_(options_.reservoir),
      pool_({.workers = 1, .queue_capacity = 8}) {
  metrics_.version.set(static_cast<std::int64_t>(handle_.version()));
}

RetrainDriver::~RetrainDriver() {
  // pool_ is the first member destroyed (declared last): its destructor runs
  // any queued retrain to completion and joins before the rest of the driver
  // goes away.
}

void RetrainDriver::on_verdict(const dm::core::Wcg& wcg, double score,
                               bool alert, std::uint64_t ts_micros) {
  metrics_.reservoir_offered.add(1);
  const bool admitted = reservoir_.offer(wcg, score, alert, ts_micros);
  if (admitted) {
    metrics_.reservoir_admitted.add(1);
    metrics_.reservoir_infections.set(
        static_cast<std::int64_t>(reservoir_.infection_count()));
    metrics_.reservoir_benign.set(
        static_cast<std::int64_t>(reservoir_.benign_count()));
  }

  const std::uint64_t now_ns = timer_.now();
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(trigger_mutex_);
    if (!clock_anchored_) {
      // The clock trigger measures time since the *first* verdict, not since
      // construction — a driver built long before traffic starts should not
      // fire an empty retrain on the first transaction.
      clock_anchored_ = true;
      last_retrain_ns_ = now_ns;
    }
    if (admitted) ++admissions_since_retrain_;
    if (should_retrain_locked(now_ns) &&
        !retrain_in_flight_.exchange(true, std::memory_order_acq_rel)) {
      admissions_since_retrain_ = 0;
      last_retrain_ns_ = now_ns;
      fire = true;
    }
  }
  if (fire) pool_.submit([this] { run_retrain(); });
}

bool RetrainDriver::should_retrain_locked(std::uint64_t now_ns) {
  if (options_.retrain_every_admissions > 0 &&
      admissions_since_retrain_ >= options_.retrain_every_admissions) {
    return true;
  }
  if (options_.retrain_every_s > 0.0 && clock_anchored_) {
    const double elapsed_s =
        static_cast<double>(now_ns - last_retrain_ns_) * 1e-9;
    if (elapsed_s >= options_.retrain_every_s) return true;
  }
  return false;
}

std::function<void(const dm::core::Wcg&, double, bool, std::uint64_t)>
RetrainDriver::verdict_tap() {
  return [this](const dm::core::Wcg& wcg, double score, bool alert,
                std::uint64_t ts_micros) {
    on_verdict(wcg, score, alert, ts_micros);
  };
}

std::shared_ptr<dm::core::WcgScorer> RetrainDriver::make_scorer() {
  return std::make_shared<ServingScorer>(this);
}

void RetrainDriver::run_retrain() {
  auto retrain_span = timer_.span(metrics_.retrain_ns);
  const WcgReservoir::Snapshot snap = reservoir_.snapshot();
  if (snap.infections.size() < options_.min_per_class ||
      snap.benign.size() < options_.min_per_class) {
    retrain_span.cancel();
    retrain_in_flight_.store(false, std::memory_order_release);
    return;
  }

  // Train the candidate.  train_forest_parallel is a pure function of
  // (dataset, forest options) at every thread count, and the snapshot is a
  // pure function of the offer sequence — so retraining on an unchanged
  // reservoir yields a byte-identical forest (the no-op fence).
  dm::ml::TrainerOptions trainer;
  trainer.threads = options_.train_threads;
  trainer.metrics = options_.metrics;
  trainer.clock = options_.clock;
  const dm::ml::Dataset data = dm::core::dataset_from_wcgs(
      snap.infections, snap.benign, options_.features, trainer);
  dm::ml::RandomForest forest =
      dm::ml::train_forest_parallel(data, options_.forest, trainer);

  // Capture the serialization *before* the version stamp: the byte-identity
  // fence compares training outputs, and the prospective version differs
  // between two otherwise-identical retrains.
  {
    std::ostringstream out;
    dm::ml::save_forest(forest, out);
    std::lock_guard<std::mutex> lock(serialization_mutex_);
    last_trained_serialization_ = out.str();
  }
  retrains_.fetch_add(1, std::memory_order_relaxed);
  metrics_.retrains.add(1);

  // Prospective provenance stamp: only this driver publishes, and at most
  // one candidate is in flight, so current+1 is the version this forest
  // gets if it clears the gate.
  forest.set_model_version(handle_.version() + 1);
  auto candidate = std::make_shared<const dm::core::Detector>(
      std::move(forest), options_.features, options_.decision_threshold);
  retrain_span.stop();

  if (!options_.shadow_before_cutover) {
    publish(std::move(candidate));
    retrain_in_flight_.store(false, std::memory_order_release);
    return;
  }

  // Stage the shadow phase; retrain_in_flight_ stays true until the gate
  // resolves, so a second trigger cannot stack a second candidate.
  auto evaluator = std::make_shared<ShadowEvaluator>(
      std::move(candidate), options_.shadow, options_.decision_threshold,
      metrics_, options_.clock);
  {
    std::lock_guard<std::mutex> lock(shadow_mutex_);
    candidate_ = evaluator;
    last_evaluator_ = evaluator;
  }
  shadow_active_.store(true, std::memory_order_release);
  dm::util::log_info("serve: candidate trained (", snap.infections.size(),
                     " infection / ", snap.benign.size(),
                     " benign samples), shadow scoring toward version ",
                     handle_.version() + 1);
}

void RetrainDriver::shadow_observe(const dm::core::Wcg& wcg,
                                   dm::core::FeatureCache* cache,
                                   bool incumbent_alert) {
  std::shared_ptr<ShadowEvaluator> evaluator;
  {
    std::lock_guard<std::mutex> lock(shadow_mutex_);
    evaluator = candidate_;
  }
  if (evaluator == nullptr) return;  // resolved between the flag and the lock
  const ShadowEvaluator::Gate gate = evaluator->observe(wcg, cache, incumbent_alert);
  if (gate != ShadowEvaluator::Gate::kPending) resolve_candidate(evaluator, gate);
}

void RetrainDriver::resolve_candidate(
    const std::shared_ptr<ShadowEvaluator>& evaluator,
    ShadowEvaluator::Gate gate) {
  std::lock_guard<std::mutex> lock(shadow_mutex_);
  if (candidate_ != evaluator) return;  // another thread already resolved it
  candidate_.reset();
  shadow_active_.store(false, std::memory_order_release);
  if (gate == ShadowEvaluator::Gate::kPromote) {
    publish(evaluator->candidate());
  } else {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    metrics_.candidates_rejected.add(1);
    dm::util::log_warn("serve: candidate rejected at agreement rate ",
                       evaluator->agreement_rate(), " after ",
                       evaluator->scored(), " shadowed queries");
  }
  retrain_in_flight_.store(false, std::memory_order_release);
}

void RetrainDriver::publish(std::shared_ptr<const dm::core::Detector> detector) {
  auto span = timer_.span(metrics_.swap_publish_ns);
  const std::uint64_t version = handle_.publish(std::move(detector));
  span.stop();
  swaps_.fetch_add(1, std::memory_order_relaxed);
  metrics_.swaps.add(1);
  metrics_.version.set(static_cast<std::int64_t>(version));
  dm::util::log_info("serve: published model version ", version);
}

bool RetrainDriver::retrain_now() {
  if (retrain_in_flight_.exchange(true, std::memory_order_acq_rel)) {
    return false;  // a retrain or staged candidate is already in flight
  }
  {
    std::lock_guard<std::mutex> lock(trigger_mutex_);
    admissions_since_retrain_ = 0;
    last_retrain_ns_ = timer_.now();
    clock_anchored_ = true;
  }
  const std::uint64_t before = retrains_.load(std::memory_order_relaxed);
  pool_.submit([this] { run_retrain(); });
  pool_.drain();
  return retrains_.load(std::memory_order_relaxed) > before;
}

void RetrainDriver::drain() { pool_.drain(); }

double RetrainDriver::shadow_agreement_rate() const {
  std::lock_guard<std::mutex> lock(shadow_mutex_);
  if (last_evaluator_ == nullptr) return 1.0;
  return last_evaluator_->agreement_rate();
}

std::string RetrainDriver::last_trained_serialization() const {
  std::lock_guard<std::mutex> lock(serialization_mutex_);
  return last_trained_serialization_;
}

}  // namespace dm::serve

#include "serve/retrain.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <utility>

#include "core/trainer.h"
#include "ml/metrics.h"
#include "ml/parallel_trainer.h"
#include "ml/serialization.h"
#include "util/log.h"
#include "util/rng.h"

namespace dm::serve {

// ---- ServingScorer ---------------------------------------------------------
//
// The per-shard serving seam: an epoch-pinned read of the current model plus
// the shadow side-channel.  One instance per shard (the Pin is not
// thread-safe); the driver outlives every scorer it hands out because the
// engine wiring (examples, tests) constructs the driver first and tears the
// engine down first.

class RetrainDriver::ServingScorer : public dm::core::WcgScorer {
 public:
  explicit ServingScorer(RetrainDriver* driver)
      : driver_(driver), pin_(driver->handle_.pin()) {}

  double score(const dm::core::Wcg& wcg, dm::core::FeatureCache* cache) override {
    const dm::core::Detector& detector = pin_.get();
    const double score = detector.score(wcg, cache);
    // Shadow side-channel: while a candidate is staged, feed it the same
    // query.  The incumbent's decision still drives the alert — the
    // candidate only observes.  The flag is the fast-out; steady state
    // (no candidate) adds one relaxed load to the scoring path.
    if (driver_->shadow_active_.load(std::memory_order_acquire)) {
      driver_->shadow_observe(wcg, cache,
                              score >= driver_->options_.decision_threshold);
    }
    return score;
  }

 private:
  RetrainDriver* driver_;
  ModelHandle::Pin pin_;
};

// ---- RetrainDriver ---------------------------------------------------------

std::unique_ptr<ModelStore> RetrainDriver::make_store(
    const ServeOptions& options) {
  if (options.store.dir.empty()) return nullptr;
  StoreOptions store = options.store;
  if (store.metrics == nullptr) store.metrics = options.metrics;
  if (store.clock == nullptr) store.clock = options.clock;
  return std::make_unique<ModelStore>(std::move(store));
}

RetrainDriver::Boot RetrainDriver::boot_model(
    std::shared_ptr<const dm::core::Detector> initial, ModelStore* store,
    const ServeOptions& options) {
  Boot boot;
  boot.model = std::move(initial);
  if (store != nullptr) {
    if (auto recovered = store->recover()) {
      boot.model = std::make_shared<const dm::core::Detector>(
          std::move(recovered->forest), options.features,
          options.decision_threshold);
      boot.version = recovered->entry.version;
      boot.recovered = true;
    }
  }
  return boot;
}

RetrainDriver::RetrainDriver(std::shared_ptr<const dm::core::Detector> initial,
                             ServeOptions options)
    : options_(std::move(options)),
      metrics_(options_.metrics != nullptr
                   ? dm::obs::ModelMetrics::of(*options_.metrics)
                   : dm::obs::model_metrics()),
      oracle_metrics_(options_.metrics != nullptr
                          ? dm::obs::OracleMetrics::of(*options_.metrics)
                          : dm::obs::oracle_metrics()),
      timer_(options_.clock),
      store_(make_store(options_)),
      boot_(boot_model(std::move(initial), store_.get(), options_)),
      handle_(boot_.model, boot_.version),
      reservoir_(options_.reservoir),
      boot_recovered_(boot_.recovered),
      pool_({.workers = 1, .queue_capacity = 8}) {
  metrics_.version.set(static_cast<std::int64_t>(handle_.version()));
  boot_.model.reset();  // the handle owns it now
  if (store_ != nullptr && !boot_recovered_) {
    // Empty store: commit the initial model as the lineage root, so a
    // restart before the first retrain still recovers the serving model.
    dm::ml::RandomForest forest = handle_.current()->forest();
    forest.set_model_version(handle_.version());
    ManifestEntry entry;
    entry.version = handle_.version();
    entry.parent = 0;
    entry.ts_ns = timer_.now();
    entry.reason = "initial";
    store_->persist(forest, std::move(entry));
  }
}

RetrainDriver::~RetrainDriver() {
  // pool_ is the first member destroyed (declared last): its destructor runs
  // any queued retrain to completion and joins before the rest of the driver
  // goes away.
}

void RetrainDriver::on_verdict(const dm::core::Wcg& wcg, double score,
                               bool alert, std::uint64_t ts_micros) {
  metrics_.reservoir_offered.add(1);
  const bool admitted = reservoir_.offer(wcg, score, alert, ts_micros);
  if (admitted) {
    metrics_.reservoir_admitted.add(1);
    metrics_.reservoir_infections.set(
        static_cast<std::int64_t>(reservoir_.infection_count()));
    metrics_.reservoir_benign.set(
        static_cast<std::int64_t>(reservoir_.benign_count()));
  }

  const std::uint64_t now_ns = timer_.now();
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(trigger_mutex_);
    if (!clock_anchored_) {
      // The clock trigger measures time since the *first* verdict, not since
      // construction — a driver built long before traffic starts should not
      // fire an empty retrain on the first transaction.
      clock_anchored_ = true;
      last_retrain_ns_ = now_ns;
    }
    if (admitted) ++admissions_since_retrain_;
    if (should_retrain_locked(now_ns) &&
        !retrain_in_flight_.exchange(true, std::memory_order_acq_rel)) {
      admissions_since_retrain_ = 0;
      last_retrain_ns_ = now_ns;
      fire = true;
    }
  }
  if (fire) pool_.submit([this] { run_retrain(); });

  // Delayed-oracle cadence: audits run on trace time, anchored at the first
  // verdict like the retrain clock trigger.
  if (options_.oracle != nullptr && options_.oracle_audit_every_s > 0.0) {
    bool audit = false;
    {
      std::lock_guard<std::mutex> lock(oracle_mutex_);
      if (!audit_anchored_) {
        audit_anchored_ = true;
        last_audit_micros_ = ts_micros;
      } else if (ts_micros >= last_audit_micros_ &&
                 static_cast<double>(ts_micros - last_audit_micros_) * 1e-6 >=
                     options_.oracle_audit_every_s) {
        last_audit_micros_ = ts_micros;
        audit = true;
      }
    }
    if (audit) audit_now(ts_micros);
  }
}

bool RetrainDriver::should_retrain_locked(std::uint64_t now_ns) {
  if (options_.retrain_every_admissions > 0 &&
      admissions_since_retrain_ >= options_.retrain_every_admissions) {
    return true;
  }
  if (options_.retrain_every_s > 0.0 && clock_anchored_) {
    const double elapsed_s =
        static_cast<double>(now_ns - last_retrain_ns_) * 1e-9;
    if (elapsed_s >= options_.retrain_every_s) return true;
  }
  return false;
}

std::function<void(const dm::core::Wcg&, double, bool, std::uint64_t)>
RetrainDriver::verdict_tap() {
  return [this](const dm::core::Wcg& wcg, double score, bool alert,
                std::uint64_t ts_micros) {
    on_verdict(wcg, score, alert, ts_micros);
  };
}

std::shared_ptr<dm::core::WcgScorer> RetrainDriver::make_scorer() {
  return std::make_shared<ServingScorer>(this);
}

namespace {

/// Moves a seeded holdout split out of `pool` into `fence`/`fence_labels`.
/// At least one sample is held out and at least one kept for training (pools
/// smaller than 2 are left whole).  The chosen indices are a pure function
/// of (pool size, seed, class), and the surviving pool keeps its original
/// relative order — so gated retrains stay deterministic.
void split_fence(std::vector<dm::core::Wcg>& pool, int label, double fraction,
                 std::uint64_t seed, std::vector<dm::core::Wcg>* fence,
                 std::vector<int>* fence_labels) {
  const std::size_t n = pool.size();
  if (n < 2) return;
  const auto want = static_cast<std::size_t>(
      std::llround(static_cast<double>(n) * fraction));
  const std::size_t k = std::clamp<std::size_t>(want, 1, n - 1);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  dm::util::Rng rng(dm::util::stream_seed(seed, static_cast<std::uint64_t>(label)));
  rng.shuffle(order);
  std::vector<std::size_t> held(order.begin(),
                                order.begin() + static_cast<std::ptrdiff_t>(k));
  std::sort(held.begin(), held.end());
  for (const std::size_t idx : held) {
    fence->push_back(std::move(pool[idx]));
    fence_labels->push_back(label);
  }
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(*it));
  }
}

}  // namespace

void RetrainDriver::run_retrain() {
  auto retrain_span = timer_.span(metrics_.retrain_ns);
  WcgReservoir::Snapshot snap = reservoir_.snapshot();
  if (snap.infections.size() < options_.min_per_class ||
      snap.benign.size() < options_.min_per_class) {
    retrain_span.cancel();
    retrain_in_flight_.store(false, std::memory_order_release);
    return;
  }

  // Fence split: hold a seeded per-class fraction of the snapshot out of
  // training; the candidate must meet the incumbent on it before it may
  // shadow-score.  Disabled (the default) trains on the full snapshot —
  // preserving the PR 6 byte-identity no-op fence exactly.
  std::vector<dm::core::Wcg> fence_wcgs;
  std::vector<int> fence_labels;
  const bool fence_enabled = options_.fence_holdout_fraction > 0.0;
  if (fence_enabled) {
    split_fence(snap.infections, 1, options_.fence_holdout_fraction,
                options_.fence_seed, &fence_wcgs, &fence_labels);
    split_fence(snap.benign, 0, options_.fence_holdout_fraction,
                options_.fence_seed, &fence_wcgs, &fence_labels);
  }

  // Train the candidate.  train_forest_parallel is a pure function of
  // (dataset, forest options) at every thread count, and the snapshot is a
  // pure function of the offer sequence — so retraining on an unchanged
  // reservoir yields a byte-identical forest (the no-op fence).
  dm::ml::TrainerOptions trainer;
  trainer.threads = options_.train_threads;
  trainer.metrics = options_.metrics;
  trainer.clock = options_.clock;
  const dm::ml::Dataset data = dm::core::dataset_from_wcgs(
      snap.infections, snap.benign, options_.features, trainer);
  dm::ml::RandomForest forest =
      dm::ml::train_forest_parallel(data, options_.forest, trainer);

  // Capture the serialization *before* the version stamp: the byte-identity
  // fence compares training outputs, and the prospective version differs
  // between two otherwise-identical retrains.
  {
    std::ostringstream out;
    dm::ml::save_forest(forest, out);
    std::lock_guard<std::mutex> lock(serialization_mutex_);
    last_trained_serialization_ = out.str();
  }
  retrains_.fetch_add(1, std::memory_order_relaxed);
  metrics_.retrains.add(1);

  // Prospective provenance stamp: only this driver publishes, and at most
  // one candidate is in flight, so current+1 is the version this forest
  // gets if it clears the gate.
  const std::uint64_t parent_version = handle_.version();
  forest.set_model_version(parent_version + 1);
  auto candidate = std::make_shared<const dm::core::Detector>(
      std::move(forest), options_.features, options_.decision_threshold);

  // Fence gate: score the held-out split with both models.  A candidate
  // that merely matches the incumbent's *decisions* sails through shadow
  // agreement; matching its F1 against the held-out labels is the bar that
  // catches faithfully-reproduced mistakes.
  double fence_f1 = 0.0;
  if (fence_enabled && !fence_wcgs.empty()) {
    metrics_.fence_evaluations.add(1);
    const std::shared_ptr<const dm::core::Detector> incumbent = handle_.current();
    dm::ml::Confusion candidate_confusion;
    dm::ml::Confusion incumbent_confusion;
    for (std::size_t i = 0; i < fence_wcgs.size(); ++i) {
      const bool truth = fence_labels[i] == 1;
      const bool candidate_alert =
          candidate->score(fence_wcgs[i]) >= options_.decision_threshold;
      const bool incumbent_alert =
          incumbent->score(fence_wcgs[i]) >= options_.decision_threshold;
      auto& cc = candidate_confusion;
      if (truth) {
        candidate_alert ? ++cc.true_positives : ++cc.false_negatives;
      } else {
        candidate_alert ? ++cc.false_positives : ++cc.true_negatives;
      }
      auto& ic = incumbent_confusion;
      if (truth) {
        incumbent_alert ? ++ic.true_positives : ++ic.false_negatives;
      } else {
        incumbent_alert ? ++ic.false_positives : ++ic.true_negatives;
      }
    }
    fence_f1 = candidate_confusion.f_score();
    const double incumbent_f1 = incumbent_confusion.f_score();
    if (fence_f1 < incumbent_f1 - options_.fence_epsilon) {
      fence_rejects_.fetch_add(1, std::memory_order_relaxed);
      metrics_.fence_rejects.add(1);
      rejected_.fetch_add(1, std::memory_order_relaxed);
      metrics_.candidates_rejected.add(1);
      dm::util::log_warn("serve: candidate rejected by fence set (F1 ",
                         fence_f1, " vs incumbent ", incumbent_f1, " - ",
                         options_.fence_epsilon, ") on ", fence_wcgs.size(),
                         " held-out samples");
      retrain_span.stop();
      retrain_in_flight_.store(false, std::memory_order_release);
      return;
    }
  }
  retrain_span.stop();

  if (!options_.shadow_before_cutover) {
    publish(std::move(candidate), "publish", parent_version, fence_f1);
    retrain_in_flight_.store(false, std::memory_order_release);
    return;
  }

  // Stage the shadow phase; retrain_in_flight_ stays true until the gate
  // resolves, so a second trigger cannot stack a second candidate.
  auto evaluator = std::make_shared<ShadowEvaluator>(
      std::move(candidate), options_.shadow, options_.decision_threshold,
      metrics_, options_.clock);
  {
    std::lock_guard<std::mutex> lock(shadow_mutex_);
    candidate_ = evaluator;
    last_evaluator_ = evaluator;
    candidate_parent_ = parent_version;
    candidate_fence_f1_ = fence_f1;
  }
  shadow_active_.store(true, std::memory_order_release);
  dm::util::log_info("serve: candidate trained (", snap.infections.size(),
                     " infection / ", snap.benign.size(),
                     " benign samples), shadow scoring toward version ",
                     handle_.version() + 1);
}

void RetrainDriver::shadow_observe(const dm::core::Wcg& wcg,
                                   dm::core::FeatureCache* cache,
                                   bool incumbent_alert) {
  std::shared_ptr<ShadowEvaluator> evaluator;
  {
    std::lock_guard<std::mutex> lock(shadow_mutex_);
    evaluator = candidate_;
  }
  if (evaluator == nullptr) return;  // resolved between the flag and the lock
  const ShadowEvaluator::Gate gate = evaluator->observe(wcg, cache, incumbent_alert);
  if (gate != ShadowEvaluator::Gate::kPending) resolve_candidate(evaluator, gate);
}

void RetrainDriver::resolve_candidate(
    const std::shared_ptr<ShadowEvaluator>& evaluator,
    ShadowEvaluator::Gate gate) {
  std::lock_guard<std::mutex> lock(shadow_mutex_);
  if (candidate_ != evaluator) return;  // another thread already resolved it
  candidate_.reset();
  shadow_active_.store(false, std::memory_order_release);
  if (gate == ShadowEvaluator::Gate::kPromote) {
    publish(evaluator->candidate(), "promote", candidate_parent_,
            candidate_fence_f1_);
  } else {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    metrics_.candidates_rejected.add(1);
    dm::util::log_warn("serve: candidate rejected at agreement rate ",
                       evaluator->agreement_rate(), " after ",
                       evaluator->scored(), " shadowed queries");
  }
  retrain_in_flight_.store(false, std::memory_order_release);
}

void RetrainDriver::publish(std::shared_ptr<const dm::core::Detector> detector,
                            std::string_view reason, std::uint64_t parent,
                            double fence_f1) {
  auto span = timer_.span(metrics_.swap_publish_ns);
  const std::shared_ptr<const dm::core::Detector> displaced = handle_.current();
  const std::uint64_t displaced_version = handle_.version();
  const std::uint64_t version = handle_.publish(std::move(detector));
  span.stop();
  {
    // Remember the displaced incumbent: the storeless rollback target.
    std::lock_guard<std::mutex> lock(previous_mutex_);
    previous_ = displaced;
    previous_version_ = displaced_version;
  }
  swaps_.fetch_add(1, std::memory_order_relaxed);
  metrics_.swaps.add(1);
  metrics_.version.set(static_cast<std::int64_t>(version));
  dm::util::log_info("serve: published model version ", version, " (", reason,
                     ")");
  if (store_ != nullptr) {
    // Durable commit *after* the swap: serving never waits on fsync, and a
    // crash in this window recovers the previous version — the documented
    // at-least-previous guarantee, not a serving regression.
    dm::ml::RandomForest forest = handle_.current()->forest();
    forest.set_model_version(version);
    ManifestEntry entry;
    entry.version = version;
    entry.parent = parent;
    entry.ts_ns = timer_.now();
    entry.fence_f1 = fence_f1;
    entry.reason = std::string(reason);
    store_->persist(forest, std::move(entry));
  }
}

bool RetrainDriver::rollback_now(std::string reason) {
  const std::uint64_t current_version = handle_.version();
  std::shared_ptr<const dm::core::Detector> target;
  std::uint64_t target_version = 0;
  if (store_ != nullptr) {
    // Walk the persisted lineage: newest manifest entry for the incumbent,
    // then its parent's *content*.  The parent field records the content
    // source, so rolling back a rollback keeps descending the lineage
    // instead of bouncing back to the just-demoted model.
    const std::vector<ManifestEntry> entries = store_->manifest();
    for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
      if (it->version != current_version) continue;
      if (it->parent == 0) break;  // lineage root: nothing to demote to
      if (auto forest = store_->load_version(it->parent)) {
        target = std::make_shared<const dm::core::Detector>(
            std::move(*forest), options_.features, options_.decision_threshold);
        target_version = it->parent;
      }
      break;
    }
  }
  if (target == nullptr) {
    std::lock_guard<std::mutex> lock(previous_mutex_);
    if (previous_ != nullptr && previous_version_ != 0 &&
        previous_version_ != current_version) {
      target = previous_;
      target_version = previous_version_;
    }
  }
  if (target == nullptr) {
    dm::util::log_warn("serve: rollback requested (", reason,
                       ") but no parent version is available");
    return false;
  }
  // Republish the parent's *content* under a fresh monotone version; the
  // version gauge and RCU epoch never move backwards.
  dm::ml::RandomForest forest = target->forest();
  forest.set_model_version(current_version + 1);
  auto detector = std::make_shared<const dm::core::Detector>(
      std::move(forest), options_.features, options_.decision_threshold);
  rollbacks_.fetch_add(1, std::memory_order_relaxed);
  metrics_.rollbacks.add(1);
  dm::util::log_info("serve: rolling back version ", current_version,
                     " to the content of version ", target_version, " (",
                     reason, ")");
  publish(std::move(detector), reason, target_version, 0.0);
  return true;
}

RetrainDriver::AuditResult RetrainDriver::audit_now(std::uint64_t now_micros) {
  AuditResult result;
  if (options_.oracle == nullptr) return result;
  auto span = timer_.span(oracle_metrics_.audit_ns);
  oracle_metrics_.audits.add(1);
  LabelOracle* oracle = options_.oracle.get();
  const WcgReservoir::AuditOutcome outcome = reservoir_.audit(
      now_micros, options_.oracle_delay_s,
      [oracle, now_micros](const dm::core::Wcg& wcg, std::uint64_t ts_micros) {
        return oracle->label(wcg, ts_micros, now_micros);
      });
  result.audited = outcome.audited;
  result.confirmed = outcome.confirmed;
  result.overturned = outcome.overturned;
  result.unavailable = outcome.unavailable;
  oracle_metrics_.audited.add(outcome.audited);
  oracle_metrics_.confirmed.add(outcome.confirmed);
  oracle_metrics_.overturned.add(outcome.overturned);
  oracle_metrics_.unavailable.add(outcome.unavailable);
  if (outcome.overturned > 0) {
    metrics_.reservoir_infections.set(
        static_cast<std::int64_t>(reservoir_.infection_count()));
    metrics_.reservoir_benign.set(
        static_cast<std::int64_t>(reservoir_.benign_count()));
  }

  // Demotion trigger: enough overturns since the last demotion, in absolute
  // count *and* as a fraction of what was audited — a trickle of overturns
  // across thousands of confirmations should not demote anyone.
  bool demote = false;
  {
    std::lock_guard<std::mutex> lock(oracle_mutex_);
    audited_since_demotion_ += outcome.audited;
    overturned_since_demotion_ += outcome.overturned;
    if (overturned_since_demotion_ >= options_.oracle_min_overturns &&
        static_cast<double>(overturned_since_demotion_) >=
            options_.oracle_overturn_fraction *
                static_cast<double>(audited_since_demotion_)) {
      demote = true;
      audited_since_demotion_ = 0;
      overturned_since_demotion_ = 0;
    }
  }
  if (demote) {
    oracle_metrics_.demotions.add(1);
    dm::util::log_warn(
        "serve: delayed oracle overturned enough verdicts — demoting the "
        "incumbent and retraining on the corrected corpus");
    // A staged candidate was trained on the now-corrected (then wrong)
    // labels: discard it before demoting, releasing the in-flight slot so
    // the corrective retrain below can claim it.
    {
      std::lock_guard<std::mutex> lock(shadow_mutex_);
      if (candidate_ != nullptr) {
        candidate_.reset();
        shadow_active_.store(false, std::memory_order_release);
        rejected_.fetch_add(1, std::memory_order_relaxed);
        metrics_.candidates_rejected.add(1);
        retrain_in_flight_.store(false, std::memory_order_release);
      }
    }
    result.demoted = rollback_now("oracle-demotion");
    if (!retrain_in_flight_.exchange(true, std::memory_order_acq_rel)) {
      {
        std::lock_guard<std::mutex> lock(trigger_mutex_);
        admissions_since_retrain_ = 0;
        last_retrain_ns_ = timer_.now();
        clock_anchored_ = true;
      }
      pool_.submit([this] { run_retrain(); });
      result.retrain_fired = true;
    }
  }
  span.stop();
  return result;
}

bool RetrainDriver::retrain_now() {
  if (retrain_in_flight_.exchange(true, std::memory_order_acq_rel)) {
    return false;  // a retrain or staged candidate is already in flight
  }
  {
    std::lock_guard<std::mutex> lock(trigger_mutex_);
    admissions_since_retrain_ = 0;
    last_retrain_ns_ = timer_.now();
    clock_anchored_ = true;
  }
  const std::uint64_t before = retrains_.load(std::memory_order_relaxed);
  pool_.submit([this] { run_retrain(); });
  pool_.drain();
  return retrains_.load(std::memory_order_relaxed) > before;
}

void RetrainDriver::drain() { pool_.drain(); }

double RetrainDriver::shadow_agreement_rate() const {
  std::lock_guard<std::mutex> lock(shadow_mutex_);
  if (last_evaluator_ == nullptr) return 1.0;
  return last_evaluator_->agreement_rate();
}

std::string RetrainDriver::last_trained_serialization() const {
  std::lock_guard<std::mutex> lock(serialization_mutex_);
  return last_trained_serialization_;
}

}  // namespace dm::serve

#include "serve/oracle.h"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "util/hash.h"

namespace dm::serve {

std::string wcg_payload_digest(const dm::core::Wcg& wcg) {
  // Nodes are walked in index order but folded into a canonical string via
  // the host's sorted position: WcgNode storage order depends on insertion,
  // and the digest must not.  Hosts, URI sets, and payload tallies are all
  // ordered containers already, so one sort over (host -> canonical chunk)
  // pairs makes the whole key order-free.
  std::vector<std::pair<std::string, std::string>> chunks;
  for (const dm::core::WcgNode& node : wcg.nodes()) {
    if (node.payloads_served.empty()) continue;
    std::string chunk = node.host;
    chunk += '|';
    for (const auto& [type, count] : node.payloads_served) {
      chunk += 't';
      chunk += std::to_string(static_cast<int>(type));
      chunk += ':';
      chunk += std::to_string(count);
      chunk += ';';
    }
    chunk += '|';
    for (const std::string& uri : node.uris) {
      chunk += uri;
      chunk += ';';
    }
    chunks.emplace_back(node.host, std::move(chunk));
  }
  std::sort(chunks.begin(), chunks.end());
  std::string key = "wcg-payloads|";
  for (auto& [host, chunk] : chunks) {
    key += chunk;
    key += '#';
  }
  return dm::util::digest_hex(key);
}

VtOracle::VtOracle(std::shared_ptr<const dm::baseline::VirusTotalSim> sim,
                   double latency_s)
    : sim_(std::move(sim)), latency_s_(latency_s) {
  if (sim_ == nullptr) {
    throw std::invalid_argument("VtOracle: simulator must be non-null");
  }
}

std::optional<bool> VtOracle::label(const dm::core::Wcg& wcg,
                                    std::uint64_t ts_micros,
                                    std::uint64_t query_micros) {
  if (outage()) return std::nullopt;
  if (query_micros < ts_micros) return std::nullopt;
  if (static_cast<double>(query_micros - ts_micros) < latency_s_ * 1e6) {
    return std::nullopt;
  }
  const std::string digest = wcg_payload_digest(wcg);
  const double query_day = static_cast<double>(query_micros) / 86'400e6;
  const dm::baseline::ScanResult result = sim_->scan(digest, query_day);
  // Unknown digests and timed-out scans carry no information — the payload
  // was never registered (or the scan failed), not confirmed benign.
  if (result.timed_out || !result.known) return std::nullopt;
  return sim_->flags_malicious(result);
}

}  // namespace dm::serve

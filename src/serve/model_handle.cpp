#include "serve/model_handle.h"

#include <stdexcept>
#include <utility>

namespace dm::serve {

ModelHandle::ModelHandle(std::shared_ptr<const dm::core::Detector> initial,
                         std::uint64_t initial_version)
    : current_(std::move(initial)),
      version_(initial_version == 0 ? 1 : initial_version) {
  if (current_ == nullptr) {
    throw std::invalid_argument("ModelHandle: initial model must be non-null");
  }
}

std::uint64_t ModelHandle::publish(
    std::shared_ptr<const dm::core::Detector> next) {
  if (next == nullptr) {
    throw std::invalid_argument("ModelHandle: published model must be non-null");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  current_ = std::move(next);
  // Release-publish *after* the pointer swap: a reader that observes the new
  // version and takes the mutex is guaranteed to copy the new pointer.
  const std::uint64_t v = version_.load(std::memory_order_relaxed) + 1;
  version_.store(v, std::memory_order_release);
  return v;
}

std::shared_ptr<const dm::core::Detector> ModelHandle::current() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_;
}

void ModelHandle::Pin::refresh() {
  std::lock_guard<std::mutex> lock(handle_->mutex_);
  pinned_ = handle_->current_;
  // Read under the same lock publish() writes under, so the (pointer,
  // version) pair is always consistent.
  pinned_version_ = handle_->version_.load(std::memory_order_relaxed);
}

}  // namespace dm::serve

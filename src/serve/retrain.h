// RetrainDriver: the model-lifecycle loop around the live engine.
//
//                    verdict tap (core::OnlineOptions::verdict_tap)
//   live engine  ────────────────────────────────►  WcgReservoir
//        ▲                                               │ trigger (count
//        │ RCU hot swap                                  │  or clock)
//   ModelHandle ◄── cutover gate ◄── ShadowEvaluator ◄── background retrain
//                                                        (train_forest_parallel
//                                                         on a WorkerPool)
//
// The driver owns every piece of that loop:
//   * on_verdict() — installed as the engine's verdict tap — samples scored
//     WCGs into the reservoir and fires a retrain when the count or clock
//     trigger lands (both off by default; tests also call retrain_now()).
//   * Retraining runs on a private one-worker pool, off the scoring path:
//     snapshot the reservoir, extract features, train a candidate forest
//     via PR 5's deterministic parallel trainer (train_threads wide), wrap
//     it in a Detector.  Training is a pure function of (snapshot, forest
//     options), so retraining on an unchanged reservoir yields a
//     byte-identical forest — the no-op fence bench_serve enforces.
//   * The candidate then shadow-scores live queries beside the incumbent
//     (see serve/shadow.h) and is published into the ModelHandle only when
//     the agreement gate clears — or immediately when
//     ServeOptions::shadow_before_cutover is off.
//   * make_scorer() builds the per-shard serving scorer: an epoch-pinned
//     read of the current model plus the shadow side-channel.  Wire it as
//     runtime::ShardedOptions::scorer_factory (one scorer per shard) or as
//     core::OnlineOptions::scorer for a sequential engine.
//
// Every state change lands in the dm.model.* panel (obs::ModelMetrics).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "core/detector.h"
#include "core/online.h"
#include "ml/random_forest.h"
#include "obs/pipeline.h"
#include "obs/timer.h"
#include "runtime/worker_pool.h"
#include "serve/model_handle.h"
#include "serve/reservoir.h"
#include "serve/shadow.h"

namespace dm::serve {

struct ServeOptions {
  ReservoirOptions reservoir;
  ShadowOptions shadow;
  /// Kick a retrain after every N reservoir *admissions* (0 = no count
  /// trigger).  Admissions, not offers: a saturated reservoir that rejects
  /// everything is not learning anything new.
  std::size_t retrain_every_admissions = 0;
  /// Kick a retrain when this many seconds of verdict-tap clock time have
  /// passed since the last one (0 = no clock trigger).  Uses the injectable
  /// `clock`, so tests drive it deterministically.
  double retrain_every_s = 0.0;
  /// Run the candidate through the shadow-scoring gate before cutover.
  /// When false a trained candidate is published immediately.
  bool shadow_before_cutover = true;
  /// Retrains are skipped (not counted) while the reservoir holds fewer
  /// than this many samples in either class.
  std::size_t min_per_class = 1;
  /// Worker threads for the candidate training itself (the retrain task
  /// always runs on the driver's single background worker).
  std::size_t train_threads = 1;
  /// Training configuration for candidates; seed fixed here so retraining
  /// on an identical reservoir is byte-identical (the no-op fence).
  dm::ml::ForestOptions forest;
  /// Feature extraction for candidate detectors — must match the incumbent's
  /// so shadow scoring can share the per-session extraction cache.
  dm::core::FeatureExtractorOptions features;
  /// Decision threshold for candidate detectors and shadow hard decisions;
  /// keep equal to OnlineOptions::decision_threshold.
  double decision_threshold = 0.4;
  /// Observability (null -> process-wide registry / steady clock).
  dm::obs::MetricsRegistry* metrics = nullptr;
  dm::obs::ClockFn clock = nullptr;
};

class RetrainDriver {
 public:
  /// `initial` is published as model version 1.
  RetrainDriver(std::shared_ptr<const dm::core::Detector> initial,
                ServeOptions options = {});
  ~RetrainDriver();  // drains in-flight retrains

  RetrainDriver(const RetrainDriver&) = delete;
  RetrainDriver& operator=(const RetrainDriver&) = delete;

  /// The verdict tap: offer the scored WCG to the reservoir, then check the
  /// retrain triggers.  Thread-safe (called from every shard worker).
  void on_verdict(const dm::core::Wcg& wcg, double score, bool alert,
                  std::uint64_t ts_micros);

  /// Convenience: on_verdict as a std::function for
  /// core::OnlineOptions::verdict_tap.
  std::function<void(const dm::core::Wcg&, double, bool, std::uint64_t)>
  verdict_tap();

  /// A serving scorer holding its own model pin.  One per shard / engine —
  /// wire via runtime::ShardedOptions::scorer_factory or
  /// core::OnlineOptions::scorer.
  std::shared_ptr<dm::core::WcgScorer> make_scorer();

  /// Synchronous retrain on the current reservoir (ops/test seam): runs the
  /// full trigger path — train, then shadow-stage or publish — and waits
  /// for the background task.  Returns false when skipped (below
  /// min_per_class, empty reservoir, or a retrain already in flight).
  /// Not safe concurrently with a live verdict stream (drain() semantics).
  bool retrain_now();

  /// Waits for any in-flight background retrain.  Call after the stream is
  /// finished (not concurrently with on_verdict).
  void drain();

  ModelHandle& handle() noexcept { return handle_; }
  const WcgReservoir& reservoir() const noexcept { return reservoir_; }
  std::uint64_t version() const noexcept { return handle_.version(); }
  std::uint64_t retrains() const noexcept {
    return retrains_.load(std::memory_order_relaxed);
  }
  std::uint64_t swaps() const noexcept {
    return swaps_.load(std::memory_order_relaxed);
  }
  std::uint64_t candidates_rejected() const noexcept {
    return rejected_.load(std::memory_order_relaxed);
  }
  /// Whether a candidate is currently shadow-scoring.
  bool shadow_active() const noexcept {
    return shadow_active_.load(std::memory_order_acquire);
  }
  /// Agreement rate of the current/last shadow phase (1.0 if none yet).
  double shadow_agreement_rate() const;

  /// Serialization of the most recently *trained* candidate forest, before
  /// any version stamp — the byte-identity fence hook: two retrains on an
  /// unchanged reservoir must return equal strings here.
  std::string last_trained_serialization() const;

 private:
  class ServingScorer;

  /// The background task body: snapshot -> dataset -> candidate forest ->
  /// shadow-stage or publish.
  void run_retrain();

  /// Called by scorers on every live query while a shadow phase is active.
  void shadow_observe(const dm::core::Wcg& wcg, dm::core::FeatureCache* cache,
                      bool incumbent_alert);

  /// Serialized promote/reject of the evaluator (idempotent per candidate).
  void resolve_candidate(const std::shared_ptr<ShadowEvaluator>& evaluator,
                         ShadowEvaluator::Gate gate);

  /// Publishes `detector` (stamping its version) and updates the panel.
  void publish(std::shared_ptr<const dm::core::Detector> detector);

  /// True when a trigger condition holds (callers must have admitted work).
  bool should_retrain_locked(std::uint64_t now_ns);

  ServeOptions options_;
  dm::obs::ModelMetrics metrics_;
  dm::obs::StageTimer timer_;
  ModelHandle handle_;
  WcgReservoir reservoir_;

  /// Trigger state (guarded by trigger_mutex_; touched per admission only).
  std::mutex trigger_mutex_;
  std::uint64_t admissions_since_retrain_ = 0;
  std::uint64_t last_retrain_ns_ = 0;
  bool clock_anchored_ = false;

  /// True while a retrain task is queued/running or a candidate is staged —
  /// a second trigger in that window is ignored, not queued.
  std::atomic<bool> retrain_in_flight_{false};

  /// Shadow phase (candidate_ guarded by shadow_mutex_; the flag is the
  /// hot-path fast-out).
  std::atomic<bool> shadow_active_{false};
  mutable std::mutex shadow_mutex_;
  std::shared_ptr<ShadowEvaluator> candidate_;
  std::shared_ptr<ShadowEvaluator> last_evaluator_;  // for post-hoc stats

  mutable std::mutex serialization_mutex_;
  std::string last_trained_serialization_;

  std::atomic<std::uint64_t> retrains_{0};
  std::atomic<std::uint64_t> swaps_{0};
  std::atomic<std::uint64_t> rejected_{0};

  /// One background worker: at most one retrain in flight, serialized FIFO.
  /// Declared last so it is destroyed first — the pool joins (running any
  /// queued retrain to completion) while every member the task touches is
  /// still alive.
  dm::runtime::WorkerPool pool_;
};

}  // namespace dm::serve

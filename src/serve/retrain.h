// RetrainDriver: the model-lifecycle loop around the live engine.
//
//                    verdict tap (core::OnlineOptions::verdict_tap)
//   live engine  ────────────────────────────────►  WcgReservoir
//        ▲                                               │ trigger (count
//        │ RCU hot swap                                  │  or clock)
//   ModelHandle ◄── cutover gate ◄── ShadowEvaluator ◄── background retrain
//                                                        (train_forest_parallel
//                                                         on a WorkerPool)
//
// The driver owns every piece of that loop:
//   * on_verdict() — installed as the engine's verdict tap — samples scored
//     WCGs into the reservoir and fires a retrain when the count or clock
//     trigger lands (both off by default; tests also call retrain_now()).
//   * Retraining runs on a private one-worker pool, off the scoring path:
//     snapshot the reservoir, extract features, train a candidate forest
//     via PR 5's deterministic parallel trainer (train_threads wide), wrap
//     it in a Detector.  Training is a pure function of (snapshot, forest
//     options), so retraining on an unchanged reservoir yields a
//     byte-identical forest — the no-op fence bench_serve enforces.
//   * Before a candidate may stage, it must clear the held-out *fence set*
//     gate (ServeOptions::fence_holdout_fraction): a seeded split of the
//     reservoir snapshot is held out of training and the candidate's F1 on
//     it must reach the incumbent's minus fence_epsilon.
//   * The candidate then shadow-scores live queries beside the incumbent
//     (see serve/shadow.h) and is published into the ModelHandle only when
//     the agreement gate clears — or immediately when
//     ServeOptions::shadow_before_cutover is off.
//   * Every publication is durably committed to the serve::ModelStore when
//     one is configured; construction recovers the persisted lineage and
//     rollback_now() demotes to a parent version.
//   * A delayed LabelOracle (ServeOptions::oracle) re-labels aged reservoir
//     entries; enough overturned verdicts demote the incumbent via rollback
//     and fire a retrain on the corrected corpus (audit_now()).
//   * make_scorer() builds the per-shard serving scorer: an epoch-pinned
//     read of the current model plus the shadow side-channel.  Wire it as
//     runtime::ShardedOptions::scorer_factory (one scorer per shard) or as
//     core::OnlineOptions::scorer for a sequential engine.
//
// Every state change lands in the dm.model.* panel (obs::ModelMetrics).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "core/detector.h"
#include "core/online.h"
#include "ml/random_forest.h"
#include "obs/pipeline.h"
#include "obs/timer.h"
#include "runtime/worker_pool.h"
#include "serve/model_handle.h"
#include "serve/model_store.h"
#include "serve/oracle.h"
#include "serve/reservoir.h"
#include "serve/shadow.h"

namespace dm::serve {

struct ServeOptions {
  ReservoirOptions reservoir;
  ShadowOptions shadow;
  /// Kick a retrain after every N reservoir *admissions* (0 = no count
  /// trigger).  Admissions, not offers: a saturated reservoir that rejects
  /// everything is not learning anything new.
  std::size_t retrain_every_admissions = 0;
  /// Kick a retrain when this many seconds of verdict-tap clock time have
  /// passed since the last one (0 = no clock trigger).  Uses the injectable
  /// `clock`, so tests drive it deterministically.
  double retrain_every_s = 0.0;
  /// Run the candidate through the shadow-scoring gate before cutover.
  /// When false a trained candidate is published immediately.
  bool shadow_before_cutover = true;
  /// Retrains are skipped (not counted) while the reservoir holds fewer
  /// than this many samples in either class.
  std::size_t min_per_class = 1;
  /// Worker threads for the candidate training itself (the retrain task
  /// always runs on the driver's single background worker).
  std::size_t train_threads = 1;
  /// Training configuration for candidates; seed fixed here so retraining
  /// on an identical reservoir is byte-identical (the no-op fence).
  dm::ml::ForestOptions forest;
  /// Feature extraction for candidate detectors — must match the incumbent's
  /// so shadow scoring can share the per-session extraction cache.
  dm::core::FeatureExtractorOptions features;
  /// Decision threshold for candidate detectors and shadow hard decisions;
  /// keep equal to OnlineOptions::decision_threshold.
  double decision_threshold = 0.4;
  /// Observability (null -> process-wide registry / steady clock).
  dm::obs::MetricsRegistry* metrics = nullptr;
  dm::obs::ClockFn clock = nullptr;

  /// Crash-safe persistence (serve/model_store.h).  A non-empty
  /// `store.dir` enables the store: every publication is durably committed,
  /// the constructor recovers the newest valid on-disk version (overriding
  /// the `initial` detector and resuming its version number), and rollback
  /// walks the persisted lineage.  `store.metrics`/`store.clock` default to
  /// this struct's when unset.
  StoreOptions store;

  /// Held-out fence gate: before a candidate may shadow-score (or publish),
  /// it must meet the incumbent's F1 on a seeded held-out split of the
  /// reservoir snapshot.  Agreement alone cannot catch a candidate that
  /// faithfully reproduces the incumbent's mistakes; the fence can.
  /// Fraction of each class held out (0 = gate disabled — the default
  /// preserves the byte-identity no-op fence, which trains on the full
  /// snapshot).  At least one sample per class is held out and at least one
  /// is kept for training.
  double fence_holdout_fraction = 0.0;
  /// Pass condition: candidate_f1 >= incumbent_f1 - fence_epsilon.
  double fence_epsilon = 0.02;
  /// Seed of the fence split (class c shuffles with
  /// util::stream_seed(fence_seed, c)) — the split is a pure function of
  /// (snapshot, fence_seed), keeping gated retrains deterministic.
  std::uint64_t fence_seed = 42;

  /// Delayed oracle (serve/oracle.h; null = no label correction).  Audits
  /// re-label reservoir entries older than `oracle_delay_s`; when the
  /// oracle overturns enough recent incumbent verdicts the incumbent is
  /// demoted via rollback and a retrain fires on the corrected corpus.
  std::shared_ptr<LabelOracle> oracle;
  /// Trace-time age an entry must reach before it is offered to the oracle.
  double oracle_delay_s = 0.0;
  /// Audit cadence in trace seconds, driven off the verdict tap (0 = audits
  /// run only via audit_now()).
  double oracle_audit_every_s = 0.0;
  /// Demotion trigger: at least this many overturns since the last demotion…
  std::size_t oracle_min_overturns = 4;
  /// …and overturns >= this fraction of entries audited since then.
  double oracle_overturn_fraction = 0.25;
};

class RetrainDriver {
 public:
  /// `initial` is published as model version 1 — unless the model store is
  /// enabled and holds a recoverable lineage, in which case the recovered
  /// head (forest + version) takes over and `initial` is discarded.
  RetrainDriver(std::shared_ptr<const dm::core::Detector> initial,
                ServeOptions options = {});
  ~RetrainDriver();  // drains in-flight retrains

  RetrainDriver(const RetrainDriver&) = delete;
  RetrainDriver& operator=(const RetrainDriver&) = delete;

  /// The verdict tap: offer the scored WCG to the reservoir, then check the
  /// retrain triggers.  Thread-safe (called from every shard worker).
  void on_verdict(const dm::core::Wcg& wcg, double score, bool alert,
                  std::uint64_t ts_micros);

  /// Convenience: on_verdict as a std::function for
  /// core::OnlineOptions::verdict_tap.
  std::function<void(const dm::core::Wcg&, double, bool, std::uint64_t)>
  verdict_tap();

  /// A serving scorer holding its own model pin.  One per shard / engine —
  /// wire via runtime::ShardedOptions::scorer_factory or
  /// core::OnlineOptions::scorer.
  std::shared_ptr<dm::core::WcgScorer> make_scorer();

  /// Synchronous retrain on the current reservoir (ops/test seam): runs the
  /// full trigger path — train, then shadow-stage or publish — and waits
  /// for the background task.  Returns false when skipped (below
  /// min_per_class, empty reservoir, or a retrain already in flight).
  /// Not safe concurrently with a live verdict stream (drain() semantics).
  bool retrain_now();

  /// Waits for any in-flight background retrain.  Call after the stream is
  /// finished (not concurrently with on_verdict).
  void drain();

  /// Explicit rollback: demote the incumbent to its parent's *content*,
  /// republished under a fresh monotone version (readers never see the
  /// version counter move backwards).  The parent comes from the persisted
  /// manifest lineage when the store is enabled, else from the in-memory
  /// previously-published model.  Returns false when no parent is available.
  bool rollback_now(std::string reason = "rollback");

  /// Outcome of one delayed-oracle audit (see ServeOptions oracle knobs).
  struct AuditResult {
    std::uint64_t audited = 0;
    std::uint64_t confirmed = 0;
    std::uint64_t overturned = 0;
    std::uint64_t unavailable = 0;
    bool demoted = false;        // overturn threshold tripped -> rollback
    bool retrain_fired = false;  // corrective retrain submitted
  };

  /// Runs one oracle audit sweep at trace time `now_micros`: re-labels
  /// eligible reservoir entries, corrects overturned ones, and — when the
  /// overturn threshold trips — discards any staged candidate, demotes the
  /// incumbent via rollback, and fires a retrain on the corrected corpus.
  /// No-op (all zeros) without an oracle.  Also driven automatically off
  /// the verdict tap every `oracle_audit_every_s` of trace time.
  AuditResult audit_now(std::uint64_t now_micros);

  ModelHandle& handle() noexcept { return handle_; }
  const WcgReservoir& reservoir() const noexcept { return reservoir_; }
  std::uint64_t version() const noexcept { return handle_.version(); }
  std::uint64_t retrains() const noexcept {
    return retrains_.load(std::memory_order_relaxed);
  }
  std::uint64_t swaps() const noexcept {
    return swaps_.load(std::memory_order_relaxed);
  }
  std::uint64_t candidates_rejected() const noexcept {
    return rejected_.load(std::memory_order_relaxed);
  }
  std::uint64_t rollbacks() const noexcept {
    return rollbacks_.load(std::memory_order_relaxed);
  }
  std::uint64_t fence_rejects() const noexcept {
    return fence_rejects_.load(std::memory_order_relaxed);
  }
  /// The model store (null when persistence is disabled).
  const ModelStore* store() const noexcept { return store_.get(); }
  /// Whether construction resumed a persisted lineage instead of `initial`.
  bool recovered_from_store() const noexcept { return boot_recovered_; }
  /// Whether a candidate is currently shadow-scoring.
  bool shadow_active() const noexcept {
    return shadow_active_.load(std::memory_order_acquire);
  }
  /// Agreement rate of the current/last shadow phase (1.0 if none yet).
  double shadow_agreement_rate() const;

  /// Serialization of the most recently *trained* candidate forest, before
  /// any version stamp — the byte-identity fence hook: two retrains on an
  /// unchanged reservoir must return equal strings here.
  std::string last_trained_serialization() const;

 private:
  class ServingScorer;

  /// What the handle boots with: `initial`, or the store's recovered head.
  struct Boot {
    std::shared_ptr<const dm::core::Detector> model;
    std::uint64_t version = 1;
    bool recovered = false;
  };
  static std::unique_ptr<ModelStore> make_store(const ServeOptions& options);
  static Boot boot_model(std::shared_ptr<const dm::core::Detector> initial,
                         ModelStore* store, const ServeOptions& options);

  /// The background task body: snapshot -> fence split -> dataset ->
  /// candidate forest -> fence gate -> shadow-stage or publish.
  void run_retrain();

  /// Called by scorers on every live query while a shadow phase is active.
  void shadow_observe(const dm::core::Wcg& wcg, dm::core::FeatureCache* cache,
                      bool incumbent_alert);

  /// Serialized promote/reject of the evaluator (idempotent per candidate).
  void resolve_candidate(const std::shared_ptr<ShadowEvaluator>& evaluator,
                         ShadowEvaluator::Gate gate);

  /// Publishes `detector`, remembers the displaced incumbent for in-memory
  /// rollback, updates the panel, and durably persists the new version
  /// (parent/fence/reason land in the manifest entry).
  void publish(std::shared_ptr<const dm::core::Detector> detector,
               std::string_view reason, std::uint64_t parent, double fence_f1);

  /// True when a trigger condition holds (callers must have admitted work).
  bool should_retrain_locked(std::uint64_t now_ns);

  ServeOptions options_;
  dm::obs::ModelMetrics metrics_;
  dm::obs::OracleMetrics oracle_metrics_;
  dm::obs::StageTimer timer_;
  std::unique_ptr<ModelStore> store_;  // null when persistence is disabled
  Boot boot_;                          // handle_'s initializer; kept for flags
  ModelHandle handle_;
  WcgReservoir reservoir_;
  bool boot_recovered_ = false;

  /// Trigger state (guarded by trigger_mutex_; touched per admission only).
  std::mutex trigger_mutex_;
  std::uint64_t admissions_since_retrain_ = 0;
  std::uint64_t last_retrain_ns_ = 0;
  bool clock_anchored_ = false;

  /// True while a retrain task is queued/running or a candidate is staged —
  /// a second trigger in that window is ignored, not queued.
  std::atomic<bool> retrain_in_flight_{false};

  /// Shadow phase (candidate_ guarded by shadow_mutex_; the flag is the
  /// hot-path fast-out).  Parent/fence provenance of the staged candidate
  /// travel with it so promotion writes them into the manifest.
  std::atomic<bool> shadow_active_{false};
  mutable std::mutex shadow_mutex_;
  std::shared_ptr<ShadowEvaluator> candidate_;
  std::shared_ptr<ShadowEvaluator> last_evaluator_;  // for post-hoc stats
  std::uint64_t candidate_parent_ = 0;
  double candidate_fence_f1_ = 0.0;

  /// The displaced incumbent, for rollback when no store lineage exists.
  mutable std::mutex previous_mutex_;
  std::shared_ptr<const dm::core::Detector> previous_;
  std::uint64_t previous_version_ = 0;

  /// Oracle audit state (cadence anchor + overturn accumulator since the
  /// last demotion).
  std::mutex oracle_mutex_;
  std::uint64_t last_audit_micros_ = 0;
  bool audit_anchored_ = false;
  std::uint64_t audited_since_demotion_ = 0;
  std::uint64_t overturned_since_demotion_ = 0;

  mutable std::mutex serialization_mutex_;
  std::string last_trained_serialization_;

  std::atomic<std::uint64_t> retrains_{0};
  std::atomic<std::uint64_t> swaps_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> rollbacks_{0};
  std::atomic<std::uint64_t> fence_rejects_{0};

  /// One background worker: at most one retrain in flight, serialized FIFO.
  /// Declared last so it is destroyed first — the pool joins (running any
  /// queued retrain to completion) while every member the task touches is
  /// still alive.
  dm::runtime::WorkerPool pool_;
};

}  // namespace dm::serve

// Verdict-labeled WCG reservoir: the retraining corpus of the continual-
// learning loop.
//
// The online engine's verdict tap offers every *completed* classifier query
// — the scored potential-infection WCG plus its hard decision — to this
// sampler.  Holding the full verdict stream would grow without bound, so the
// reservoir keeps a fixed-size, per-class sample:
//
//   * Pure reservoir mode (window_s == 0): classic Algorithm R per class —
//     after k items the reservoir holds a uniform sample of everything
//     offered to that class, each survivor with probability capacity/offered
//     (Storlie et al.'s rolling-retraining argument wants exactly this: old
//     and new traffic both represented, weight decaying as the stream
//     grows).  serve_reservoir_test holds the uniformity property.
//   * Time-window mode (window_s > 0): additionally evicts samples older
//     than the window relative to the newest admission, so the corpus tracks
//     only recent traffic — the paper's Table 6 observation that detection
//     quality follows training-corpus recency.
//
// Determinism: admission is driven by a private counter-based RNG stream per
// class (util::stream_seed off ReservoirOptions::seed), so the sample is a
// pure function of (offer sequence, options) — which is what lets the no-op
// retrain fence demand a byte-identical forest.
//
// Thread-safety: offer()/snapshot() are mutex-guarded.  The tap runs on
// shard worker threads, but only on completed verdicts (orders of magnitude
// rarer than transactions), and the common rejected-offer path copies
// nothing — the WCG is copied only on admission.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <vector>

#include "core/wcg.h"
#include "util/rng.h"

namespace dm::serve {

struct ReservoirOptions {
  /// Samples retained per class (infection / benign).
  std::size_t capacity_per_class = 256;
  /// Seed of the admission RNG streams (class c draws from
  /// util::stream_seed(seed, c)).
  std::uint64_t seed = 42;
  /// Optional recency window in seconds of *trace* time (0 = pure
  /// reservoir): samples whose verdict timestamp trails the newest admitted
  /// one by more than this are evicted on the next offer.
  double window_s = 0.0;
};

/// One admitted sample: the scored WCG and the verdict that labeled it.
struct LabeledWcg {
  dm::core::Wcg wcg;
  double score = 0.0;
  bool infection = false;       // the classifier's hard decision
  std::uint64_t ts_micros = 0;  // trace timestamp of the verdict
  /// Set once a delayed oracle has confirmed or corrected the label; audited
  /// entries are never re-queried.
  bool oracle_audited = false;
};

class WcgReservoir {
 public:
  explicit WcgReservoir(ReservoirOptions options = {});

  /// Offers one verdict-labeled WCG; returns true when admitted (copied into
  /// the sample).  Thread-safe.
  bool offer(const dm::core::Wcg& wcg, double score, bool infection,
             std::uint64_t ts_micros);

  /// A consistent copy of the current sample, split by class in admission-
  /// slot order — the deterministic training input for RetrainDriver.
  struct Snapshot {
    std::vector<dm::core::Wcg> infections;
    std::vector<dm::core::Wcg> benign;
    std::uint64_t offered = 0;
    std::uint64_t admitted = 0;
  };
  Snapshot snapshot() const;

  /// Outcome of one delayed-oracle audit sweep (conservation: audited ==
  /// confirmed + overturned; unavailable entries stay eligible).
  struct AuditOutcome {
    std::uint64_t audited = 0;
    std::uint64_t confirmed = 0;
    std::uint64_t overturned = 0;
    std::uint64_t unavailable = 0;
  };

  /// Re-labels entries through a delayed oracle.  Every un-audited entry at
  /// least `min_age_s` of trace time old is offered to `oracle(wcg,
  /// ts_micros)`:
  ///   * nullopt         → counted unavailable, stays eligible next sweep
  ///   * matching label  → marked audited (confirmed)
  ///   * differing label → the entry is *moved* to the other class with the
  ///     corrected label (overturned).  If the target class is at capacity
  ///     its oldest entry (by verdict timestamp) is replaced — deterministic
  ///     and bounded.  The target's Algorithm-R stream state (`seen`, RNG)
  ///     is untouched, so future admissions stay a pure function of the
  ///     offer sequence.
  /// Thread-safe (the sweep holds the reservoir mutex throughout).
  AuditOutcome audit(
      std::uint64_t now_micros, double min_age_s,
      const std::function<std::optional<bool>(const dm::core::Wcg&,
                                              std::uint64_t ts_micros)>& oracle);

  std::uint64_t offered() const;
  std::uint64_t admitted() const;
  std::size_t infection_count() const;
  std::size_t benign_count() const;

 private:
  /// Per-class Algorithm R state.
  struct ClassSample {
    std::vector<LabeledWcg> items;
    std::uint64_t seen = 0;  // class-stream length, drives the admit draw
    dm::util::Rng rng{0};
  };

  /// Evicts samples older than the window relative to `newest_micros`.
  void evict_stale_locked(std::uint64_t newest_micros);

  bool offer_locked(ClassSample& sample, const dm::core::Wcg& wcg,
                    double score, bool infection, std::uint64_t ts_micros);

  ReservoirOptions options_;
  mutable std::mutex mutex_;
  ClassSample infections_;
  ClassSample benign_;
  std::uint64_t offered_ = 0;
  std::uint64_t admitted_ = 0;
};

}  // namespace dm::serve

// Shadow scoring: a candidate model rides along with the incumbent before
// it is allowed to take over.
//
// While a candidate is staged, every live classifier query is scored twice:
// the incumbent's score still drives the alert (behaviour is bit-identical
// to not shadowing at all — the candidate only *observes*), and the
// candidate's hard decision is compared against the incumbent's.  The
// dm.model.* panel tracks the agreement rate and the two per-class
// disagreement modes; automatic cutover is gated on
//
//   scored >= min_queries  &&  agreement >= agreement_threshold
//
// and a candidate that cannot clear the gate by max_queries is rejected —
// a retrain that drifted (bad self-labels, degenerate reservoir) never
// reaches the live path.
//
// Thread-safety: observe() is called concurrently from every shard worker;
// all accounting is relaxed atomics.  The returned Gate is a snapshot —
// the caller (RetrainDriver) serializes the actual promote/reject action.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "core/detector.h"
#include "obs/pipeline.h"
#include "obs/timer.h"
#include "util/rate_limit.h"

namespace dm::serve {

struct ShadowOptions {
  /// Queries the candidate must shadow before it can be promoted.
  std::size_t min_queries = 64;
  /// Deadline: a candidate still below the agreement bar after this many
  /// shadowed queries is rejected.  Must be >= min_queries.
  std::size_t max_queries = 512;
  /// Fraction of shadowed queries whose hard decision must match the
  /// incumbent's for automatic cutover.
  double agreement_threshold = 0.98;
};

/// One staged candidate and its agreement ledger.
class ShadowEvaluator {
 public:
  /// `candidate` must be non-null; `threshold` is the serving decision
  /// threshold both hard decisions are taken at.
  ShadowEvaluator(std::shared_ptr<const dm::core::Detector> candidate,
                  ShadowOptions options, double threshold,
                  dm::obs::ModelMetrics& metrics, dm::obs::ClockFn clock);

  enum class Gate {
    kPending,  // keep shadowing
    kPromote,  // agreement bar cleared at/after min_queries
    kReject,   // max_queries reached without clearing the bar
  };

  /// Scores the candidate on one live query (reusing the extraction cache —
  /// features are model-independent) against the incumbent's decision, and
  /// returns the gate state after this observation.  `cache` may be null.
  Gate observe(const dm::core::Wcg& wcg, dm::core::FeatureCache* cache,
               bool incumbent_alert);

  /// Gate state without contributing an observation.
  Gate gate() const;

  std::uint64_t scored() const { return scored_.load(std::memory_order_relaxed); }
  std::uint64_t agreed() const { return agreed_.load(std::memory_order_relaxed); }
  std::uint64_t disagreed_infection() const {
    return disagree_infection_.load(std::memory_order_relaxed);
  }
  std::uint64_t disagreed_benign() const {
    return disagree_benign_.load(std::memory_order_relaxed);
  }
  /// agreed / scored; 1.0 before any observation.
  double agreement_rate() const;

  const std::shared_ptr<const dm::core::Detector>& candidate() const {
    return candidate_;
  }

 private:
  std::shared_ptr<const dm::core::Detector> candidate_;
  ShadowOptions options_;
  double threshold_;
  dm::obs::ModelMetrics& metrics_;
  dm::obs::StageTimer timer_;
  std::atomic<std::uint64_t> scored_{0};
  std::atomic<std::uint64_t> agreed_{0};
  std::atomic<std::uint64_t> disagree_infection_{0};
  std::atomic<std::uint64_t> disagree_benign_{0};
  /// Per-evaluator disagreement log gate (the quarantine-site convention:
  /// a per-instance EveryN so one noisy candidate cannot starve another's
  /// log budget).
  dm::util::EveryN disagreement_log_gate_{64};
};

}  // namespace dm::serve

// Crash-safe, versioned on-disk model persistence for the serving layer.
//
// Every promoted forest becomes an immutable artifact file plus one entry in
// a bounded swap-history manifest.  The durability protocol is the classic
// write-temp → fsync → atomic-rename sequence, with the *manifest* rename as
// the commit point:
//
//   persist(forest, entry):
//     1. write  <dir>/.tmp-model-<version>      (payload + CRC32 footer)
//     2. fsync  the temp file
//     3. rename → <dir>/model-<version>.dmf     (artifact durable, NOT yet
//     4. fsync  the directory                    committed)
//     5. write  <dir>/.tmp-manifest             (history + CRC32 footer)
//     6. fsync  the temp file
//     7. rename → <dir>/manifest.dmm            ← COMMIT POINT
//     8. fsync  the directory
//     9. unlink artifacts pruned out of the bounded history
//
// A crash anywhere before step 7 leaves the previous manifest — and thus the
// previous incumbent — authoritative; the half-written temp or the renamed-
// but-unreferenced artifact is swept up (and counted) by the next recover().
// A crash at/after step 7 commits the new version; step 9 is pure garbage
// collection and re-runs implicitly (unreferenced artifacts are removed on
// recovery).
//
// recover() is the startup state machine:
//
//   * stale ".tmp-*" files        → unlink, count (temps_removed)
//   * manifest absent/corrupt     → quarantine it (manifests_quarantined),
//     fall back to scanning artifacts: adopt the newest CRC-valid one,
//     quarantine invalid ones, rebuild a fresh manifest (reason "recovered")
//   * manifest valid              → walk entries newest→oldest; the first
//     entry whose artifact passes CRC + load wins.  Torn/bit-flipped
//     artifacts are renamed aside ".quarantined-*" and counted
//     (artifacts_quarantined); artifacts on disk but absent from the
//     manifest are the crash window between steps 3 and 7 — removed and
//     counted (uncommitted_discarded), so recovery lands on the pre-crash
//     *incumbent*, never on a half-promoted candidate.
//
// Every count is exact and mirrored into the dm.store.* panel; the fault-
// injection harness (serve_model_store_test) crashes the sequence at every
// named step and asserts both the recovered lineage and the accounting.
//
// Thread-safety: persist/recover/load_version/manifest are serialized by an
// internal mutex.  The driver calls persist() from its single retrain
// worker and recover() from its constructor, so contention is nil.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ml/random_forest.h"
#include "obs/pipeline.h"
#include "obs/timer.h"

namespace dm::serve {

struct StoreOptions {
  /// Artifact directory (created if absent).  Empty = store disabled (the
  /// driver skips persistence entirely).
  std::string dir;
  /// Committed versions kept on disk; older artifacts + manifest entries are
  /// pruned past this bound (>= 1; rollback depth is limited by it).
  std::size_t max_history = 8;
  /// Durability barriers (fsync file + directory).  On by default; tests
  /// that hammer persist in a loop may disable them for speed — crash
  /// *injection* still works, only power-loss ordering is weakened.
  bool fsync = true;
  /// Observability (null -> process-wide registry / steady clock).
  dm::obs::MetricsRegistry* metrics = nullptr;
  dm::obs::ClockFn clock = nullptr;
  /// Fault-injection seam: invoked with the step name *before* each step of
  /// the persist sequence ("artifact-temp-write", "artifact-temp-sync",
  /// "artifact-rename", "artifact-dir-sync", "manifest-temp-write",
  /// "manifest-temp-sync", "manifest-rename", "manifest-dir-sync",
  /// "prune").  A hook that throws simulates a crash at that point; the
  /// harness then rebuilds the store and asserts recovery.  Never set in
  /// production.
  std::function<void(std::string_view step)> step_hook;
};

/// One committed promotion in the swap-history manifest.
struct ManifestEntry {
  std::uint64_t version = 0;
  /// Version this model descends from (0 = none / initial).  Rollback walks
  /// this edge.
  std::uint64_t parent = 0;
  std::uint64_t ts_ns = 0;
  /// Candidate F1 on the held-out fence set at promotion time (0 when the
  /// fence gate was disabled).
  double fence_f1 = 0.0;
  /// Why this version was published: "initial", "promote", "publish",
  /// "rollback", "recovered".
  std::string reason;
};

class ModelStore {
 public:
  /// Exact mirror of the dm.store.* counters for this instance — the test
  /// harness asserts these, the panel aggregates across instances.
  struct Counts {
    std::uint64_t saves = 0;
    std::uint64_t save_failures = 0;
    std::uint64_t recoveries = 0;
    std::uint64_t artifacts_quarantined = 0;
    std::uint64_t manifests_quarantined = 0;
    std::uint64_t uncommitted_discarded = 0;
    std::uint64_t temps_removed = 0;
    std::uint64_t pruned = 0;
  };

  explicit ModelStore(StoreOptions options);

  /// Durably commits `forest` as `entry.version`.  Returns false (counting
  /// save_failures) on I/O failure without corrupting the committed history;
  /// rethrows only what the step_hook throws (the simulated crash).
  bool persist(const dm::ml::RandomForest& forest, ManifestEntry entry);

  struct Recovered {
    dm::ml::RandomForest forest;
    ManifestEntry entry;
  };

  /// Runs the recovery state machine described above.  Returns the newest
  /// CRC-valid committed version, or nullopt for an empty/unsalvageable
  /// store.  Idempotent: a second call on a clean store changes nothing.
  std::optional<Recovered> recover();

  /// Loads one committed version (CRC-checked); nullopt if absent/invalid.
  std::optional<dm::ml::RandomForest> load_version(std::uint64_t version) const;

  /// The in-memory manifest, oldest → newest.
  std::vector<ManifestEntry> manifest() const;

  /// Manifest head version (0 when empty).
  std::uint64_t latest_version() const;

  Counts counts() const;

  const StoreOptions& options() const noexcept { return options_; }

  static std::string artifact_filename(std::uint64_t version);

 private:
  void hook(std::string_view step);
  bool write_file_durable(const std::string& tmp_path,
                          const std::string& final_path,
                          const std::string& payload,
                          std::string_view temp_write_step,
                          std::string_view temp_sync_step,
                          std::string_view rename_step,
                          std::string_view dir_sync_step);
  std::string render_manifest_locked() const;
  bool commit_manifest_locked();
  void prune_locked();
  std::string quarantine_locked(const std::string& path);
  std::optional<dm::ml::RandomForest> read_artifact_locked(
      std::uint64_t version, std::string* error) const;

  StoreOptions options_;
  dm::obs::StoreMetrics metrics_;
  dm::obs::StageTimer timer_;

  mutable std::mutex mutex_;
  std::vector<ManifestEntry> entries_;  // oldest → newest, committed only
  Counts counts_;
  std::uint64_t quarantine_seq_ = 0;  // unique suffix for renamed-aside files
};

}  // namespace dm::serve

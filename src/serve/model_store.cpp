#include "serve/model_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <system_error>
#include <utility>

#include "ml/serialization.h"
#include "util/hash.h"
#include "util/log.h"

namespace fs = std::filesystem;

namespace dm::serve {
namespace {

constexpr std::string_view kArtifactFooterMagic = "dynaminer-artifact";
constexpr std::string_view kManifestMagic = "dynaminer-manifest v1";
constexpr std::string_view kManifestFooterMagic = "dynaminer-manifest-footer";
constexpr std::string_view kManifestName = "manifest.dmm";
constexpr std::string_view kTempPrefix = ".tmp-";

std::string hex8(std::uint32_t value) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%08x", value);
  return buf;
}

/// Round-trip-exact double formatting (hex-float), matching the model format.
std::string format_double(double value) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", value);
  return buf;
}

/// POSIX fsync of a path (file or directory).  The std::filesystem API has
/// no durability barrier, and rename-based commit protocols are only
/// crash-atomic when both the renamed file and its directory entry are
/// synced.
bool sync_path(const std::string& path, bool directory) {
  const int flags = directory ? (O_RDONLY | O_DIRECTORY) : O_RDONLY;
  const int fd = ::open(path.c_str(), flags);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

bool write_whole_file(const std::string& path, const std::string& payload) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  std::size_t written = 0;
  bool ok = true;
  while (written < payload.size()) {
    const ssize_t n =
        ::write(fd, payload.data() + written, payload.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ok = false;
      break;
    }
    written += static_cast<std::size_t>(n);
  }
  if (::close(fd) != 0) ok = false;
  return ok;
}

bool read_whole_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return false;
  *out = buf.str();
  return true;
}

bool parse_u64_token(const std::string& token, std::uint64_t* out) {
  if (token.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
  if (errno != 0 || end != token.c_str() + token.size()) return false;
  *out = static_cast<std::uint64_t>(value);
  return true;
}

/// "model-<digits>.dmf" → version; nullopt for anything else (including
/// quarantined files, which carry a ".quarantined-N" suffix).
std::optional<std::uint64_t> artifact_version_from_name(const std::string& name) {
  constexpr std::string_view kPrefix = "model-";
  constexpr std::string_view kSuffix = ".dmf";
  if (name.size() <= kPrefix.size() + kSuffix.size()) return std::nullopt;
  if (name.compare(0, kPrefix.size(), kPrefix) != 0) return std::nullopt;
  if (name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) != 0) {
    return std::nullopt;
  }
  const std::string digits =
      name.substr(kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size());
  for (char c : digits) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
  }
  std::uint64_t version = 0;
  if (!parse_u64_token(digits, &version)) return std::nullopt;
  return version;
}

/// Splits an artifact file into its payload and validates the CRC footer.
/// Returns false with `*error` set on any mismatch — torn write, bit flip,
/// truncation, or a footer naming a different version than the filename.
bool split_artifact(const std::string& content, std::uint64_t expected_version,
                    std::string_view* payload, std::string* error) {
  const std::size_t pos = content.rfind(kArtifactFooterMagic);
  if (pos == std::string::npos || (pos != 0 && content[pos - 1] != '\n')) {
    *error = "missing artifact footer";
    return false;
  }
  std::istringstream footer(content.substr(pos));
  std::string magic, crc_kw, crc_hex, bytes_kw, bytes_tok, version_kw, version_tok;
  if (!(footer >> magic >> crc_kw >> crc_hex >> bytes_kw >> bytes_tok >>
        version_kw >> version_tok) ||
      crc_kw != "crc32" || bytes_kw != "bytes" || version_kw != "version") {
    *error = "malformed artifact footer";
    return false;
  }
  std::uint64_t bytes = 0, version = 0;
  if (!parse_u64_token(bytes_tok, &bytes) ||
      !parse_u64_token(version_tok, &version)) {
    *error = "malformed artifact footer";
    return false;
  }
  if (bytes != pos) {
    *error = "artifact payload size mismatch (torn write?)";
    return false;
  }
  if (version != expected_version) {
    *error = "artifact footer names a different version";
    return false;
  }
  const std::string_view body(content.data(), pos);
  char* end = nullptr;
  const unsigned long crc = std::strtoul(crc_hex.c_str(), &end, 16);
  if (end != crc_hex.c_str() + crc_hex.size()) {
    *error = "malformed artifact crc";
    return false;
  }
  if (dm::util::crc32(body) != static_cast<std::uint32_t>(crc)) {
    *error = "artifact crc mismatch";
    return false;
  }
  *payload = body;
  return true;
}

std::string render_manifest(const std::vector<ManifestEntry>& entries) {
  std::ostringstream out;
  out << kManifestMagic << '\n';
  for (const ManifestEntry& e : entries) {
    out << "entry version " << e.version << " parent " << e.parent << " ts-ns "
        << e.ts_ns << " fence-f1 " << format_double(e.fence_f1) << " reason "
        << (e.reason.empty() ? std::string("unknown") : e.reason) << '\n';
  }
  std::string body = out.str();
  body += std::string(kManifestFooterMagic) + " crc32 " +
          hex8(dm::util::crc32(body)) + " bytes " + std::to_string(body.size()) +
          "\n";
  return body;
}

bool parse_manifest(const std::string& content,
                    std::vector<ManifestEntry>* entries, std::string* error) {
  const std::size_t pos = content.rfind(kManifestFooterMagic);
  if (pos == std::string::npos || (pos != 0 && content[pos - 1] != '\n')) {
    *error = "missing manifest footer";
    return false;
  }
  {
    std::istringstream footer(content.substr(pos));
    std::string magic, crc_kw, crc_hex, bytes_kw, bytes_tok;
    if (!(footer >> magic >> crc_kw >> crc_hex >> bytes_kw >> bytes_tok) ||
        crc_kw != "crc32" || bytes_kw != "bytes") {
      *error = "malformed manifest footer";
      return false;
    }
    std::uint64_t bytes = 0;
    if (!parse_u64_token(bytes_tok, &bytes) || bytes != pos) {
      *error = "manifest size mismatch (torn write?)";
      return false;
    }
    char* end = nullptr;
    const unsigned long crc = std::strtoul(crc_hex.c_str(), &end, 16);
    if (end != crc_hex.c_str() + crc_hex.size() ||
        dm::util::crc32(std::string_view(content.data(), pos)) !=
            static_cast<std::uint32_t>(crc)) {
      *error = "manifest crc mismatch";
      return false;
    }
  }

  std::istringstream in(content.substr(0, pos));
  std::string line;
  if (!std::getline(in, line) || line != kManifestMagic) {
    *error = "bad manifest magic";
    return false;
  }
  std::vector<ManifestEntry> parsed;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string kw, version_kw, parent_kw, ts_kw, fence_kw, reason_kw;
    std::string version_tok, parent_tok, ts_tok, fence_tok;
    ManifestEntry e;
    if (!(ls >> kw >> version_kw >> version_tok >> parent_kw >> parent_tok >>
          ts_kw >> ts_tok >> fence_kw >> fence_tok >> reason_kw >> e.reason) ||
        kw != "entry" || version_kw != "version" || parent_kw != "parent" ||
        ts_kw != "ts-ns" || fence_kw != "fence-f1" || reason_kw != "reason") {
      *error = "malformed manifest entry";
      return false;
    }
    if (!parse_u64_token(version_tok, &e.version) ||
        !parse_u64_token(parent_tok, &e.parent) ||
        !parse_u64_token(ts_tok, &e.ts_ns) || e.version == 0) {
      *error = "malformed manifest entry";
      return false;
    }
    char* end = nullptr;
    e.fence_f1 = std::strtod(fence_tok.c_str(), &end);
    if (end != fence_tok.c_str() + fence_tok.size()) {
      *error = "malformed manifest entry";
      return false;
    }
    if (!parsed.empty() && e.version <= parsed.back().version) {
      *error = "manifest versions not ascending";
      return false;
    }
    if (parsed.size() >= 4096) {
      *error = "implausible manifest length";
      return false;
    }
    parsed.push_back(std::move(e));
  }
  *entries = std::move(parsed);
  return true;
}

/// Reasons live as single whitespace-free tokens in the manifest line format.
std::string sanitize_reason(std::string reason) {
  if (reason.empty()) return "unknown";
  for (char& c : reason) {
    if (std::isspace(static_cast<unsigned char>(c))) c = '-';
  }
  return reason;
}

}  // namespace

std::string ModelStore::artifact_filename(std::uint64_t version) {
  return "model-" + std::to_string(version) + ".dmf";
}

ModelStore::ModelStore(StoreOptions options)
    : options_(std::move(options)),
      metrics_(options_.metrics != nullptr
                   ? dm::obs::StoreMetrics::of(*options_.metrics)
                   : dm::obs::store_metrics()),
      timer_(options_.clock) {
  if (options_.max_history == 0) options_.max_history = 1;
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
}

void ModelStore::hook(std::string_view step) {
  if (options_.step_hook) options_.step_hook(step);
}

bool ModelStore::write_file_durable(const std::string& tmp_path,
                                    const std::string& final_path,
                                    const std::string& payload,
                                    std::string_view temp_write_step,
                                    std::string_view temp_sync_step,
                                    std::string_view rename_step,
                                    std::string_view dir_sync_step) {
  if (!temp_write_step.empty()) hook(temp_write_step);
  if (!write_whole_file(tmp_path, payload)) return false;
  if (!temp_sync_step.empty()) hook(temp_sync_step);
  if (options_.fsync && !sync_path(tmp_path, /*directory=*/false)) return false;
  if (!rename_step.empty()) hook(rename_step);
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) return false;
  if (!dir_sync_step.empty()) hook(dir_sync_step);
  if (options_.fsync) sync_path(options_.dir, /*directory=*/true);
  return true;
}

bool ModelStore::persist(const dm::ml::RandomForest& forest, ManifestEntry entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto span = timer_.span(metrics_.persist_ns);
  entry.reason = sanitize_reason(std::move(entry.reason));

  std::string payload;
  try {
    std::ostringstream out;
    dm::ml::save_forest(forest, out);
    payload = out.str();
  } catch (const std::exception& e) {
    dm::util::log_warn("model store: serialize failed for version ",
                       entry.version, ": ", e.what());
    counts_.save_failures++;
    metrics_.save_failures.add(1);
    span.cancel();
    return false;
  }

  std::string content = payload;
  content += std::string(kArtifactFooterMagic) + " crc32 " +
             hex8(dm::util::crc32(payload)) + " bytes " +
             std::to_string(payload.size()) + " version " +
             std::to_string(entry.version) + "\n";

  const fs::path dir(options_.dir);
  const std::string final_path = (dir / artifact_filename(entry.version)).string();
  const std::string tmp_path =
      (dir / (std::string(kTempPrefix) + "model-" + std::to_string(entry.version)))
          .string();
  if (!write_file_durable(tmp_path, final_path, content, "artifact-temp-write",
                          "artifact-temp-sync", "artifact-rename",
                          "artifact-dir-sync")) {
    dm::util::log_warn("model store: artifact write failed for version ",
                       entry.version);
    counts_.save_failures++;
    metrics_.save_failures.add(1);
    span.cancel();
    return false;
  }

  // The artifact is durable but not yet committed: only the manifest rename
  // below makes this version part of the history.  Build the new manifest
  // (with pruning applied) before touching entries_, so a failed commit
  // leaves the in-memory state matching the still-authoritative old file.
  std::vector<ManifestEntry> new_entries = entries_;
  const std::uint64_t payload_bytes = payload.size();
  new_entries.push_back(std::move(entry));
  std::vector<std::uint64_t> dropped;
  while (new_entries.size() > options_.max_history) {
    dropped.push_back(new_entries.front().version);
    new_entries.erase(new_entries.begin());
  }
  const std::string manifest = render_manifest(new_entries);
  const std::string manifest_path = (dir / kManifestName).string();
  const std::string manifest_tmp =
      (dir / (std::string(kTempPrefix) + "manifest")).string();
  if (!write_file_durable(manifest_tmp, manifest_path, manifest,
                          "manifest-temp-write", "manifest-temp-sync",
                          "manifest-rename", "manifest-dir-sync")) {
    // The renamed artifact is now an uncommitted orphan; the next recover()
    // sweeps and counts it.
    dm::util::log_warn("model store: manifest commit failed for version ",
                       new_entries.back().version);
    counts_.save_failures++;
    metrics_.save_failures.add(1);
    span.cancel();
    return false;
  }

  entries_ = std::move(new_entries);
  counts_.saves++;
  metrics_.saves.add(1);
  metrics_.save_bytes.add(payload_bytes);
  metrics_.latest_version.set(static_cast<std::int64_t>(entries_.back().version));

  hook("prune");
  std::error_code ec;
  for (const std::uint64_t version : dropped) {
    fs::remove(dir / artifact_filename(version), ec);
    counts_.pruned++;
    metrics_.pruned.add(1);
  }
  span.stop();
  return true;
}

std::string ModelStore::quarantine_locked(const std::string& path) {
  const std::string target =
      path + ".quarantined-" + std::to_string(quarantine_seq_++);
  std::error_code ec;
  fs::rename(path, target, ec);
  if (ec) fs::remove(path, ec);
  return target;
}

std::optional<dm::ml::RandomForest> ModelStore::read_artifact_locked(
    std::uint64_t version, std::string* error) const {
  const std::string path =
      (fs::path(options_.dir) / artifact_filename(version)).string();
  std::string content;
  if (!read_whole_file(path, &content)) {
    *error = "missing artifact";
    return std::nullopt;
  }
  std::string_view payload;
  if (!split_artifact(content, version, &payload, error)) return std::nullopt;
  auto loaded = dm::ml::try_load_forest(payload);
  if (!loaded) {
    *error = loaded.error().reason;
    return std::nullopt;
  }
  return std::move(loaded.value());
}

std::optional<ModelStore::Recovered> ModelStore::recover() {
  std::lock_guard<std::mutex> lock(mutex_);
  auto span = timer_.span(metrics_.recover_ns);
  const fs::path dir(options_.dir);
  std::error_code ec;
  fs::create_directories(dir, ec);

  // Sweep half-written temps from a crash mid-persist: they were never
  // renamed into place, so they carry no committed state.
  std::map<std::uint64_t, fs::path> artifacts;
  for (const auto& de : fs::directory_iterator(dir, ec)) {
    const std::string name = de.path().filename().string();
    if (name.compare(0, kTempPrefix.size(), kTempPrefix) == 0) {
      std::error_code rm_ec;
      fs::remove(de.path(), rm_ec);
      counts_.temps_removed++;
      metrics_.temps_removed.add(1);
      continue;
    }
    if (const auto version = artifact_version_from_name(name)) {
      artifacts[*version] = de.path();
    }
  }

  // Manifest: the committed history.  A torn or bit-flipped manifest is
  // quarantined (never deleted) and recovery degrades to an artifact scan.
  entries_.clear();
  bool manifest_present = false;
  bool manifest_ok = false;
  bool dirty = false;  // manifest must be rewritten to match reality
  const std::string manifest_path = (dir / kManifestName).string();
  std::string manifest_content;
  if (read_whole_file(manifest_path, &manifest_content)) {
    manifest_present = true;
    std::string error;
    if (parse_manifest(manifest_content, &entries_, &error)) {
      manifest_ok = true;
    } else {
      const std::string where = quarantine_locked(manifest_path);
      counts_.manifests_quarantined++;
      metrics_.manifests_quarantined.add(1);
      dm::util::log_warn("model store: manifest invalid (", error,
                         "), quarantined to ", where);
      entries_.clear();
      dirty = true;
    }
  }

  std::optional<Recovered> result;
  if (manifest_ok) {
    // Walk the committed history newest → oldest; the first CRC-valid,
    // loadable artifact is the incumbent.
    while (!entries_.empty()) {
      const ManifestEntry head = entries_.back();
      std::string error;
      auto forest = read_artifact_locked(head.version, &error);
      if (forest.has_value()) {
        result = Recovered{std::move(*forest), head};
        break;
      }
      const auto it = artifacts.find(head.version);
      if (it != artifacts.end()) {
        const std::string where = quarantine_locked(it->second.string());
        counts_.artifacts_quarantined++;
        metrics_.artifacts_quarantined.add(1);
        dm::util::log_warn("model store: artifact for version ", head.version,
                           " invalid (", error, "), quarantined to ", where);
        artifacts.erase(it);
      } else {
        dm::util::log_warn("model store: artifact for version ", head.version,
                           " missing");
      }
      entries_.pop_back();
      dirty = true;
    }
    // Artifacts on disk but absent from the (surviving) manifest: newer than
    // the head is the crash window between artifact rename and manifest
    // commit — discard so recovery lands on the pre-crash incumbent, never a
    // half-promoted candidate.  Older ones are prune leftovers.
    const std::uint64_t head_version =
        entries_.empty() ? 0 : entries_.back().version;
    for (const auto& [version, path] : artifacts) {
      const bool referenced =
          std::any_of(entries_.begin(), entries_.end(),
                      [v = version](const ManifestEntry& e) { return e.version == v; });
      if (referenced) continue;
      std::error_code rm_ec;
      fs::remove(path, rm_ec);
      if (version > head_version) {
        counts_.uncommitted_discarded++;
        metrics_.uncommitted_discarded.add(1);
        dm::util::log_warn("model store: discarding uncommitted artifact version ",
                           version);
      } else {
        counts_.pruned++;
        metrics_.pruned.add(1);
      }
    }
  } else {
    // No usable manifest: rebuild the lineage from whatever artifacts
    // survive, oldest → newest, quarantining invalid ones.  Parent edges are
    // re-derived as the previous surviving version (best effort — the true
    // promotion metadata died with the manifest).
    std::uint64_t previous = 0;
    for (const auto& [version, path] : artifacts) {
      std::string error;
      auto forest = read_artifact_locked(version, &error);
      if (!forest.has_value()) {
        const std::string where = quarantine_locked(path.string());
        counts_.artifacts_quarantined++;
        metrics_.artifacts_quarantined.add(1);
        dm::util::log_warn("model store: artifact for version ", version,
                           " invalid (", error, "), quarantined to ", where);
        continue;
      }
      ManifestEntry e;
      e.version = version;
      e.parent = previous;
      e.ts_ns = timer_.now();
      e.reason = "recovered";
      previous = version;
      entries_.push_back(e);
      result = Recovered{std::move(*forest), std::move(e)};
      dirty = true;
    }
    if (manifest_present && entries_.empty()) dirty = true;
  }

  if (dirty) commit_manifest_locked();
  metrics_.latest_version.set(
      static_cast<std::int64_t>(entries_.empty() ? 0 : entries_.back().version));
  // Every sweep counts — an empty store is a completed (if trivial)
  // recovery, and ops wants to see the startup pass happened at all.
  counts_.recoveries++;
  metrics_.recoveries.add(1);
  if (result.has_value()) {
    dm::util::log_info("model store: recovered model version ",
                       result->entry.version, " (", result->entry.reason, ")");
  }
  span.stop();
  return result;
}

bool ModelStore::commit_manifest_locked() {
  const fs::path dir(options_.dir);
  const std::string manifest = render_manifest(entries_);
  return write_file_durable(
      (dir / (std::string(kTempPrefix) + "manifest")).string(),
      (dir / kManifestName).string(), manifest, {}, {}, {}, {});
}

std::optional<dm::ml::RandomForest> ModelStore::load_version(
    std::uint64_t version) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string error;
  auto forest = read_artifact_locked(version, &error);
  if (!forest.has_value()) {
    dm::util::log_warn("model store: load of version ", version, " failed: ",
                       error);
  }
  return forest;
}

std::vector<ManifestEntry> ModelStore::manifest() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_;
}

std::uint64_t ModelStore::latest_version() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.empty() ? 0 : entries_.back().version;
}

ModelStore::Counts ModelStore::counts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counts_;
}

}  // namespace dm::serve

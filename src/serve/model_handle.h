// RCU-style model publication for the live engine.
//
// The serving problem: N shard workers score every transaction against "the
// current ERF" while a background retrain wants to swap a new forest in —
// without stopping traffic, without a lock on the scoring path, and without
// any worker ever observing a half-swapped model.
//
// The shape is classic read-copy-update with shared_ptr reclamation:
//
//   * The publisher builds the complete candidate Detector off the hot path
//     and installs it with one pointer store + a version bump (publish()).
//     Nothing is ever mutated in place, so there is no "mixed" state to
//     observe: a reader sees the old forest or the new one, never a blend.
//   * Each reader (one per shard) holds a Pin: a cached shared_ptr plus the
//     version it was taken at.  The steady-state read path is one relaxed-
//     acquire load of the version counter and an equality check — no atomic
//     shared_ptr traffic, no mutex, no contention between shards.  Only
//     when the version has moved does the Pin take the (cold) mutex to
//     re-copy the current pointer.
//   * Grace period = reference counting: a worker mid-score keeps its pinned
//     Detector alive through the shared_ptr; the old model is reclaimed when
//     the last stale pin refreshes, with no quiescent-state bookkeeping.
//
// serve_hot_swap_test drives concurrent scoring against publish() under
// ThreadSanitizer and asserts no reader ever sees a score that neither the
// old nor the new forest would produce.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "core/detector.h"

namespace dm::serve {

/// One published-model slot.  publish() is serialized internally; any number
/// of Pins may read concurrently.
class ModelHandle {
 public:
  /// Starts at `initial_version` (>= 1) with `initial` installed (must be
  /// non-null).  A non-default start version is how the serving layer
  /// resumes a persisted lineage after restart: the ModelStore's recovered
  /// head keeps its on-disk version number, and the monotone counter
  /// continues from there.
  explicit ModelHandle(std::shared_ptr<const dm::core::Detector> initial,
                       std::uint64_t initial_version = 1);

  ModelHandle(const ModelHandle&) = delete;
  ModelHandle& operator=(const ModelHandle&) = delete;

  /// Atomically installs `next` (must be non-null) and bumps the version.
  /// Readers pinned to the previous model keep it alive until they refresh.
  /// Returns the new version.
  std::uint64_t publish(std::shared_ptr<const dm::core::Detector> next);

  /// The currently-published model (cold path — takes the mutex).
  std::shared_ptr<const dm::core::Detector> current() const;

  /// Version of the currently-published model (monotone, starts at 1).
  std::uint64_t version() const noexcept {
    return version_.load(std::memory_order_acquire);
  }

  /// A reader's epoch-pinned view.  NOT thread-safe: one Pin per reader
  /// thread (the sharded engine gives every shard its own via the
  /// per-shard scorer factory).
  class Pin {
   public:
    Pin() = default;
    explicit Pin(const ModelHandle* handle) : handle_(handle) {}

    /// The pinned detector, refreshed first if a newer version has been
    /// published.  Steady state (version unchanged) is one acquire load +
    /// compare; the returned reference stays valid until the next get().
    const dm::core::Detector& get() {
      const std::uint64_t v = handle_->version_.load(std::memory_order_acquire);
      if (v != pinned_version_ || pinned_ == nullptr) refresh();
      return *pinned_;
    }

    /// Version of the model get() would return right now (refreshes first).
    std::uint64_t version() {
      get();
      return pinned_version_;
    }

   private:
    void refresh();

    const ModelHandle* handle_ = nullptr;
    std::shared_ptr<const dm::core::Detector> pinned_;
    std::uint64_t pinned_version_ = 0;
  };

  Pin pin() const { return Pin(this); }

 private:
  /// Guards current_ against concurrent publish/refresh; never held on the
  /// steady-state read path.
  mutable std::mutex mutex_;
  std::shared_ptr<const dm::core::Detector> current_;
  std::atomic<std::uint64_t> version_;
};

}  // namespace dm::serve

#include "serve/shadow.h"

#include <stdexcept>
#include <utility>

namespace dm::serve {

ShadowEvaluator::ShadowEvaluator(
    std::shared_ptr<const dm::core::Detector> candidate, ShadowOptions options,
    double threshold, dm::obs::ModelMetrics& metrics, dm::obs::ClockFn clock)
    : candidate_(std::move(candidate)),
      options_(options),
      threshold_(threshold),
      metrics_(metrics),
      timer_(clock) {
  if (candidate_ == nullptr) {
    throw std::invalid_argument("ShadowEvaluator: candidate must be non-null");
  }
  if (options_.max_queries < options_.min_queries) {
    options_.max_queries = options_.min_queries;
  }
}

ShadowEvaluator::Gate ShadowEvaluator::observe(const dm::core::Wcg& wcg,
                                               dm::core::FeatureCache* cache,
                                               bool incumbent_alert) {
  auto span = timer_.span(metrics_.shadow_score_ns);
  const double score = candidate_->score(wcg, cache);
  span.stop();
  const bool candidate_alert = score >= threshold_;

  scored_.fetch_add(1, std::memory_order_relaxed);
  metrics_.shadow_scored.add(1);
  if (candidate_alert == incumbent_alert) {
    agreed_.fetch_add(1, std::memory_order_relaxed);
    metrics_.shadow_agree.add(1);
  } else if (candidate_alert) {
    disagree_infection_.fetch_add(1, std::memory_order_relaxed);
    metrics_.shadow_disagree_infection.add(1);
    dm::util::log_every_n(disagreement_log_gate_, dm::util::LogLevel::kWarn,
                          "shadow: candidate alerts where incumbent does not "
                          "(candidate score ", score, ")");
  } else {
    disagree_benign_.fetch_add(1, std::memory_order_relaxed);
    metrics_.shadow_disagree_benign.add(1);
    dm::util::log_every_n(disagreement_log_gate_, dm::util::LogLevel::kWarn,
                          "shadow: candidate misses an incumbent alert "
                          "(candidate score ", score, ")");
  }
  return gate();
}

ShadowEvaluator::Gate ShadowEvaluator::gate() const {
  const std::uint64_t scored = scored_.load(std::memory_order_relaxed);
  if (scored < options_.min_queries) return Gate::kPending;
  if (agreement_rate() >= options_.agreement_threshold) return Gate::kPromote;
  if (scored >= options_.max_queries) return Gate::kReject;
  return Gate::kPending;
}

double ShadowEvaluator::agreement_rate() const {
  const std::uint64_t scored = scored_.load(std::memory_order_relaxed);
  if (scored == 0) return 1.0;
  return static_cast<double>(agreed_.load(std::memory_order_relaxed)) /
         static_cast<double>(scored);
}

}  // namespace dm::serve

// Delayed-oracle label correction: the serving loop's external truth signal.
//
// The continual-learning loop is self-labeled — the reservoir stores the
// *incumbent's* verdicts, so a drifting incumbent poisons its own retraining
// corpus (Machlica et al.'s core objection to self-training loops).
// DynaMiner's premise supplies the fix: offline infection analytics (the
// src/baseline VT-style engine ensemble) produce higher-quality labels,
// just *late* — signatures lag first appearance by days.
//
// LabelOracle is the seam: given a reservoir entry (its WCG and verdict
// trace time) and the current trace time, return the corrected label — or
// nothing when no verdict is available yet (oracle outage, unknown payload,
// or the configured latency has not elapsed).  Unavailable entries stay
// eligible for the next audit sweep; labeled entries are marked audited and
// never re-queried.
//
// VtOracle adapts baseline::VirusTotalSim: reservoir WCGs are keyed by a
// deterministic payload digest (wcg_payload_digest) that the trace/test
// harness also registers payloads under, and the simulator's own per-engine
// signature lag models the real-world delay on top of the injectable
// `latency_s`.  An outage flag models aggregator downtime (audits observe
// only `unavailable`, nothing is corrected, nothing crashes).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "baseline/virustotal_sim.h"
#include "core/wcg.h"

namespace dm::serve {

class LabelOracle {
 public:
  virtual ~LabelOracle() = default;

  /// Re-labels one reservoir entry.  `ts_micros` is the trace time the
  /// incumbent's verdict was issued; `query_micros` is the trace time of the
  /// audit.  Returns the ground-truth infection label, or nullopt when no
  /// verdict is available yet.
  virtual std::optional<bool> label(const dm::core::Wcg& wcg,
                                    std::uint64_t ts_micros,
                                    std::uint64_t query_micros) = 0;
};

/// Deterministic content identity for the payloads a WCG downloaded: a
/// digest over every payload-serving host with its served-type tally and
/// URI set (all sorted, so insertion order never matters).  The trace
/// harness registers episode payloads with the VT simulator under the same
/// function, giving the oracle a digest join key without the WCG having to
/// carry raw payload bytes.
std::string wcg_payload_digest(const dm::core::Wcg& wcg);

class VtOracle : public LabelOracle {
 public:
  /// `latency_s` is injectable verdict latency in trace seconds on top of
  /// the simulator's own signature lag: label() returns nullopt until
  /// query_micros - ts_micros >= latency_s.
  explicit VtOracle(std::shared_ptr<const dm::baseline::VirusTotalSim> sim,
                    double latency_s = 0.0);

  std::optional<bool> label(const dm::core::Wcg& wcg, std::uint64_t ts_micros,
                            std::uint64_t query_micros) override;

  /// Simulated aggregator downtime: while set, every label() returns
  /// nullopt.  Thread-safe toggle (ops/test seam).
  void set_outage(bool down) noexcept {
    outage_.store(down, std::memory_order_release);
  }
  bool outage() const noexcept {
    return outage_.load(std::memory_order_acquire);
  }

 private:
  std::shared_ptr<const dm::baseline::VirusTotalSim> sim_;
  double latency_s_;
  std::atomic<bool> outage_{false};
};

}  // namespace dm::serve

#include "serve/reservoir.h"

#include <algorithm>

namespace dm::serve {

WcgReservoir::WcgReservoir(ReservoirOptions options) : options_(options) {
  if (options_.capacity_per_class == 0) options_.capacity_per_class = 1;
  // Independent admission streams per class: the benign stream's draws can
  // never perturb the infection sample (and vice versa), so each class's
  // sample is a pure function of its own subsequence.
  infections_.rng = dm::util::Rng(dm::util::stream_seed(options_.seed, 0));
  benign_.rng = dm::util::Rng(dm::util::stream_seed(options_.seed, 1));
}

bool WcgReservoir::offer(const dm::core::Wcg& wcg, double score,
                         bool infection, std::uint64_t ts_micros) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++offered_;
  if (options_.window_s > 0) evict_stale_locked(ts_micros);
  return offer_locked(infection ? infections_ : benign_, wcg, score, infection,
                      ts_micros);
}

bool WcgReservoir::offer_locked(ClassSample& sample, const dm::core::Wcg& wcg,
                                double score, bool infection,
                                std::uint64_t ts_micros) {
  const std::uint64_t i = sample.seen++;
  std::size_t slot;
  if (sample.items.size() < options_.capacity_per_class) {
    // Warm-up (or post-eviction headroom): keep unconditionally.
    slot = sample.items.size();
    sample.items.emplace_back();
  } else {
    // Algorithm R: item i replaces a uniform slot with probability
    // capacity/(i+1); the draw happens before any copy, so a rejected offer
    // costs one RNG call and nothing else.
    const auto j = static_cast<std::uint64_t>(sample.rng.uniform_int(
        0, static_cast<std::int64_t>(i)));
    if (j >= options_.capacity_per_class) return false;
    slot = static_cast<std::size_t>(j);
  }
  sample.items[slot] =
      LabeledWcg{wcg, score, infection, ts_micros};  // the one copy
  ++admitted_;
  return true;
}

void WcgReservoir::evict_stale_locked(std::uint64_t newest_micros) {
  const double window_us = options_.window_s * 1e6;
  const auto stale = [&](const LabeledWcg& item) {
    return newest_micros >= item.ts_micros &&
           static_cast<double>(newest_micros - item.ts_micros) > window_us;
  };
  for (ClassSample* sample : {&infections_, &benign_}) {
    sample->items.erase(
        std::remove_if(sample->items.begin(), sample->items.end(), stale),
        sample->items.end());
  }
}

WcgReservoir::Snapshot WcgReservoir::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  snap.infections.reserve(infections_.items.size());
  for (const auto& item : infections_.items) snap.infections.push_back(item.wcg);
  snap.benign.reserve(benign_.items.size());
  for (const auto& item : benign_.items) snap.benign.push_back(item.wcg);
  snap.offered = offered_;
  snap.admitted = admitted_;
  return snap;
}

std::uint64_t WcgReservoir::offered() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return offered_;
}

std::uint64_t WcgReservoir::admitted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return admitted_;
}

std::size_t WcgReservoir::infection_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return infections_.items.size();
}

std::size_t WcgReservoir::benign_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return benign_.items.size();
}

}  // namespace dm::serve

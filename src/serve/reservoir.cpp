#include "serve/reservoir.h"

#include <algorithm>

namespace dm::serve {

WcgReservoir::WcgReservoir(ReservoirOptions options) : options_(options) {
  if (options_.capacity_per_class == 0) options_.capacity_per_class = 1;
  // Independent admission streams per class: the benign stream's draws can
  // never perturb the infection sample (and vice versa), so each class's
  // sample is a pure function of its own subsequence.
  infections_.rng = dm::util::Rng(dm::util::stream_seed(options_.seed, 0));
  benign_.rng = dm::util::Rng(dm::util::stream_seed(options_.seed, 1));
}

bool WcgReservoir::offer(const dm::core::Wcg& wcg, double score,
                         bool infection, std::uint64_t ts_micros) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++offered_;
  if (options_.window_s > 0) evict_stale_locked(ts_micros);
  return offer_locked(infection ? infections_ : benign_, wcg, score, infection,
                      ts_micros);
}

bool WcgReservoir::offer_locked(ClassSample& sample, const dm::core::Wcg& wcg,
                                double score, bool infection,
                                std::uint64_t ts_micros) {
  const std::uint64_t i = sample.seen++;
  std::size_t slot;
  if (sample.items.size() < options_.capacity_per_class) {
    // Warm-up (or post-eviction headroom): keep unconditionally.
    slot = sample.items.size();
    sample.items.emplace_back();
  } else {
    // Algorithm R: item i replaces a uniform slot with probability
    // capacity/(i+1); the draw happens before any copy, so a rejected offer
    // costs one RNG call and nothing else.
    const auto j = static_cast<std::uint64_t>(sample.rng.uniform_int(
        0, static_cast<std::int64_t>(i)));
    if (j >= options_.capacity_per_class) return false;
    slot = static_cast<std::size_t>(j);
  }
  sample.items[slot] =
      LabeledWcg{wcg, score, infection, ts_micros};  // the one copy
  ++admitted_;
  return true;
}

void WcgReservoir::evict_stale_locked(std::uint64_t newest_micros) {
  const double window_us = options_.window_s * 1e6;
  const auto stale = [&](const LabeledWcg& item) {
    return newest_micros >= item.ts_micros &&
           static_cast<double>(newest_micros - item.ts_micros) > window_us;
  };
  for (ClassSample* sample : {&infections_, &benign_}) {
    sample->items.erase(
        std::remove_if(sample->items.begin(), sample->items.end(), stale),
        sample->items.end());
  }
}

WcgReservoir::AuditOutcome WcgReservoir::audit(
    std::uint64_t now_micros, double min_age_s,
    const std::function<std::optional<bool>(const dm::core::Wcg&,
                                            std::uint64_t ts_micros)>& oracle) {
  std::lock_guard<std::mutex> lock(mutex_);
  AuditOutcome outcome;
  const double min_age_us = min_age_s * 1e6;

  // Phase 1: query the oracle for every eligible entry, collecting the
  // overturns; mutating the class vectors mid-iteration would skew indices.
  struct Overturn {
    bool from_infection = false;
    std::size_t index = 0;
  };
  std::vector<Overturn> overturns;
  for (ClassSample* sample : {&infections_, &benign_}) {
    const bool is_infection_class = (sample == &infections_);
    for (std::size_t i = 0; i < sample->items.size(); ++i) {
      LabeledWcg& item = sample->items[i];
      if (item.oracle_audited) continue;
      if (now_micros < item.ts_micros ||
          static_cast<double>(now_micros - item.ts_micros) < min_age_us) {
        continue;  // not yet old enough for a delayed verdict
      }
      const std::optional<bool> truth = oracle(item.wcg, item.ts_micros);
      if (!truth.has_value()) {
        ++outcome.unavailable;
        continue;
      }
      item.oracle_audited = true;
      ++outcome.audited;
      if (*truth == item.infection) {
        ++outcome.confirmed;
      } else {
        ++outcome.overturned;
        overturns.push_back({is_infection_class, i});
      }
    }
  }

  // Phase 2: extract every overturned entry first (highest index first per
  // class, so earlier indices stay valid), then insert into the opposite
  // class.  Extraction fully precedes insertion — an insertion that replaced
  // a not-yet-extracted entry would corrupt the sweep.
  std::vector<LabeledWcg> moved;
  moved.reserve(overturns.size());
  for (auto it = overturns.rbegin(); it != overturns.rend(); ++it) {
    ClassSample& source = it->from_infection ? infections_ : benign_;
    LabeledWcg item = std::move(source.items[it->index]);
    source.items.erase(source.items.begin() +
                       static_cast<std::ptrdiff_t>(it->index));
    item.infection = !it->from_infection;
    moved.push_back(std::move(item));
  }
  for (LabeledWcg& item : moved) {
    ClassSample& target = item.infection ? infections_ : benign_;
    if (target.items.size() < options_.capacity_per_class) {
      target.items.push_back(std::move(item));
    } else {
      // Target full: replace its oldest entry — deterministic, bounded, and
      // biased toward recency the same way the time-window mode is.
      std::size_t oldest = 0;
      for (std::size_t i = 1; i < target.items.size(); ++i) {
        if (target.items[i].ts_micros < target.items[oldest].ts_micros) {
          oldest = i;
        }
      }
      target.items[oldest] = std::move(item);
    }
  }
  return outcome;
}

WcgReservoir::Snapshot WcgReservoir::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  snap.infections.reserve(infections_.items.size());
  for (const auto& item : infections_.items) snap.infections.push_back(item.wcg);
  snap.benign.reserve(benign_.items.size());
  for (const auto& item : benign_.items) snap.benign.push_back(item.wcg);
  snap.offered = offered_;
  snap.admitted = admitted_;
  return snap;
}

std::uint64_t WcgReservoir::offered() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return offered_;
}

std::uint64_t WcgReservoir::admitted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return admitted_;
}

std::size_t WcgReservoir::infection_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return infections_.items.size();
}

std::size_t WcgReservoir::benign_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return benign_.items.size();
}

}  // namespace dm::serve

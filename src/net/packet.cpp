#include "net/packet.h"

#include <charconv>
#include <cstdio>

namespace dm::net {
namespace {

std::uint16_t read_u16(const std::uint8_t* p) noexcept {
  return static_cast<std::uint16_t>(p[0] << 8 | p[1]);
}

std::uint32_t read_u32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) << 24 | static_cast<std::uint32_t>(p[1]) << 16 |
         static_cast<std::uint32_t>(p[2]) << 8 | p[3];
}

constexpr std::size_t kEthernetHeaderSize = 14;
constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;

}  // namespace

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) noexcept {
  std::array<std::uint8_t, 4> octets{};
  std::size_t octet = 0;
  const char* p = text.data();
  const char* end = text.data() + text.size();
  while (octet < 4) {
    unsigned value = 0;
    const auto [next, ec] = std::from_chars(p, end, value);
    if (ec != std::errc{} || value > 255) return std::nullopt;
    octets[octet++] = static_cast<std::uint8_t>(value);
    p = next;
    if (octet < 4) {
      if (p == end || *p != '.') return std::nullopt;
      ++p;
    }
  }
  if (p != end) return std::nullopt;
  return from_octets(octets[0], octets[1], octets[2], octets[3]);
}

std::string Ipv4Address::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (value >> 24) & 0xff,
                (value >> 16) & 0xff, (value >> 8) & 0xff, value & 0xff);
  return buf;
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> data,
                                std::uint32_t initial) noexcept {
  std::uint32_t sum = initial;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += read_u16(data.data() + i);
  }
  if (i < data.size()) {
    sum += static_cast<std::uint32_t>(data[i]) << 8;
  }
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

std::optional<ParsedPacket> parse_ethernet_ipv4_tcp(
    std::span<const std::uint8_t> frame) noexcept {
  if (frame.size() < kEthernetHeaderSize) return std::nullopt;
  const std::uint16_t ether_type = read_u16(frame.data() + 12);
  if (ether_type != kEtherTypeIpv4) return std::nullopt;

  const auto ip = frame.subspan(kEthernetHeaderSize);
  if (ip.size() < 20) return std::nullopt;
  const std::uint8_t version = ip[0] >> 4;
  if (version != 4) return std::nullopt;
  const std::size_t ihl = static_cast<std::size_t>(ip[0] & 0x0f) * 4;
  if (ihl < 20 || ip.size() < ihl) return std::nullopt;
  const std::uint16_t total_length = read_u16(ip.data() + 2);
  if (total_length < ihl || ip.size() < total_length) return std::nullopt;
  const std::uint16_t frag = read_u16(ip.data() + 6);
  if ((frag & 0x1fff) != 0) return std::nullopt;  // non-first fragment
  const std::uint8_t protocol = ip[9];
  if (protocol != 6) return std::nullopt;  // TCP only

  const auto tcp = ip.subspan(ihl, total_length - ihl);
  if (tcp.size() < 20) return std::nullopt;
  const std::size_t data_offset = static_cast<std::size_t>(tcp[12] >> 4) * 4;
  if (data_offset < 20 || tcp.size() < data_offset) return std::nullopt;

  ParsedPacket pkt;
  pkt.src_ip.value = read_u32(ip.data() + 12);
  pkt.dst_ip.value = read_u32(ip.data() + 16);
  pkt.src_port = read_u16(tcp.data());
  pkt.dst_port = read_u16(tcp.data() + 2);
  pkt.seq = read_u32(tcp.data() + 4);
  pkt.ack = read_u32(tcp.data() + 8);
  const std::uint8_t flag_bits = tcp[13];
  pkt.flags.fin = flag_bits & 0x01;
  pkt.flags.syn = flag_bits & 0x02;
  pkt.flags.rst = flag_bits & 0x04;
  pkt.flags.psh = flag_bits & 0x08;
  pkt.flags.ack = flag_bits & 0x10;
  pkt.payload = tcp.subspan(data_offset);
  return pkt;
}

}  // namespace dm::net

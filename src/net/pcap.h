// Classic libpcap capture-file format, implemented from scratch (no libpcap
// dependency).  Supports reading both the microsecond (0xa1b2c3d4) and
// nanosecond (0xa1b23c4d) magics in either byte order, and writing the
// microsecond little-endian variant.  Link type is Ethernet (DLT_EN10MB).
//
// This is the on-disk interface between the synthetic trace generator
// (which WRITES infection/benign episodes as real pcap files) and the
// offline analytics stage (which READS them back through full TCP/HTTP
// reconstruction), mirroring the paper's PCAP-driven Stage 1.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dm::net {

/// One captured frame: timestamp plus raw link-layer bytes.
struct PcapPacket {
  std::uint64_t ts_micros = 0;  // absolute time in microseconds
  std::vector<std::uint8_t> data;
};

/// A parsed capture file.
struct PcapFile {
  std::uint32_t link_type = 1;  // DLT_EN10MB
  std::vector<PcapPacket> packets;
};

/// Serializes packets into pcap bytes (little-endian, usec resolution).
std::vector<std::uint8_t> write_pcap(const PcapFile& file);

/// Parses pcap bytes.  Throws std::runtime_error on malformed input
/// (bad magic, truncated header); tolerates a truncated final record by
/// dropping it.
PcapFile read_pcap(const std::vector<std::uint8_t>& bytes);

/// File-system convenience wrappers.  Throw std::runtime_error on I/O error.
void write_pcap_file(const std::string& path, const PcapFile& file);
PcapFile read_pcap_file(const std::string& path);

}  // namespace dm::net

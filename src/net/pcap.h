// Classic libpcap capture-file format, implemented from scratch (no libpcap
// dependency).  Supports reading both the microsecond (0xa1b2c3d4) and
// nanosecond (0xa1b23c4d) magics in either byte order, and writing the
// microsecond little-endian variant.  Link type is Ethernet (DLT_EN10MB).
//
// This is the on-disk interface between the synthetic trace generator
// (which WRITES infection/benign episodes as real pcap files) and the
// offline analytics stage (which READS them back through full TCP/HTTP
// reconstruction), mirroring the paper's PCAP-driven Stage 1.
//
// Decoding is fault-tolerant: decode_pcap() never throws on malformed
// bytes.  A bad record is quarantined — described by a util::DecodeError,
// counted in util::FaultStats, optionally retained for a forensic
// quarantine capture — and iteration continues with whatever can still be
// salvaged.  Only file-level I/O keeps throwing (read_pcap_file /
// write_pcap_file), per the repo convention: exceptions for environment
// errors, structured errors for wire data.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/expected.h"
#include "util/fault_stats.h"

namespace dm::net {

/// One captured frame: timestamp plus raw link-layer bytes.
struct PcapPacket {
  std::uint64_t ts_micros = 0;  // absolute time in microseconds
  std::vector<std::uint8_t> data;
};

/// A parsed capture file.
struct PcapFile {
  std::uint32_t link_type = 1;  // DLT_EN10MB
  std::vector<PcapPacket> packets;
};

/// Serializes packets into pcap bytes (little-endian, usec resolution).
std::vector<std::uint8_t> write_pcap(const PcapFile& file);

struct PcapDecodeOptions {
  /// Records claiming more than this many bytes are treated as corrupt
  /// length fields (quarantined, iteration stops — a broken length prefix
  /// makes the rest of the byte stream unaddressable).
  std::size_t max_record_bytes = 16 * 1024 * 1024;
  /// Retain the raw bytes of quarantined records in
  /// PcapDecodeResult::quarantined so they can be re-wrapped into a
  /// forensic capture (quarantine_capture()).
  bool keep_quarantined = false;
};

/// Outcome of a best-effort decode: the salvaged packets plus a precise
/// account of everything that was quarantined.
struct PcapDecodeResult {
  PcapFile file;
  /// One entry per quarantined fault, in input order.
  std::vector<dm::util::DecodeError> errors;
  /// Raw bytes of quarantined records (only with keep_quarantined); the
  /// timestamp is the record's own if its header was readable.
  std::vector<PcapPacket> quarantined;
  /// The capture ended mid-record: the salvaged prefix is complete but the
  /// final record was cut (satellite of the §V-B robustness requirement —
  /// a truncated tail must not discard the parsed prefix).
  bool truncated_tail = false;
  /// The global header was unusable (bad magic / too short): nothing could
  /// be decoded at all.
  bool fatal = false;
};

/// Best-effort decode.  Never throws on malformed input; every fault is
/// appended to `errors` and (when given) counted in `faults`.
PcapDecodeResult decode_pcap(std::span<const std::uint8_t> bytes,
                             const PcapDecodeOptions& options = {},
                             dm::util::FaultStats* faults = nullptr);

/// Header-validating decode for callers that need value-or-error: a fatal
/// header fault becomes the DecodeError, anything else the salvaged file.
dm::util::Expected<PcapFile> parse_pcap(std::span<const std::uint8_t> bytes,
                                        dm::util::FaultStats* faults = nullptr);

/// Re-wraps the quarantined records of a decode into a capture of their own
/// (forensic dump; write with write_pcap / write_pcap_file).
PcapFile quarantine_capture(const PcapDecodeResult& result);

/// Legacy strict reader.  Throws std::runtime_error only on a fatal header
/// fault (bad magic, truncated global header); malformed records are
/// quarantined silently and the salvaged prefix is returned.
PcapFile read_pcap(const std::vector<std::uint8_t>& bytes);

/// File-system convenience wrappers.  Throw std::runtime_error on I/O error.
void write_pcap_file(const std::string& path, const PcapFile& file);
PcapFile read_pcap_file(const std::string& path);

/// Reads a capture file fault-tolerantly: throws only on I/O errors; decode
/// faults are quarantined into the result / `faults`.
PcapDecodeResult decode_pcap_file(const std::string& path,
                                  const PcapDecodeOptions& options = {},
                                  dm::util::FaultStats* faults = nullptr);

}  // namespace dm::net

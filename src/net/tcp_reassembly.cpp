#include "net/tcp_reassembly.h"

#include "util/hash.h"
#include "util/rate_limit.h"

namespace dm::net {

FlowKey FlowKey::canonical(Ipv4Address src_ip, std::uint16_t src_port,
                           Ipv4Address dst_ip, std::uint16_t dst_port) noexcept {
  const bool src_first =
      src_ip.value < dst_ip.value ||
      (src_ip.value == dst_ip.value && src_port <= dst_port);
  if (src_first) return {src_ip, src_port, dst_ip, dst_port};
  return {dst_ip, dst_port, src_ip, src_port};
}

std::size_t FlowKeyHash::operator()(const FlowKey& k) const noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(k.ip_a.value);
  mix(k.port_a);
  mix(k.ip_b.value);
  mix(k.port_b);
  return static_cast<std::size_t>(h);
}

std::uint64_t DirectionStream::timestamp_at(std::size_t offset) const noexcept {
  for (const auto& chunk : chunks) {
    if (offset >= chunk.offset && offset < chunk.offset + chunk.length) {
      return chunk.ts_micros;
    }
  }
  return 0;
}

void TcpReassembler::ingest(const ParsedPacket& pkt, std::uint64_t ts_micros) {
  const FlowKey key =
      FlowKey::canonical(pkt.src_ip, pkt.src_port, pkt.dst_ip, pkt.dst_port);

  auto it = flows_.find(key);
  if (it == flows_.end()) {
    FlowState state;
    // Prefer the SYN sender as client; otherwise whoever spoke first.
    state.flow.client_ip = pkt.src_ip;
    state.flow.client_port = pkt.src_port;
    state.flow.server_ip = pkt.dst_ip;
    state.flow.server_port = pkt.dst_port;
    state.flow.first_ts_micros = ts_micros;
    it = flows_.emplace(key, std::move(state)).first;
    flow_order_.push_back(key);
  }
  FlowState& state = it->second;
  TcpFlow& flow = state.flow;
  flow.last_ts_micros = ts_micros;

  const bool from_client =
      pkt.src_ip == flow.client_ip && pkt.src_port == flow.client_port;
  DirectionState& dir = from_client ? state.client_dir : state.server_dir;
  DirectionStream& stream =
      from_client ? flow.client_to_server : flow.server_to_client;

  if (pkt.flags.syn) {
    flow.saw_syn = true;
    dir.initialized = true;
    dir.next_seq = pkt.seq + 1;  // SYN consumes one sequence number
    return;
  }
  if (pkt.flags.rst) {
    flow.closed = true;
    return;
  }
  if (!dir.initialized) {
    // Mid-stream capture: adopt this packet's sequence as the start.
    dir.initialized = true;
    dir.next_seq = pkt.seq;
  }

  if (!pkt.payload.empty()) {
    deliver(dir, stream, pkt.seq,
            std::string_view(reinterpret_cast<const char*>(pkt.payload.data()),
                             pkt.payload.size()),
            ts_micros);
  }
  if (pkt.flags.fin) {
    flow.closed = true;
    dir.next_seq += 1;
  }
}

void TcpReassembler::quarantine(dm::util::DecodeErrorCode code,
                                std::size_t amount) {
  if (faults_) faults_->record(code);
  static dm::util::EveryN gate(256);
  dm::util::log_every_n(gate, dm::util::LogLevel::kWarn,
                        "tcp: quarantined ", amount, " bytes (",
                        dm::util::decode_error_name(code), ")");
}

void TcpReassembler::deliver(DirectionState& dir, DirectionStream& stream,
                             std::uint32_t seq, std::string_view payload,
                             std::uint64_t ts) {
  // Trim any prefix we already have (retransmission / overlap).
  if (seq_before(seq, dir.next_seq)) {
    const std::uint32_t overlap = dir.next_seq - seq;
    if (overlap >= payload.size()) {
      ++counters_.duplicate_segments;
      return;  // pure duplicate
    }
    ++counters_.overlapping_segments;
    payload.remove_prefix(overlap);
    seq = dir.next_seq;
  }

  if (seq == dir.next_seq) {
    if (stream.data.size() + payload.size() > options_.max_stream_bytes) {
      // Direction hit its byte budget: advance next_seq so the flow's
      // bookkeeping stays consistent, but stop growing the stream.
      ++counters_.stream_capped;
      quarantine(dm::util::DecodeErrorCode::kTcpStreamOverflow, payload.size());
      dir.next_seq += static_cast<std::uint32_t>(payload.size());
      flush_pending(dir, stream);
      return;
    }
    stream.chunks.push_back({stream.data.size(), payload.size(), ts});
    stream.data.append(payload);
    dir.next_seq += static_cast<std::uint32_t>(payload.size());
    flush_pending(dir, stream);
  } else {
    // Out of order: hold until the gap fills — within the per-direction
    // budget.  An adversarial all-gaps stream sheds the newest segment
    // (the buffered ones are closer to next_seq and still fillable).
    if (dir.pending.size() >= options_.max_pending_segments ||
        dir.pending_bytes + payload.size() > options_.max_pending_bytes) {
      ++counters_.pending_dropped;
      quarantine(dm::util::DecodeErrorCode::kTcpPendingOverflow,
                 payload.size());
      return;
    }
    const auto [it, inserted] =
        dir.pending.emplace(seq, std::make_pair(std::string(payload), ts));
    if (inserted) {
      dir.pending_bytes += payload.size();
    } else {
      ++counters_.duplicate_segments;  // same-seq retransmission while gapped
    }
  }
}

void TcpReassembler::flush_pending(DirectionState& dir, DirectionStream& stream) {
  while (!dir.pending.empty()) {
    // Find a buffered segment that starts at or before next_seq.
    bool progressed = false;
    for (auto it = dir.pending.begin(); it != dir.pending.end();) {
      auto& [seq, entry] = *it;
      auto& [data, ts] = entry;
      if (seq_before(dir.next_seq, seq)) {
        ++it;
        continue;  // still a gap before this one
      }
      const std::uint32_t overlap = dir.next_seq - seq;
      if (overlap < data.size()) {
        std::string_view remaining(data);
        remaining.remove_prefix(overlap);
        if (overlap > 0) ++counters_.overlapping_segments;
        if (stream.data.size() + remaining.size() > options_.max_stream_bytes) {
          ++counters_.stream_capped;
          quarantine(dm::util::DecodeErrorCode::kTcpStreamOverflow,
                     remaining.size());
          dir.next_seq += static_cast<std::uint32_t>(remaining.size());
        } else {
          stream.chunks.push_back({stream.data.size(), remaining.size(), ts});
          stream.data.append(remaining);
          dir.next_seq += static_cast<std::uint32_t>(remaining.size());
        }
        progressed = true;
      }
      dir.pending_bytes -= data.size();
      it = dir.pending.erase(it);
      if (progressed) break;  // restart scan: next_seq moved
    }
    if (!progressed) break;
  }
}

std::vector<const TcpFlow*> TcpReassembler::flows() const {
  std::vector<const TcpFlow*> out;
  out.reserve(flow_order_.size());
  for (const FlowKey& key : flow_order_) {
    out.push_back(&flows_.at(key).flow);
  }
  return out;
}

}  // namespace dm::net

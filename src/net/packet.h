// Ethernet II / IPv4 / TCP header parsing over raw frame bytes.
// Zero-copy: the parsed views point into the caller's buffer.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

namespace dm::net {

/// IPv4 address as host-order 32-bit value plus dotted-quad helpers.
struct Ipv4Address {
  std::uint32_t value = 0;

  static Ipv4Address from_octets(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                                 std::uint8_t d) noexcept {
    return {static_cast<std::uint32_t>(a) << 24 | static_cast<std::uint32_t>(b) << 16 |
            static_cast<std::uint32_t>(c) << 8 | d};
  }
  /// Parses "a.b.c.d"; nullopt on malformed text.
  static std::optional<Ipv4Address> parse(std::string_view text) noexcept;

  std::string to_string() const;

  friend auto operator<=>(const Ipv4Address&, const Ipv4Address&) = default;
};

struct TcpFlags {
  bool syn = false;
  bool ack = false;
  bool fin = false;
  bool rst = false;
  bool psh = false;
};

/// Fully parsed TCP/IPv4 packet; `payload` views into the original frame.
struct ParsedPacket {
  Ipv4Address src_ip;
  Ipv4Address dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  TcpFlags flags;
  std::span<const std::uint8_t> payload;
};

/// Parses an Ethernet II frame carrying IPv4/TCP.  Returns nullopt for
/// anything else (ARP, IPv6, UDP, truncated headers, IP fragments beyond
/// the first are rejected too — the synthetic traffic never fragments, and
/// real analyzers treat fragments as a separate reassembly problem).
std::optional<ParsedPacket> parse_ethernet_ipv4_tcp(
    std::span<const std::uint8_t> frame) noexcept;

/// Internet checksum (RFC 1071) over a byte range, used by both the builder
/// and the validating parser.
std::uint16_t internet_checksum(std::span<const std::uint8_t> data,
                                std::uint32_t initial = 0) noexcept;

}  // namespace dm::net

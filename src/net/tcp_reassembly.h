// TCP stream reassembly: turns a timestamped sequence of parsed TCP/IPv4
// packets into per-flow, per-direction ordered byte streams.  Handles
// out-of-order arrival, retransmission (duplicate/overlapping segments are
// trimmed), and sequence-number wraparound.  Each delivered byte range keeps
// its arrival timestamp so the HTTP layer can time individual transactions —
// the WCG's temporal features (f36, f37) depend on this.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/packet.h"

namespace dm::net {

/// Canonical 4-tuple key.  The lower (ip, port) pair is stored first so both
/// directions of a connection map to the same key.
struct FlowKey {
  Ipv4Address ip_a;
  std::uint16_t port_a = 0;
  Ipv4Address ip_b;
  std::uint16_t port_b = 0;

  static FlowKey canonical(Ipv4Address src_ip, std::uint16_t src_port,
                           Ipv4Address dst_ip, std::uint16_t dst_port) noexcept;

  friend bool operator==(const FlowKey&, const FlowKey&) = default;
};

struct FlowKeyHash {
  std::size_t operator()(const FlowKey& k) const noexcept;
};

/// A contiguous run of delivered bytes with its arrival time.
struct StreamChunk {
  std::size_t offset = 0;  // into DirectionStream::data
  std::size_t length = 0;
  std::uint64_t ts_micros = 0;
};

/// In-order reassembled bytes for one direction of a flow.
struct DirectionStream {
  std::string data;
  std::vector<StreamChunk> chunks;

  /// Timestamp of the chunk containing byte `offset`; 0 if out of range.
  std::uint64_t timestamp_at(std::size_t offset) const noexcept;
};

/// One reassembled TCP connection.
struct TcpFlow {
  Ipv4Address client_ip;   // initiator (SYN sender, or first packet seen)
  std::uint16_t client_port = 0;
  Ipv4Address server_ip;
  std::uint16_t server_port = 0;
  DirectionStream client_to_server;
  DirectionStream server_to_client;
  std::uint64_t first_ts_micros = 0;
  std::uint64_t last_ts_micros = 0;
  bool saw_syn = false;
  bool closed = false;  // FIN or RST observed from either side
};

/// Streaming reassembler.  Feed packets in capture order via `ingest`; read
/// out completed state via `flows()` at any point.
class TcpReassembler {
 public:
  void ingest(const ParsedPacket& pkt, std::uint64_t ts_micros);

  /// All flows seen so far, in order of first packet.
  std::vector<const TcpFlow*> flows() const;

  std::size_t flow_count() const noexcept { return flow_order_.size(); }

 private:
  struct DirectionState {
    bool initialized = false;
    std::uint32_t next_seq = 0;  // next expected sequence number
    // Out-of-order segments keyed by absolute sequence number.
    std::map<std::uint32_t, std::pair<std::string, std::uint64_t>> pending;
  };

  struct FlowState {
    TcpFlow flow;
    DirectionState client_dir;  // client -> server
    DirectionState server_dir;  // server -> client
  };

  static bool seq_before(std::uint32_t a, std::uint32_t b) noexcept {
    return static_cast<std::int32_t>(a - b) < 0;
  }

  void deliver(DirectionState& dir, DirectionStream& stream,
               std::uint32_t seq, std::string_view payload, std::uint64_t ts);
  void flush_pending(DirectionState& dir, DirectionStream& stream);

  std::unordered_map<FlowKey, FlowState, FlowKeyHash> flows_;
  std::vector<FlowKey> flow_order_;
};

}  // namespace dm::net

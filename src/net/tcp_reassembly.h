// TCP stream reassembly: turns a timestamped sequence of parsed TCP/IPv4
// packets into per-flow, per-direction ordered byte streams.  Handles
// out-of-order arrival, retransmission (duplicate/overlapping segments are
// trimmed), and sequence-number wraparound.  Each delivered byte range keeps
// its arrival timestamp so the HTTP layer can time individual transactions —
// the WCG's temporal features (f36, f37) depend on this.
//
// Adversarial input cannot grow state without bound: per-direction caps
// bound the out-of-order hold buffer (a hostile stream of gapped segments
// would otherwise buffer forever) and the reassembled stream itself.
// Segments dropped at a cap are quarantined — counted in the reassembler's
// ReassemblyCounters and, when given, a util::FaultStats — and the flow
// keeps going with what it has.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/packet.h"
#include "util/fault_stats.h"

namespace dm::net {

/// Canonical 4-tuple key.  The lower (ip, port) pair is stored first so both
/// directions of a connection map to the same key.
struct FlowKey {
  Ipv4Address ip_a;
  std::uint16_t port_a = 0;
  Ipv4Address ip_b;
  std::uint16_t port_b = 0;

  static FlowKey canonical(Ipv4Address src_ip, std::uint16_t src_port,
                           Ipv4Address dst_ip, std::uint16_t dst_port) noexcept;

  friend bool operator==(const FlowKey&, const FlowKey&) = default;
};

struct FlowKeyHash {
  std::size_t operator()(const FlowKey& k) const noexcept;
};

/// A contiguous run of delivered bytes with its arrival time.
struct StreamChunk {
  std::size_t offset = 0;  // into DirectionStream::data
  std::size_t length = 0;
  std::uint64_t ts_micros = 0;
};

/// In-order reassembled bytes for one direction of a flow.
struct DirectionStream {
  std::string data;
  std::vector<StreamChunk> chunks;

  /// Timestamp of the chunk containing byte `offset`; 0 if out of range.
  std::uint64_t timestamp_at(std::size_t offset) const noexcept;
};

/// One reassembled TCP connection.
struct TcpFlow {
  Ipv4Address client_ip;   // initiator (SYN sender, or first packet seen)
  std::uint16_t client_port = 0;
  Ipv4Address server_ip;
  std::uint16_t server_port = 0;
  DirectionStream client_to_server;
  DirectionStream server_to_client;
  std::uint64_t first_ts_micros = 0;
  std::uint64_t last_ts_micros = 0;
  bool saw_syn = false;
  bool closed = false;  // FIN or RST observed from either side
};

/// Robustness limits for adversarial streams.  The defaults are far above
/// anything well-formed traffic produces; hitting one is a quarantine event.
struct ReassemblyOptions {
  /// Max out-of-order segments held per direction while waiting for a gap
  /// to fill; further gapped segments are dropped (oldest-gap data wins).
  std::size_t max_pending_segments = 4096;
  /// Max bytes held across a direction's pending segments.
  std::size_t max_pending_bytes = 8 * 1024 * 1024;
  /// Max reassembled bytes per direction; deliveries beyond it are dropped.
  std::size_t max_stream_bytes = 256 * 1024 * 1024;
};

/// Per-reassembler tallies of tolerated anomalies and quarantined drops.
struct ReassemblyCounters {
  std::uint64_t duplicate_segments = 0;   // fully-covered retransmissions
  std::uint64_t overlapping_segments = 0; // partial overlap, prefix trimmed
  std::uint64_t pending_dropped = 0;      // segments shed at a pending cap
  std::uint64_t stream_capped = 0;        // deliveries shed at the byte cap
};

/// Streaming reassembler.  Feed packets in capture order via `ingest`; read
/// out completed state via `flows()` at any point.
class TcpReassembler {
 public:
  TcpReassembler() = default;
  explicit TcpReassembler(ReassemblyOptions options,
                          dm::util::FaultStats* faults = nullptr)
      : options_(options), faults_(faults) {}

  void ingest(const ParsedPacket& pkt, std::uint64_t ts_micros);

  const ReassemblyCounters& counters() const noexcept { return counters_; }

  /// All flows seen so far, in order of first packet.
  std::vector<const TcpFlow*> flows() const;

  std::size_t flow_count() const noexcept { return flow_order_.size(); }

 private:
  struct DirectionState {
    bool initialized = false;
    std::uint32_t next_seq = 0;  // next expected sequence number
    // Out-of-order segments keyed by absolute sequence number.
    std::map<std::uint32_t, std::pair<std::string, std::uint64_t>> pending;
    std::size_t pending_bytes = 0;
  };

  struct FlowState {
    TcpFlow flow;
    DirectionState client_dir;  // client -> server
    DirectionState server_dir;  // server -> client
  };

  static bool seq_before(std::uint32_t a, std::uint32_t b) noexcept {
    return static_cast<std::int32_t>(a - b) < 0;
  }

  void deliver(DirectionState& dir, DirectionStream& stream,
               std::uint32_t seq, std::string_view payload, std::uint64_t ts);
  void flush_pending(DirectionState& dir, DirectionStream& stream);

  void quarantine(dm::util::DecodeErrorCode code, std::size_t amount);

  std::unordered_map<FlowKey, FlowState, FlowKeyHash> flows_;
  std::vector<FlowKey> flow_order_;
  ReassemblyOptions options_;
  ReassemblyCounters counters_;
  dm::util::FaultStats* faults_ = nullptr;
};

}  // namespace dm::net

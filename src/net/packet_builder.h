// Frame construction: builds valid Ethernet II / IPv4 / TCP frames with
// correct length fields and internet checksums.  Used by the synthetic
// trace generator to emit genuine wire bytes, and by tests to feed the
// parser/reassembler known inputs.
//
// TcpConversationBuilder scripts an entire TCP conversation — handshake,
// interleaved payload exchange with correct sequence/ack progression, and
// teardown — producing timestamped frames ready for a pcap file.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "net/packet.h"
#include "net/pcap.h"

namespace dm::net {

struct FrameSpec {
  Ipv4Address src_ip;
  Ipv4Address dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  TcpFlags flags;
  std::span<const std::uint8_t> payload;
};

/// Builds one Ethernet/IPv4/TCP frame (checksums computed, MACs synthetic
/// but stable per IP).
std::vector<std::uint8_t> build_frame(const FrameSpec& spec);

/// Scripts a full TCP conversation between a client and a server.
/// Call `handshake()` once, then any number of `client_send` / `server_send`
/// with timestamps, then `teardown()`.  Frames accumulate in order.
class TcpConversationBuilder {
 public:
  TcpConversationBuilder(Ipv4Address client_ip, std::uint16_t client_port,
                         Ipv4Address server_ip, std::uint16_t server_port,
                         std::uint32_t client_isn = 1000,
                         std::uint32_t server_isn = 5000);

  /// SYN / SYN-ACK / ACK at the given start time; handshake packets are
  /// spaced `rtt_micros` apart.
  void handshake(std::uint64_t ts_micros, std::uint64_t rtt_micros = 500);

  /// Data from client to server, chunked into MSS-sized segments.
  void client_send(std::uint64_t ts_micros, std::string_view data);
  /// Data from server to client.
  void server_send(std::uint64_t ts_micros, std::string_view data);

  /// FIN exchange.
  void teardown(std::uint64_t ts_micros);

  /// All frames so far, timestamped, in emission order.
  const std::vector<PcapPacket>& packets() const noexcept { return packets_; }
  std::vector<PcapPacket> take_packets() noexcept { return std::move(packets_); }

  static constexpr std::size_t kMss = 1400;

 private:
  void send_data(std::uint64_t ts_micros, std::string_view data, bool from_client);
  void emit(std::uint64_t ts_micros, const FrameSpec& spec);

  Ipv4Address client_ip_;
  Ipv4Address server_ip_;
  std::uint16_t client_port_;
  std::uint16_t server_port_;
  std::uint32_t client_seq_;
  std::uint32_t server_seq_;
  bool established_ = false;
  std::vector<PcapPacket> packets_;
};

}  // namespace dm::net

#include "net/packet_builder.h"

#include <algorithm>
#include <cstring>

namespace dm::net {
namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
}

void write_u16_at(std::vector<std::uint8_t>& buf, std::size_t at, std::uint16_t v) {
  buf[at] = static_cast<std::uint8_t>(v >> 8);
  buf[at + 1] = static_cast<std::uint8_t>(v & 0xff);
}

/// Deterministic locally-administered MAC from an IP.
void put_mac(std::vector<std::uint8_t>& out, Ipv4Address ip) {
  out.push_back(0x02);
  out.push_back(0x00);
  out.push_back(static_cast<std::uint8_t>(ip.value >> 24));
  out.push_back(static_cast<std::uint8_t>(ip.value >> 16));
  out.push_back(static_cast<std::uint8_t>(ip.value >> 8));
  out.push_back(static_cast<std::uint8_t>(ip.value));
}

}  // namespace

std::vector<std::uint8_t> build_frame(const FrameSpec& spec) {
  std::vector<std::uint8_t> frame;
  frame.reserve(14 + 20 + 20 + spec.payload.size());

  // Ethernet II header.
  put_mac(frame, spec.dst_ip);
  put_mac(frame, spec.src_ip);
  put_u16(frame, 0x0800);

  // IPv4 header (20 bytes, no options).
  const std::size_t ip_start = frame.size();
  const auto total_length =
      static_cast<std::uint16_t>(20 + 20 + spec.payload.size());
  frame.push_back(0x45);  // version 4, IHL 5
  frame.push_back(0x00);  // DSCP/ECN
  put_u16(frame, total_length);
  put_u16(frame, 0x1234);  // identification (arbitrary constant)
  put_u16(frame, 0x4000);  // flags: DF
  frame.push_back(64);     // TTL
  frame.push_back(6);      // protocol TCP
  put_u16(frame, 0);       // checksum placeholder
  put_u32(frame, spec.src_ip.value);
  put_u32(frame, spec.dst_ip.value);
  const std::uint16_t ip_checksum = internet_checksum(
      std::span<const std::uint8_t>(frame.data() + ip_start, 20));
  write_u16_at(frame, ip_start + 10, ip_checksum);

  // TCP header (20 bytes, no options).
  const std::size_t tcp_start = frame.size();
  put_u16(frame, spec.src_port);
  put_u16(frame, spec.dst_port);
  put_u32(frame, spec.seq);
  put_u32(frame, spec.ack);
  frame.push_back(0x50);  // data offset 5
  std::uint8_t flag_bits = 0;
  if (spec.flags.fin) flag_bits |= 0x01;
  if (spec.flags.syn) flag_bits |= 0x02;
  if (spec.flags.rst) flag_bits |= 0x04;
  if (spec.flags.psh) flag_bits |= 0x08;
  if (spec.flags.ack) flag_bits |= 0x10;
  frame.push_back(flag_bits);
  put_u16(frame, 65535);  // window
  put_u16(frame, 0);      // checksum placeholder
  put_u16(frame, 0);      // urgent pointer
  frame.insert(frame.end(), spec.payload.begin(), spec.payload.end());

  // TCP checksum over pseudo-header + segment.
  std::vector<std::uint8_t> pseudo;
  const auto tcp_length = static_cast<std::uint16_t>(frame.size() - tcp_start);
  put_u32(pseudo, spec.src_ip.value);
  put_u32(pseudo, spec.dst_ip.value);
  pseudo.push_back(0);
  pseudo.push_back(6);
  put_u16(pseudo, tcp_length);
  pseudo.insert(pseudo.end(), frame.begin() + static_cast<std::ptrdiff_t>(tcp_start),
                frame.end());
  const std::uint16_t tcp_checksum = internet_checksum(pseudo);
  write_u16_at(frame, tcp_start + 16, tcp_checksum);
  return frame;
}

TcpConversationBuilder::TcpConversationBuilder(Ipv4Address client_ip,
                                               std::uint16_t client_port,
                                               Ipv4Address server_ip,
                                               std::uint16_t server_port,
                                               std::uint32_t client_isn,
                                               std::uint32_t server_isn)
    : client_ip_(client_ip),
      server_ip_(server_ip),
      client_port_(client_port),
      server_port_(server_port),
      client_seq_(client_isn),
      server_seq_(server_isn) {}

void TcpConversationBuilder::emit(std::uint64_t ts_micros, const FrameSpec& spec) {
  packets_.push_back({ts_micros, build_frame(spec)});
}

void TcpConversationBuilder::handshake(std::uint64_t ts_micros,
                                       std::uint64_t rtt_micros) {
  FrameSpec syn{client_ip_, server_ip_, client_port_, server_port_,
                client_seq_, 0, {.syn = true}, {}};
  emit(ts_micros, syn);
  ++client_seq_;

  FrameSpec syn_ack{server_ip_, client_ip_, server_port_, client_port_,
                    server_seq_, client_seq_, {.syn = true, .ack = true}, {}};
  emit(ts_micros + rtt_micros / 2, syn_ack);
  ++server_seq_;

  FrameSpec ack{client_ip_, server_ip_, client_port_, server_port_,
                client_seq_, server_seq_, {.ack = true}, {}};
  emit(ts_micros + rtt_micros, ack);
  established_ = true;
}

void TcpConversationBuilder::send_data(std::uint64_t ts_micros,
                                       std::string_view data, bool from_client) {
  std::size_t offset = 0;
  std::uint64_t ts = ts_micros;
  while (offset < data.size()) {
    const std::size_t chunk = std::min(kMss, data.size() - offset);
    const auto* bytes = reinterpret_cast<const std::uint8_t*>(data.data() + offset);
    FrameSpec spec;
    if (from_client) {
      spec = {client_ip_, server_ip_, client_port_, server_port_,
              client_seq_, server_seq_,
              {.ack = true, .psh = offset + chunk == data.size()},
              std::span<const std::uint8_t>(bytes, chunk)};
      client_seq_ += static_cast<std::uint32_t>(chunk);
    } else {
      spec = {server_ip_, client_ip_, server_port_, client_port_,
              server_seq_, client_seq_,
              {.ack = true, .psh = offset + chunk == data.size()},
              std::span<const std::uint8_t>(bytes, chunk)};
      server_seq_ += static_cast<std::uint32_t>(chunk);
    }
    emit(ts, spec);
    offset += chunk;
    ts += 50;  // successive segments 50us apart
  }
}

void TcpConversationBuilder::client_send(std::uint64_t ts_micros,
                                         std::string_view data) {
  send_data(ts_micros, data, true);
}

void TcpConversationBuilder::server_send(std::uint64_t ts_micros,
                                         std::string_view data) {
  send_data(ts_micros, data, false);
}

void TcpConversationBuilder::teardown(std::uint64_t ts_micros) {
  FrameSpec fin{client_ip_, server_ip_, client_port_, server_port_,
                client_seq_, server_seq_, {.ack = true, .fin = true}, {}};
  emit(ts_micros, fin);
  ++client_seq_;
  FrameSpec fin_ack{server_ip_, client_ip_, server_port_, client_port_,
                    server_seq_, client_seq_, {.ack = true, .fin = true}, {}};
  emit(ts_micros + 250, fin_ack);
  ++server_seq_;
  FrameSpec last{client_ip_, server_ip_, client_port_, server_port_,
                 client_seq_, server_seq_, {.ack = true}, {}};
  emit(ts_micros + 500, last);
  established_ = false;
}

}  // namespace dm::net

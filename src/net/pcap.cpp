#include "net/pcap.h"

#include <cstring>
#include <fstream>
#include <stdexcept>

#include "util/rate_limit.h"

namespace dm::net {
namespace {

using dm::util::DecodeError;
using dm::util::DecodeErrorCode;
using dm::util::DecodeLayer;

constexpr std::uint32_t kMagicMicros = 0xa1b2c3d4;
constexpr std::uint32_t kMagicNanos = 0xa1b23c4d;
constexpr std::uint32_t kMagicMicrosSwapped = 0xd4c3b2a1;
constexpr std::uint32_t kMagicNanosSwapped = 0x4d3cb2a1;
constexpr std::size_t kGlobalHeaderSize = 24;
constexpr std::size_t kRecordHeaderSize = 16;

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xff));
}

std::uint32_t swap32(std::uint32_t v) {
  return ((v & 0xff) << 24) | ((v & 0xff00) << 8) | ((v >> 8) & 0xff00) |
         (v >> 24);
}

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  bool remaining(std::size_t n) const noexcept { return pos_ + n <= size_; }
  std::size_t left() const noexcept { return size_ - pos_; }
  std::size_t pos() const noexcept { return pos_; }

  std::uint32_t u32(bool swapped) {
    std::uint32_t v;
    std::memcpy(&v, data_ + pos_, 4);
    pos_ += 4;
    return swapped ? swap32(v) : v;
  }

  void skip(std::size_t n) { pos_ += n; }

  const std::uint8_t* cursor() const noexcept { return data_ + pos_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

void quarantine(PcapDecodeResult& result, dm::util::FaultStats* faults,
                DecodeError error) {
  if (faults) faults->record(error);
  static dm::util::EveryN gate(256);
  dm::util::log_every_n(gate, dm::util::LogLevel::kWarn,
                        "pcap: quarantined: ", error.to_string());
  result.errors.push_back(std::move(error));
}

}  // namespace

std::vector<std::uint8_t> write_pcap(const PcapFile& file) {
  std::vector<std::uint8_t> out;
  out.reserve(24 + file.packets.size() * 64);
  put_u32(out, kMagicMicros);
  put_u16(out, 2);   // version major
  put_u16(out, 4);   // version minor
  put_u32(out, 0);   // thiszone
  put_u32(out, 0);   // sigfigs
  put_u32(out, 65535);  // snaplen
  put_u32(out, file.link_type);
  for (const auto& pkt : file.packets) {
    put_u32(out, static_cast<std::uint32_t>(pkt.ts_micros / 1000000));
    put_u32(out, static_cast<std::uint32_t>(pkt.ts_micros % 1000000));
    put_u32(out, static_cast<std::uint32_t>(pkt.data.size()));  // incl_len
    put_u32(out, static_cast<std::uint32_t>(pkt.data.size()));  // orig_len
    out.insert(out.end(), pkt.data.begin(), pkt.data.end());
  }
  return out;
}

PcapDecodeResult decode_pcap(std::span<const std::uint8_t> bytes,
                             const PcapDecodeOptions& options,
                             dm::util::FaultStats* faults) {
  PcapDecodeResult result;
  if (bytes.size() < kGlobalHeaderSize) {
    result.fatal = true;
    quarantine(result, faults,
               {DecodeErrorCode::kPcapTruncatedHeader, DecodeLayer::kPcap, 0,
                "global header needs 24 bytes, " +
                    std::to_string(bytes.size()) + " given"});
    return result;
  }
  Reader r(bytes.data(), bytes.size());

  const std::uint32_t raw_magic = r.u32(false);
  bool swapped = false;
  bool nanos = false;
  switch (raw_magic) {
    case kMagicMicros: break;
    case kMagicNanos: nanos = true; break;
    case kMagicMicrosSwapped: swapped = true; break;
    case kMagicNanosSwapped: swapped = true; nanos = true; break;
    default:
      result.fatal = true;
      quarantine(result, faults,
                 {DecodeErrorCode::kPcapBadMagic, DecodeLayer::kPcap, 0,
                  "unrecognized magic"});
      return result;
  }
  // Header layout after magic: version(4) thiszone(4) sigfigs(4) snaplen(4)
  // network(4) — 24 bytes total.
  r.skip(4 + 4 + 4 + 4);  // version, thiszone, sigfigs, snaplen
  result.file.link_type = r.u32(swapped);

  while (r.remaining(kRecordHeaderSize)) {
    const std::size_t record_start = r.pos();
    const std::uint32_t ts_sec = r.u32(swapped);
    const std::uint32_t ts_frac = r.u32(swapped);
    const std::uint32_t incl_len = r.u32(swapped);
    r.skip(4);  // orig_len
    const std::uint64_t frac_micros = nanos ? ts_frac / 1000 : ts_frac;
    const std::uint64_t ts_micros =
        static_cast<std::uint64_t>(ts_sec) * 1000000 + frac_micros;

    if (incl_len > options.max_record_bytes) {
      // A corrupt length prefix makes everything after it unaddressable:
      // quarantine the tail as one fault and stop.
      quarantine(result, faults,
                 {DecodeErrorCode::kPcapOversizedRecord, DecodeLayer::kPcap,
                  record_start,
                  "record claims " + std::to_string(incl_len) + " bytes, cap " +
                      std::to_string(options.max_record_bytes)});
      if (options.keep_quarantined) {
        result.quarantined.push_back(
            {ts_micros, std::vector<std::uint8_t>(
                            r.cursor(), r.cursor() + std::min<std::size_t>(
                                                         r.left(), incl_len))});
      }
      return result;
    }
    if (!r.remaining(incl_len)) {
      // Truncated final record: keep the successfully-parsed prefix and flag
      // the cut instead of discarding the capture.
      result.truncated_tail = true;
      quarantine(result, faults,
                 {DecodeErrorCode::kPcapTruncatedRecord, DecodeLayer::kPcap,
                  record_start,
                  "record needs " + std::to_string(incl_len) + " bytes, " +
                      std::to_string(r.left()) + " left"});
      if (options.keep_quarantined) {
        result.quarantined.push_back(
            {ts_micros,
             std::vector<std::uint8_t>(r.cursor(), r.cursor() + r.left())});
      }
      return result;
    }
    PcapPacket pkt;
    pkt.ts_micros = ts_micros;
    pkt.data.assign(r.cursor(), r.cursor() + incl_len);
    r.skip(incl_len);
    result.file.packets.push_back(std::move(pkt));
  }
  if (r.left() > 0) {
    // 1..15 trailing bytes: a record header itself was cut mid-write.
    result.truncated_tail = true;
    quarantine(result, faults,
               {DecodeErrorCode::kPcapTruncatedRecord, DecodeLayer::kPcap,
                r.pos(),
                "trailing " + std::to_string(r.left()) +
                    " bytes are a cut record header"});
    if (options.keep_quarantined) {
      result.quarantined.push_back(
          {0, std::vector<std::uint8_t>(r.cursor(), r.cursor() + r.left())});
    }
  }
  return result;
}

dm::util::Expected<PcapFile> parse_pcap(std::span<const std::uint8_t> bytes,
                                        dm::util::FaultStats* faults) {
  PcapDecodeResult result = decode_pcap(bytes, {}, faults);
  if (result.fatal) return result.errors.front();
  return std::move(result.file);
}

PcapFile quarantine_capture(const PcapDecodeResult& result) {
  PcapFile capture;
  capture.link_type = result.file.link_type;
  capture.packets = result.quarantined;
  return capture;
}

PcapFile read_pcap(const std::vector<std::uint8_t>& bytes) {
  auto parsed = parse_pcap(bytes);
  if (!parsed) throw std::runtime_error("pcap: " + parsed.error().to_string());
  return std::move(*parsed);
}

void write_pcap_file(const std::string& path, const PcapFile& file) {
  const auto bytes = write_pcap(file);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("pcap: cannot open for write: " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw std::runtime_error("pcap: write failed: " + path);
}

PcapFile read_pcap_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("pcap: cannot open for read: " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return read_pcap(bytes);
}

PcapDecodeResult decode_pcap_file(const std::string& path,
                                  const PcapDecodeOptions& options,
                                  dm::util::FaultStats* faults) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("pcap: cannot open for read: " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return decode_pcap(bytes, options, faults);
}

}  // namespace dm::net

#include "net/pcap.h"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace dm::net {
namespace {

constexpr std::uint32_t kMagicMicros = 0xa1b2c3d4;
constexpr std::uint32_t kMagicNanos = 0xa1b23c4d;
constexpr std::uint32_t kMagicMicrosSwapped = 0xd4c3b2a1;
constexpr std::uint32_t kMagicNanosSwapped = 0x4d3cb2a1;

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xff));
}

std::uint32_t swap32(std::uint32_t v) {
  return ((v & 0xff) << 24) | ((v & 0xff00) << 8) | ((v >> 8) & 0xff00) |
         (v >> 24);
}

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  bool remaining(std::size_t n) const noexcept { return pos_ + n <= size_; }

  std::uint32_t u32(bool swapped) {
    std::uint32_t v;
    std::memcpy(&v, data_ + pos_, 4);
    pos_ += 4;
    return swapped ? swap32(v) : v;
  }

  void skip(std::size_t n) { pos_ += n; }

  const std::uint8_t* cursor() const noexcept { return data_ + pos_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<std::uint8_t> write_pcap(const PcapFile& file) {
  std::vector<std::uint8_t> out;
  out.reserve(24 + file.packets.size() * 64);
  put_u32(out, kMagicMicros);
  put_u16(out, 2);   // version major
  put_u16(out, 4);   // version minor
  put_u32(out, 0);   // thiszone
  put_u32(out, 0);   // sigfigs
  put_u32(out, 65535);  // snaplen
  put_u32(out, file.link_type);
  for (const auto& pkt : file.packets) {
    put_u32(out, static_cast<std::uint32_t>(pkt.ts_micros / 1000000));
    put_u32(out, static_cast<std::uint32_t>(pkt.ts_micros % 1000000));
    put_u32(out, static_cast<std::uint32_t>(pkt.data.size()));  // incl_len
    put_u32(out, static_cast<std::uint32_t>(pkt.data.size()));  // orig_len
    out.insert(out.end(), pkt.data.begin(), pkt.data.end());
  }
  return out;
}

PcapFile read_pcap(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < 24) throw std::runtime_error("pcap: truncated global header");
  Reader r(bytes.data(), bytes.size());

  const std::uint32_t raw_magic = r.u32(false);
  bool swapped = false;
  bool nanos = false;
  switch (raw_magic) {
    case kMagicMicros: break;
    case kMagicNanos: nanos = true; break;
    case kMagicMicrosSwapped: swapped = true; break;
    case kMagicNanosSwapped: swapped = true; nanos = true; break;
    default: throw std::runtime_error("pcap: bad magic");
  }
  // Header layout after magic: version(4) thiszone(4) sigfigs(4) snaplen(4)
  // network(4) — 24 bytes total.
  r.skip(4 + 4 + 4 + 4);  // version, thiszone, sigfigs, snaplen
  PcapFile file;
  file.link_type = r.u32(swapped);

  while (r.remaining(16)) {
    const std::uint32_t ts_sec = r.u32(swapped);
    const std::uint32_t ts_frac = r.u32(swapped);
    const std::uint32_t incl_len = r.u32(swapped);
    r.skip(4);  // orig_len
    if (!r.remaining(incl_len)) break;  // truncated final record: drop
    PcapPacket pkt;
    const std::uint64_t frac_micros = nanos ? ts_frac / 1000 : ts_frac;
    pkt.ts_micros = static_cast<std::uint64_t>(ts_sec) * 1000000 + frac_micros;
    pkt.data.assign(r.cursor(), r.cursor() + incl_len);
    r.skip(incl_len);
    file.packets.push_back(std::move(pkt));
  }
  return file;
}

void write_pcap_file(const std::string& path, const PcapFile& file) {
  const auto bytes = write_pcap(file);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("pcap: cannot open for write: " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw std::runtime_error("pcap: write failed: " + path);
}

PcapFile read_pcap_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("pcap: cannot open for read: " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return read_pcap(bytes);
}

}  // namespace dm::net

#include "graph/shortest_paths.h"

#include <algorithm>
#include <queue>

namespace dm::graph {

std::vector<std::uint32_t> bfs_distances(const Adjacency& adj, NodeId source) {
  std::vector<std::uint32_t> dist(adj.size(), kUnreachable);
  if (source >= adj.size()) return dist;
  std::queue<NodeId> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop();
    for (NodeId w : adj[v]) {
      if (dist[w] == kUnreachable) {
        dist[w] = dist[v] + 1;
        frontier.push(w);
      }
    }
  }
  return dist;
}

std::uint32_t eccentricity(const Adjacency& adj, NodeId source) {
  const auto dist = bfs_distances(adj, source);
  std::uint32_t ecc = 0;
  for (std::uint32_t d : dist) {
    if (d != kUnreachable) ecc = std::max(ecc, d);
  }
  return ecc;
}

std::uint32_t diameter(const Adjacency& adj) {
  std::uint32_t diam = 0;
  for (NodeId v = 0; v < adj.size(); ++v) {
    diam = std::max(diam, eccentricity(adj, v));
  }
  return diam;
}

Components connected_components(const Adjacency& adj) {
  Components result;
  result.component_of.assign(adj.size(), kUnreachable);
  for (NodeId start = 0; start < adj.size(); ++start) {
    if (result.component_of[start] != kUnreachable) continue;
    const std::uint32_t id = result.count++;
    std::queue<NodeId> frontier;
    result.component_of[start] = id;
    frontier.push(start);
    while (!frontier.empty()) {
      const NodeId v = frontier.front();
      frontier.pop();
      for (NodeId w : adj[v]) {
        if (result.component_of[w] == kUnreachable) {
          result.component_of[w] = id;
          frontier.push(w);
        }
      }
    }
  }
  return result;
}

std::size_t nodes_within(const Adjacency& adj, NodeId source, std::uint32_t k) {
  const auto dist = bfs_distances(adj, source);
  std::size_t count = 0;
  for (NodeId v = 0; v < adj.size(); ++v) {
    if (v != source && dist[v] != kUnreachable && dist[v] <= k) ++count;
  }
  return count;
}

}  // namespace dm::graph

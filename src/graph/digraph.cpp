#include "graph/digraph.h"

#include <algorithm>
#include <stdexcept>

namespace dm::graph {

Digraph::Digraph(std::size_t n) : out_(n), in_(n) {}

NodeId Digraph::add_node() {
  out_.emplace_back();
  in_.emplace_back();
  return static_cast<NodeId>(out_.size() - 1);
}

EdgeId Digraph::add_edge(NodeId src, NodeId dst) {
  if (src >= out_.size() || dst >= out_.size()) {
    throw std::out_of_range("Digraph::add_edge: endpoint does not exist");
  }
  const auto id = static_cast<EdgeId>(edges_.size());
  edges_.push_back({src, dst});
  out_[src].push_back(id);
  in_[dst].push_back(id);
  return id;
}

bool Digraph::has_edge(NodeId src, NodeId dst) const {
  for (EdgeId e : out_.at(src)) {
    if (edges_[e].dst == dst) return true;
  }
  return false;
}

namespace {
std::vector<NodeId> sorted_unique(std::vector<NodeId> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}
}  // namespace

std::vector<NodeId> Digraph::out_neighbors(NodeId v) const {
  std::vector<NodeId> nbrs;
  nbrs.reserve(out_.at(v).size());
  for (EdgeId e : out_[v]) {
    if (edges_[e].dst != v) nbrs.push_back(edges_[e].dst);
  }
  return sorted_unique(std::move(nbrs));
}

std::vector<NodeId> Digraph::in_neighbors(NodeId v) const {
  std::vector<NodeId> nbrs;
  nbrs.reserve(in_.at(v).size());
  for (EdgeId e : in_[v]) {
    if (edges_[e].src != v) nbrs.push_back(edges_[e].src);
  }
  return sorted_unique(std::move(nbrs));
}

std::vector<NodeId> Digraph::neighbors(NodeId v) const {
  std::vector<NodeId> nbrs;
  nbrs.reserve(out_.at(v).size() + in_.at(v).size());
  for (EdgeId e : out_[v]) {
    if (edges_[e].dst != v) nbrs.push_back(edges_[e].dst);
  }
  for (EdgeId e : in_[v]) {
    if (edges_[e].src != v) nbrs.push_back(edges_[e].src);
  }
  return sorted_unique(std::move(nbrs));
}

std::vector<std::vector<NodeId>> Digraph::undirected_adjacency() const {
  std::vector<std::vector<NodeId>> adj(node_count());
  for (const Edge& e : edges_) {
    if (e.src == e.dst) continue;
    adj[e.src].push_back(e.dst);
    adj[e.dst].push_back(e.src);
  }
  for (auto& nbrs : adj) nbrs = sorted_unique(std::move(nbrs));
  return adj;
}

std::vector<std::vector<NodeId>> Digraph::directed_adjacency() const {
  std::vector<std::vector<NodeId>> adj(node_count());
  for (const Edge& e : edges_) {
    if (e.src == e.dst) continue;
    adj[e.src].push_back(e.dst);
  }
  for (auto& nbrs : adj) nbrs = sorted_unique(std::move(nbrs));
  return adj;
}

}  // namespace dm::graph

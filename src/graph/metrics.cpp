#include "graph/metrics.h"

#include "graph/centrality.h"
#include "graph/connectivity.h"
#include "graph/pagerank.h"
#include "graph/shortest_paths.h"

namespace dm::graph {
namespace {

double mean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

}  // namespace

GraphMetrics compute_metrics(const Digraph& g, const MetricsOptions& options) {
  GraphMetrics m;
  const std::size_t n = g.node_count();
  m.order = n;
  m.size = g.edge_count();
  if (n == 0) return m;

  std::size_t degree_sum = 0;
  std::size_t in_sum = 0;
  std::size_t out_sum = 0;
  for (NodeId v = 0; v < n; ++v) {
    degree_sum += g.degree(v);
    in_sum += g.in_degree(v);
    out_sum += g.out_degree(v);
  }
  m.volume = degree_sum;
  m.avg_degree = static_cast<double>(degree_sum) / static_cast<double>(n);
  m.avg_in_degree = static_cast<double>(in_sum) / static_cast<double>(n);
  m.avg_out_degree = static_cast<double>(out_sum) / static_cast<double>(n);
  m.reciprocity = reciprocity(g);

  const auto directed = g.directed_adjacency();
  std::size_t simple_edges = 0;
  for (const auto& nbrs : directed) simple_edges += nbrs.size();
  if (n > 1) {
    m.density = static_cast<double>(simple_edges) /
                (static_cast<double>(n) * static_cast<double>(n - 1));
  }

  const auto undirected = g.undirected_adjacency();
  m.diameter = diameter(undirected);
  m.avg_degree_centrality = mean_of(degree_centrality(undirected));
  m.avg_closeness_centrality = mean_of(closeness_centrality(undirected));
  m.avg_betweenness_centrality = mean_of(betweenness_centrality(undirected));
  m.avg_load_centrality = mean_of(load_centrality(undirected));

  dm::util::Rng rng(options.sample_seed);
  m.avg_node_connectivity =
      average_node_connectivity(undirected, rng, options.connectivity_max_pairs);

  m.avg_clustering_coefficient = average_clustering(undirected);
  m.avg_neighbor_degree = mean_of(average_neighbor_degrees(undirected));

  const auto adc = average_degree_connectivity(undirected);
  if (!adc.empty()) {
    double s = 0.0;
    for (const auto& [k, v] : adc) s += v;
    m.avg_degree_connectivity = s / static_cast<double>(adc.size());
  }

  m.avg_k_nearest_neighbors = average_k_nearest_neighbors(undirected, options.knn_hops);
  m.avg_pagerank = mean_of(pagerank(directed));
  return m;
}

}  // namespace dm::graph

// One-shot aggregate of every graph-level measure the WCG feature extractor
// (features f7-f25) and the §II-C empirical study need.  Computing them
// together shares the adjacency construction and BFS sweeps.
#pragma once

#include <cstdint>

#include "graph/digraph.h"
#include "util/rng.h"

namespace dm::graph {

struct GraphMetrics {
  // Basic structure.
  std::size_t order = 0;          // f7: nodes
  std::size_t size = 0;           // f8: edges (multigraph count)
  double avg_degree = 0.0;        // f9 averaged over nodes
  double density = 0.0;           // f10: m_simple / (n (n-1)) directed
  std::size_t volume = 0;         // f11: sum of multigraph degrees = 2m
  std::uint32_t diameter = 0;     // f12
  double avg_in_degree = 0.0;     // f13
  double avg_out_degree = 0.0;    // f14
  double reciprocity = 0.0;       // f15

  // Centrality averages.
  double avg_degree_centrality = 0.0;       // f16
  double avg_closeness_centrality = 0.0;    // f17
  double avg_betweenness_centrality = 0.0;  // f18
  double avg_load_centrality = 0.0;         // f19
  double avg_node_connectivity = 0.0;       // f20

  // Neighborhood / clustering.
  double avg_clustering_coefficient = 0.0;  // f21
  double avg_neighbor_degree = 0.0;         // f22
  double avg_degree_connectivity = 0.0;     // f23 (mean over degree classes)
  double avg_k_nearest_neighbors = 0.0;     // f24 (k = 2 hops)
  double avg_pagerank = 0.0;                // f25
};

struct MetricsOptions {
  /// Pair budget for average node connectivity sampling (see
  /// connectivity.h); exact below this, sampled above.
  std::size_t connectivity_max_pairs = 2000;
  /// Hop radius for f24.
  std::uint32_t knn_hops = 2;
  /// Seed for connectivity sampling so feature vectors are deterministic.
  std::uint64_t sample_seed = 0x5eedc0ffee;
};

/// Computes every metric in one pass over shared adjacency structures.
GraphMetrics compute_metrics(const Digraph& g, const MetricsOptions& options = {});

}  // namespace dm::graph

#include "graph/pagerank.h"

#include <cmath>

namespace dm::graph {

std::vector<double> pagerank(const Adjacency& adj, const PageRankOptions& options) {
  const std::size_t n = adj.size();
  if (n == 0) return {};
  const double uniform = 1.0 / static_cast<double>(n);
  std::vector<double> rank(n, uniform);
  std::vector<double> next(n, 0.0);

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    double dangling_mass = 0.0;
    for (std::size_t v = 0; v < n; ++v) {
      if (adj[v].empty()) dangling_mass += rank[v];
      next[v] = 0.0;
    }
    for (std::size_t v = 0; v < n; ++v) {
      if (adj[v].empty()) continue;
      const double share = rank[v] / static_cast<double>(adj[v].size());
      for (NodeId w : adj[v]) next[w] += share;
    }
    double delta = 0.0;
    for (std::size_t v = 0; v < n; ++v) {
      const double value = (1.0 - options.damping) * uniform +
                           options.damping * (next[v] + dangling_mass * uniform);
      delta += std::abs(value - rank[v]);
      rank[v] = value;
    }
    if (delta < options.tolerance) break;
  }
  return rank;
}

}  // namespace dm::graph

#include "graph/centrality.h"

#include <algorithm>
#include <queue>
#include <stack>

namespace dm::graph {

std::vector<double> degree_centrality(const Adjacency& adj) {
  const std::size_t n = adj.size();
  std::vector<double> c(n, 0.0);
  if (n < 2) return c;
  const double scale = 1.0 / static_cast<double>(n - 1);
  for (std::size_t v = 0; v < n; ++v) {
    c[v] = static_cast<double>(adj[v].size()) * scale;
  }
  return c;
}

std::vector<double> closeness_centrality(const Adjacency& adj) {
  const std::size_t n = adj.size();
  std::vector<double> c(n, 0.0);
  if (n < 2) return c;
  for (NodeId v = 0; v < n; ++v) {
    const auto dist = bfs_distances(adj, v);
    double total = 0.0;
    std::size_t reachable = 0;
    for (std::uint32_t d : dist) {
      if (d != kUnreachable && d > 0) {
        total += static_cast<double>(d);
        ++reachable;
      }
    }
    if (total > 0.0) {
      const double r = static_cast<double>(reachable);
      c[v] = r / total * r / static_cast<double>(n - 1);
    }
  }
  return c;
}

namespace {

/// Shared single-source shortest-path DAG state for Brandes-style sweeps.
struct SsspDag {
  std::vector<std::uint32_t> dist;
  std::vector<double> sigma;                 // shortest-path counts
  std::vector<std::vector<NodeId>> preds;    // predecessors on shortest paths
  std::vector<NodeId> order;                 // nodes in non-decreasing distance
};

SsspDag build_dag(const Adjacency& adj, NodeId source) {
  const std::size_t n = adj.size();
  SsspDag dag;
  dag.dist.assign(n, kUnreachable);
  dag.sigma.assign(n, 0.0);
  dag.preds.assign(n, {});
  dag.order.reserve(n);

  std::queue<NodeId> frontier;
  dag.dist[source] = 0;
  dag.sigma[source] = 1.0;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop();
    dag.order.push_back(v);
    for (NodeId w : adj[v]) {
      if (dag.dist[w] == kUnreachable) {
        dag.dist[w] = dag.dist[v] + 1;
        frontier.push(w);
      }
      if (dag.dist[w] == dag.dist[v] + 1) {
        dag.sigma[w] += dag.sigma[v];
        dag.preds[w].push_back(v);
      }
    }
  }
  return dag;
}

double pair_normalization(std::size_t n) {
  // Undirected: each unordered pair is counted twice by the source loop.
  if (n < 3) return 0.0;
  return 1.0 / (static_cast<double>(n - 1) * static_cast<double>(n - 2));
}

}  // namespace

std::vector<double> betweenness_centrality(const Adjacency& adj) {
  const std::size_t n = adj.size();
  std::vector<double> bc(n, 0.0);
  const double norm = pair_normalization(n);
  if (norm == 0.0) return bc;

  for (NodeId s = 0; s < n; ++s) {
    auto dag = build_dag(adj, s);
    std::vector<double> delta(n, 0.0);
    // Accumulate dependencies in reverse BFS order.
    for (auto it = dag.order.rbegin(); it != dag.order.rend(); ++it) {
      const NodeId w = *it;
      for (NodeId v : dag.preds[w]) {
        delta[v] += dag.sigma[v] / dag.sigma[w] * (1.0 + delta[w]);
      }
      if (w != s) bc[w] += delta[w];
    }
  }
  for (double& x : bc) x *= norm;
  return bc;
}

std::vector<double> load_centrality(const Adjacency& adj) {
  const std::size_t n = adj.size();
  std::vector<double> lc(n, 0.0);
  const double norm = pair_normalization(n);
  if (norm == 0.0) return lc;

  for (NodeId s = 0; s < n; ++s) {
    auto dag = build_dag(adj, s);
    // Each reachable target starts with one unit of "load"; load at a node
    // splits EQUALLY among its shortest-path predecessors (this equal split
    // is what distinguishes load from betweenness).
    std::vector<double> load(n, 0.0);
    for (NodeId v = 0; v < n; ++v) {
      if (v != s && dag.dist[v] != kUnreachable) load[v] += 1.0;
    }
    for (auto it = dag.order.rbegin(); it != dag.order.rend(); ++it) {
      const NodeId w = *it;
      if (dag.preds[w].empty()) continue;
      const double share = load[w] / static_cast<double>(dag.preds[w].size());
      for (NodeId v : dag.preds[w]) load[v] += share;
    }
    for (NodeId v = 0; v < n; ++v) {
      if (v != s) lc[v] += load[v] - 1.0;  // subtract the unit that terminates at v
    }
  }
  for (double& x : lc) x = std::max(0.0, x) * norm;
  return lc;
}

}  // namespace dm::graph

// PageRank by power iteration (feature f25).  Dangling nodes distribute
// their mass uniformly, matching the standard formulation.
#pragma once

#include <vector>

#include "graph/shortest_paths.h"

namespace dm::graph {

struct PageRankOptions {
  double damping = 0.85;
  double tolerance = 1e-9;  // L1 change per iteration to declare convergence
  std::size_t max_iterations = 200;
};

/// PageRank over the directed simple view.  Returns a probability vector
/// (sums to 1 for non-empty graphs).
std::vector<double> pagerank(const Adjacency& directed_adj,
                             const PageRankOptions& options = {});

}  // namespace dm::graph

// Directed multigraph.
//
// This is the structural backbone of the Web Conversation Graph (WCG,
// paper §III-A).  The graph is purely structural: nodes and edges are dense
// integer ids, and all domain attributes (hosts, payloads, timestamps) live
// in the owning layer (src/core/wcg.h) keyed by those ids.  Multi-edges are
// allowed because a conversation pair exchanges many request/response edges.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace dm::graph {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = ~NodeId{0};

/// One directed edge of the multigraph.
struct Edge {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
};

/// Directed multigraph with O(1) amortized insertion and per-node incidence
/// lists.  Nodes cannot be removed (WCGs only grow during a conversation,
/// paper §V-B), which keeps ids stable for attribute side-tables.
class Digraph {
 public:
  Digraph() = default;

  /// Creates a graph with `n` isolated nodes.
  explicit Digraph(std::size_t n);

  /// Adds a node, returning its id.
  NodeId add_node();

  /// Adds a directed edge src -> dst (parallel edges allowed; self-loops
  /// allowed but ignored by most metrics).  Both endpoints must exist.
  EdgeId add_edge(NodeId src, NodeId dst);

  std::size_t node_count() const noexcept { return out_.size(); }
  std::size_t edge_count() const noexcept { return edges_.size(); }
  bool empty() const noexcept { return out_.empty(); }

  const Edge& edge(EdgeId e) const { return edges_.at(e); }
  std::span<const Edge> edges() const noexcept { return edges_; }

  /// Edge ids leaving / entering a node.
  std::span<const EdgeId> out_edges(NodeId v) const { return out_.at(v); }
  std::span<const EdgeId> in_edges(NodeId v) const { return in_.at(v); }

  /// Multigraph degrees (parallel edges counted individually).
  std::size_t out_degree(NodeId v) const { return out_.at(v).size(); }
  std::size_t in_degree(NodeId v) const { return in_.at(v).size(); }
  std::size_t degree(NodeId v) const { return out_degree(v) + in_degree(v); }

  /// True if at least one edge src -> dst exists.  O(out_degree(src)).
  bool has_edge(NodeId src, NodeId dst) const;

  /// Unique out-/in-/undirected neighbors (parallel edges collapsed,
  /// self-loops dropped).  Results are sorted.
  std::vector<NodeId> out_neighbors(NodeId v) const;
  std::vector<NodeId> in_neighbors(NodeId v) const;
  std::vector<NodeId> neighbors(NodeId v) const;

  /// Undirected simple adjacency for the whole graph: adjacency[v] is the
  /// sorted unique neighbor set of v.  Most WCG metrics (diameter,
  /// centralities, clustering) are computed on this view; building it once
  /// amortizes the dedup cost across algorithms.
  std::vector<std::vector<NodeId>> undirected_adjacency() const;

  /// Directed simple adjacency (parallel edges collapsed, self-loops kept
  /// out); used by PageRank.
  std::vector<std::vector<NodeId>> directed_adjacency() const;

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_;
  std::vector<std::vector<EdgeId>> in_;
};

}  // namespace dm::graph

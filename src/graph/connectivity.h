// Connectivity / neighborhood metrics: local & average node connectivity
// (max-flow on vertex-split unit-capacity graphs), clustering coefficient,
// average neighbor degree, degree connectivity, and k-nearest-neighbor
// counts.  These back features f20-f24 and the §II-C study (Figure 7).
#pragma once

#include <cstdint>
#include <map>

#include "graph/shortest_paths.h"
#include "util/rng.h"

namespace dm::graph {

/// Local node connectivity between s and t on the undirected view: the
/// minimum number of nodes whose removal disconnects t from s (Menger),
/// computed as max-flow with unit node capacities (vertex splitting,
/// BFS augmenting paths).  If s and t are adjacent the edge bypasses node
/// limits, following the standard convention of contracting it out.
std::uint32_t local_node_connectivity(const Adjacency& adj, NodeId s, NodeId t);

/// Average node connectivity over node pairs.  Exact when the number of
/// pairs is <= max_pairs; otherwise averages over `max_pairs` pairs sampled
/// uniformly with the provided RNG (WCGs can reach 404 nodes — 81k pairs —
/// where exact all-pairs flow would dominate feature-extraction time).
double average_node_connectivity(const Adjacency& adj, dm::util::Rng& rng,
                                 std::size_t max_pairs = 2000);

/// Per-node clustering coefficient on the undirected simple view.
std::vector<double> clustering_coefficients(const Adjacency& adj);

/// Average clustering coefficient; 0 for empty graphs.
double average_clustering(const Adjacency& adj);

/// Average degree of each node's neighbors (nodes with no neighbors -> 0).
std::vector<double> average_neighbor_degrees(const Adjacency& adj);

/// networkx-style average degree connectivity: for each degree k present in
/// the graph, the mean average-neighbor-degree of nodes with degree k.
std::map<std::size_t, double> average_degree_connectivity(const Adjacency& adj);

/// Mean over nodes of |{u : 1 <= dist(v,u) <= k}| — "average number of
/// nodes at k-nodes distance" (feature f24).  k defaults to 2 hops.
double average_k_nearest_neighbors(const Adjacency& adj, std::uint32_t k = 2);

/// Reciprocity of a directed graph: fraction of directed simple edges whose
/// reverse also exists (feature f15).  0 for edgeless graphs.
double reciprocity(const Digraph& g);

}  // namespace dm::graph

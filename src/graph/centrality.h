// Centrality measures over the undirected simple view of a WCG:
// degree, closeness, betweenness (Brandes 2001) and load (Newman's
// flow-splitting variant).  These back features f16-f19 of the paper and the
// §II-C empirical study (Figures 3, 8, 9).
#pragma once

#include <vector>

#include "graph/shortest_paths.h"

namespace dm::graph {

/// Degree centrality: deg(v) / (n - 1); 0 for graphs with < 2 nodes.
std::vector<double> degree_centrality(const Adjacency& adj);

/// Closeness centrality with the Wasserman-Faust improvement for
/// disconnected graphs (matches networkx's default, which the paper's
/// tooling used):
///   C(v) = (r - 1) / sum_dists * (r - 1) / (n - 1)
/// where r is the number of nodes reachable from v.
std::vector<double> closeness_centrality(const Adjacency& adj);

/// Betweenness centrality (Brandes), normalized by 2/((n-1)(n-2)) for the
/// undirected view; 0 vector for graphs with < 3 nodes.
std::vector<double> betweenness_centrality(const Adjacency& adj);

/// Load centrality: like betweenness, but flow from each source splits
/// equally among predecessors at every node rather than proportionally to
/// path counts.  Same normalization as betweenness.
std::vector<double> load_centrality(const Adjacency& adj);

}  // namespace dm::graph

#include "graph/connectivity.h"

#include <algorithm>
#include <queue>

namespace dm::graph {
namespace {

/// Unit-capacity flow network for vertex connectivity.  Each original node v
/// becomes v_in (2v) and v_out (2v+1) joined by a capacity-1 arc; each
/// undirected edge {u, v} becomes u_out->v_in and v_out->u_in with large
/// capacity (edges are never the bottleneck for NODE connectivity).
class UnitFlowNetwork {
 public:
  UnitFlowNetwork(const Adjacency& adj, NodeId s, NodeId t) : s_(s), t_(t) {
    const std::size_t n = adj.size();
    head_.assign(2 * n, {});
    for (NodeId v = 0; v < n; ++v) {
      // Source and sink are not node-capacity constrained.
      const int cap = (v == s || v == t) ? kInf : 1;
      add_arc(node_in(v), node_out(v), cap);
    }
    for (NodeId v = 0; v < n; ++v) {
      for (NodeId w : adj[v]) {
        if (v < w) {
          add_arc(node_out(v), node_in(w), kInf);
          add_arc(node_out(w), node_in(v), kInf);
        }
      }
    }
  }

  /// Edmonds-Karp max-flow from s_out to t_in, capped at `limit` augmenting
  /// paths (connectivity is bounded by min-degree so a cap keeps this fast).
  std::uint32_t max_flow(std::uint32_t limit) {
    std::uint32_t flow = 0;
    while (flow < limit && augment()) ++flow;
    return flow;
  }

 private:
  static constexpr int kInf = 1 << 29;

  struct Arc {
    std::uint32_t to;
    int cap;
    std::size_t rev;  // index of reverse arc in head_[to]
  };

  static std::uint32_t node_in(NodeId v) noexcept { return 2 * v; }
  static std::uint32_t node_out(NodeId v) noexcept { return 2 * v + 1; }

  void add_arc(std::uint32_t from, std::uint32_t to, int cap) {
    head_[from].push_back({to, cap, head_[to].size()});
    head_[to].push_back({from, 0, head_[from].size() - 1});
  }

  bool augment() {
    const std::uint32_t source = node_out(s_);
    const std::uint32_t sink = node_in(t_);
    std::vector<std::pair<std::uint32_t, std::size_t>> parent(
        head_.size(), {~0u, 0});  // (node, arc index in that node's list)
    std::queue<std::uint32_t> q;
    parent[source] = {source, 0};
    q.push(source);
    while (!q.empty() && parent[sink].first == ~0u) {
      const std::uint32_t v = q.front();
      q.pop();
      for (std::size_t i = 0; i < head_[v].size(); ++i) {
        const Arc& a = head_[v][i];
        if (a.cap > 0 && parent[a.to].first == ~0u) {
          parent[a.to] = {v, i};
          q.push(a.to);
        }
      }
    }
    if (parent[sink].first == ~0u) return false;
    // All arcs on the path have cap >= 1; push one unit.
    std::uint32_t v = sink;
    while (v != source) {
      const auto [u, i] = parent[v];
      Arc& a = head_[u][i];
      a.cap -= 1;
      head_[a.to][a.rev].cap += 1;
      v = u;
    }
    return true;
  }

  NodeId s_;
  NodeId t_;
  std::vector<std::vector<Arc>> head_;
};

}  // namespace

std::uint32_t local_node_connectivity(const Adjacency& adj, NodeId s, NodeId t) {
  if (s == t || adj.size() < 2) return 0;
  // Adjacent nodes: connectivity counts the direct edge as one disjoint path
  // plus the connectivity of the graph without that edge; the standard
  // shortcut is 1 + connectivity in G - {s,t edge}.  We implement it by
  // removing the edge from a copy.
  const bool adjacent = std::binary_search(adj[s].begin(), adj[s].end(), t);
  if (!adjacent) {
    UnitFlowNetwork net(adj, s, t);
    const auto bound = static_cast<std::uint32_t>(
        std::min(adj[s].size(), adj[t].size()));
    return net.max_flow(bound);
  }
  Adjacency reduced = adj;
  auto erase_from = [](std::vector<NodeId>& v, NodeId x) {
    v.erase(std::remove(v.begin(), v.end(), x), v.end());
  };
  erase_from(reduced[s], t);
  erase_from(reduced[t], s);
  UnitFlowNetwork net(reduced, s, t);
  const auto bound = static_cast<std::uint32_t>(
      std::min(reduced[s].size(), reduced[t].size()));
  return 1 + net.max_flow(bound);
}

double average_node_connectivity(const Adjacency& adj, dm::util::Rng& rng,
                                 std::size_t max_pairs) {
  const std::size_t n = adj.size();
  if (n < 2) return 0.0;
  const std::size_t total_pairs = n * (n - 1) / 2;
  double sum = 0.0;
  std::size_t counted = 0;
  if (total_pairs <= max_pairs) {
    for (NodeId s = 0; s < n; ++s) {
      for (NodeId t = s + 1; t < n; ++t) {
        sum += local_node_connectivity(adj, s, t);
        ++counted;
      }
    }
  } else {
    while (counted < max_pairs) {
      const auto s = static_cast<NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      const auto t = static_cast<NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      if (s == t) continue;
      sum += local_node_connectivity(adj, s, t);
      ++counted;
    }
  }
  return counted == 0 ? 0.0 : sum / static_cast<double>(counted);
}

std::vector<double> clustering_coefficients(const Adjacency& adj) {
  const std::size_t n = adj.size();
  std::vector<double> cc(n, 0.0);
  for (NodeId v = 0; v < n; ++v) {
    const auto& nbrs = adj[v];
    const std::size_t k = nbrs.size();
    if (k < 2) continue;
    std::size_t links = 0;
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = i + 1; j < k; ++j) {
        if (std::binary_search(adj[nbrs[i]].begin(), adj[nbrs[i]].end(), nbrs[j])) {
          ++links;
        }
      }
    }
    cc[v] = 2.0 * static_cast<double>(links) /
            (static_cast<double>(k) * static_cast<double>(k - 1));
  }
  return cc;
}

double average_clustering(const Adjacency& adj) {
  if (adj.empty()) return 0.0;
  const auto cc = clustering_coefficients(adj);
  double sum = 0.0;
  for (double x : cc) sum += x;
  return sum / static_cast<double>(cc.size());
}

std::vector<double> average_neighbor_degrees(const Adjacency& adj) {
  const std::size_t n = adj.size();
  std::vector<double> and_(n, 0.0);
  for (NodeId v = 0; v < n; ++v) {
    if (adj[v].empty()) continue;
    double sum = 0.0;
    for (NodeId w : adj[v]) sum += static_cast<double>(adj[w].size());
    and_[v] = sum / static_cast<double>(adj[v].size());
  }
  return and_;
}

std::map<std::size_t, double> average_degree_connectivity(const Adjacency& adj) {
  const auto and_ = average_neighbor_degrees(adj);
  std::map<std::size_t, std::pair<double, std::size_t>> acc;  // degree -> (sum, count)
  for (NodeId v = 0; v < adj.size(); ++v) {
    const std::size_t k = adj[v].size();
    if (k == 0) continue;
    auto& [sum, count] = acc[k];
    sum += and_[v];
    ++count;
  }
  std::map<std::size_t, double> out;
  for (const auto& [k, sc] : acc) out[k] = sc.first / static_cast<double>(sc.second);
  return out;
}

double average_k_nearest_neighbors(const Adjacency& adj, std::uint32_t k) {
  if (adj.empty()) return 0.0;
  double sum = 0.0;
  for (NodeId v = 0; v < adj.size(); ++v) {
    sum += static_cast<double>(nodes_within(adj, v, k));
  }
  return sum / static_cast<double>(adj.size());
}

double reciprocity(const Digraph& g) {
  // Count over unique directed edges (parallel edges collapsed).
  const auto adj = g.directed_adjacency();
  std::size_t total = 0;
  std::size_t mutual = 0;
  for (NodeId v = 0; v < adj.size(); ++v) {
    for (NodeId w : adj[v]) {
      ++total;
      if (std::binary_search(adj[w].begin(), adj[w].end(), v)) ++mutual;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(mutual) / static_cast<double>(total);
}

}  // namespace dm::graph

// BFS-based shortest-path primitives shared by the centrality and diameter
// computations.  All distances are hop counts on the undirected simple view
// of the WCG, matching how the paper reports diameter/closeness on
// conversation graphs that mix request, response and redirect edges.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/digraph.h"

namespace dm::graph {

inline constexpr std::uint32_t kUnreachable = std::numeric_limits<std::uint32_t>::max();

/// Adjacency type produced by Digraph::undirected_adjacency /
/// directed_adjacency.
using Adjacency = std::vector<std::vector<NodeId>>;

/// Single-source BFS hop distances; kUnreachable for nodes not reached.
std::vector<std::uint32_t> bfs_distances(const Adjacency& adj, NodeId source);

/// Eccentricity of `source`: the largest finite distance from it.
/// Returns 0 for an isolated node.
std::uint32_t eccentricity(const Adjacency& adj, NodeId source);

/// Diameter: max eccentricity over all nodes, ignoring unreachable pairs
/// (the WCG may briefly be disconnected while a conversation grows).
std::uint32_t diameter(const Adjacency& adj);

/// Connected components of the undirected view; returns component id per
/// node and the number of components.
struct Components {
  std::vector<std::uint32_t> component_of;
  std::uint32_t count = 0;
};
Components connected_components(const Adjacency& adj);

/// Number of nodes within hop distance <= k of `source` (excluding source).
std::size_t nodes_within(const Adjacency& adj, NodeId source, std::uint32_t k);

}  // namespace dm::graph

#include "core/wcg.h"

#include <gtest/gtest.h>

namespace dm::core {
namespace {

TEST(WcgTest, AddHostDeduplicates) {
  Wcg wcg;
  const auto a = wcg.add_host("a.example");
  const auto b = wcg.add_host("b.example");
  const auto a2 = wcg.add_host("a.example");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(wcg.node_count(), 2u);
}

TEST(WcgTest, FindHost) {
  Wcg wcg;
  const auto a = wcg.add_host("a.example");
  EXPECT_EQ(wcg.find_host("a.example"), a);
  EXPECT_EQ(wcg.find_host("missing"), dm::graph::kInvalidNode);
}

TEST(WcgTest, EdgeAttributesStored) {
  Wcg wcg;
  const auto a = wcg.add_host("a");
  const auto b = wcg.add_host("b");
  WcgEdge edge;
  edge.kind = EdgeKind::kResponse;
  edge.stage = Stage::kDownload;
  edge.response_code = 200;
  edge.payload_type = dm::http::PayloadType::kSwf;
  edge.payload_size = 1234;
  const auto id = wcg.add_edge(b, a, edge);
  EXPECT_EQ(wcg.edge(id).response_code, 200);
  EXPECT_EQ(wcg.edge(id).payload_type, dm::http::PayloadType::kSwf);
  EXPECT_EQ(wcg.graph().edge(id).src, b);
  EXPECT_EQ(wcg.graph().edge(id).dst, a);
}

TEST(WcgTest, NodeAttributesMutable) {
  Wcg wcg;
  const auto a = wcg.add_host("a");
  wcg.node(a).type = NodeType::kMalicious;
  EXPECT_TRUE(wcg.add_uri(a, "/x"));
  EXPECT_FALSE(wcg.add_uri(a, "/x"));  // dedup via set
  EXPECT_TRUE(wcg.add_uri(a, "/y"));
  EXPECT_EQ(wcg.node(a).type, NodeType::kMalicious);
  EXPECT_EQ(wcg.node(a).uris.size(), 2u);
  EXPECT_EQ(wcg.total_unique_uris(), 2u);
  EXPECT_EQ(wcg.total_uri_length(), 4u);  // "/x" + "/y"
}

TEST(WcgTest, TopologyVersionTracksStructureOnly) {
  Wcg wcg;
  EXPECT_EQ(wcg.topology_version(), 0u);
  const auto a = wcg.add_host("a");
  const auto b = wcg.add_host("b");
  EXPECT_EQ(wcg.topology_version(), 2u);
  wcg.add_host("a");  // existing host: no structural change
  EXPECT_EQ(wcg.topology_version(), 2u);
  wcg.add_edge(a, b, WcgEdge{});
  EXPECT_EQ(wcg.topology_version(), 3u);
  // Attribute updates do not bump the version.
  wcg.add_uri(a, "/x");
  wcg.node(b).type = NodeType::kMalicious;
  EXPECT_EQ(wcg.topology_version(), 3u);
  wcg.ensure_topology_version_above(10);
  EXPECT_EQ(wcg.topology_version(), 11u);
  wcg.ensure_topology_version_above(5);  // never moves backwards
  EXPECT_EQ(wcg.topology_version(), 11u);
}

TEST(WcgTest, VictimAndOriginTracking) {
  Wcg wcg;
  EXPECT_EQ(wcg.victim(), dm::graph::kInvalidNode);
  const auto v = wcg.add_host("10.0.0.2");
  wcg.set_victim(v);
  const auto o = wcg.add_host("bing.com");
  wcg.set_origin(o);
  EXPECT_EQ(wcg.victim(), v);
  EXPECT_EQ(wcg.origin(), o);
}

TEST(WcgTest, NamesForEnums) {
  EXPECT_EQ(node_type_name(NodeType::kVictim), "victim");
  EXPECT_EQ(node_type_name(NodeType::kOrigin), "origin");
  EXPECT_EQ(edge_kind_name(EdgeKind::kRedirect), "redirect");
  EXPECT_EQ(edge_kind_name(EdgeKind::kRequest), "req");
}

TEST(WcgTest, AnnotationsDefaultEmpty) {
  const Wcg wcg;
  EXPECT_FALSE(wcg.annotations().origin_known);
  EXPECT_EQ(wcg.annotations().total_redirects, 0u);
  EXPECT_EQ(wcg.annotations().get_count, 0u);
}

}  // namespace
}  // namespace dm::core

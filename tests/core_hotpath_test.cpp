// Determinism fences around the incremental scoring hot path:
//   * WcgBuilder::current() must equal WcgBuilder::build() bitwise after
//     every single append — including the retroactive events (new exploit
//     download, origin invalidation) that force a transparent re-fold;
//   * OnlineDetector in ScoringMode::kIncremental must produce the same
//     alert set, score-bit-for-score-bit, as ScoringMode::kFromScratch,
//     including when a host is implicated retroactively (scope rescan);
//   * the sharded engine (incremental shards) must match the sequential
//     from-scratch reference at 1/2/8 shards.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <tuple>

#include "core/online.h"
#include "core/trainer.h"
#include "core/wcg_builder.h"
#include "runtime/sharded_online.h"
#include "synth/dataset.h"

namespace dm::core {
namespace {

using dm::http::HttpTransaction;

/// Asserts two feature vectors agree to the last bit, reporting the first
/// differing feature by name.
void expect_features_identical(const std::vector<double>& a,
                               const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i]),
              std::bit_cast<std::uint64_t>(b[i]))
        << "feature " << i << " (" << feature_names()[i] << "): " << a[i]
        << " vs " << b[i];
  }
}

/// Structural + annotation equality of two WCGs (node/edge identity in
/// insertion order), beyond what the 37 features observe.
void expect_wcgs_identical(const Wcg& a, const Wcg& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  ASSERT_EQ(a.edge_count(), b.edge_count());
  EXPECT_EQ(a.victim(), b.victim());
  EXPECT_EQ(a.origin(), b.origin());
  for (std::size_t i = 0; i < a.node_count(); ++i) {
    const auto& na = a.nodes()[i];
    const auto& nb = b.nodes()[i];
    EXPECT_EQ(na.host, nb.host);
    EXPECT_EQ(na.ip, nb.ip);
    EXPECT_EQ(na.type, nb.type) << "node " << na.host;
    EXPECT_EQ(na.uris, nb.uris);
    EXPECT_EQ(na.payloads_served, nb.payloads_served);
  }
  for (std::size_t i = 0; i < a.edge_count(); ++i) {
    const auto& ea = a.edges()[i];
    const auto& eb = b.edges()[i];
    EXPECT_EQ(ea.kind, eb.kind);
    EXPECT_EQ(ea.stage, eb.stage) << "edge " << i;
    EXPECT_EQ(ea.ts_micros, eb.ts_micros);
    EXPECT_EQ(ea.method, eb.method);
    EXPECT_EQ(ea.uri_length, eb.uri_length);
    EXPECT_EQ(ea.response_code, eb.response_code);
    EXPECT_EQ(ea.payload_type, eb.payload_type);
    EXPECT_EQ(ea.payload_size, eb.payload_size);
    const auto id = static_cast<dm::graph::EdgeId>(i);
    EXPECT_EQ(a.graph().edge(id).src, b.graph().edge(id).src);
    EXPECT_EQ(a.graph().edge(id).dst, b.graph().edge(id).dst);
  }
  EXPECT_EQ(a.total_unique_uris(), b.total_unique_uris());
  EXPECT_EQ(a.total_uri_length(), b.total_uri_length());
}

/// Replays an episode through one builder, checking current() == build()
/// after every append.  Returns the number of full re-folds current() used.
std::uint64_t check_episode(const std::vector<HttpTransaction>& txns) {
  WcgBuilder builder;
  const FeatureExtractorOptions features;
  for (const auto& txn : txns) {
    builder.add(txn);
    const Wcg& incremental = builder.current();
    const Wcg rebuilt = builder.build();
    expect_wcgs_identical(incremental, rebuilt);
    expect_features_identical(extract_features(incremental, features),
                              extract_features(rebuilt, features));
  }
  return builder.full_refolds();
}

TEST(HotpathBuilderTest, IncrementalMatchesRebuildOnInfectionEpisodes) {
  dm::synth::TraceGenerator gen(7001);
  for (const char* family : {"Angler", "Nuclear"}) {
    const auto episode = gen.infection(dm::synth::family_by_name(family));
    check_episode(episode.transactions);
  }
}

TEST(HotpathBuilderTest, IncrementalMatchesRebuildOnBenignEpisodes) {
  dm::synth::TraceGenerator gen(7002);
  for (int i = 0; i < 3; ++i) {
    const auto episode = gen.benign();
    // Benign browsing has no exploit downloads; incremental folding should
    // rarely if ever fall back (origin invalidation remains possible).
    const auto refolds = check_episode(episode.transactions);
    EXPECT_LE(refolds, episode.transactions.size() / 2);
  }
}

HttpTransaction make_txn(const std::string& server, const std::string& uri,
                         std::uint64_t ts_micros) {
  HttpTransaction txn;
  txn.client_host = "10.0.5.77";
  txn.server_host = server;
  txn.server_ip = "93.184.216.34";
  txn.request.method = "GET";
  txn.request.uri = uri;
  txn.request.ts_micros = ts_micros;
  // Shared cookie: the online tests below need every hand-crafted
  // transaction to land in one session.
  txn.request.headers.add("Cookie", "PHPSESSID=hotpath");
  dm::http::HttpResponse res;
  res.status_code = 200;
  res.ts_micros = ts_micros + 20'000;
  res.headers.add("Content-Type", "text/html");
  res.body.assign(64, 'x');
  txn.response = res;
  return txn;
}

TEST(HotpathBuilderTest, OriginInvalidationForcesRefoldAndStaysIdentical) {
  WcgBuilder builder;
  builder.add(make_txn("a.example", "/", 1'000'000));
  auto with_ref = make_txn("b.example", "/page", 2'000'000);
  with_ref.request.headers.add("Referer", "http://portal.example/");
  builder.add(with_ref);
  builder.current();
  EXPECT_TRUE(builder.current().annotations().origin_known);

  // portal.example now joins the conversation as a server: the origin scan
  // must stop treating it as the enticement source.
  builder.add(make_txn("portal.example", "/self", 3'000'000));
  const Wcg& incremental = builder.current();
  EXPECT_GE(builder.full_refolds(), 1u);
  EXPECT_FALSE(incremental.annotations().origin_known);
  expect_wcgs_identical(incremental, builder.build());
}

TEST(HotpathBuilderTest, LateExploitDownloadForcesRefoldAndStaysIdentical) {
  WcgBuilder builder;
  for (int i = 0; i < 6; ++i) {
    builder.add(make_txn("site" + std::to_string(i) + ".example", "/p",
                         1'000'000 * (static_cast<std::uint64_t>(i) + 1)));
    builder.current();
  }
  EXPECT_EQ(builder.full_refolds(), 0u);

  // A late exploit download restages everything before it.
  auto exploit = make_txn("evil.example", "/payload.exe", 10'000'000);
  exploit.response->headers = {};
  exploit.response->headers.add("Content-Type", "application/octet-stream");
  builder.add(exploit);
  const Wcg& incremental = builder.current();
  EXPECT_GE(builder.full_refolds(), 1u);
  EXPECT_TRUE(incremental.annotations().has_download_stage);
  expect_wcgs_identical(incremental, builder.build());
}

TEST(HotpathBuilderTest, OutOfOrderTimestampsResortExactly) {
  // Timestamp regressions flip the dirty flag; the re-sorted averages must
  // still match the from-scratch sort bit for bit.
  WcgBuilder builder;
  builder.add(make_txn("a.example", "/1", 5'000'000));
  builder.current();
  builder.add(make_txn("b.example", "/2", 3'000'000));  // regressed clock
  builder.current();
  builder.add(make_txn("c.example", "/3", 4'000'000));
  const Wcg& incremental = builder.current();
  expect_wcgs_identical(incremental, builder.build());
  expect_features_identical(extract_features(incremental, {}),
                            extract_features(builder.build(), {}));
}

// ---------------------------------------------------------------------------
// Online-engine equivalence: incremental vs from-scratch scoring.
// ---------------------------------------------------------------------------

const Detector& shared_detector() {
  static const Detector detector = [] {
    const auto gt = dm::synth::generate_ground_truth(100, 0.06);
    std::vector<Wcg> infections;
    std::vector<Wcg> benign;
    for (const auto& e : gt.infections) {
      infections.push_back(build_wcg(e.transactions));
    }
    for (const auto& e : gt.benign) benign.push_back(build_wcg(e.transactions));
    return Detector(train_dynaminer(dataset_from_wcgs(infections, benign), 5));
  }();
  return detector;
}

std::shared_ptr<const Detector> shared_detector_ptr() {
  static const auto ptr =
      std::shared_ptr<const Detector>(&shared_detector(), [](const Detector*) {});
  return ptr;
}

OnlineOptions mode_options(ScoringMode mode) {
  OnlineOptions options;
  options.redirect_chain_threshold = 2;
  options.scoring = mode;
  return options;
}

/// Mixed multi-family trace, episodes staggered onto one clock.
std::vector<HttpTransaction> mixed_trace(std::uint64_t seed) {
  dm::synth::TraceGenerator gen(seed);
  std::vector<dm::synth::Episode> episodes;
  for (int i = 0; i < 10; ++i) episodes.push_back(gen.benign());
  const auto& families = dm::synth::exploit_kit_families();
  for (int i = 0; i < 8; ++i) {
    episodes.push_back(
        gen.infection(families[static_cast<std::size_t>(i) % families.size()]));
  }
  std::vector<HttpTransaction> stream;
  std::uint64_t start = 1'600'000'000ULL * 1'000'000;
  for (auto& episode : episodes) {
    if (episode.transactions.empty()) continue;
    const std::uint64_t base = episode.transactions.front().request.ts_micros;
    for (auto& txn : episode.transactions) {
      txn.request.ts_micros = txn.request.ts_micros - base + start;
      if (txn.response) {
        txn.response->ts_micros = txn.response->ts_micros - base + start;
      }
      stream.push_back(std::move(txn));
    }
    start += 400'000;
  }
  std::stable_sort(stream.begin(), stream.end(),
                   [](const HttpTransaction& a, const HttpTransaction& b) {
                     return a.request.ts_micros < b.request.ts_micros;
                   });
  return stream;
}

using AlertKey = std::tuple<std::uint64_t, std::string, std::string,
                            std::uint64_t, std::string, std::size_t, std::size_t>;

AlertKey key_of(const Alert& alert) {
  // Scores compared through their bit patterns: the two modes must agree
  // exactly, not approximately.
  return {alert.ts_micros,    alert.session_key,
          alert.client,       std::bit_cast<std::uint64_t>(alert.score),
          alert.trigger_host, alert.wcg_order,
          alert.wcg_size};
}

std::vector<AlertKey> sorted_keys(const std::vector<Alert>& alerts) {
  std::vector<AlertKey> keys;
  keys.reserve(alerts.size());
  for (const auto& alert : alerts) keys.push_back(key_of(alert));
  std::sort(keys.begin(), keys.end());
  return keys;
}

TEST(HotpathOnlineTest, IncrementalAlertsMatchFromScratchOnMixedTrace) {
  const auto stream = mixed_trace(7100);

  OnlineDetector incremental(shared_detector(),
                             mode_options(ScoringMode::kIncremental));
  OnlineDetector reference(shared_detector(),
                           mode_options(ScoringMode::kFromScratch));
  for (const auto& txn : stream) {
    incremental.observe(txn);
    reference.observe(txn);
  }

  EXPECT_GT(reference.alerts().size(), 0u);  // the corpus must exercise alerts
  EXPECT_EQ(sorted_keys(incremental.alerts()), sorted_keys(reference.alerts()));
  EXPECT_EQ(incremental.stats().clues_fired, reference.stats().clues_fired);
  // The hot path must actually be exercised: scoring work was skipped or
  // served from the delta, never silently routed to full rebuilds.
  EXPECT_LE(incremental.stats().classifier_queries,
            reference.stats().classifier_queries);
  // Post-clue scope expansion implicates hosts retroactively in this corpus,
  // so the score-bit equality above covers the rescan path too.
  EXPECT_GE(incremental.stats().scope_rescans, 1u);
}

TEST(HotpathOnlineTest, RetroactiveSuspiciousHostRescansAndStaysIdentical) {
  // cnc.example is contacted *before* the clue; only a post-clue request
  // referred from the clue host implicates it, forcing the scoped builder
  // to rescan history and re-admit the earlier transaction.
  std::vector<HttpTransaction> stream;
  auto at = [](std::uint64_t s) { return s * 1'000'000; };

  stream.push_back(make_txn("cnc.example", "/beacon", at(1)));

  auto chain = [&](const std::string& from, const std::string& to,
                   std::uint64_t ts) {
    auto txn = make_txn(from, "/r", ts);
    txn.response->status_code = 302;
    txn.response->headers = {};
    txn.response->headers.add("Location", "http://" + to + "/r");
    txn.response->body.clear();
    return txn;
  };
  stream.push_back(chain("landing.example", "hop1.example", at(2)));
  stream.push_back(chain("hop1.example", "hop2.example", at(3)));
  stream.push_back(chain("hop2.example", "drop.example", at(4)));

  auto payload = make_txn("drop.example", "/update.exe", at(5));
  payload.response->headers = {};
  payload.response->headers.add("Content-Type", "application/octet-stream");
  stream.push_back(payload);

  auto callback = make_txn("cnc.example", "/report", at(6));
  callback.request.headers.add("Referer", "http://drop.example/update.exe");
  stream.push_back(callback);

  // Unrelated noise afterwards: scope unchanged -> queries skipped.
  for (int i = 0; i < 5; ++i) {
    stream.push_back(make_txn("news.example", "/a" + std::to_string(i),
                              at(7 + static_cast<std::uint64_t>(i))));
  }

  // Keep the session alive past the clue (an alert would terminate it
  // before the retroactive implication happens) so the rescan and the
  // unchanged-scope skip are both reached deterministically.
  auto inc_options = mode_options(ScoringMode::kIncremental);
  inc_options.decision_threshold = 2.0;
  auto ref_options = mode_options(ScoringMode::kFromScratch);
  ref_options.decision_threshold = 2.0;

  OnlineDetector incremental(shared_detector(), inc_options);
  OnlineDetector reference(shared_detector(), ref_options);
  for (const auto& txn : stream) {
    incremental.observe(txn);
    reference.observe(txn);
  }

  EXPECT_GE(incremental.stats().scope_rescans, 1u);
  EXPECT_GE(incremental.stats().queries_skipped_unchanged, 1u);
  EXPECT_EQ(incremental.stats().clues_fired, 1u);
  EXPECT_EQ(reference.stats().clues_fired, 1u);
  EXPECT_EQ(sorted_keys(incremental.alerts()), sorted_keys(reference.alerts()));
}

TEST(HotpathOnlineTest, ShardedIncrementalMatchesFromScratchAt1_2_8Shards) {
  const auto stream = mixed_trace(7200);

  OnlineDetector reference(shared_detector(),
                           mode_options(ScoringMode::kFromScratch));
  for (const auto& txn : stream) reference.observe(txn);
  const auto expected = sorted_keys(reference.alerts());
  EXPECT_GT(expected.size(), 0u);

  for (const std::size_t shards : {1u, 2u, 8u}) {
    dm::runtime::ShardedOptions options;
    options.num_shards = shards;
    options.online = mode_options(ScoringMode::kIncremental);
    dm::runtime::ShardedOnlineEngine engine(shared_detector_ptr(), options);
    for (const auto& txn : stream) engine.observe(txn);
    engine.finish();
    EXPECT_EQ(sorted_keys(engine.merged_alerts()), expected)
        << shards << " shards";
  }
}

}  // namespace
}  // namespace dm::core

#include "net/pcap.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>

namespace dm::net {
namespace {

PcapFile sample_file() {
  PcapFile file;
  file.packets.push_back({1000000, {0x01, 0x02, 0x03}});
  file.packets.push_back({2500000, {0xff}});
  file.packets.push_back({2500001, {}});
  return file;
}

TEST(PcapTest, WriteReadRoundTrip) {
  const auto original = sample_file();
  const auto bytes = write_pcap(original);
  const auto parsed = read_pcap(bytes);
  EXPECT_EQ(parsed.link_type, 1u);
  ASSERT_EQ(parsed.packets.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(parsed.packets[i].ts_micros, original.packets[i].ts_micros);
    EXPECT_EQ(parsed.packets[i].data, original.packets[i].data);
  }
}

TEST(PcapTest, GlobalHeaderFields) {
  const auto bytes = write_pcap({});
  ASSERT_GE(bytes.size(), 24u);
  // Little-endian usec magic.
  EXPECT_EQ(bytes[0], 0xd4);
  EXPECT_EQ(bytes[1], 0xc3);
  EXPECT_EQ(bytes[2], 0xb2);
  EXPECT_EQ(bytes[3], 0xa1);
  // Version 2.4.
  EXPECT_EQ(bytes[4], 2);
  EXPECT_EQ(bytes[6], 4);
}

TEST(PcapTest, RejectsBadMagic) {
  std::vector<std::uint8_t> bytes(24, 0);
  EXPECT_THROW(read_pcap(bytes), std::runtime_error);
}

TEST(PcapTest, RejectsTruncatedHeader) {
  std::vector<std::uint8_t> bytes(10, 0);
  EXPECT_THROW(read_pcap(bytes), std::runtime_error);
}

TEST(PcapTest, DropsTruncatedFinalRecord) {
  auto bytes = write_pcap(sample_file());
  bytes.pop_back();  // truncate the last packet's data
  const auto parsed = read_pcap(bytes);
  EXPECT_EQ(parsed.packets.size(), 2u);
}

TEST(PcapTest, ReadsNanosecondMagic) {
  auto bytes = write_pcap(sample_file());
  // Rewrite magic to little-endian nanosecond variant.
  bytes[0] = 0x4d;
  bytes[1] = 0x3c;
  bytes[2] = 0xb2;
  bytes[3] = 0xa1;
  const auto parsed = read_pcap(bytes);
  ASSERT_EQ(parsed.packets.size(), 3u);
  // Fractional part now interpreted as nanoseconds: 0 usec becomes 0,
  // 500000 "ns" -> 500 us.
  EXPECT_EQ(parsed.packets[0].ts_micros, 1000000u);
  EXPECT_EQ(parsed.packets[1].ts_micros, 2000500u);
}

TEST(PcapTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/dm_pcap_test.pcap";
  const auto original = sample_file();
  write_pcap_file(path, original);
  const auto parsed = read_pcap_file(path);
  EXPECT_EQ(parsed.packets.size(), original.packets.size());
  std::remove(path.c_str());
}

TEST(PcapTest, MissingFileThrows) {
  EXPECT_THROW(read_pcap_file("/nonexistent/definitely/missing.pcap"),
               std::runtime_error);
}

TEST(PcapTest, LargeTimestampPreserved) {
  PcapFile file;
  const std::uint64_t ts = 1467849600ULL * 1000000 + 123456;  // 2016-07-07
  file.packets.push_back({ts, {0x00}});
  const auto parsed = read_pcap(write_pcap(file));
  EXPECT_EQ(parsed.packets[0].ts_micros, ts);
}

}  // namespace
}  // namespace dm::net

#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace dm::util {
namespace {

TEST(StatsTest, MeanOfEmptyIsZero) {
  EXPECT_EQ(mean({}), 0.0);
}

TEST(StatsTest, MeanBasic) {
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(StatsTest, VarianceAndStddev) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
}

TEST(StatsTest, VarianceOfSingletonIsZero) {
  const std::vector<double> xs{42.0};
  EXPECT_EQ(variance(xs), 0.0);
}

TEST(StatsTest, MinMax) {
  const std::vector<double> xs{3, -1, 7, 2};
  EXPECT_EQ(min_of(xs), -1.0);
  EXPECT_EQ(max_of(xs), 7.0);
  EXPECT_EQ(min_of({}), 0.0);
  EXPECT_EQ(max_of({}), 0.0);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
}

TEST(StatsTest, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median({5, 1, 3}), 3.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
}

TEST(StatsTest, AccumulatorMatchesBatchStats) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  Accumulator acc;
  for (double x : xs) acc.add(x);
  EXPECT_EQ(acc.count(), xs.size());
  EXPECT_NEAR(acc.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(acc.variance(), variance(xs), 1e-12);
  EXPECT_EQ(acc.min(), 2.0);
  EXPECT_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(StatsTest, AccumulatorEmpty) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(HistogramTest, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bin 0
  h.add(9.9);    // bin 4
  h.add(-3.0);   // clamped to bin 0
  h.add(25.0);   // clamped to bin 4
  h.add(5.0);    // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.4);
}

TEST(HistogramTest, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_high(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_low(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_high(4), 10.0);
}

TEST(HistogramTest, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 10.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(5.0, 5.0, 3), std::invalid_argument);
  EXPECT_THROW(Histogram(9.0, 5.0, 3), std::invalid_argument);
}

}  // namespace
}  // namespace dm::util

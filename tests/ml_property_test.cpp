// Property-based tests for the ML substrate: score bounds, monotonicity,
// determinism and stability on randomly generated datasets.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "ml/cross_validation.h"
#include "ml/feature_ranking.h"
#include "ml/flat_forest.h"
#include "ml/metrics.h"
#include "ml/parallel_trainer.h"
#include "ml/random_forest.h"
#include "ml/serialization.h"
#include "util/rng.h"

namespace dm::ml {
namespace {

Dataset random_dataset(std::uint64_t seed, std::size_t n, std::size_t features,
                       double signal) {
  dm::util::Rng rng(seed);
  std::vector<std::string> names;
  for (std::size_t f = 0; f < features; ++f) names.push_back("f" + std::to_string(f));
  Dataset data(std::move(names));
  for (std::size_t i = 0; i < n; ++i) {
    const bool positive = rng.chance(0.4);
    std::vector<double> row;
    for (std::size_t f = 0; f < features; ++f) {
      const double base = (f == 0 && positive) ? signal : 0.0;
      row.push_back(base + rng.normal(0, 1.0));
    }
    data.add_row(std::move(row), positive ? kInfection : kBenign);
  }
  return data;
}

class RandomDatasetTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomDatasetTest, ForestScoresAlwaysProbabilities) {
  const auto data = random_dataset(GetParam(), 150, 5, 2.0);
  const auto forest = RandomForest::train(data, {});
  dm::util::Rng rng(GetParam() ^ 0xf);
  for (int i = 0; i < 200; ++i) {
    std::vector<double> x;
    for (int f = 0; f < 5; ++f) x.push_back(rng.uniform(-10, 10));
    const double p = forest.predict_proba(x);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST_P(RandomDatasetTest, SignalImprovesAuc) {
  // A dataset with signal must yield a better CV AUC than pure noise.
  const auto with_signal = random_dataset(GetParam(), 300, 5, 3.0);
  const auto pure_noise = random_dataset(GetParam() ^ 1, 300, 5, 0.0);
  const auto r_signal = cross_validate(with_signal, 5, {}, GetParam());
  const auto r_noise = cross_validate(pure_noise, 5, {}, GetParam());
  EXPECT_GT(r_signal.roc_area, 0.8);
  EXPECT_LT(r_noise.roc_area, 0.75);
  EXPECT_GT(r_signal.roc_area, r_noise.roc_area);
}

TEST_P(RandomDatasetTest, GainRatioIdentifiesTheSignalFeature) {
  const auto data = random_dataset(GetParam(), 400, 6, 3.0);
  const double g0 = gain_ratio(data, 0);
  for (std::size_t f = 1; f < 6; ++f) {
    EXPECT_GT(g0, gain_ratio(data, f)) << "feature " << f;
  }
}

TEST_P(RandomDatasetTest, GainRatioWithinUnitInterval) {
  const auto data = random_dataset(GetParam(), 100, 4, 1.0);
  for (std::size_t f = 0; f < 4; ++f) {
    const double g = gain_ratio(data, f);
    EXPECT_GE(g, 0.0);
    EXPECT_LE(g, 1.0 + 1e-9);
  }
}

TEST_P(RandomDatasetTest, RocAucInvariantToMonotoneScoreTransform) {
  const auto data = random_dataset(GetParam(), 200, 3, 2.0);
  const auto forest = RandomForest::train(data, {});
  std::vector<int> labels;
  std::vector<double> scores;
  std::vector<double> squashed;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double s = forest.predict_proba(data.row(i));
    labels.push_back(data.label(i));
    scores.push_back(s);
    squashed.push_back(s * s * 0.5 + 0.1);  // strictly increasing transform
  }
  EXPECT_NEAR(roc_auc(labels, scores), roc_auc(labels, squashed), 1e-12);
}

TEST_P(RandomDatasetTest, MoreTreesNeverMuchWorse) {
  const auto data = random_dataset(GetParam(), 250, 5, 2.0);
  ForestOptions small;
  small.num_trees = 2;
  small.seed = GetParam();
  ForestOptions large = small;
  large.num_trees = 30;
  const auto r_small = cross_validate(data, 5, small, GetParam());
  const auto r_large = cross_validate(data, 5, large, GetParam());
  EXPECT_GE(r_large.roc_area, r_small.roc_area - 0.05);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDatasetTest,
                         ::testing::Values(101, 202, 303, 404));

TEST(MetricsPropertyTest, ConfusionTotalsAlwaysConsistent) {
  dm::util::Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 200));
    std::vector<int> labels(n);
    std::vector<int> preds(n);
    for (std::size_t i = 0; i < n; ++i) {
      labels[i] = rng.chance(0.5) ? kInfection : kBenign;
      preds[i] = rng.chance(0.5) ? kInfection : kBenign;
    }
    const auto c = confusion_from(labels, preds);
    EXPECT_EQ(c.total(), n);
    EXPECT_GE(c.accuracy(), 0.0);
    EXPECT_LE(c.accuracy(), 1.0);
    EXPECT_GE(c.f_score(), 0.0);
    EXPECT_LE(c.f_score(), 1.0);
  }
}

TEST(MetricsPropertyTest, AucSymmetry) {
  // Reversing all scores must map AUC to 1 - AUC.
  dm::util::Rng rng(8);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int> labels;
    std::vector<double> scores;
    std::vector<double> reversed;
    for (int i = 0; i < 60; ++i) {
      labels.push_back(rng.chance(0.5) ? kInfection : kBenign);
      const double s = rng.next_double();
      scores.push_back(s);
      reversed.push_back(1.0 - s);
    }
    bool has_both = false;
    has_both = std::count(labels.begin(), labels.end(), kInfection) > 0 &&
               std::count(labels.begin(), labels.end(), kBenign) > 0;
    if (!has_both) continue;
    EXPECT_NEAR(roc_auc(labels, scores) + roc_auc(labels, reversed), 1.0, 1e-9);
  }
}

// --- counter-based per-tree RNG streams (the parallel-trainer contract) ----

std::string serialized(const RandomForest& forest) {
  std::stringstream out;
  save_forest(forest, out);
  return out.str();
}

TEST(RngStreamPropertyTest, TreeStreamSeedsDistinctWithinAndAcrossSeeds) {
  std::set<std::uint64_t> seen;
  for (const std::uint64_t seed : {0ull, 1ull, 42ull, 0xdeadbeefull}) {
    for (std::size_t tree = 0; tree < 256; ++tree) {
      EXPECT_TRUE(seen.insert(tree_stream_seed(seed, tree)).second)
          << "collision at seed " << seed << " tree " << tree;
    }
    // The stream of tree 0 must not alias the raw seed either, or a
    // caller's own Rng(seed) would correlate with the first tree.
    EXPECT_NE(tree_stream_seed(seed, 0), seed);
  }
}

TEST_P(RandomDatasetTest, SeededForestsReproducibleAcrossRunsAndThreads) {
  const auto data = random_dataset(GetParam(), 200, 5, 1.5);
  ForestOptions options;
  options.seed = GetParam();
  const auto first = train_forest_parallel(data, options, {.threads = 4});
  const auto second = train_forest_parallel(data, options, {.threads = 4});
  const auto sequential = RandomForest::train(data, options);
  EXPECT_EQ(serialized(first), serialized(second));
  EXPECT_EQ(serialized(first), serialized(sequential));
}

TEST_P(RandomDatasetTest, DistinctSeedsGiveDistinctBootstraps) {
  ForestOptions options;
  // Across seeds: tree 0's bootstrap sample differs.
  dm::util::Rng a(tree_stream_seed(GetParam(), 0));
  dm::util::Rng b(tree_stream_seed(GetParam() ^ 0x5a5aULL, 0));
  EXPECT_NE(bootstrap_sample(500, options, a), bootstrap_sample(500, options, b));
  // Within one seed: consecutive trees draw different bootstraps.
  dm::util::Rng t0(tree_stream_seed(GetParam(), 0));
  dm::util::Rng t1(tree_stream_seed(GetParam(), 1));
  EXPECT_NE(bootstrap_sample(500, options, t0),
            bootstrap_sample(500, options, t1));
}

TEST_P(RandomDatasetTest, FlatForestBitIdenticalToParallelTrainedForest) {
  const auto data = random_dataset(GetParam(), 200, 5, 2.0);
  ForestOptions options;
  options.seed = GetParam();
  const auto forest = train_forest_parallel(data, options, {.threads = 8});
  const auto flat = FlatForest::compile(forest);
  dm::util::Rng rng(GetParam() ^ 0xff);
  for (int i = 0; i < 300; ++i) {
    std::vector<double> x;
    for (int f = 0; f < 5; ++f) x.push_back(rng.uniform(-8, 8));
    EXPECT_EQ(flat.predict_proba(x), forest.predict_proba(x));
  }
}

TEST(CrossValidationPropertyTest, FoldsPartitionForAnyK) {
  const auto data = random_dataset(9, 97, 3, 1.0);  // awkward prime size
  for (std::size_t k : {2u, 3u, 5u, 7u, 10u}) {
    const auto result = cross_validate(data, k, {}, 1);
    EXPECT_EQ(result.labels.size(), data.size()) << "k=" << k;
    EXPECT_EQ(result.fold_confusions.size(), k);
  }
}

}  // namespace
}  // namespace dm::ml

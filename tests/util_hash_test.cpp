#include "util/hash.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace dm::util {
namespace {

TEST(HashTest, Fnv1aKnownValue) {
  // FNV-1a of empty input is the offset basis.
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  // Reference value for "a".
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cULL);
}

TEST(HashTest, Fnv1aAppendComposes) {
  EXPECT_EQ(fnv1a_append(fnv1a("ab"), "cd"), fnv1a("abcd"));
}

TEST(HashTest, DigestHexShapeAndDeterminism) {
  const std::string d1 = digest_hex("payload-bytes");
  EXPECT_EQ(d1.size(), 40u);
  for (char c : d1) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << c;
  }
  EXPECT_EQ(d1, digest_hex("payload-bytes"));
}

TEST(HashTest, DigestHexDistinguishesInputs) {
  std::set<std::string> digests;
  for (int i = 0; i < 2000; ++i) {
    digests.insert(digest_hex("payload-" + std::to_string(i)));
  }
  EXPECT_EQ(digests.size(), 2000u);  // no collisions on small corpus
}

TEST(HashTest, DigestSensitiveToSingleByte) {
  EXPECT_NE(digest_hex("aaaa"), digest_hex("aaab"));
}

}  // namespace
}  // namespace dm::util

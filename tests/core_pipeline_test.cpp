// Integration tests across the whole Stage-1 pipeline: synthetic episodes ->
// (optionally pcap) -> WCG -> features -> ERF training -> detection quality.
#include <gtest/gtest.h>

#include "core/detector.h"
#include "core/trainer.h"
#include "core/wcg_builder.h"
#include "http/transaction_stream.h"
#include "ml/cross_validation.h"
#include "synth/dataset.h"
#include "synth/pcap_export.h"

namespace dm::core {
namespace {

std::vector<Wcg> wcgs_of(const std::vector<dm::synth::Episode>& episodes) {
  std::vector<Wcg> out;
  out.reserve(episodes.size());
  for (const auto& episode : episodes) {
    out.push_back(build_wcg(episode.transactions));
  }
  return out;
}

TEST(PipelineTest, DatasetFromWcgsShapesAndLabels) {
  const auto gt = dm::synth::generate_ground_truth(1, 0.02);
  const auto infections = wcgs_of(gt.infections);
  const auto benign = wcgs_of(gt.benign);
  const auto data = dataset_from_wcgs(infections, benign);
  EXPECT_EQ(data.size(), infections.size() + benign.size());
  EXPECT_EQ(data.num_features(), kNumFeatures);
  EXPECT_EQ(data.count_label(dm::ml::kInfection), infections.size());
  EXPECT_EQ(data.count_label(dm::ml::kBenign), benign.size());
}

TEST(PipelineTest, PaperForestOptions) {
  const auto options = paper_forest_options();
  EXPECT_EQ(options.num_trees, 20u);
  EXPECT_EQ(options.features_per_split, 6u);  // log2(37)+1
  EXPECT_EQ(options.combination, dm::ml::Combination::kProbabilityAveraging);
}

TEST(PipelineTest, CrossValidationQualityOnSmallCorpus) {
  // Small-scale version of the Table III "All features" row: decent TPR,
  // low FPR even on 2% of the corpus.
  const auto gt = dm::synth::generate_ground_truth(2, 0.08);
  const auto data = dataset_from_wcgs(wcgs_of(gt.infections), wcgs_of(gt.benign));
  const auto result =
      dm::ml::cross_validate(data, 5, paper_forest_options(), 42);
  EXPECT_GT(result.tpr(), 0.85);
  EXPECT_LT(result.fpr(), 0.12);
  EXPECT_GT(result.roc_area, 0.93);
}

TEST(PipelineTest, DetectorScoresInfectionsAboveBenign) {
  const auto gt = dm::synth::generate_ground_truth(3, 0.03);
  const auto infections = wcgs_of(gt.infections);
  const auto benign = wcgs_of(gt.benign);
  const auto data = dataset_from_wcgs(infections, benign);
  Detector detector(train_dynaminer(data, 7));

  // Fresh, disjoint episodes.
  const auto validation = dm::synth::generate_validation_set(99, 25, 25);
  double infection_score = 0;
  double benign_score = 0;
  for (const auto& e : validation.infections) {
    infection_score += detector.score(build_wcg(e.transactions));
  }
  for (const auto& e : validation.benign) {
    benign_score += detector.score(build_wcg(e.transactions));
  }
  EXPECT_GT(infection_score / 25.0, benign_score / 25.0 + 0.3);
}

TEST(PipelineTest, FullPcapPathMatchesDirectPath) {
  // Features extracted from the direct transaction stream must match the
  // features after a full pcap round-trip (same WCG reconstruction).
  dm::synth::TraceGenerator gen(4);
  const auto episode = gen.infection(dm::synth::family_by_name("Angler"));
  const auto direct = build_wcg(episode.transactions);
  const auto replayed = build_wcg(
      dm::http::transactions_from_pcap(dm::synth::episode_to_pcap(episode)));
  EXPECT_EQ(direct.node_count(), replayed.node_count());
  EXPECT_EQ(direct.edge_count(), replayed.edge_count());
  const auto f_direct = extract_features(direct);
  const auto f_replayed = extract_features(replayed);
  ASSERT_EQ(f_direct.size(), f_replayed.size());
  for (std::size_t i = 0; i < f_direct.size(); ++i) {
    EXPECT_NEAR(f_direct[i], f_replayed[i], 0.05 + 0.01 * std::abs(f_direct[i]))
        << feature_names()[i];
  }
}

TEST(PipelineTest, CombiningAllFeaturesGivesLowestFpr) {
  // The robust Table III shape: combining every feature group yields the
  // best false-positive rate, beating graph features alone, while both
  // groups retain high TPR (see EXPERIMENTS.md for the full discussion of
  // the HLF+HF+TF row on synthetic traffic).
  const auto gt = dm::synth::generate_ground_truth(5, 0.1);
  const auto data = dataset_from_wcgs(wcgs_of(gt.infections), wcgs_of(gt.benign));

  const auto gf = data.select_features(feature_indices(FeatureGroup::kGraph));

  const auto all_result =
      dm::ml::cross_validate(data, 5, paper_forest_options(data.num_features()), 11);
  const auto gf_result =
      dm::ml::cross_validate(gf, 5, paper_forest_options(gf.num_features()), 11);
  EXPECT_LE(all_result.fpr(), gf_result.fpr() + 0.01);
  EXPECT_GT(all_result.tpr(), 0.9);
  EXPECT_GT(gf_result.tpr(), 0.85);
  EXPECT_GT(all_result.roc_area, 0.95);
}

}  // namespace
}  // namespace dm::core

// Delayed-oracle label correction: the VT-simulator oracle's latency and
// outage semantics, the reservoir's audit/correction sweep, and the driver's
// demote-and-retrain loop — including the determinism fence that the
// corrective retrain is byte-identical to training on the corrected corpus
// by hand.
#include "serve/oracle.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/trainer.h"
#include "ml/parallel_trainer.h"
#include "ml/serialization.h"
#include "obs/metrics.h"
#include "serve/retrain.h"
#include "synth/dataset.h"

namespace dm::serve {
namespace {

std::atomic<std::uint64_t> g_now{0};
std::uint64_t manual_clock() { return g_now.load(std::memory_order_relaxed); }

constexpr std::uint64_t kDayMicros = 86'400ull * 1'000'000ull;

dm::core::Wcg infection_wcg(std::uint64_t seed) {
  dm::synth::TraceGenerator gen(seed);
  return dm::core::build_wcg(
      gen.infection(dm::synth::family_by_name("Angler")).transactions);
}

dm::core::Wcg benign_wcg(std::uint64_t seed) {
  dm::synth::TraceGenerator gen(seed);
  return dm::core::build_wcg(gen.benign().transactions);
}

TEST(WcgPayloadDigestTest, StableAndContentSensitive) {
  const auto a = infection_wcg(1);
  EXPECT_EQ(wcg_payload_digest(a), wcg_payload_digest(a));
  EXPECT_NE(wcg_payload_digest(a), wcg_payload_digest(infection_wcg(2)));
}

TEST(VtOracleTest, LatencyOutageAndUnknownDigestsWithholdVerdicts) {
  dm::baseline::VtOptions vt;
  vt.timeout_prob = 0.0;
  vt.campaign_visibility = 1.0;
  vt.engine_coverage = 1.0;
  vt.lag_mean_days = 0.0;  // signatures land immediately once registered
  auto sim = std::make_shared<dm::baseline::VirusTotalSim>(vt);

  const auto wcg = infection_wcg(7);
  const std::string digest = wcg_payload_digest(wcg);
  sim->register_payload(digest, /*malicious=*/true, /*first_seen_day=*/0.0,
                        "campaign-a");

  const double latency_days = 2.0;
  VtOracle oracle(sim, latency_days * 86'400.0);
  const std::uint64_t ts = kDayMicros;  // verdict lands on day 1

  // Before the oracle's own latency has elapsed there is no verdict at all.
  EXPECT_FALSE(oracle.label(wcg, ts, ts).has_value());
  EXPECT_FALSE(oracle.label(wcg, ts, ts + kDayMicros).has_value());
  // Queries from before the verdict (clock skew) also withhold.
  EXPECT_FALSE(oracle.label(wcg, ts, ts - 1).has_value());
  // Once aged past the latency, the registered malicious payload is flagged.
  const auto verdict = oracle.label(wcg, ts, ts + 3 * kDayMicros);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_TRUE(*verdict);
  // An outage withholds even aged verdicts — and recovers.
  oracle.set_outage(true);
  EXPECT_FALSE(oracle.label(wcg, ts, ts + 3 * kDayMicros).has_value());
  oracle.set_outage(false);
  EXPECT_TRUE(oracle.label(wcg, ts, ts + 3 * kDayMicros).has_value());
  // A WCG whose payloads were never registered carries no information.
  EXPECT_FALSE(
      oracle.label(benign_wcg(9), ts, ts + 3 * kDayMicros).has_value());
}

// ---- Reservoir audit sweep -------------------------------------------------

/// Scripted oracle: ground truth per payload digest; digests not in the map
/// are "unknown" (nullopt).
class ScriptedOracle : public LabelOracle {
 public:
  std::map<std::string, bool> truth;
  std::optional<bool> label(const dm::core::Wcg& wcg, std::uint64_t,
                            std::uint64_t) override {
    const auto it = truth.find(wcg_payload_digest(wcg));
    if (it == truth.end()) return std::nullopt;
    return it->second;
  }
};

TEST(ReservoirAuditTest, CorrectsLabelsWithExactConservation) {
  WcgReservoir reservoir({.capacity_per_class = 16});
  ScriptedOracle oracle;
  // Four entries the classifier called benign; the oracle knows two of them
  // are infections.  One entry is unknown to the oracle.
  std::vector<dm::core::Wcg> wcgs;
  for (std::uint64_t i = 0; i < 4; ++i) wcgs.push_back(infection_wcg(i + 1));
  oracle.truth[wcg_payload_digest(wcgs[0])] = true;   // overturn
  oracle.truth[wcg_payload_digest(wcgs[1])] = true;   // overturn
  oracle.truth[wcg_payload_digest(wcgs[2])] = false;  // confirm
  // wcgs[3] stays unknown
  for (std::size_t i = 0; i < wcgs.size(); ++i) {
    reservoir.offer(wcgs[i], 0.1, /*infection=*/false, 1000 * i);
  }
  ASSERT_EQ(reservoir.benign_count(), 4u);
  ASSERT_EQ(reservoir.infection_count(), 0u);

  const auto query = [&](const dm::core::Wcg& wcg, std::uint64_t ts) {
    return oracle.label(wcg, ts, 0);
  };
  auto outcome = reservoir.audit(/*now_micros=*/1'000'000, /*min_age_s=*/0.0,
                                 query);
  EXPECT_EQ(outcome.audited, 3u);
  EXPECT_EQ(outcome.confirmed, 1u);
  EXPECT_EQ(outcome.overturned, 2u);
  EXPECT_EQ(outcome.unavailable, 1u);
  EXPECT_EQ(outcome.audited, outcome.confirmed + outcome.overturned);
  // The two overturned entries moved class with corrected labels.
  EXPECT_EQ(reservoir.infection_count(), 2u);
  EXPECT_EQ(reservoir.benign_count(), 2u);

  // Audited entries are never re-queried; the unknown one stays eligible.
  outcome = reservoir.audit(1'000'000, 0.0, query);
  EXPECT_EQ(outcome.audited, 0u);
  EXPECT_EQ(outcome.unavailable, 1u);
  // The oracle learns about it later: exactly one more audit, no churn.
  oracle.truth[wcg_payload_digest(wcgs[3])] = false;
  outcome = reservoir.audit(1'000'000, 0.0, query);
  EXPECT_EQ(outcome.audited, 1u);
  EXPECT_EQ(outcome.confirmed, 1u);
  EXPECT_EQ(reservoir.infection_count(), 2u);
  EXPECT_EQ(reservoir.benign_count(), 2u);
}

TEST(ReservoirAuditTest, YoungEntriesWaitForTheDelay) {
  WcgReservoir reservoir({.capacity_per_class = 8});
  ScriptedOracle oracle;
  const auto wcg = infection_wcg(3);
  oracle.truth[wcg_payload_digest(wcg)] = true;
  reservoir.offer(wcg, 0.1, false, /*ts_micros=*/10'000'000);
  const auto query = [&](const dm::core::Wcg& w, std::uint64_t ts) {
    return oracle.label(w, ts, 0);
  };
  // 5 s old with a 30 s delay: not yet eligible — not even "unavailable".
  auto outcome = reservoir.audit(15'000'000, 30.0, query);
  EXPECT_EQ(outcome.audited + outcome.unavailable, 0u);
  // Aged past the delay, the overturn lands.
  outcome = reservoir.audit(45'000'000, 30.0, query);
  EXPECT_EQ(outcome.overturned, 1u);
  EXPECT_EQ(reservoir.infection_count(), 1u);
}

TEST(ReservoirAuditTest, FullTargetClassReplacesItsOldestEntry) {
  WcgReservoir reservoir({.capacity_per_class = 2});
  ScriptedOracle oracle;
  // Fill the infection class with entries at t=5s and t=9s.
  reservoir.offer(infection_wcg(11), 0.9, true, 5'000'000);
  reservoir.offer(infection_wcg(12), 0.9, true, 9'000'000);
  // One mislabeled benign entry the oracle overturns to "infection".
  const auto moved = infection_wcg(13);
  oracle.truth[wcg_payload_digest(moved)] = true;
  reservoir.offer(moved, 0.1, false, 7'000'000);
  const auto outcome = reservoir.audit(
      20'000'000, 0.0, [&](const dm::core::Wcg& w, std::uint64_t ts) {
        return oracle.label(w, ts, 0);
      });
  EXPECT_EQ(outcome.overturned, 1u);
  // The infection class stays at capacity: the t=5s entry (oldest) was
  // replaced, the t=9s one survived.
  EXPECT_EQ(reservoir.infection_count(), 2u);
  EXPECT_EQ(reservoir.benign_count(), 0u);
  const auto snap = reservoir.snapshot();
  bool moved_present = false;
  for (const auto& w : snap.infections) {
    if (wcg_payload_digest(w) == wcg_payload_digest(moved)) {
      moved_present = true;
    }
  }
  EXPECT_TRUE(moved_present);
}

// ---- Driver: demote on overturns, retrain on the corrected corpus ----------

std::shared_ptr<const dm::core::Detector> small_detector(std::uint64_t seed) {
  static const auto corpus = [] {
    const auto gt = dm::synth::generate_ground_truth(60, 0.05);
    std::vector<dm::core::Wcg> infections;
    std::vector<dm::core::Wcg> benign;
    for (const auto& e : gt.infections) {
      infections.push_back(dm::core::build_wcg(e.transactions));
    }
    for (const auto& e : gt.benign) {
      benign.push_back(dm::core::build_wcg(e.transactions));
    }
    return dm::core::dataset_from_wcgs(infections, benign);
  }();
  return std::make_shared<const dm::core::Detector>(
      dm::core::train_dynaminer(corpus, seed));
}

std::string serialize(const dm::ml::RandomForest& forest) {
  std::ostringstream out;
  dm::ml::save_forest(forest, out);
  return out.str();
}

struct OracleRig {
  std::shared_ptr<ScriptedOracle> oracle = std::make_shared<ScriptedOracle>();
  std::vector<dm::core::Wcg> wcgs;

  /// Feeds `driver` 4 infection-labeled and 6 benign-labeled verdicts, of
  /// which `mislabeled` of the benign ones are known-malicious to the
  /// oracle.  Confirmations are scripted for everything else.
  void feed(RetrainDriver& driver, std::size_t mislabeled) {
    std::size_t seed = 1;
    for (std::size_t i = 0; i < 4; ++i) {
      auto wcg = infection_wcg(seed++);
      oracle->truth[wcg_payload_digest(wcg)] = true;
      driver.on_verdict(wcg, 0.9, true, 1'000'000 * (i + 1));
      wcgs.push_back(std::move(wcg));
    }
    for (std::size_t i = 0; i < 6; ++i) {
      // Mislabeled entries are infection traffic the classifier let pass.
      auto wcg = i < mislabeled ? infection_wcg(100 + seed++)
                                : benign_wcg(200 + seed++);
      oracle->truth[wcg_payload_digest(wcg)] = i < mislabeled;
      driver.on_verdict(wcg, 0.1, false, 1'000'000 * (10 + i));
      wcgs.push_back(std::move(wcg));
    }
  }
};

TEST(RetrainDriverOracleTest, OverturnsDemoteAndRetrainDeterministically) {
  dm::obs::MetricsRegistry reg;
  OracleRig rig;
  ServeOptions options;
  options.shadow_before_cutover = false;
  options.forest = dm::core::paper_forest_options();
  options.forest.num_trees = 5;
  options.metrics = &reg;
  options.clock = &manual_clock;
  options.oracle = rig.oracle;
  options.oracle_min_overturns = 4;
  options.oracle_overturn_fraction = 0.25;
  options.reservoir.capacity_per_class = 64;  // keep every verdict

  const auto incumbent = small_detector(5);
  RetrainDriver driver(incumbent, options);
  rig.feed(driver, /*mislabeled=*/4);
  // Publish a version 2 first so a demotion has somewhere to roll back to.
  ASSERT_TRUE(driver.retrain_now());
  ASSERT_EQ(driver.version(), 2u);
  const std::string v2_bytes = serialize(driver.handle().current()->forest());

  const auto result = driver.audit_now(/*now_micros=*/100'000'000);
  EXPECT_EQ(result.audited, 10u);
  EXPECT_EQ(result.overturned, 4u);
  EXPECT_EQ(result.confirmed, 6u);
  EXPECT_EQ(result.unavailable, 0u);
  EXPECT_TRUE(result.demoted) << "4 overturns of 10 audited must demote";
  EXPECT_TRUE(result.retrain_fired);
  EXPECT_EQ(driver.rollbacks(), 1u);
  // The corrected corpus: all 8 known-malicious WCGs now sit in the
  // infection class.
  EXPECT_EQ(driver.reservoir().infection_count(), 8u);
  EXPECT_EQ(driver.reservoir().benign_count(), 2u);

  driver.drain();  // run the corrective retrain
  const std::string corrective = driver.last_trained_serialization();
  EXPECT_NE(corrective, v2_bytes) << "corrected labels must change the model";

  // Determinism fence: training on the corrected snapshot by hand is
  // byte-identical to what the driver just trained.
  const auto snap = driver.reservoir().snapshot();
  dm::ml::TrainerOptions trainer;
  trainer.threads = options.train_threads;
  const auto data = dm::core::dataset_from_wcgs(snap.infections, snap.benign,
                                                options.features, trainer);
  const auto manual =
      dm::ml::train_forest_parallel(data, options.forest, trainer);
  EXPECT_EQ(corrective, serialize(manual));

  // Panel accounting.
  const auto panel = reg.snapshot();
  EXPECT_EQ(panel.counter_value("dm.oracle.audited"), 10u);
  EXPECT_EQ(panel.counter_value("dm.oracle.overturned"), 4u);
  EXPECT_EQ(panel.counter_value("dm.oracle.demotions"), 1u);
  EXPECT_EQ(panel.counter_value("dm.model.rollbacks"), 1u);
}

TEST(RetrainDriverOracleTest, ScatteredOverturnsDoNotDemote) {
  OracleRig rig;
  ServeOptions options;
  options.shadow_before_cutover = false;
  options.forest = dm::core::paper_forest_options();
  options.forest.num_trees = 5;
  options.clock = &manual_clock;
  options.oracle = rig.oracle;
  options.oracle_min_overturns = 4;
  options.oracle_overturn_fraction = 0.25;
  options.reservoir.capacity_per_class = 64;

  RetrainDriver driver(small_detector(5), options);
  rig.feed(driver, /*mislabeled=*/1);  // one overturn in ten audits
  const auto result = driver.audit_now(100'000'000);
  EXPECT_EQ(result.overturned, 1u);
  EXPECT_FALSE(result.demoted);
  EXPECT_FALSE(result.retrain_fired);
  EXPECT_EQ(driver.rollbacks(), 0u);
  // The single overturn still corrected the reservoir label.
  EXPECT_EQ(driver.reservoir().infection_count(), 5u);
}

TEST(RetrainDriverOracleTest, ExtremeDelayWithholdsEveryVerdict) {
  OracleRig rig;
  ServeOptions options;
  options.clock = &manual_clock;
  options.oracle = rig.oracle;
  options.oracle_delay_s = 1e9;  // nothing is ever old enough
  options.reservoir.capacity_per_class = 64;
  RetrainDriver driver(small_detector(5), options);
  rig.feed(driver, 4);
  const auto result = driver.audit_now(100'000'000);
  EXPECT_EQ(result.audited, 0u);
  EXPECT_EQ(result.overturned, 0u);
  EXPECT_EQ(result.unavailable, 0u);
  EXPECT_FALSE(result.demoted);
  EXPECT_EQ(driver.reservoir().benign_count(), 6u) << "no labels may move";
}

TEST(RetrainDriverOracleTest, AuditsRunAutomaticallyOffTheVerdictTap) {
  dm::obs::MetricsRegistry reg;
  OracleRig rig;
  ServeOptions options;
  options.metrics = &reg;
  options.clock = &manual_clock;
  options.oracle = rig.oracle;
  options.oracle_audit_every_s = 5.0;  // trace-time cadence
  options.reservoir.capacity_per_class = 64;
  RetrainDriver driver(small_detector(5), options);
  // Verdicts 1 s apart: the first anchors the cadence, the sixth (t=6s)
  // crosses the 5 s boundary and fires an audit inline.
  for (std::size_t i = 0; i < 7; ++i) {
    auto wcg = benign_wcg(300 + i);
    rig.oracle->truth[wcg_payload_digest(wcg)] = false;
    driver.on_verdict(wcg, 0.1, false, 1'000'000 * (i + 1));
  }
  const auto panel = reg.snapshot();
  EXPECT_EQ(panel.counter_value("dm.oracle.audits"), 1u);
  EXPECT_GT(panel.counter_value("dm.oracle.audited"), 0u);
}

}  // namespace
}  // namespace dm::serve

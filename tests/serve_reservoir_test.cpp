// WcgReservoir: seeded determinism, Algorithm-R uniformity, capacity and
// accounting invariants, and time-window eviction.
#include "serve/reservoir.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace dm::serve {
namespace {

/// A tiny WCG with `nodes` hosts — node_count() identifies it in snapshots.
dm::core::Wcg make_wcg(std::size_t nodes) {
  dm::core::Wcg wcg;
  for (std::size_t i = 0; i < nodes; ++i) {
    wcg.add_host("h" + std::to_string(i) + ".example");
  }
  return wcg;
}

std::vector<std::size_t> orders(const std::vector<dm::core::Wcg>& wcgs) {
  std::vector<std::size_t> out;
  out.reserve(wcgs.size());
  for (const auto& wcg : wcgs) out.push_back(wcg.node_count());
  return out;
}

TEST(WcgReservoirTest, SampleIsAPureFunctionOfOfferSequenceAndOptions) {
  ReservoirOptions options;
  options.capacity_per_class = 8;
  options.seed = 1234;
  WcgReservoir a(options);
  WcgReservoir b(options);
  for (std::size_t i = 0; i < 200; ++i) {
    const auto wcg = make_wcg(i % 13 + 1);
    const bool infection = (i % 3 == 0);
    const double score = infection ? 0.9 : 0.1;
    EXPECT_EQ(a.offer(wcg, score, infection, 1000 * i),
              b.offer(wcg, score, infection, 1000 * i))
        << "admission decision diverged at offer " << i;
  }
  const auto sa = a.snapshot();
  const auto sb = b.snapshot();
  EXPECT_EQ(sa.offered, sb.offered);
  EXPECT_EQ(sa.admitted, sb.admitted);
  EXPECT_EQ(orders(sa.infections), orders(sb.infections));
  EXPECT_EQ(orders(sa.benign), orders(sb.benign));
}

TEST(WcgReservoirTest, DifferentSeedsSampleDifferently) {
  ReservoirOptions options;
  options.capacity_per_class = 8;
  options.seed = 1;
  WcgReservoir a(options);
  options.seed = 2;
  WcgReservoir b(options);
  for (std::size_t i = 0; i < 400; ++i) {
    a.offer(make_wcg(i % 31 + 1), 0.1, false, i);
    b.offer(make_wcg(i % 31 + 1), 0.1, false, i);
  }
  EXPECT_NE(orders(a.snapshot().benign), orders(b.snapshot().benign));
}

TEST(WcgReservoirTest, CapacityBoundAndAccounting) {
  ReservoirOptions options;
  options.capacity_per_class = 16;
  WcgReservoir reservoir(options);
  std::uint64_t admitted = 0;
  for (std::size_t i = 0; i < 500; ++i) {
    admitted += reservoir.offer(make_wcg(3), 0.5, i % 2 == 0, i);
  }
  EXPECT_EQ(reservoir.offered(), 500u);
  EXPECT_EQ(reservoir.admitted(), admitted);
  EXPECT_LE(reservoir.infection_count(), options.capacity_per_class);
  EXPECT_LE(reservoir.benign_count(), options.capacity_per_class);
  // Streams far longer than capacity fill both classes completely.
  EXPECT_EQ(reservoir.infection_count(), options.capacity_per_class);
  EXPECT_EQ(reservoir.benign_count(), options.capacity_per_class);
  const auto snap = reservoir.snapshot();
  EXPECT_EQ(snap.infections.size(), reservoir.infection_count());
  EXPECT_EQ(snap.benign.size(), reservoir.benign_count());
  EXPECT_EQ(snap.offered, reservoir.offered());
  EXPECT_EQ(snap.admitted, reservoir.admitted());
}

// Algorithm-R uniformity: after offering N items to a capacity-C class, each
// item survives with probability C/N regardless of arrival position.  We
// tag each quarter of the stream with a distinct WCG size and, across many
// independent seeds, expect every quarter to hold ~1/4 of the survivors —
// in particular no recency bias (a broken sampler that keeps the last C
// items would put 100% in the final quarter).
TEST(WcgReservoirTest, SampledPositionsAreUniformAcrossTheStream) {
  constexpr std::size_t kN = 256;
  constexpr std::size_t kCapacity = 8;
  constexpr std::size_t kSeeds = 64;
  std::vector<std::size_t> per_quarter(4, 0);
  for (std::size_t seed = 0; seed < kSeeds; ++seed) {
    ReservoirOptions options;
    options.capacity_per_class = kCapacity;
    options.seed = 7000 + seed;
    WcgReservoir reservoir(options);
    for (std::size_t i = 0; i < kN; ++i) {
      reservoir.offer(make_wcg(i / (kN / 4) + 1), 0.1, false, i);
    }
    for (const auto& wcg : reservoir.snapshot().benign) {
      ASSERT_GE(wcg.node_count(), 1u);
      ASSERT_LE(wcg.node_count(), 4u);
      ++per_quarter[wcg.node_count() - 1];
    }
  }
  const double total = kSeeds * kCapacity;
  for (std::size_t q = 0; q < 4; ++q) {
    const double fraction = per_quarter[q] / total;
    EXPECT_GT(fraction, 0.15) << "quarter " << q << " under-sampled";
    EXPECT_LT(fraction, 0.35) << "quarter " << q << " over-sampled";
  }
}

TEST(WcgReservoirTest, WindowModeEvictsStaleSamples) {
  ReservoirOptions options;
  options.capacity_per_class = 32;
  options.window_s = 10.0;
  WcgReservoir reservoir(options);
  // Three bursts at t=0s, t=15s, t=20s.  Eviction runs on every offer, so
  // the first t=15s admission already drops the whole t=0s burst (15s old,
  // window 10s); the t=20s admission evicts nothing further.
  for (std::size_t i = 0; i < 4; ++i) reservoir.offer(make_wcg(1), 0.1, false, 0);
  EXPECT_EQ(reservoir.benign_count(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    reservoir.offer(make_wcg(2), 0.1, false, 15'000'000);
  }
  EXPECT_EQ(reservoir.benign_count(), 4u);
  reservoir.offer(make_wcg(3), 0.1, false, 20'000'000);
  const auto snap = reservoir.snapshot();
  for (const auto& wcg : snap.benign) {
    EXPECT_NE(wcg.node_count(), 1u)
        << "a sample from the evicted t=0 burst survived the window";
  }
  EXPECT_EQ(snap.benign.size(), 5u);  // the t=15s burst + the new admission
}

TEST(WcgReservoirTest, PureReservoirNeverEvictsByTime) {
  ReservoirOptions options;
  options.capacity_per_class = 32;
  options.window_s = 0.0;
  WcgReservoir reservoir(options);
  reservoir.offer(make_wcg(1), 0.1, false, 0);
  reservoir.offer(make_wcg(2), 0.1, false, 3'600'000'000ULL);  // an hour later
  EXPECT_EQ(reservoir.benign_count(), 2u);
}

}  // namespace
}  // namespace dm::serve

#include "core/features.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.h"

#include "core/wcg_builder.h"
#include "synth/generator.h"

namespace dm::core {
namespace {

TEST(FeatureNamesTest, ThirtySevenNamedFeatures) {
  const auto& names = feature_names();
  EXPECT_EQ(names.size(), kNumFeatures);
  EXPECT_EQ(kNumFeatures, 37u);
  EXPECT_EQ(names[0], "Origin");                      // f1
  EXPECT_EQ(names[6], "Order");                       // f7
  EXPECT_EQ(names[24], "Avg-PageRank");               // f25
  EXPECT_EQ(names[25], "GETs");                       // f26
  EXPECT_EQ(names[34], "No-Referrer-Ctrs");           // f35
  EXPECT_EQ(names[36], "Avg-Inter-Transact-Time");    // f37
}

TEST(FeatureGroupsTest, GroupBoundariesMatchTable2) {
  EXPECT_EQ(feature_group(0), FeatureGroup::kHighLevel);
  EXPECT_EQ(feature_group(5), FeatureGroup::kHighLevel);
  EXPECT_EQ(feature_group(6), FeatureGroup::kGraph);
  EXPECT_EQ(feature_group(24), FeatureGroup::kGraph);
  EXPECT_EQ(feature_group(25), FeatureGroup::kHeader);
  EXPECT_EQ(feature_group(34), FeatureGroup::kHeader);
  EXPECT_EQ(feature_group(35), FeatureGroup::kTemporal);
  EXPECT_EQ(feature_group(36), FeatureGroup::kTemporal);
}

TEST(FeatureGroupsTest, IndexSetsPartition) {
  const auto hlf = feature_indices(FeatureGroup::kHighLevel);
  const auto gf = feature_indices(FeatureGroup::kGraph);
  const auto hf = feature_indices(FeatureGroup::kHeader);
  const auto tf = feature_indices(FeatureGroup::kTemporal);
  EXPECT_EQ(hlf.size(), 6u);
  EXPECT_EQ(gf.size(), 19u);
  EXPECT_EQ(hf.size(), 10u);
  EXPECT_EQ(tf.size(), 2u);
  EXPECT_EQ(hlf.size() + gf.size() + hf.size() + tf.size(), kNumFeatures);

  const auto non_graph = feature_indices_excluding(FeatureGroup::kGraph);
  EXPECT_EQ(non_graph.size(), kNumFeatures - gf.size());
  EXPECT_EQ(all_feature_indices().size(), kNumFeatures);
}

TEST(FeatureExtractionTest, WidthAlwaysThirtySeven) {
  const Wcg empty;
  EXPECT_EQ(extract_features(empty).size(), kNumFeatures);

  dm::synth::TraceGenerator gen(1);
  const auto episode = gen.infection(dm::synth::family_by_name("Angler"));
  const auto wcg = build_wcg(episode.transactions);
  EXPECT_EQ(extract_features(wcg).size(), kNumFeatures);
}

TEST(FeatureExtractionTest, ValuesAreFinite) {
  dm::synth::TraceGenerator gen(2);
  for (int i = 0; i < 5; ++i) {
    const auto episode = gen.benign();
    const auto wcg = build_wcg(episode.transactions);
    for (double x : extract_features(wcg)) {
      EXPECT_TRUE(std::isfinite(x));
    }
  }
}

TEST(FeatureExtractionTest, DeterministicPerWcg) {
  dm::synth::TraceGenerator gen(3);
  const auto episode = gen.infection(dm::synth::family_by_name("RIG"));
  const auto wcg = build_wcg(episode.transactions);
  const auto f1 = extract_features(wcg);
  const auto f2 = extract_features(wcg);
  EXPECT_EQ(f1, f2);
}

TEST(FeatureExtractionTest, OrderExcludesNothingButConversationLengthExcludesOrigin) {
  dm::synth::TraceGenerator gen(4);
  const auto episode = gen.infection(dm::synth::family_by_name("Nuclear"));
  const auto wcg = build_wcg(episode.transactions);
  const auto f = extract_features(wcg);
  const double order = f[6];                // f7: all nodes
  const double conversation_len = f[3];     // f4: hosts only
  if (wcg.origin() != dm::graph::kInvalidNode) {
    EXPECT_EQ(conversation_len, order - 1);
  } else {
    EXPECT_EQ(conversation_len, order);
  }
}

TEST(FeatureExtractionTest, HeaderCountsMatchAnnotations) {
  dm::synth::TraceGenerator gen(5);
  const auto episode = gen.infection(dm::synth::family_by_name("Angler"));
  const auto wcg = build_wcg(episode.transactions);
  const auto f = extract_features(wcg);
  const auto& ann = wcg.annotations();
  EXPECT_EQ(f[25], ann.get_count);
  EXPECT_EQ(f[26], ann.post_count);
  EXPECT_EQ(f[30], ann.response_class_counts[2]);  // 30X
  EXPECT_EQ(f[33], ann.referrer_count);
  EXPECT_EQ(f[36], ann.avg_inter_transaction_s);
}

TEST(FeatureExtractionTest, InfectionVsBenignSeparation) {
  // Statistical sanity: key features must separate the classes.  Medians are
  // used for graph order because the benign corpus deliberately includes a
  // heavy multi-tab tail (up to 34 hosts, §II-A) that inflates the mean.
  dm::synth::TraceGenerator gen(6);
  double infection_inter_txn = 0;
  double benign_inter_txn = 0;
  std::vector<double> infection_order;
  std::vector<double> benign_order;
  const int n = 30;
  for (int i = 0; i < n; ++i) {
    const auto inf =
        build_wcg(gen.infection(dm::synth::family_by_name("Angler")).transactions);
    const auto ben = build_wcg(gen.benign().transactions);
    const auto fi = extract_features(inf);
    const auto fb = extract_features(ben);
    infection_inter_txn += fi[36];
    benign_inter_txn += fb[36];
    infection_order.push_back(fi[6]);
    benign_order.push_back(fb[6]);
  }
  EXPECT_LT(infection_inter_txn, benign_inter_txn);  // faster
  EXPECT_GT(dm::util::median(infection_order),
            dm::util::median(benign_order));  // typically bigger graphs
}

}  // namespace
}  // namespace dm::core

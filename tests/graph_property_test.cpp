// Property-based tests over randomly generated graphs: structural
// invariants every metric must satisfy regardless of topology.
#include <gtest/gtest.h>

#include "graph/centrality.h"
#include "graph/connectivity.h"
#include "graph/metrics.h"
#include "graph/pagerank.h"
#include "graph/shortest_paths.h"
#include "util/rng.h"

namespace dm::graph {
namespace {

/// Random digraph: n nodes, expected out-degree d.
Digraph random_digraph(std::uint64_t seed, std::size_t n, double d) {
  dm::util::Rng rng(seed);
  Digraph g(n);
  const double p = n > 1 ? d / static_cast<double>(n - 1) : 0.0;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u != v && rng.chance(p)) g.add_edge(u, v);
    }
  }
  // A few parallel edges to exercise multigraph handling.
  for (int i = 0; i < 3 && g.edge_count() > 0; ++i) {
    const auto e = g.edge(static_cast<EdgeId>(
        rng.uniform_int(0, static_cast<std::int64_t>(g.edge_count()) - 1)));
    g.add_edge(e.src, e.dst);
  }
  return g;
}

class RandomGraphTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    graph_ = random_digraph(GetParam(), 24, 2.5);
    adj_ = graph_.undirected_adjacency();
  }
  Digraph graph_;
  Adjacency adj_;
};

TEST_P(RandomGraphTest, HandshakeLemma) {
  const auto m = compute_metrics(graph_);
  EXPECT_EQ(m.volume, 2 * m.size);  // sum of degrees = 2 * edges
}

TEST_P(RandomGraphTest, DegreeCentralityBounds) {
  for (double c : degree_centrality(adj_)) {
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
  }
}

TEST_P(RandomGraphTest, ClosenessCentralityBounds) {
  for (double c : closeness_centrality(adj_)) {
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0 + 1e-12);
  }
}

TEST_P(RandomGraphTest, BetweennessNonNegativeAndBounded) {
  for (double c : betweenness_centrality(adj_)) {
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0 + 1e-9);
  }
}

TEST_P(RandomGraphTest, LoadCentralityNonNegative) {
  for (double c : load_centrality(adj_)) {
    EXPECT_GE(c, 0.0);
  }
}

TEST_P(RandomGraphTest, LoadEqualsBetweennessWhenPathsUnique) {
  // On any graph, load and betweenness agree on nodes where all shortest
  // paths are unique; globally they stay within the normalization bound.
  const auto lc = load_centrality(adj_);
  const auto bc = betweenness_centrality(adj_);
  for (std::size_t v = 0; v < lc.size(); ++v) {
    EXPECT_LT(std::abs(lc[v] - bc[v]), 0.5) << "wildly divergent at " << v;
  }
}

TEST_P(RandomGraphTest, DiameterBoundedByOrder) {
  EXPECT_LE(diameter(adj_), adj_.size() > 0 ? adj_.size() - 1 : 0);
}

TEST_P(RandomGraphTest, EccentricityNeverExceedsDiameter) {
  const auto d = diameter(adj_);
  for (NodeId v = 0; v < adj_.size(); ++v) {
    EXPECT_LE(eccentricity(adj_, v), d);
  }
}

TEST_P(RandomGraphTest, ClusteringCoefficientBounds) {
  for (double c : clustering_coefficients(adj_)) {
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
  }
}

TEST_P(RandomGraphTest, PageRankIsDistribution) {
  const auto pr = pagerank(graph_.directed_adjacency());
  double sum = 0.0;
  for (double x : pr) {
    EXPECT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST_P(RandomGraphTest, ReciprocityBounds) {
  const double r = reciprocity(graph_);
  EXPECT_GE(r, 0.0);
  EXPECT_LE(r, 1.0);
}

TEST_P(RandomGraphTest, LocalConnectivityBoundedByMinDegree) {
  dm::util::Rng rng(GetParam() ^ 1);
  for (int trial = 0; trial < 10; ++trial) {
    const auto s = static_cast<NodeId>(
        rng.uniform_int(0, static_cast<std::int64_t>(adj_.size()) - 1));
    const auto t = static_cast<NodeId>(
        rng.uniform_int(0, static_cast<std::int64_t>(adj_.size()) - 1));
    if (s == t) continue;
    const auto k = local_node_connectivity(adj_, s, t);
    EXPECT_LE(k, std::min(adj_[s].size(), adj_[t].size()) + 1);
    // Connectivity positive iff t reachable from s.
    const auto dist = bfs_distances(adj_, s);
    EXPECT_EQ(k > 0, dist[t] != kUnreachable);
  }
}

TEST_P(RandomGraphTest, ConnectivityZeroAcrossComponents) {
  const auto comps = connected_components(adj_);
  if (comps.count < 2) GTEST_SKIP() << "graph happens to be connected";
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  for (NodeId v = 0; v < adj_.size(); ++v) {
    if (comps.component_of[v] == 0) a = v;
    if (comps.component_of[v] == 1) b = v;
  }
  ASSERT_NE(a, kInvalidNode);
  ASSERT_NE(b, kInvalidNode);
  EXPECT_EQ(local_node_connectivity(adj_, a, b), 0u);
}

TEST_P(RandomGraphTest, MetricsDeterministic) {
  const auto m1 = compute_metrics(graph_);
  const auto m2 = compute_metrics(graph_);
  EXPECT_EQ(m1.avg_betweenness_centrality, m2.avg_betweenness_centrality);
  EXPECT_EQ(m1.avg_node_connectivity, m2.avg_node_connectivity);
  EXPECT_EQ(m1.avg_pagerank, m2.avg_pagerank);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(GraphScalingTest, MetricsOnLargeSparseGraphComplete) {
  // Worst realistic WCG scale (the paper saw up to 404 nodes / 1778 edges).
  dm::util::Rng rng(99);
  Digraph g(404);
  for (NodeId v = 1; v < 404; ++v) {
    g.add_edge(static_cast<NodeId>(rng.uniform_int(0, v - 1)), v);
  }
  for (int i = 0; i < 1374; ++i) {
    const auto u = static_cast<NodeId>(rng.uniform_int(0, 403));
    const auto v = static_cast<NodeId>(rng.uniform_int(0, 403));
    if (u != v) g.add_edge(u, v);
  }
  MetricsOptions options;
  options.connectivity_max_pairs = 200;  // force the sampling path
  const auto m = compute_metrics(g, options);
  EXPECT_EQ(m.order, 404u);
  EXPECT_GT(m.size, 1500u);
  EXPECT_GT(m.avg_node_connectivity, 0.0);
  EXPECT_GT(m.diameter, 1u);
}

}  // namespace
}  // namespace dm::graph

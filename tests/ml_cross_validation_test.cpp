#include "ml/cross_validation.h"

#include <gtest/gtest.h>

namespace dm::ml {
namespace {

Dataset noisy_separable(std::size_t n, std::uint64_t seed) {
  dm::util::Rng rng(seed);
  Dataset data({"a", "b"});
  for (std::size_t i = 0; i < n; ++i) {
    const bool positive = i % 3 == 0;  // imbalanced, like the real corpus
    const double base = positive ? 6.0 : 0.0;
    data.add_row({base + rng.normal(0, 1.5), rng.normal(0, 1.0)},
                 positive ? kInfection : kBenign);
  }
  return data;
}

TEST(CrossValidationTest, EveryRowScoredExactlyOnce) {
  const auto data = noisy_separable(120, 1);
  const auto result = cross_validate(data, 10, {}, 2);
  EXPECT_EQ(result.labels.size(), data.size());
  EXPECT_EQ(result.scores.size(), data.size());
  EXPECT_EQ(result.confusion.total(), data.size());
  EXPECT_EQ(result.fold_confusions.size(), 10u);
}

TEST(CrossValidationTest, GoodDataHighTprLowFpr) {
  const auto data = noisy_separable(600, 3);
  ForestOptions options;
  options.num_trees = 20;
  const auto result = cross_validate(data, 10, options, 4);
  EXPECT_GT(result.tpr(), 0.85);
  EXPECT_LT(result.fpr(), 0.15);
  EXPECT_GT(result.roc_area, 0.9);
  EXPECT_GT(result.f_score(), 0.8);
}

TEST(CrossValidationTest, DeterministicForSeed) {
  const auto data = noisy_separable(150, 5);
  const auto r1 = cross_validate(data, 5, {}, 42);
  const auto r2 = cross_validate(data, 5, {}, 42);
  EXPECT_EQ(r1.confusion.true_positives, r2.confusion.true_positives);
  EXPECT_EQ(r1.confusion.false_positives, r2.confusion.false_positives);
  EXPECT_DOUBLE_EQ(r1.roc_area, r2.roc_area);
}

TEST(CrossValidationTest, ThresholdTradesTprForFpr) {
  const auto data = noisy_separable(300, 6);
  const auto strict = cross_validate(data, 5, {}, 7, 0.9);
  const auto lax = cross_validate(data, 5, {}, 7, 0.1);
  EXPECT_GE(lax.tpr(), strict.tpr());
  EXPECT_GE(lax.fpr(), strict.fpr());
}

TEST(CrossValidationTest, PooledConfusionMatchesFoldSum) {
  const auto data = noisy_separable(200, 8);
  const auto result = cross_validate(data, 4, {}, 9);
  std::size_t tp = 0;
  std::size_t fp = 0;
  for (const auto& fold : result.fold_confusions) {
    tp += fold.true_positives;
    fp += fold.false_positives;
  }
  EXPECT_EQ(tp, result.confusion.true_positives);
  EXPECT_EQ(fp, result.confusion.false_positives);
}

}  // namespace
}  // namespace dm::ml

// Detector-level tests: thresholds, determinism, and the offline-train /
// serialize / deploy round trip the paper's two-stage design implies.
#include "core/detector.h"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "core/trainer.h"
#include "core/wcg_builder.h"
#include "ml/serialization.h"
#include "synth/dataset.h"

namespace dm::core {
namespace {

struct Fixture {
  dm::ml::RandomForest forest;
  Wcg infection_wcg;
  Wcg benign_wcg;
};

const Fixture& fixture() {
  static const Fixture f = [] {
    const auto gt = dm::synth::generate_ground_truth(600, 0.05);
    std::vector<Wcg> infections;
    std::vector<Wcg> benign;
    for (const auto& e : gt.infections) {
      infections.push_back(build_wcg(e.transactions));
    }
    for (const auto& e : gt.benign) benign.push_back(build_wcg(e.transactions));
    auto forest = train_dynaminer(dataset_from_wcgs(infections, benign), 3);

    dm::synth::TraceGenerator fresh(601);
    return Fixture{
        std::move(forest),
        build_wcg(fresh.infection(dm::synth::family_by_name("Nuclear")).transactions),
        build_wcg(fresh.benign().transactions),
    };
  }();
  return f;
}

TEST(DetectorTest, ScoresAreProbabilities) {
  const Detector detector(fixture().forest);
  for (const Wcg* wcg : {&fixture().infection_wcg, &fixture().benign_wcg}) {
    const double s = detector.score(*wcg);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(DetectorTest, SeparatesFreshEpisodes) {
  const Detector detector(fixture().forest);
  EXPECT_GT(detector.score(fixture().infection_wcg),
            detector.score(fixture().benign_wcg));
}

TEST(DetectorTest, ThresholdControlsVerdict) {
  const double score = Detector(fixture().forest).score(fixture().infection_wcg);
  const Detector lenient(fixture().forest, {}, score - 0.01);
  const Detector strict(fixture().forest, {}, score + 0.01);
  EXPECT_TRUE(lenient.is_infection(fixture().infection_wcg));
  EXPECT_FALSE(strict.is_infection(fixture().infection_wcg));
  EXPECT_DOUBLE_EQ(lenient.threshold(), score - 0.01);
}

TEST(DetectorTest, ScoreDeterministic) {
  const Detector detector(fixture().forest);
  EXPECT_DOUBLE_EQ(detector.score(fixture().infection_wcg),
                   detector.score(fixture().infection_wcg));
}

TEST(DetectorTest, SurvivesSerializationRoundTrip) {
  // Offline-train -> persist -> deploy must reproduce scores bit-exactly.
  std::stringstream buffer;
  dm::ml::save_forest(fixture().forest, buffer);
  const Detector original(fixture().forest);
  const Detector deployed(dm::ml::load_forest(buffer));
  EXPECT_DOUBLE_EQ(original.score(fixture().infection_wcg),
                   deployed.score(fixture().infection_wcg));
  EXPECT_DOUBLE_EQ(original.score(fixture().benign_wcg),
                   deployed.score(fixture().benign_wcg));
}

TEST(DetectorTest, EmptyWcgScoresAsBenignSide) {
  const Detector detector(fixture().forest);
  const Wcg empty;
  EXPECT_LT(detector.score(empty), 0.5);
}

// The sharded runtime shares ONE trained model read-only across shard
// threads, so the whole inference path must be callable on const objects.
// Compile-time contract, checked here so a future `mutable` cache or
// non-const predict overload breaks the build loudly.
static_assert(requires(const Detector& d, const Wcg& w) {
  d.score(w);
  d.is_infection(w);
  d.threshold();
});
static_assert(requires(const dm::ml::RandomForest& f,
                       std::span<const double> x) {
  f.predict_proba(x);
  f.predict(x);
});

TEST(DetectorTest, ConstDetectorSharedAcrossThreadsScoresIdentically) {
  // Concurrent scoring through a const reference must be race-free and
  // bit-identical to sequential scoring (the runtime determinism guarantee
  // leans on this; the TSan job verifies the race-freedom half).
  const Detector& detector = *[] {
    static const Detector d(fixture().forest);
    return &d;
  }();
  const double expected_infection = detector.score(fixture().infection_wcg);
  const double expected_benign = detector.score(fixture().benign_wcg);

  constexpr int kThreads = 8;
  constexpr int kRepeats = 25;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRepeats; ++r) {
        if (detector.score(fixture().infection_wcg) != expected_infection ||
            detector.score(fixture().benign_wcg) != expected_benign) {
          ++mismatches[t];
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[t], 0);
}

}  // namespace
}  // namespace dm::core

// Detector-level tests: thresholds, determinism, and the offline-train /
// serialize / deploy round trip the paper's two-stage design implies.
#include "core/detector.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/trainer.h"
#include "core/wcg_builder.h"
#include "ml/serialization.h"
#include "synth/dataset.h"

namespace dm::core {
namespace {

struct Fixture {
  dm::ml::RandomForest forest;
  Wcg infection_wcg;
  Wcg benign_wcg;
};

const Fixture& fixture() {
  static const Fixture f = [] {
    const auto gt = dm::synth::generate_ground_truth(600, 0.05);
    std::vector<Wcg> infections;
    std::vector<Wcg> benign;
    for (const auto& e : gt.infections) {
      infections.push_back(build_wcg(e.transactions));
    }
    for (const auto& e : gt.benign) benign.push_back(build_wcg(e.transactions));
    auto forest = train_dynaminer(dataset_from_wcgs(infections, benign), 3);

    dm::synth::TraceGenerator fresh(601);
    return Fixture{
        std::move(forest),
        build_wcg(fresh.infection(dm::synth::family_by_name("Nuclear")).transactions),
        build_wcg(fresh.benign().transactions),
    };
  }();
  return f;
}

TEST(DetectorTest, ScoresAreProbabilities) {
  const Detector detector(fixture().forest);
  for (const Wcg* wcg : {&fixture().infection_wcg, &fixture().benign_wcg}) {
    const double s = detector.score(*wcg);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(DetectorTest, SeparatesFreshEpisodes) {
  const Detector detector(fixture().forest);
  EXPECT_GT(detector.score(fixture().infection_wcg),
            detector.score(fixture().benign_wcg));
}

TEST(DetectorTest, ThresholdControlsVerdict) {
  const double score = Detector(fixture().forest).score(fixture().infection_wcg);
  const Detector lenient(fixture().forest, {}, score - 0.01);
  const Detector strict(fixture().forest, {}, score + 0.01);
  EXPECT_TRUE(lenient.is_infection(fixture().infection_wcg));
  EXPECT_FALSE(strict.is_infection(fixture().infection_wcg));
  EXPECT_DOUBLE_EQ(lenient.threshold(), score - 0.01);
}

TEST(DetectorTest, ScoreDeterministic) {
  const Detector detector(fixture().forest);
  EXPECT_DOUBLE_EQ(detector.score(fixture().infection_wcg),
                   detector.score(fixture().infection_wcg));
}

TEST(DetectorTest, SurvivesSerializationRoundTrip) {
  // Offline-train -> persist -> deploy must reproduce scores bit-exactly.
  std::stringstream buffer;
  dm::ml::save_forest(fixture().forest, buffer);
  const Detector original(fixture().forest);
  const Detector deployed(dm::ml::load_forest(buffer));
  EXPECT_DOUBLE_EQ(original.score(fixture().infection_wcg),
                   deployed.score(fixture().infection_wcg));
  EXPECT_DOUBLE_EQ(original.score(fixture().benign_wcg),
                   deployed.score(fixture().benign_wcg));
}

TEST(DetectorTest, EmptyWcgScoresAsBenignSide) {
  const Detector detector(fixture().forest);
  const Wcg empty;
  EXPECT_LT(detector.score(empty), 0.5);
}

}  // namespace
}  // namespace dm::core

// Stage-2 tests: the on-the-wire detector over replayed transaction streams.
#include "core/online.h"

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "synth/dataset.h"

namespace dm::core {
namespace {

/// Trains a small detector once; shared by every test in this binary.
const Detector& shared_detector() {
  static const Detector detector = [] {
    const auto gt = dm::synth::generate_ground_truth(100, 0.06);
    std::vector<Wcg> infections;
    std::vector<Wcg> benign;
    for (const auto& e : gt.infections) {
      infections.push_back(build_wcg(e.transactions));
    }
    for (const auto& e : gt.benign) benign.push_back(build_wcg(e.transactions));
    return Detector(train_dynaminer(dataset_from_wcgs(infections, benign), 5));
  }();
  return detector;
}

OnlineOptions default_options() {
  OnlineOptions options;
  options.redirect_chain_threshold = 2;
  return options;
}

std::size_t replay(OnlineDetector& detector, const dm::synth::Episode& episode) {
  std::size_t alerts = 0;
  for (const auto& txn : episode.transactions) {
    if (detector.observe(txn)) ++alerts;
  }
  return alerts;
}

TEST(OnlineDetectorTest, AlertsOnInfectionEpisodes) {
  OnlineDetector online(shared_detector(), default_options());
  dm::synth::TraceGenerator gen(200);
  std::size_t alerted_episodes = 0;
  const int n = 10;
  for (int i = 0; i < n; ++i) {
    OnlineDetector fresh(shared_detector(), default_options());
    const auto episode = gen.infection(dm::synth::family_by_name("Angler"));
    alerted_episodes += replay(fresh, episode) > 0;
  }
  EXPECT_GE(alerted_episodes, static_cast<std::size_t>(n / 2));
}

TEST(OnlineDetectorTest, QuietOnBenignBrowsing) {
  dm::synth::TraceGenerator gen(201);
  std::size_t alerts = 0;
  for (int i = 0; i < 10; ++i) {
    OnlineDetector fresh(shared_detector(), default_options());
    alerts += replay(fresh, gen.benign());
  }
  EXPECT_LE(alerts, 1u);
}

TEST(OnlineDetectorTest, TrustedTrafficWeededOut) {
  OnlineDetector online(shared_detector(), default_options());
  dm::http::HttpTransaction txn;
  txn.client_host = "10.0.0.2";
  txn.server_host = "update.microsoft.com";
  txn.request.method = "GET";
  txn.request.uri = "/kb";
  txn.request.ts_micros = 1000;
  online.observe(txn);
  EXPECT_EQ(online.stats().transactions_weeded, 1u);
  EXPECT_EQ(online.active_sessions(), 0u);
}

TEST(OnlineDetectorTest, SessionsGroupByCookie) {
  OnlineDetector online(shared_detector(), default_options());
  auto make = [](std::string host, std::string sid, std::uint64_t ts) {
    dm::http::HttpTransaction txn;
    txn.client_host = "10.0.0.2";
    txn.server_host = std::move(host);
    txn.request.method = "GET";
    txn.request.uri = "/";
    txn.request.ts_micros = ts;
    txn.request.headers.add("Cookie", "PHPSESSID=" + sid);
    return txn;
  };
  online.observe(make("a.example", "s1", 1000000));
  online.observe(make("b.example", "s1", 2000000));
  online.observe(make("c.example", "s2", 3000000));
  EXPECT_EQ(online.stats().sessions_opened, 2u);
}

TEST(OnlineDetectorTest, SessionsGroupByReferrerLinkage) {
  OnlineOptions options = default_options();
  options.session_join_gap_s = 30.0;
  OnlineDetector online(shared_detector(), options);
  dm::http::HttpTransaction first;
  first.client_host = "10.0.0.2";
  first.server_host = "a.example";
  first.request.method = "GET";
  first.request.uri = "/";
  first.request.ts_micros = 1000000;

  dm::http::HttpTransaction second;
  second.client_host = "10.0.0.2";
  second.server_host = "b.example";
  second.request.method = "GET";
  second.request.uri = "/next";
  second.request.ts_micros = 2000000;
  second.request.headers.add("Referer", "http://a.example/");

  online.observe(first);
  online.observe(second);
  EXPECT_EQ(online.stats().sessions_opened, 1u);
}

TEST(OnlineDetectorTest, UnrelatedClientsGetSeparateSessions) {
  OnlineDetector online(shared_detector(), default_options());
  for (int i = 0; i < 3; ++i) {
    dm::http::HttpTransaction txn;
    txn.client_host = "10.0.0." + std::to_string(i + 2);
    txn.server_host = "shared.example";
    txn.request.method = "GET";
    txn.request.uri = "/";
    txn.request.ts_micros = 1000000 + i;
    online.observe(txn);
  }
  EXPECT_EQ(online.stats().sessions_opened, 3u);
}

TEST(OnlineDetectorTest, IdleSessionsExpire) {
  OnlineOptions options = default_options();
  options.session_idle_timeout_s = 10.0;
  OnlineDetector online(shared_detector(), options);
  dm::http::HttpTransaction txn;
  txn.client_host = "10.0.0.2";
  txn.server_host = "a.example";
  txn.request.method = "GET";
  txn.request.uri = "/";
  txn.request.ts_micros = 1000000;
  online.observe(txn);
  EXPECT_EQ(online.active_sessions(), 1u);
  online.expire_idle(1000000 + 60 * 1000000ULL);
  EXPECT_EQ(online.active_sessions(), 0u);
  EXPECT_EQ(online.stats().sessions_expired, 1u);
}

TEST(OnlineDetectorTest, ClueRequiresChainAndDownload) {
  // A lone risky download with no redirect chain must not fire the clue.
  OnlineOptions options = default_options();
  options.redirect_chain_threshold = 3;
  OnlineDetector online(shared_detector(), options);
  dm::http::HttpTransaction txn;
  txn.client_host = "10.0.0.2";
  txn.server_host = "dl.example";
  txn.request.method = "GET";
  txn.request.uri = "/setup.exe";
  txn.request.ts_micros = 1000000;
  dm::http::HttpResponse res;
  res.status_code = 200;
  res.headers.add("Content-Type", "application/octet-stream");
  res.body = "MZ...";
  res.ts_micros = 1100000;
  txn.response = std::move(res);
  online.observe(txn);
  EXPECT_EQ(online.stats().clues_fired, 0u);
  EXPECT_EQ(online.stats().alerts, 0u);
}

TEST(OnlineDetectorTest, AlertTerminatesSession) {
  dm::synth::TraceGenerator gen(202);
  for (int attempt = 0; attempt < 10; ++attempt) {
    OnlineDetector online(shared_detector(), default_options());
    const auto episode = gen.infection(dm::synth::family_by_name("Nuclear"));
    if (replay(online, episode) == 0) continue;
    // After an alert the session is gone; a repeat replay of the same
    // episode opens a NEW session rather than updating the alerted one.
    EXPECT_EQ(online.stats().alerts, 1u);
    return;  // verified on the first alerting episode
  }
  GTEST_SKIP() << "no alert in 10 episodes (unexpected but not a correctness bug)";
}

TEST(OnlineDetectorTest, AlertCarriesContext) {
  dm::synth::TraceGenerator gen(203);
  for (int attempt = 0; attempt < 10; ++attempt) {
    OnlineDetector online(shared_detector(), default_options());
    const auto episode = gen.infection(dm::synth::family_by_name("Angler"));
    for (const auto& txn : episode.transactions) {
      if (const auto alert = online.observe(txn)) {
        EXPECT_GE(alert->score, 0.4);  // online threshold (clue-gated)
        EXPECT_FALSE(alert->client.empty());
        EXPECT_FALSE(alert->trigger_host.empty());
        EXPECT_GE(alert->wcg_order, 2u);
        return;
      }
    }
  }
  GTEST_SKIP() << "no alert in 10 episodes";
}

}  // namespace
}  // namespace dm::core

#include "core/whitelist.h"

#include <gtest/gtest.h>

namespace dm::core {
namespace {

TEST(TrustedVendorsTest, DefaultListNonEmpty) {
  const auto list = TrustedVendors::default_list();
  EXPECT_GT(list.size(), 10u);
}

TEST(TrustedVendorsTest, ExactAndSubdomainMatch) {
  const auto list = TrustedVendors::default_list();
  EXPECT_TRUE(list.is_trusted("windowsupdate.com"));
  EXPECT_TRUE(list.is_trusted("dl.windowsupdate.com"));
  EXPECT_TRUE(list.is_trusted("a.b.c.windowsupdate.com"));
  EXPECT_FALSE(list.is_trusted("notwindowsupdate.com"));
  EXPECT_FALSE(list.is_trusted("windowsupdate.com.evil.top"));
}

TEST(TrustedVendorsTest, CaseInsensitive) {
  const auto list = TrustedVendors::default_list();
  EXPECT_TRUE(list.is_trusted("Update.Microsoft.COM"));
}

TEST(TrustedVendorsTest, NoneTrustsNothing) {
  const auto list = TrustedVendors::none();
  EXPECT_EQ(list.size(), 0u);
  EXPECT_FALSE(list.is_trusted("windowsupdate.com"));
}

TEST(TrustedVendorsTest, CustomAdditions) {
  TrustedVendors list;
  list.add("Internal-Mirror.example");
  EXPECT_TRUE(list.is_trusted("internal-mirror.example"));
  EXPECT_TRUE(list.is_trusted("pkg.internal-mirror.example"));
  EXPECT_FALSE(list.is_trusted("other.example"));
}

TEST(TrustedVendorsTest, EkDomainsNeverTrusted) {
  const auto list = TrustedVendors::default_list();
  EXPECT_FALSE(list.is_trusted("qazotrel.top"));
  EXPECT_FALSE(list.is_trusted("203.0.113.7"));
}

}  // namespace
}  // namespace dm::core

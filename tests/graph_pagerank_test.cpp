#include "graph/pagerank.h"

#include <gtest/gtest.h>

#include <numeric>

namespace dm::graph {
namespace {

double sum_of(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(PageRankTest, EmptyGraph) {
  EXPECT_TRUE(pagerank({}).empty());
}

TEST(PageRankTest, SingleNodeGetsAllMass) {
  const auto pr = pagerank(Adjacency(1));
  ASSERT_EQ(pr.size(), 1u);
  EXPECT_NEAR(pr[0], 1.0, 1e-9);
}

TEST(PageRankTest, SumsToOne) {
  Adjacency adj(4);
  adj[0] = {1, 2};
  adj[1] = {2};
  adj[2] = {0};
  adj[3] = {2};  // 3 is a source; also exercises dangling handling via 2->0
  const auto pr = pagerank(adj);
  EXPECT_NEAR(sum_of(pr), 1.0, 1e-9);
}

TEST(PageRankTest, SymmetricCycleIsUniform) {
  Adjacency adj(4);
  for (NodeId v = 0; v < 4; ++v) adj[v] = {static_cast<NodeId>((v + 1) % 4)};
  const auto pr = pagerank(adj);
  for (double x : pr) EXPECT_NEAR(x, 0.25, 1e-9);
}

TEST(PageRankTest, SinkAttractsMoreMassThanSource) {
  Adjacency adj(3);
  adj[0] = {2};
  adj[1] = {2};
  // node 2 dangling
  const auto pr = pagerank(adj);
  EXPECT_GT(pr[2], pr[0]);
  EXPECT_NEAR(pr[0], pr[1], 1e-9);
  EXPECT_NEAR(sum_of(pr), 1.0, 1e-9);
}

TEST(PageRankTest, KnownTwoNodeAsymmetry) {
  // 0 -> 1, 1 -> 0: symmetric, both 0.5.
  Adjacency adj(2);
  adj[0] = {1};
  adj[1] = {0};
  const auto pr = pagerank(adj);
  EXPECT_NEAR(pr[0], 0.5, 1e-9);
  EXPECT_NEAR(pr[1], 0.5, 1e-9);
}

TEST(PageRankTest, DampingAffectsSpread) {
  Adjacency adj(3);
  adj[0] = {1};
  adj[1] = {2};
  adj[2] = {};  // dangling chain end
  PageRankOptions strong;
  strong.damping = 0.99;
  PageRankOptions weak;
  weak.damping = 0.05;
  const auto pr_strong = pagerank(adj, strong);
  const auto pr_weak = pagerank(adj, weak);
  // With weak damping everything is near uniform.
  EXPECT_NEAR(pr_weak[0], 1.0 / 3.0, 0.05);
  // With strong damping mass accumulates down the chain.
  EXPECT_GT(pr_strong[2], pr_strong[0]);
}

class PageRankSumTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PageRankSumTest, AlwaysAProbabilityDistribution) {
  // Deterministic pseudo-random sparse digraph of size n.
  const std::size_t n = GetParam();
  Adjacency adj(n);
  std::uint64_t state = 88172645463325252ULL;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (NodeId v = 0; v < n; ++v) {
    const std::size_t degree = next() % 4;
    for (std::size_t i = 0; i < degree; ++i) {
      const auto w = static_cast<NodeId>(next() % n);
      if (w != v) adj[v].push_back(w);
    }
  }
  const auto pr = pagerank(adj);
  EXPECT_NEAR(sum_of(pr), 1.0, 1e-6);
  for (double x : pr) EXPECT_GT(x, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PageRankSumTest,
                         ::testing::Values(2, 5, 17, 64, 200));

}  // namespace
}  // namespace dm::graph

#include "ml/random_forest.h"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.h"

namespace dm::ml {
namespace {

Dataset noisy_separable(std::size_t n, std::uint64_t seed) {
  dm::util::Rng rng(seed);
  Dataset data({"a", "b", "c"});
  for (std::size_t i = 0; i < n; ++i) {
    const bool positive = i % 2 == 0;
    const double base = positive ? 10.0 : 0.0;
    data.add_row({base + rng.normal(0, 2.0), rng.normal(0, 1.0),
                  base / 2 + rng.normal(0, 3.0)},
                 positive ? kInfection : kBenign);
  }
  return data;
}

TEST(RandomForestTest, DefaultNfMatchesPaperFormula) {
  EXPECT_EQ(default_features_per_split(37), 6u);  // log2(37)+1 = 6
  EXPECT_EQ(default_features_per_split(8), 4u);
  EXPECT_EQ(default_features_per_split(1), 1u);
  EXPECT_EQ(default_features_per_split(0), 0u);
}

TEST(RandomForestTest, ThrowsOnEmptyDataset) {
  Dataset data({"x"});
  EXPECT_THROW(RandomForest::train(data, {}), std::invalid_argument);
}

TEST(RandomForestTest, TrainsRequestedTreeCount) {
  const auto data = noisy_separable(100, 1);
  ForestOptions options;
  options.num_trees = 7;
  const auto forest = RandomForest::train(data, options);
  EXPECT_EQ(forest.num_trees(), 7u);
}

TEST(RandomForestTest, ClassifiesNoisySeparableData) {
  const auto data = noisy_separable(400, 2);
  ForestOptions options;
  options.num_trees = 20;
  options.seed = 3;
  const auto forest = RandomForest::train(data, options);
  int correct = 0;
  dm::util::Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const bool positive = i % 2 == 0;
    const double base = positive ? 10.0 : 0.0;
    const std::vector<double> x{base + rng.normal(0, 2.0), rng.normal(0, 1.0),
                                base / 2 + rng.normal(0, 3.0)};
    correct += forest.predict(x) == (positive ? kInfection : kBenign);
  }
  EXPECT_GT(correct, 180);  // > 90% on held-out noise
}

TEST(RandomForestTest, DeterministicForSameSeed) {
  const auto data = noisy_separable(100, 5);
  ForestOptions options;
  options.seed = 77;
  const auto f1 = RandomForest::train(data, options);
  const auto f2 = RandomForest::train(data, options);
  dm::util::Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> x{rng.uniform(-5, 15), rng.normal(0, 1),
                                rng.uniform(-5, 10)};
    EXPECT_DOUBLE_EQ(f1.predict_proba(x), f2.predict_proba(x));
  }
}

TEST(RandomForestTest, ProbabilityAveragingIsSmootherThanVoting) {
  const auto data = noisy_separable(200, 7);
  ForestOptions averaging;
  averaging.combination = Combination::kProbabilityAveraging;
  averaging.seed = 8;
  ForestOptions voting = averaging;
  voting.combination = Combination::kMajorityVote;

  const auto forest_avg = RandomForest::train(data, averaging);
  const auto forest_vote = RandomForest::train(data, voting);

  // Voting scores are quantized to k/num_trees; averaging scores take many
  // more distinct values across a probe set.
  std::set<double> avg_scores;
  std::set<double> vote_scores;
  dm::util::Rng rng(9);
  for (int i = 0; i < 300; ++i) {
    const std::vector<double> x{rng.uniform(-2, 12), rng.normal(0, 1),
                                rng.uniform(-2, 8)};
    avg_scores.insert(forest_avg.predict_proba(x));
    vote_scores.insert(forest_vote.predict_proba(x));
  }
  EXPECT_GE(avg_scores.size(), vote_scores.size());
  EXPECT_LE(vote_scores.size(), 21u);  // at most num_trees+1 voting levels
}

TEST(RandomForestTest, ScoresAreProbabilities) {
  const auto data = noisy_separable(100, 10);
  const auto forest = RandomForest::train(data, {});
  dm::util::Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    const std::vector<double> x{rng.uniform(-20, 30), rng.uniform(-5, 5),
                                rng.uniform(-20, 30)};
    const double p = forest.predict_proba(x);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(RandomForestTest, ThresholdShiftsDecisions) {
  const auto data = noisy_separable(200, 12);
  const auto forest = RandomForest::train(data, {});
  const std::vector<double> borderline{5.0, 0.0, 2.5};
  const double p = forest.predict_proba(borderline);
  EXPECT_EQ(forest.predict(borderline, p - 0.01), kInfection);
  EXPECT_EQ(forest.predict(borderline, p + 0.01), kBenign);
}

class ForestSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ForestSizeTest, AccuracyHoldsAcrossSizes) {
  const auto data = noisy_separable(300, 13);
  ForestOptions options;
  options.num_trees = GetParam();
  options.seed = 14;
  const auto forest = RandomForest::train(data, options);
  int correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    correct += forest.predict(data.row(i)) == data.label(i);
  }
  EXPECT_GT(static_cast<double>(correct) / data.size(), 0.9);
}

INSTANTIATE_TEST_SUITE_P(TreeCounts, ForestSizeTest,
                         ::testing::Values(1, 5, 10, 20, 40));

}  // namespace
}  // namespace dm::ml

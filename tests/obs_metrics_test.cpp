// Observability core: registry, counters, gauges, log-bucketed histograms,
// callback sources, the three exporters — and the runtime conservation law
// (transactions_in == transactions_out + transactions_shed) read through one
// registry snapshot.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/trainer.h"
#include "obs/export.h"
#include "runtime/sharded_online.h"
#include "synth/dataset.h"

namespace dm::obs {
namespace {

TEST(CounterTest, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, SetAndAdditiveDeltas) {
  Gauge g;
  g.set(10);
  EXPECT_EQ(g.value(), 10);
  g.add(-3);
  g.add(5);
  EXPECT_EQ(g.value(), 12);
  g.add(-20);
  EXPECT_EQ(g.value(), -8);  // levels can go negative mid-merge; keep signed
}

TEST(HistogramBucketTest, SmallValuesAreExact) {
  for (std::uint64_t v = 0; v < 4; ++v) {
    EXPECT_EQ(histogram_bucket(v), v);
    EXPECT_EQ(histogram_bucket_lo(v), v);
    EXPECT_EQ(histogram_bucket_hi(v), v);
  }
}

TEST(HistogramBucketTest, BoundsInvertTheMapping) {
  // lo/hi are inclusive bounds of the bucket; consecutive buckets tile the
  // value range with no gap and no overlap.
  for (std::size_t idx = 0; idx + 1 < kHistogramBuckets; ++idx) {
    const std::uint64_t lo = histogram_bucket_lo(idx);
    const std::uint64_t hi = histogram_bucket_hi(idx);
    ASSERT_LE(lo, hi) << "bucket " << idx;
    EXPECT_EQ(histogram_bucket(lo), idx);
    EXPECT_EQ(histogram_bucket(hi), idx);
    EXPECT_EQ(histogram_bucket_lo(idx + 1), hi + 1) << "gap after bucket " << idx;
  }
}

TEST(HistogramBucketTest, MonotoneInValue) {
  std::size_t prev = 0;
  for (std::uint64_t v = 0; v < 100000; v = v < 16 ? v + 1 : v + v / 7) {
    const std::size_t b = histogram_bucket(v);
    ASSERT_GE(b, prev) << "v=" << v;
    ASSERT_LT(b, kHistogramBuckets);
    prev = b;
  }
  EXPECT_LT(histogram_bucket(~std::uint64_t{0}), kHistogramBuckets);
}

TEST(HistogramTest, CountsSumAndExactSmallQuantiles) {
  Histogram h;
  for (std::uint64_t v = 0; v < 4; ++v) {
    for (int i = 0; i < 25; ++i) h.record(v);  // 100 samples, uniform 0..3
  }
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_EQ(snap.sum, 25u * (0 + 1 + 2 + 3));
  EXPECT_DOUBLE_EQ(snap.mean(), 1.5);
  // Values < 4 land in exact buckets, so these quantiles are exact.
  EXPECT_EQ(snap.quantile(0.10), 0u);
  EXPECT_EQ(snap.quantile(0.30), 1u);
  EXPECT_EQ(snap.p99(), 3u);
  EXPECT_EQ(snap.max_bound(), 3u);
}

TEST(HistogramTest, QuantileWithinBucketResolution) {
  Histogram h;
  const std::uint64_t v = 123456789;
  for (int i = 0; i < 10; ++i) h.record(v);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 10u);
  EXPECT_EQ(snap.sum, 10u * v);  // sum is exact even when buckets are not
  const std::size_t idx = histogram_bucket(v);
  for (double q : {0.5, 0.95, 0.99}) {
    const std::uint64_t est = snap.quantile(q);
    EXPECT_GE(est, histogram_bucket_lo(idx));
    EXPECT_LE(est, histogram_bucket_hi(idx));
  }
}

TEST(HistogramTest, EmptySnapshotIsAllZero) {
  Histogram h;
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.quantile(0.5), 0u);
  EXPECT_EQ(snap.mean(), 0.0);
  EXPECT_EQ(snap.max_bound(), 0u);
}

TEST(RegistryTest, SameNameSameInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.counter("dm.test.hits");
  Counter& b = reg.counter("dm.test.hits");
  EXPECT_EQ(&a, &b);
  a.add(7);
  EXPECT_EQ(reg.snapshot().counter_value("dm.test.hits"), 7u);
  EXPECT_EQ(&reg.histogram("dm.test.lat_ns"), &reg.histogram("dm.test.lat_ns"));
  EXPECT_EQ(&reg.gauge("dm.test.level"), &reg.gauge("dm.test.level"));
}

TEST(RegistryTest, SnapshotIsNameSortedAndAbsentLookupsAreSafe) {
  MetricsRegistry reg;
  reg.counter("zz").add(1);
  reg.counter("aa").add(2);
  reg.counter("mm").add(3);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "aa");
  EXPECT_EQ(snap.counters[1].name, "mm");
  EXPECT_EQ(snap.counters[2].name, "zz");
  EXPECT_EQ(snap.counter_value("nope"), 0u);
  EXPECT_EQ(snap.gauge_value("nope"), 0);
  EXPECT_EQ(snap.histogram("nope"), nullptr);
}

TEST(RegistryTest, CallbackSourcesSumPerNameAndUnregister) {
  MetricsRegistry reg;
  std::uint64_t a = 10;
  std::uint64_t b = 32;
  auto ha = reg.register_callback("dm.test.external", [&a] { return a; });
  {
    auto hb = reg.register_callback("dm.test.external", [&b] { return b; });
    EXPECT_EQ(reg.snapshot().counter_value("dm.test.external"), 42u);
  }  // hb unregisters
  EXPECT_EQ(reg.snapshot().counter_value("dm.test.external"), 10u);
  ha.release();
  ha.release();  // idempotent
  EXPECT_EQ(reg.snapshot().counter_value("dm.test.external"), 0u);
}

TEST(RegistryTest, CallbackMergesWithOwnedCounterOfSameName) {
  MetricsRegistry reg;
  reg.counter("dm.test.mixed").add(5);
  auto h = reg.register_callback("dm.test.mixed", [] { return std::uint64_t{6}; });
  EXPECT_EQ(reg.snapshot().counter_value("dm.test.mixed"), 11u);
}

TEST(RegistryTest, ResetZeroesInPlaceKeepingReferencesValid) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  Histogram& h = reg.histogram("h");
  Gauge& g = reg.gauge("g");
  c.add(9);
  h.record(100);
  g.set(4);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.snapshot().count, 0u);
  EXPECT_EQ(g.value(), 0);
  c.add(1);  // the old reference still points at the live instrument
  EXPECT_EQ(reg.snapshot().counter_value("c"), 1u);
}

// --- exporters -------------------------------------------------------------

MetricsRegistry& example_registry() {
  static MetricsRegistry* reg = [] {
    auto* r = new MetricsRegistry();  // registries are neither copyable nor movable
    r->counter("dm.test.events").add(12);
    r->gauge("dm.test.depth").set(-3);
    auto& h = r->histogram("dm.test.wait_ns");
    h.record(2);
    h.record(1000);
    h.record(1000000);
    return r;
  }();
  return *reg;
}

TEST(ExportTest, TableListsEveryInstrument) {
  const std::string table = to_table(example_registry().snapshot());
  EXPECT_NE(table.find("dm.test.events"), std::string::npos);
  EXPECT_NE(table.find("12"), std::string::npos);
  EXPECT_NE(table.find("dm.test.depth"), std::string::npos);
  EXPECT_NE(table.find("dm.test.wait_ns"), std::string::npos);
  EXPECT_NE(table.find("p95"), std::string::npos);
}

TEST(ExportTest, PrometheusSanitizesNamesAndEmitsCumulativeBuckets) {
  const std::string text = to_prometheus(example_registry().snapshot());
  // Dots sanitized to underscores; counter/gauge/histogram types declared.
  EXPECT_NE(text.find("# TYPE dm_test_events counter"), std::string::npos);
  EXPECT_NE(text.find("dm_test_events 12"), std::string::npos);
  EXPECT_NE(text.find("# TYPE dm_test_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("dm_test_depth -3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE dm_test_wait_ns histogram"), std::string::npos);
  EXPECT_NE(text.find("dm_test_wait_ns_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("dm_test_wait_ns_count 3"), std::string::npos);
  EXPECT_NE(text.find("dm_test_wait_ns_sum 1001002"), std::string::npos);
  EXPECT_EQ(text.find('.'), std::string::npos) << "unsanitized metric name";
}

TEST(ExportTest, JsonIsOneLineWithAllSections) {
  const std::string json = to_json(example_registry().snapshot());
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"dm.test.events\":12"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"dm.test.depth\":-3"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":3"), std::string::npos);
}

// --- conservation law across the sharded runtime ---------------------------

const std::shared_ptr<const dm::core::Detector>& tiny_detector() {
  static const auto detector = [] {
    const auto gt = dm::synth::generate_ground_truth(77, 0.05);
    std::vector<dm::core::Wcg> infections;
    std::vector<dm::core::Wcg> benign;
    for (const auto& e : gt.infections) {
      infections.push_back(dm::core::build_wcg(e.transactions));
    }
    for (const auto& e : gt.benign) {
      benign.push_back(dm::core::build_wcg(e.transactions));
    }
    return std::make_shared<const dm::core::Detector>(dm::core::train_dynaminer(
        dm::core::dataset_from_wcgs(infections, benign), 7));
  }();
  return detector;
}

std::vector<dm::http::HttpTransaction> small_stream() {
  dm::synth::TraceGenerator gen(4242);
  std::vector<dm::http::HttpTransaction> stream;
  for (int i = 0; i < 6; ++i) {
    for (const auto& txn : gen.benign().transactions) stream.push_back(txn);
  }
  for (const auto& txn :
       gen.infection(dm::synth::family_by_name("Angler")).transactions) {
    stream.push_back(txn);
  }
  return stream;
}

void check_conservation(dm::runtime::OverloadPolicy policy) {
  MetricsRegistry reg;  // private registry: isolated from other tests
  dm::runtime::ShardedOptions options;
  options.num_shards = 4;
  options.batch_size = 3;
  options.queue_capacity = policy == dm::runtime::OverloadPolicy::kBlock ? 8 : 1;
  options.overload = policy;
  options.online.metrics = &reg;
  if (policy != dm::runtime::OverloadPolicy::kBlock) {
    // Slow the workers down so tiny queues actually overflow and shed.
    options.online.redirect_chain_threshold = 2;
  }

  const auto stream = small_stream();
  {
    dm::runtime::ShardedOnlineEngine engine(tiny_detector(), options);
    for (auto txn : stream) engine.observe(std::move(txn));
    engine.finish();

    // Workers are quiesced after finish(): the snapshot totals are exact and
    // every dispatched transaction is accounted for — processed or shed,
    // never lost.
    const auto snap = reg.snapshot();
    const std::uint64_t in = snap.counter_value("dm.runtime.transactions_in");
    const std::uint64_t out = snap.counter_value("dm.runtime.transactions_out");
    const std::uint64_t shed = snap.counter_value("dm.runtime.transactions_shed");
    EXPECT_EQ(in, stream.size());
    EXPECT_EQ(in, out + shed) << "conservation law violated: in=" << in
                              << " out=" << out << " shed=" << shed;
    if (policy == dm::runtime::OverloadPolicy::kBlock) {
      EXPECT_EQ(shed, 0u) << "backpressure mode must never shed";
    }
    // The same law must hold through every exporter (same snapshot).
    const std::string json = to_json(snap);
    EXPECT_NE(json.find("dm.runtime.transactions_in"), std::string::npos);
    EXPECT_NE(to_prometheus(snap).find("dm_runtime_transactions_in"),
              std::string::npos);
    EXPECT_NE(to_table(snap).find("dm.runtime.transactions_in"),
              std::string::npos);
  }
  // Engine destroyed -> its CallbackHandles unregistered; the registry no
  // longer reports the runtime counters.
  EXPECT_EQ(reg.snapshot().counter_value("dm.runtime.transactions_in"), 0u);
}

TEST(ConservationTest, BlockingBackpressureLosesNothing) {
  check_conservation(dm::runtime::OverloadPolicy::kBlock);
}

TEST(ConservationTest, ShedOldestAccountsForEveryTransaction) {
  check_conservation(dm::runtime::OverloadPolicy::kShedOldest);
}

TEST(ConservationTest, ShedNewestAccountsForEveryTransaction) {
  check_conservation(dm::runtime::OverloadPolicy::kShedNewest);
}

}  // namespace
}  // namespace dm::obs

// Crash-safety harness for the versioned model store and the driver's
// persisted lifecycle: the persist sequence is crashed at every named step
// via the step_hook seam, artifacts are torn and bit-flipped on disk, and
// recovery must land on a CRC-valid committed version with *exact*
// dm.store.* accounting — never on a half-promoted candidate.
#include "serve/model_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/trainer.h"
#include "ml/serialization.h"
#include "obs/metrics.h"
#include "serve/retrain.h"
#include "synth/dataset.h"
#include "util/rng.h"

namespace dm::serve {
namespace {

namespace fs = std::filesystem;

std::atomic<std::uint64_t> g_now{0};
std::uint64_t manual_clock() { return g_now.load(std::memory_order_relaxed); }

/// Fresh scratch directory per test case (removed up front, not after — a
/// failing test leaves its debris inspectable).
fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("dm_store_" + name);
  fs::remove_all(dir);
  return dir;
}

/// A small trained forest whose serialization differs per seed.
dm::ml::RandomForest make_forest(std::uint64_t seed) {
  static const auto corpus = [] {
    const auto gt = dm::synth::generate_ground_truth(60, 0.05);
    std::vector<dm::core::Wcg> infections;
    std::vector<dm::core::Wcg> benign;
    for (const auto& e : gt.infections) {
      infections.push_back(dm::core::build_wcg(e.transactions));
    }
    for (const auto& e : gt.benign) {
      benign.push_back(dm::core::build_wcg(e.transactions));
    }
    return dm::core::dataset_from_wcgs(infections, benign);
  }();
  return dm::core::train_dynaminer(corpus, seed);
}

std::string serialize(const dm::ml::RandomForest& forest) {
  std::ostringstream out;
  dm::ml::save_forest(forest, out);
  return out.str();
}

ManifestEntry entry_for(std::uint64_t version, std::uint64_t parent,
                        const std::string& reason) {
  ManifestEntry entry;
  entry.version = version;
  entry.parent = parent;
  entry.ts_ns = 1000 * version;
  entry.reason = reason;
  return entry;
}

StoreOptions base_options(const fs::path& dir) {
  StoreOptions options;
  options.dir = dir.string();
  options.fsync = false;  // injection, not power loss, is under test
  options.clock = &manual_clock;
  return options;
}

TEST(ModelStoreTest, EmptyDirectoryRecoversNothing) {
  dm::obs::MetricsRegistry reg;
  auto options = base_options(scratch_dir("empty"));
  options.metrics = &reg;
  ModelStore store(options);
  EXPECT_FALSE(store.recover().has_value());
  EXPECT_EQ(store.latest_version(), 0u);
  EXPECT_EQ(store.counts().recoveries, 1u);
  EXPECT_EQ(reg.snapshot().counter_value("dm.store.recoveries"), 1u);
}

TEST(ModelStoreTest, PersistThenRecoverRoundTripsTheNewestVersion) {
  const fs::path dir = scratch_dir("roundtrip");
  auto f1 = make_forest(1);
  f1.set_model_version(1);
  auto f2 = make_forest(2);
  f2.set_model_version(2);
  {
    ModelStore store(base_options(dir));
    ASSERT_TRUE(store.persist(f1, entry_for(1, 0, "initial")));
    ASSERT_TRUE(store.persist(f2, entry_for(2, 1, "promote")));
    EXPECT_EQ(store.counts().saves, 2u);
    EXPECT_EQ(store.latest_version(), 2u);
  }
  // A brand-new store instance (a restart) recovers version 2 bit-exactly
  // and the full lineage.
  ModelStore store(base_options(dir));
  const auto recovered = store.recover();
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->entry.version, 2u);
  EXPECT_EQ(recovered->entry.parent, 1u);
  EXPECT_EQ(recovered->entry.reason, "promote");
  EXPECT_EQ(serialize(recovered->forest), serialize(f2));
  const auto manifest = store.manifest();
  ASSERT_EQ(manifest.size(), 2u);
  EXPECT_EQ(manifest[0].version, 1u);
  EXPECT_EQ(manifest[1].version, 2u);
  // Clean store: nothing quarantined, discarded, or swept.
  const auto counts = store.counts();
  EXPECT_EQ(counts.artifacts_quarantined, 0u);
  EXPECT_EQ(counts.manifests_quarantined, 0u);
  EXPECT_EQ(counts.uncommitted_discarded, 0u);
  EXPECT_EQ(counts.temps_removed, 0u);
  // An older version stays individually loadable.
  const auto v1 = store.load_version(1);
  ASSERT_TRUE(v1.has_value());
  EXPECT_EQ(serialize(*v1), serialize(f1));
  EXPECT_FALSE(store.load_version(9).has_value());
}

/// The simulated power cut: thrown by the step hook, expected to propagate
/// out of persist() untouched.
struct SimulatedCrash {
  std::string step;
};

TEST(ModelStoreTest, CrashAtEveryPersistStepRecoversExactly) {
  // The hook fires *before* the named step, so a crash at step S means S
  // never executed.  The manifest rename is the commit point: any crash
  // strictly before it must recover version 1, any crash after it must
  // recover version 2 — and the sweep accounting is exact per step.
  struct Expectation {
    const char* step;
    std::uint64_t version;          // recovered head after the crash
    std::uint64_t temps_removed;    // stale .tmp-* swept on recovery
    std::uint64_t uncommitted;      // renamed-but-unreferenced artifacts
  };
  const std::vector<Expectation> table = {
      {"artifact-temp-write", 1, 0, 0},  // nothing was written yet
      {"artifact-temp-sync", 1, 1, 0},   // artifact temp on disk
      {"artifact-rename", 1, 1, 0},
      {"artifact-dir-sync", 1, 0, 1},    // artifact durable, uncommitted
      {"manifest-temp-write", 1, 0, 1},
      {"manifest-temp-sync", 1, 1, 1},   // + manifest temp on disk
      {"manifest-rename", 1, 1, 1},
      {"manifest-dir-sync", 2, 0, 0},    // rename happened: committed
      {"prune", 2, 0, 0},
  };
  for (const auto& expected : table) {
    SCOPED_TRACE(expected.step);
    const fs::path dir = scratch_dir(std::string("crash_") + expected.step);
    auto f1 = make_forest(1);
    f1.set_model_version(1);
    auto f2 = make_forest(2);
    f2.set_model_version(2);

    // A clean committed version 1, then a crash mid-promotion of version 2.
    {
      ModelStore store(base_options(dir));
      ASSERT_TRUE(store.persist(f1, entry_for(1, 0, "initial")));
    }
    {
      auto options = base_options(dir);
      options.step_hook = [&](std::string_view step) {
        if (step == expected.step) throw SimulatedCrash{std::string(step)};
      };
      ModelStore store(options);
      ASSERT_TRUE(store.recover().has_value());
      EXPECT_THROW(store.persist(f2, entry_for(2, 1, "promote")),
                   SimulatedCrash);
    }

    // Restart: a fresh store with no hook runs recovery.
    dm::obs::MetricsRegistry reg;
    auto options = base_options(dir);
    options.metrics = &reg;
    ModelStore store(options);
    const auto recovered = store.recover();
    ASSERT_TRUE(recovered.has_value()) << "store lost after crashed promote";
    EXPECT_EQ(recovered->entry.version, expected.version);
    const auto& want =
        expected.version == 2 ? f2 : f1;  // bit-exact survivor content
    EXPECT_EQ(serialize(recovered->forest), serialize(want));

    const auto counts = store.counts();
    EXPECT_EQ(counts.temps_removed, expected.temps_removed);
    EXPECT_EQ(counts.uncommitted_discarded, expected.uncommitted);
    EXPECT_EQ(counts.artifacts_quarantined, 0u);
    EXPECT_EQ(counts.manifests_quarantined, 0u);
    // The panel mirrors the instance counts exactly.
    const auto snap = reg.snapshot();
    EXPECT_EQ(snap.counter_value("dm.store.temps_removed"),
              expected.temps_removed);
    EXPECT_EQ(snap.counter_value("dm.store.uncommitted_discarded"),
              expected.uncommitted);
    EXPECT_EQ(snap.gauge_value("dm.store.latest_version"),
              static_cast<std::int64_t>(expected.version));

    // No stray files: scratch now holds exactly the committed artifacts
    // plus the manifest.
    std::size_t files = 0;
    for (const auto& e : fs::directory_iterator(dir)) {
      ++files;
      EXPECT_TRUE(e.path().filename().string().find(".tmp-") ==
                  std::string::npos)
          << "stale temp survived recovery: " << e.path();
    }
    EXPECT_EQ(files, expected.version == 2 ? 3u : 2u);  // artifacts + manifest

    // Idempotence: recovering again changes nothing.
    const auto again = store.recover();
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(again->entry.version, expected.version);
    EXPECT_EQ(store.counts().temps_removed, expected.temps_removed);
    EXPECT_EQ(store.counts().uncommitted_discarded, expected.uncommitted);
  }
}

TEST(ModelStoreTest, TornArtifactIsQuarantinedAndRecoveryFallsBack) {
  const fs::path dir = scratch_dir("torn");
  auto f1 = make_forest(1);
  f1.set_model_version(1);
  auto f2 = make_forest(2);
  f2.set_model_version(2);
  {
    ModelStore store(base_options(dir));
    ASSERT_TRUE(store.persist(f1, entry_for(1, 0, "initial")));
    ASSERT_TRUE(store.persist(f2, entry_for(2, 1, "promote")));
  }
  const fs::path artifact = dir / ModelStore::artifact_filename(2);
  const auto full_size = fs::file_size(artifact);
  const std::string full = [&] {
    std::ifstream in(artifact, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }();
  // Tear the newest artifact at seeded offsets (a torn write truncates);
  // every tear must quarantine it and recover version 1.
  dm::util::Rng rng(7);
  for (int trial = 0; trial < 6; ++trial) {
    const auto cut = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(full_size) - 1));
    SCOPED_TRACE(cut);
    {
      std::ofstream out(artifact, std::ios::binary | std::ios::trunc);
      out.write(full.data(), static_cast<std::streamsize>(cut));
    }
    ModelStore store(base_options(dir));
    const auto recovered = store.recover();
    ASSERT_TRUE(recovered.has_value());
    EXPECT_EQ(recovered->entry.version, 1u);
    EXPECT_EQ(serialize(recovered->forest), serialize(f1));
    EXPECT_EQ(store.counts().artifacts_quarantined, 1u);
    EXPECT_FALSE(fs::exists(artifact)) << "torn artifact left in place";
    // Restore for the next trial: re-persist version 2 over the survivor.
    ASSERT_TRUE(store.persist(f2, entry_for(2, 1, "promote")));
  }
}

TEST(ModelStoreTest, BitFlippedArtifactFailsItsCrcAndFallsBack) {
  const fs::path dir = scratch_dir("bitflip");
  auto f1 = make_forest(1);
  f1.set_model_version(1);
  auto f2 = make_forest(2);
  f2.set_model_version(2);
  {
    ModelStore store(base_options(dir));
    ASSERT_TRUE(store.persist(f1, entry_for(1, 0, "initial")));
    ASSERT_TRUE(store.persist(f2, entry_for(2, 1, "promote")));
  }
  const fs::path artifact = dir / ModelStore::artifact_filename(2);
  {
    std::string bytes = [&] {
      std::ifstream in(artifact, std::ios::binary);
      std::ostringstream buf;
      buf << in.rdbuf();
      return buf.str();
    }();
    bytes[bytes.size() / 2] ^= 0x20;  // silent single-bit rot
    std::ofstream out(artifact, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  ModelStore store(base_options(dir));
  const auto recovered = store.recover();
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->entry.version, 1u);
  EXPECT_EQ(store.counts().artifacts_quarantined, 1u);
  // The flipped file is renamed aside, not destroyed — forensics material.
  bool quarantined_file = false;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().filename().string().find(".quarantined-") !=
        std::string::npos) {
      quarantined_file = true;
    }
  }
  EXPECT_TRUE(quarantined_file);
}

TEST(ModelStoreTest, CorruptManifestQuarantinesAndRebuildsFromArtifacts) {
  const fs::path dir = scratch_dir("badmanifest");
  auto f1 = make_forest(1);
  f1.set_model_version(1);
  auto f2 = make_forest(2);
  f2.set_model_version(2);
  {
    ModelStore store(base_options(dir));
    ASSERT_TRUE(store.persist(f1, entry_for(1, 0, "initial")));
    ASSERT_TRUE(store.persist(f2, entry_for(2, 1, "promote")));
  }
  {
    std::ofstream out(dir / "manifest.dmm", std::ios::trunc);
    out << "dynaminer-manifest v1\nentry version garbage\n";
  }
  ModelStore store(base_options(dir));
  const auto recovered = store.recover();
  ASSERT_TRUE(recovered.has_value());
  // Scan mode: both artifacts are CRC-valid, the newest wins, and the
  // lineage is rebuilt with the recovery marker.
  EXPECT_EQ(recovered->entry.version, 2u);
  EXPECT_EQ(recovered->entry.reason, "recovered");
  EXPECT_EQ(serialize(recovered->forest), serialize(f2));
  EXPECT_EQ(store.counts().manifests_quarantined, 1u);
  const auto manifest = store.manifest();
  ASSERT_EQ(manifest.size(), 2u);
  EXPECT_EQ(manifest[0].version, 1u);
  EXPECT_EQ(manifest[1].parent, 1u) << "rebuilt lineage must chain";

  // The rewritten manifest is committed: a second restart reads it clean.
  ModelStore reopened(base_options(dir));
  const auto again = reopened.recover();
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->entry.version, 2u);
  EXPECT_EQ(reopened.counts().manifests_quarantined, 0u);
}

TEST(ModelStoreTest, HistoryIsBoundedAndPrunedArtifactsAreUnlinked) {
  const fs::path dir = scratch_dir("prune");
  auto options = base_options(dir);
  options.max_history = 3;
  ModelStore store(options);
  auto forest = make_forest(1);
  for (std::uint64_t v = 1; v <= 6; ++v) {
    forest.set_model_version(v);
    ASSERT_TRUE(store.persist(forest, entry_for(v, v - 1, "promote")));
  }
  EXPECT_EQ(store.counts().pruned, 3u);
  const auto manifest = store.manifest();
  ASSERT_EQ(manifest.size(), 3u);
  EXPECT_EQ(manifest.front().version, 4u);
  EXPECT_EQ(manifest.back().version, 6u);
  std::size_t artifacts = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().extension() == ".dmf") ++artifacts;
  }
  EXPECT_EQ(artifacts, 3u);
  EXPECT_FALSE(store.load_version(1).has_value());
  ASSERT_TRUE(store.load_version(4).has_value());
}

// ---- Driver-level lifecycle: persist, kill, recover, roll back -------------

std::shared_ptr<const dm::core::Detector> detector_from_seed(
    std::uint64_t seed) {
  return std::make_shared<const dm::core::Detector>(make_forest(seed));
}

/// Verdict feed labeled by the incumbent, as the live tap would.
void feed_verdicts(RetrainDriver& driver, const dm::core::Detector& incumbent,
                   std::size_t count, std::uint64_t seed = 9102) {
  dm::synth::TraceGenerator gen(seed);
  for (std::size_t i = 0; i < count; ++i) {
    auto wcg = (i % 2 == 0)
                   ? dm::core::build_wcg(
                         gen.infection(dm::synth::family_by_name("Neutrino"))
                             .transactions)
                   : dm::core::build_wcg(gen.benign().transactions);
    const double score = incumbent.score(wcg);
    driver.on_verdict(wcg, score, score >= 0.4, 1000 * i);
  }
}

TEST(RetrainDriverStoreTest, RestartRecoversThePublishedModelBitExactly) {
  const fs::path dir = scratch_dir("driver_recover");
  ServeOptions options;
  options.store.dir = dir.string();
  options.store.fsync = false;
  options.shadow_before_cutover = false;
  options.forest = dm::core::paper_forest_options();
  options.forest.num_trees = 5;
  options.clock = &manual_clock;

  std::string published;
  std::vector<dm::core::Wcg> probes;
  std::vector<double> scores;
  {
    const auto incumbent = detector_from_seed(5);
    RetrainDriver driver(incumbent, options);
    EXPECT_FALSE(driver.recovered_from_store());
    EXPECT_EQ(driver.version(), 1u);
    // The constructor committed the initial model as the lineage root.
    ASSERT_NE(driver.store(), nullptr);
    EXPECT_EQ(driver.store()->latest_version(), 1u);

    feed_verdicts(driver, *incumbent, 8);
    ASSERT_TRUE(driver.retrain_now());
    EXPECT_EQ(driver.version(), 2u);
    published = serialize(driver.handle().current()->forest());
    dm::synth::TraceGenerator gen(31337);
    for (int i = 0; i < 16; ++i) {
      probes.push_back(dm::core::build_wcg(
          (i % 2 == 0 ? gen.infection(dm::synth::family_by_name("Angler"))
                      : gen.benign())
              .transactions));
      scores.push_back(driver.handle().current()->score(probes.back()));
    }
    // Driver destroyed here — an orderly "kill" after the durable commit.
  }

  // Restart with a *different* initial model: the persisted lineage wins.
  RetrainDriver driver(detector_from_seed(99), options);
  EXPECT_TRUE(driver.recovered_from_store());
  EXPECT_EQ(driver.version(), 2u) << "version counter must resume, not reset";
  EXPECT_EQ(serialize(driver.handle().current()->forest()), published);
  // The recovered incumbent reproduces the pre-kill alert set bit-exactly.
  for (std::size_t i = 0; i < probes.size(); ++i) {
    EXPECT_DOUBLE_EQ(driver.handle().current()->score(probes[i]), scores[i]);
  }
}

TEST(RetrainDriverStoreTest, ExplicitRollbackDemotesToParentContent) {
  const fs::path dir = scratch_dir("driver_rollback");
  dm::obs::MetricsRegistry reg;
  ServeOptions options;
  options.store.dir = dir.string();
  options.store.fsync = false;
  options.shadow_before_cutover = false;
  options.forest = dm::core::paper_forest_options();
  options.forest.num_trees = 5;
  options.metrics = &reg;
  options.clock = &manual_clock;

  const auto incumbent = detector_from_seed(5);
  RetrainDriver driver(incumbent, options);
  const std::string v1_bytes = serialize(driver.handle().current()->forest());
  feed_verdicts(driver, *incumbent, 8);
  ASSERT_TRUE(driver.retrain_now());
  ASSERT_EQ(driver.version(), 2u);
  ASSERT_NE(serialize(driver.handle().current()->forest()), v1_bytes);

  ASSERT_TRUE(driver.rollback_now());
  EXPECT_EQ(driver.version(), 3u) << "rollback must move the version forward";
  EXPECT_EQ(driver.rollbacks(), 1u);
  EXPECT_EQ(reg.snapshot().counter_value("dm.model.rollbacks"), 1u);
  // Content is the demoted incumbent's parent — version 1 — modulo the
  // fresh version stamp in the trailer (the served v1 forest was never
  // stamped, so compare unstamped bytes).
  auto rolled = driver.handle().current()->forest();
  EXPECT_EQ(rolled.model_version(), 3u);
  rolled.set_model_version(0);
  EXPECT_EQ(serialize(rolled), v1_bytes);
  // The demotion is itself a committed lineage edge back to version 1's
  // content, so a restart serves the rolled-back model.
  const auto manifest = driver.store()->manifest();
  ASSERT_FALSE(manifest.empty());
  EXPECT_EQ(manifest.back().version, 3u);
  EXPECT_EQ(manifest.back().parent, 1u);
  EXPECT_EQ(manifest.back().reason, "rollback");

  // Rolling back the rollback keeps descending the lineage (to version 1's
  // content again via the parent edge), never back to the demoted model.
  ASSERT_TRUE(driver.rollback_now());
  auto again = driver.handle().current()->forest();
  EXPECT_EQ(again.model_version(), 4u);
  again.set_model_version(0);
  EXPECT_EQ(serialize(again), v1_bytes);
}

TEST(RetrainDriverStoreTest, StorelessRollbackUsesTheDisplacedIncumbent) {
  ServeOptions options;
  options.shadow_before_cutover = false;
  options.forest = dm::core::paper_forest_options();
  options.forest.num_trees = 5;
  options.clock = &manual_clock;
  const auto incumbent = detector_from_seed(5);
  RetrainDriver driver(incumbent, options);
  // No published predecessor yet: nothing to demote to.
  EXPECT_FALSE(driver.rollback_now());
  const std::string v1_bytes = serialize(driver.handle().current()->forest());
  feed_verdicts(driver, *incumbent, 8);
  ASSERT_TRUE(driver.retrain_now());
  ASSERT_EQ(driver.version(), 2u);
  ASSERT_TRUE(driver.rollback_now());
  EXPECT_EQ(driver.version(), 3u);
  auto rolled = driver.handle().current()->forest();
  rolled.set_model_version(0);
  EXPECT_EQ(serialize(rolled), v1_bytes);
}

}  // namespace
}  // namespace dm::serve

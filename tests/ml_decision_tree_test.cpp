#include "ml/decision_tree.h"

#include <gtest/gtest.h>

namespace dm::ml {
namespace {

/// Linearly separable data on one feature.
Dataset separable(std::size_t n_per_class) {
  Dataset data({"x", "noise"});
  for (std::size_t i = 0; i < n_per_class; ++i) {
    data.add_row({static_cast<double>(i), 0.5}, kBenign);
    data.add_row({static_cast<double>(i) + 100.0, 0.5}, kInfection);
  }
  return data;
}

TEST(DecisionTreeTest, LearnsSeparableData) {
  const auto data = separable(20);
  dm::util::Rng rng(1);
  const auto tree = DecisionTree::train(data, {}, rng);
  EXPECT_EQ(tree.predict({5.0, 0.5}), kBenign);
  EXPECT_EQ(tree.predict({110.0, 0.5}), kInfection);
  EXPECT_LT(tree.predict_proba({0.0, 0.5}), 0.5);
  EXPECT_GT(tree.predict_proba({150.0, 0.5}), 0.5);
}

TEST(DecisionTreeTest, PureLeafOnUniformLabels) {
  Dataset data({"x"});
  for (int i = 0; i < 10; ++i) data.add_row({double(i)}, kInfection);
  dm::util::Rng rng(2);
  const auto tree = DecisionTree::train(data, {}, rng);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_DOUBLE_EQ(tree.predict_proba({3.0}), 1.0);
}

TEST(DecisionTreeTest, EmptyTrainingSetPredictsBenign) {
  Dataset data({"x"});
  dm::util::Rng rng(3);
  const auto tree = DecisionTree::train(data, {}, rng);
  EXPECT_EQ(tree.predict({1.0}), kBenign);
}

TEST(DecisionTreeTest, MaxDepthLimitsGrowth) {
  // XOR-ish data that needs depth 2; with depth 1 it cannot be pure.
  Dataset data({"x", "y"});
  for (int i = 0; i < 10; ++i) {
    data.add_row({0.0, 0.0}, kBenign);
    data.add_row({1.0, 1.0}, kBenign);
    data.add_row({0.0, 1.0}, kInfection);
    data.add_row({1.0, 0.0}, kInfection);
  }
  TreeOptions shallow;
  shallow.max_depth = 0;
  dm::util::Rng rng(4);
  const auto stump = DecisionTree::train(data, shallow, rng);
  EXPECT_EQ(stump.node_count(), 1u);

  TreeOptions deep;
  deep.max_depth = 4;
  const auto tree = DecisionTree::train(data, deep, rng);
  EXPECT_EQ(tree.predict({0.0, 1.0}), kInfection);
  EXPECT_EQ(tree.predict({1.0, 1.0}), kBenign);
}

TEST(DecisionTreeTest, MinSamplesLeafRespected) {
  Dataset data({"x"});
  data.add_row({0.0}, kBenign);
  data.add_row({1.0}, kInfection);
  TreeOptions options;
  options.min_samples_leaf = 2;  // cannot split 2 samples into leaves of 2
  dm::util::Rng rng(5);
  const auto tree = DecisionTree::train(data, options, rng);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_DOUBLE_EQ(tree.predict_proba({0.5}), 0.5);
}

TEST(DecisionTreeTest, DuplicateFeatureValuesNotSplit) {
  // All feature values identical: no valid threshold exists.
  Dataset data({"x"});
  for (int i = 0; i < 6; ++i) data.add_row({7.0}, i % 2 ? kInfection : kBenign);
  dm::util::Rng rng(6);
  const auto tree = DecisionTree::train(data, {}, rng);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_DOUBLE_EQ(tree.predict_proba({7.0}), 0.5);
}

TEST(DecisionTreeTest, TrainOnBootstrapIndices) {
  const auto data = separable(10);
  // Bootstrap with duplicates, only benign rows (even indices).
  std::vector<std::size_t> indices{0, 0, 2, 2, 4, 4};
  dm::util::Rng rng(7);
  const auto tree = DecisionTree::train(data, indices, {}, rng);
  EXPECT_DOUBLE_EQ(tree.predict_proba({0.0, 0.5}), 0.0);
}

TEST(DecisionTreeTest, FeatureSubsamplingStillLearns) {
  const auto data = separable(30);
  TreeOptions options;
  options.features_per_split = 1;
  dm::util::Rng rng(8);
  const auto tree = DecisionTree::train(data, options, rng);
  // With 2 features and 1 sampled per split, retries deeper in the tree
  // still find the informative one.
  EXPECT_EQ(tree.predict({0.0, 0.5}), kBenign);
  EXPECT_EQ(tree.predict({150.0, 0.5}), kInfection);
}

class TreeGeneralizationTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TreeGeneralizationTest, SeparableDataAlwaysLearned) {
  const auto data = separable(GetParam());
  dm::util::Rng rng(9);
  const auto tree = DecisionTree::train(data, {}, rng);
  EXPECT_EQ(tree.predict({-5.0, 0.5}), kBenign);
  EXPECT_EQ(tree.predict({500.0, 0.5}), kInfection);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TreeGeneralizationTest,
                         ::testing::Values(2, 5, 20, 100));

}  // namespace
}  // namespace dm::ml

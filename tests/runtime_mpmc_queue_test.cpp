// Bounded MPMC ring queue: capacity/backpressure, FIFO order, close
// semantics, and a multi-producer/multi-consumer integrity check (run under
// TSan via the `tsan` ctest label).
#include "runtime/mpmc_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace dm::runtime {
namespace {

TEST(MpmcRingQueueTest, FifoWithinCapacity) {
  MpmcRingQueue<int> queue(4);
  EXPECT_EQ(queue.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(queue.try_push(i));
  for (int i = 0; i < 4; ++i) {
    const auto v = queue.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(queue.try_pop().has_value());
}

TEST(MpmcRingQueueTest, TryPushFailsWhenFull) {
  MpmcRingQueue<int> queue(2);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_FALSE(queue.try_push(3));  // bounded: burst is rejected, not buffered
  EXPECT_EQ(queue.size(), 2u);
  queue.try_pop();
  EXPECT_TRUE(queue.try_push(3));  // space reopened by the consumer
}

TEST(MpmcRingQueueTest, ZeroCapacityIsClampedToOne) {
  MpmcRingQueue<int> queue(0);
  EXPECT_EQ(queue.capacity(), 1u);
  EXPECT_TRUE(queue.try_push(7));
  EXPECT_FALSE(queue.try_push(8));
}

TEST(MpmcRingQueueTest, HighwaterTracksDeepestFill) {
  MpmcRingQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) queue.try_push(i);
  for (int i = 0; i < 5; ++i) queue.try_pop();
  queue.try_push(0);
  EXPECT_EQ(queue.highwater(), 5u);
}

TEST(MpmcRingQueueTest, CloseDrainsThenSignalsTermination) {
  MpmcRingQueue<int> queue(4);
  queue.try_push(1);
  queue.try_push(2);
  queue.close();
  EXPECT_FALSE(queue.try_push(3));  // closed: rejects producers...
  EXPECT_EQ(queue.pop(), 1);       // ...but drains queued items
  EXPECT_EQ(queue.pop(), 2);
  EXPECT_FALSE(queue.pop().has_value());  // closed + drained -> terminate
}

TEST(MpmcRingQueueTest, BlockedProducerUnblocksOnPop) {
  MpmcRingQueue<int> queue(1);
  ASSERT_TRUE(queue.try_push(0));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.push(1));  // blocks until the consumer makes room
    pushed.store(true);
  });
  EXPECT_EQ(queue.pop(), 0);
  EXPECT_EQ(queue.pop(), 1);  // the blocked push landed
  producer.join();
  EXPECT_TRUE(pushed.load());
}

TEST(MpmcRingQueueTest, BlockedProducerUnblocksOnClose) {
  MpmcRingQueue<int> queue(1);
  ASSERT_TRUE(queue.try_push(0));
  std::thread producer([&] {
    EXPECT_FALSE(queue.push(1));  // wakes on close, reports rejection
  });
  queue.close();
  producer.join();
}

TEST(MpmcRingQueueTest, ManyProducersManyConsumersLoseNothing) {
  // 4 producers push disjoint ranges through a deliberately tiny ring while
  // 4 consumers drain; every value must arrive exactly once.
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2000;
  MpmcRingQueue<int> queue(16);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.push(p * kPerProducer + i));
      }
    });
  }

  std::vector<std::vector<int>> received(kConsumers);
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&, c] {
      while (auto v = queue.pop()) received[c].push_back(*v);
    });
  }

  for (auto& t : producers) t.join();
  queue.close();
  for (auto& t : consumers) t.join();

  std::vector<int> all;
  for (const auto& r : received) all.insert(all.end(), r.begin(), r.end());
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kProducers * kPerProducer));
  std::sort(all.begin(), all.end());
  std::vector<int> expected(kProducers * kPerProducer);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(all, expected);
  EXPECT_GE(queue.highwater(), 1u);
  EXPECT_LE(queue.highwater(), queue.capacity());
}

}  // namespace
}  // namespace dm::runtime

#include "graph/centrality.h"

#include <gtest/gtest.h>

#include <numeric>

namespace dm::graph {
namespace {

Adjacency undirected(std::size_t n,
                     std::initializer_list<std::pair<NodeId, NodeId>> edges) {
  Adjacency adj(n);
  for (auto [u, v] : edges) {
    adj[u].push_back(v);
    adj[v].push_back(u);
  }
  for (auto& nbrs : adj) std::sort(nbrs.begin(), nbrs.end());
  return adj;
}

Adjacency star(std::size_t leaves) {
  Adjacency adj(leaves + 1);
  for (NodeId leaf = 1; leaf <= leaves; ++leaf) {
    adj[0].push_back(leaf);
    adj[leaf].push_back(0);
  }
  return adj;
}

TEST(DegreeCentralityTest, Star) {
  const auto c = degree_centrality(star(4));
  EXPECT_DOUBLE_EQ(c[0], 1.0);  // hub connects to all 4 of n-1 = 4
  for (NodeId leaf = 1; leaf <= 4; ++leaf) EXPECT_DOUBLE_EQ(c[leaf], 0.25);
}

TEST(DegreeCentralityTest, TinyGraphsAreZero) {
  EXPECT_TRUE(degree_centrality(Adjacency{}).empty());
  EXPECT_EQ(degree_centrality(Adjacency(1))[0], 0.0);
}

TEST(ClosenessCentralityTest, PathGraphCenterHighest) {
  const auto adj = undirected(3, {{0, 1}, {1, 2}});
  const auto c = closeness_centrality(adj);
  // Middle node: distances {1,1}; C = 2/2 = 1. Ends: {1,2}; C = 2/3.
  EXPECT_DOUBLE_EQ(c[1], 1.0);
  EXPECT_NEAR(c[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(c[2], 2.0 / 3.0, 1e-12);
}

TEST(ClosenessCentralityTest, DisconnectedUsesWassermanFaust) {
  Adjacency adj(4);
  adj[0].push_back(1);
  adj[1].push_back(0);
  // nodes 2, 3 isolated
  const auto c = closeness_centrality(adj);
  // Node 0 reaches one node at distance 1: C = (1/1) * (1/3).
  EXPECT_NEAR(c[0], 1.0 / 3.0, 1e-12);
  EXPECT_EQ(c[2], 0.0);
}

TEST(BetweennessCentralityTest, PathGraphMiddle) {
  const auto adj = undirected(3, {{0, 1}, {1, 2}});
  const auto bc = betweenness_centrality(adj);
  // Only the 0-2 pair routes through 1; normalized by (n-1)(n-2) = 2
  // with both orderings counted -> 1.0.
  EXPECT_DOUBLE_EQ(bc[1], 1.0);
  EXPECT_DOUBLE_EQ(bc[0], 0.0);
  EXPECT_DOUBLE_EQ(bc[2], 0.0);
}

TEST(BetweennessCentralityTest, StarHub) {
  const auto bc = betweenness_centrality(star(4));
  EXPECT_DOUBLE_EQ(bc[0], 1.0);  // all leaf pairs route via hub
  for (NodeId leaf = 1; leaf <= 4; ++leaf) EXPECT_DOUBLE_EQ(bc[leaf], 0.0);
}

TEST(BetweennessCentralityTest, CycleSplitsEvenly) {
  const auto adj = undirected(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  const auto bc = betweenness_centrality(adj);
  // Symmetric graph: all nodes equal; opposite pairs have two equal paths.
  for (NodeId v = 0; v < 4; ++v) EXPECT_NEAR(bc[v], bc[0], 1e-12);
  EXPECT_GT(bc[0], 0.0);
}

TEST(BetweennessCentralityTest, TinyGraphZero) {
  const auto bc = betweenness_centrality(undirected(2, {{0, 1}}));
  EXPECT_DOUBLE_EQ(bc[0], 0.0);
  EXPECT_DOUBLE_EQ(bc[1], 0.0);
}

TEST(LoadCentralityTest, MatchesBetweennessOnTrees) {
  // On a tree all shortest paths are unique, so load == betweenness.
  const auto adj = undirected(6, {{0, 1}, {1, 2}, {1, 3}, {3, 4}, {3, 5}});
  const auto lc = load_centrality(adj);
  const auto bc = betweenness_centrality(adj);
  for (NodeId v = 0; v < 6; ++v) EXPECT_NEAR(lc[v], bc[v], 1e-9) << "node " << v;
}

TEST(LoadCentralityTest, StarHub) {
  const auto lc = load_centrality(star(5));
  EXPECT_NEAR(lc[0], 1.0, 1e-12);
  for (NodeId leaf = 1; leaf <= 5; ++leaf) EXPECT_NEAR(lc[leaf], 0.0, 1e-12);
}

TEST(LoadCentralityTest, NonNegative) {
  const auto adj =
      undirected(5, {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 4}, {3, 4}});
  for (double x : load_centrality(adj)) EXPECT_GE(x, 0.0);
}

class CentralityNormalizationTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CentralityNormalizationTest, BetweennessBoundedByOne) {
  // Star hubs achieve the maximum normalized betweenness of exactly 1.
  const auto bc = betweenness_centrality(star(GetParam()));
  EXPECT_NEAR(bc[0], 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(StarSizes, CentralityNormalizationTest,
                         ::testing::Values(2, 3, 5, 8, 13, 21));

}  // namespace
}  // namespace dm::graph

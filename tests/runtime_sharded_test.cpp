// The sharded runtime's correctness invariant: on the same time-ordered
// trace, the ShardedOnlineEngine must produce an alert set IDENTICAL to the
// sequential core::OnlineDetector — same session keys, timestamps, scores,
// triggers — at any shard count.  Client-sharding plus the detector's
// pure-function session semantics (per-client keys, lazy idle-liveness) is
// what makes this hold; this test is the regression fence around both.
// Runs under ThreadSanitizer via the `tsan` ctest label.
#include "runtime/sharded_online.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "core/trainer.h"
#include "http/transaction_stream.h"
#include "runtime/parallel_ingest.h"
#include "synth/dataset.h"
#include "synth/pcap_export.h"

namespace dm::runtime {
namespace {

using dm::core::Alert;
using dm::core::OnlineOptions;
using dm::http::HttpTransaction;

std::shared_ptr<const dm::core::Detector> shared_detector() {
  static const auto detector = [] {
    const auto gt = dm::synth::generate_ground_truth(100, 0.06);
    std::vector<dm::core::Wcg> infections;
    std::vector<dm::core::Wcg> benign;
    for (const auto& e : gt.infections) {
      infections.push_back(dm::core::build_wcg(e.transactions));
    }
    for (const auto& e : gt.benign) {
      benign.push_back(dm::core::build_wcg(e.transactions));
    }
    return std::make_shared<const dm::core::Detector>(dm::core::train_dynaminer(
        dm::core::dataset_from_wcgs(infections, benign), 5));
  }();
  return detector;
}

OnlineOptions online_options() {
  OnlineOptions options;
  options.redirect_chain_threshold = 2;
  return options;
}

/// Interleaved mixed trace: episodes rebased onto a common clock with
/// staggered starts so many clients are concurrently active (the workload
/// shape sharding exists for).
std::vector<HttpTransaction> mixed_trace(std::uint64_t seed,
                                         int benign_episodes,
                                         int infection_episodes) {
  dm::synth::TraceGenerator gen(seed);
  std::vector<dm::synth::Episode> episodes;
  for (int i = 0; i < benign_episodes; ++i) episodes.push_back(gen.benign());
  const auto& families = dm::synth::exploit_kit_families();
  for (int i = 0; i < infection_episodes; ++i) {
    episodes.push_back(
        gen.infection(families[static_cast<std::size_t>(i) % families.size()]));
  }

  std::vector<HttpTransaction> stream;
  constexpr std::uint64_t kStaggerMicros = 400'000;  // 0.4 s between starts
  std::uint64_t start = 1'500'000'000ULL * 1'000'000;
  for (auto& episode : episodes) {
    if (episode.transactions.empty()) continue;
    const std::uint64_t base = episode.transactions.front().request.ts_micros;
    for (auto& txn : episode.transactions) {
      txn.request.ts_micros = txn.request.ts_micros - base + start;
      if (txn.response) {
        txn.response->ts_micros = txn.response->ts_micros - base + start;
      }
      stream.push_back(std::move(txn));
    }
    start += kStaggerMicros;
  }
  std::stable_sort(stream.begin(), stream.end(),
                   [](const HttpTransaction& a, const HttpTransaction& b) {
                     return a.request.ts_micros < b.request.ts_micros;
                   });
  return stream;
}

/// Comparable projection of an alert (scores compared bit-exactly: both
/// engines query the very same forest on the very same WCGs).
using AlertKey = std::tuple<std::uint64_t, std::string, std::string, double,
                            std::string, std::size_t, std::size_t>;

AlertKey key_of(const Alert& alert) {
  return {alert.ts_micros, alert.session_key, alert.client,     alert.score,
          alert.trigger_host, alert.wcg_order, alert.wcg_size};
}

std::vector<AlertKey> sorted_keys(const std::vector<Alert>& alerts) {
  std::vector<AlertKey> keys;
  keys.reserve(alerts.size());
  for (const auto& alert : alerts) keys.push_back(key_of(alert));
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::vector<Alert> run_sequential(const std::vector<HttpTransaction>& stream) {
  dm::core::OnlineDetector sequential(shared_detector(), online_options());
  for (const auto& txn : stream) sequential.observe(txn);
  return sequential.alerts();
}

TEST(ShardedOnlineEngineTest, ShardAssignmentIsAPureFunctionOfTheClient) {
  HttpTransaction txn;
  txn.client_host = "10.1.2.3";
  txn.server_host = "a.example";
  const std::size_t shard = ShardedOnlineEngine::shard_of(txn, 8);
  EXPECT_LT(shard, 8u);
  txn.server_host = "b.example";  // server must not matter
  txn.request.uri = "/other";
  EXPECT_EQ(ShardedOnlineEngine::shard_of(txn, 8), shard);
  EXPECT_EQ(ShardedOnlineEngine::shard_of(txn, 1), 0u);
}

TEST(ShardedOnlineEngineTest, AlertSetsIdenticalAcross1_2_8Shards) {
  const auto stream = mixed_trace(/*seed=*/777, /*benign=*/60, /*infections=*/10);
  ASSERT_GT(stream.size(), 500u);
  const auto expected = sorted_keys(run_sequential(stream));
  ASSERT_FALSE(expected.empty()) << "trace produced no alerts; test is vacuous";

  for (const std::size_t shards : {1u, 2u, 8u}) {
    ShardedOptions options;
    options.num_shards = shards;
    options.batch_size = 16;
    options.queue_capacity = 32;
    options.online = online_options();
    ShardedOnlineEngine engine(shared_detector(), options);
    for (const auto& txn : stream) engine.observe(txn);
    engine.finish();
    EXPECT_EQ(sorted_keys(engine.merged_alerts()), expected)
        << "alert set diverged at " << shards << " shard(s)";
    EXPECT_EQ(engine.runtime_stats().transactions_in, stream.size());
    EXPECT_EQ(engine.runtime_stats().transactions_out, stream.size());
    EXPECT_EQ(engine.aggregated_stats().transactions_seen, stream.size());
  }
}

TEST(ShardedOnlineEngineTest, MergedAlertsAreTimeOrdered) {
  const auto stream = mixed_trace(/*seed=*/778, /*benign=*/40, /*infections=*/8);
  ShardedOptions options;
  options.num_shards = 4;
  options.online = online_options();
  ShardedOnlineEngine engine(shared_detector(), options);
  for (const auto& txn : stream) engine.observe(txn);
  engine.finish();
  const auto alerts = engine.merged_alerts();
  for (std::size_t i = 1; i < alerts.size(); ++i) {
    EXPECT_LE(alerts[i - 1].ts_micros, alerts[i].ts_micros);
  }
}

TEST(ShardedOnlineEngineTest, StatsAccountForEveryTransaction) {
  const auto stream = mixed_trace(/*seed=*/779, /*benign=*/30, /*infections=*/4);
  ShardedOptions options;
  options.num_shards = 4;
  options.batch_size = 8;
  options.online = online_options();
  ShardedOnlineEngine engine(shared_detector(), options);
  for (const auto& txn : stream) engine.observe(txn);
  engine.finish();
  const auto snap = engine.runtime_stats();
  EXPECT_EQ(snap.transactions_in, stream.size());
  EXPECT_EQ(snap.transactions_out, stream.size());
  EXPECT_GE(snap.batches_dispatched,
            stream.size() / options.batch_size);  // partial batches flush too
  EXPECT_GE(snap.queue_highwater, 1u);
  EXPECT_LE(snap.queue_highwater, options.queue_capacity);
  ASSERT_EQ(snap.per_shard_transactions.size(), 4u);
  std::uint64_t across_shards = 0;
  for (const auto n : snap.per_shard_transactions) across_shards += n;
  EXPECT_EQ(across_shards, stream.size());
}

TEST(ShardedOnlineEngineTest, FinishIsIdempotentAndImpliedByDestructor) {
  ShardedOptions options;
  options.num_shards = 2;
  options.online = online_options();
  ShardedOnlineEngine engine(shared_detector(), options);
  const auto stream = mixed_trace(/*seed=*/780, /*benign=*/5, /*infections=*/1);
  for (const auto& txn : stream) engine.observe(txn);
  engine.finish();
  engine.finish();  // idempotent
  EXPECT_EQ(engine.runtime_stats().transactions_out, stream.size());
  // Post-finish observe is a caller bug: counted (and asserting in debug
  // builds) — covered in fault_injection_test.
}

TEST(ParallelIngestTest, DetectTransactionsMatchesSequential) {
  const auto stream = mixed_trace(/*seed=*/781, /*benign=*/40, /*infections=*/8);
  const auto expected = sorted_keys(run_sequential(stream));
  ShardedOptions options;
  options.num_shards = 4;
  options.online = online_options();
  const auto result = detect_transactions(stream, shared_detector(), options);
  EXPECT_EQ(result.transactions, stream.size());
  EXPECT_EQ(sorted_keys(result.alerts), expected);
  EXPECT_EQ(result.online.transactions_seen, stream.size());
}

TEST(ParallelIngestTest, PcapFilesRoundTripThroughShardedDetection) {
  // Episodes -> real pcap files -> parallel Stage-1 reconstruction ->
  // sharded Stage-2; the infection episodes must still raise alerts.
  dm::synth::TraceGenerator gen(900);
  const auto dir = std::filesystem::temp_directory_path() / "dm_runtime_ingest";
  std::filesystem::create_directories(dir);
  std::vector<std::string> paths;
  int episode_index = 0;
  auto write_episode = [&](const dm::synth::Episode& episode) {
    const auto pcap = dm::synth::episode_to_pcap(episode);
    const auto path = dir / ("episode" + std::to_string(episode_index++) + ".pcap");
    dm::net::write_pcap_file(path.string(), pcap);
    paths.push_back(path.string());
  };
  for (int i = 0; i < 4; ++i) write_episode(gen.benign());
  write_episode(gen.infection(dm::synth::family_by_name("Angler")));
  write_episode(gen.infection(dm::synth::family_by_name("Neutrino")));

  IngestOptions options;
  options.sharded.num_shards = 4;
  options.sharded.online = online_options();
  options.ingest_workers = 3;
  const auto result = detect_pcap_files(paths, shared_detector(), options);
  EXPECT_GT(result.transactions, 0u);
  EXPECT_EQ(result.online.transactions_seen, result.transactions);

  // Reference: the same captures through the sequential path.
  std::vector<HttpTransaction> merged;
  for (const auto& path : paths) {
    auto txns = dm::http::transactions_from_pcap_file(path);
    merged.insert(merged.end(), std::make_move_iterator(txns.begin()),
                  std::make_move_iterator(txns.end()));
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const HttpTransaction& a, const HttpTransaction& b) {
                     return a.request.ts_micros < b.request.ts_micros;
                   });
  EXPECT_EQ(sorted_keys(result.alerts), sorted_keys(run_sequential(merged)));

  std::filesystem::remove_all(dir);
}

TEST(ParallelIngestTest, MissingPcapFileReportsAnError) {
  IngestOptions options;
  options.sharded.num_shards = 2;
  EXPECT_THROW(
      detect_pcap_files({"/nonexistent/never.pcap"}, shared_detector(), options),
      std::runtime_error);
}

}  // namespace
}  // namespace dm::runtime

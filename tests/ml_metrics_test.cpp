#include "ml/metrics.h"

#include <gtest/gtest.h>

#include "ml/dataset.h"

namespace dm::ml {
namespace {

TEST(ConfusionTest, RatesFromCounts) {
  Confusion c;
  c.true_positives = 90;
  c.false_negatives = 10;
  c.true_negatives = 95;
  c.false_positives = 5;
  EXPECT_DOUBLE_EQ(c.tpr(), 0.9);
  EXPECT_DOUBLE_EQ(c.fpr(), 0.05);
  EXPECT_NEAR(c.precision(), 90.0 / 95.0, 1e-12);
  EXPECT_DOUBLE_EQ(c.accuracy(), 185.0 / 200.0);
  const double p = 90.0 / 95.0;
  const double r = 0.9;
  EXPECT_NEAR(c.f_score(), 2 * p * r / (p + r), 1e-12);
}

TEST(ConfusionTest, EmptyIsZero) {
  Confusion c;
  EXPECT_EQ(c.tpr(), 0.0);
  EXPECT_EQ(c.fpr(), 0.0);
  EXPECT_EQ(c.precision(), 0.0);
  EXPECT_EQ(c.accuracy(), 0.0);
  EXPECT_EQ(c.f_score(), 0.0);
}

TEST(ConfusionFromTest, CountsCorrectly) {
  const std::vector<int> labels{1, 1, 0, 0, 1, 0};
  const std::vector<int> preds{1, 0, 0, 1, 1, 0};
  const auto c = confusion_from(labels, preds);
  EXPECT_EQ(c.true_positives, 2u);
  EXPECT_EQ(c.false_negatives, 1u);
  EXPECT_EQ(c.false_positives, 1u);
  EXPECT_EQ(c.true_negatives, 2u);
}

TEST(ConfusionFromTest, SizeMismatchThrows) {
  const std::vector<int> labels{1, 0};
  const std::vector<int> preds{1};
  EXPECT_THROW(confusion_from(labels, preds), std::invalid_argument);
}

TEST(RocTest, PerfectSeparationAucOne) {
  const std::vector<int> labels{1, 1, 1, 0, 0, 0};
  const std::vector<double> scores{0.9, 0.8, 0.7, 0.3, 0.2, 0.1};
  EXPECT_DOUBLE_EQ(roc_auc(labels, scores), 1.0);
}

TEST(RocTest, ReversedScoresAucZero) {
  const std::vector<int> labels{1, 1, 0, 0};
  const std::vector<double> scores{0.1, 0.2, 0.8, 0.9};
  EXPECT_DOUBLE_EQ(roc_auc(labels, scores), 0.0);
}

TEST(RocTest, RandomScoresNearHalf) {
  // All scores identical: single operating point -> AUC exactly 0.5.
  const std::vector<int> labels{1, 0, 1, 0};
  const std::vector<double> scores{0.5, 0.5, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(roc_auc(labels, scores), 0.5);
}

TEST(RocTest, DegenerateSingleClass) {
  const std::vector<int> labels{1, 1};
  const std::vector<double> scores{0.2, 0.9};
  EXPECT_DOUBLE_EQ(roc_auc(labels, scores), 0.5);
}

TEST(RocTest, CurveMonotonicAndAnchored) {
  const std::vector<int> labels{1, 0, 1, 0, 1, 0, 1, 1};
  const std::vector<double> scores{0.9, 0.8, 0.75, 0.7, 0.6, 0.3, 0.2, 0.1};
  const auto curve = roc_curve(labels, scores);
  ASSERT_GE(curve.size(), 2u);
  EXPECT_EQ(curve.front().fpr, 0.0);
  EXPECT_EQ(curve.front().tpr, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().fpr, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().tpr, 1.0);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].fpr, curve[i - 1].fpr);
    EXPECT_GE(curve[i].tpr, curve[i - 1].tpr);
  }
}

TEST(RocTest, TiedScoresGroupedIntoOnePoint) {
  const std::vector<int> labels{1, 0, 1, 0};
  const std::vector<double> scores{0.7, 0.7, 0.7, 0.2};
  const auto curve = roc_curve(labels, scores);
  // Points: anchor, the 0.7 block, the 0.2 block.
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_DOUBLE_EQ(curve[1].tpr, 1.0);
  EXPECT_DOUBLE_EQ(curve[1].fpr, 0.5);
}

TEST(RocTest, KnownPartialAuc) {
  // One inversion among four samples.
  const std::vector<int> labels{1, 0, 1, 0};
  const std::vector<double> scores{0.9, 0.8, 0.7, 0.1};
  // Rank order: 1, 0, 1, 0 -> AUC = 0.75.
  EXPECT_DOUBLE_EQ(roc_auc(labels, scores), 0.75);
}

}  // namespace
}  // namespace dm::ml

#include "net/tcp_reassembly.h"

#include <gtest/gtest.h>

namespace dm::net {
namespace {

ParsedPacket data_packet(Ipv4Address src, std::uint16_t sport, Ipv4Address dst,
                         std::uint16_t dport, std::uint32_t seq,
                         std::string_view payload, TcpFlags flags = {.ack = true}) {
  ParsedPacket pkt;
  pkt.src_ip = src;
  pkt.dst_ip = dst;
  pkt.src_port = sport;
  pkt.dst_port = dport;
  pkt.seq = seq;
  pkt.flags = flags;
  pkt.payload = std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(payload.data()), payload.size());
  return pkt;
}

const Ipv4Address kClient = Ipv4Address::from_octets(10, 0, 0, 2);
const Ipv4Address kServer = Ipv4Address::from_octets(93, 184, 216, 34);

TEST(FlowKeyTest, CanonicalOrderIndependent) {
  const auto a = FlowKey::canonical(kClient, 40000, kServer, 80);
  const auto b = FlowKey::canonical(kServer, 80, kClient, 40000);
  EXPECT_EQ(a, b);
  EXPECT_EQ(FlowKeyHash{}(a), FlowKeyHash{}(b));
}

TEST(TcpReassemblyTest, InOrderDelivery) {
  TcpReassembler r;
  r.ingest(data_packet(kClient, 40000, kServer, 80, 100, "", {.syn = true}), 1);
  r.ingest(data_packet(kClient, 40000, kServer, 80, 101, "hello "), 2);
  r.ingest(data_packet(kClient, 40000, kServer, 80, 107, "world"), 3);
  const auto flows = r.flows();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0]->client_to_server.data, "hello world");
  EXPECT_TRUE(flows[0]->saw_syn);
  EXPECT_EQ(flows[0]->client_ip, kClient);
}

TEST(TcpReassemblyTest, OutOfOrderReordered) {
  TcpReassembler r;
  r.ingest(data_packet(kClient, 40000, kServer, 80, 100, "", {.syn = true}), 1);
  r.ingest(data_packet(kClient, 40000, kServer, 80, 107, "world"), 2);  // early
  r.ingest(data_packet(kClient, 40000, kServer, 80, 101, "hello "), 3);
  EXPECT_EQ(r.flows()[0]->client_to_server.data, "hello world");
}

TEST(TcpReassemblyTest, DuplicateSegmentsIgnored) {
  TcpReassembler r;
  r.ingest(data_packet(kClient, 40000, kServer, 80, 100, "", {.syn = true}), 1);
  r.ingest(data_packet(kClient, 40000, kServer, 80, 101, "abc"), 2);
  r.ingest(data_packet(kClient, 40000, kServer, 80, 101, "abc"), 3);  // retransmit
  EXPECT_EQ(r.flows()[0]->client_to_server.data, "abc");
}

TEST(TcpReassemblyTest, OverlappingSegmentTrimmed) {
  TcpReassembler r;
  r.ingest(data_packet(kClient, 40000, kServer, 80, 100, "", {.syn = true}), 1);
  r.ingest(data_packet(kClient, 40000, kServer, 80, 101, "abcdef"), 2);
  // Overlaps last 3 bytes, extends 3 more.
  r.ingest(data_packet(kClient, 40000, kServer, 80, 104, "defghi"), 3);
  EXPECT_EQ(r.flows()[0]->client_to_server.data, "abcdefghi");
}

TEST(TcpReassemblyTest, BothDirectionsSeparate) {
  TcpReassembler r;
  r.ingest(data_packet(kClient, 40000, kServer, 80, 100, "", {.syn = true}), 1);
  r.ingest(data_packet(kServer, 80, kClient, 40000, 500, "",
                       {.syn = true, .ack = true}),
           2);
  r.ingest(data_packet(kClient, 40000, kServer, 80, 101, "request"), 3);
  r.ingest(data_packet(kServer, 80, kClient, 40000, 501, "response"), 4);
  const auto* flow = r.flows()[0];
  EXPECT_EQ(flow->client_to_server.data, "request");
  EXPECT_EQ(flow->server_to_client.data, "response");
}

TEST(TcpReassemblyTest, MultipleFlowsTrackedInOrder) {
  TcpReassembler r;
  const auto server2 = Ipv4Address::from_octets(1, 2, 3, 4);
  r.ingest(data_packet(kClient, 40000, kServer, 80, 100, "", {.syn = true}), 1);
  r.ingest(data_packet(kClient, 40001, server2, 80, 200, "", {.syn = true}), 2);
  r.ingest(data_packet(kClient, 40001, server2, 80, 201, "bbb"), 3);
  r.ingest(data_packet(kClient, 40000, kServer, 80, 101, "aaa"), 4);
  const auto flows = r.flows();
  ASSERT_EQ(flows.size(), 2u);
  EXPECT_EQ(flows[0]->client_to_server.data, "aaa");
  EXPECT_EQ(flows[1]->client_to_server.data, "bbb");
}

TEST(TcpReassemblyTest, FinMarksClosed) {
  TcpReassembler r;
  r.ingest(data_packet(kClient, 40000, kServer, 80, 100, "", {.syn = true}), 1);
  EXPECT_FALSE(r.flows()[0]->closed);
  r.ingest(data_packet(kClient, 40000, kServer, 80, 101, "",
                       {.ack = true, .fin = true}),
           2);
  EXPECT_TRUE(r.flows()[0]->closed);
}

TEST(TcpReassemblyTest, RstMarksClosed) {
  TcpReassembler r;
  r.ingest(data_packet(kClient, 40000, kServer, 80, 100, "", {.syn = true}), 1);
  r.ingest(data_packet(kClient, 40000, kServer, 80, 101, "", {.rst = true}), 2);
  EXPECT_TRUE(r.flows()[0]->closed);
}

TEST(TcpReassemblyTest, MidStreamCaptureAdoptsSequence) {
  TcpReassembler r;
  // No SYN seen: first data packet seeds the stream.
  r.ingest(data_packet(kClient, 40000, kServer, 80, 5000, "partial"), 1);
  EXPECT_EQ(r.flows()[0]->client_to_server.data, "partial");
}

TEST(TcpReassemblyTest, TimestampsTrackChunks) {
  TcpReassembler r;
  r.ingest(data_packet(kClient, 40000, kServer, 80, 100, "", {.syn = true}), 10);
  r.ingest(data_packet(kClient, 40000, kServer, 80, 101, "aaa"), 20);
  r.ingest(data_packet(kClient, 40000, kServer, 80, 104, "bbb"), 30);
  const auto& stream = r.flows()[0]->client_to_server;
  EXPECT_EQ(stream.timestamp_at(0), 20u);
  EXPECT_EQ(stream.timestamp_at(2), 20u);
  EXPECT_EQ(stream.timestamp_at(3), 30u);
  EXPECT_EQ(stream.timestamp_at(99), 0u);
}

TEST(TcpReassemblyTest, SequenceWraparound) {
  TcpReassembler r;
  const std::uint32_t near_max = 0xfffffffe;
  r.ingest(data_packet(kClient, 40000, kServer, 80, near_max, "ab"), 1);
  r.ingest(data_packet(kClient, 40000, kServer, 80, 0, "cd"), 2);  // wrapped
  EXPECT_EQ(r.flows()[0]->client_to_server.data, "abcd");
}

TEST(TcpReassemblyTest, FirstAndLastTimestamps) {
  TcpReassembler r;
  r.ingest(data_packet(kClient, 40000, kServer, 80, 100, "", {.syn = true}), 111);
  r.ingest(data_packet(kClient, 40000, kServer, 80, 101, "x"), 222);
  const auto* flow = r.flows()[0];
  EXPECT_EQ(flow->first_ts_micros, 111u);
  EXPECT_EQ(flow->last_ts_micros, 222u);
}

}  // namespace
}  // namespace dm::net

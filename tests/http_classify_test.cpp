#include "http/classify.h"

#include <gtest/gtest.h>

namespace dm::http {
namespace {

TEST(ClassifyExtensionTest, ExploitTypes) {
  EXPECT_EQ(classify_extension("exe"), PayloadType::kExe);
  EXPECT_EQ(classify_extension("dll"), PayloadType::kExe);
  EXPECT_EQ(classify_extension("dmg"), PayloadType::kExe);
  EXPECT_EQ(classify_extension("jar"), PayloadType::kJar);
  EXPECT_EQ(classify_extension("swf"), PayloadType::kSwf);
  EXPECT_EQ(classify_extension("xap"), PayloadType::kSilverlight);
  EXPECT_EQ(classify_extension("pdf"), PayloadType::kPdf);
}

TEST(ClassifyExtensionTest, CommonWebTypes) {
  EXPECT_EQ(classify_extension("html"), PayloadType::kHtml);
  EXPECT_EQ(classify_extension("php"), PayloadType::kHtml);
  EXPECT_EQ(classify_extension("js"), PayloadType::kJavaScript);
  EXPECT_EQ(classify_extension("png"), PayloadType::kImage);
  EXPECT_EQ(classify_extension("zip"), PayloadType::kArchive);
  EXPECT_EQ(classify_extension("docx"), PayloadType::kOffice);
  EXPECT_EQ(classify_extension("mp4"), PayloadType::kVideo);
  EXPECT_EQ(classify_extension(""), PayloadType::kNone);
  EXPECT_EQ(classify_extension("weirdext"), PayloadType::kOther);
}

TEST(RansomwareExtensionTest, KnownCryptoLockers) {
  EXPECT_TRUE(is_ransomware_extension("locky"));
  EXPECT_TRUE(is_ransomware_extension("cerber"));
  EXPECT_TRUE(is_ransomware_extension("CRYPT"));  // case-insensitive
  EXPECT_TRUE(is_ransomware_extension("zepto"));
  EXPECT_FALSE(is_ransomware_extension("exe"));
  EXPECT_FALSE(is_ransomware_extension("txt"));
  EXPECT_EQ(classify_extension("locky"), PayloadType::kCrypt);
}

TEST(ExploitTypeTest, PaperList) {
  EXPECT_TRUE(is_exploit_type(PayloadType::kPdf));
  EXPECT_TRUE(is_exploit_type(PayloadType::kExe));
  EXPECT_TRUE(is_exploit_type(PayloadType::kJar));
  EXPECT_TRUE(is_exploit_type(PayloadType::kSwf));
  EXPECT_TRUE(is_exploit_type(PayloadType::kSilverlight));
  EXPECT_TRUE(is_exploit_type(PayloadType::kCrypt));
  EXPECT_FALSE(is_exploit_type(PayloadType::kHtml));
  EXPECT_FALSE(is_exploit_type(PayloadType::kImage));
  EXPECT_FALSE(is_exploit_type(PayloadType::kArchive));
}

TEST(DownloadTypeTest, IncludesArchivesAndOffice) {
  EXPECT_TRUE(is_download_type(PayloadType::kArchive));
  EXPECT_TRUE(is_download_type(PayloadType::kOffice));
  EXPECT_TRUE(is_download_type(PayloadType::kExe));
  EXPECT_FALSE(is_download_type(PayloadType::kHtml));
  EXPECT_FALSE(is_download_type(PayloadType::kJavaScript));
}

TEST(ClassifyPayloadTest, ContentTypeWins) {
  EXPECT_EQ(classify_payload("text/html", "/x.exe"), PayloadType::kHtml);
  EXPECT_EQ(classify_payload("application/pdf", "/doc"), PayloadType::kPdf);
  EXPECT_EQ(classify_payload("application/x-shockwave-flash", "/f"),
            PayloadType::kSwf);
  EXPECT_EQ(classify_payload("application/java-archive", "/a"), PayloadType::kJar);
  EXPECT_EQ(classify_payload("image/png", "/pic"), PayloadType::kImage);
}

TEST(ClassifyPayloadTest, OctetStreamDefersToExtension) {
  EXPECT_EQ(classify_payload("application/octet-stream", "/payload.jar"),
            PayloadType::kJar);
  EXPECT_EQ(classify_payload("application/octet-stream", "/payload.locky"),
            PayloadType::kCrypt);
  // No extension hint: octet-stream is executable-ish.
  EXPECT_EQ(classify_payload("application/octet-stream", "/download"),
            PayloadType::kExe);
}

TEST(ClassifyPayloadTest, EmptyContentTypeUsesExtension) {
  EXPECT_EQ(classify_payload("", "/files/a.swf"), PayloadType::kSwf);
  EXPECT_EQ(classify_payload("", "/noext"), PayloadType::kNone);
}

TEST(ClassifyPayloadTest, TextPlainWithCryptoExtension) {
  EXPECT_EQ(classify_payload("text/plain", "/files/x.locky"), PayloadType::kCrypt);
  EXPECT_EQ(classify_payload("text/plain", "/readme.txt"), PayloadType::kText);
}

TEST(ClassifyPayloadTest, ContentTypeWithCharsetSuffix) {
  EXPECT_EQ(classify_payload("text/html; charset=utf-8", "/"), PayloadType::kHtml);
  EXPECT_EQ(classify_payload("application/javascript; charset=utf-8", "/a.js"),
            PayloadType::kJavaScript);
}

TEST(PayloadTypeNameTest, RoundTripNames) {
  EXPECT_EQ(payload_type_name(PayloadType::kExe), "exe");
  EXPECT_EQ(payload_type_name(PayloadType::kCrypt), "crypt");
  EXPECT_EQ(payload_type_name(PayloadType::kSilverlight), "xap");
  EXPECT_EQ(payload_type_name(PayloadType::kNone), "none");
}

}  // namespace
}  // namespace dm::http

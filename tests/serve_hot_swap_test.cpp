// RCU model hot swap: concurrent scoring during publication never observes
// a mixed forest, pinned versions move monotonically, and a no-op swap
// (publishing a structurally identical model mid-stream) leaves the sharded
// engine's alert set bit-identical.  Runs under ThreadSanitizer via the
// `tsan` ctest label.
#include "serve/model_handle.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <tuple>
#include <vector>

#include "core/online.h"
#include "core/trainer.h"
#include "runtime/sharded_online.h"
#include "serve/retrain.h"
#include "synth/dataset.h"

namespace dm::serve {
namespace {

/// Two detectors trained on the same small corpus with different ERF seeds:
/// structurally complete models that disagree numerically on most WCGs.
std::pair<std::shared_ptr<const dm::core::Detector>,
          std::shared_ptr<const dm::core::Detector>>
two_detectors() {
  static const auto detectors = [] {
    const auto gt = dm::synth::generate_ground_truth(100, 0.04);
    std::vector<dm::core::Wcg> infections;
    std::vector<dm::core::Wcg> benign;
    for (const auto& e : gt.infections) {
      infections.push_back(dm::core::build_wcg(e.transactions));
    }
    for (const auto& e : gt.benign) {
      benign.push_back(dm::core::build_wcg(e.transactions));
    }
    const auto data = dm::core::dataset_from_wcgs(infections, benign);
    return std::make_pair(
        std::make_shared<const dm::core::Detector>(
            dm::core::train_dynaminer(data, 5)),
        std::make_shared<const dm::core::Detector>(
            dm::core::train_dynaminer(data, 99)));
  }();
  return detectors;
}

/// A WCG the two detectors score differently (so a reader can tell which
/// model served its query).
dm::core::Wcg discriminating_wcg() {
  const auto [a, b] = two_detectors();
  dm::synth::TraceGenerator gen(321);
  for (int i = 0; i < 20; ++i) {
    const auto episode = gen.infection(dm::synth::family_by_name("Angler"));
    auto wcg = dm::core::build_wcg(episode.transactions);
    if (a->score(wcg) != b->score(wcg)) return wcg;
  }
  ADD_FAILURE() << "no WCG found that the two forests score differently";
  return {};
}

TEST(ModelHandleTest, StartsAtVersionOneWithInitialModel) {
  const auto [a, b] = two_detectors();
  ModelHandle handle(a);
  EXPECT_EQ(handle.version(), 1u);
  EXPECT_EQ(handle.current(), a);
  EXPECT_EQ(handle.publish(b), 2u);
  EXPECT_EQ(handle.current(), b);
  EXPECT_THROW(handle.publish(nullptr), std::invalid_argument);
}

TEST(ModelHandleTest, PinServesThePinnedModelUntilRefresh) {
  const auto [a, b] = two_detectors();
  ModelHandle handle(a);
  auto pin = handle.pin();
  EXPECT_EQ(pin.version(), 1u);
  handle.publish(b);
  // The next read observes the new version (epoch check on every get()).
  EXPECT_EQ(pin.version(), 2u);
}

// The core RCU fence: readers scoring a fixed WCG through their own Pins
// while the writer publishes A/B/A/B... must only ever observe score(A) or
// score(B) — never anything else (a torn or half-swapped model would give a
// third value) — and each reader's pinned version must be monotone.
TEST(ModelHandleTest, ConcurrentScoringDuringPublicationIsNeverMixed) {
  const auto [a, b] = two_detectors();
  const auto wcg = discriminating_wcg();
  const double score_a = a->score(wcg);
  const double score_b = b->score(wcg);
  ASSERT_NE(score_a, score_b);

  ModelHandle handle(a);
  std::atomic<bool> stop{false};
  std::atomic<int> mixed{0};
  std::atomic<int> non_monotone{0};
  constexpr int kReaders = 4;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      auto pin = handle.pin();
      std::uint64_t last_version = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const dm::core::Detector& detector = pin.get();
        const double s = detector.score(wcg);
        if (s != score_a && s != score_b) {
          mixed.fetch_add(1, std::memory_order_relaxed);
        }
        const std::uint64_t v = pin.version();
        if (v < last_version) {
          non_monotone.fetch_add(1, std::memory_order_relaxed);
        }
        last_version = v;
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    handle.publish(i % 2 == 0 ? b : a);
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  EXPECT_EQ(mixed.load(), 0) << "a reader observed a score neither forest produces";
  EXPECT_EQ(non_monotone.load(), 0) << "a pinned version moved backwards";
  EXPECT_EQ(handle.version(), 201u);
}

// ---- no-op swap alert identity on the sharded engine -----------------------

using AlertKey = std::tuple<std::uint64_t, std::string, std::string,
                            std::uint64_t, std::string, std::size_t,
                            std::size_t>;

std::vector<AlertKey> sorted_keys(const std::vector<dm::core::Alert>& alerts) {
  std::vector<AlertKey> keys;
  keys.reserve(alerts.size());
  for (const auto& alert : alerts) {
    std::uint64_t score_bits;
    static_assert(sizeof(score_bits) == sizeof(alert.score));
    std::memcpy(&score_bits, &alert.score, sizeof(score_bits));
    keys.emplace_back(alert.ts_micros, alert.session_key, alert.client,
                      score_bits, alert.trigger_host, alert.wcg_order,
                      alert.wcg_size);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::vector<dm::http::HttpTransaction> mixed_stream() {
  dm::synth::TraceGenerator gen(777);
  std::vector<dm::synth::Episode> episodes;
  for (int i = 0; i < 8; ++i) episodes.push_back(gen.benign());
  episodes.push_back(gen.infection(dm::synth::family_by_name("Angler")));
  episodes.push_back(gen.infection(dm::synth::family_by_name("Nuclear")));
  std::vector<dm::http::HttpTransaction> stream;
  for (const auto& episode : episodes) {
    for (const auto& txn : episode.transactions) stream.push_back(txn);
  }
  std::stable_sort(stream.begin(), stream.end(),
                   [](const auto& x, const auto& y) {
                     return x.request.ts_micros < y.request.ts_micros;
                   });
  return stream;
}

TEST(HotSwapTest, NoOpSwapPreservesShardedAlertSet) {
  const auto [incumbent, unused] = two_detectors();
  const auto stream = mixed_stream();

  dm::core::OnlineOptions online;
  online.redirect_chain_threshold = 2;

  // Reference: plain sharded run, no serving layer.
  std::vector<AlertKey> reference;
  {
    dm::runtime::ShardedOptions options;
    options.num_shards = 2;
    options.online = online;
    dm::runtime::ShardedOnlineEngine engine(incumbent, options);
    for (const auto& txn : stream) engine.observe(txn);
    engine.finish();
    reference = sorted_keys(engine.merged_alerts());
  }
  ASSERT_FALSE(reference.empty()) << "the stream must produce alerts for the "
                                     "fence to be meaningful";

  // Serving run: per-shard pinned scorers, and a structurally identical
  // detector published mid-stream.  Whatever instant each shard's pin
  // refreshes, every score is bit-identical — so the alert set must be too.
  RetrainDriver driver(incumbent, {});
  dm::runtime::ShardedOptions options;
  options.num_shards = 2;
  options.online = online;
  options.scorer_factory = [&driver](std::size_t) {
    return driver.make_scorer();
  };
  dm::runtime::ShardedOnlineEngine engine(incumbent, options);
  const std::size_t half = stream.size() / 2;
  for (std::size_t i = 0; i < half; ++i) engine.observe(stream[i]);
  driver.handle().publish(
      std::make_shared<const dm::core::Detector>(*incumbent));
  for (std::size_t i = half; i < stream.size(); ++i) engine.observe(stream[i]);
  engine.finish();
  EXPECT_EQ(sorted_keys(engine.merged_alerts()), reference);
  EXPECT_EQ(driver.version(), 2u);
}

}  // namespace
}  // namespace dm::serve

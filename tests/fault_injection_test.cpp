// Fault-injection harness for the decode pipeline and the concurrent
// runtime (§V-B robustness): deterministic seeded mutators corrupt valid
// captures at every layer — pcap framing, Ethernet frames, TCP segments,
// HTTP messages — and the suite asserts three properties end to end:
//
//  1. zero crashes: no mutation may throw past the decode API or tear down
//     a worker thread;
//  2. exact quarantine accounting: targeted injections are counted 1:1 in
//     util::FaultStats / ReassemblyCounters / runtime StatsSnapshot;
//  3. bounded degradation: structure-preserving mutations (duplicate
//     segments) leave the alert set bit-identical, and small lossy
//     mutations keep at least half of the clean-trace alerts.
//
// Runs in the `fault` ctest label (re-run instrumented via DM_SANITIZE).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/online.h"
#include "core/trainer.h"
#include "fault_inject.h"
#include "http/parser.h"
#include "http/transaction_stream.h"
#include "net/pcap.h"
#include "net/tcp_reassembly.h"
#include "runtime/sharded_online.h"
#include "synth/dataset.h"
#include "synth/pcap_export.h"
#include "util/fault_stats.h"

namespace dm {
namespace {

using dm::util::DecodeErrorCode;
using dm::util::FaultStats;

std::shared_ptr<const dm::core::Detector> shared_detector() {
  static const auto detector = [] {
    const auto gt = dm::synth::generate_ground_truth(80, 0.06);
    std::vector<dm::core::Wcg> infections;
    std::vector<dm::core::Wcg> benign;
    for (const auto& e : gt.infections) {
      infections.push_back(dm::core::build_wcg(e.transactions));
    }
    for (const auto& e : gt.benign) {
      benign.push_back(dm::core::build_wcg(e.transactions));
    }
    return std::make_shared<const dm::core::Detector>(dm::core::train_dynaminer(
        dm::core::dataset_from_wcgs(infections, benign), 5));
  }();
  return detector;
}

dm::core::OnlineOptions online_options() {
  dm::core::OnlineOptions options;
  options.redirect_chain_threshold = 2;
  return options;
}

std::vector<std::uint8_t> episode_bytes(std::uint64_t seed) {
  dm::synth::TraceGenerator gen(seed);
  return dm::net::write_pcap(dm::synth::episode_to_pcap(gen.benign()));
}

dm::net::PcapFile infection_capture(std::uint64_t seed,
                                    const std::string& family) {
  dm::synth::TraceGenerator gen(seed);
  return dm::synth::episode_to_pcap(
      gen.infection(dm::synth::family_by_name(family)));
}

/// Alerts a fresh sequential detector raises on one reconstructed capture.
std::vector<dm::core::Alert> alerts_of(const dm::net::PcapFile& capture,
                                       FaultStats* faults = nullptr) {
  dm::core::OnlineDetector detector(shared_detector(), online_options());
  for (auto& txn : dm::http::transactions_from_pcap(capture, faults)) {
    detector.observe(std::move(txn));
  }
  return detector.alerts();
}

// ---------------------------------------------------------------------------
// Pcap layer
// ---------------------------------------------------------------------------

TEST(PcapFaultTest, TruncatedFinalRecordSalvagesPrefixAndCountsOnce) {
  auto bytes = episode_bytes(11);
  const auto records = dm::faultinject::pcap_records(bytes);
  ASSERT_GT(records.size(), 2u);
  dm::util::Rng rng(1);
  ASSERT_EQ(dm::faultinject::truncate_final_record(bytes, rng), 1u);

  FaultStats faults;
  const auto result = dm::net::decode_pcap(bytes, {}, &faults);
  EXPECT_FALSE(result.fatal);
  EXPECT_TRUE(result.truncated_tail);
  EXPECT_EQ(result.file.packets.size(), records.size() - 1);
  ASSERT_EQ(result.errors.size(), 1u);
  EXPECT_EQ(result.errors[0].code, DecodeErrorCode::kPcapTruncatedRecord);
  EXPECT_EQ(faults.count(DecodeErrorCode::kPcapTruncatedRecord), 1u);
  EXPECT_EQ(faults.total(), 1u);

  // The legacy strict reader must salvage the same prefix, not throw.
  EXPECT_EQ(dm::net::read_pcap(bytes).packets.size(), records.size() - 1);
}

TEST(PcapFaultTest, OversizedRecordLengthQuarantinesOnceAndStops) {
  auto bytes = episode_bytes(12);
  const auto records = dm::faultinject::pcap_records(bytes);
  ASSERT_GT(records.size(), 4u);
  const std::size_t victim = records.size() / 2;
  ASSERT_EQ(dm::faultinject::oversize_record_length(bytes, victim), 1u);

  FaultStats faults;
  const auto result = dm::net::decode_pcap(bytes, {}, &faults);
  EXPECT_FALSE(result.fatal);
  // Everything before the broken length prefix is salvaged; nothing after
  // it is addressable.
  EXPECT_EQ(result.file.packets.size(), victim);
  ASSERT_EQ(result.errors.size(), 1u);
  EXPECT_EQ(result.errors[0].code, DecodeErrorCode::kPcapOversizedRecord);
  EXPECT_EQ(faults.count(DecodeErrorCode::kPcapOversizedRecord), 1u);
}

TEST(PcapFaultTest, CutRecordHeaderTailIsOneTruncationFault) {
  auto bytes = episode_bytes(13);
  const auto records = dm::faultinject::pcap_records(bytes);
  dm::util::Rng rng(2);
  ASSERT_EQ(dm::faultinject::cut_record_header(bytes, rng), 1u);

  FaultStats faults;
  const auto result = dm::net::decode_pcap(bytes, {}, &faults);
  EXPECT_TRUE(result.truncated_tail);
  EXPECT_EQ(result.file.packets.size(), records.size());  // all salvaged
  ASSERT_EQ(result.errors.size(), 1u);
  EXPECT_EQ(result.errors[0].code, DecodeErrorCode::kPcapTruncatedRecord);
  EXPECT_EQ(faults.total(), 1u);
}

TEST(PcapFaultTest, QuarantinedRecordsRoundTripAsForensicCapture) {
  auto bytes = episode_bytes(14);
  dm::util::Rng rng(3);
  ASSERT_EQ(dm::faultinject::truncate_final_record(bytes, rng), 1u);

  dm::net::PcapDecodeOptions options;
  options.keep_quarantined = true;
  const auto result = dm::net::decode_pcap(bytes, options);
  ASSERT_EQ(result.quarantined.size(), 1u);

  // The forensic dump re-wraps the quarantined bytes into a capture of its
  // own that decodes cleanly.
  const auto dump = dm::net::write_pcap(dm::net::quarantine_capture(result));
  const auto redecoded = dm::net::decode_pcap(dump);
  EXPECT_TRUE(redecoded.errors.empty());
  ASSERT_EQ(redecoded.file.packets.size(), 1u);
  EXPECT_EQ(redecoded.file.packets[0].data, result.quarantined[0].data);
}

TEST(PcapFaultTest, RandomCorruptionAccountsEveryErrorInFaultStats) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    auto bytes = episode_bytes(20 + seed);
    dm::util::Rng rng(seed);
    dm::faultinject::corrupt_random_bytes(bytes, 60, rng);

    FaultStats faults;
    const auto result = dm::net::decode_pcap(bytes, {}, &faults);
    // decode_pcap never throws; every reported error is counted exactly
    // once, and salvage stays self-consistent.
    EXPECT_EQ(faults.total(), result.errors.size()) << "seed " << seed;
    for (const auto& pkt : result.file.packets) {
      EXPECT_LE(pkt.data.size(), bytes.size());
    }
  }
}

// ---------------------------------------------------------------------------
// Frame layer
// ---------------------------------------------------------------------------

TEST(FrameFaultTest, GarbledEthertypeCountsExactlyPerFrame) {
  dm::synth::TraceGenerator gen(31);
  auto capture = dm::synth::episode_to_pcap(gen.benign());
  dm::util::Rng rng(4);
  const std::size_t injected =
      dm::faultinject::garble_ethertype(capture, 3, rng);
  ASSERT_EQ(injected, 3u);

  FaultStats faults;
  const auto txns = dm::http::transactions_from_pcap(capture, &faults);
  (void)txns;
  EXPECT_EQ(faults.count(DecodeErrorCode::kFrameUndecodable), injected);
}

// ---------------------------------------------------------------------------
// TCP layer
// ---------------------------------------------------------------------------

/// Feeds a capture's decodable frames through one reassembler.
dm::net::ReassemblyCounters reassemble(const dm::net::PcapFile& capture,
                                       FaultStats* faults = nullptr) {
  dm::net::TcpReassembler reassembler{dm::net::ReassemblyOptions{}, faults};
  for (const auto& pkt : capture.packets) {
    if (const auto parsed = dm::net::parse_ethernet_ipv4_tcp(pkt.data)) {
      reassembler.ingest(*parsed, pkt.ts_micros);
    }
  }
  return reassembler.counters();
}

TEST(TcpFaultTest, DuplicateSegmentsCountExactlyAndChangeNothing) {
  dm::synth::TraceGenerator gen(41);
  const auto clean = dm::synth::episode_to_pcap(gen.benign());
  auto mutated = clean;
  dm::util::Rng rng(5);
  const std::size_t injected =
      dm::faultinject::duplicate_segments(mutated, 5, rng);
  ASSERT_EQ(injected, 5u);

  EXPECT_EQ(reassemble(mutated).duplicate_segments,
            reassemble(clean).duplicate_segments + injected);

  // Structure-preserving: the reconstructed transaction stream is identical.
  const auto clean_txns = dm::http::transactions_from_pcap(clean);
  const auto mutated_txns = dm::http::transactions_from_pcap(mutated);
  ASSERT_EQ(mutated_txns.size(), clean_txns.size());
  for (std::size_t i = 0; i < clean_txns.size(); ++i) {
    EXPECT_EQ(mutated_txns[i].request.uri, clean_txns[i].request.uri);
    EXPECT_EQ(mutated_txns[i].request.ts_micros,
              clean_txns[i].request.ts_micros);
  }
}

TEST(TcpFaultTest, OverlappingSegmentsAreCountedAndNeverCrash) {
  dm::synth::TraceGenerator gen(42);
  auto capture = dm::synth::episode_to_pcap(gen.benign());
  dm::util::Rng rng(6);
  const std::size_t injected =
      dm::faultinject::overlap_segments(capture, 3, rng);
  ASSERT_EQ(injected, 3u);

  // Each injected segment overlaps delivered data, so at least `injected`
  // overlap trims happen (its garbage tail can cascade into more).
  EXPECT_GE(reassemble(capture).overlapping_segments, injected);
  // Whatever HTTP makes of the garbage, it must not crash.
  FaultStats faults;
  const auto txns = dm::http::transactions_from_pcap(capture, &faults);
  (void)txns;
}

TEST(TcpFaultTest, PendingCapShedsGappedSegmentsWithExactAccounting) {
  dm::net::ReassemblyOptions options;
  options.max_pending_segments = 4;
  FaultStats faults;
  dm::net::TcpReassembler reassembler{options, &faults};

  const auto client = dm::net::Ipv4Address::from_octets(10, 0, 0, 2);
  const auto server = dm::net::Ipv4Address::from_octets(5, 6, 7, 8);
  dm::net::ParsedPacket syn;
  syn.src_ip = client;
  syn.dst_ip = server;
  syn.src_port = 40000;
  syn.dst_port = 80;
  syn.seq = 100;
  syn.flags = {.syn = true};
  reassembler.ingest(syn, 1);

  // Ten segments gapped past the never-sent byte at seq 101: the first four
  // wait in the pending buffer, the remaining six must be shed.
  const std::string payload = "01234567";
  for (int i = 0; i < 10; ++i) {
    dm::net::ParsedPacket pkt;
    pkt.src_ip = client;
    pkt.dst_ip = server;
    pkt.src_port = 40000;
    pkt.dst_port = 80;
    pkt.seq = 1000 + static_cast<std::uint32_t>(i) * 10;
    pkt.flags = {.ack = true};
    pkt.payload = std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(payload.data()), payload.size());
    reassembler.ingest(pkt, static_cast<std::uint64_t>(2 + i));
  }
  EXPECT_EQ(reassembler.counters().pending_dropped, 6u);
  EXPECT_EQ(faults.count(DecodeErrorCode::kTcpPendingOverflow), 6u);
}

TEST(TcpFaultTest, StreamByteCapStopsAdversarialGrowth) {
  dm::net::ReassemblyOptions options;
  options.max_stream_bytes = 64;
  FaultStats faults;
  dm::net::TcpReassembler reassembler{options, &faults};

  const auto client = dm::net::Ipv4Address::from_octets(10, 0, 0, 3);
  const auto server = dm::net::Ipv4Address::from_octets(5, 6, 7, 9);
  const std::string payload(32, 'x');
  for (int i = 0; i < 8; ++i) {
    dm::net::ParsedPacket pkt;
    pkt.src_ip = client;
    pkt.dst_ip = server;
    pkt.src_port = 41000;
    pkt.dst_port = 80;
    pkt.seq = 1 + static_cast<std::uint32_t>(i) * 32;
    pkt.flags = {.ack = true};
    pkt.payload = std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(payload.data()), payload.size());
    reassembler.ingest(pkt, static_cast<std::uint64_t>(1 + i));
  }
  ASSERT_EQ(reassembler.flows().size(), 1u);
  EXPECT_LE(reassembler.flows()[0]->client_to_server.data.size(), 64u);
  EXPECT_GT(reassembler.counters().stream_capped, 0u);
  EXPECT_EQ(faults.count(DecodeErrorCode::kTcpStreamOverflow),
            reassembler.counters().stream_capped);
}

// ---------------------------------------------------------------------------
// HTTP layer
// ---------------------------------------------------------------------------

dm::net::DirectionStream stream_of(std::string data) {
  dm::net::DirectionStream s;
  s.chunks.push_back({0, data.size(), 100});
  s.data = std::move(data);
  return s;
}

TEST(HttpFaultTest, GarbageBetweenRequestsIsQuarantinedAndResynced) {
  FaultStats faults;
  const auto result = dm::http::parse_requests_ex(
      stream_of("GET /a HTTP/1.1\r\nHost: one.example\r\n\r\n"
                "\x01\x02 utter garbage, not a request line\r\n"
                "GET /b HTTP/1.1\r\nHost: two.example\r\n\r\n"),
      &faults);
  ASSERT_EQ(result.requests.size(), 2u);
  EXPECT_EQ(result.requests[0].uri, "/a");
  EXPECT_EQ(result.requests[1].uri, "/b");
  ASSERT_FALSE(result.errors.empty());
  EXPECT_EQ(result.errors[0].code, DecodeErrorCode::kHttpBadRequestLine);
  EXPECT_EQ(faults.total(), result.errors.size());
}

TEST(HttpFaultTest, TruncatedResponseSalvagesParsedPrefix) {
  FaultStats faults;
  const auto result = dm::http::parse_responses_ex(
      stream_of("HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok"
                "HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\ncut!"),
      /*connection_closed=*/false, &faults);
  ASSERT_EQ(result.responses.size(), 1u);
  EXPECT_EQ(result.responses[0].body, "ok");
  ASSERT_EQ(result.errors.size(), 1u);
  EXPECT_EQ(result.errors[0].code, DecodeErrorCode::kHttpTruncatedMessage);
}

TEST(HttpFaultTest, BrokenChunkHeaderIsQuarantined) {
  FaultStats faults;
  const auto result = dm::http::parse_responses_ex(
      stream_of("HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
                "ZZZZ\r\nnot hex\r\n0\r\n\r\n"),
      /*connection_closed=*/true, &faults);
  EXPECT_GT(faults.count(DecodeErrorCode::kHttpBadChunk), 0u);
}

TEST(HttpFaultTest, MidStreamEofIsTruncationNotCrash) {
  dm::synth::TraceGenerator gen(51);
  const auto clean = dm::synth::episode_to_pcap(gen.benign());
  const std::size_t clean_count =
      dm::http::transactions_from_pcap(clean).size();
  ASSERT_GT(clean_count, 0u);

  auto capture = clean;
  dm::faultinject::drop_tail(capture, 0.25);
  FaultStats faults;
  const auto txns = dm::http::transactions_from_pcap(capture, &faults);
  // Connections cut mid-stream lose messages but never the parsed prefix of
  // the capture; nothing throws.
  EXPECT_LE(txns.size(), clean_count);
}

// ---------------------------------------------------------------------------
// End to end: degradation bounds
// ---------------------------------------------------------------------------

TEST(EndToEndFaultTest, DuplicateSegmentsLeaveAlertsBitIdentical) {
  const auto clean = infection_capture(61, "Angler");
  auto mutated = clean;
  dm::util::Rng rng(7);
  ASSERT_EQ(dm::faultinject::duplicate_segments(mutated, 10, rng), 10u);

  const auto clean_alerts = alerts_of(clean);
  ASSERT_FALSE(clean_alerts.empty()) << "clean trace alerts; test is vacuous";
  const auto mutated_alerts = alerts_of(mutated);
  ASSERT_EQ(mutated_alerts.size(), clean_alerts.size());
  for (std::size_t i = 0; i < clean_alerts.size(); ++i) {
    EXPECT_EQ(mutated_alerts[i].ts_micros, clean_alerts[i].ts_micros);
    EXPECT_EQ(mutated_alerts[i].score, clean_alerts[i].score);
    EXPECT_EQ(mutated_alerts[i].trigger_host, clean_alerts[i].trigger_host);
  }
}

TEST(EndToEndFaultTest, SmallFrameLossDegradesRecallBoundedly) {
  // Three infection captures; garble two frames in each.  Losing a frame
  // can cost at most the flows it belongs to, so with fixed seeds the
  // mutated pipeline must keep at least half of the clean alerts — the
  // stated degradation bound for this corpus.
  const char* families[] = {"Angler", "Neutrino", "Nuclear"};
  std::size_t clean_total = 0;
  std::size_t mutated_total = 0;
  std::uint64_t injected_total = 0;
  FaultStats faults;
  for (std::uint64_t i = 0; i < 3; ++i) {
    const auto clean = infection_capture(70 + i, families[i]);
    clean_total += alerts_of(clean).size();
    auto mutated = clean;
    dm::util::Rng rng(80 + i);
    injected_total += dm::faultinject::garble_ethertype(mutated, 2, rng);
    mutated_total += alerts_of(mutated, &faults).size();
  }
  ASSERT_GE(clean_total, 2u) << "corpus too weak to state a recall bound";
  EXPECT_EQ(faults.count(DecodeErrorCode::kFrameUndecodable), injected_total);
  EXPECT_GE(mutated_total * 2, clean_total)
      << "recall degraded past the 50% bound: " << mutated_total << "/"
      << clean_total;
}

TEST(EndToEndFaultTest, MutationMatrixNeverCrashesThePipeline) {
  // Every mutator class x several seeds, straight through decode ->
  // reassembly -> HTTP -> transactions.  The only assertion is survival
  // plus self-consistent salvage — the fuzz fence for the whole stack.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    dm::synth::TraceGenerator gen(90 + seed);
    const auto clean = dm::synth::episode_to_pcap(gen.benign());
    const auto clean_bytes = dm::net::write_pcap(clean);

    for (int mutator = 0; mutator < 6; ++mutator) {
      dm::util::Rng rng(seed * 100 + static_cast<std::uint64_t>(mutator));
      FaultStats faults;
      dm::net::PcapFile capture;
      if (mutator == 0) {  // byte corruption
        auto bytes = clean_bytes;
        dm::faultinject::corrupt_random_bytes(bytes, 80, rng);
        capture = dm::net::decode_pcap(bytes, {}, &faults).file;
      } else if (mutator == 1) {  // truncation
        auto bytes = clean_bytes;
        dm::faultinject::truncate_final_record(bytes, rng);
        capture = dm::net::decode_pcap(bytes, {}, &faults).file;
      } else {
        capture = clean;
        if (mutator == 2) dm::faultinject::reorder_records(capture, rng);
        if (mutator == 3) dm::faultinject::duplicate_segments(capture, 8, rng);
        if (mutator == 4) dm::faultinject::overlap_segments(capture, 6, rng);
        if (mutator == 5) dm::faultinject::drop_tail(capture, 0.4);
      }
      const auto txns = dm::http::transactions_from_pcap(capture, &faults);
      for (const auto& txn : txns) {
        EXPECT_FALSE(txn.client_host.empty());
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Runtime: failure isolation, overload shedding, lifecycle
// ---------------------------------------------------------------------------

std::vector<dm::http::HttpTransaction> infection_stream(std::uint64_t seed) {
  dm::synth::TraceGenerator gen(seed);
  std::vector<dm::http::HttpTransaction> stream;
  const auto& families = dm::synth::exploit_kit_families();
  for (std::size_t i = 0; i < 4; ++i) {
    auto episode = gen.infection(families[i % families.size()]);
    for (auto& txn : episode.transactions) stream.push_back(std::move(txn));
  }
  std::stable_sort(stream.begin(), stream.end(),
                   [](const dm::http::HttpTransaction& a,
                      const dm::http::HttpTransaction& b) {
                     return a.request.ts_micros < b.request.ts_micros;
                   });
  return stream;
}

TEST(RuntimeFaultTest, DetectorThrowMidStreamShutsDownCleanly) {
  const auto stream = infection_stream(101);
  ASSERT_GT(stream.size(), 20u);

  auto thrown = std::make_shared<std::atomic<std::uint64_t>>(0);
  dm::runtime::ShardedOptions options;
  options.num_shards = 4;
  options.batch_size = 8;
  options.online = online_options();
  options.observe_fault_hook = [thrown](const dm::http::HttpTransaction&) {
    static std::atomic<std::uint64_t> calls{0};
    if (calls.fetch_add(1) % 5 == 0) {
      thrown->fetch_add(1);
      throw std::runtime_error("injected detector fault");
    }
  };

  dm::runtime::ShardedOnlineEngine engine(shared_detector(), options);
  for (const auto& txn : stream) engine.observe(txn);
  engine.finish();  // must join cleanly despite mid-stream throws

  const auto snap = engine.runtime_stats();
  const std::uint64_t expected_throws = thrown->load();
  EXPECT_EQ(expected_throws, (stream.size() + 4) / 5);
  EXPECT_EQ(snap.detector_failures, expected_throws);
  EXPECT_EQ(snap.transactions_in, stream.size());
  EXPECT_EQ(snap.transactions_out, stream.size());  // failures still consumed
  ASSERT_EQ(snap.per_shard_detector_failures.size(), 4u);
  std::uint64_t across_shards = 0;
  for (const auto n : snap.per_shard_detector_failures) across_shards += n;
  EXPECT_EQ(across_shards, expected_throws);
  // Transactions that threw never reached a shard detector.
  EXPECT_EQ(engine.aggregated_stats().transactions_seen,
            stream.size() - expected_throws);
  // Alert merge still works after a faulty run.
  (void)engine.merged_alerts();
}

TEST(RuntimeFaultTest, ClassifierFaultHookQuarantinesQueriesNotTheStream) {
  const auto stream = infection_stream(102);

  // Clean baseline must alert for the comparison to mean anything.
  dm::core::OnlineDetector clean(shared_detector(), online_options());
  for (const auto& txn : stream) clean.observe(txn);
  ASSERT_GT(clean.stats().alerts, 0u);
  ASSERT_GT(clean.stats().classifier_queries, 0u);

  auto options = online_options();
  options.classifier_fault_hook = [](const dm::http::HttpTransaction&) {
    throw std::runtime_error("injected classifier fault");
  };
  dm::core::OnlineDetector faulty(shared_detector(), options);
  for (const auto& txn : stream) faulty.observe(txn);
  // Every query failed, every failure was quarantined, nothing alerted,
  // nothing crashed — and the stream was fully consumed.
  EXPECT_EQ(faulty.stats().classifier_failures,
            faulty.stats().classifier_queries);
  EXPECT_GT(faulty.stats().classifier_failures, 0u);
  EXPECT_EQ(faulty.stats().alerts, 0u);
  EXPECT_EQ(faulty.stats().transactions_seen, stream.size());
}

dm::runtime::StatsSnapshot run_with_policy(
    dm::runtime::OverloadPolicy policy, std::size_t transactions) {
  dm::runtime::ShardedOptions options;
  options.num_shards = 1;
  options.queue_capacity = 1;
  options.batch_size = 1;
  options.overload = policy;
  options.online = online_options();
  // Slow consumer: each transaction costs the worker 200us, while the
  // dispatcher produces as fast as it can — a sustained overload.
  options.observe_fault_hook = [](const dm::http::HttpTransaction&) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  };
  dm::runtime::ShardedOnlineEngine engine(shared_detector(), options);
  dm::http::HttpTransaction txn;
  txn.client_host = "10.9.9.9";
  txn.server_host = "srv.example";
  txn.request.method = "GET";
  txn.request.uri = "/";
  for (std::size_t i = 0; i < transactions; ++i) {
    txn.request.ts_micros = 1'000'000 + i;
    engine.observe(txn);
  }
  engine.finish();
  return engine.runtime_stats();
}

TEST(RuntimeFaultTest, ShedOldestObeysConservationLaw) {
  const auto snap = run_with_policy(dm::runtime::OverloadPolicy::kShedOldest, 400);
  EXPECT_EQ(snap.transactions_in, 400u);
  EXPECT_EQ(snap.transactions_in, snap.transactions_out + snap.transactions_shed);
  EXPECT_GT(snap.transactions_shed, 0u);
  EXPECT_GT(snap.batches_shed, 0u);
}

TEST(RuntimeFaultTest, ShedNewestObeysConservationLaw) {
  const auto snap = run_with_policy(dm::runtime::OverloadPolicy::kShedNewest, 400);
  EXPECT_EQ(snap.transactions_in, 400u);
  EXPECT_EQ(snap.transactions_in, snap.transactions_out + snap.transactions_shed);
  EXPECT_GT(snap.transactions_shed, 0u);
}

TEST(RuntimeFaultTest, BlockPolicyIsLosslessUnderTheSameOverload) {
  const auto snap = run_with_policy(dm::runtime::OverloadPolicy::kBlock, 200);
  EXPECT_EQ(snap.transactions_in, 200u);
  EXPECT_EQ(snap.transactions_out, 200u);
  EXPECT_EQ(snap.transactions_shed, 0u);
  EXPECT_EQ(snap.batches_shed, 0u);
}

#ifdef NDEBUG
TEST(RuntimeFaultTest, ObserveAfterFinishIsCountedNotSilent) {
  // In debug builds this asserts (caller bug); in release the drop must be
  // visible in the stats instead of vanishing.
  dm::runtime::ShardedOptions options;
  options.num_shards = 2;
  options.online = online_options();
  dm::runtime::ShardedOnlineEngine engine(shared_detector(), options);
  dm::http::HttpTransaction txn;
  txn.client_host = "10.1.1.1";
  txn.server_host = "late.example";
  engine.observe(txn);
  engine.finish();
  engine.observe(txn);
  engine.observe(txn);
  const auto snap = engine.runtime_stats();
  EXPECT_EQ(snap.dropped_after_finish, 2u);
  EXPECT_EQ(snap.transactions_in, 1u);  // post-finish drops are not "in"
}
#endif

}  // namespace
}  // namespace dm

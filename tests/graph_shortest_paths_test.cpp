#include "graph/shortest_paths.h"

#include <gtest/gtest.h>

namespace dm::graph {
namespace {

Adjacency path_graph(std::size_t n) {
  Adjacency adj(n);
  for (NodeId v = 0; v + 1 < n; ++v) {
    adj[v].push_back(v + 1);
    adj[v + 1].push_back(v);
  }
  return adj;
}

Adjacency star_graph(std::size_t leaves) {
  Adjacency adj(leaves + 1);
  for (NodeId leaf = 1; leaf <= leaves; ++leaf) {
    adj[0].push_back(leaf);
    adj[leaf].push_back(0);
  }
  return adj;
}

TEST(ShortestPathsTest, BfsDistancesOnPath) {
  const auto adj = path_graph(5);
  const auto dist = bfs_distances(adj, 0);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(dist[v], v);
}

TEST(ShortestPathsTest, BfsUnreachableMarked) {
  Adjacency adj(3);  // no edges
  const auto dist = bfs_distances(adj, 0);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], kUnreachable);
  EXPECT_EQ(dist[2], kUnreachable);
}

TEST(ShortestPathsTest, EccentricityOnPath) {
  const auto adj = path_graph(5);
  EXPECT_EQ(eccentricity(adj, 0), 4u);
  EXPECT_EQ(eccentricity(adj, 2), 2u);
}

TEST(ShortestPathsTest, EccentricityIgnoresUnreachable) {
  Adjacency adj(4);
  adj[0].push_back(1);
  adj[1].push_back(0);
  // 2, 3 isolated
  EXPECT_EQ(eccentricity(adj, 0), 1u);
  EXPECT_EQ(eccentricity(adj, 2), 0u);
}

TEST(ShortestPathsTest, DiameterOfPathAndStar) {
  EXPECT_EQ(diameter(path_graph(6)), 5u);
  EXPECT_EQ(diameter(star_graph(4)), 2u);
  EXPECT_EQ(diameter(Adjacency(1)), 0u);
  EXPECT_EQ(diameter(Adjacency{}), 0u);
}

TEST(ShortestPathsTest, ConnectedComponents) {
  Adjacency adj(5);
  adj[0].push_back(1);
  adj[1].push_back(0);
  adj[2].push_back(3);
  adj[3].push_back(2);
  const auto comps = connected_components(adj);
  EXPECT_EQ(comps.count, 3u);
  EXPECT_EQ(comps.component_of[0], comps.component_of[1]);
  EXPECT_EQ(comps.component_of[2], comps.component_of[3]);
  EXPECT_NE(comps.component_of[0], comps.component_of[2]);
  EXPECT_NE(comps.component_of[4], comps.component_of[0]);
}

TEST(ShortestPathsTest, NodesWithinRadius) {
  const auto adj = path_graph(6);
  EXPECT_EQ(nodes_within(adj, 0, 1), 1u);
  EXPECT_EQ(nodes_within(adj, 0, 2), 2u);
  EXPECT_EQ(nodes_within(adj, 2, 2), 4u);
  EXPECT_EQ(nodes_within(adj, 0, 100), 5u);
}

class PathDiameterTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PathDiameterTest, DiameterEqualsLengthMinusOne) {
  const std::size_t n = GetParam();
  EXPECT_EQ(diameter(path_graph(n)), n - 1);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PathDiameterTest,
                         ::testing::Values(2, 3, 5, 9, 17, 33));

}  // namespace
}  // namespace dm::graph

#include "util/log.h"

#include <gtest/gtest.h>

#include <iostream>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace dm::util {
namespace {

/// Restores the global level after each test.
class LogLevelGuard : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = log_level(); }
  void TearDown() override { set_log_level(previous_); }
  LogLevel previous_ = LogLevel::kWarn;
};

using LogTest = LogLevelGuard;

TEST_F(LogTest, DefaultLevelIsWarn) {
  // Can't assert the process default after other tests ran; assert the
  // setter/getter contract instead.
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
}

TEST_F(LogTest, LevelOrdering) {
  EXPECT_LT(LogLevel::kDebug, LogLevel::kInfo);
  EXPECT_LT(LogLevel::kInfo, LogLevel::kWarn);
  EXPECT_LT(LogLevel::kWarn, LogLevel::kError);
  EXPECT_LT(LogLevel::kError, LogLevel::kOff);
}

TEST_F(LogTest, SetAndGetRoundTrip) {
  for (const auto level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                           LogLevel::kError, LogLevel::kOff}) {
    set_log_level(level);
    EXPECT_EQ(log_level(), level);
  }
}

TEST_F(LogTest, SuppressedLevelsDoNotFormat) {
  // A message below the threshold must not even evaluate its formatting —
  // log_fmt checks the level before streaming.  We detect evaluation via a
  // side effect.
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  auto tracked = [&evaluations]() {
    ++evaluations;
    return "expensive";
  };
  log_debug("x", tracked());  // arguments ARE evaluated (C++ semantics)...
  EXPECT_EQ(evaluations, 1);
  // ...but emission is filtered; smoke-test that emitting at every level
  // with kOff never crashes and never throws.
  set_log_level(LogLevel::kOff);
  EXPECT_NO_THROW({
    log_debug("d");
    log_info("i");
    log_warn("w");
    log_error("e");
  });
}

TEST_F(LogTest, EmissionAtEnabledLevelDoesNotThrow) {
  set_log_level(LogLevel::kDebug);
  EXPECT_NO_THROW(log_debug("value=", 42, " pi=", 3.14));
  EXPECT_NO_THROW(log_line(LogLevel::kError, "direct line"));
}

TEST_F(LogTest, ConcurrentLoggersNeverInterleaveLines) {
  // The sharded runtime logs from a dispatcher thread plus one thread per
  // shard; every emitted line must stay intact.  Capture stderr, hammer the
  // logger from several threads, then verify each captured line is exactly
  // one well-formed "[INFO] thread=<t> seq=<s> <payload>" record.
  set_log_level(LogLevel::kInfo);
  std::ostringstream captured;
  std::streambuf* previous = std::cerr.rdbuf(captured.rdbuf());

  constexpr int kThreads = 8;
  constexpr int kLinesPerThread = 250;
  const std::string payload(64, 'x');  // long enough to expose torn writes
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([t, &payload] {
        for (int s = 0; s < kLinesPerThread; ++s) {
          log_info("thread=", t, " seq=", s, " ", payload);
        }
      });
    }
    for (auto& thread : threads) thread.join();
  }
  std::cerr.rdbuf(previous);

  const std::regex line_re("\\[INFO\\] thread=[0-7] seq=[0-9]+ x{64}");
  std::istringstream lines(captured.str());
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(std::regex_match(line, line_re)) << "torn line: " << line;
    ++count;
  }
  EXPECT_EQ(count, kThreads * kLinesPerThread);
}

}  // namespace
}  // namespace dm::util

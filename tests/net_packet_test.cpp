#include "net/packet.h"

#include <gtest/gtest.h>

#include "net/packet_builder.h"

namespace dm::net {
namespace {

TEST(Ipv4AddressTest, ParseAndFormat) {
  const auto addr = Ipv4Address::parse("192.168.1.200");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->to_string(), "192.168.1.200");
  EXPECT_EQ(addr->value, 0xc0a801c8u);
}

TEST(Ipv4AddressTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Address::parse("1.2.3").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(Ipv4Address::parse("256.1.1.1").has_value());
  EXPECT_FALSE(Ipv4Address::parse("a.b.c.d").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4x").has_value());
  EXPECT_FALSE(Ipv4Address::parse("").has_value());
}

TEST(ChecksumTest, Rfc1071Example) {
  // Canonical example: verifies complement arithmetic.
  const std::vector<std::uint8_t> data{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5,
                                       0xf6, 0xf7};
  const std::uint16_t checksum = internet_checksum(data);
  // Sum: 0x0001+0xf203+0xf4f5+0xf6f7 = 0x2ddf0 -> 0xddf2 -> ~ = 0x220d.
  EXPECT_EQ(checksum, 0x220d);
}

TEST(ChecksumTest, OddLengthPads) {
  const std::vector<std::uint8_t> data{0x01};
  EXPECT_EQ(internet_checksum(data), static_cast<std::uint16_t>(~0x0100));
}

FrameSpec basic_spec(std::span<const std::uint8_t> payload = {}) {
  FrameSpec spec;
  spec.src_ip = Ipv4Address::from_octets(10, 0, 0, 2);
  spec.dst_ip = Ipv4Address::from_octets(93, 184, 216, 34);
  spec.src_port = 40001;
  spec.dst_port = 80;
  spec.seq = 1000;
  spec.ack = 2000;
  spec.flags = {.ack = true, .psh = true};
  spec.payload = payload;
  return spec;
}

TEST(PacketRoundTripTest, BuildThenParse) {
  const std::string body = "GET / HTTP/1.1\r\nHost: x\r\n\r\n";
  const auto payload = std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(body.data()), body.size());
  const auto frame = build_frame(basic_spec(payload));
  const auto parsed = parse_ethernet_ipv4_tcp(frame);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->src_ip.to_string(), "10.0.0.2");
  EXPECT_EQ(parsed->dst_ip.to_string(), "93.184.216.34");
  EXPECT_EQ(parsed->src_port, 40001);
  EXPECT_EQ(parsed->dst_port, 80);
  EXPECT_EQ(parsed->seq, 1000u);
  EXPECT_EQ(parsed->ack, 2000u);
  EXPECT_TRUE(parsed->flags.ack);
  EXPECT_TRUE(parsed->flags.psh);
  EXPECT_FALSE(parsed->flags.syn);
  ASSERT_EQ(parsed->payload.size(), body.size());
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(parsed->payload.data()),
                        parsed->payload.size()),
            body);
}

TEST(PacketRoundTripTest, IpChecksumValid) {
  const auto frame = build_frame(basic_spec());
  // Recomputing the checksum over the IP header (with embedded checksum)
  // must yield zero.
  const auto ip_header = std::span<const std::uint8_t>(frame).subspan(14, 20);
  EXPECT_EQ(internet_checksum(ip_header), 0);
}

TEST(PacketParseTest, RejectsNonIpv4EtherType) {
  auto frame = build_frame(basic_spec());
  frame[12] = 0x86;  // IPv6 ethertype
  frame[13] = 0xdd;
  EXPECT_FALSE(parse_ethernet_ipv4_tcp(frame).has_value());
}

TEST(PacketParseTest, RejectsNonTcpProtocol) {
  auto frame = build_frame(basic_spec());
  frame[14 + 9] = 17;  // UDP
  EXPECT_FALSE(parse_ethernet_ipv4_tcp(frame).has_value());
}

TEST(PacketParseTest, RejectsTruncatedFrames) {
  const auto frame = build_frame(basic_spec());
  for (std::size_t len : {0u, 10u, 20u, 30u, 50u}) {
    if (len < frame.size()) {
      EXPECT_FALSE(parse_ethernet_ipv4_tcp(
                       std::span<const std::uint8_t>(frame.data(), len))
                       .has_value())
          << "length " << len;
    }
  }
}

TEST(PacketParseTest, RejectsNonFirstFragment) {
  auto frame = build_frame(basic_spec());
  frame[14 + 6] = 0x00;
  frame[14 + 7] = 0x10;  // fragment offset != 0
  EXPECT_FALSE(parse_ethernet_ipv4_tcp(frame).has_value());
}

TEST(PacketParseTest, SynFlagRoundTrip) {
  FrameSpec spec = basic_spec();
  spec.flags = {.syn = true};
  const auto parsed = parse_ethernet_ipv4_tcp(build_frame(spec));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->flags.syn);
  EXPECT_FALSE(parsed->flags.ack);
}

}  // namespace
}  // namespace dm::net

// Deterministic fault injectors for the robustness suite.  Every mutator
// takes an explicit util::Rng (or is fully deterministic) and returns the
// number of faults it injected, so tests can assert quarantine accounting
// exactly: counters must equal injected counts, not merely be non-zero.
//
// Two families:
//  * byte-level mutators over serialized pcap bytes (pcap-layer faults:
//    corruption, truncation, broken length prefixes, cut record headers),
//  * frame-level mutators over a decoded net::PcapFile (frame/TCP-layer
//    faults: undecodable ethertype, duplicate and overlapping segments,
//    record reorder, mid-stream EOF).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/packet.h"
#include "net/pcap.h"
#include "util/rng.h"

namespace dm::faultinject {

// ---------------------------------------------------------------------------
// Byte-level mutators (operate on write_pcap() output: LE, usec magic).
// ---------------------------------------------------------------------------

struct RecordSpan {
  std::size_t header_offset = 0;  // offset of the 16-byte record header
  std::size_t incl_len = 0;       // captured payload length
};

/// Walks the record headers of a well-formed little-endian capture.
inline std::vector<RecordSpan> pcap_records(
    const std::vector<std::uint8_t>& bytes) {
  std::vector<RecordSpan> records;
  std::size_t at = 24;  // global header
  while (at + 16 <= bytes.size()) {
    const std::size_t incl_len =
        static_cast<std::size_t>(bytes[at + 8]) |
        static_cast<std::size_t>(bytes[at + 9]) << 8 |
        static_cast<std::size_t>(bytes[at + 10]) << 16 |
        static_cast<std::size_t>(bytes[at + 11]) << 24;
    if (at + 16 + incl_len > bytes.size()) break;
    records.push_back({at, incl_len});
    at += 16 + incl_len;
  }
  return records;
}

/// Flips `count` random bytes anywhere past the global header.  Returns the
/// number of bytes flipped (faults *injected*, not faults that will be
/// *detected* — random body corruption may land in payload bytes the pcap
/// layer has no checksum to notice).
inline std::size_t corrupt_random_bytes(std::vector<std::uint8_t>& bytes,
                                        std::size_t count, dm::util::Rng& rng) {
  if (bytes.size() <= 24) return 0;
  for (std::size_t i = 0; i < count; ++i) {
    const auto at = static_cast<std::size_t>(
        rng.uniform_int(24, static_cast<std::int64_t>(bytes.size()) - 1));
    bytes[at] ^= static_cast<std::uint8_t>(1 + rng.uniform_int(0, 254));
  }
  return count;
}

/// Flips `count` random bytes inside record *payloads* only — pcap framing
/// stays intact, so the whole capture still iterates and the damage lands
/// in the frame/TCP/HTTP layers.  Returns the number of bytes flipped.
inline std::size_t corrupt_payload_bytes(std::vector<std::uint8_t>& bytes,
                                         std::size_t count,
                                         dm::util::Rng& rng) {
  const auto records = pcap_records(bytes);
  std::vector<RecordSpan> with_payload;
  for (const auto& r : records) {
    if (r.incl_len > 0) with_payload.push_back(r);
  }
  if (with_payload.empty()) return 0;
  for (std::size_t i = 0; i < count; ++i) {
    const auto& r = with_payload[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(with_payload.size()) - 1))];
    const auto at = r.header_offset + 16 +
                    static_cast<std::size_t>(rng.uniform_int(
                        0, static_cast<std::int64_t>(r.incl_len) - 1));
    bytes[at] ^= static_cast<std::uint8_t>(1 + rng.uniform_int(0, 254));
  }
  return count;
}

/// Cuts the capture mid-way through the final record's payload: the decoder
/// must salvage every earlier record and flag exactly one truncated-record
/// fault.  Returns 1 (faults injected) or 0 if the capture has no record
/// with a non-empty payload to cut.
inline std::size_t truncate_final_record(std::vector<std::uint8_t>& bytes,
                                         dm::util::Rng& rng) {
  const auto records = pcap_records(bytes);
  if (records.empty() || records.back().incl_len == 0) return 0;
  const RecordSpan& last = records.back();
  // Keep the full 16-byte header plus [0, incl_len) payload bytes.
  const auto keep = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(last.incl_len) - 1));
  bytes.resize(last.header_offset + 16 + keep);
  return 1;
}

/// Overwrites the incl_len of record `index` with an absurd value — a broken
/// length prefix makes everything after it unaddressable, so the decoder
/// must quarantine one oversized-record fault and stop.  Returns 1, or 0 if
/// there is no such record.
inline std::size_t oversize_record_length(std::vector<std::uint8_t>& bytes,
                                          std::size_t index) {
  const auto records = pcap_records(bytes);
  if (index >= records.size()) return 0;
  const std::size_t at = records[index].header_offset + 8;
  bytes[at] = 0xff;
  bytes[at + 1] = 0xff;
  bytes[at + 2] = 0xff;
  bytes[at + 3] = 0x7f;  // 0x7fffffff, far over any sane record cap
  return 1;
}

/// Appends 1..15 junk bytes after the last record — a record header cut
/// mid-write.  Returns 1 (one truncated-record fault expected).
inline std::size_t cut_record_header(std::vector<std::uint8_t>& bytes,
                                     dm::util::Rng& rng) {
  const auto junk = static_cast<std::size_t>(rng.uniform_int(1, 15));
  for (std::size_t i = 0; i < junk; ++i) {
    bytes.push_back(static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
  }
  return 1;
}

// ---------------------------------------------------------------------------
// Frame-level mutators (operate on a decoded capture).
// ---------------------------------------------------------------------------

/// Offset of the TCP sequence-number field inside an Ethernet/IPv4/TCP
/// frame, or 0 if the frame does not decode as one.
inline std::size_t tcp_seq_offset(const std::vector<std::uint8_t>& frame) {
  if (!dm::net::parse_ethernet_ipv4_tcp(frame)) return 0;
  const std::size_t ihl = static_cast<std::size_t>(frame[14] & 0x0f) * 4;
  return 14 + ihl + 4;
}

/// Indices of frames carrying at least `min_payload` TCP payload bytes.
inline std::vector<std::size_t> data_frame_indices(
    const dm::net::PcapFile& capture, std::size_t min_payload = 1) {
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < capture.packets.size(); ++i) {
    const auto parsed =
        dm::net::parse_ethernet_ipv4_tcp(capture.packets[i].data);
    if (parsed && parsed->payload.size() >= min_payload) indices.push_back(i);
  }
  return indices;
}

/// Garbles the ethertype of `count` distinct TCP data frames so they no
/// longer decode.  Returns the number of frames garbled — each must show up
/// as exactly one frame/undecodable-frame quarantine.
inline std::size_t garble_ethertype(dm::net::PcapFile& capture,
                                    std::size_t count, dm::util::Rng& rng) {
  auto candidates = data_frame_indices(capture);
  rng.shuffle(candidates);
  const std::size_t n = std::min(count, candidates.size());
  for (std::size_t i = 0; i < n; ++i) {
    auto& frame = capture.packets[candidates[i]].data;
    frame[12] = 0xde;  // not 0x0800: parse_ethernet_ipv4_tcp rejects it
    frame[13] = 0xad;
  }
  return n;
}

/// Duplicates `count` random data frames in place (each copy inserted right
/// after its original — a classic TCP retransmission).  Structure-
/// preserving: reassembly must drop every copy as a pure duplicate, so the
/// transaction stream is identical to the clean capture.  Returns the number
/// of duplicates inserted.
inline std::size_t duplicate_segments(dm::net::PcapFile& capture,
                                      std::size_t count, dm::util::Rng& rng) {
  auto candidates = data_frame_indices(capture);
  if (candidates.empty()) return 0;
  rng.shuffle(candidates);
  const std::size_t n = std::min(count, candidates.size());
  // Insert from the highest index down so earlier indices stay valid.
  std::vector<std::size_t> chosen(candidates.begin(), candidates.begin() + n);
  std::sort(chosen.rbegin(), chosen.rend());
  for (const std::size_t at : chosen) {
    capture.packets.insert(
        capture.packets.begin() + static_cast<std::ptrdiff_t>(at) + 1,
        capture.packets[at]);
  }
  return n;
}

/// Inserts, after `count` random data frames, a copy whose sequence number
/// is shifted forward by half the payload — an overlapping segment whose
/// front half re-sends delivered bytes and whose tail injects garbage.
/// Corrupting by design: downstream layers must quarantine, not crash.
/// Returns the number of overlapping segments inserted (reassembly counts at
/// least this many overlaps; follow-on trims may add more).
inline std::size_t overlap_segments(dm::net::PcapFile& capture,
                                    std::size_t count, dm::util::Rng& rng) {
  auto candidates = data_frame_indices(capture, /*min_payload=*/2);
  if (candidates.empty()) return 0;
  rng.shuffle(candidates);
  const std::size_t n = std::min(count, candidates.size());
  std::vector<std::size_t> chosen(candidates.begin(), candidates.begin() + n);
  std::sort(chosen.rbegin(), chosen.rend());
  for (const std::size_t at : chosen) {
    auto copy = capture.packets[at];
    const auto parsed = dm::net::parse_ethernet_ipv4_tcp(copy.data);
    const std::size_t seq_at = tcp_seq_offset(copy.data);
    const std::uint32_t shift =
        static_cast<std::uint32_t>(parsed->payload.size() / 2);
    const std::uint32_t seq = parsed->seq + shift;
    copy.data[seq_at] = static_cast<std::uint8_t>(seq >> 24);
    copy.data[seq_at + 1] = static_cast<std::uint8_t>(seq >> 16);
    copy.data[seq_at + 2] = static_cast<std::uint8_t>(seq >> 8);
    copy.data[seq_at + 3] = static_cast<std::uint8_t>(seq);
    capture.packets.insert(
        capture.packets.begin() + static_cast<std::ptrdiff_t>(at) + 1,
        std::move(copy));
  }
  return n;
}

/// Shuffles the record order of the capture (timestamps untouched).  TCP
/// reassembly sequences by seq number, so the transaction *set* must
/// survive; nothing may crash.
inline void reorder_records(dm::net::PcapFile& capture, dm::util::Rng& rng) {
  rng.shuffle(capture.packets);
}

/// Drops the trailing `fraction` of records — every connection still open at
/// the cut sees a mid-stream EOF.  Returns the number of records dropped.
inline std::size_t drop_tail(dm::net::PcapFile& capture, double fraction) {
  const auto keep = static_cast<std::size_t>(
      static_cast<double>(capture.packets.size()) * (1.0 - fraction));
  const std::size_t dropped = capture.packets.size() - keep;
  capture.packets.resize(keep);
  return dropped;
}

}  // namespace dm::faultinject

// Golden-equivalence suite for the flattened ERF: FlatForest must score
// bit-identically to the pointer-based RandomForest it was compiled from —
// the contract that lets Detector swap representations under the hot path
// without perturbing a single verdict.
#include "ml/flat_forest.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include "ml/serialization.h"
#include "util/rng.h"

namespace dm::ml {
namespace {

/// Exact-bits comparison: EXPECT_EQ on doubles would already be exact
/// equality, but comparing the bit patterns also distinguishes -0.0 from
/// +0.0 and documents the intent.
::testing::AssertionResult same_bits(double a, double b) {
  if (std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a << " and " << b << " differ ("
         << std::bit_cast<std::uint64_t>(a) << " vs "
         << std::bit_cast<std::uint64_t>(b) << ")";
}

Dataset random_dataset(std::size_t rows, std::size_t width, std::uint64_t seed) {
  dm::util::Rng rng(seed);
  std::vector<std::string> names;
  for (std::size_t f = 0; f < width; ++f) names.push_back("f" + std::to_string(f));
  Dataset data(std::move(names));
  for (std::size_t i = 0; i < rows; ++i) {
    std::vector<double> row;
    for (std::size_t f = 0; f < width; ++f) row.push_back(rng.normal(0.0, 5.0));
    // Nonlinear label rule so trees grow real depth.
    const bool positive = row[0] * row[1] > 0.0 || row[2] > 3.0;
    data.add_row(std::move(row), positive ? kInfection : kBenign);
  }
  return data;
}

std::vector<double> random_vector(std::size_t width, dm::util::Rng& rng) {
  std::vector<double> x;
  for (std::size_t f = 0; f < width; ++f) x.push_back(rng.normal(0.0, 6.0));
  return x;
}

TEST(FlatForestTest, BitIdenticalToPointerForestOnRandomVectors) {
  const auto data = random_dataset(300, 8, 11);
  ForestOptions options;
  options.num_trees = 20;
  options.seed = 7;
  const auto forest = RandomForest::train(data, options);
  const auto flat = FlatForest::compile(forest);
  EXPECT_EQ(flat.num_trees(), forest.num_trees());

  dm::util::Rng rng(12);
  for (int i = 0; i < 2000; ++i) {
    const auto x = random_vector(8, rng);
    EXPECT_TRUE(same_bits(flat.predict_proba(x), forest.predict_proba(x)));
    EXPECT_EQ(flat.predict(x, 0.35), forest.predict(x, 0.35));
  }
}

TEST(FlatForestTest, BitIdenticalUnderMajorityVote) {
  const auto data = random_dataset(250, 6, 21);
  ForestOptions options;
  options.num_trees = 15;
  options.seed = 9;
  options.combination = Combination::kMajorityVote;
  const auto forest = RandomForest::train(data, options);
  const auto flat = FlatForest::compile(forest);

  dm::util::Rng rng(22);
  for (int i = 0; i < 1000; ++i) {
    const auto x = random_vector(6, rng);
    EXPECT_TRUE(same_bits(flat.predict_proba(x), forest.predict_proba(x)));
  }
}

TEST(FlatForestTest, NanFeaturesFollowTheSameBranch) {
  const auto data = random_dataset(200, 5, 31);
  ForestOptions options;
  options.num_trees = 10;
  options.seed = 13;
  const auto forest = RandomForest::train(data, options);
  const auto flat = FlatForest::compile(forest);

  dm::util::Rng rng(32);
  for (int i = 0; i < 500; ++i) {
    auto x = random_vector(5, rng);
    // Poison a couple of coordinates: both walks must send NaN right.
    x[static_cast<std::size_t>(i) % x.size()] =
        std::numeric_limits<double>::quiet_NaN();
    x[(static_cast<std::size_t>(i) + 2) % x.size()] =
        std::numeric_limits<double>::quiet_NaN();
    EXPECT_TRUE(same_bits(flat.predict_proba(x), forest.predict_proba(x)));
  }
}

TEST(FlatForestTest, SerializedRoundtripCompilesToIdenticalScores) {
  // The deployment path: train -> save -> load -> compile.  The text format
  // stores doubles as hex-floats, so the loaded forest — and therefore its
  // flat compilation — must reproduce the original scores exactly.
  const auto data = random_dataset(300, 8, 41);
  ForestOptions options;
  options.num_trees = 12;
  options.seed = 17;
  const auto forest = RandomForest::train(data, options);

  std::stringstream buffer;
  save_forest(forest, buffer);
  const auto loaded = load_forest(buffer);
  const auto flat = FlatForest::compile(loaded);

  dm::util::Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    const auto x = random_vector(8, rng);
    EXPECT_TRUE(same_bits(flat.predict_proba(x), forest.predict_proba(x)));
  }
}

TEST(FlatForestTest, EmptyForestScoresZeroLikeSource) {
  const RandomForest empty;
  const auto flat = FlatForest::compile(empty);
  EXPECT_EQ(flat.num_trees(), 0u);
  EXPECT_EQ(flat.node_count(), 0u);
  const std::vector<double> x(4, 1.0);
  EXPECT_TRUE(same_bits(flat.predict_proba(x), empty.predict_proba(x)));
  EXPECT_TRUE(same_bits(flat.predict_proba(x), 0.0));
}

TEST(FlatForestTest, ArenaIsOneLeafPerEmptyTreeAndBfsOtherwise) {
  const auto data = random_dataset(120, 4, 51);
  ForestOptions options;
  options.num_trees = 5;
  options.seed = 19;
  const auto forest = RandomForest::train(data, options);
  const auto flat = FlatForest::compile(forest);
  std::size_t expected = 0;
  for (const auto& tree : forest.trees()) expected += tree.nodes().size();
  EXPECT_EQ(flat.node_count(), expected);
}

}  // namespace
}  // namespace dm::ml

#include "graph/metrics.h"

#include <gtest/gtest.h>

namespace dm::graph {
namespace {

TEST(GraphMetricsTest, EmptyGraphAllZero) {
  const auto m = compute_metrics(Digraph{});
  EXPECT_EQ(m.order, 0u);
  EXPECT_EQ(m.size, 0u);
  EXPECT_EQ(m.volume, 0u);
  EXPECT_EQ(m.density, 0.0);
}

TEST(GraphMetricsTest, TriangleBasics) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  const auto m = compute_metrics(g);
  EXPECT_EQ(m.order, 3u);
  EXPECT_EQ(m.size, 3u);
  EXPECT_EQ(m.volume, 6u);  // sum of degrees = 2m
  EXPECT_DOUBLE_EQ(m.avg_degree, 2.0);
  EXPECT_DOUBLE_EQ(m.avg_in_degree, 1.0);
  EXPECT_DOUBLE_EQ(m.avg_out_degree, 1.0);
  EXPECT_DOUBLE_EQ(m.density, 0.5);  // 3 simple edges / (3*2)
  EXPECT_EQ(m.diameter, 1u);
  EXPECT_DOUBLE_EQ(m.avg_clustering_coefficient, 1.0);
  EXPECT_EQ(m.reciprocity, 0.0);
  EXPECT_NEAR(m.avg_pagerank, 1.0 / 3.0, 1e-9);
}

TEST(GraphMetricsTest, MultiEdgesCountInSizeVolumeNotDensity) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  const auto m = compute_metrics(g);
  EXPECT_EQ(m.size, 3u);
  EXPECT_EQ(m.volume, 6u);
  EXPECT_DOUBLE_EQ(m.density, 0.5);  // one simple edge over 2 possible
}

TEST(GraphMetricsTest, StarMetrics) {
  Digraph g(5);  // hub 0 with 4 leaves
  for (NodeId leaf = 1; leaf < 5; ++leaf) g.add_edge(0, leaf);
  const auto m = compute_metrics(g);
  EXPECT_EQ(m.diameter, 2u);
  EXPECT_NEAR(m.avg_betweenness_centrality, 1.0 / 5.0, 1e-12);  // hub=1, rest 0
  EXPECT_DOUBLE_EQ(m.avg_clustering_coefficient, 0.0);
  EXPECT_DOUBLE_EQ(m.avg_node_connectivity, 1.0);  // tree
}

TEST(GraphMetricsTest, DeterministicUnderSeededSampling) {
  // A graph large enough to trigger connectivity sampling.
  Digraph g(80);
  for (NodeId v = 0; v + 1 < 80; ++v) g.add_edge(v, v + 1);
  for (NodeId v = 0; v + 7 < 80; v += 7) g.add_edge(v, v + 7);
  MetricsOptions options;
  options.connectivity_max_pairs = 100;
  const auto m1 = compute_metrics(g, options);
  const auto m2 = compute_metrics(g, options);
  EXPECT_DOUBLE_EQ(m1.avg_node_connectivity, m2.avg_node_connectivity);
}

TEST(GraphMetricsTest, ReciprocityDetected) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  const auto m = compute_metrics(g);
  EXPECT_DOUBLE_EQ(m.reciprocity, 1.0);
}

}  // namespace
}  // namespace dm::graph

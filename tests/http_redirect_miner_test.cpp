#include "http/redirect_miner.h"

#include <gtest/gtest.h>

#include "synth/content.h"
#include "util/rng.h"

namespace dm::http {
namespace {

HttpTransaction txn_with_response(int status, std::string content_type,
                                  std::string body,
                                  std::string location = {}) {
  HttpTransaction txn;
  txn.server_host = "source.example";
  txn.request.method = "GET";
  txn.request.uri = "/";
  HttpResponse res;
  res.status_code = status;
  if (!content_type.empty()) res.headers.add("Content-Type", content_type);
  if (!location.empty()) res.headers.add("Location", location);
  res.body = std::move(body);
  txn.response = std::move(res);
  return txn;
}

TEST(HostOfUrlTest, Extraction) {
  EXPECT_EQ(host_of_url("http://EvIl.Example/path?q"), "evil.example");
  EXPECT_EQ(host_of_url("https://a.b:8080/x"), "a.b");
  EXPECT_EQ(host_of_url("ftp://nope/"), "");
  EXPECT_EQ(host_of_url("/relative/only"), "");
  EXPECT_EQ(host_of_url("http://"), "");
}

TEST(RedirectMinerTest, LocationHeader) {
  const auto txn = txn_with_response(302, "text/html", "moved",
                                     "http://next.example/landing");
  const auto evidence = mine_redirects(txn);
  ASSERT_EQ(evidence.size(), 1u);
  EXPECT_EQ(evidence[0].kind, RedirectKind::kLocationHeader);
  EXPECT_EQ(evidence[0].target_host, "next.example");
}

TEST(RedirectMinerTest, MetaRefresh) {
  const auto txn = txn_with_response(
      200, "text/html",
      "<html><head><meta http-equiv=\"refresh\" "
      "content=\"0;url=http://hop.example/x\"></head></html>");
  const auto evidence = mine_redirects(txn);
  ASSERT_EQ(evidence.size(), 1u);
  EXPECT_EQ(evidence[0].kind, RedirectKind::kMetaRefresh);
  EXPECT_EQ(evidence[0].target_host, "hop.example");
}

TEST(RedirectMinerTest, HiddenIframe) {
  const auto txn = txn_with_response(
      200, "text/html",
      "<body><iframe src=\"http://ek-landing.top/gate\" width=1></iframe></body>");
  const auto evidence = mine_redirects(txn);
  ASSERT_EQ(evidence.size(), 1u);
  EXPECT_EQ(evidence[0].kind, RedirectKind::kIframe);
  EXPECT_EQ(evidence[0].target_host, "ek-landing.top");
}

TEST(RedirectMinerTest, PlainJavaScriptLocation) {
  const auto txn = txn_with_response(
      200, "application/javascript",
      "var a=1; window.location=\"http://js-target.biz/p\";");
  const auto evidence = mine_redirects(txn);
  ASSERT_EQ(evidence.size(), 1u);
  EXPECT_EQ(evidence[0].kind, RedirectKind::kJavaScript);
  EXPECT_EQ(evidence[0].target_host, "js-target.biz");
}

TEST(RedirectMinerTest, HexEscapedJavaScript) {
  dm::util::Rng rng(1);
  const std::string body = dm::synth::redirect_body(
      dm::synth::RedirectTechnique::kHexEscapedJs, "http://hidden.pw/land", rng);
  const auto txn = txn_with_response(200, "application/javascript", body);
  const auto evidence = mine_redirects(txn);
  ASSERT_FALSE(evidence.empty());
  EXPECT_EQ(evidence[0].kind, RedirectKind::kObfuscatedJavaScript);
  EXPECT_EQ(evidence[0].target_host, "hidden.pw");
}

TEST(RedirectMinerTest, UnescapePercentEncoding) {
  dm::util::Rng rng(2);
  const std::string body = dm::synth::redirect_body(
      dm::synth::RedirectTechnique::kUnescapeJs, "http://pct.club/x", rng);
  const auto txn = txn_with_response(200, "application/javascript", body);
  const auto evidence = mine_redirects(txn);
  ASSERT_FALSE(evidence.empty());
  EXPECT_EQ(evidence[0].target_host, "pct.club");
}

TEST(RedirectMinerTest, Base64Atob) {
  dm::util::Rng rng(3);
  const std::string body = dm::synth::redirect_body(
      dm::synth::RedirectTechnique::kBase64Js, "http://b64.info/y", rng);
  const auto txn = txn_with_response(200, "application/javascript", body);
  const auto evidence = mine_redirects(txn);
  ASSERT_FALSE(evidence.empty());
  EXPECT_EQ(evidence[0].target_host, "b64.info");
}

TEST(RedirectMinerTest, DeobfuscationCanBeDisabled) {
  dm::util::Rng rng(4);
  const std::string body = dm::synth::redirect_body(
      dm::synth::RedirectTechnique::kHexEscapedJs, "http://hidden.pw/land", rng);
  const auto txn = txn_with_response(200, "application/javascript", body);
  RedirectMinerOptions options;
  options.deobfuscate = false;
  EXPECT_TRUE(mine_redirects(txn, options).empty());
}

TEST(RedirectMinerTest, NoFalsePositivesOnPlainPage) {
  const auto txn = txn_with_response(
      200, "text/html",
      "<html><body><a href=\"http://linked.example/a\">link</a>"
      "<img src=\"/local.png\"></body></html>");
  EXPECT_TRUE(mine_redirects(txn).empty());
}

TEST(RedirectMinerTest, BinaryBodiesSkipped) {
  const auto txn =
      txn_with_response(200, "application/octet-stream",
                        "MZ<iframe src=\"http://x.y/\"></iframe>");
  EXPECT_TRUE(mine_redirects(txn).empty());
}

TEST(RedirectMinerTest, NoResponseNoEvidence) {
  HttpTransaction txn;
  txn.request.method = "GET";
  EXPECT_TRUE(mine_redirects(txn).empty());
}

TEST(RedirectMinerTest, DuplicateEvidenceCollapsed) {
  const auto txn = txn_with_response(
      200, "text/html",
      "<iframe src=\"http://dup.example/a\"></iframe>"
      "<iframe src=\"http://dup.example/a\"></iframe>");
  EXPECT_EQ(mine_redirects(txn).size(), 1u);
}

TEST(DecodeObfuscatedTest, MultipleLayersConcatenated) {
  const std::string text =
      "var a=\"\\x68\\x69\"; document.write(unescape('%20%77')); eval(atob('eHl6'));";
  const std::string decoded = decode_obfuscated_layers(text);
  EXPECT_NE(decoded.find("hi"), std::string::npos);
  EXPECT_NE(decoded.find(" w"), std::string::npos);
  EXPECT_NE(decoded.find("xyz"), std::string::npos);
}

TEST(DecodeObfuscatedTest, UnicodeEscapes) {
  const std::string decoded = decode_obfuscated_layers("\"\\u0068\\u0074\\u0074\\u0070\"");
  EXPECT_NE(decoded.find("http"), std::string::npos);
}

TEST(DecodeObfuscatedTest, CleanTextYieldsEmpty) {
  EXPECT_TRUE(decode_obfuscated_layers("plain body, no obfuscation").empty());
}

class AllTechniquesTest
    : public ::testing::TestWithParam<dm::synth::RedirectTechnique> {};

TEST_P(AllTechniquesTest, MinerRecoversEveryGeneratorTechnique) {
  dm::util::Rng rng(42);
  const std::string target = "http://target-host.top/gate.php";
  const auto technique = GetParam();
  HttpTransaction txn;
  txn.server_host = "src.example";
  txn.request.method = "GET";
  txn.request.uri = "/";
  HttpResponse res;
  if (technique == dm::synth::RedirectTechnique::kLocationHeader) {
    res.status_code = 302;
    res.headers.add("Location", target);
  } else {
    res.status_code = 200;
    res.headers.add("Content-Type", dm::synth::redirect_content_type(technique));
  }
  res.body = dm::synth::redirect_body(technique, target, rng);
  txn.response = std::move(res);

  const auto evidence = mine_redirects(txn);
  ASSERT_FALSE(evidence.empty());
  bool found = false;
  for (const auto& e : evidence) found |= e.target_host == "target-host.top";
  EXPECT_TRUE(found);
}

INSTANTIATE_TEST_SUITE_P(
    Techniques, AllTechniquesTest,
    ::testing::Values(dm::synth::RedirectTechnique::kLocationHeader,
                      dm::synth::RedirectTechnique::kMetaRefresh,
                      dm::synth::RedirectTechnique::kIframe,
                      dm::synth::RedirectTechnique::kPlainJavaScript,
                      dm::synth::RedirectTechnique::kHexEscapedJs,
                      dm::synth::RedirectTechnique::kUnescapeJs,
                      dm::synth::RedirectTechnique::kBase64Js));

}  // namespace
}  // namespace dm::http

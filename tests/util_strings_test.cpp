#include "util/strings.h"

#include <gtest/gtest.h>

namespace dm::util {
namespace {

TEST(StringsTest, ToLower) {
  EXPECT_EQ(to_lower("HeLLo-World_123"), "hello-world_123");
  EXPECT_EQ(to_lower(""), "");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  abc \t\r\n"), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, SplitTrimmedDropsEmpties) {
  const auto parts = split_trimmed("  a ; ;b; ", ';');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
}

TEST(StringsTest, CaseInsensitiveComparisons) {
  EXPECT_TRUE(iequals("Content-Type", "content-type"));
  EXPECT_FALSE(iequals("abc", "abd"));
  EXPECT_FALSE(iequals("abc", "ab"));
  EXPECT_TRUE(istarts_with("HTTP/1.1 200", "http/"));
  EXPECT_FALSE(istarts_with("HT", "http/"));
  EXPECT_TRUE(iends_with("payload.EXE", ".exe"));
  EXPECT_FALSE(iends_with("exe", ".exe"));
}

TEST(StringsTest, IfindLocates) {
  EXPECT_EQ(ifind("Hello World", "WORLD"), 6u);
  EXPECT_EQ(ifind("abc", "zzz"), std::string_view::npos);
  EXPECT_EQ(ifind("abc", ""), 0u);
  EXPECT_EQ(ifind("ab", "abc"), std::string_view::npos);
}

TEST(StringsTest, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(StringsTest, ParseLong) {
  EXPECT_EQ(parse_long("42"), 42);
  EXPECT_EQ(parse_long("  42  "), 42);
  EXPECT_EQ(parse_long("abc", -7), -7);
  EXPECT_EQ(parse_long("12abc", -7), -7);
  EXPECT_EQ(parse_long("", -7), -7);
}

TEST(StringsTest, UrlDecode) {
  EXPECT_EQ(url_decode("%68%65llo+world"), "hello world");
  EXPECT_EQ(url_decode("a%2Fb"), "a/b");
  EXPECT_EQ(url_decode("bad%zz"), "bad%zz");  // invalid escape passes through
  EXPECT_EQ(url_decode("%4"), "%4");          // truncated escape
}

TEST(StringsTest, RegistrableDomain) {
  EXPECT_EQ(registrable_domain("a.b.example.com"), "example.com");
  EXPECT_EQ(registrable_domain("example.com"), "example.com");
  EXPECT_EQ(registrable_domain("localhost"), "localhost");
  EXPECT_EQ(registrable_domain("192.168.1.1"), "192.168.1.1");
}

TEST(StringsTest, TopLevelDomain) {
  EXPECT_EQ(top_level_domain("a.example.com"), "com");
  EXPECT_EQ(top_level_domain("example.top"), "top");
  EXPECT_EQ(top_level_domain("localhost"), "");
  EXPECT_EQ(top_level_domain("10.0.0.1"), "");
  EXPECT_EQ(top_level_domain("trailingdot."), "");
}

TEST(StringsTest, LooksLikeIpv4) {
  EXPECT_TRUE(looks_like_ipv4("1.2.3.4"));
  EXPECT_TRUE(looks_like_ipv4("255.255.255.255"));
  EXPECT_FALSE(looks_like_ipv4("1.2.3"));
  EXPECT_FALSE(looks_like_ipv4("a.b.c.d"));
  EXPECT_FALSE(looks_like_ipv4("1.2.3.4.5"));
  EXPECT_FALSE(looks_like_ipv4("1..3.4"));
  EXPECT_FALSE(looks_like_ipv4("1.2.3.4444"));
}

TEST(StringsTest, UriExtension) {
  EXPECT_EQ(uri_extension("/files/payload.EXE?x=1"), "exe");
  EXPECT_EQ(uri_extension("/a/b.tar.gz"), "gz");
  EXPECT_EQ(uri_extension("/no-extension"), "");
  EXPECT_EQ(uri_extension("/dir.with.dots/plain"), "");
  EXPECT_EQ(uri_extension("/trailingdot."), "");
}

TEST(StringsTest, UriPath) {
  EXPECT_EQ(uri_path("/a/b?q=1#frag"), "/a/b");
  EXPECT_EQ(uri_path("/a/b#frag"), "/a/b");
  EXPECT_EQ(uri_path("/plain"), "/plain");
}

TEST(StringsTest, Base64Decode) {
  EXPECT_EQ(base64_decode("aGVsbG8="), "hello");
  EXPECT_EQ(base64_decode("aGVsbG8h"), "hello!");
  EXPECT_EQ(base64_decode("aA=="), "h");
  EXPECT_EQ(base64_decode("!!invalid!!"), "");
  EXPECT_EQ(base64_decode(""), "");
}

}  // namespace
}  // namespace dm::util

#include "ml/serialization.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "ml/parallel_trainer.h"
#include "util/rng.h"

namespace dm::ml {
namespace {

Dataset training_data(std::uint64_t seed, std::size_t n = 200) {
  dm::util::Rng rng(seed);
  Dataset data({"a", "b", "c"});
  for (std::size_t i = 0; i < n; ++i) {
    const bool positive = i % 2 == 0;
    data.add_row({(positive ? 5.0 : 0.0) + rng.normal(0, 1.5),
                  rng.normal(0, 1.0), rng.uniform(-3, 3)},
                 positive ? kInfection : kBenign);
  }
  return data;
}

TEST(SerializationTest, RoundTripPreservesEveryScore) {
  const auto data = training_data(1);
  const auto forest = RandomForest::train(data, {});
  std::stringstream buffer;
  save_forest(forest, buffer);
  const auto loaded = load_forest(buffer);

  ASSERT_EQ(loaded.num_trees(), forest.num_trees());
  dm::util::Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    const std::vector<double> x{rng.uniform(-10, 10), rng.uniform(-5, 5),
                                rng.uniform(-10, 10)};
    // Hex-float serialization must round-trip bit-exactly.
    EXPECT_EQ(forest.predict_proba(x), loaded.predict_proba(x));
  }
}

TEST(SerializationTest, CombinationModePreserved) {
  const auto data = training_data(3);
  ForestOptions options;
  options.combination = Combination::kMajorityVote;
  const auto forest = RandomForest::train(data, options);
  std::stringstream buffer;
  save_forest(forest, buffer);
  const auto loaded = load_forest(buffer);
  EXPECT_EQ(loaded.options().combination, Combination::kMajorityVote);
}

TEST(SerializationTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/dm_forest_test.model";
  const auto data = training_data(4);
  const auto forest = RandomForest::train(data, {});
  save_forest_file(forest, path);
  const auto loaded = load_forest_file(path);
  EXPECT_EQ(loaded.num_trees(), forest.num_trees());
  EXPECT_EQ(forest.predict_proba({5.0, 0.0, 0.0}),
            loaded.predict_proba({5.0, 0.0, 0.0}));
  std::remove(path.c_str());
}

TEST(SerializationTest, RoundTripPreservesEveryForestOption) {
  // Regression for the v1 format silently dropping ForestOptions fields:
  // v2 must round-trip every one of them.
  const auto data = training_data(6);
  ForestOptions options;
  options.num_trees = 7;
  options.features_per_split = 2;
  options.combination = Combination::kMajorityVote;
  options.bootstrap_fraction = 0.75;
  options.seed = 0xfeedfacecafeULL;
  options.tree.max_depth = 9;
  options.tree.min_samples_split = 4;
  options.tree.min_samples_leaf = 2;
  const auto forest = RandomForest::train(data, options);

  std::stringstream buffer;
  save_forest(forest, buffer);
  const auto loaded = load_forest(buffer);
  EXPECT_EQ(loaded.options().num_trees, options.num_trees);
  EXPECT_EQ(loaded.options().features_per_split, options.features_per_split);
  EXPECT_EQ(loaded.options().combination, options.combination);
  EXPECT_EQ(loaded.options().bootstrap_fraction, options.bootstrap_fraction);
  EXPECT_EQ(loaded.options().seed, options.seed);
  EXPECT_EQ(loaded.options().tree.max_depth, options.tree.max_depth);
  EXPECT_EQ(loaded.options().tree.min_samples_split,
            options.tree.min_samples_split);
  EXPECT_EQ(loaded.options().tree.min_samples_leaf,
            options.tree.min_samples_leaf);
}

TEST(SerializationTest, ParallelTrainedForestRoundTripsByteIdentically) {
  const auto data = training_data(7);
  ForestOptions options;
  options.seed = 31337;
  const auto forest = train_forest_parallel(data, options, {.threads = 8});

  std::stringstream buffer;
  save_forest(forest, buffer);
  const auto loaded = load_forest(buffer);

  // Identical scores on random vectors...
  dm::util::Rng rng(8);
  for (int i = 0; i < 500; ++i) {
    const std::vector<double> x{rng.uniform(-10, 10), rng.uniform(-5, 5),
                                rng.uniform(-10, 10)};
    EXPECT_EQ(forest.predict_proba(x), loaded.predict_proba(x));
  }
  // ...and a byte-identical second serialization (options included).
  std::stringstream again;
  save_forest(loaded, again);
  EXPECT_EQ(again.str(), buffer.str());
}

TEST(SerializationTest, LegacyV1LoadsWithDefaultOptions) {
  // v1 carried only tree count + combination; the remaining options load
  // as ForestOptions defaults.
  std::stringstream buffer(
      "dynaminer-forest v1\ntrees 1 combination vote\n"
      "tree 1 0\nnode -1 -1 0 0x0p+0 0x1p-1\n");
  const auto loaded = load_forest(buffer);
  EXPECT_EQ(loaded.num_trees(), 1u);
  EXPECT_EQ(loaded.options().combination, Combination::kMajorityVote);
  EXPECT_EQ(loaded.options().seed, kDefaultTrainingSeed);
  EXPECT_EQ(loaded.options().features_per_split, ForestOptions{}.features_per_split);
  EXPECT_EQ(loaded.options().bootstrap_fraction, ForestOptions{}.bootstrap_fraction);
}

TEST(SerializationTest, MissingFileThrows) {
  EXPECT_THROW(load_forest_file("/definitely/not/here.model"),
               std::runtime_error);
}

TEST(SerializationTest, RejectsBadMagic) {
  std::stringstream buffer("not-a-forest v1\ntrees 0 combination avg\n");
  EXPECT_THROW(load_forest(buffer), std::runtime_error);
}

TEST(SerializationTest, RejectsWrongVersion) {
  std::stringstream buffer("dynaminer-forest v9\ntrees 0 combination avg\n");
  EXPECT_THROW(load_forest(buffer), std::runtime_error);
}

TEST(SerializationTest, RejectsTruncation) {
  const auto data = training_data(5);
  const auto forest = RandomForest::train(data, {});
  std::stringstream buffer;
  save_forest(forest, buffer);
  const std::string full = buffer.str();
  for (const double fraction : {0.1, 0.5, 0.9}) {
    std::stringstream cut(full.substr(
        0, static_cast<std::size_t>(full.size() * fraction)));
    EXPECT_THROW(load_forest(cut), std::runtime_error) << fraction;
  }
}

TEST(SerializationTest, RejectsCorruptNodeStructure) {
  // Child index beyond the node table must be rejected.
  std::stringstream buffer(
      "dynaminer-forest v1\ntrees 1 combination avg\n"
      "tree 1 0\nnode 5 6 0 0x0p+0 0x1p-1\n");
  EXPECT_THROW(load_forest(buffer), std::runtime_error);
}

TEST(SerializationTest, RejectsHalfLeaf) {
  std::stringstream buffer(
      "dynaminer-forest v1\ntrees 1 combination avg\n"
      "tree 1 0\nnode -1 0 0 0x0p+0 0x1p-1\n");
  EXPECT_THROW(load_forest(buffer), std::runtime_error);
}

TEST(SerializationTest, RejectsUnknownCombination) {
  std::stringstream buffer("dynaminer-forest v1\ntrees 0 combination xor\n");
  EXPECT_THROW(load_forest(buffer), std::runtime_error);
}

TEST(SerializationTest, ModelVersionTrailerRoundTrips) {
  const auto data = training_data(6);
  auto forest = RandomForest::train(data, {});
  std::stringstream unstamped;
  save_forest(forest, unstamped);
  // Version 0 writes no trailer: stamped-then-cleared output must stay
  // byte-identical to the pre-serve v2 layout.
  EXPECT_EQ(unstamped.str().find("model-version"), std::string::npos);
  EXPECT_EQ(load_forest(unstamped).model_version(), 0u);

  forest.set_model_version(7);
  std::stringstream stamped;
  save_forest(forest, stamped);
  EXPECT_NE(stamped.str().find("model-version 7"), std::string::npos);
  const auto loaded = load_forest(stamped);
  EXPECT_EQ(loaded.model_version(), 7u);
  // The stamp is provenance metadata only — scores are untouched.
  dm::util::Rng rng(8);
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> x{rng.uniform(-10, 10), rng.uniform(-5, 5),
                                rng.uniform(-10, 10)};
    EXPECT_EQ(forest.predict_proba(x), loaded.predict_proba(x));
  }
}

TEST(SerializationTest, AbsentTrailerLoadsAsVersionZero) {
  // A v2 artifact written before the serving layer existed: no trailer.
  const auto data = training_data(9);
  const auto forest = RandomForest::train(data, {});
  std::stringstream buffer;
  save_forest(forest, buffer);
  EXPECT_EQ(load_forest(buffer).model_version(), 0u);
}

TEST(SerializationTest, EmptyForestRoundTrips) {
  // A zero-tree forest is degenerate but must survive the format.
  std::stringstream buffer("dynaminer-forest v1\ntrees 0 combination avg\n");
  const auto loaded = load_forest(buffer);
  EXPECT_EQ(loaded.num_trees(), 0u);
  EXPECT_EQ(loaded.predict_proba({1.0}), 0.0);
}

}  // namespace
}  // namespace dm::ml

#include "baseline/virustotal_sim.h"

#include <gtest/gtest.h>

#include "synth/dataset.h"

namespace dm::baseline {
namespace {

VtOptions deterministic_options() {
  VtOptions options;
  options.timeout_prob = 0.0;  // most tests don't want timeouts
  return options;
}

TEST(VirusTotalSimTest, UnknownDigestZeroDetections) {
  VirusTotalSim vt(deterministic_options());
  const auto result = vt.scan("deadbeef", 100.0);
  EXPECT_EQ(result.detections, 0);
  EXPECT_FALSE(result.known);
  EXPECT_FALSE(vt.flags_malicious(result));
}

TEST(VirusTotalSimTest, VisibleMalwareEventuallyDetected) {
  auto options = deterministic_options();
  options.campaign_visibility = 1.0;  // force visibility
  VirusTotalSim vt(options);
  vt.register_payload("digest-a", true, 0.0, "campaign-x");
  const auto fresh = vt.scan("digest-a", 0.0);
  const auto aged = vt.scan("digest-a", 365.0);
  EXPECT_LE(fresh.detections, aged.detections);
  EXPECT_TRUE(vt.flags_malicious(aged));
  // After a year nearly all covering engines have signatures.
  EXPECT_GT(aged.detections, options.num_engines / 2);
}

TEST(VirusTotalSimTest, DetectionCountGrowsWithLag) {
  auto options = deterministic_options();
  options.campaign_visibility = 1.0;
  VirusTotalSim vt(options);
  vt.register_payload("digest-lag", true, 10.0, "campaign-lag");
  int previous = -1;
  for (double day : {10.0, 15.0, 21.0, 40.0, 100.0}) {
    const int detections = vt.scan("digest-lag", day).detections;
    EXPECT_GE(detections, previous);
    previous = detections;
  }
}

TEST(VirusTotalSimTest, TheElevenDayEffect) {
  // A fresh payload typically gathers detections between day 0 and day 11 —
  // the mechanism behind the paper's forensic case study.
  auto options = deterministic_options();
  options.campaign_visibility = 1.0;
  VirusTotalSim vt(options);
  int gained = 0;
  for (int i = 0; i < 50; ++i) {
    const std::string digest = "fresh-" + std::to_string(i);
    vt.register_payload(digest, true, 1000.0, "campaign-" + std::to_string(i));
    const int at_capture = vt.scan(digest, 1000.0).detections;
    const int later = vt.scan(digest, 1011.0).detections;
    EXPECT_GE(later, at_capture);
    gained += later - at_capture;
  }
  EXPECT_GT(gained, 0);
}

TEST(VirusTotalSimTest, InvisibleCampaignNeverDetected) {
  auto options = deterministic_options();
  options.campaign_visibility = 0.0;
  VirusTotalSim vt(options);
  vt.register_payload("digest-b", true, 0.0, "hidden-campaign");
  EXPECT_EQ(vt.scan("digest-b", 10000.0).detections, 0);
}

TEST(VirusTotalSimTest, CleanBenignStaysUnderThreshold) {
  auto options = deterministic_options();
  options.benign_grey_prob = 0.0;
  VirusTotalSim vt(options);
  for (int i = 0; i < 100; ++i) {
    const std::string digest = "benign-" + std::to_string(i);
    vt.register_payload(digest, false, 0.0, "b");
    EXPECT_FALSE(vt.flags_malicious(vt.scan(digest, 1000.0)));
  }
}

TEST(VirusTotalSimTest, GreyBenignSometimesFlagged) {
  auto options = deterministic_options();
  options.benign_grey_prob = 1.0;
  VirusTotalSim vt(options);
  vt.register_payload("grey-1", false, 0.0, "b");
  EXPECT_TRUE(vt.flags_malicious(vt.scan("grey-1", 1.0)));
}

TEST(VirusTotalSimTest, ScansAreRepeatable) {
  VirusTotalSim vt(deterministic_options());
  vt.register_payload("digest-c", true, 5.0, "campaign-c");
  const auto r1 = vt.scan("digest-c", 20.0);
  const auto r2 = vt.scan("digest-c", 20.0);
  EXPECT_EQ(r1.detections, r2.detections);
}

TEST(VirusTotalSimTest, ReregistrationKeepsEarliestDate) {
  auto options = deterministic_options();
  options.campaign_visibility = 1.0;
  VirusTotalSim vt(options);
  vt.register_payload("digest-d", true, 10.0, "campaign-d");
  vt.register_payload("digest-d", true, 500.0, "campaign-d");  // re-seen later
  const auto result = vt.scan("digest-d", 400.0);
  EXPECT_GT(result.detections, 0);  // lag measured from day 10, not 500
}

TEST(VirusTotalSimTest, EpisodeScanAggregates) {
  dm::synth::TraceGenerator gen(20);
  const auto episode = gen.infection(dm::synth::family_by_name("Angler"));
  auto options = deterministic_options();
  options.campaign_visibility = 1.0;
  VirusTotalSim vt(options);
  vt.register_episode(episode, 0.0);
  const auto verdict = vt.scan_episode(episode, 365.0);
  EXPECT_TRUE(verdict.flagged);
}

TEST(VirusTotalSimTest, CoverageCalibrationRoughlyMatchesTable5) {
  // Over many campaigns, roughly campaign_visibility of episodes should be
  // flaggable once aged (the Table V "84.3%" coverage shape).
  VtOptions options = deterministic_options();
  VirusTotalSim vt(options);
  dm::synth::TraceGenerator gen(21);
  int flagged = 0;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    const auto episode = gen.infection(dm::synth::family_by_name("Nuclear"));
    vt.register_episode(episode, 0.0);
    flagged += vt.scan_episode(episode, 365.0).flagged;
  }
  EXPECT_NEAR(static_cast<double>(flagged) / n, options.campaign_visibility, 0.1);
}

TEST(VirusTotalSimTest, TimeoutsOccurWhenEnabled) {
  VtOptions options;
  options.timeout_prob = 1.0;
  VirusTotalSim vt(options);
  vt.register_payload("digest-e", true, 0.0, "campaign-e");
  const auto result = vt.scan("digest-e", 100.0);
  EXPECT_TRUE(result.timed_out);
  EXPECT_FALSE(vt.flags_malicious(result));
}

}  // namespace
}  // namespace dm::baseline

// Fuzz fence for the non-throwing forest loader: model artifacts cross a
// trust boundary (the serve-layer store reads whatever survived a crash), so
// try_load_forest must turn every malformed input — truncations, bit flips,
// garbage, implausible counts — into a structured LoadError, never an
// exception, and must still round-trip valid artifacts bit-exactly.
#include "ml/serialization.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/trainer.h"
#include "core/wcg_builder.h"
#include "synth/dataset.h"
#include "util/rng.h"

namespace dm::ml {
namespace {

std::string valid_artifact() {
  static const std::string artifact = [] {
    const auto gt = dm::synth::generate_ground_truth(40, 0.06);
    std::vector<dm::core::Wcg> infections;
    std::vector<dm::core::Wcg> benign;
    for (const auto& e : gt.infections) {
      infections.push_back(dm::core::build_wcg(e.transactions));
    }
    for (const auto& e : gt.benign) {
      benign.push_back(dm::core::build_wcg(e.transactions));
    }
    const auto data = dm::core::dataset_from_wcgs(infections, benign);
    auto forest = dm::core::train_dynaminer(data, 7);
    forest.set_model_version(3);
    std::ostringstream out;
    save_forest(forest, out);
    return out.str();
  }();
  return artifact;
}

std::string reserialize(const RandomForest& forest) {
  std::ostringstream out;
  save_forest(forest, out);
  return out.str();
}

TEST(SerializationFuzzTest, ValidArtifactRoundTripsThroughTryLoad) {
  const std::string text = valid_artifact();
  const auto loaded = try_load_forest(text);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(reserialize(*loaded), text);
  EXPECT_EQ(loaded->model_version(), 3u);
}

TEST(SerializationFuzzTest, EveryTruncationIsHandledWithoutThrowing) {
  const std::string text = valid_artifact();
  // Tree/node counts are declared up front, so any cut that removes the
  // whole final token (or more) is structurally detectable.  A cut *inside*
  // the final hex-float token can leave a shorter-but-parseable number —
  // the parser cannot know, which is exactly why the model store layers a
  // CRC on top.  The fence here: no cut may throw, and cuts at or before
  // the final token boundary must all fail with a structured reason.
  const std::size_t last_token_start = text.rfind(' ') + 1;
  for (std::size_t cut = 0; cut < text.size(); ++cut) {
    const auto result = try_load_forest(text.substr(0, cut));
    if (cut <= last_token_start) {
      ASSERT_FALSE(result.has_value()) << "truncation at byte " << cut;
      EXPECT_FALSE(result.error().reason.empty());
    }
  }
}

TEST(SerializationFuzzTest, SeededBitFlipsNeverThrow) {
  const std::string text = valid_artifact();
  dm::util::Rng rng(0xF1125EED);
  for (int trial = 0; trial < 400; ++trial) {
    std::string mutated = text;
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(text.size()) - 1));
    const auto bit = static_cast<unsigned>(rng.uniform_int(0, 7));
    mutated[pos] = static_cast<char>(static_cast<unsigned char>(mutated[pos]) ^
                                     (1u << bit));
    // Must not throw or crash; a lucky flip (e.g. inside a hex-float
    // mantissa) may still parse — that is the CRC layer's job to catch, one
    // level up in the model store.
    const auto result = try_load_forest(mutated);
    if (!result.has_value()) {
      EXPECT_FALSE(result.error().reason.empty());
    }
  }
}

TEST(SerializationFuzzTest, GarbageAndHostileHeadersAreStructuredErrors) {
  const std::vector<std::string> inputs = {
      "",
      "\n",
      "not a forest at all",
      "dynaminer-forest v99\ntrees 1 combination avg\n",
      "dynaminer-forest v2\ntrees -3 combination avg\n",
      "dynaminer-forest v2\ntrees nonsense combination avg\n",
      // Implausible node count: must be rejected up front, not allocated.
      "dynaminer-forest v2\ntrees 1 combination avg\n"
      "options features-per-split 3 bootstrap-fraction 0x1p-1 seed 1\n"
      "tree-options max-depth 4 min-samples-split 2 min-samples-leaf 1\n"
      "tree 99999999999 4\n",
      std::string(4096, '\0'),
      std::string("dynaminer-forest v2\n") + std::string(512, 0x7f),
  };
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const auto result = try_load_forest(inputs[i]);
    ASSERT_FALSE(result.has_value()) << "input " << i;
    EXPECT_FALSE(result.error().reason.empty());
    EXPECT_NE(result.error().to_string().find("forest load:"),
              std::string::npos);
  }
}

TEST(SerializationFuzzTest, RandomGarbageSweepsNeverThrow) {
  dm::util::Rng rng(0xBADF00D);
  for (int trial = 0; trial < 200; ++trial) {
    const auto len =
        static_cast<std::size_t>(rng.uniform_int(0, 512));
    std::string garbage;
    garbage.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.uniform_int(0, 255)));
    }
    EXPECT_FALSE(try_load_forest(garbage).has_value());
  }
}

TEST(SerializationFuzzTest, MissingFileIsAnErrorNotAnException) {
  const auto result =
      try_load_forest_file("/nonexistent/path/to/forest.dmf");
  ASSERT_FALSE(result.has_value());
  EXPECT_FALSE(result.error().reason.empty());
}

TEST(SerializationFuzzTest, ThrowingLoaderAndTryLoaderAgree) {
  // The throwing entry point and the structured one must accept and reject
  // exactly the same inputs (try_load wraps the same parser).
  const std::string text = valid_artifact();
  EXPECT_NO_THROW({
    std::istringstream in(text);
    load_forest(in);
  });
  const std::string torn = text.substr(0, text.size() / 2);
  EXPECT_THROW(
      {
        std::istringstream in(torn);
        load_forest(in);
      },
      std::exception);
  EXPECT_FALSE(try_load_forest(torn).has_value());
}

}  // namespace
}  // namespace dm::ml

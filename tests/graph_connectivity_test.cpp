#include "graph/connectivity.h"

#include <gtest/gtest.h>

#include "graph/digraph.h"

namespace dm::graph {
namespace {

Adjacency undirected(std::size_t n,
                     std::initializer_list<std::pair<NodeId, NodeId>> edges) {
  Adjacency adj(n);
  for (auto [u, v] : edges) {
    adj[u].push_back(v);
    adj[v].push_back(u);
  }
  for (auto& nbrs : adj) std::sort(nbrs.begin(), nbrs.end());
  return adj;
}

Adjacency complete(std::size_t n) {
  Adjacency adj(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u != v) adj[u].push_back(v);
    }
  }
  return adj;
}

TEST(LocalNodeConnectivityTest, PathIsOne) {
  const auto adj = undirected(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(local_node_connectivity(adj, 0, 3), 1u);
}

TEST(LocalNodeConnectivityTest, DisconnectedIsZero) {
  Adjacency adj(3);
  adj[0].push_back(1);
  adj[1].push_back(0);
  EXPECT_EQ(local_node_connectivity(adj, 0, 2), 0u);
}

TEST(LocalNodeConnectivityTest, CycleIsTwo) {
  const auto adj = undirected(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}});
  EXPECT_EQ(local_node_connectivity(adj, 0, 2), 2u);
}

TEST(LocalNodeConnectivityTest, CompleteGraphIsNMinusOne) {
  const auto adj = complete(5);
  EXPECT_EQ(local_node_connectivity(adj, 0, 4), 4u);
}

TEST(LocalNodeConnectivityTest, AdjacentNodesDiamond) {
  // 0-1 adjacent plus two disjoint indirect paths 0-2-1 and 0-3-1.
  const auto adj = undirected(4, {{0, 1}, {0, 2}, {2, 1}, {0, 3}, {3, 1}});
  EXPECT_EQ(local_node_connectivity(adj, 0, 1), 3u);
}

TEST(AverageNodeConnectivityTest, CompleteGraphExact) {
  dm::util::Rng rng(1);
  EXPECT_DOUBLE_EQ(average_node_connectivity(complete(4), rng), 3.0);
}

TEST(AverageNodeConnectivityTest, PathGraph) {
  dm::util::Rng rng(1);
  const auto adj = undirected(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_DOUBLE_EQ(average_node_connectivity(adj, rng), 1.0);
}

TEST(AverageNodeConnectivityTest, SamplingStaysInRange) {
  // Force the sampling path with a small pair budget on a cycle: every
  // pair's connectivity is exactly 2, so any sample must average 2.
  Adjacency adj = undirected(
      12, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7},
           {7, 8}, {8, 9}, {9, 10}, {10, 11}, {11, 0}});
  dm::util::Rng rng(2);
  EXPECT_DOUBLE_EQ(average_node_connectivity(adj, rng, 10), 2.0);
}

TEST(ClusteringTest, TriangleIsOne) {
  const auto adj = undirected(3, {{0, 1}, {1, 2}, {2, 0}});
  EXPECT_DOUBLE_EQ(average_clustering(adj), 1.0);
}

TEST(ClusteringTest, StarIsZero) {
  const auto adj = undirected(4, {{0, 1}, {0, 2}, {0, 3}});
  EXPECT_DOUBLE_EQ(average_clustering(adj), 0.0);
}

TEST(ClusteringTest, TriangleWithPendant) {
  const auto adj = undirected(4, {{0, 1}, {1, 2}, {2, 0}, {0, 3}});
  const auto cc = clustering_coefficients(adj);
  // Node 0 has neighbors {1,2,3}; one of three possible links exists.
  EXPECT_NEAR(cc[0], 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(cc[1], 1.0);
  EXPECT_DOUBLE_EQ(cc[3], 0.0);  // degree 1
}

TEST(NeighborDegreeTest, Star) {
  const auto adj = undirected(4, {{0, 1}, {0, 2}, {0, 3}});
  const auto and_ = average_neighbor_degrees(adj);
  EXPECT_DOUBLE_EQ(and_[0], 1.0);  // hub's neighbors all have degree 1
  EXPECT_DOUBLE_EQ(and_[1], 3.0);  // leaves see the hub
}

TEST(DegreeConnectivityTest, StarHasTwoClasses) {
  const auto adj = undirected(4, {{0, 1}, {0, 2}, {0, 3}});
  const auto adc = average_degree_connectivity(adj);
  ASSERT_EQ(adc.size(), 2u);
  EXPECT_DOUBLE_EQ(adc.at(3), 1.0);  // the hub (degree 3) sees degree-1 nodes
  EXPECT_DOUBLE_EQ(adc.at(1), 3.0);  // leaves see degree 3
}

TEST(KNearestNeighborsTest, PathAtTwoHops) {
  const auto adj = undirected(4, {{0, 1}, {1, 2}, {2, 3}});
  // Within 2 hops: node0->{1,2}=2, node1->{0,2,3}=3, node2->3, node3->2.
  EXPECT_DOUBLE_EQ(average_k_nearest_neighbors(adj, 2), (2 + 3 + 3 + 2) / 4.0);
}

TEST(ReciprocityTest, DirectedPairs) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(1, 2);
  // 3 unique directed edges; 2 of them are reciprocated.
  EXPECT_NEAR(reciprocity(g), 2.0 / 3.0, 1e-12);
}

TEST(ReciprocityTest, NoEdgesIsZero) {
  Digraph g(2);
  EXPECT_EQ(reciprocity(g), 0.0);
}

TEST(ReciprocityTest, FullyMutualIsOne) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_DOUBLE_EQ(reciprocity(g), 1.0);
}

class CompleteConnectivityTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CompleteConnectivityTest, KnIsNMinusOne) {
  const std::size_t n = GetParam();
  const auto adj = complete(n);
  EXPECT_EQ(local_node_connectivity(adj, 0, static_cast<NodeId>(n - 1)),
            static_cast<std::uint32_t>(n - 1));
}

INSTANTIATE_TEST_SUITE_P(Sizes, CompleteConnectivityTest,
                         ::testing::Values(2, 3, 4, 6, 8));

}  // namespace
}  // namespace dm::graph

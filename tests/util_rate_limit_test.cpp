#include "util/rate_limit.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace dm::util {
namespace {

TEST(EveryNTest, FiresFirstAndEveryNth) {
  EveryN gate(4);
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) fired.push_back(gate.should_fire());
  EXPECT_EQ(fired, (std::vector<bool>{true, false, false, false, true, false,
                                      false, false, true}));
  EXPECT_EQ(gate.hits(), 9u);
  EXPECT_EQ(gate.suppressed(), 6u);  // 9 events, 3 lines fired
}

TEST(EveryNTest, NOfOneNeverSuppresses) {
  EveryN gate(1);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(gate.should_fire());
  EXPECT_EQ(gate.suppressed(), 0u);
}

TEST(EveryNTest, ConcurrentHitsAreAllCounted) {
  EveryN gate(128);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::atomic<std::uint64_t> fired{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        if (gate.should_fire()) fired.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const std::uint64_t total = kThreads * kPerThread;
  EXPECT_EQ(gate.hits(), total);
  // fetch_add hands every thread a unique ordinal, so exactly ceil(total/128)
  // of them fire even under contention.
  EXPECT_EQ(fired.load(), (total + 127) / 128);
  EXPECT_EQ(gate.suppressed(), total - fired.load());
}

TEST(TokenBucketTest, BurstThenRefillOnTraceClock) {
  TokenBucket bucket(/*rate_per_s=*/2.0, /*burst=*/3.0);
  // Burst: three immediate acquisitions, then dry.
  EXPECT_TRUE(bucket.try_acquire(1'000'000));
  EXPECT_TRUE(bucket.try_acquire(1'000'000));
  EXPECT_TRUE(bucket.try_acquire(1'000'000));
  EXPECT_FALSE(bucket.try_acquire(1'000'000));
  // 0.5 s of trace time accrues one token at 2/s.
  EXPECT_TRUE(bucket.try_acquire(1'500'000));
  EXPECT_FALSE(bucket.try_acquire(1'500'000));
  // A long idle refills to burst, never beyond it.
  EXPECT_TRUE(bucket.try_acquire(100'000'000));
  EXPECT_TRUE(bucket.try_acquire(100'000'000));
  EXPECT_TRUE(bucket.try_acquire(100'000'000));
  EXPECT_FALSE(bucket.try_acquire(100'000'000));
}

TEST(TokenBucketTest, DeterministicAcrossRuns) {
  // Identical trace-time sequences yield identical decisions — the property
  // that keeps quarantine logging reproducible in replays.
  const std::uint64_t times[] = {10, 200'000, 400'000, 600'000, 5'000'000};
  std::vector<bool> first;
  std::vector<bool> second;
  {
    TokenBucket bucket(1.0, 2.0);
    for (const auto t : times) first.push_back(bucket.try_acquire(t));
  }
  {
    TokenBucket bucket(1.0, 2.0);
    for (const auto t : times) second.push_back(bucket.try_acquire(t));
  }
  EXPECT_EQ(first, second);
}

TEST(LogEveryNTest, SuppressesWithoutLosingCount) {
  // Behavioural contract only (output goes to the logger): the gate keeps
  // the true event volume while firing a bounded number of lines.
  EveryN gate(256);
  for (int i = 0; i < 1000; ++i) {
    log_every_n(gate, LogLevel::kWarn, "quarantined event");
  }
  EXPECT_EQ(gate.hits(), 1000u);
  EXPECT_EQ(gate.suppressed(), 1000u - 4u);  // events 1, 257, 513, 769 fired
}

}  // namespace
}  // namespace dm::util

// Shadow scoring and the retrain driver: exact agreement accounting under an
// injected clock, promote/reject gate semantics, and the continual-learning
// loop end to end (verdict tap -> reservoir -> count trigger -> candidate ->
// shadow gate -> hot swap), all against a private metrics registry.
#include "serve/shadow.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <vector>

#include "core/online.h"
#include "core/trainer.h"
#include "obs/metrics.h"
#include "serve/retrain.h"
#include "synth/dataset.h"

namespace dm::serve {
namespace {

// Manually-advanced clock (obs::ClockFn is a plain function pointer).
std::atomic<std::uint64_t> g_now{0};
std::uint64_t manual_clock() { return g_now.load(std::memory_order_relaxed); }

std::shared_ptr<const dm::core::Detector> small_detector(std::uint64_t seed) {
  static const auto corpus = [] {
    const auto gt = dm::synth::generate_ground_truth(100, 0.04);
    std::vector<dm::core::Wcg> infections;
    std::vector<dm::core::Wcg> benign;
    for (const auto& e : gt.infections) {
      infections.push_back(dm::core::build_wcg(e.transactions));
    }
    for (const auto& e : gt.benign) {
      benign.push_back(dm::core::build_wcg(e.transactions));
    }
    return dm::core::dataset_from_wcgs(infections, benign);
  }();
  return std::make_shared<const dm::core::Detector>(
      dm::core::train_dynaminer(corpus, seed));
}

dm::core::Wcg sample_wcg(std::uint64_t seed = 55) {
  dm::synth::TraceGenerator gen(seed);
  return dm::core::build_wcg(
      gen.infection(dm::synth::family_by_name("Angler")).transactions);
}

TEST(ShadowEvaluatorTest, ExactAccountingUnderInjectedClock) {
  dm::obs::MetricsRegistry reg;
  auto metrics = dm::obs::ModelMetrics::of(reg);
  const auto candidate = small_detector(5);
  const auto wcg = sample_wcg();
  const double threshold = 0.4;
  const bool candidate_alert = candidate->score(wcg) >= threshold;

  ShadowOptions options;
  options.min_queries = 100;  // keep the gate pending throughout
  options.max_queries = 200;
  ShadowEvaluator evaluator(candidate, options, threshold, metrics,
                            &manual_clock);

  // 5 agreements, 3 disagreements where the candidate alerts relative to the
  // incumbent, i.e. incumbent says the opposite of the candidate's decision.
  for (int i = 0; i < 5; ++i) evaluator.observe(wcg, nullptr, candidate_alert);
  for (int i = 0; i < 3; ++i) evaluator.observe(wcg, nullptr, !candidate_alert);

  EXPECT_EQ(evaluator.scored(), 8u);
  EXPECT_EQ(evaluator.agreed(), 5u);
  EXPECT_EQ(evaluator.disagreed_infection() + evaluator.disagreed_benign(), 3u);
  // Conservation: every shadowed query is exactly one of agree /
  // disagree-infection / disagree-benign.
  EXPECT_EQ(evaluator.scored(),
            evaluator.agreed() + evaluator.disagreed_infection() +
                evaluator.disagreed_benign());
  EXPECT_DOUBLE_EQ(evaluator.agreement_rate(), 5.0 / 8.0);
  // The per-class split matches the candidate's own decision: when the
  // candidate alerts and the incumbent does not, that is a
  // disagree-infection, and vice versa.
  if (candidate_alert) {
    EXPECT_EQ(evaluator.disagreed_infection(), 3u);
  } else {
    EXPECT_EQ(evaluator.disagreed_benign(), 3u);
  }

  // The dm.model.* panel carries identical numbers.
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counter_value("dm.model.shadow_scored"), 8u);
  EXPECT_EQ(snap.counter_value("dm.model.shadow_agree"), 5u);
  EXPECT_EQ(snap.counter_value("dm.model.shadow_disagree_infection") +
                snap.counter_value("dm.model.shadow_disagree_benign"),
            3u);
  // Injected clock: one shadow-latency sample per observation, zero width
  // (the clock never advanced).
  const auto* h = snap.histogram("dm.model.shadow_score_ns");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 8u);
  EXPECT_EQ(h->sum, 0u);
}

TEST(ShadowEvaluatorTest, PromotesOnceAgreementClearsTheBarAtMinQueries) {
  dm::obs::MetricsRegistry reg;
  auto metrics = dm::obs::ModelMetrics::of(reg);
  const auto candidate = small_detector(5);
  const auto wcg = sample_wcg();
  const bool candidate_alert = candidate->score(wcg) >= 0.4;

  ShadowOptions options;
  options.min_queries = 4;
  options.max_queries = 16;
  options.agreement_threshold = 0.75;
  ShadowEvaluator evaluator(candidate, options, 0.4, metrics, &manual_clock);
  EXPECT_EQ(evaluator.gate(), ShadowEvaluator::Gate::kPending);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(evaluator.observe(wcg, nullptr, candidate_alert),
              ShadowEvaluator::Gate::kPending)
        << "promoted before min_queries";
  }
  EXPECT_EQ(evaluator.observe(wcg, nullptr, candidate_alert),
            ShadowEvaluator::Gate::kPromote);
}

TEST(ShadowEvaluatorTest, RejectsAtMaxQueriesWhenBelowTheBar) {
  dm::obs::MetricsRegistry reg;
  auto metrics = dm::obs::ModelMetrics::of(reg);
  const auto candidate = small_detector(5);
  const auto wcg = sample_wcg();
  const bool candidate_alert = candidate->score(wcg) >= 0.4;

  ShadowOptions options;
  options.min_queries = 2;
  options.max_queries = 6;
  options.agreement_threshold = 0.99;
  ShadowEvaluator evaluator(candidate, options, 0.4, metrics, &manual_clock);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(evaluator.observe(wcg, nullptr, !candidate_alert),
              ShadowEvaluator::Gate::kPending);
  }
  EXPECT_EQ(evaluator.observe(wcg, nullptr, !candidate_alert),
            ShadowEvaluator::Gate::kReject);
}

// ---- RetrainDriver: the loop end to end ------------------------------------

/// Verdict-labeled WCGs for driving on_verdict directly: each is labeled by
/// the incumbent's own hard decision, exactly like the live tap.
struct TapFeed {
  std::vector<dm::core::Wcg> wcgs;
  std::vector<double> scores;
  std::vector<bool> alerts;
};

TapFeed make_feed(const dm::core::Detector& incumbent, double threshold,
                  std::size_t count) {
  TapFeed feed;
  dm::synth::TraceGenerator gen(9102);
  for (std::size_t i = 0; i < count; ++i) {
    auto wcg = (i % 2 == 0)
                   ? dm::core::build_wcg(
                         gen.infection(dm::synth::family_by_name("Neutrino"))
                             .transactions)
                   : dm::core::build_wcg(gen.benign().transactions);
    const double score = incumbent.score(wcg);
    feed.scores.push_back(score);
    feed.alerts.push_back(score >= threshold);
    feed.wcgs.push_back(std::move(wcg));
  }
  return feed;
}

TEST(RetrainDriverTest, CountTriggerTrainsShadowsAndSwaps) {
  dm::obs::MetricsRegistry reg;
  const auto incumbent = small_detector(5);

  ServeOptions options;
  options.retrain_every_admissions = 8;
  options.shadow.min_queries = 3;
  options.shadow.max_queries = 32;
  options.shadow.agreement_threshold = 0.0;  // promote at min_queries
  options.forest = dm::core::paper_forest_options();
  options.forest.num_trees = 5;
  options.metrics = &reg;
  options.clock = &manual_clock;
  RetrainDriver driver(incumbent, options);
  EXPECT_EQ(driver.version(), 1u);

  const auto feed = make_feed(*incumbent, options.decision_threshold, 8);
  ASSERT_TRUE(std::find(feed.alerts.begin(), feed.alerts.end(), true) !=
              feed.alerts.end());
  ASSERT_TRUE(std::find(feed.alerts.begin(), feed.alerts.end(), false) !=
              feed.alerts.end());
  for (std::size_t i = 0; i < feed.wcgs.size(); ++i) {
    driver.on_verdict(feed.wcgs[i], feed.scores[i], feed.alerts[i], 1000 * i);
  }
  driver.drain();  // the 8th admission fired the retrain
  EXPECT_EQ(driver.retrains(), 1u);
  EXPECT_TRUE(driver.shadow_active());
  EXPECT_EQ(driver.swaps(), 0u) << "published before the shadow gate cleared";

  // Three shadowed live queries promote the candidate (threshold 0).
  const auto scorer = driver.make_scorer();
  for (int i = 0; i < 3; ++i) scorer->score(feed.wcgs[0], nullptr);
  EXPECT_FALSE(driver.shadow_active());
  EXPECT_EQ(driver.swaps(), 1u);
  EXPECT_EQ(driver.version(), 2u);
  EXPECT_EQ(driver.candidates_rejected(), 0u);

  // Panel agrees with the accessors, including the published-version gauge.
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counter_value("dm.model.retrains"), 1u);
  EXPECT_EQ(snap.counter_value("dm.model.swaps"), 1u);
  EXPECT_EQ(snap.gauge_value("dm.model.version"), 2);
  EXPECT_EQ(snap.counter_value("dm.model.reservoir_offered"), 8u);
  // The published candidate carries its version stamp; the byte-identity
  // hook is captured pre-stamp.
  EXPECT_EQ(driver.handle().current()->forest().model_version(), 2u);
  EXPECT_EQ(driver.last_trained_serialization().find("model-version"),
            std::string::npos);
}

TEST(RetrainDriverTest, FailingCandidateIsRejectedAndNeverPublished) {
  dm::obs::MetricsRegistry reg;
  const auto incumbent = small_detector(5);

  ServeOptions options;
  options.shadow.min_queries = 2;
  options.shadow.max_queries = 4;
  options.shadow.agreement_threshold = 1.1;  // unclearable bar
  options.forest = dm::core::paper_forest_options();
  options.forest.num_trees = 5;
  options.metrics = &reg;
  options.clock = &manual_clock;
  RetrainDriver driver(incumbent, options);

  const auto feed = make_feed(*incumbent, options.decision_threshold, 6);
  for (std::size_t i = 0; i < feed.wcgs.size(); ++i) {
    driver.on_verdict(feed.wcgs[i], feed.scores[i], feed.alerts[i], 1000 * i);
  }
  ASSERT_TRUE(driver.retrain_now());
  ASSERT_TRUE(driver.shadow_active());
  const auto scorer = driver.make_scorer();
  for (int i = 0; i < 4; ++i) scorer->score(feed.wcgs[0], nullptr);
  EXPECT_FALSE(driver.shadow_active());
  EXPECT_EQ(driver.swaps(), 0u);
  EXPECT_EQ(driver.candidates_rejected(), 1u);
  EXPECT_EQ(driver.version(), 1u) << "a rejected candidate must never publish";
  EXPECT_EQ(reg.snapshot().counter_value("dm.model.candidates_rejected"), 1u);

  // The slot is free again: the next retrain can proceed.
  EXPECT_TRUE(driver.retrain_now());
}

TEST(RetrainDriverTest, RetrainSkippedWhileAClassIsMissing) {
  dm::obs::MetricsRegistry reg;
  const auto incumbent = small_detector(5);
  ServeOptions options;
  options.metrics = &reg;
  options.clock = &manual_clock;
  RetrainDriver driver(incumbent, options);
  // Only benign verdicts: one-class reservoirs train nothing.
  dm::synth::TraceGenerator gen(42);
  for (int i = 0; i < 5; ++i) {
    driver.on_verdict(dm::core::build_wcg(gen.benign().transactions), 0.1,
                      false, 1000 * i);
  }
  EXPECT_FALSE(driver.retrain_now());
  EXPECT_EQ(driver.retrains(), 0u);
  EXPECT_EQ(driver.version(), 1u);
}

TEST(RetrainDriverTest, VerdictTapWiredIntoTheOnlineEngineDrivesTheLoop) {
  dm::obs::MetricsRegistry reg;
  const auto incumbent = small_detector(5);

  ServeOptions serve;
  serve.retrain_every_admissions = 4;
  serve.shadow_before_cutover = false;  // publish straight through
  serve.forest = dm::core::paper_forest_options();
  serve.forest.num_trees = 5;
  serve.metrics = &reg;
  RetrainDriver driver(incumbent, serve);

  dm::core::OnlineOptions online;
  online.redirect_chain_threshold = 2;
  online.scorer = driver.make_scorer();
  online.verdict_tap = driver.verdict_tap();
  dm::core::OnlineDetector engine(incumbent, online);

  dm::synth::TraceGenerator gen(888);
  std::vector<dm::synth::Episode> episodes;
  for (int i = 0; i < 6; ++i) episodes.push_back(gen.benign());
  episodes.push_back(gen.infection(dm::synth::family_by_name("Angler")));
  episodes.push_back(gen.infection(dm::synth::family_by_name("Goon")));
  std::vector<dm::http::HttpTransaction> stream;
  for (const auto& episode : episodes) {
    for (const auto& txn : episode.transactions) stream.push_back(txn);
  }
  std::stable_sort(stream.begin(), stream.end(),
                   [](const auto& a, const auto& b) {
                     return a.request.ts_micros < b.request.ts_micros;
                   });
  for (const auto& txn : stream) engine.observe(txn);
  driver.drain();

  EXPECT_GT(engine.stats().classifier_queries, 0u);
  EXPECT_GE(driver.retrains(), 1u);
  EXPECT_EQ(driver.swaps(), driver.retrains());
  EXPECT_EQ(driver.version(), 1u + driver.swaps());
  EXPECT_EQ(reg.snapshot().counter_value("dm.model.reservoir_offered"),
            driver.reservoir().offered());
}

// ---- Fence-set gate --------------------------------------------------------

TEST(RetrainDriverFenceTest, ImpossibleEpsilonRejectsBeforeShadowScoring) {
  dm::obs::MetricsRegistry reg;
  const auto incumbent = small_detector(5);
  ServeOptions options;
  options.forest = dm::core::paper_forest_options();
  options.forest.num_trees = 5;
  options.metrics = &reg;
  options.clock = &manual_clock;
  options.fence_holdout_fraction = 0.5;
  // An unclearable bar: the candidate would have to beat the incumbent by
  // more than a whole F1 point.  Perfect agreement cannot save it — the
  // fence runs before the shadow phase ever starts.
  options.fence_epsilon = -1.1;
  RetrainDriver driver(incumbent, options);

  const auto feed = make_feed(*incumbent, options.decision_threshold, 10);
  for (std::size_t i = 0; i < feed.wcgs.size(); ++i) {
    driver.on_verdict(feed.wcgs[i], feed.scores[i], feed.alerts[i], 1000 * i);
  }
  EXPECT_TRUE(driver.retrain_now()) << "the retrain itself ran";
  EXPECT_EQ(driver.retrains(), 1u);
  EXPECT_FALSE(driver.shadow_active()) << "fence reject must not stage";
  EXPECT_EQ(driver.fence_rejects(), 1u);
  EXPECT_EQ(driver.candidates_rejected(), 1u);
  EXPECT_EQ(driver.swaps(), 0u);
  EXPECT_EQ(driver.version(), 1u);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counter_value("dm.model.fence_evaluations"), 1u);
  EXPECT_EQ(snap.counter_value("dm.model.fence_rejects"), 1u);
  EXPECT_EQ(snap.counter_value("dm.model.shadow_scored"), 0u);
  // The in-flight slot is released: the next retrain may proceed.
  EXPECT_TRUE(driver.retrain_now());
}

TEST(RetrainDriverFenceTest, PassingCandidateProceedsThroughShadowToPublish) {
  dm::obs::MetricsRegistry reg;
  const auto incumbent = small_detector(5);
  ServeOptions options;
  options.forest = dm::core::paper_forest_options();
  options.forest.num_trees = 5;
  options.metrics = &reg;
  options.clock = &manual_clock;
  options.fence_holdout_fraction = 0.5;
  options.fence_epsilon = 1.0;  // any candidate passes
  options.shadow.min_queries = 2;
  options.shadow.max_queries = 16;
  options.shadow.agreement_threshold = 0.0;
  RetrainDriver driver(incumbent, options);

  const auto feed = make_feed(*incumbent, options.decision_threshold, 10);
  for (std::size_t i = 0; i < feed.wcgs.size(); ++i) {
    driver.on_verdict(feed.wcgs[i], feed.scores[i], feed.alerts[i], 1000 * i);
  }
  ASSERT_TRUE(driver.retrain_now());
  EXPECT_EQ(reg.snapshot().counter_value("dm.model.fence_evaluations"), 1u);
  EXPECT_EQ(driver.fence_rejects(), 0u);
  ASSERT_TRUE(driver.shadow_active()) << "a passing candidate must stage";
  const auto scorer = driver.make_scorer();
  for (int i = 0; i < 2; ++i) scorer->score(feed.wcgs[0], nullptr);
  EXPECT_FALSE(driver.shadow_active());
  EXPECT_EQ(driver.swaps(), 1u);
  EXPECT_EQ(driver.version(), 2u);
}

TEST(RetrainDriverFenceTest, DisabledFenceTrainsOnTheFullSnapshot) {
  // fence_holdout_fraction == 0 must preserve the byte-identity no-op
  // fence: two retrains on an unchanged reservoir serialize identically,
  // and no fence evaluation is recorded.
  dm::obs::MetricsRegistry reg;
  const auto incumbent = small_detector(5);
  ServeOptions options;
  options.shadow_before_cutover = false;
  options.forest = dm::core::paper_forest_options();
  options.forest.num_trees = 5;
  options.metrics = &reg;
  options.clock = &manual_clock;
  RetrainDriver driver(incumbent, options);
  const auto feed = make_feed(*incumbent, options.decision_threshold, 10);
  for (std::size_t i = 0; i < feed.wcgs.size(); ++i) {
    driver.on_verdict(feed.wcgs[i], feed.scores[i], feed.alerts[i], 1000 * i);
  }
  ASSERT_TRUE(driver.retrain_now());
  const std::string first = driver.last_trained_serialization();
  ASSERT_TRUE(driver.retrain_now());
  EXPECT_EQ(driver.last_trained_serialization(), first);
  EXPECT_EQ(reg.snapshot().counter_value("dm.model.fence_evaluations"), 0u);
}

}  // namespace
}  // namespace dm::serve

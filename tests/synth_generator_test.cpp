#include "synth/generator.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "ml/dataset.h"
#include "net/packet.h"
#include "synth/dataset.h"

namespace dm::synth {
namespace {

TEST(GeneratorTest, InfectionEpisodeBasicShape) {
  TraceGenerator gen(1);
  const auto episode = gen.infection(family_by_name("Angler"));
  EXPECT_EQ(episode.meta.label, dm::ml::kInfection);
  EXPECT_EQ(episode.meta.family, "Angler");
  EXPECT_FALSE(episode.transactions.empty());
  // At least one malicious payload download.
  bool has_malicious = false;
  for (const auto& p : episode.meta.payloads) has_malicious |= p.malicious;
  EXPECT_TRUE(has_malicious);
}

TEST(GeneratorTest, TransactionsTimeOrdered) {
  TraceGenerator gen(2);
  const auto episode = gen.infection(family_by_name("Nuclear"));
  for (std::size_t i = 1; i < episode.transactions.size(); ++i) {
    EXPECT_GE(episode.transactions[i].request.ts_micros,
              episode.transactions[i - 1].request.ts_micros);
  }
}

TEST(GeneratorTest, ResponsesAfterRequests) {
  TraceGenerator gen(3);
  const auto episode = gen.benign();
  for (const auto& txn : episode.transactions) {
    ASSERT_TRUE(txn.response.has_value());
    EXPECT_GE(txn.response->ts_micros, txn.request.ts_micros);
  }
}

TEST(GeneratorTest, DeterministicForSeed) {
  TraceGenerator g1(77);
  TraceGenerator g2(77);
  const auto e1 = g1.infection(family_by_name("RIG"));
  const auto e2 = g2.infection(family_by_name("RIG"));
  ASSERT_EQ(e1.transactions.size(), e2.transactions.size());
  for (std::size_t i = 0; i < e1.transactions.size(); ++i) {
    EXPECT_EQ(e1.transactions[i].server_host, e2.transactions[i].server_host);
    EXPECT_EQ(e1.transactions[i].request.uri, e2.transactions[i].request.uri);
  }
}

TEST(GeneratorTest, BenignEpisodeHasNoMaliciousPayloads) {
  TraceGenerator gen(4);
  for (int i = 0; i < 20; ++i) {
    const auto episode = gen.benign();
    EXPECT_EQ(episode.meta.label, dm::ml::kBenign);
    for (const auto& p : episode.meta.payloads) EXPECT_FALSE(p.malicious);
  }
}

TEST(GeneratorTest, HostCountsWithinFamilyBounds) {
  TraceGenerator gen(5);
  const auto& family = family_by_name("Magnitude");
  for (int i = 0; i < 10; ++i) {
    const auto episode = gen.infection(family);
    EXPECT_GE(static_cast<int>(episode.meta.host_count), family.hosts_min);
    // Allow a little slack: CDN helpers may add hosts beyond the target.
    EXPECT_LE(static_cast<int>(episode.meta.host_count), family.hosts_max + 8);
  }
}

TEST(GeneratorTest, InfectionFasterThanBenign) {
  TraceGenerator gen(6);
  auto avg_gap = [](const Episode& e) {
    if (e.transactions.size() < 2) return 0.0;
    double total = 0;
    for (std::size_t i = 1; i < e.transactions.size(); ++i) {
      total += static_cast<double>(e.transactions[i].request.ts_micros -
                                   e.transactions[i - 1].request.ts_micros);
    }
    return total / static_cast<double>(e.transactions.size() - 1) / 1e6;
  };
  double infection_gap = 0;
  double benign_gap = 0;
  const int n = 15;
  for (int i = 0; i < n; ++i) {
    infection_gap += avg_gap(gen.infection(family_by_name("Angler")));
    benign_gap += avg_gap(gen.benign());
  }
  // The paper's top feature: infections have much shorter inter-transaction
  // times than human-paced benign browsing.
  EXPECT_LT(infection_gap / n, benign_gap / n);
}

TEST(GeneratorTest, CallbacksUsesFreshIpLiteralHosts) {
  TraceGenerator gen(7);
  for (int i = 0; i < 10; ++i) {
    const auto episode = gen.infection(family_by_name("Neutrino"));
    if (!episode.meta.has_callback) continue;
    std::set<std::string> pre_hosts;
    bool saw_post_to_fresh_ip = false;
    for (const auto& txn : episode.transactions) {
      if (txn.request.method == "POST") {
        const bool is_ip =
            dm::net::Ipv4Address::parse(txn.server_host).has_value();
        if (is_ip && pre_hosts.find(txn.server_host) == pre_hosts.end()) {
          saw_post_to_fresh_ip = true;
        }
      }
      pre_hosts.insert(txn.server_host);
    }
    EXPECT_TRUE(saw_post_to_fresh_ip);
  }
}

TEST(GeneratorTest, PayloadRecordsMatchTransactions) {
  TraceGenerator gen(8);
  const auto episode = gen.infection(family_by_name("Fiesta"));
  for (const auto& record : episode.meta.payloads) {
    bool matched = false;
    for (const auto& txn : episode.transactions) {
      if (txn.server_host == record.host && txn.request.uri == record.uri) {
        matched = true;
        EXPECT_EQ(txn.response->body.size(), record.size);
      }
    }
    EXPECT_TRUE(matched) << record.uri;
  }
}

TEST(GeneratorTest, StreamingSessionContainsInterruptions) {
  TraceGenerator gen(9);
  const auto episode = gen.free_streaming_session(3, 40);
  std::size_t malicious = 0;
  for (const auto& p : episode.meta.payloads) malicious += p.malicious;
  EXPECT_EQ(malicious, 3u);
  EXPECT_GT(episode.transactions.size(), 40u);
}

TEST(EnticementTest, DistributionRoughlyMatchesFigure1) {
  dm::util::Rng rng(10);
  std::map<Enticement, int> counts;
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[sample_enticement(rng)];
  EXPECT_NEAR(counts[Enticement::kGoogle] / double(n), 0.366, 0.02);
  EXPECT_NEAR(counts[Enticement::kBing] / double(n), 0.247, 0.02);
  EXPECT_NEAR(counts[Enticement::kCompromisedSite] / double(n), 0.127, 0.015);
  EXPECT_NEAR(counts[Enticement::kEmptyReferrer] / double(n), 0.176, 0.015);
  EXPECT_NEAR(counts[Enticement::kRedactedReferrer] / double(n), 0.074, 0.01);
  EXPECT_LT(counts[Enticement::kSocial] / double(n), 0.03);
}

TEST(FamiliesTest, TableOneRowsPresent) {
  const auto& families = exploit_kit_families();
  EXPECT_EQ(families.size(), 10u);
  std::size_t total = 0;
  for (const auto& f : families) total += f.trace_count;
  EXPECT_EQ(total, 770u);  // Table I total infections
  EXPECT_EQ(family_by_name("Angler").trace_count, 253u);
  EXPECT_EQ(family_by_name("Goon").redirects_max, 30);
  EXPECT_THROW(family_by_name("NotAFamily"), std::out_of_range);
}

TEST(DatasetScalingTest, ScaledGroundTruthCounts) {
  const auto gt = generate_ground_truth(1, 0.02);
  // 980 * 0.02 ~ 20 benign; every family contributes at least one infection.
  EXPECT_GE(gt.infections.size(), 10u);
  EXPECT_NEAR(static_cast<double>(gt.benign.size()), 19.6, 3.0);
}

TEST(DatasetScalingTest, ValidationSetSizes) {
  const auto set = generate_validation_set(2, 30, 10);
  EXPECT_EQ(set.infections.size(), 30u);
  EXPECT_EQ(set.benign.size(), 10u);
}

}  // namespace
}  // namespace dm::synth

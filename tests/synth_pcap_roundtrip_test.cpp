// End-to-end substrate test: generated episode -> wire bytes (pcap) ->
// TCP reassembly -> HTTP parsing must reproduce the episode's transactions.
#include "synth/pcap_export.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "http/transaction_stream.h"
#include "util/hash.h"
#include "synth/dataset.h"

namespace dm::synth {
namespace {

TEST(PcapRoundTripTest, RenderRequestWireFormat) {
  dm::http::HttpRequest req;
  req.method = "GET";
  req.uri = "/x";
  req.version = "HTTP/1.1";
  req.headers.add("Host", "example.com");
  const std::string wire = render_request(req);
  EXPECT_EQ(wire, "GET /x HTTP/1.1\r\nHost: example.com\r\n\r\n");
}

TEST(PcapRoundTripTest, RenderResponseForcesAccurateContentLength) {
  dm::http::HttpResponse res;
  res.status_code = 200;
  res.reason = "OK";
  res.headers.add("Content-Length", "999");  // wrong on purpose
  res.body = "abc";
  const std::string wire = render_response(res);
  EXPECT_NE(wire.find("Content-Length: 3\r\n"), std::string::npos);
  EXPECT_EQ(wire.find("999"), std::string::npos);
}

TEST(PcapRoundTripTest, InfectionEpisodeSurvivesRoundTrip) {
  TraceGenerator gen(11);
  const auto episode = gen.infection(family_by_name("Angler"));
  const auto capture = episode_to_pcap(episode);
  ASSERT_FALSE(capture.packets.empty());

  const auto txns = dm::http::transactions_from_pcap(capture);
  ASSERT_EQ(txns.size(), episode.transactions.size());

  // Compare as multisets keyed by (host, uri, method, status, body size):
  // global ordering can differ for identical timestamps.
  auto key_of = [](const dm::http::HttpTransaction& t) {
    return t.server_host + "|" + t.request.method + "|" + t.request.uri + "|" +
           std::to_string(t.response ? t.response->status_code : 0) + "|" +
           std::to_string(t.response ? t.response->body.size() : 0);
  };
  std::multiset<std::string> expected;
  std::multiset<std::string> actual;
  for (const auto& t : episode.transactions) expected.insert(key_of(t));
  for (const auto& t : txns) actual.insert(key_of(t));
  EXPECT_EQ(expected, actual);
}

TEST(PcapRoundTripTest, BenignEpisodeSurvivesRoundTrip) {
  TraceGenerator gen(12);
  const auto episode = gen.benign();
  const auto txns = dm::http::transactions_from_pcap(episode_to_pcap(episode));
  EXPECT_EQ(txns.size(), episode.transactions.size());
}

TEST(PcapRoundTripTest, BodiesPreservedExactly) {
  TraceGenerator gen(13);
  const auto episode = gen.infection(family_by_name("RIG"));
  const auto txns = dm::http::transactions_from_pcap(episode_to_pcap(episode));
  // Find a malicious payload download and verify its bytes survived.
  ASSERT_FALSE(episode.meta.payloads.empty());
  const auto& record = episode.meta.payloads.front();
  bool found = false;
  for (const auto& txn : txns) {
    if (txn.server_host == record.host && txn.request.uri == record.uri) {
      ASSERT_TRUE(txn.response.has_value());
      EXPECT_EQ(txn.response->body.size(), record.size);
      EXPECT_EQ(dm::util::digest_hex(txn.response->body), record.digest);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(PcapRoundTripTest, TimestampsPreservedWithinTolerance) {
  TraceGenerator gen(14);
  const auto episode = gen.benign(BenignScenario::kWebSearch);
  const auto txns = dm::http::transactions_from_pcap(episode_to_pcap(episode));
  ASSERT_EQ(txns.size(), episode.transactions.size());
  // Round-trip keeps request timestamps to within segment spacing.
  for (std::size_t i = 0; i < txns.size(); ++i) {
    const auto delta =
        static_cast<std::int64_t>(txns[i].request.ts_micros) -
        static_cast<std::int64_t>(episode.transactions[i].request.ts_micros);
    EXPECT_LT(std::abs(delta), 10000) << "txn " << i;
  }
}

TEST(PcapRoundTripTest, HeadersSurvive) {
  TraceGenerator gen(15);
  const auto episode = gen.infection(family_by_name("Nuclear"));
  const auto txns = dm::http::transactions_from_pcap(episode_to_pcap(episode));
  std::size_t with_referrer_expected = 0;
  std::size_t with_referrer_actual = 0;
  for (const auto& t : episode.transactions) {
    with_referrer_expected += t.request.referrer().has_value();
  }
  for (const auto& t : txns) {
    with_referrer_actual += t.request.referrer().has_value();
  }
  EXPECT_EQ(with_referrer_expected, with_referrer_actual);
}

TEST(PcapRoundTripTest, PcapFileOnDisk) {
  TraceGenerator gen(16);
  const auto episode = gen.benign();
  const std::string path = ::testing::TempDir() + "/dm_episode.pcap";
  dm::net::write_pcap_file(path, episode_to_pcap(episode));
  const auto txns = dm::http::transactions_from_pcap_file(path);
  EXPECT_EQ(txns.size(), episode.transactions.size());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dm::synth

// WorkerPool: per-worker FIFO affinity, drain barrier, round-robin spread,
// backpressure, shutdown semantics.  Runs under TSan via the `tsan` label.
#include "runtime/worker_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace dm::runtime {
namespace {

TEST(WorkerPoolTest, ExecutesEverySubmittedTask) {
  std::atomic<int> executed{0};
  {
    WorkerPool pool({4, 64});
    EXPECT_EQ(pool.size(), 4u);
    for (int i = 0; i < 500; ++i) {
      EXPECT_TRUE(pool.submit([&] { executed.fetch_add(1); }));
    }
  }  // destructor drains + joins
  EXPECT_EQ(executed.load(), 500);
}

TEST(WorkerPoolTest, SameIndexRunsFifoOnOneThread) {
  // All tasks for one index must execute in submission order — the property
  // the sharded engine relies on for per-session transaction ordering.
  constexpr int kTasks = 2000;
  std::vector<int> order;
  order.reserve(kTasks);
  {
    WorkerPool pool({4, 128});
    for (int i = 0; i < kTasks; ++i) {
      pool.submit(2, [&order, i] { order.push_back(i); });  // same shard
    }
    pool.drain();
  }
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kTasks));
  for (int i = 0; i < kTasks; ++i) EXPECT_EQ(order[i], i);
}

TEST(WorkerPoolTest, DrainIsABarrier) {
  std::atomic<int> done{0};
  WorkerPool pool({3, 64});
  for (int i = 0; i < 300; ++i) pool.submit([&] { done.fetch_add(1); });
  pool.drain();
  EXPECT_EQ(done.load(), 300);  // visible immediately after drain, pool alive
  // A second round after drain still works.
  for (int i = 0; i < 10; ++i) pool.submit([&] { done.fetch_add(1); });
  pool.drain();
  EXPECT_EQ(done.load(), 310);
}

TEST(WorkerPoolTest, RoundRobinTouchesEveryWorker) {
  constexpr std::size_t kWorkers = 4;
  std::vector<std::atomic<int>> hits(kWorkers);
  WorkerPool pool({kWorkers, 64});
  for (std::size_t i = 0; i < 4 * kWorkers; ++i) {
    pool.submit(i, [&hits, w = i % kWorkers] { hits[w].fetch_add(1); });
  }
  pool.drain();
  for (std::size_t w = 0; w < kWorkers; ++w) EXPECT_EQ(hits[w].load(), 4);
}

TEST(WorkerPoolTest, BackpressureBlocksThenCompletes) {
  // Queue depth 2 with a slow worker: submits beyond the bound must block
  // (not drop, not grow memory) and everything still executes exactly once.
  std::atomic<int> executed{0};
  {
    WorkerPool pool({1, 2});
    for (int i = 0; i < 50; ++i) {
      EXPECT_TRUE(pool.submit(0, [&] { executed.fetch_add(1); }));
    }
    pool.drain();
  }
  EXPECT_EQ(executed.load(), 50);
}

TEST(WorkerPoolTest, SubmitAfterShutdownIsRejected) {
  WorkerPool pool({2, 16});
  pool.shutdown();
  EXPECT_FALSE(pool.submit([] {}));
  pool.shutdown();  // idempotent
  pool.drain();     // no-op, must not hang
}

TEST(WorkerPoolTest, QueueHighwaterObservesBacklog) {
  WorkerPool pool({1, 32});
  std::atomic<bool> release{false};
  pool.submit(0, [&] {
    while (!release.load()) std::this_thread::yield();
  });
  for (int i = 0; i < 8; ++i) pool.submit(0, [] {});
  release.store(true);
  pool.drain();
  EXPECT_GE(pool.queue_highwater(), 8u);
}

}  // namespace
}  // namespace dm::runtime

// Golden end-to-end regression: fixed-seed synthetic episodes are rendered
// to real pcap bytes, re-ingested through the full decode stack (pcap ->
// frames -> TCP reassembly -> HTTP transactions), built into WCGs, scored
// by an ERF trained with the default Stage-1 path, and the verdicts plus
// headline feature values are compared byte-for-byte against a checked-in
// golden file.  Per-module suites prove each stage in isolation; this fence
// catches silent drift in ANY stage (a decoder off-by-one, a feature
// re-ordering, an RNG derivation change) the moment it shifts the product.
//
// Doubles are rendered as hex-floats, so the comparison is bit-exact.
// To regenerate after an intentional change:
//   DM_UPDATE_GOLDEN=1 ./build/tests/e2e_golden_test
// and review the diff of tests/golden/e2e_pipeline.golden like any code.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/detector.h"
#include "core/trainer.h"
#include "core/wcg_builder.h"
#include "http/transaction_stream.h"
#include "synth/dataset.h"
#include "synth/families.h"
#include "synth/pcap_export.h"

#ifndef DM_GOLDEN_FILE
#error "DM_GOLDEN_FILE must point at the checked-in golden (set by CMake)"
#endif

namespace {

std::string hexf(double value) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", value);
  return buf;
}

/// The headline features asserted per episode: one from each Table II
/// group — conversation size (HLF), longest redirect chain + betweenness
/// summary (GF), content-type diversity (HF), duration (TF).
constexpr std::size_t kHeadlineFeatures[] = {0, 6, 12, 27, 35};

std::string scan_episode(const dm::core::Detector& detector,
                         const std::string& name,
                         const dm::synth::Episode& episode,
                         const std::string& pcap_dir) {
  // Render to genuine pcap bytes and read back through the whole stack.
  const std::string path = pcap_dir + "/" + name + ".pcap";
  dm::net::write_pcap_file(path, dm::synth::episode_to_pcap(episode));
  const auto transactions = dm::http::transactions_from_pcap_file(path);
  const auto wcg = dm::core::build_wcg(transactions);
  const double score = detector.score(wcg);

  std::ostringstream out;
  out << "episode " << name << " txns " << transactions.size() << " nodes "
      << wcg.node_count() << " edges " << wcg.edge_count() << " score "
      << hexf(score) << " verdict "
      << (score >= detector.threshold() ? "infection" : "benign") << "\n";
  const auto features = dm::core::extract_features(wcg);
  const auto& names = dm::core::feature_names();
  for (const std::size_t f : kHeadlineFeatures) {
    out << "feature " << f << " " << names[f] << " " << hexf(features[f])
        << "\n";
  }
  std::remove(path.c_str());
  return out.str();
}

TEST(E2eGoldenTest, PipelineMatchesCheckedInGolden) {
  // Stage 1: corpus -> WCGs -> features -> ERF, via the parallel trainer
  // (2 threads — the model is identical at any count, which the `train`
  // suite proves; here it feeds the golden).
  const auto gt = dm::synth::generate_ground_truth(42, 0.05);
  std::vector<dm::core::Wcg> infections;
  std::vector<dm::core::Wcg> benign;
  for (const auto& e : gt.infections) {
    infections.push_back(dm::core::build_wcg(e.transactions));
  }
  for (const auto& e : gt.benign) {
    benign.push_back(dm::core::build_wcg(e.transactions));
  }
  const auto data =
      dm::core::dataset_from_wcgs(infections, benign, {}, {.threads = 2});
  const dm::core::Detector detector(
      dm::core::train_dynaminer(data, dm::ml::kDefaultTrainingSeed,
                                {.threads = 2}));

  std::ostringstream got;
  got << "e2e-golden v1\n";
  got << "corpus infections " << gt.infections.size() << " benign "
      << gt.benign.size() << " rows " << data.size() << " features "
      << data.num_features() << "\n";

  // Fixed-seed unseen episodes, exercised through the pcap round-trip.
  dm::synth::TraceGenerator fresh(4242);
  const std::string dir = ::testing::TempDir();
  got << scan_episode(detector, "angler",
                      fresh.infection(dm::synth::family_by_name("Angler")), dir);
  got << scan_episode(detector, "nuclear",
                      fresh.infection(dm::synth::family_by_name("Nuclear")), dir);
  got << scan_episode(detector, "benign_browse", fresh.benign(), dir);
  got << scan_episode(detector, "benign_stream", fresh.benign(), dir);

  if (std::getenv("DM_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(DM_GOLDEN_FILE, std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write " << DM_GOLDEN_FILE;
    out << got.str();
    GTEST_SKIP() << "golden regenerated at " << DM_GOLDEN_FILE;
  }

  std::ifstream in(DM_GOLDEN_FILE);
  ASSERT_TRUE(in) << "missing golden " << DM_GOLDEN_FILE
                  << " — run once with DM_UPDATE_GOLDEN=1";
  std::stringstream want;
  want << in.rdbuf();
  EXPECT_EQ(got.str(), want.str())
      << "end-to-end pipeline drifted from the golden; if intentional, "
         "regenerate with DM_UPDATE_GOLDEN=1 and review the diff";
}

}  // namespace

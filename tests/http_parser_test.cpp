#include "http/parser.h"

#include <gtest/gtest.h>

namespace dm::http {
namespace {

dm::net::DirectionStream stream_of(std::string data, std::uint64_t ts = 100) {
  dm::net::DirectionStream s;
  s.chunks.push_back({0, data.size(), ts});
  s.data = std::move(data);
  return s;
}

TEST(HttpParserTest, SimpleGetRequest) {
  const auto reqs = parse_requests(stream_of(
      "GET /index.html HTTP/1.1\r\nHost: example.com\r\nReferer: http://a.b/\r\n\r\n"));
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_EQ(reqs[0].method, "GET");
  EXPECT_EQ(reqs[0].uri, "/index.html");
  EXPECT_EQ(reqs[0].version, "HTTP/1.1");
  EXPECT_EQ(reqs[0].host(), "example.com");
  EXPECT_EQ(reqs[0].referrer().value(), "http://a.b/");
  EXPECT_EQ(reqs[0].ts_micros, 100u);
}

TEST(HttpParserTest, PostWithBody) {
  const auto reqs = parse_requests(stream_of(
      "POST /gate.php HTTP/1.1\r\nHost: c2\r\nContent-Length: 7\r\n\r\nid=1234"));
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_EQ(reqs[0].method, "POST");
  EXPECT_EQ(reqs[0].body, "id=1234");
}

TEST(HttpParserTest, PipelinedRequests) {
  const auto reqs = parse_requests(stream_of(
      "GET /a HTTP/1.1\r\nHost: x\r\n\r\nGET /b HTTP/1.1\r\nHost: x\r\n\r\n"));
  ASSERT_EQ(reqs.size(), 2u);
  EXPECT_EQ(reqs[0].uri, "/a");
  EXPECT_EQ(reqs[1].uri, "/b");
}

TEST(HttpParserTest, StopsAtMalformedRequestLine) {
  const auto reqs = parse_requests(stream_of(
      "GET /ok HTTP/1.1\r\nHost: x\r\n\r\nNOT-A-METHOD gibberish\r\n\r\n"));
  EXPECT_EQ(reqs.size(), 1u);
}

TEST(HttpParserTest, IncompleteBodyDropped) {
  const auto reqs = parse_requests(stream_of(
      "POST /x HTTP/1.1\r\nHost: x\r\nContent-Length: 100\r\n\r\nshort"));
  EXPECT_TRUE(reqs.empty());
}

TEST(HttpParserTest, SimpleResponseWithContentLength) {
  const auto resps = parse_responses(
      stream_of("HTTP/1.1 200 OK\r\nContent-Type: text/html\r\n"
                "Content-Length: 5\r\n\r\nhello"),
      false);
  ASSERT_EQ(resps.size(), 1u);
  EXPECT_EQ(resps[0].status_code, 200);
  EXPECT_EQ(resps[0].reason, "OK");
  EXPECT_EQ(resps[0].body, "hello");
  EXPECT_EQ(resps[0].content_type().value(), "text/html");
}

TEST(HttpParserTest, RedirectResponse) {
  const auto resps = parse_responses(
      stream_of("HTTP/1.1 302 Found\r\nLocation: http://next.example/\r\n"
                "Content-Length: 0\r\n\r\n"),
      false);
  ASSERT_EQ(resps.size(), 1u);
  EXPECT_TRUE(resps[0].is_redirect());
  EXPECT_EQ(resps[0].location().value(), "http://next.example/");
}

TEST(HttpParserTest, ChunkedResponseBody) {
  const auto resps = parse_responses(
      stream_of("HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
                "5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n"),
      false);
  ASSERT_EQ(resps.size(), 1u);
  EXPECT_EQ(resps[0].body, "hello world");
}

TEST(HttpParserTest, ChunkedWithExtensionsAndTrailers) {
  const auto resps = parse_responses(
      stream_of("HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
                "3;ext=1\r\nabc\r\n0\r\nX-Trailer: v\r\n\r\n"),
      false);
  ASSERT_EQ(resps.size(), 1u);
  EXPECT_EQ(resps[0].body, "abc");
}

TEST(HttpParserTest, CloseDelimitedBodyRequiresClosedFlag) {
  const std::string wire = "HTTP/1.1 200 OK\r\nContent-Type: text/html\r\n\r\nbody to end";
  EXPECT_TRUE(parse_responses(stream_of(wire), false).empty());
  const auto resps = parse_responses(stream_of(wire), true);
  ASSERT_EQ(resps.size(), 1u);
  EXPECT_EQ(resps[0].body, "body to end");
}

TEST(HttpParserTest, BodylessStatusCodes) {
  const auto resps = parse_responses(
      stream_of("HTTP/1.1 304 Not Modified\r\nETag: x\r\n\r\n"
                "HTTP/1.1 204 No Content\r\n\r\n"),
      false);
  ASSERT_EQ(resps.size(), 2u);
  EXPECT_EQ(resps[0].status_code, 304);
  EXPECT_EQ(resps[1].status_code, 204);
}

TEST(HttpParserTest, MultiSpaceReasonPhrase) {
  const auto resps = parse_responses(
      stream_of("HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n"), false);
  ASSERT_EQ(resps.size(), 1u);
  EXPECT_EQ(resps[0].reason, "Not Found");
}

TEST(HttpParserTest, HeaderLookupCaseInsensitive) {
  const auto reqs = parse_requests(stream_of(
      "GET / HTTP/1.1\r\nHOST: UPPER.example\r\nuser-agent: UA\r\n\r\n"));
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_EQ(reqs[0].host(), "upper.example");
  EXPECT_EQ(reqs[0].user_agent().value(), "UA");
}

TEST(HttpParserTest, HostHeaderPortStripped) {
  const auto reqs = parse_requests(
      stream_of("GET / HTTP/1.1\r\nHost: example.com:8080\r\n\r\n"));
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_EQ(reqs[0].host(), "example.com");
}

TEST(TransactionsFromFlowTest, PairsInOrderAndFillsEndpoints) {
  dm::net::TcpFlow flow;
  flow.client_ip = dm::net::Ipv4Address::from_octets(10, 0, 0, 2);
  flow.server_ip = dm::net::Ipv4Address::from_octets(1, 2, 3, 4);
  flow.server_port = 80;
  flow.client_to_server = stream_of(
      "GET /a HTTP/1.1\r\nHost: site.example\r\n\r\n"
      "GET /b HTTP/1.1\r\nHost: site.example\r\n\r\n");
  flow.server_to_client = stream_of(
      "HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\naa"
      "HTTP/1.1 404 Not Found\r\nContent-Length: 2\r\n\r\nbb");
  const auto txns = transactions_from_flow(flow);
  ASSERT_EQ(txns.size(), 2u);
  EXPECT_EQ(txns[0].server_host, "site.example");
  EXPECT_EQ(txns[0].server_ip, "1.2.3.4");
  EXPECT_EQ(txns[0].client_host, "10.0.0.2");
  ASSERT_TRUE(txns[0].response.has_value());
  EXPECT_EQ(txns[0].response->status_code, 200);
  EXPECT_EQ(txns[1].response->status_code, 404);
}

TEST(TransactionsFromFlowTest, UnansweredRequestHasNoResponse) {
  dm::net::TcpFlow flow;
  flow.client_ip = dm::net::Ipv4Address::from_octets(10, 0, 0, 2);
  flow.server_ip = dm::net::Ipv4Address::from_octets(1, 2, 3, 4);
  flow.client_to_server =
      stream_of("GET /a HTTP/1.1\r\nHost: site.example\r\n\r\n");
  const auto txns = transactions_from_flow(flow);
  ASSERT_EQ(txns.size(), 1u);
  EXPECT_FALSE(txns[0].response.has_value());
}

TEST(TransactionsFromFlowTest, FallsBackToIpWhenNoHostHeader) {
  dm::net::TcpFlow flow;
  flow.client_ip = dm::net::Ipv4Address::from_octets(10, 0, 0, 2);
  flow.server_ip = dm::net::Ipv4Address::from_octets(5, 6, 7, 8);
  flow.client_to_server = stream_of("GET / HTTP/1.1\r\n\r\n");
  const auto txns = transactions_from_flow(flow);
  ASSERT_EQ(txns.size(), 1u);
  EXPECT_EQ(txns[0].server_host, "5.6.7.8");
}

}  // namespace
}  // namespace dm::http

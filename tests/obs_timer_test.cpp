// Deterministic-clock tests for Span / StageTimer and for the headline
// clue-to-verdict latency: the clock is an injected function pointer, so
// every latency asserted here is exact — no sleeps, no wall-clock flake.
#include "obs/timer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <utility>
#include <vector>

#include "core/online.h"
#include "core/trainer.h"
#include "obs/metrics.h"
#include "synth/dataset.h"

namespace dm::obs {
namespace {

// Manually-advanced clock: tests set the time, spans read it.
std::atomic<std::uint64_t> g_manual_now{0};
std::uint64_t manual_clock() {
  return g_manual_now.load(std::memory_order_relaxed);
}

// Self-ticking clock: every read returns the next integer, so any span
// covering k clock reads measures exactly k-1 ticks — deterministic without
// the test having to advance time by hand.
std::atomic<std::uint64_t> g_tick{0};
std::uint64_t ticking_clock() {
  return g_tick.fetch_add(1, std::memory_order_relaxed) + 1;
}

class TimerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    g_manual_now.store(0, std::memory_order_relaxed);
    g_tick.store(0, std::memory_order_relaxed);
  }
  void TearDown() override { set_enabled(true); }
};

TEST_F(TimerTest, SpanRecordsExactElapsed) {
  Histogram h;
  g_manual_now.store(100, std::memory_order_relaxed);
  Span span(&h, &manual_clock);
  g_manual_now.store(350, std::memory_order_relaxed);
  EXPECT_EQ(span.stop(), 250u);
  EXPECT_EQ(span.stop(), 0u);  // second stop is a no-op
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.sum, 250u);
}

TEST_F(TimerTest, DestructorRecordsOnce) {
  Histogram h;
  {
    g_manual_now.store(10, std::memory_order_relaxed);
    Span span(&h, &manual_clock);
    g_manual_now.store(17, std::memory_order_relaxed);
  }
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.sum, 7u);
}

TEST_F(TimerTest, CancelSuppressesTheRecord) {
  Histogram h;
  {
    Span span(&h, &manual_clock);
    g_manual_now.store(1000, std::memory_order_relaxed);
    span.cancel();
  }
  EXPECT_EQ(h.snapshot().count, 0u);
}

TEST_F(TimerTest, DisabledSpanIsInertAndReadsNoClock) {
  Histogram h;
  set_enabled(false);
  {
    Span span(&h, &ticking_clock);
    span.stop();
  }
  EXPECT_EQ(h.snapshot().count, 0u);
  EXPECT_EQ(g_tick.load(std::memory_order_relaxed), 0u)
      << "idle span must not read the clock";
}

TEST_F(TimerTest, MoveTransfersTheRecording) {
  Histogram h;
  {
    g_manual_now.store(5, std::memory_order_relaxed);
    Span outer;
    {
      Span inner(&h, &manual_clock);
      outer = std::move(inner);
    }  // moved-from inner must not record
    EXPECT_EQ(h.snapshot().count, 0u);
    g_manual_now.store(8, std::memory_order_relaxed);
  }  // outer records on destruction
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.sum, 3u);
}

TEST_F(TimerTest, StageTimerBindsTheInjectedClock) {
  StageTimer timer(&ticking_clock);
  EXPECT_EQ(timer.now(), 1u);
  EXPECT_EQ(timer.now(), 2u);
  Histogram h;
  {
    auto span = timer.span(h);  // reads tick 3
  }  // reads tick 4
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.sum, 1u);
}

TEST_F(TimerTest, DefaultClockIsMonotone) {
  StageTimer timer;  // null clock -> steady_now_ns
  const std::uint64_t a = timer.now();
  const std::uint64_t b = timer.now();
  EXPECT_LE(a, b);
  EXPECT_GT(b, 0u);
}

// --- clue-to-verdict latency through OnlineDetector ------------------------

const dm::core::Detector& shared_detector() {
  static const dm::core::Detector detector = [] {
    const auto gt = dm::synth::generate_ground_truth(100, 0.06);
    std::vector<dm::core::Wcg> infections;
    std::vector<dm::core::Wcg> benign;
    for (const auto& e : gt.infections) {
      infections.push_back(dm::core::build_wcg(e.transactions));
    }
    for (const auto& e : gt.benign) {
      benign.push_back(dm::core::build_wcg(e.transactions));
    }
    return dm::core::Detector(dm::core::train_dynaminer(
        dm::core::dataset_from_wcgs(infections, benign), 5));
  }();
  return detector;
}

struct ReplayResult {
  std::size_t transactions = 0;
  RegistrySnapshot snap;
};

// Replays infection episodes from `gen_seed` through fresh detectors that
// all report into one private registry with the ticking clock, until at
// least one verdict lands (bounded attempts).
ReplayResult replay_until_verdict(MetricsRegistry& reg, std::uint64_t gen_seed) {
  ReplayResult result;
  dm::synth::TraceGenerator gen(gen_seed);
  dm::core::OnlineOptions options;
  options.redirect_chain_threshold = 2;
  options.metrics = &reg;
  options.clock = &ticking_clock;
  for (int episode = 0; episode < 10; ++episode) {
    dm::core::OnlineDetector detector(shared_detector(), options);
    const auto ep = gen.infection(dm::synth::family_by_name("Angler"));
    for (const auto& txn : ep.transactions) {
      detector.observe(txn);
      ++result.transactions;
    }
    if (reg.snapshot().counter_value("dm.detect.verdicts") > 0) break;
  }
  result.snap = reg.snapshot();
  return result;
}

TEST_F(TimerTest, ClueToVerdictLatencyIsRecordedDeterministically) {
  MetricsRegistry reg;
  const auto result = replay_until_verdict(reg, 300);
  const auto& snap = result.snap;

  EXPECT_EQ(snap.counter_value("dm.detect.observed"), result.transactions);
  ASSERT_GE(snap.counter_value("dm.detect.clues"), 1u);
  ASSERT_GE(snap.counter_value("dm.detect.verdicts"), 1u);

  // A verdict is only ever triggered by a clue, so at least one session must
  // have recorded its clue-to-verdict latency, and with a strictly ticking
  // clock that latency cannot be zero.
  const auto* c2v = snap.histogram("dm.detect.clue_to_verdict_ns");
  ASSERT_NE(c2v, nullptr);
  ASSERT_GE(c2v->count, 1u);
  EXPECT_GT(c2v->sum, 0u);
  // One recording per session, at the first verdict only.
  EXPECT_LE(c2v->count, snap.counter_value("dm.detect.clues"));

  // Whole-observe stage: one span per transaction, every one >= 1 tick.
  const auto* observe = snap.histogram("dm.stage.observe_ns");
  ASSERT_NE(observe, nullptr);
  EXPECT_EQ(observe->count, result.transactions);
  EXPECT_GE(observe->sum, observe->count);

  // Same trace + same injected clock -> bit-identical latency stream.  This
  // is the property that makes the obs layer testable at all.
  g_tick.store(0, std::memory_order_relaxed);
  MetricsRegistry reg2;
  const auto rerun = replay_until_verdict(reg2, 300);
  const auto* c2v2 = rerun.snap.histogram("dm.detect.clue_to_verdict_ns");
  ASSERT_NE(c2v2, nullptr);
  EXPECT_EQ(c2v2->count, c2v->count);
  EXPECT_EQ(c2v2->sum, c2v->sum);
  EXPECT_EQ(c2v2->buckets, c2v->buckets);
  const auto* observe2 = rerun.snap.histogram("dm.stage.observe_ns");
  ASSERT_NE(observe2, nullptr);
  EXPECT_EQ(observe2->sum, observe->sum);
}

TEST_F(TimerTest, DisabledDetectorRecordsNoLatencies) {
  MetricsRegistry reg;
  set_enabled(false);
  const auto result = replay_until_verdict(reg, 301);
  // Counters stay live when disabled (they are cheaper than the branch),
  // but every span and the clue timestamp are skipped.
  EXPECT_EQ(result.snap.counter_value("dm.detect.observed"),
            result.transactions);
  const auto* observe = result.snap.histogram("dm.stage.observe_ns");
  ASSERT_NE(observe, nullptr);
  EXPECT_EQ(observe->count, 0u);
  const auto* c2v = result.snap.histogram("dm.detect.clue_to_verdict_ns");
  ASSERT_NE(c2v, nullptr);
  EXPECT_EQ(c2v->count, 0u);
}

}  // namespace
}  // namespace dm::obs

#include "ml/dataset.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace dm::ml {
namespace {

Dataset two_feature_dataset() {
  Dataset data({"x", "y"});
  data.add_row({1.0, 2.0}, kInfection);
  data.add_row({3.0, 4.0}, kBenign);
  data.add_row({5.0, 6.0}, kInfection);
  return data;
}

TEST(DatasetTest, AddAndAccess) {
  const auto data = two_feature_dataset();
  EXPECT_EQ(data.size(), 3u);
  EXPECT_EQ(data.num_features(), 2u);
  EXPECT_EQ(data.label(0), kInfection);
  EXPECT_EQ(data.value(1, 1), 4.0);
  const auto row = data.row(2);
  EXPECT_EQ(row[0], 5.0);
  EXPECT_EQ(row[1], 6.0);
}

TEST(DatasetTest, RejectsWidthMismatch) {
  Dataset data({"x", "y"});
  EXPECT_THROW(data.add_row({1.0}, kBenign), std::invalid_argument);
  EXPECT_THROW(data.add_row({1.0, 2.0, 3.0}, kBenign), std::invalid_argument);
}

TEST(DatasetTest, OutOfRangeAccessThrows) {
  const auto data = two_feature_dataset();
  EXPECT_THROW(data.row(3), std::out_of_range);
  EXPECT_THROW(data.value(0, 2), std::out_of_range);
}

TEST(DatasetTest, CountLabel) {
  const auto data = two_feature_dataset();
  EXPECT_EQ(data.count_label(kInfection), 2u);
  EXPECT_EQ(data.count_label(kBenign), 1u);
}

TEST(DatasetTest, SubsetPreservesOrder) {
  const auto data = two_feature_dataset();
  const std::vector<std::size_t> idx{2, 0};
  const auto sub = data.subset(idx);
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.value(0, 0), 5.0);
  EXPECT_EQ(sub.value(1, 0), 1.0);
}

TEST(DatasetTest, SelectFeatures) {
  const auto data = two_feature_dataset();
  const std::vector<std::size_t> keep{1};
  const auto narrow = data.select_features(keep);
  EXPECT_EQ(narrow.num_features(), 1u);
  EXPECT_EQ(narrow.feature_names()[0], "y");
  EXPECT_EQ(narrow.value(0, 0), 2.0);
  EXPECT_EQ(narrow.label(0), kInfection);
}

TEST(DatasetTest, AppendRequiresMatchingSchema) {
  auto a = two_feature_dataset();
  const auto b = two_feature_dataset();
  a.append(b);
  EXPECT_EQ(a.size(), 6u);
  Dataset other({"different"});
  EXPECT_THROW(a.append(other), std::invalid_argument);
}

TEST(StratifiedFoldsTest, CoverAllRowsOnce) {
  Dataset data({"x"});
  for (int i = 0; i < 50; ++i) data.add_row({double(i)}, i % 5 == 0 ? kInfection : kBenign);
  dm::util::Rng rng(1);
  const auto folds = stratified_folds(data, 5, rng);
  ASSERT_EQ(folds.size(), 5u);
  std::vector<int> seen(50, 0);
  for (const auto& fold : folds) {
    for (std::size_t i : fold) ++seen[i];
  }
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(StratifiedFoldsTest, PreservesClassBalance) {
  Dataset data({"x"});
  for (int i = 0; i < 100; ++i) data.add_row({double(i)}, i < 20 ? kInfection : kBenign);
  dm::util::Rng rng(2);
  const auto folds = stratified_folds(data, 10, rng);
  for (const auto& fold : folds) {
    std::size_t positives = 0;
    for (std::size_t i : fold) positives += data.label(i) == kInfection;
    EXPECT_EQ(positives, 2u);  // 20 positives over 10 folds
  }
}

TEST(StratifiedFoldsTest, RejectsBadK) {
  const auto data = two_feature_dataset();
  dm::util::Rng rng(3);
  EXPECT_THROW(stratified_folds(data, 1, rng), std::invalid_argument);
}

TEST(StratifiedSplitTest, FractionRespected) {
  Dataset data({"x"});
  for (int i = 0; i < 100; ++i) data.add_row({double(i)}, i < 40 ? kInfection : kBenign);
  dm::util::Rng rng(4);
  const auto split = stratified_split(data, 0.25, rng);
  EXPECT_EQ(split.test.size(), 25u);  // 10 positives + 15 negatives
  EXPECT_EQ(split.train.size(), 75u);
  std::size_t test_pos = 0;
  for (std::size_t i : split.test) test_pos += data.label(i) == kInfection;
  EXPECT_EQ(test_pos, 10u);
}

TEST(StratifiedSplitTest, RejectsBadFraction) {
  const auto data = two_feature_dataset();
  dm::util::Rng rng(5);
  EXPECT_THROW(stratified_split(data, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(stratified_split(data, 1.0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace dm::ml

// Focused tests of the §III-C conversation-stage heuristics and the
// potential-infection scoping behaviour of the on-the-wire engine.
#include <gtest/gtest.h>

#include "core/online.h"
#include "core/trainer.h"
#include "core/wcg_builder.h"
#include "synth/dataset.h"

namespace dm::core {
namespace {

using dm::http::HttpTransaction;

HttpTransaction make_txn(const std::string& host, const std::string& uri,
                         const std::string& method, int status,
                         const std::string& content_type, std::string body,
                         std::uint64_t ts_s, const std::string& referrer = {},
                         const std::string& location = {}) {
  HttpTransaction txn;
  txn.client_host = "10.0.0.2";
  txn.server_host = host;
  txn.server_ip = "1.1.1.1";
  txn.request.method = method;
  txn.request.uri = uri;
  txn.request.ts_micros = ts_s * 1000000;
  txn.request.headers.add("Host", host);
  if (!referrer.empty()) txn.request.headers.add("Referer", referrer);
  dm::http::HttpResponse res;
  res.status_code = status;
  res.ts_micros = ts_s * 1000000 + 50000;
  if (!content_type.empty()) res.headers.add("Content-Type", content_type);
  if (!location.empty()) res.headers.add("Location", location);
  res.body = std::move(body);
  txn.response = std::move(res);
  return txn;
}

BuilderOptions no_weed() {
  BuilderOptions options;
  options.trusted = TrustedVendors::none();
  return options;
}

Stage stage_of_edge_to(const Wcg& wcg, const std::string& host,
                       EdgeKind kind) {
  const auto id = wcg.find_host(host);
  for (std::size_t e = 0; e < wcg.edge_count(); ++e) {
    const auto& structural = wcg.graph().edge(static_cast<dm::graph::EdgeId>(e));
    const auto& attrs = wcg.edge(static_cast<dm::graph::EdgeId>(e));
    if (attrs.kind == kind && (structural.dst == id || structural.src == id)) {
      return attrs.stage;
    }
  }
  return Stage::kDownload;
}

TEST(StageHeuristicsTest, AllPreDownloadWhenNoExploit) {
  WcgBuilder builder(no_weed());
  builder.add(make_txn("a.example", "/", "GET", 302, "", "", 1, "",
                       "http://b.example/"));
  builder.add(make_txn("b.example", "/", "GET", 200, "text/html", "<html>", 2));
  const auto wcg = builder.build();
  EXPECT_FALSE(wcg.annotations().has_download_stage);
  // The 30x pair is pre-download; ordinary content defaults to download.
  EXPECT_EQ(stage_of_edge_to(wcg, "a.example", EdgeKind::kResponse),
            Stage::kPreDownload);
}

TEST(StageHeuristicsTest, RedirectAfterDownloadIsNotPreDownload) {
  WcgBuilder builder(no_weed());
  builder.add(make_txn("exploit.example", "/p.exe", "GET", 200,
                       "application/octet-stream", "MZ..", 1));
  builder.add(make_txn("late.example", "/x", "GET", 302, "", "", 5, "",
                       "http://elsewhere.example/"));
  const auto wcg = builder.build();
  EXPECT_EQ(stage_of_edge_to(wcg, "late.example", EdgeKind::kResponse),
            Stage::kDownload);
}

TEST(StageHeuristicsTest, PostToExploitHostIsNotPostDownload) {
  // POSTs back to the host that served the payload are part of the exploit
  // dialogue, not C&C call-back (the paper scopes post-download to hosts
  // with no exploit downloads).
  WcgBuilder builder(no_weed());
  builder.add(make_txn("exploit.example", "/p.exe", "GET", 200,
                       "application/octet-stream", "MZ..", 1));
  builder.add(make_txn("exploit.example", "/confirm", "POST", 200,
                       "text/plain", "ok", 5));
  builder.add(make_txn("8.8.4.4", "/gate", "POST", 200, "text/plain", "ok", 9));
  const auto wcg = builder.build();
  EXPECT_EQ(stage_of_edge_to(wcg, "8.8.4.4", EdgeKind::kRequest),
            Stage::kPostDownload);
  EXPECT_EQ(stage_of_edge_to(wcg, "exploit.example", EdgeKind::kRequest),
            Stage::kDownload);
}

TEST(StageHeuristicsTest, Post50xIsNotPostDownload) {
  // The paper's rule admits 200 and 40x answers only.
  WcgBuilder builder(no_weed());
  builder.add(make_txn("exploit.example", "/p.swf", "GET", 200,
                       "application/x-shockwave-flash", "CWS", 1));
  builder.add(make_txn("9.9.9.9", "/gate", "POST", 503, "text/plain", "down", 5));
  const auto wcg = builder.build();
  EXPECT_EQ(stage_of_edge_to(wcg, "9.9.9.9", EdgeKind::kRequest),
            Stage::kDownload);
  EXPECT_FALSE(wcg.annotations().has_post_download_stage);
}

TEST(StageHeuristicsTest, Post404IsPostDownload) {
  WcgBuilder builder(no_weed());
  builder.add(make_txn("exploit.example", "/p.jar", "GET", 200,
                       "application/java-archive", "PK", 1));
  builder.add(make_txn("9.9.9.9", "/gate", "POST", 404, "text/plain", "nf", 5));
  const auto wcg = builder.build();
  EXPECT_EQ(stage_of_edge_to(wcg, "9.9.9.9", EdgeKind::kRequest),
            Stage::kPostDownload);
  EXPECT_TRUE(wcg.annotations().has_post_download_stage);
}

TEST(StageHeuristicsTest, CryptoLockerExtensionCountsAsExploit) {
  WcgBuilder builder(no_weed());
  builder.add(make_txn("drop.example", "/files/readme.locky", "GET", 200,
                       "text/plain", "encrypted!", 1));
  const auto wcg = builder.build();
  EXPECT_TRUE(wcg.annotations().has_download_stage);
  EXPECT_EQ(wcg.node(wcg.find_host("drop.example")).type, NodeType::kMalicious);
}

// ---- potential-infection WCG scoping (§V-B back-in-time construction) ----

const Detector& scoped_detector() {
  static const Detector detector = [] {
    const auto gt = dm::synth::generate_ground_truth(500, 0.06);
    std::vector<Wcg> infections;
    std::vector<Wcg> benign;
    for (const auto& e : gt.infections) {
      infections.push_back(build_wcg(e.transactions));
    }
    for (const auto& e : gt.benign) benign.push_back(build_wcg(e.transactions));
    return Detector(train_dynaminer(dataset_from_wcgs(infections, benign), 9));
  }();
  return detector;
}

TEST(PotentialWcgTest, BenignBulkDoesNotDiluteMaliciousFlow) {
  // A session that is 95% streaming traffic plus one malicious pop-up flow
  // must still alert: the clue-scoped WCG excludes the streaming bulk.
  dm::synth::TraceGenerator gen(501);
  OnlineOptions options;
  options.redirect_chain_threshold = 3;
  std::size_t alerted = 0;
  const int runs = 6;
  for (int run = 0; run < runs; ++run) {
    OnlineDetector online(scoped_detector(), options);
    const auto session = gen.free_streaming_session(1, 120);
    for (const auto& txn : session.transactions) {
      if (online.observe(txn)) ++alerted;
    }
  }
  EXPECT_GE(alerted, 1u) << "no dilution-resistant alert in " << runs << " runs";
}

TEST(PotentialWcgTest, AlertWcgIsSmallerThanSession) {
  dm::synth::TraceGenerator gen(502);
  OnlineOptions options;
  options.redirect_chain_threshold = 3;
  for (int run = 0; run < 8; ++run) {
    OnlineDetector online(scoped_detector(), options);
    const auto session = gen.free_streaming_session(2, 150);
    const auto full_wcg = build_wcg(session.transactions);
    for (const auto& txn : session.transactions) {
      if (const auto alert = online.observe(txn)) {
        // The clue-scoped WCG must be dramatically smaller than the whole
        // conversation graph.
        EXPECT_LT(alert->wcg_order, full_wcg.node_count());
        EXPECT_LT(alert->wcg_size, full_wcg.edge_count() / 2);
        return;
      }
    }
  }
  GTEST_SKIP() << "no alert across runs (borderline scores)";
}

}  // namespace
}  // namespace dm::core

// Differential suite for the parallel deterministic Stage-1 trainer:
// parallel and sequential training must produce byte-identical forests at
// every thread count (the counter-based per-tree RNG-stream contract), the
// fan-out dataset extraction must be row-identical, and every seed-default
// path must resolve to the one documented training seed.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>

#include "core/trainer.h"
#include "core/wcg_builder.h"
#include "ml/cross_validation.h"
#include "ml/parallel_trainer.h"
#include "ml/serialization.h"
#include "synth/dataset.h"
#include "util/rng.h"

namespace dm::ml {
namespace {

std::string serialized(const RandomForest& forest) {
  std::stringstream out;
  save_forest(forest, out);
  return out.str();
}

Dataset synth_dataset(std::uint64_t seed, std::size_t n = 400,
                      std::size_t features = 10) {
  dm::util::Rng rng(seed);
  std::vector<std::string> names;
  for (std::size_t f = 0; f < features; ++f) names.push_back("f" + std::to_string(f));
  Dataset data(std::move(names));
  for (std::size_t i = 0; i < n; ++i) {
    const bool positive = rng.chance(0.45);
    std::vector<double> row;
    for (std::size_t f = 0; f < features; ++f) {
      const double base = (f % 3 == 0 && positive) ? 1.5 : 0.0;
      row.push_back(base + rng.normal(0, 1.0));
    }
    data.add_row(std::move(row), positive ? kInfection : kBenign);
  }
  return data;
}

TEST(ParallelTrainerTest, ForestsByteIdenticalAcrossThreadCounts) {
  const auto data = synth_dataset(11);
  ForestOptions options;
  options.seed = 1234;
  const auto sequential = RandomForest::train(data, options);
  const std::string golden = serialized(sequential);

  for (const std::size_t threads : {1u, 2u, 8u}) {
    const auto parallel =
        train_forest_parallel(data, options, {.threads = threads});
    EXPECT_EQ(serialized(parallel), golden) << "threads=" << threads;
  }
}

TEST(ParallelTrainerTest, PredictProbaAgreesOnRandomVectorsAtEveryThreadCount) {
  const auto data = synth_dataset(12);
  ForestOptions options;
  options.seed = 77;
  const auto sequential = RandomForest::train(data, options);
  const auto two = train_forest_parallel(data, options, {.threads = 2});
  const auto eight = train_forest_parallel(data, options, {.threads = 8});

  dm::util::Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    std::vector<double> x;
    for (std::size_t f = 0; f < data.num_features(); ++f) {
      x.push_back(rng.uniform(-5, 5));
    }
    const double want = sequential.predict_proba(x);
    EXPECT_EQ(two.predict_proba(x), want);
    EXPECT_EQ(eight.predict_proba(x), want);
  }
}

TEST(ParallelTrainerTest, CrossValidationIdenticalAcrossThreadCounts) {
  const auto data = synth_dataset(13, 250, 6);
  const auto serial = cross_validate(data, 5, {}, 3, 0.5, {.threads = 1});
  const auto parallel = cross_validate(data, 5, {}, 3, 0.5, {.threads = 8});
  EXPECT_EQ(serial.scores, parallel.scores);
  EXPECT_EQ(serial.labels, parallel.labels);
  EXPECT_EQ(serial.roc_area, parallel.roc_area);
  EXPECT_EQ(serial.confusion.true_positives, parallel.confusion.true_positives);
  EXPECT_EQ(serial.confusion.false_positives, parallel.confusion.false_positives);
  EXPECT_EQ(serial.confusion.true_negatives, parallel.confusion.true_negatives);
  EXPECT_EQ(serial.confusion.false_negatives, parallel.confusion.false_negatives);
}

TEST(ParallelTrainerTest, DatasetFromWcgsRowIdenticalAcrossThreadCounts) {
  const auto gt = dm::synth::generate_ground_truth(21, 0.03);
  std::vector<dm::core::Wcg> infections;
  std::vector<dm::core::Wcg> benign;
  for (const auto& e : gt.infections) {
    infections.push_back(dm::core::build_wcg(e.transactions));
  }
  for (const auto& e : gt.benign) {
    benign.push_back(dm::core::build_wcg(e.transactions));
  }

  const auto serial = dm::core::dataset_from_wcgs(infections, benign);
  const auto fanned =
      dm::core::dataset_from_wcgs(infections, benign, {}, {.threads = 8});
  ASSERT_EQ(serial.size(), fanned.size());
  EXPECT_EQ(serial.labels(), fanned.labels());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const auto a = serial.row(i);
    const auto b = fanned.row(i);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t f = 0; f < a.size(); ++f) {
      EXPECT_EQ(a[f], b[f]) << "row " << i << " feature " << f;
    }
  }
}

TEST(ParallelTrainerTest, TrainDynaminerParallelMatchesSequentialDefault) {
  const auto gt = dm::synth::generate_ground_truth(22, 0.02);
  std::vector<dm::core::Wcg> infections;
  std::vector<dm::core::Wcg> benign;
  for (const auto& e : gt.infections) {
    infections.push_back(dm::core::build_wcg(e.transactions));
  }
  for (const auto& e : gt.benign) {
    benign.push_back(dm::core::build_wcg(e.transactions));
  }
  const auto data = dm::core::dataset_from_wcgs(infections, benign);
  const auto sequential = dm::core::train_dynaminer(data);
  const auto parallel =
      dm::core::train_dynaminer(data, kDefaultTrainingSeed, {.threads = 8});
  EXPECT_EQ(serialized(parallel), serialized(sequential));
}

// Satellite regression: one source of truth for the training seed — every
// defaulted option path must resolve to the documented 42.
TEST(ParallelTrainerTest, DefaultSeedSingleSourceOfTruth) {
  EXPECT_EQ(kDefaultTrainingSeed, 42u);
  EXPECT_EQ(ForestOptions{}.seed, kDefaultTrainingSeed);
  EXPECT_EQ(dm::core::paper_forest_options().seed, kDefaultTrainingSeed);
  EXPECT_EQ(dm::core::paper_forest_options(5).seed, kDefaultTrainingSeed);

  const auto data = synth_dataset(14, 120, 5);
  // train_dynaminer's default, its explicit-42 spelling, and the raw
  // paper_forest_options path must all be the same forest.
  const auto by_default = dm::core::train_dynaminer(data);
  const auto by_constant = dm::core::train_dynaminer(data, kDefaultTrainingSeed);
  const auto by_options = train_forest_parallel(
      data, dm::core::paper_forest_options(data.num_features()));
  EXPECT_EQ(serialized(by_default), serialized(by_constant));
  EXPECT_EQ(serialized(by_default), serialized(by_options));
}

// --- dm.train.* instrumentation ---------------------------------------------

std::atomic<std::uint64_t> g_fake_now{0};
std::uint64_t fake_clock() { return g_fake_now.fetch_add(1000); }

TEST(ParallelTrainerTest, TrainMetricsCountTreesFoldsAndExtractions) {
  dm::obs::MetricsRegistry reg;
  TrainerOptions trainer{.threads = 2, .metrics = &reg, .clock = &fake_clock};

  const auto data = synth_dataset(15, 150, 5);
  ForestOptions options;
  options.num_trees = 12;
  (void)train_forest_parallel(data, options, trainer);

  auto snap = reg.snapshot();
  EXPECT_EQ(snap.counter_value("dm.train.trees_built"), 12u);
  EXPECT_EQ(snap.counter_value("dm.train.forests_trained"), 1u);
  const auto* tree_hist = snap.histogram("dm.train.tree_build_ns");
  ASSERT_NE(tree_hist, nullptr);
  EXPECT_EQ(tree_hist->count, 12u);
  const auto* forest_hist = snap.histogram("dm.train.forest_train_ns");
  ASSERT_NE(forest_hist, nullptr);
  EXPECT_EQ(forest_hist->count, 1u);

  (void)cross_validate(data, 4, options, 1, 0.5, trainer);
  snap = reg.snapshot();
  const auto* fold_hist = snap.histogram("dm.train.fold_ns");
  ASSERT_NE(fold_hist, nullptr);
  EXPECT_EQ(fold_hist->count, 4u);
  // 4 folds x 12 trees on top of the first forest's 12.
  EXPECT_EQ(snap.counter_value("dm.train.trees_built"), 12u + 48u);

  const auto gt = dm::synth::generate_ground_truth(23, 0.02);
  std::vector<dm::core::Wcg> infections;
  std::vector<dm::core::Wcg> benign;
  for (const auto& e : gt.infections) {
    infections.push_back(dm::core::build_wcg(e.transactions));
  }
  for (const auto& e : gt.benign) {
    benign.push_back(dm::core::build_wcg(e.transactions));
  }
  (void)dm::core::dataset_from_wcgs(infections, benign, {}, trainer);
  snap = reg.snapshot();
  EXPECT_EQ(snap.counter_value("dm.train.wcgs_extracted"),
            infections.size() + benign.size());
  const auto* extract_hist = snap.histogram("dm.train.extract_ns");
  ASSERT_NE(extract_hist, nullptr);
  EXPECT_EQ(extract_hist->count, infections.size() + benign.size());
}

}  // namespace
}  // namespace dm::ml

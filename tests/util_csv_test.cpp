#include "util/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace dm::util {
namespace {

TEST(CsvTest, EscapeOnlyWhenNeeded) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvTest, WriteRow) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row({"a", "b,c", "d"});
  EXPECT_EQ(out.str(), "a,\"b,c\",d\n");
}

TEST(CsvTest, WriteRowNumericRoundTrips) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row_numeric({1.5, 0.1, 37});
  const auto rows = parse_csv(out.str());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "1.5");
  EXPECT_EQ(rows[0][1], "0.1");
  EXPECT_EQ(rows[0][2], "37");
}

TEST(CsvTest, ParseSimple) {
  const auto rows = parse_csv("a,b\nc,d\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(CsvTest, ParseQuotedFieldsWithCommasAndNewlines) {
  const auto rows = parse_csv("\"a,b\",\"line\nbreak\",\"he said \"\"hi\"\"\"\n");
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].size(), 3u);
  EXPECT_EQ(rows[0][0], "a,b");
  EXPECT_EQ(rows[0][1], "line\nbreak");
  EXPECT_EQ(rows[0][2], "he said \"hi\"");
}

TEST(CsvTest, ParseHandlesCrLfAndMissingTrailingNewline) {
  const auto rows = parse_csv("a,b\r\nc,d");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(CsvTest, ParseEmptyInput) {
  EXPECT_TRUE(parse_csv("").empty());
}

TEST(CsvTest, RoundTripThroughWriterAndParser) {
  std::ostringstream out;
  CsvWriter writer(out);
  const std::vector<std::string> original{"x,y", "\"quoted\"", "multi\nline", ""};
  writer.write_row(original);
  const auto rows = parse_csv(out.str());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], original);
}

}  // namespace
}  // namespace dm::util
